/**
 * @file
 * Logical/physical vertex-id indirection (DESIGN.md §16).
 *
 * Every id that crosses a backend's public API — stream edges, analytics
 * queries, snapshot publication, dirty sets — is a *logical* id: stable
 * for the lifetime of the graph.  Where a vertex's adjacency rows live in
 * the backing arrays is a *physical* id, and the @ref VertexIdMap owns
 * the bijection between the two.  Backends translate exactly once, at
 * the public API boundary; neighbor ids stored inside edge arrays stay
 * logical, so renumbering never rewrites edge payloads — it only
 * move-permutes whole rows.
 *
 * The map starts disabled (identity): `to_physical` is one predictable
 * branch and no table load, so the fast path of a never-renumbered run
 * is unchanged — all pre-refactor goldens stay bit-identical.  After a
 * @ref rebind the table covers the vertex space at rebind time; logical
 * ids past the table (vertex growth after a renumber) fall through to
 * identity, which is always unoccupied because the bound table is a
 * permutation of the smaller prefix.
 */
#ifndef IGS_GRAPH_VERTEX_ID_MAP_H
#define IGS_GRAPH_VERTEX_ID_MAP_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace igs::graph {

/** Bijection logical id <-> physical row index, identity until rebound. */
class VertexIdMap {
  public:
    /** True after the first `rebind` (the identity default never is). */
    bool enabled() const { return enabled_; }

    /** Vertex-space size covered by the bound table (0 when identity). */
    std::size_t size() const { return to_phys_.size(); }

    /** Physical row index of logical vertex `v`.  Identity when the map
     *  is disabled or `v` outgrew the bound table. */
    VertexId
    to_physical(VertexId v) const
    {
        return enabled_ && v < to_phys_.size() ? to_phys_[v] : v;
    }

    /** Logical id occupying physical row `p` (inverse of to_physical). */
    VertexId
    to_logical(VertexId p) const
    {
        return enabled_ && p < to_log_.size() ? to_log_[p] : p;
    }

    /**
     * Bind a new logical->physical assignment.  `l2p` must be a
     * permutation of [0, l2p.size()); debug builds verify.  The caller
     * (a backend's `apply_renumber`) permutes its rows with the same
     * table in the same call, so map and storage can never disagree.
     */
    void
    rebind(std::span<const VertexId> l2p)
    {
        const std::size_t n = l2p.size();
        to_phys_.assign(l2p.begin(), l2p.end());
        to_log_.assign(n, kInvalidVertex);
        for (std::size_t l = 0; l < n; ++l) {
            IGS_DCHECK(l2p[l] < n);
            IGS_DCHECK(to_log_[l2p[l]] == kInvalidVertex);
            to_log_[l2p[l]] = static_cast<VertexId>(l);
        }
        enabled_ = true;
    }

    /** Drop back to the identity map (tests / reset). */
    void
    reset()
    {
        enabled_ = false;
        to_phys_.clear();
        to_log_.clear();
    }

    /** True when the bound table maps every id to itself (an enabled
     *  identity map must behave indistinguishably from a disabled one). */
    bool
    is_identity() const
    {
        if (!enabled_) {
            return true;
        }
        for (std::size_t l = 0; l < to_phys_.size(); ++l) {
            if (to_phys_[l] != l) {
                return false;
            }
        }
        return true;
    }

  private:
    std::vector<VertexId> to_phys_;
    std::vector<VertexId> to_log_;
    bool enabled_ = false;
};

} // namespace igs::graph

#endif // IGS_GRAPH_VERTEX_ID_MAP_H
