#include "graph/indexed_adjacency.h"

#include <algorithm>
#include <cmath>

namespace igs::graph {

IndexedAdjacency::IndexedAdjacency(std::size_t num_vertices)
{
    ensure_vertices(num_vertices);
}

void
IndexedAdjacency::ensure_vertices(std::size_t n)
{
    if (n <= out_.size()) {
        return;
    }
    out_.resize(n);
    in_.resize(n);
    auto new_bids = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < latest_bid_size_; ++i) {
        new_bids[i].store(latest_bid_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    latest_bid_ = std::move(new_bids);
    latest_bid_size_ = n;
}

ApplyResult
IndexedAdjacency::apply_insert(VertexId v, Neighbor nbr, Direction dir)
{
    IGS_DCHECK(v < out_.size());
    auto& edges = dir == Direction::kOut ? out_[v] : in_[v];
    auto& index = dir == Direction::kOut ? out_index_ : in_index_;
    ApplyResult r;
    r.len_before = static_cast<std::uint32_t>(edges.size());
    const std::uint64_t key = key_of(v, nbr.id);
    auto [it, inserted] = index.try_emplace(key, r.len_before);
    if (!inserted) {
        // Modeled scan stops at the match position.
        r.found = true;
        r.probes = it->second + 1;
        edges[it->second].weight += nbr.weight;
        return r;
    }
    // Modeled scan walks the whole array before appending.
    r.probes = r.len_before;
    // igs-lint: allow(hot-path-alloc) -- amortized edge-array growth
    edges.push_back(nbr);
    if (dir == Direction::kOut) {
        ++num_edges_;
    }
    return r;
}

ApplyResult
IndexedAdjacency::apply_remove(VertexId v, VertexId nbr_id, Direction dir)
{
    IGS_DCHECK(v < out_.size());
    auto& edges = dir == Direction::kOut ? out_[v] : in_[v];
    auto& index = dir == Direction::kOut ? out_index_ : in_index_;
    ApplyResult r;
    r.len_before = static_cast<std::uint32_t>(edges.size());
    const auto it = index.find(key_of(v, nbr_id));
    if (it == index.end()) {
        r.probes = r.len_before;
        return r;
    }
    const std::uint32_t pos = it->second;
    r.found = true;
    r.probes = pos + 1;
    index.erase(it);
    // Swap-with-last removal, mirroring AdjacencyList; keep the moved
    // neighbor's index entry coherent.
    const std::uint32_t last = r.len_before - 1;
    if (pos != last) {
        edges[pos] = edges[last];
        index[key_of(v, edges[pos].id)] = pos;
    }
    edges.pop_back();
    if (dir == Direction::kOut) {
        --num_edges_;
    }
    return r;
}

std::vector<Neighbor>
IndexedAdjacency::sorted_edges(VertexId v, Direction dir) const
{
    std::vector<Neighbor> copy = edges(v, dir);
    std::sort(copy.begin(), copy.end(),
              [](const Neighbor& a, const Neighbor& b) { return a.id < b.id; });
    return copy;
}

bool
IndexedAdjacency::same_topology(const AdjacencyList& other) const
{
    if (num_vertices() != other.num_vertices()) {
        return false;
    }
    for (VertexId v = 0; v < num_vertices(); ++v) {
        for (Direction dir : {Direction::kOut, Direction::kIn}) {
            const auto a = sorted_edges(v, dir);
            const auto b = other.sorted_edges(v, dir);
            if (a.size() != b.size()) {
                return false;
            }
            for (std::size_t i = 0; i < a.size(); ++i) {
                if (a[i].id != b[i].id ||
                    std::abs(a[i].weight - b[i].weight) > 1e-4f) {
                    return false;
                }
            }
        }
    }
    return true;
}

} // namespace igs::graph
