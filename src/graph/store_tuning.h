/**
 * @file
 * Runtime tuning knobs shared by the adaptive graph stores.
 *
 * The degree thresholds at which @ref igs::graph::DegreeAwareHash and
 * @ref igs::graph::HybridStore change a vertex's edge-set representation
 * used to be hard-coded constants; making them runtime values lets benches
 * sweep them and lets golden runs pin (and report) the exact values they
 * were produced with.  Every bench's JSON `host` block echoes the active
 * tuning so golden diffs are threshold-aware (tools/golden_check.py).
 *
 * The defaults reproduce the historical constants, so a
 * default-constructed StoreTuning is behavior-identical to the
 * pre-tunable stores.
 */
#ifndef IGS_GRAPH_STORE_TUNING_H
#define IGS_GRAPH_STORE_TUNING_H

#include <cstdint>

namespace igs::graph {

/** Tier/migration thresholds for the adaptive stores. */
struct StoreTuning {
    /**
     * DegreeAwareHash: degree at which a vertex's edge array migrates to
     * an open-addressed hash table (historically
     * DahEdgeSet::kHashThreshold).
     */
    std::uint32_t dah_hash_threshold = 32;

    /**
     * HybridStore: degree at which a tier-1 sorted array promotes to the
     * tier-2 hash-indexed representation.  (The tier-0 -> tier-1
     * promotion point is HybridEdgeSet::kInlineCapacity, a compile-time
     * layout property of the vertex record, not a tunable.)
     */
    std::uint32_t hybrid_sorted_threshold = 128;
};

} // namespace igs::graph

#endif // IGS_GRAPH_STORE_TUNING_H
