#include "graph/adjacency_list.h"

#include <algorithm>
#include <cmath>

namespace igs::graph {

AdjacencyList::AdjacencyList(std::size_t num_vertices)
{
    ensure_vertices(num_vertices);
}

void
AdjacencyList::ensure_vertices(std::size_t n)
{
    if (n <= out_.size()) {
        return;
    }
    out_.resize(n);
    in_.resize(n);
    auto new_bids = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < latest_bid_size_; ++i) {
        new_bids[i].store(latest_bid_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    latest_bid_ = std::move(new_bids);
    latest_bid_size_ = n;
    // Locks are only held during a parallel update phase; growing the vertex
    // space happens between batches, so fresh (unlocked) lock arrays are
    // equivalent to the old ones.
    out_locks_.resize(n);
    in_locks_.resize(n);
}

ApplyResult
AdjacencyList::apply_insert(VertexId v, Neighbor nbr, Direction dir)
{
    const VertexId p = map_.to_physical(v);
    IGS_DCHECK(p < out_.size());
    auto& edges = dir == Direction::kOut ? out_[p] : in_[p];
    ApplyResult r;
    r.len_before = static_cast<std::uint32_t>(edges.size());
    for (Neighbor& e : edges) {
        ++r.probes;
        if (e.id == nbr.id) {
            e.weight += nbr.weight;
            r.found = true;
            return r;
        }
    }
    // Amortized edge-array growth: the streamed insert is itself the
    // workload being charged.  igs-lint: allow(hot-path-alloc)
    edges.push_back(nbr);
    if (dir == Direction::kOut) {
        num_edges_.fetch_add(1, std::memory_order_relaxed);
    }
    return r;
}

ApplyResult
AdjacencyList::apply_remove(VertexId v, VertexId nbr_id, Direction dir)
{
    const VertexId p = map_.to_physical(v);
    IGS_DCHECK(p < out_.size());
    auto& edges = dir == Direction::kOut ? out_[p] : in_[p];
    ApplyResult r;
    r.len_before = static_cast<std::uint32_t>(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
        ++r.probes;
        if (edges[i].id == nbr_id) {
            edges[i] = edges.back();
            edges.pop_back();
            r.found = true;
            if (dir == Direction::kOut) {
                num_edges_.fetch_sub(1, std::memory_order_relaxed);
            }
            return r;
        }
    }
    return r;
}

void
AdjacencyList::note_edges_added(Direction dir, EdgeId n)
{
    if (dir == Direction::kOut) {
        num_edges_.fetch_add(n, std::memory_order_relaxed);
    }
}

void
AdjacencyList::note_edges_removed(Direction dir, EdgeId n)
{
    if (dir == Direction::kOut) {
        num_edges_.fetch_sub(n, std::memory_order_relaxed);
    }
}

void
AdjacencyList::apply_renumber(std::span<const VertexId> l2p)
{
    IGS_CHECK_MSG(l2p.size() == out_.size(),
                  "apply_renumber: assignment must cover the vertex space");
    const std::size_t n = out_.size();
    // Move-permute the row containers; edge payloads (logical neighbor
    // ids) and latest_bid (logical-indexed) are untouched, so the
    // operation is O(n) row-header moves regardless of edge count.
    std::vector<std::vector<Neighbor>> new_out(n);
    std::vector<std::vector<Neighbor>> new_in(n);
    for (std::size_t l = 0; l < n; ++l) {
        const VertexId p_old = map_.to_physical(static_cast<VertexId>(l));
        new_out[l2p[l]] = std::move(out_[p_old]);
        new_in[l2p[l]] = std::move(in_[p_old]);
    }
    out_ = std::move(new_out);
    in_ = std::move(new_in);
    map_.rebind(l2p);
}

std::vector<Neighbor>
AdjacencyList::sorted_edges(VertexId v, Direction dir) const
{
    std::vector<Neighbor> copy = edges(v, dir);
    std::sort(copy.begin(), copy.end(),
              [](const Neighbor& a, const Neighbor& b) { return a.id < b.id; });
    return copy;
}

bool
AdjacencyList::same_topology(const AdjacencyList& other) const
{
    if (num_vertices() != other.num_vertices()) {
        return false;
    }
    for (VertexId v = 0; v < num_vertices(); ++v) {
        for (Direction dir : {Direction::kOut, Direction::kIn}) {
            const auto a = sorted_edges(v, dir);
            const auto b = other.sorted_edges(v, dir);
            if (a.size() != b.size()) {
                return false;
            }
            for (std::size_t i = 0; i < a.size(); ++i) {
                if (a[i].id != b[i].id ||
                    std::abs(a[i].weight - b[i].weight) > 1e-4f) {
                    return false;
                }
            }
        }
    }
    return true;
}

} // namespace igs::graph
