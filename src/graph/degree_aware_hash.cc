#include "graph/degree_aware_hash.h"

#include <algorithm>

namespace igs::graph {

ApplyResult
DahEdgeSet::insert(Neighbor nbr, std::uint32_t hash_threshold)
{
    if (!table_.empty()) {
        return hash_insert(nbr);
    }
    ApplyResult r;
    r.len_before = static_cast<std::uint32_t>(array_.size());
    for (Neighbor& e : array_) {
        ++r.probes;
        if (e.id == nbr.id) {
            e.weight += nbr.weight;
            r.found = true;
            return r;
        }
    }
    // igs-lint: allow(hot-path-alloc) -- amortized neighbor-array growth
    array_.push_back(nbr);
    ++count_;
    if (count_ >= hash_threshold) {
        migrate_to_hash();
    }
    return r;
}

ApplyResult
DahEdgeSet::hash_insert(Neighbor nbr)
{
    ApplyResult r;
    r.len_before = count_;
    if ((count_ + 1) * 4 >= table_.size() * 3) {
        grow_table();
    }
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash_id(nbr.id) & mask;
    while (table_[i].id != kInvalidVertex) {
        ++r.probes;
        if (table_[i].id == nbr.id) {
            table_[i].weight += nbr.weight;
            r.found = true;
            return r;
        }
        i = (i + 1) & mask;
    }
    ++r.probes;
    table_[i] = {nbr.id, nbr.weight};
    ++count_;
    return r;
}

ApplyResult
DahEdgeSet::remove(VertexId nbr_id)
{
    ApplyResult r;
    r.len_before = count_;
    if (table_.empty()) {
        for (std::size_t i = 0; i < array_.size(); ++i) {
            ++r.probes;
            if (array_[i].id == nbr_id) {
                array_[i] = array_.back();
                array_.pop_back();
                --count_;
                r.found = true;
                return r;
            }
        }
        return r;
    }
    // Open addressing with linear probing: deletion re-inserts the cluster
    // tail (backshift deletion keeps probe sequences valid without
    // tombstones).
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash_id(nbr_id) & mask;
    while (table_[i].id != kInvalidVertex) {
        ++r.probes;
        if (table_[i].id == nbr_id) {
            r.found = true;
            --count_;
            // Backshift the rest of the cluster.
            std::size_t hole = i;
            std::size_t j = (i + 1) & mask;
            while (table_[j].id != kInvalidVertex) {
                const std::size_t home = hash_id(table_[j].id) & mask;
                const bool movable = ((j - home) & mask) >= ((j - hole) & mask);
                if (movable) {
                    table_[hole] = table_[j];
                    hole = j;
                }
                j = (j + 1) & mask;
            }
            table_[hole] = Slot{};
            return r;
        }
        i = (i + 1) & mask;
    }
    return r;
}

void
DahEdgeSet::migrate_to_hash()
{
    std::size_t cap = 16;
    while (cap * 3 < static_cast<std::size_t>(count_) * 4 * 2) {
        cap <<= 1;
    }
    table_.assign(cap, Slot{});
    const std::size_t mask = cap - 1;
    for (const Neighbor& n : array_) {
        std::size_t i = hash_id(n.id) & mask;
        while (table_[i].id != kInvalidVertex) {
            i = (i + 1) & mask;
        }
        table_[i] = {n.id, n.weight};
    }
    array_.clear();
    array_.shrink_to_fit();
}

void
DahEdgeSet::grow_table()
{
    std::vector<Slot> old = std::move(table_);
    table_.assign(old.size() * 2, Slot{});
    const std::size_t mask = table_.size() - 1;
    for (const Slot& s : old) {
        if (s.id == kInvalidVertex) {
            continue;
        }
        std::size_t i = hash_id(s.id) & mask;
        while (table_[i].id != kInvalidVertex) {
            i = (i + 1) & mask;
        }
        table_[i] = s;
    }
}

std::vector<Neighbor>
DahEdgeSet::sorted() const
{
    std::vector<Neighbor> result;
    result.reserve(count_);
    for_each([&](Neighbor n) { result.push_back(n); });
    std::sort(result.begin(), result.end(),
              [](const Neighbor& a, const Neighbor& b) { return a.id < b.id; });
    return result;
}

DegreeAwareHash::DegreeAwareHash(std::size_t num_vertices,
                                 const StoreTuning& tuning)
    : tuning_(tuning)
{
    ensure_vertices(num_vertices);
}

void
DegreeAwareHash::ensure_vertices(std::size_t n)
{
    if (n <= out_.size()) {
        return;
    }
    out_.resize(n);
    in_.resize(n);
    auto new_bids = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < latest_bid_size_; ++i) {
        new_bids[i].store(latest_bid_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    latest_bid_ = std::move(new_bids);
    latest_bid_size_ = n;
    // As in AdjacencyList: growth happens between batches, with no lock held.
    out_locks_.resize(n);
    in_locks_.resize(n);
}

ApplyResult
DegreeAwareHash::apply_insert(VertexId v, Neighbor nbr, Direction dir)
{
    const VertexId p = map_.to_physical(v);
    IGS_DCHECK(p < out_.size());
    auto& set = dir == Direction::kOut ? out_[p] : in_[p];
    // igs-lint: allow(hot-path-alloc) -- streamed insert is the workload
    const ApplyResult r = set.insert(nbr, tuning_.dah_hash_threshold);
    if (!r.found && dir == Direction::kOut) {
        num_edges_.fetch_add(1, std::memory_order_relaxed);
    }
    return r;
}

ApplyResult
DegreeAwareHash::apply_remove(VertexId v, VertexId nbr_id, Direction dir)
{
    const VertexId p = map_.to_physical(v);
    IGS_DCHECK(p < out_.size());
    auto& set = dir == Direction::kOut ? out_[p] : in_[p];
    const ApplyResult r = set.remove(nbr_id);
    if (r.found && dir == Direction::kOut) {
        num_edges_.fetch_sub(1, std::memory_order_relaxed);
    }
    return r;
}

void
DegreeAwareHash::apply_renumber(std::span<const VertexId> l2p)
{
    IGS_CHECK_MSG(l2p.size() == out_.size(),
                  "apply_renumber: assignment must cover the vertex space");
    const std::size_t n = out_.size();
    std::vector<DahEdgeSet> new_out(n);
    std::vector<DahEdgeSet> new_in(n);
    for (std::size_t l = 0; l < n; ++l) {
        const VertexId p_old = map_.to_physical(static_cast<VertexId>(l));
        new_out[l2p[l]] = std::move(out_[p_old]);
        new_in[l2p[l]] = std::move(in_[p_old]);
    }
    out_ = std::move(new_out);
    in_ = std::move(new_in);
    map_.rebind(l2p);
}

} // namespace igs::graph
