#include "graph/hybrid_store.h"

#include <algorithm>
#include <limits>

#include "common/telemetry.h"

namespace igs::graph {

namespace {

/** core.graph.tier_* telemetry, resolved on first HybridStore use.  Lazy
 *  on purpose: runs that never construct a HybridStore must not add these
 *  metrics to the registry snapshot, or every existing golden run would
 *  grow "only in candidate" keys (same pattern as PipelineTelemetry). */
struct HybridTelemetry {
    telemetry::Counter& promotions_to_sorted;
    telemetry::Counter& promotions_to_hash;
    telemetry::Histogram* probes[3];
    telemetry::Gauge* tier_vertices[3];

    static HybridTelemetry&
    get()
    {
        // Probe-count decades: tier 0/1 land in the low buckets (inline
        // scan / binary search), a linear hub scan would fill the tail.
        static const double kProbeBounds[] = {0.0,  1.0,  2.0,  4.0, 8.0,
                                              16.0, 32.0, 64.0, 128.0};
        auto& r = telemetry::Registry::global();
        static HybridTelemetry t{
            r.counter("core.graph.tier_promotions_to_sorted"),
            r.counter("core.graph.tier_promotions_to_hash"),
            {&r.histogram("core.graph.tier0_probes", kProbeBounds),
             &r.histogram("core.graph.tier1_probes", kProbeBounds),
             &r.histogram("core.graph.tier2_probes", kProbeBounds)},
            {&r.gauge("core.graph.tier0_vertices"),
             &r.gauge("core.graph.tier1_vertices"),
             &r.gauge("core.graph.tier2_vertices")},
        };
        return t;
    }
};

} // namespace

// ---------------------------------------------------------------- edge set

ApplyResult
HybridEdgeSet::insert(Neighbor nbr, std::uint32_t sorted_threshold)
{
    if (tier_ == kHashed) {
        return hash_insert(nbr);
    }

    ApplyResult r;
    r.len_before = count_;

    if (tier_ == kInline) {
        for (std::uint32_t i = 0; i < count_; ++i) {
            ++r.probes;
            if (inline_[i].id == nbr.id) {
                inline_[i].weight += nbr.weight;
                r.found = true;
                return r;
            }
        }
        if (count_ < kInlineCapacity) {
            inline_[count_++] = nbr;
            return r;
        }
        // Inline record full: promote, then place the (known-absent)
        // newcomer through the sorted path below.
        promote_to_sorted();
    }

    // Tier 1: binary-search duplicate check over the sorted array.
    std::uint32_t lo = 0;
    std::uint32_t hi = count_;
    while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        ++r.probes;
        if (heap_[mid].id < nbr.id) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if (lo < count_) {
        ++r.probes;
        if (heap_[lo].id == nbr.id) {
            heap_[lo].weight += nbr.weight;
            r.found = true;
            return r;
        }
    }
    // igs-lint: allow(hot-path-alloc) -- amortized sorted-array growth
    heap_.insert(heap_.begin() + lo, nbr);
    ++count_;
    if (count_ >= sorted_threshold) {
        promote_to_hash();
    }
    return r;
}

ApplyResult
HybridEdgeSet::hash_insert(Neighbor nbr)
{
    ApplyResult r;
    r.len_before = count_;
    if ((count_ + 1) * 4 >= index_.size() * 3) {
        grow_index();
    }
    const std::size_t mask = index_.size() - 1;
    std::size_t i = hash_id(nbr.id) & mask;
    while (index_[i] != 0) {
        ++r.probes;
        Neighbor& n = heap_[index_[i] - 1];
        if (n.id == nbr.id) {
            n.weight += nbr.weight;
            r.found = true;
            return r;
        }
        i = (i + 1) & mask;
    }
    ++r.probes;
    // igs-lint: allow(hot-path-alloc) -- amortized dense-array growth
    heap_.push_back(nbr);
    // The hash index stores 1-based uint32 slots into the dense array;
    // a per-vertex edge set past 2^32-1 entries would silently alias.
    IGS_DCHECK(heap_.size() <=
               std::numeric_limits<std::uint32_t>::max());
    index_[i] = static_cast<std::uint32_t>(heap_.size());
    ++count_;
    return r;
}

ApplyResult
HybridEdgeSet::remove(VertexId nbr_id)
{
    if (tier_ == kHashed) {
        return hash_remove(nbr_id);
    }

    ApplyResult r;
    r.len_before = count_;

    if (tier_ == kInline) {
        for (std::uint32_t i = 0; i < count_; ++i) {
            ++r.probes;
            if (inline_[i].id == nbr_id) {
                inline_[i] = inline_[count_ - 1];
                --count_;
                r.found = true;
                return r;
            }
        }
        return r;
    }

    // Tier 1: binary search, then an order-preserving erase (the array
    // must stay sorted for future duplicate checks).
    std::uint32_t lo = 0;
    std::uint32_t hi = count_;
    while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        ++r.probes;
        if (heap_[mid].id < nbr_id) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if (lo < count_) {
        ++r.probes;
        if (heap_[lo].id == nbr_id) {
            heap_.erase(heap_.begin() + lo);
            --count_;
            r.found = true;
        }
    }
    return r;
}

ApplyResult
HybridEdgeSet::hash_remove(VertexId nbr_id)
{
    ApplyResult r;
    r.len_before = count_;
    const std::size_t mask = index_.size() - 1;
    std::size_t i = hash_id(nbr_id) & mask;
    while (index_[i] != 0) {
        ++r.probes;
        const std::uint32_t pos = index_[i] - 1;
        if (heap_[pos].id == nbr_id) {
            r.found = true;
            // 1. Backshift-delete the index slot (keeps probe sequences
            //    valid without tombstones; same idiom as DahEdgeSet).
            std::size_t hole = i;
            std::size_t j = (i + 1) & mask;
            while (index_[j] != 0) {
                const std::size_t home =
                    hash_id(heap_[index_[j] - 1].id) & mask;
                if (((j - home) & mask) >= ((j - hole) & mask)) {
                    index_[hole] = index_[j];
                    hole = j;
                }
                j = (j + 1) & mask;
            }
            index_[hole] = 0;
            // 2. Swap-with-last in the dense array, repointing the moved
            //    element's index slot at its new position.
            const std::uint32_t last = count_ - 1;
            if (pos != last) {
                heap_[pos] = heap_[last];
                std::size_t k = hash_id(heap_[pos].id) & mask;
                while (index_[k] != last + 1) {
                    IGS_DCHECK(index_[k] != 0);
                    k = (k + 1) & mask;
                }
                index_[k] = pos + 1;
            }
            heap_.pop_back();
            --count_;
            return r;
        }
        i = (i + 1) & mask;
    }
    return r;
}

void
HybridEdgeSet::promote_to_sorted()
{
    heap_.assign(inline_, inline_ + count_);
    std::sort(heap_.begin(), heap_.end(),
              [](const Neighbor& a, const Neighbor& b) { return a.id < b.id; });
    tier_ = kSorted;
}

void
HybridEdgeSet::promote_to_hash()
{
    std::size_t cap = 16;
    while (cap * 3 < static_cast<std::size_t>(count_) * 4 * 2) {
        cap <<= 1;
    }
    index_.assign(cap, 0);
    const std::size_t mask = cap - 1;
    for (std::uint32_t p = 0; p < count_; ++p) {
        std::size_t i = hash_id(heap_[p].id) & mask;
        while (index_[i] != 0) {
            i = (i + 1) & mask;
        }
        index_[i] = p + 1;
    }
    tier_ = kHashed;
}

void
HybridEdgeSet::grow_index()
{
    // Positions are derivable from the dense array, so growth is a
    // rebuild rather than a rehash of the old slots.
    index_.assign(index_.size() * 2, 0);
    const std::size_t mask = index_.size() - 1;
    for (std::uint32_t p = 0; p < count_; ++p) {
        std::size_t i = hash_id(heap_[p].id) & mask;
        while (index_[i] != 0) {
            i = (i + 1) & mask;
        }
        index_[i] = p + 1;
    }
}

std::vector<Neighbor>
HybridEdgeSet::sorted() const
{
    const auto v = view();
    std::vector<Neighbor> result(v.begin(), v.end());
    std::sort(result.begin(), result.end(),
              [](const Neighbor& a, const Neighbor& b) { return a.id < b.id; });
    return result;
}

// ------------------------------------------------------------------- store

HybridStore::HybridStore(std::size_t num_vertices, const StoreTuning& tuning)
    : tuning_(tuning)
{
    // Resolve the tier telemetry at construction so every run that
    // touches a HybridStore exports the same registry keys, whether or
    // not any vertex ever promoted.
    HybridTelemetry::get();
    ensure_vertices(num_vertices);
}

void
HybridStore::ensure_vertices(std::size_t n)
{
    if (n <= out_.size()) {
        return;
    }
    out_.resize(n);
    in_.resize(n);
    auto new_bids = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < latest_bid_size_; ++i) {
        new_bids[i].store(latest_bid_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    latest_bid_ = std::move(new_bids);
    latest_bid_size_ = n;
    // As in AdjacencyList: growth happens between batches, no lock held.
    out_locks_.resize(n);
    in_locks_.resize(n);
}

ApplyResult
HybridStore::insert_into(HybridEdgeSet& set, Neighbor nbr)
{
    auto& t = HybridTelemetry::get();
    const std::uint8_t tier_before = set.tier();
    // igs-lint: allow(hot-path-alloc) -- streamed insert is the workload
    const ApplyResult r = set.insert(nbr, tuning_.hybrid_sorted_threshold);
    t.probes[tier_before]->record(r.probes);
    if (set.tier() != tier_before) {
        if (tier_before == HybridEdgeSet::kInline) {
            t.promotions_to_sorted.inc();
        }
        if (set.tier() == HybridEdgeSet::kHashed) {
            t.promotions_to_hash.inc();
        }
    }
    return r;
}

ApplyResult
HybridStore::remove_from(HybridEdgeSet& set, VertexId nbr_id)
{
    const std::uint8_t tier_now = set.tier();
    const ApplyResult r = set.remove(nbr_id);
    HybridTelemetry::get().probes[tier_now]->record(r.probes);
    return r;
}

ApplyResult
HybridStore::apply_insert(VertexId v, Neighbor nbr, Direction dir)
{
    const VertexId p = map_.to_physical(v);
    IGS_DCHECK(p < out_.size());
    auto& set = dir == Direction::kOut ? out_[p] : in_[p];
    const ApplyResult r = insert_into(set, nbr);
    if (!r.found && dir == Direction::kOut) {
        num_edges_.fetch_add(1, std::memory_order_relaxed);
    }
    return r;
}

ApplyResult
HybridStore::apply_remove(VertexId v, VertexId nbr_id, Direction dir)
{
    const VertexId p = map_.to_physical(v);
    IGS_DCHECK(p < out_.size());
    auto& set = dir == Direction::kOut ? out_[p] : in_[p];
    const ApplyResult r = remove_from(set, nbr_id);
    if (r.found && dir == Direction::kOut) {
        num_edges_.fetch_sub(1, std::memory_order_relaxed);
    }
    return r;
}

std::size_t
HybridStore::apply_coalesced(VertexId v, Direction dir, FlatWeightTable& table)
{
    const VertexId p = map_.to_physical(v);
    IGS_DCHECK(p < out_.size());
    auto& set = dir == Direction::kOut ? out_[p] : in_[p];
    // Steps 2-3 (Fig 8): one scan of the edge data, draining table
    // entries that match existing edges (weight accumulates in place).
    for (Neighbor& n : set.view_mut()) {
        Weight w = 0.0f;
        if (table.drain(n.id, &w)) {
            n.weight += w;
        }
    }
    // Step 4: the remainder is new edges by construction; the tiered
    // insert keeps promotion and index invariants (its duplicate check
    // is a guaranteed miss, so the probes it reports stay honest).
    std::size_t appended = 0;
    table.for_each([&](VertexId target, Weight w) {
        const ApplyResult r = insert_into(set, Neighbor{target, w});
        IGS_DCHECK(!r.found);
        (void)r;
        ++appended;
    });
    if (dir == Direction::kOut && appended != 0) {
        num_edges_.fetch_add(appended, std::memory_order_relaxed);
    }
    return appended;
}

void
HybridStore::apply_renumber(std::span<const VertexId> l2p)
{
    IGS_CHECK_MSG(l2p.size() == out_.size(),
                  "apply_renumber: assignment must cover the vertex space");
    const std::size_t n = out_.size();
    // Move-permute the per-vertex records; heap arrays and hash indexes
    // travel with their HybridEdgeSet, and edge payloads stay logical.
    std::vector<HybridEdgeSet> new_out(n);
    std::vector<HybridEdgeSet> new_in(n);
    for (std::size_t l = 0; l < n; ++l) {
        const VertexId p_old = map_.to_physical(static_cast<VertexId>(l));
        new_out[l2p[l]] = std::move(out_[p_old]);
        new_in[l2p[l]] = std::move(in_[p_old]);
    }
    out_ = std::move(new_out);
    in_ = std::move(new_in);
    map_.rebind(l2p);
}

HybridStore::TierCensus
HybridStore::tier_census() const
{
    TierCensus c;
    for (const HybridEdgeSet& set : out_) {
        ++c.vertices[set.tier()];
    }
    return c;
}

void
HybridStore::publish_tier_telemetry() const
{
    const TierCensus c = tier_census();
    auto& t = HybridTelemetry::get();
    for (int i = 0; i < 3; ++i) {
        t.tier_vertices[i]->set(static_cast<double>(c.vertices[i]));
    }
}

} // namespace igs::graph
