/**
 * @file
 * Degree-Aware Hashing (DAH) dynamic graph structure.
 *
 * The alternative SAGA-Bench structure the paper compares against in
 * §6.2.3: low-degree vertices keep a plain edge array (cache-friendly, no
 * hashing overhead); once a vertex's degree crosses a threshold its edge set
 * is migrated into an open-addressed hash table so duplicate checks become
 * O(1) instead of an O(degree) scan.
 *
 * Same engine-wide update semantics as @ref igs::graph::AdjacencyList
 * (weight accumulation on duplicates, insertions before deletions).
 */
#ifndef IGS_GRAPH_DEGREE_AWARE_HASH_H
#define IGS_GRAPH_DEGREE_AWARE_HASH_H

#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/spinlock.h"
#include "common/types.h"
#include "graph/adjacency_list.h"
#include "graph/dirty_set_view.h"
#include "graph/store_tuning.h"
#include "graph/vertex_id_map.h"

namespace igs::graph {

/**
 * Per-vertex edge container that is an array below `kHashThreshold` and an
 * open-addressed hash table above it.
 */
class DahEdgeSet {
  public:
    /** Default degree at which a vertex migrates from array to hash
     *  storage; the effective value is runtime-tunable
     *  (StoreTuning::dah_hash_threshold, same default). */
    static constexpr std::uint32_t kHashThreshold = 32;

    /** See AdjacencyList::apply_insert.  `hash_threshold` is the
     *  array -> hash migration degree for this set. */
    ApplyResult insert(Neighbor nbr,
                       std::uint32_t hash_threshold = kHashThreshold);
    /** See AdjacencyList::apply_remove. */
    ApplyResult remove(VertexId nbr_id);

    std::uint32_t size() const { return count_; }
    bool hashed() const { return !table_.empty(); }

  private:
    struct Slot {
        VertexId id = kInvalidVertex;
        Weight weight = 0.0f;
    };

  public:
    /**
     * Forward iterator over the stored neighbors, representation-blind:
     * walks the plain array below the migration threshold and skips the
     * empty slots of the open-addressed table above it.  Dereference
     * yields @ref Neighbor by value (hash slots store id/weight in a
     * different layout, so there is no Neighbor lvalue to point at).
     */
    class ConstIterator {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = Neighbor;
        using difference_type = std::ptrdiff_t;

        ConstIterator() = default;

        Neighbor
        operator*() const
        {
            return array_ != nullptr ? *array_
                                     : Neighbor{slot_->id, slot_->weight};
        }

        ConstIterator&
        operator++()
        {
            if (array_ != nullptr) {
                ++array_;
            } else {
                ++slot_;
                skip_empty();
            }
            return *this;
        }

        ConstIterator
        operator++(int)
        {
            ConstIterator tmp = *this;
            ++*this;
            return tmp;
        }

        friend bool operator==(const ConstIterator&,
                               const ConstIterator&) = default;

      private:
        friend class DahEdgeSet;
        ConstIterator(const Neighbor* array, const Slot* slot,
                      const Slot* slot_end)
            : array_(array), slot_(slot), slot_end_(slot_end)
        {
            skip_empty();
        }

        void
        skip_empty()
        {
            while (slot_ != slot_end_ && slot_->id == kInvalidVertex) {
                ++slot_;
            }
        }

        const Neighbor* array_ = nullptr;
        const Slot* slot_ = nullptr;
        const Slot* slot_end_ = nullptr;
    };

    /** Iterable view of the set (graph::GraphReadPath `edges` range). */
    class View {
      public:
        ConstIterator begin() const { return begin_; }
        ConstIterator end() const { return end_; }

      private:
        friend class DahEdgeSet;
        View(ConstIterator begin, ConstIterator end)
            : begin_(begin), end_(end)
        {
        }

        ConstIterator begin_;
        ConstIterator end_;
    };

    /** View of the live representation; invalidated by insert/remove. */
    View
    view() const
    {
        if (table_.empty()) {
            const Neighbor* a = array_.data();
            return View(ConstIterator(a, nullptr, nullptr),
                        ConstIterator(a + array_.size(), nullptr, nullptr));
        }
        const Slot* s = table_.data();
        const Slot* e = s + table_.size();
        return View(ConstIterator(nullptr, s, e),
                    ConstIterator(nullptr, e, e));
    }

    /** Visit every stored neighbor. */
    template <typename Fn>
    void
    for_each(Fn&& fn) const
    {
        if (table_.empty()) {
            for (const Neighbor& n : array_) {
                fn(n);
            }
        } else {
            for (const auto& slot : table_) {
                if (slot.id != kInvalidVertex) {
                    fn(Neighbor{slot.id, slot.weight});
                }
            }
        }
    }

    /** Sorted materialized copy (tests / CSR building). */
    std::vector<Neighbor> sorted() const;

  private:
    void migrate_to_hash();
    void grow_table();
    ApplyResult hash_insert(Neighbor nbr);

    static std::uint64_t
    hash_id(VertexId id)
    {
        std::uint64_t x = id;
        x ^= x >> 16;
        x *= 0x7feb352dull;
        x ^= x >> 15;
        x *= 0x846ca68bull;
        x ^= x >> 16;
        return x;
    }

    std::vector<Neighbor> array_;
    std::vector<Slot> table_; // empty until migrated
    std::uint32_t count_ = 0;
};

/** Dynamic directed graph with degree-aware hashed edge sets. */
class DegreeAwareHash {
  public:
    explicit DegreeAwareHash(std::size_t num_vertices = 0,
                             const StoreTuning& tuning = {});

    /** Replace the migration threshold (affects future inserts only). */
    void set_tuning(const StoreTuning& tuning) { tuning_ = tuning; }
    const StoreTuning& tuning() const { return tuning_; }

    /**
     * Movable (single-threaded only — not during a parallel update).
     * Mirrors AdjacencyList/HybridStore: the moved-from store is left
     * empty and reusable — `num_edges_` transfers with an exchange so
     * the source reads 0, and its bookkeeping is cleared to match.
     */
    DegreeAwareHash(DegreeAwareHash&& other) noexcept
        : out_(std::move(other.out_)), in_(std::move(other.in_)),
          out_locks_(std::move(other.out_locks_)),
          in_locks_(std::move(other.in_locks_)),
          latest_bid_(std::move(other.latest_bid_)),
          latest_bid_size_(other.latest_bid_size_), tuning_(other.tuning_),
          map_(std::move(other.map_)),
          num_edges_(other.num_edges_.exchange(0, std::memory_order_relaxed))
    {
        other.latest_bid_size_ = 0;
        other.map_.reset();
    }

    /**
     * Move-assignment is deliberately deleted, matching the other two
     * backends: the atomic member suppresses the implicit version, so
     * `a = move(b)` silently failed to compile — make it explicit.
     */
    DegreeAwareHash& operator=(DegreeAwareHash&&) = delete;

    std::size_t num_vertices() const { return out_.size(); }
    EdgeId num_edges() const { return num_edges_; }

    /** Grow vertex space (single-threaded, between batches). */
    void ensure_vertices(std::size_t n);

    ApplyResult apply_insert(VertexId v, Neighbor nbr, Direction dir);
    ApplyResult apply_remove(VertexId v, VertexId nbr_id, Direction dir);

    /** Lock index follows row placement (physical); locks are stateless
     *  between batches so a renumber never permutes them. */
    Spinlock&
    lock(VertexId v, Direction dir)
    {
        const VertexId p = map_.to_physical(v);
        return dir == Direction::kOut ? out_locks_[p]
                                      : in_locks_[p];
    }

    std::uint32_t
    degree(VertexId v, Direction dir) const
    {
        return edge_set(v, dir).size();
    }

    const DahEdgeSet&
    edge_set(VertexId v, Direction dir) const
    {
        const VertexId p = map_.to_physical(v);
        return dir == Direction::kOut ? out_[p] : in_[p];
    }

    /**
     * Iterable neighbor range (graph::GraphReadPath), representation-
     * blind across the array/hash tiers.  Unordered — hashed vertices
     * yield slot order — matching the unordered-adjacency contract of
     * the other backends' read paths.  Invalidated by any mutation of
     * `v`'s `dir` set.
     */
    DahEdgeSet::View
    edges(VertexId v, Direction dir) const
    {
        return edge_set(v, dir).view();
    }

    /**
     * Read path annotated with an epoch's dirty set — see
     * AdjacencyList::dirty_view.  Declared backend capability
     * (tools/layers.toml [semantic.backends.DegreeAwareHash]).
     */
    DirtySetView<DegreeAwareHash>
    dirty_view(std::span<const VertexId> dirty) const
    {
        return DirtySetView<DegreeAwareHash>(*this, dirty);
    }

    /** Sorted copy of a vertex's edges (tests / snapshots). */
    std::vector<Neighbor>
    sorted_edges(VertexId v, Direction dir) const
    {
        return edge_set(v, dir).sorted();
    }

    /** See AdjacencyList::latest_bid / exchange_latest_bid. */
    std::uint64_t
    latest_bid(VertexId v) const
    {
        return latest_bid_[v].load(std::memory_order_relaxed);
    }

    std::uint64_t
    exchange_latest_bid(VertexId v, std::uint64_t bid)
    {
        return latest_bid_[v].exchange(bid, std::memory_order_relaxed);
    }

    /**
     * Re-place edge sets under a new logical->physical assignment — see
     * AdjacencyList::apply_renumber.  Edge-set payloads (logical neighbor
     * ids, including hash-table contents) travel whole with their set, so
     * no rehashing happens.  Declared backend capability
     * (tools/layers.toml [semantic.backends.DegreeAwareHash]).
     */
    void apply_renumber(std::span<const VertexId> l2p);

    /** The logical/physical id map (identity until `apply_renumber`). */
    const VertexIdMap& id_map() const { return map_; }

  private:
    std::vector<DahEdgeSet> out_;
    std::vector<DahEdgeSet> in_;
    SpinlockArray out_locks_;
    SpinlockArray in_locks_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> latest_bid_;
    std::size_t latest_bid_size_ = 0;
    StoreTuning tuning_;
    VertexIdMap map_;
    std::atomic<EdgeId> num_edges_{0};
};

} // namespace igs::graph

#endif // IGS_GRAPH_DEGREE_AWARE_HASH_H
