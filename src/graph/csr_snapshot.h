/**
 * @file
 * Immutable CSR snapshot of a dynamic graph.
 *
 * The compute phase (static PageRank/SSSP, GAP-style) runs on a compressed
 * sparse row view built from the latest state of the dynamic structure.
 * Incremental algorithms also consult the snapshot for neighborhood
 * iteration while keeping their own per-vertex state across batches.
 */
#ifndef IGS_GRAPH_CSR_SNAPSHOT_H
#define IGS_GRAPH_CSR_SNAPSHOT_H

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace igs::graph {

/** Compressed sparse row view of one direction of a graph. */
class CsrSnapshot {
  public:
    CsrSnapshot() = default;

    /**
     * Build from any dynamic structure exposing `num_vertices()`,
     * `degree(v, dir)` and `sorted_edges(v, dir)`.
     *
     * @param dir which edge direction to materialize: kOut gives rows of
     *        out-neighbors, kIn rows of in-neighbors.
     */
    template <typename Graph>
    static CsrSnapshot
    build(const Graph& g, Direction dir)
    {
        CsrSnapshot s;
        const std::size_t n = g.num_vertices();
        s.offsets_.resize(n + 1, 0);
        for (VertexId v = 0; v < n; ++v) {
            s.offsets_[v + 1] = s.offsets_[v] + g.degree(v, dir);
        }
        s.neighbors_.resize(s.offsets_[n]);
        for (VertexId v = 0; v < n; ++v) {
            const auto edges = g.sorted_edges(v, dir);
            std::copy(edges.begin(), edges.end(),
                      s.neighbors_.begin() +
                          static_cast<std::ptrdiff_t>(s.offsets_[v]));
        }
        return s;
    }

    std::size_t
    num_vertices() const
    {
        return offsets_.empty() ? 0 : offsets_.size() - 1;
    }

    EdgeId num_edges() const { return neighbors_.size(); }

    std::uint32_t
    degree(VertexId v) const
    {
        return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
    }

    /** Neighbors of `v` (sorted by id). */
    std::span<const Neighbor>
    neighbors(VertexId v) const
    {
        return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
    }

  private:
    std::vector<EdgeId> offsets_;
    std::vector<Neighbor> neighbors_;
};

} // namespace igs::graph

#endif // IGS_GRAPH_CSR_SNAPSHOT_H
