#include "graph/renumber.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace igs::graph {

const char*
to_string(RenumberMode mode)
{
    switch (mode) {
      case RenumberMode::kHubSort:
        return "hub-sort";
      case RenumberMode::kDegreeGroup:
        return "degree-group";
    }
    return "?";
}

double
LocalityMonitor::window_score(const VertexIdMap& map)
{
    if (touched_.empty() || accesses_ == 0) {
        return 1.0;
    }
    // Hot set: the smallest count-descending prefix of touched vertices
    // covering hot_coverage of the window's accesses.
    std::sort(touched_.begin(), touched_.end(),
              [this](VertexId a, VertexId b) {
                  return counts_[a] != counts_[b] ? counts_[a] > counts_[b]
                                                  : a < b;
              });
    const double want =
        params_.hot_coverage * static_cast<double>(accesses_);
    std::uint64_t covered = 0;
    std::size_t hot = 0;
    while (hot < touched_.size() && static_cast<double>(covered) < want) {
        covered += counts_[touched_[hot]];
        ++hot;
    }
    if (hot == 0) {
        return 1.0;
    }
    // Skew gate: under a uniform histogram the hot set is simply
    // hot_coverage of the distinct vertices, making this ratio 1.  A
    // window must concentrate its accesses at least min_skew times
    // tighter than that before layout can matter at all.
    const double skew = params_.hot_coverage *
                        static_cast<double>(touched_.size()) /
                        static_cast<double>(hot);
    if (skew < params_.min_skew) {
        return 1.0;
    }
    // Placement density: how many distinct row-lines the hot set's
    // *physical* placement spreads over, versus the minimum possible.
    lines_scratch_.clear();
    lines_scratch_.reserve(hot);
    for (std::size_t i = 0; i < hot; ++i) {
        lines_scratch_.push_back(map.to_physical(touched_[i]) /
                                 params_.rows_per_line);
    }
    std::sort(lines_scratch_.begin(), lines_scratch_.end());
    const std::size_t actual =
        static_cast<std::size_t>(std::unique(lines_scratch_.begin(),
                                             lines_scratch_.end()) -
                                 lines_scratch_.begin());
    const std::size_t min_lines =
        (hot + params_.rows_per_line - 1) / params_.rows_per_line;
    return static_cast<double>(min_lines) / static_cast<double>(actual);
}

double
LocalityMonitor::end_window(const VertexIdMap& map)
{
    last_score_ = window_score(map);
    if (capture_post_score_) {
        post_renumber_score_ = last_score_;
        capture_post_score_ = false;
    }
    for (VertexId v : touched_) {
        counts_[v] = 0;
    }
    touched_.clear();
    accesses_ = 0;
    ewma_ = (1.0 - params_.ewma_alpha) * ewma_ +
            params_.ewma_alpha * last_score_;
    ++windows_;
    if (windows_since_renumber_ != ~0ull) {
        ++windows_since_renumber_;
    }
    return ewma_;
}

std::vector<VertexId>
LocalityRenumberer::plan(std::span<const std::uint64_t> degrees,
                         RenumberMode mode)
{
    const std::size_t n = degrees.size();
    std::vector<VertexId> order(n);
    for (std::size_t i = 0; i < n; ++i) {
        order[i] = static_cast<VertexId>(i);
    }
    if (mode == RenumberMode::kHubSort) {
        std::sort(order.begin(), order.end(),
                  [&](VertexId a, VertexId b) {
                      return degrees[a] != degrees[b]
                                 ? degrees[a] > degrees[b]
                                 : a < b;
                  });
    } else {
        // Degree-group: log2 buckets, hot buckets first; the sort is on
        // (bucket desc, id asc), which is stable within a bucket by
        // construction.
        std::sort(order.begin(), order.end(),
                  [&](VertexId a, VertexId b) {
                      const int ba = std::bit_width(degrees[a]);
                      const int bb = std::bit_width(degrees[b]);
                      return ba != bb ? ba > bb : a < b;
                  });
    }
    std::vector<VertexId> l2p(n);
    for (std::size_t rank = 0; rank < n; ++rank) {
        l2p[order[rank]] = static_cast<VertexId>(rank);
    }
    return l2p;
}

} // namespace igs::graph
