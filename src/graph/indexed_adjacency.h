/**
 * @file
 * Index-accelerated adjacency list for simulation-mode update replay.
 *
 * The paper's adjacency-list structure pays an O(degree) linear scan per
 * duplicate check.  Replaying a high-degree stream on the host would make
 * those scans O(degree^2) *host* work per batch (a wiki-500K hub receives
 * tens of thousands of edges), even though the scan cost is exactly what
 * the timing model charges analytically.  This structure keeps the same
 * edge arrays and the same final state as @ref AdjacencyList but adds a
 * hash index (edge -> array position) so the host-side duplicate check is
 * O(1), while @ref ApplyResult reports the probe count the *modeled*
 * linear scan would have performed:
 *
 *  - found at array position p  ->  probes = p + 1 (scan stops at match);
 *  - not found                  ->  probes = current length (full scan).
 *
 * For insert-only streams these probe counts are bit-identical to
 * AdjacencyList's (verified by tests); after deletions they may differ
 * slightly because AdjacencyList's swap-removal permutes scan order.
 */
#ifndef IGS_GRAPH_INDEXED_ADJACENCY_H
#define IGS_GRAPH_INDEXED_ADJACENCY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "graph/adjacency_list.h"

namespace igs::graph {

/** Adjacency list with O(1) duplicate checks and modeled probe reporting. */
class IndexedAdjacency {
  public:
    explicit IndexedAdjacency(std::size_t num_vertices = 0);

    std::size_t num_vertices() const { return out_.size(); }
    EdgeId num_edges() const { return num_edges_; }

    /** Grow the vertex space (single-threaded, between batches). */
    void ensure_vertices(std::size_t n);

    /** Same contract as AdjacencyList::apply_insert; probes are modeled. */
    ApplyResult apply_insert(VertexId v, Neighbor nbr, Direction dir);

    /** Same contract as AdjacencyList::apply_remove; probes are modeled. */
    ApplyResult apply_remove(VertexId v, VertexId nbr_id, Direction dir);

    std::uint32_t
    degree(VertexId v, Direction dir) const
    {
        const auto& e = dir == Direction::kOut ? out_[v] : in_[v];
        return static_cast<std::uint32_t>(e.size());
    }

    const std::vector<Neighbor>&
    edges(VertexId v, Direction dir) const
    {
        return dir == Direction::kOut ? out_[v] : in_[v];
    }

    std::vector<Neighbor> sorted_edges(VertexId v, Direction dir) const;

    std::uint64_t
    latest_bid(VertexId v) const
    {
        return latest_bid_[v].load(std::memory_order_relaxed);
    }

    std::uint64_t
    exchange_latest_bid(VertexId v, std::uint64_t bid)
    {
        return latest_bid_[v].exchange(bid, std::memory_order_relaxed);
    }

    /** Epoch token (graph/graph_store.h); same contract as
     *  AdjacencyList::epoch — advanced by the engine at publication. */
    EpochId epoch() const { return epoch_; }
    EpochId advance_epoch() { return ++epoch_; }

    /** Order-insensitive structural equality against an AdjacencyList. */
    bool same_topology(const AdjacencyList& other) const;

  private:
    static std::uint64_t
    key_of(VertexId v, VertexId nbr)
    {
        return (static_cast<std::uint64_t>(v) << 32) | nbr;
    }

    std::vector<std::vector<Neighbor>> out_;
    std::vector<std::vector<Neighbor>> in_;
    /** (v, nbr) -> position of nbr in v's edge array, per direction. */
    std::unordered_map<std::uint64_t, std::uint32_t> out_index_;
    std::unordered_map<std::uint64_t, std::uint32_t> in_index_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> latest_bid_;
    std::size_t latest_bid_size_ = 0;
    EpochId epoch_ = 0;
    EdgeId num_edges_ = 0;
};

} // namespace igs::graph

#endif // IGS_GRAPH_INDEXED_ADJACENCY_H
