/**
 * @file
 * GraphStore — the read-path interface of every graph storage backend.
 *
 * The compute phase only ever *reads* topology: `num_vertices()`,
 * `degree(v, dir)` and `edges(v, dir)`.  The update phase mutates a live
 * structure through a different, backend-specific surface (apply_insert /
 * apply_remove / edges_mut).  Splitting the two lets the engine pipeline
 * them: compute for epoch k runs against an immutable @ref SnapshotView
 * while the ingest of batch k+1 mutates the live store (DESIGN.md §11,
 * and the decoupled ingest/compute model of the streaming-graph survey).
 *
 * Epoch tokens version the read path.  The live store's `epoch()` counts
 * compute hand-offs (it advances at each epoch publication); a snapshot's
 * `epoch()` names the publication it was copied at.  Consumers can assert
 * they are computing on the epoch they were handed.
 *
 * Implementations: graph::AdjacencyList and graph::IndexedAdjacency (live,
 * mutable) and graph::SnapshotView (immutable, copy-on-publish) — checked
 * by static_asserts in their headers' tests.
 */
#ifndef IGS_GRAPH_GRAPH_STORE_H
#define IGS_GRAPH_GRAPH_STORE_H

#include <concepts>
#include <cstdint>

#include "common/types.h"

namespace igs::graph {

/**
 * Read-only topology access — what analytics algorithms may touch.
 * `edges(v, dir)` must return an iterable range of @ref Neighbor.
 */
template <typename G>
concept GraphReadPath = requires(const G& g, VertexId v, Direction dir) {
    { g.num_vertices() } -> std::convertible_to<std::size_t>;
    { g.degree(v, dir) } -> std::convertible_to<std::uint32_t>;
    { g.edges(v, dir).begin() };
    { g.edges(v, dir).end() };
};

/** A versioned graph store: the read path plus an epoch token. */
template <typename G>
concept GraphStore = GraphReadPath<G> && requires(const G& g) {
    { g.epoch() } -> std::convertible_to<EpochId>;
};

} // namespace igs::graph

#endif // IGS_GRAPH_GRAPH_STORE_H
