/**
 * @file
 * GraphTango-style three-tier hybrid adjacency store.
 *
 * Where @ref igs::graph::AdjacencyList pays an O(degree) duplicate-check
 * scan on every insert (the cost the paper's USC/HAU techniques attack
 * microarchitecturally), this store removes the scan *structurally* with a
 * degree-adaptive per-vertex representation:
 *
 *  - tier 0 (inline): up to @ref HybridEdgeSet::kInlineCapacity edges live
 *    directly in the vertex record — no pointer chase for the tiny-degree
 *    majority of a power-law graph;
 *  - tier 1 (sorted): a sorted heap-allocated edge array; duplicate checks
 *    are an O(log degree) binary search;
 *  - tier 2 (hashed): edges stay in a dense append-order array (so
 *    iteration remains a contiguous scan) plus an open-addressed hash
 *    index mapping neighbor id -> array position; duplicate checks are
 *    O(1) expected.
 *
 * Promotion is one-way on degree growth (tier 0 -> 1 at the inline
 * capacity, tier 1 -> 2 at StoreTuning::hybrid_sorted_threshold).
 * Deletions never demote: a hub that shrinks keeps its index, avoiding
 * representation thrash on churn-heavy streams (see DESIGN.md §12).
 *
 * Engine-wide update semantics are identical to AdjacencyList (weight
 * accumulation on duplicate insert, insertions before deletions per batch,
 * delete-of-missing is a no-op), so the two stores are equivalent under
 * any update schedule — property-tested in tests/test_hybrid_store.cc.
 *
 * All three tiers expose the edge set as one contiguous
 * std::span<const Neighbor>, so the store satisfies graph::GraphStore and
 * plugs into SnapshotStore publication and every analytics read path
 * unchanged.  Telemetry: core.graph.tier_* (registered lazily on first
 * use so runs that never construct a HybridStore keep their golden
 * registry snapshots unchanged).
 */
#ifndef IGS_GRAPH_HYBRID_STORE_H
#define IGS_GRAPH_HYBRID_STORE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/flat_table.h"
#include "common/spinlock.h"
#include "common/types.h"
#include "graph/adjacency_list.h" // ApplyResult
#include "graph/dirty_set_view.h"
#include "graph/graph_store.h"
#include "graph/store_tuning.h"
#include "graph/vertex_id_map.h"

namespace igs::graph {

/**
 * Per-vertex three-tier edge container.  Pure data structure: tier
 * thresholds come in per call and telemetry is recorded by the owning
 * @ref HybridStore, so the container itself stays trivially testable.
 */
class HybridEdgeSet {
  public:
    /** Edges stored inline in the vertex record before the first
     *  promotion.  A compile-time layout property, not a tunable. */
    static constexpr std::uint32_t kInlineCapacity = 4;

    enum Tier : std::uint8_t { kInline = 0, kSorted = 1, kHashed = 2 };

    std::uint8_t tier() const { return tier_; }
    std::uint32_t size() const { return count_; }

    /**
     * Duplicate-check then insert (weight accumulates on a hit).
     * `sorted_threshold` is the tier-1 -> tier-2 promotion degree
     * (StoreTuning::hybrid_sorted_threshold).  ApplyResult::probes counts
     * the id comparisons the duplicate check performed — a linear-scan
     * count at tier 0, a binary-search count at tier 1, a cluster-probe
     * count at tier 2.
     */
    ApplyResult insert(Neighbor nbr, std::uint32_t sorted_threshold);

    /** Remove if present (no-op otherwise); never demotes the tier. */
    ApplyResult remove(VertexId nbr_id);

    /** Contiguous view of the stored edges (any tier). */
    std::span<const Neighbor>
    view() const
    {
        return tier_ == kInline
                   ? std::span<const Neighbor>(inline_, count_)
                   : std::span<const Neighbor>(heap_.data(), count_);
    }

    /** Mutable view (USC coalesced scan; caller owns synchronization). */
    std::span<Neighbor>
    view_mut()
    {
        return tier_ == kInline
                   ? std::span<Neighbor>(inline_, count_)
                   : std::span<Neighbor>(heap_.data(), count_);
    }

    /** Sorted materialized copy (tests / CSR building). */
    std::vector<Neighbor> sorted() const;

  private:
    void promote_to_sorted();
    void promote_to_hash();
    /** Double the hash index and rebuild it from the dense array. */
    void grow_index();
    ApplyResult hash_insert(Neighbor nbr);
    ApplyResult hash_remove(VertexId nbr_id);

    static std::uint64_t
    hash_id(VertexId id)
    {
        std::uint64_t x = id;
        x ^= x >> 16;
        x *= 0x7feb352dull;
        x ^= x >> 15;
        x *= 0x846ca68bull;
        x ^= x >> 16;
        return x;
    }

    Neighbor inline_[kInlineCapacity] = {};
    /** Tier 1: sorted by id.  Tier 2: dense, append order. */
    std::vector<Neighbor> heap_;
    /** Tier 2 only: open-addressed slots holding position+1 (0 = empty). */
    std::vector<std::uint32_t> index_;
    std::uint32_t count_ = 0;
    std::uint8_t tier_ = kInline;
};

/**
 * Dynamic directed graph over @ref HybridEdgeSet per vertex/direction.
 * Drop-in peer of AdjacencyList for the real-time engine: same locking
 * surface, same latest_bid OCA support, same epoch tokens.  The USC update
 * path uses @ref apply_coalesced instead of AdjacencyList's raw
 * `edges_mut` (the hash index must stay consistent with the dense array).
 */
class HybridStore {
  public:
    explicit HybridStore(std::size_t num_vertices = 0,
                         const StoreTuning& tuning = {});

    /** Movable (single-threaded only — not during a parallel update).
     *  Mirrors AdjacencyList: the moved-from store is left empty. */
    HybridStore(HybridStore&& other) noexcept
        : out_(std::move(other.out_)), in_(std::move(other.in_)),
          out_locks_(std::move(other.out_locks_)),
          in_locks_(std::move(other.in_locks_)),
          latest_bid_(std::move(other.latest_bid_)),
          latest_bid_size_(other.latest_bid_size_),
          epoch_(other.epoch_), tuning_(other.tuning_),
          map_(std::move(other.map_)),
          num_edges_(other.num_edges_.exchange(0, std::memory_order_relaxed))
    {
        other.latest_bid_size_ = 0;
        other.epoch_ = 0;
        other.map_.reset();
    }

    HybridStore& operator=(HybridStore&&) = delete;

    /** Replace the tier thresholds.  Takes effect on future promotions
     *  only; call before the first insert for fully uniform behavior. */
    void set_tuning(const StoreTuning& tuning) { tuning_ = tuning; }
    const StoreTuning& tuning() const { return tuning_; }

    std::size_t num_vertices() const { return out_.size(); }
    EdgeId num_edges() const { return num_edges_; }

    /** Grow vertex space (single-threaded, between batches). */
    void ensure_vertices(std::size_t n);

    /** See AdjacencyList::apply_insert / apply_remove. */
    ApplyResult apply_insert(VertexId v, Neighbor nbr, Direction dir);
    ApplyResult apply_remove(VertexId v, VertexId nbr_id, Direction dir);

    /**
     * USC coalesced apply (stream/updaters.h, Fig 8 steps 2-4): one scan
     * of `v`'s edge data draining in-place weight matches from `table`,
     * then the remaining table entries are inserted (tier promotions
     * included).  Returns the number of appended edges; `num_edges` is
     * updated internally.  Caller owns synchronization (run ownership).
     */
    std::size_t apply_coalesced(VertexId v, Direction dir,
                                FlatWeightTable& table);

    /** Per-vertex/per-direction lock for the baseline update path.
     *  Indexed by physical row like AdjacencyList::lock. */
    Spinlock&
    lock(VertexId v, Direction dir)
    {
        const VertexId p = map_.to_physical(v);
        return dir == Direction::kOut ? out_locks_[p] : in_locks_[p];
    }

    std::uint32_t
    degree(VertexId v, Direction dir) const
    {
        return edge_set(v, dir).size();
    }

    /** Immutable contiguous view of `v`'s edges (any tier). */
    std::span<const Neighbor>
    edges(VertexId v, Direction dir) const
    {
        return edge_set(v, dir).view();
    }

    const HybridEdgeSet&
    edge_set(VertexId v, Direction dir) const
    {
        const VertexId p = map_.to_physical(v);
        return dir == Direction::kOut ? out_[p] : in_[p];
    }

    /** Current representation tier of `v`'s `dir` edge set. */
    std::uint8_t tier(VertexId v, Direction dir) const
    {
        return edge_set(v, dir).tier();
    }

    /** See AdjacencyList::latest_bid / exchange_latest_bid. */
    std::uint64_t
    latest_bid(VertexId v) const
    {
        return latest_bid_[v].load(std::memory_order_relaxed);
    }

    std::uint64_t
    exchange_latest_bid(VertexId v, std::uint64_t bid)
    {
        return latest_bid_[v].exchange(bid, std::memory_order_relaxed);
    }

    /** Epoch token (see AdjacencyList::epoch). */
    EpochId epoch() const { return epoch_; }
    EpochId advance_epoch() { return ++epoch_; }

    /** Sorted copy of an edge set (tests / CSR building). */
    std::vector<Neighbor>
    sorted_edges(VertexId v, Direction dir) const
    {
        return edge_set(v, dir).sorted();
    }

    /**
     * Read path annotated with an epoch's dirty set — see
     * AdjacencyList::dirty_view.  Declared backend capability
     * (tools/layers.toml [semantic.backends.HybridStore]).
     */
    DirtySetView<HybridStore>
    dirty_view(std::span<const VertexId> dirty) const
    {
        return DirtySetView<HybridStore>(*this, dirty);
    }

    /** See AdjacencyList::apply_renumber — move-permutes the per-vertex
     *  HybridEdgeSet records (any tier; the heap arrays and hash indexes
     *  travel with them).  Declared backend capability
     *  (tools/layers.toml [semantic.backends.HybridStore]). */
    void apply_renumber(std::span<const VertexId> l2p);

    /** The logical/physical id map (identity until `apply_renumber`). */
    const VertexIdMap& id_map() const { return map_; }

    /** Out-direction tier population (vertices per tier). */
    struct TierCensus {
        std::size_t vertices[3] = {0, 0, 0};
    };
    TierCensus tier_census() const;

    /** Refresh the core.graph.tier*_vertices gauges from a fresh census.
     *  The engine calls this at each epoch publication. */
    void publish_tier_telemetry() const;

    /**
     * Structural equality against any store exposing
     * `num_vertices`/`sorted_edges` (order-insensitive; weights within
     * the same tolerance AdjacencyList::same_topology uses).
     */
    template <typename Other>
    bool
    same_topology(const Other& other) const
    {
        if (num_vertices() != other.num_vertices()) {
            return false;
        }
        for (VertexId v = 0; v < num_vertices(); ++v) {
            for (Direction dir : {Direction::kOut, Direction::kIn}) {
                const auto a = sorted_edges(v, dir);
                const auto b = other.sorted_edges(v, dir);
                if (a.size() != b.size()) {
                    return false;
                }
                for (std::size_t i = 0; i < a.size(); ++i) {
                    if (a[i].id != b[i].id) {
                        return false;
                    }
                    const float d = a[i].weight - b[i].weight;
                    if (d > 1e-4f || d < -1e-4f) {
                        return false;
                    }
                }
            }
        }
        return true;
    }

  private:
    /** insert/remove wrappers that record tier telemetry. */
    ApplyResult insert_into(HybridEdgeSet& set, Neighbor nbr);
    ApplyResult remove_from(HybridEdgeSet& set, VertexId nbr_id);

    std::vector<HybridEdgeSet> out_;
    std::vector<HybridEdgeSet> in_;
    SpinlockArray out_locks_;
    SpinlockArray in_locks_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> latest_bid_;
    std::size_t latest_bid_size_ = 0;
    EpochId epoch_ = 0;
    StoreTuning tuning_;
    VertexIdMap map_;
    std::atomic<EdgeId> num_edges_{0};
};

static_assert(GraphStore<HybridStore>,
              "HybridStore must satisfy the versioned read-path concept");

} // namespace igs::graph

#endif // IGS_GRAPH_HYBRID_STORE_H
