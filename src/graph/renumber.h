/**
 * @file
 * Input-aware locality renumbering: the online monitor that watches the
 * stream's access locality and the planner that produces a new
 * logical->physical assignment when it degrades (DESIGN.md §16).
 *
 * The decision structure mirrors ABR: cheap per-batch instrumentation, a
 * smoothed score, and a threshold that separates "leave the layout
 * alone" from "pay for a renumber now because the stream will amortize
 * it".  Two safeguards keep the trigger honest:
 *
 *  - a *skew gate*: when the access histogram of a window is close to
 *    uniform (no hot set to compact), the window scores a perfect 1.0 —
 *    no layout can beat another on uniform traffic, so the policy must
 *    never fire on it ("A Closer Look at Lightweight Graph Reordering",
 *    PAPERS.md, is explicit that reordering uniform inputs only costs);
 *  - warmup and cooldown windows, so one noisy batch neither triggers a
 *    renumber nor re-triggers immediately after one.
 *
 * The planner (@ref LocalityRenumberer) implements the two lightweight
 * orders that paper evaluates: hub-sort (descending degree) and
 * degree-group (log2-degree buckets, hot buckets first, stable inside a
 * bucket).  Both are deterministic: ties break on ascending logical id.
 */
#ifndef IGS_GRAPH_RENUMBER_H
#define IGS_GRAPH_RENUMBER_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/vertex_id_map.h"

namespace igs::graph {

/** Which lightweight reordering the planner produces. */
enum class RenumberMode : std::uint8_t {
    kHubSort,     ///< descending total degree, ties on ascending id
    kDegreeGroup, ///< log2-degree buckets hot-first, stable within bucket
};

const char* to_string(RenumberMode mode);

/** Trigger policy + monitor tuning (EngineConfig::renumber). */
struct RenumberParams {
    /** Master switch.  Off (the default) keeps every backend on the
     *  identity map — the engine's behavior is bit-identical to the
     *  pre-indirection code and no renumber telemetry is registered. */
    bool enabled = false;
    RenumberMode mode = RenumberMode::kHubSort;
    /** Fire when the locality EWMA drops below this. */
    double threshold = 0.55;
    /** EWMA smoothing factor for per-window scores. */
    double ewma_alpha = 0.3;
    /** Skew gate: a window whose hot set is not at least this many times
     *  denser than uniform scores 1.0 (nothing to compact). */
    double min_skew = 2.0;
    /** Fraction of window accesses the "hot set" must cover. */
    double hot_coverage = 0.75;
    /** Adjacency-row headers per modeled cache line (the placement-
     *  density unit; must match sim::RenumberMeter's address model). */
    std::uint32_t rows_per_line = 8;
    /** Windows observed before the trigger may fire at all. */
    std::uint32_t warmup_windows = 4;
    /** Windows after a renumber during which the trigger is masked. */
    std::uint32_t cooldown_windows = 8;
    /**
     * Re-fire hysteresis: after a renumber, the trigger only fires again
     * once the EWMA drops below refire_factor times the score the *last*
     * renumber actually achieved (its first post-pass window).  The
     * planner is deterministic, so when the achieved score is itself
     * modest — degree order is an imperfect proxy for access frequency —
     * re-planning from near-identical degrees would reproduce the same
     * layout and pay the pass for nothing; only a genuine shift in the
     * stream's hot set (placement decaying well below what the plan
     * achieved) justifies paying again.
     */
    double refire_factor = 0.7;
};

/**
 * Per-window access-locality statistics.  One window = one ingested
 * batch: the engine feeds every src/dst row touch, then closes the
 * window against the backend's current id map.  All state is owned by
 * the ingest thread; cost per touch is one counter bump, and the
 * histogram reset at window close touches only the vertices the window
 * actually saw.
 */
class LocalityMonitor {
  public:
    explicit LocalityMonitor(const RenumberParams& params = {})
        : params_(params)
    {
    }

    const RenumberParams& params() const { return params_; }

    /** Record one row access (a batch edge touches src and dst). */
    void
    observe(VertexId v)
    {
        if (v >= counts_.size()) {
            counts_.resize(v + 1, 0);
        }
        if (counts_[v]++ == 0) {
            touched_.push_back(v);
        }
        ++accesses_;
    }

    /**
     * Close the current window: score the placement density of its hot
     * set under `map`, fold the score into the EWMA, and reset the
     * histogram.  Returns the updated EWMA.
     */
    double end_window(const VertexIdMap& map);

    /** Trigger verdict for the window just closed (ABR-style). */
    bool
    should_renumber() const
    {
        return windows_ >= params_.warmup_windows &&
               windows_since_renumber_ >= params_.cooldown_windows &&
               ewma_ < params_.threshold &&
               ewma_ < post_renumber_score_ * params_.refire_factor;
    }

    /** Tell the monitor a renumber was applied (starts the cooldown and
     *  resets the EWMA to optimistic — the new layout is dense). */
    void
    note_renumbered()
    {
        windows_since_renumber_ = 0;
        ewma_ = 1.0;
        capture_post_score_ = true;
    }

    double ewma() const { return ewma_; }
    double last_window_score() const { return last_score_; }
    std::uint64_t windows() const { return windows_; }

  private:
    /** Raw score of the open window in (0, 1]; 1.0 = nothing to gain. */
    double window_score(const VertexIdMap& map);

    RenumberParams params_;
    std::vector<std::uint32_t> counts_;
    std::vector<VertexId> touched_;
    /** Reused per window by window_score (hot-set line ids). */
    std::vector<VertexId> lines_scratch_;
    std::uint64_t accesses_ = 0;
    double ewma_ = 1.0;
    double last_score_ = 1.0;
    /** Score the last renumber achieved (first post-pass window); 1.0
     *  until a renumber happens, so the first trigger is gated by the
     *  threshold alone (threshold < refire_factor * 1.0). */
    double post_renumber_score_ = 1.0;
    bool capture_post_score_ = false;
    std::uint64_t windows_ = 0;
    /** Saturating window counter since the last renumber; starts beyond
     *  any cooldown so the first trigger is gated by warmup alone. */
    std::uint64_t windows_since_renumber_ = ~0ull;
};

/**
 * Plans a new logical->physical assignment from per-vertex degrees.
 * The monitor decides *when* to renumber; the degrees decide the
 * *order*.  Stateless — `plan` is a pure function of its inputs.
 */
class LocalityRenumberer {
  public:
    /**
     * Produce l2p such that vertex ranks are assigned by `mode` over
     * `degrees` (total degree per logical id).  Deterministic: ties
     * break on ascending logical id.  The result is a permutation of
     * [0, degrees.size()) suitable for a backend's `apply_renumber`.
     */
    static std::vector<VertexId> plan(std::span<const std::uint64_t> degrees,
                                      RenumberMode mode);
};

} // namespace igs::graph

#endif // IGS_GRAPH_RENUMBER_H
