/**
 * @file
 * Adjacency-list dynamic graph structure ("AS" in the paper / SAGA-Bench).
 *
 * Per vertex, two growable edge arrays (out- and in-neighbors) plus a
 * per-vertex/per-direction lock used only by the baseline (non-reordered)
 * update path.  Duplicate checking is a linear scan of the vertex's edge
 * array — the cost the paper's USC and HAU techniques target.
 *
 * Engine-wide update semantics (shared by every update path so they can be
 * cross-checked for equivalence):
 *  - inserting an edge that already exists *accumulates* its weight
 *    (commutative, hence deterministic under any parallel schedule);
 *  - each batch applies all insertions before any deletions (the paper's
 *    HAU ordering rule, adopted globally);
 *  - deletion of a non-existent edge is a no-op.
 *
 * The structure also carries the per-vertex `latest_bid` field the paper
 * adds for OCA's inter-batch overlap measurement (§5).
 */
#ifndef IGS_GRAPH_ADJACENCY_LIST_H
#define IGS_GRAPH_ADJACENCY_LIST_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/spinlock.h"
#include "common/types.h"
#include "graph/dirty_set_view.h"
#include "graph/vertex_id_map.h"

namespace igs::graph {

/** Outcome of a single duplicate-check-and-apply operation. */
struct ApplyResult {
    /** True if the edge already existed (weight accumulated / deletable). */
    bool found = false;
    /** Elements examined by the duplicate-check scan. */
    std::uint32_t probes = 0;
    /** Edge-array length *before* the operation (drives lock-cost models). */
    std::uint32_t len_before = 0;
};

/** Dynamic directed graph stored as per-vertex adjacency arrays. */
class AdjacencyList {
  public:
    /** Create a graph over vertices [0, num_vertices). */
    explicit AdjacencyList(std::size_t num_vertices = 0);

    /**
     * Movable (single-threaded only — not during a parallel update).
     * The moved-from graph is left empty and reusable: `num_edges_` is
     * transferred with an exchange so the source reads 0 afterwards, and
     * its `latest_bid` bookkeeping is cleared to match the stolen array.
     */
    AdjacencyList(AdjacencyList&& other) noexcept
        : out_(std::move(other.out_)), in_(std::move(other.in_)),
          out_locks_(std::move(other.out_locks_)),
          in_locks_(std::move(other.in_locks_)),
          latest_bid_(std::move(other.latest_bid_)),
          latest_bid_size_(other.latest_bid_size_),
          epoch_(other.epoch_), map_(std::move(other.map_)),
          num_edges_(other.num_edges_.exchange(0, std::memory_order_relaxed))
    {
        other.latest_bid_size_ = 0;
        other.epoch_ = 0;
        other.map_.reset();
    }

    /**
     * Move-assignment is deliberately deleted: the implicit version was
     * never generated (the atomic member suppresses it), so `a = move(b)`
     * silently failed to compile — make the contract explicit.
     */
    AdjacencyList& operator=(AdjacencyList&&) = delete;

    /** Number of vertex slots. */
    std::size_t num_vertices() const { return out_.size(); }

    /** Total directed edge count (each streamed edge contributes one
     *  out-entry and one in-entry; this counts out-entries). */
    EdgeId num_edges() const { return num_edges_; }

    /**
     * Grow the vertex space to at least `n` slots.  Must be called
     * single-threaded (between batches); existing edges are preserved.
     */
    void ensure_vertices(std::size_t n);

    /**
     * Duplicate-check then insert `nbr` into `v`'s `dir` edge array.
     * If present, accumulates the weight.  Caller is responsible for
     * synchronization (see `lock()`).
     */
    ApplyResult apply_insert(VertexId v, Neighbor nbr, Direction dir);

    /**
     * Remove the edge to `nbr_id` from `v`'s `dir` edge array if present
     * (swap-with-last removal; edge order is not meaningful).
     */
    ApplyResult apply_remove(VertexId v, VertexId nbr_id, Direction dir);

    /** Per-vertex/per-direction lock for the baseline update path.
     *  Lock index follows row placement so lock and row agree under any
     *  map; locks are stateless between batches, so a renumber (which
     *  runs between batches) never needs to permute them. */
    Spinlock&
    lock(VertexId v, Direction dir)
    {
        const VertexId p = map_.to_physical(v);
        return dir == Direction::kOut ? out_locks_[p]
                                      : in_locks_[p];
    }

    /** Degree of `v` in direction `dir`. */
    std::uint32_t
    degree(VertexId v, Direction dir) const
    {
        const VertexId p = map_.to_physical(v);
        const auto& e = dir == Direction::kOut ? out_[p] : in_[p];
        return static_cast<std::uint32_t>(e.size());
    }

    /** Immutable view of `v`'s edge array. */
    const std::vector<Neighbor>&
    edges(VertexId v, Direction dir) const
    {
        const VertexId p = map_.to_physical(v);
        return dir == Direction::kOut ? out_[p] : in_[p];
    }

    /**
     * Mutable access to `v`'s edge array, for coalesced (USC) and
     * simulated-hardware (HAU) update paths that manage their own scans.
     * The caller must keep `num_edges` consistent via
     * `note_edges_added`/`note_edges_removed`.
     */
    std::vector<Neighbor>&
    edges_mut(VertexId v, Direction dir)
    {
        const VertexId p = map_.to_physical(v);
        return dir == Direction::kOut ? out_[p] : in_[p];
    }

    /** Bookkeeping hooks for paths using `edges_mut` (out-direction only
     *  counts toward `num_edges`). */
    void note_edges_added(Direction dir, EdgeId n);
    void note_edges_removed(Direction dir, EdgeId n);

    /** OCA support: batch id in which `v` last appeared as a source. */
    std::uint64_t
    latest_bid(VertexId v) const
    {
        return latest_bid_[v].load(std::memory_order_relaxed);
    }

    /**
     * Atomically set `v`'s latest batch id, returning the previous value.
     * The exchange makes OCA's "first touch in this batch" detection
     * exactly-once under parallel updates.
     */
    std::uint64_t
    exchange_latest_bid(VertexId v, std::uint64_t bid)
    {
        return latest_bid_[v].exchange(bid, std::memory_order_relaxed);
    }

    /**
     * Epoch token (graph/graph_store.h).  Counts compute hand-offs: the
     * engine bumps it via `advance_epoch()` each time it publishes a
     * snapshot.  Plain (non-atomic) — publication happens on the ingest
     * thread between batches, never concurrently with an update phase.
     */
    EpochId epoch() const { return epoch_; }

    /** Advance to the next epoch and return the new token. */
    EpochId advance_epoch() { return ++epoch_; }

    /** Sorted copy of an edge array (test/diff helper). */
    std::vector<Neighbor> sorted_edges(VertexId v, Direction dir) const;

    /** Structural equality against another graph (order-insensitive). */
    bool same_topology(const AdjacencyList& other) const;

    /**
     * Read path annotated with an epoch's dirty set (sorted, deduplicated
     * — PendingWork::affected).  Declared backend capability
     * (tools/layers.toml [semantic.backends.AdjacencyList]); incremental
     * analytics seed their delta propagation from it (DESIGN.md §14).
     */
    DirtySetView<AdjacencyList>
    dirty_view(std::span<const VertexId> dirty) const
    {
        return DirtySetView<AdjacencyList>(*this, dirty);
    }

    /**
     * Re-place adjacency rows under a new logical->physical assignment
     * (a permutation of [0, num_vertices()); see LocalityRenumberer).
     * Rows are move-permuted — edge payloads (logical neighbor ids) are
     * untouched, and `latest_bid` stays logical-indexed, so every public
     * read is invariant under this call.  Single-threaded, between
     * batches, like `ensure_vertices`.  Declared backend capability
     * (tools/layers.toml [semantic.backends.AdjacencyList]).
     */
    void apply_renumber(std::span<const VertexId> l2p);

    /** The logical/physical id map (identity until `apply_renumber`). */
    const VertexIdMap& id_map() const { return map_; }

  private:
    std::vector<std::vector<Neighbor>> out_;
    std::vector<std::vector<Neighbor>> in_;
    SpinlockArray out_locks_;
    SpinlockArray in_locks_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> latest_bid_;
    std::size_t latest_bid_size_ = 0;
    EpochId epoch_ = 0;
    VertexIdMap map_;
    std::atomic<EdgeId> num_edges_{0};
};

} // namespace igs::graph

#endif // IGS_GRAPH_ADJACENCY_LIST_H
