/**
 * @file
 * DirtySetView — a graph read path annotated with the epoch's dirty set.
 *
 * The pipeline already computes, per epoch, exactly which vertices an
 * incremental algorithm needs to look at: stream::PendingAccumulator
 * deduplicates every src/dst touched since the last hand-off, and
 * SnapshotStore::publish recopies only those vertices.  This view carries
 * that same set alongside the topology so the compute phase can consume
 * it without a second bookkeeping channel: `DirtySetView` satisfies
 * graph::GraphReadPath (it forwards `num_vertices`/`degree`/`edges` to
 * the wrapped store), and adds `dirty()` / `is_dirty(v)` /
 * `dirty_fraction()` for seeding delta propagation and for the
 * full-vs-delta policy decision (DESIGN.md §14).
 *
 * Non-owning: the wrapped store and the dirty span must outlive the view
 * (per-epoch stack object by convention).  The dirty span must be sorted
 * and deduplicated — `is_dirty` binary-searches it — which is exactly
 * what PendingAccumulator::hand_off produces in PendingWork::affected.
 * Every backend exposes `dirty_view(span)` as a declared capability
 * (tools/layers.toml [semantic.backends.*]), so renaming it away from
 * the compute path fails CI instead of silently losing the fast path.
 */
#ifndef IGS_GRAPH_DIRTY_SET_VIEW_H
#define IGS_GRAPH_DIRTY_SET_VIEW_H

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/check.h"
#include "common/types.h"
#include "graph/graph_store.h"

namespace igs::graph {

/**
 * Read path of `G` plus the epoch's sorted, deduplicated dirty set.
 *
 * `G` must satisfy graph::GraphReadPath — asserted in the constructor
 * rather than on the template head so backends can declare
 * `dirty_view()` members returning `DirtySetView<Self>` while `Self` is
 * still incomplete (the concept is then evaluated only at the call
 * site, where the backend type is complete).
 */
template <typename G>
class DirtySetView {
  public:
    DirtySetView(const G& g, std::span<const VertexId> dirty)
        : graph_(&g), dirty_(dirty)
    {
        static_assert(GraphReadPath<G>,
                      "DirtySetView wraps a graph read path");
        IGS_DCHECK(std::is_sorted(dirty.begin(), dirty.end()));
    }

    // --- GraphReadPath surface (forwarded) ------------------------------
    std::size_t num_vertices() const { return graph_->num_vertices(); }

    std::uint32_t
    degree(VertexId v, Direction dir) const
    {
        return graph_->degree(v, dir);
    }

    decltype(auto)
    edges(VertexId v, Direction dir) const
    {
        return graph_->edges(v, dir);
    }

    // --- dirty-set surface ----------------------------------------------
    /** Vertices touched since the previous epoch hand-off (sorted). */
    std::span<const VertexId> dirty() const { return dirty_; }

    bool
    is_dirty(VertexId v) const
    {
        return std::binary_search(dirty_.begin(), dirty_.end(), v);
    }

    /** |dirty| / |V| — the policy signal for full-vs-delta (§14). */
    double
    dirty_fraction() const
    {
        const std::size_t n = num_vertices();
        return n == 0 ? 0.0
                      : static_cast<double>(dirty_.size()) /
                            static_cast<double>(n);
    }

    /** The wrapped store (e.g. for epoch assertions on GraphStore). */
    const G& base() const { return *graph_; }

  private:
    const G* graph_;
    std::span<const VertexId> dirty_;
};

} // namespace igs::graph

#endif // IGS_GRAPH_DIRTY_SET_VIEW_H
