/**
 * @file
 * Immutable snapshot of a live graph, maintained by copy-on-publish.
 *
 * The pipeline (DESIGN.md §11) computes on epoch k's @ref SnapshotView
 * while the live store ingests batch k+1.  To keep publication cheap the
 * @ref SnapshotStore never copies the whole graph in steady state: the
 * engine hands it the dirty-vertex set accumulated since the previous
 * publication (stream::PendingWork::affected — every src/dst of every
 * batch edge, deduplicated) and only those vertices' edge arrays are
 * recopied.  Per-vertex copies use vector::assign, which reuses the
 * destination's capacity, so a warmed-up snapshot allocates only when a
 * vertex's degree outgrows its previous high-water mark or when the
 * vertex space itself grows.
 *
 * Thread contract: `publish` mutates the store and must never run
 * concurrently with readers of an outstanding @ref SnapshotView.  The
 * engine guarantees this by joining the in-flight compute round before
 * every publication (the same join implements backpressure — ingest can
 * run at most one epoch ahead of compute).
 */
#ifndef IGS_GRAPH_SNAPSHOT_VIEW_H
#define IGS_GRAPH_SNAPSHOT_VIEW_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "graph/dirty_set_view.h"
#include "graph/graph_store.h"

namespace igs::graph {

/** What one epoch publication cost (drives pipeline telemetry). */
struct PublishStats {
    /** Epoch stamped on the refreshed snapshot. */
    EpochId epoch = 0;
    /** Dirty vertices whose edge arrays were recopied. */
    std::size_t dirty_vertices = 0;
    /** Directed edge entries copied (out + in). */
    EdgeId copied_edges = 0;
    /** Vertex slots added because the live graph grew. */
    std::size_t grown_vertices = 0;
};

class SnapshotStore;

/**
 * Read-only view of the most recent publication.  Cheap to copy (two
 * pointers + counters); valid until the owning SnapshotStore's next
 * `publish` or destruction.  Satisfies graph::GraphStore.
 */
class SnapshotView {
  public:
    SnapshotView() = default;

    std::size_t num_vertices() const { return out_ ? out_->size() : 0; }
    EdgeId num_edges() const { return num_edges_; }
    /** Epoch this view was published at (0 = default-constructed/empty). */
    EpochId epoch() const { return epoch_; }

    std::uint32_t
    degree(VertexId v, Direction dir) const
    {
        // Snapshot rows are copies of live adjacency rows, whose degree
        // is bounded by the uint32 VertexId space by construction.
        // igs-lint: allow(unproven-narrowing)
        return static_cast<std::uint32_t>(edges(v, dir).size());
    }

    const std::vector<Neighbor>&
    edges(VertexId v, Direction dir) const
    {
        const auto* arrays = dir == Direction::kOut ? out_ : in_;
        IGS_DCHECK(arrays != nullptr && v < arrays->size());
        return (*arrays)[v];
    }

    /**
     * This snapshot's read path annotated with its epoch's dirty set —
     * the compute callback receives PendingWork::affected, which is by
     * construction the exact set publish() recopied for this epoch.
     * Incremental analytics seed from it (DESIGN.md §14).
     */
    DirtySetView<SnapshotView>
    dirty_view(std::span<const VertexId> dirty) const
    {
        return DirtySetView<SnapshotView>(*this, dirty);
    }

  private:
    friend class SnapshotStore;
    SnapshotView(const std::vector<std::vector<Neighbor>>* out,
                 const std::vector<std::vector<Neighbor>>* in,
                 EdgeId num_edges, EpochId epoch)
        : out_(out), in_(in), num_edges_(num_edges), epoch_(epoch)
    {
    }

    const std::vector<std::vector<Neighbor>>* out_ = nullptr;
    const std::vector<std::vector<Neighbor>>* in_ = nullptr;
    EdgeId num_edges_ = 0;
    EpochId epoch_ = 0;
};

/**
 * Owns the snapshot arrays and refreshes them incrementally at each epoch
 * publication.  One store per engine; `view()` hands the compute thread a
 * stable read surface for the epoch.
 */
class SnapshotStore {
  public:
    /**
     * Refresh the snapshot from `live`, recopying only `dirty` vertices
     * (ids may exceed the live vertex space if the stream referenced them
     * before growth — such ids are clamped out).  `dirty` must be
     * deduplicated and must cover every vertex whose edge arrays changed
     * since the previous publish; stream::PendingAccumulator::hand_off
     * provides exactly that.  On the first publication (epoch_ == 0) the
     * whole live graph is copied regardless of `dirty`, so a store can
     * attach to a pre-loaded graph.
     */
    template <typename Live>
        requires GraphStore<Live>
    PublishStats
    publish(const Live& live, std::span<const VertexId> dirty)
    {
        PublishStats stats;
        const std::size_t n = live.num_vertices();
        const bool first = epoch_ == 0;
        if (n > out_.size()) {
            stats.grown_vertices = n - out_.size();
            // Vertex-space growth is rare (between batches) and the whole
            // point of publication.  igs-lint: allow(hot-path-alloc)
            out_.resize(n);
            // igs-lint: allow(hot-path-alloc)
            in_.resize(n);
        }
        if (first) {
            for (VertexId v = 0; v < n; ++v) {
                stats.copied_edges += copy_vertex(live, v);
            }
            stats.dirty_vertices = n;
        } else {
            for (VertexId v : dirty) {
                if (v >= n) {
                    continue;
                }
                stats.copied_edges += copy_vertex(live, v);
            }
            stats.dirty_vertices = dirty.size();
        }
        num_edges_ = live.num_edges();
        epoch_ = live.epoch();
        stats.epoch = epoch_;
        return stats;
    }

    /** View of the latest publication (epoch 0 until first publish). */
    SnapshotView view() const { return {&out_, &in_, num_edges_, epoch_}; }

    EpochId epoch() const { return epoch_; }

  private:
    template <typename Live>
    EdgeId
    copy_vertex(const Live& live, VertexId v)
    {
        // vector::assign reuses the destination's capacity: steady-state
        // republication of a stable-degree vertex performs no allocation.
        const auto& lo = live.edges(v, Direction::kOut);
        out_[v].assign(lo.begin(), lo.end());
        const auto& li = live.edges(v, Direction::kIn);
        in_[v].assign(li.begin(), li.end());
        return static_cast<EdgeId>(lo.size() + li.size());
    }

    std::vector<std::vector<Neighbor>> out_;
    std::vector<std::vector<Neighbor>> in_;
    EdgeId num_edges_ = 0;
    EpochId epoch_ = 0;
};

} // namespace igs::graph

#endif // IGS_GRAPH_SNAPSHOT_VIEW_H
