/**
 * @file
 * The input-aware streaming engine — the paper's primary contribution
 * assembled: per incoming batch, ABR decides between the software execution
 * mode (batch reordering + USC) and the baseline/hardware execution mode
 * (per-vertex-lock updates, or HAU where hardware support is modeled), and
 * OCA decides whether to aggregate the batch's compute round with the next
 * one (paper Fig 2).
 *
 * Two engine frontends share the decision logic (see core/ingest.h):
 *
 *  - sim::SimEngine (src/sim/sim_engine.h) — primary for benches: updates
 *    flow through the deterministic Table-1 timing model (update cycles
 *    per batch, HAU available).  It lives in sim/ because the simulator
 *    layer sits above core/ in the module-layer DAG (tools/layers.toml):
 *    core/ must stay buildable without the timing model;
 *  - @ref RealTimeEngine — production use on a real host: updates run on
 *    real threads with real locks (HAU, being hardware, degrades to the
 *    baseline path for reordering-adverse batches — exactly the paper's
 *    SW-only deployment).
 */
#ifndef IGS_CORE_ENGINE_H
#define IGS_CORE_ENGINE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <variant>
#include <vector>

#include "core/abr.h"
#include "core/oca.h"
#include "graph/adjacency_list.h"
#include "graph/hybrid_store.h"
#include "graph/renumber.h"
#include "graph/snapshot_view.h"
#include "graph/store_tuning.h"
#include "stream/batch.h"
#include "stream/compute_policy.h"
#include "stream/pending.h"
#include "stream/update_context.h"
#include "stream/update_stats.h"
#include "stream/updaters.h"

namespace igs::core {

/** Update-phase policy: which paths may the engine choose from. */
enum class UpdatePolicy {
    kBaseline,         ///< input-oblivious: never reorder
    kAlwaysReorder,    ///< input-oblivious: always RO
    kAlwaysReorderUsc, ///< input-oblivious: always RO+USC (Fig 15 left)
    kAlwaysHau,        ///< input-oblivious: HW-only (Fig 15 right)
    kAbr,              ///< ABR: friendly -> RO, adverse -> baseline
    kAbrUsc,           ///< ABR: friendly -> RO+USC, adverse -> baseline
    kAbrUscHau,        ///< full system: friendly -> RO+USC, adverse -> HAU
};

const char* to_string(UpdatePolicy policy);

/** Which live graph structure backs the real-time engine. */
enum class GraphBackend {
    kAdjacencyList, ///< per-vertex edge arrays, linear duplicate check
    kHybrid,        ///< three-tier degree-adaptive store (HybridStore)
};

const char* to_string(GraphBackend backend);

/** Engine configuration. */
struct EngineConfig {
    UpdatePolicy policy = UpdatePolicy::kAbrUscHau;
    AbrParams abr;
    OcaParams oca;
    /** Live store selection for @ref AnyRealTimeEngine (templated engines
     *  fix the backend at compile time and ignore this field). */
    GraphBackend graph_backend = GraphBackend::kAdjacencyList;
    /** Tier/migration thresholds applied to adaptive backends. */
    graph::StoreTuning store;
    /** Host algorithm producing reordered batches (identical output; the
     *  simulator charges the paper's sort cost either way). */
    stream::ReorderMode reorder_mode = stream::ReorderMode::kRadix;
    /**
     * Pipeline depth (DESIGN.md §11).  1 = serial: each due compute round
     * runs inline inside `ingest` — behavior and output byte-identical to
     * the pre-pipeline engine.  2 = one epoch of ingest-ahead: the compute
     * round for epoch k runs on its SnapshotView while the next batch's
     * update runs on the live graph; the next publication joins it first
     * (backpressure), so memory stays flat at one snapshot + one pending
     * hand-off.  Only consulted when a compute callback is registered.
     */
    unsigned pipeline_depth = 1;
    /**
     * Compute-phase policy for incremental analytics registered via
     * `set_compute` (DESIGN.md §14).  The engine itself only carries it —
     * the registered analytics bundle (analytics/incremental/analytics.h)
     * reads it and decides full-rerun vs delta-propagate per epoch from
     * the hand-off's input statistics.
     */
    stream::IncrementalPolicyParams incremental;
    /**
     * Input-aware locality renumbering (DESIGN.md §16).  Disabled by
     * default: every backend stays on the identity map and the engine's
     * output is bit-identical to the pre-indirection code.  When enabled,
     * the engine scores each batch's access locality
     * (graph::LocalityMonitor) and re-places adjacency rows
     * (graph::LocalityRenumberer + GraphT::apply_renumber) when the
     * smoothed score crosses the threshold.  External/logical vertex ids
     * are stable across renumbering.
     */
    graph::RenumberParams renumber;
};

/** Locality-renumbering activity of one engine (DESIGN.md §16). */
struct RenumberStats {
    /** Renumber passes applied to the live graph. */
    std::uint64_t renumbers = 0;
    /** Locality windows (= batches) scored so far. */
    std::uint64_t windows = 0;
    /** Smoothed locality score in (0, 1]; 1.0 = nothing to gain. */
    double locality_ewma = 1.0;
    /** Raw score of the most recent window. */
    double last_window_score = 1.0;
};

/** Everything the engine did with one batch. */
struct BatchReport {
    std::uint64_t batch_id = 0;
    bool abr_active = false;
    bool reordered = false;
    bool used_usc = false;
    bool used_hau = false;
    std::optional<CadResult> cad;
    double overlap = 0.0;
    bool defer_compute = false;
    /** Modeled ABR+OCA instrumentation cycles included in `update`. */
    double instrumentation_cycles = 0.0;
    /** Modeled update statistics (sim::SimEngine; zero for
     *  RealTimeEngine). */
    stream::UpdateStats update;
    /** Modeled update cycles hidden under the previous epoch's compute
     *  round (sim::SimEngine at pipeline depth >= 2; zero otherwise —
     *  never serialized into the shared golden stream schema). */
    Cycles update_hidden_cycles = 0;
    /** Wall-clock update seconds (RealTimeEngine; zero for SimEngine). */
    double wall_seconds = 0.0;
};

/** Batch-span work handed to the compute phase (stream/pending.h). */
using PendingWork = stream::PendingWork;

namespace detail {

/** Shared ABR/OCA decision plumbing between the two engine frontends. */
class DecisionCore {
  public:
    explicit DecisionCore(const EngineConfig& config)
        : config_(config), abr_(config.abr), oca_(config.oca)
    {
    }

    const EngineConfig& config() const { return config_; }
    AbrController& abr() { return abr_; }
    OcaController& oca() { return oca_; }

    /** Does `policy` ever reorder / need ABR instrumentation? */
    static bool policy_uses_abr(UpdatePolicy p);
    /** Will the engine reorder the current batch? */
    bool reorder_now(UpdatePolicy p) const;

  private:
    EngineConfig config_;
    AbrController abr_;
    OcaController oca_;
};

/** Batch-to-compute accumulation now lives in stream/pending.h; the alias
 *  keeps the two engine frontends' member declarations unchanged. */
using PendingAccumulator = stream::PendingAccumulator;

} // namespace detail

/** Counters for the update/compute pipeline (see DESIGN.md §11). */
struct PipelineStats {
    /** Snapshot publications (== compute rounds scheduled). */
    std::uint64_t epochs_published = 0;
    /** Dirty vertices recopied across all publications. */
    std::uint64_t dirty_vertices_copied = 0;
    /** Directed edge entries recopied across all publications. */
    std::uint64_t edges_copied = 0;
    /** Publications that had to wait for the in-flight compute round. */
    std::uint64_t backpressure_stalls = 0;
    /** Wall seconds spent in those waits. */
    double stall_seconds = 0.0;
};

/** Compute round: runs against epoch `work.epoch`'s snapshot. */
using ComputeFn =
    std::function<void(const graph::SnapshotView&, const PendingWork&)>;

/**
 * Real-host input-aware engine: actual threads, actual locks.  Timing is
 * wall-clock; HAU is unavailable (hardware) so kAbrUscHau and kAlwaysHau
 * degrade to their software equivalents.
 *
 * Templated over the live graph structure (the backend).  `GraphT` must
 * provide the mutable-store surface AdjacencyList defines: ensure_vertices,
 * apply_insert/apply_remove, lock(v,dir), latest_bid/exchange_latest_bid,
 * epoch()/advance_epoch(), and the graph::GraphStore read path for
 * snapshot publication.  Backends with extra hooks are detected with
 * `if constexpr (requires ...)`: a `set_tuning(StoreTuning)` member
 * receives EngineConfig::store at construction, and a
 * `publish_tier_telemetry()` member is invoked at each epoch publication
 * (HybridStore implements both).  Use the @ref RealTimeEngine /
 * @ref HybridRealTimeEngine aliases, or @ref AnyRealTimeEngine to pick
 * the backend at runtime from EngineConfig::graph_backend.
 *
 * Threading contract (see DESIGN.md §8, §11): `ingest` is externally
 * serialized — one batch in flight at a time.  Parallelism happens *inside*
 * an ingest, where the update kernels synchronize via the graph's
 * per-vertex SpinlockArray (baseline path) or run-ownership (reordered
 * paths, lock-free by construction).  The engine's own members
 * (reorderer_, usc_scratch_, pending_) are only touched from the ingest
 * caller or from per-worker slots, so they need no locks of their own.
 *
 * Pipeline mode: register a compute round via `set_compute`.  When a
 * round is due (OCA permitting), `ingest` publishes a snapshot epoch and
 * runs the callback — inline at pipeline_depth 1, or on a dedicated
 * compute thread at depth >= 2 so the next batch's update overlaps it.
 * The compute thread touches only the immutable SnapshotView and its own
 * PendingWork; the ingest thread joins it before the next publication
 * (bounded one-epoch ingest-ahead = backpressure).  Without a registered
 * callback the engine behaves exactly as before: callers poll
 * `compute_due` and drain `take_pending_work` themselves.
 */
template <typename GraphT>
class BasicRealTimeEngine {
  public:
    /** Compute round: runs against epoch `work.epoch`'s snapshot. */
    using ComputeFn = core::ComputeFn;

    BasicRealTimeEngine(const EngineConfig& config, std::size_t num_vertices,
                        ThreadPool& pool = default_pool());
    ~BasicRealTimeEngine();

    GraphT& graph() { return graph_; }
    const GraphT& graph() const { return graph_; }

    BatchReport ingest(const stream::EdgeBatch& batch);

    bool compute_due() const { return compute_due_; }
    PendingWork take_pending_work() { return pending_.take(); }

    /**
     * Enter pipeline mode: `fn` becomes the compute round scheduled at
     * each epoch publication.  Call before the first `ingest`; replacing
     * the callback mid-stream first joins any in-flight round.
     */
    void set_compute(ComputeFn fn);

    /**
     * Flush the pipeline: publish any still-pending work as a final epoch
     * (e.g. an OCA-deferred tail), run its compute round, and join.  Safe
     * to call repeatedly; a no-op outside pipeline mode.
     */
    void flush_pipeline();

    /** Snapshot of the latest published epoch (pipeline mode). */
    graph::SnapshotView snapshot() const { return snapshots_.view(); }

    const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

    /** Locality-renumbering activity (all zeros unless
     *  EngineConfig::renumber.enabled). */
    const RenumberStats& renumber_stats() const { return renumber_stats_; }

    const EngineConfig& config() const { return core_.config(); }

  private:
    void publish_epoch();
    void join_inflight();
    /**
     * Score the batch's access locality and renumber the live graph if
     * the ABR-style trigger fires.  Runs at the tail of `ingest`, after
     * any epoch publication: a depth-2 compute round reads only the
     * snapshot's copied rows, so re-placing live rows here is safe.
     * Compiled out for backends without apply_renumber/id_map.
     */
    void maybe_renumber(const stream::EdgeBatch& batch);

    detail::DecisionCore core_;
    GraphT graph_;
    ThreadPool& pool_;
    /** Arena-backed reorderer, reused across batches. */
    stream::Reorderer reorderer_;
    /** Per-worker USC coalescing tables, reused across batches. */
    stream::UscScratch usc_scratch_;
    detail::PendingAccumulator pending_;
    bool compute_due_ = false;
    /** Per-batch locality windows (only fed when renumbering is on). */
    graph::LocalityMonitor locality_monitor_;
    RenumberStats renumber_stats_;

    // --- pipeline state (only active once set_compute was called) -------
    ComputeFn compute_fn_;
    graph::SnapshotStore snapshots_;
    /** Work for the in-flight round; owned by the compute thread while
     *  inflight_ is joinable, reclaimed by the ingest thread after join. */
    PendingWork inflight_work_;
    std::thread inflight_;
    /** Set by the compute thread on completion; lets stall accounting
     *  distinguish a blocking join from reaping a finished round. */
    std::atomic<bool> inflight_done_{false};
    PipelineStats pipeline_stats_;
};

/** The historical engine: adjacency-list backend. */
using RealTimeEngine = BasicRealTimeEngine<graph::AdjacencyList>;
/** Three-tier hybrid-store backend (graph/hybrid_store.h). */
using HybridRealTimeEngine = BasicRealTimeEngine<graph::HybridStore>;

// Instantiated once in engine.cc for both backends.
extern template class BasicRealTimeEngine<graph::AdjacencyList>;
extern template class BasicRealTimeEngine<graph::HybridStore>;

/**
 * Runtime-backend-selected real-time engine: constructs the
 * BasicRealTimeEngine matching EngineConfig::graph_backend and forwards
 * the engine surface to it.  For callers (benches, services) whose store
 * choice is configuration, not code.
 */
class AnyRealTimeEngine {
  public:
    AnyRealTimeEngine(const EngineConfig& config, std::size_t num_vertices,
                      ThreadPool& pool = default_pool());

    GraphBackend backend() const { return backend_; }

    BatchReport ingest(const stream::EdgeBatch& batch);
    bool compute_due() const;
    PendingWork take_pending_work();
    void set_compute(ComputeFn fn);
    void flush_pipeline();
    graph::SnapshotView snapshot() const;
    const PipelineStats& pipeline_stats() const;
    const RenumberStats& renumber_stats() const;
    const EngineConfig& config() const;

    /** The concrete engine for backend `GraphT` (throws on mismatch). */
    template <typename GraphT>
    BasicRealTimeEngine<GraphT>&
    engine()
    {
        return std::get<BasicRealTimeEngine<GraphT>>(engine_);
    }

    template <typename GraphT>
    const BasicRealTimeEngine<GraphT>&
    engine() const
    {
        return std::get<BasicRealTimeEngine<GraphT>>(engine_);
    }

  private:
    /** Monostate only during construction: the engines are neither
     *  movable nor copyable, so the variant is filled via emplace. */
    std::variant<std::monostate, RealTimeEngine, HybridRealTimeEngine>
        engine_;
    GraphBackend backend_;
};

} // namespace igs::core

#endif // IGS_CORE_ENGINE_H
