/**
 * @file
 * The input-aware streaming engine — the paper's primary contribution
 * assembled: per incoming batch, ABR decides between the software execution
 * mode (batch reordering + USC) and the baseline/hardware execution mode
 * (per-vertex-lock updates, or HAU where hardware support is modeled), and
 * OCA decides whether to aggregate the batch's compute round with the next
 * one (paper Fig 2).
 *
 * Two engine frontends share the decision logic (see core/ingest.h):
 *
 *  - sim::SimEngine (src/sim/sim_engine.h) — primary for benches: updates
 *    flow through the deterministic Table-1 timing model (update cycles
 *    per batch, HAU available).  It lives in sim/ because the simulator
 *    layer sits above core/ in the module-layer DAG (tools/layers.toml):
 *    core/ must stay buildable without the timing model;
 *  - @ref RealTimeEngine — production use on a real host: updates run on
 *    real threads with real locks (HAU, being hardware, degrades to the
 *    baseline path for reordering-adverse batches — exactly the paper's
 *    SW-only deployment).
 */
#ifndef IGS_CORE_ENGINE_H
#define IGS_CORE_ENGINE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/abr.h"
#include "core/oca.h"
#include "graph/adjacency_list.h"
#include "stream/batch.h"
#include "stream/update_context.h"
#include "stream/update_stats.h"
#include "stream/updaters.h"

namespace igs::core {

/** Update-phase policy: which paths may the engine choose from. */
enum class UpdatePolicy {
    kBaseline,         ///< input-oblivious: never reorder
    kAlwaysReorder,    ///< input-oblivious: always RO
    kAlwaysReorderUsc, ///< input-oblivious: always RO+USC (Fig 15 left)
    kAlwaysHau,        ///< input-oblivious: HW-only (Fig 15 right)
    kAbr,              ///< ABR: friendly -> RO, adverse -> baseline
    kAbrUsc,           ///< ABR: friendly -> RO+USC, adverse -> baseline
    kAbrUscHau,        ///< full system: friendly -> RO+USC, adverse -> HAU
};

const char* to_string(UpdatePolicy policy);

/** Engine configuration. */
struct EngineConfig {
    UpdatePolicy policy = UpdatePolicy::kAbrUscHau;
    AbrParams abr;
    OcaParams oca;
    /** Host algorithm producing reordered batches (identical output; the
     *  simulator charges the paper's sort cost either way). */
    stream::ReorderMode reorder_mode = stream::ReorderMode::kRadix;
};

/** Everything the engine did with one batch. */
struct BatchReport {
    std::uint64_t batch_id = 0;
    bool abr_active = false;
    bool reordered = false;
    bool used_usc = false;
    bool used_hau = false;
    std::optional<CadResult> cad;
    double overlap = 0.0;
    bool defer_compute = false;
    /** Modeled ABR+OCA instrumentation cycles included in `update`. */
    double instrumentation_cycles = 0.0;
    /** Modeled update statistics (sim::SimEngine; zero for
     *  RealTimeEngine). */
    stream::UpdateStats update;
    /** Wall-clock update seconds (RealTimeEngine; zero for SimEngine). */
    double wall_seconds = 0.0;
};

/** Batch-span work handed to the compute phase. */
struct PendingWork {
    /** Unique vertices touched since the last compute round. */
    std::vector<VertexId> affected;
    /** Edge modifications since the last compute round. */
    std::vector<StreamEdge> inserted;
    std::vector<StreamEdge> deleted;
    /** How many batches this round aggregates (1 normally, 2 under OCA). */
    std::uint32_t batches = 0;
};

namespace detail {

/** Shared ABR/OCA decision plumbing between the two engine frontends. */
class DecisionCore {
  public:
    explicit DecisionCore(const EngineConfig& config)
        : config_(config), abr_(config.abr), oca_(config.oca)
    {
    }

    const EngineConfig& config() const { return config_; }
    AbrController& abr() { return abr_; }
    OcaController& oca() { return oca_; }

    /** Does `policy` ever reorder / need ABR instrumentation? */
    static bool policy_uses_abr(UpdatePolicy p);
    /** Will the engine reorder the current batch? */
    bool reorder_now(UpdatePolicy p) const;

  private:
    EngineConfig config_;
    AbrController abr_;
    OcaController oca_;
};

/** Accumulates compute-phase work across (possibly aggregated) batches.
 *  Named note_batch (not add) so the whole-program analyzer's simple-name
 *  call graph keeps it distinct from the hot-path add() entry points. */
class PendingAccumulator {
  public:
    void
    note_batch(const stream::EdgeBatch& batch)
    {
        for (const StreamEdge& e : batch.edges()) {
            affected_.push_back(e.src);
            affected_.push_back(e.dst);
            if (e.is_delete) {
                deleted_.push_back(e);
            } else {
                inserted_.push_back(e);
            }
        }
        ++batches_;
    }

    PendingWork take();
    std::uint32_t pending_batches() const { return batches_; }

  private:
    std::vector<VertexId> affected_;
    std::vector<StreamEdge> inserted_;
    std::vector<StreamEdge> deleted_;
    std::uint32_t batches_ = 0;
};

} // namespace detail

/**
 * Real-host input-aware engine: actual threads, actual locks.  Timing is
 * wall-clock; HAU is unavailable (hardware) so kAbrUscHau and kAlwaysHau
 * degrade to their software equivalents.
 *
 * Threading contract (see DESIGN.md §8): `ingest` is externally
 * serialized — one batch in flight at a time.  Parallelism happens *inside*
 * an ingest, where the update kernels synchronize via the graph's
 * per-vertex SpinlockArray (baseline path) or run-ownership (reordered
 * paths, lock-free by construction).  The engine's own members
 * (reorderer_, usc_scratch_, pending_) are only touched from the ingest
 * caller or from per-worker slots, so they need no locks of their own.
 */
class RealTimeEngine {
  public:
    RealTimeEngine(const EngineConfig& config, std::size_t num_vertices,
                   ThreadPool& pool = default_pool());

    graph::AdjacencyList& graph() { return graph_; }
    const graph::AdjacencyList& graph() const { return graph_; }

    BatchReport ingest(const stream::EdgeBatch& batch);

    bool compute_due() const { return compute_due_; }
    PendingWork take_pending_work() { return pending_.take(); }

    const EngineConfig& config() const { return core_.config(); }

  private:
    detail::DecisionCore core_;
    graph::AdjacencyList graph_;
    ThreadPool& pool_;
    /** Arena-backed reorderer, reused across batches. */
    stream::Reorderer reorderer_;
    /** Per-worker USC coalescing tables, reused across batches. */
    stream::UscScratch usc_scratch_;
    detail::PendingAccumulator pending_;
    bool compute_due_ = false;
};

} // namespace igs::core

#endif // IGS_CORE_ENGINE_H
