/**
 * @file
 * The input-aware streaming engine — the paper's primary contribution
 * assembled: per incoming batch, ABR decides between the software execution
 * mode (batch reordering + USC) and the baseline/hardware execution mode
 * (per-vertex-lock updates, or HAU where hardware support is modeled), and
 * OCA decides whether to aggregate the batch's compute round with the next
 * one (paper Fig 2).
 *
 * Two engine frontends share the decision logic:
 *
 *  - @ref SimEngine — primary for benches: updates flow through the
 *    deterministic Table-1 timing model (update cycles per batch, HAU
 *    available);
 *  - @ref RealTimeEngine — production use on a real host: updates run on
 *    real threads with real locks (HAU, being hardware, degrades to the
 *    baseline path for reordering-adverse batches — exactly the paper's
 *    SW-only deployment).
 */
#ifndef IGS_CORE_ENGINE_H
#define IGS_CORE_ENGINE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/abr.h"
#include "core/oca.h"
#include "graph/adjacency_list.h"
#include "graph/indexed_adjacency.h"
#include "sim/update_runner.h"
#include "stream/batch.h"
#include "stream/update_context.h"
#include "stream/updaters.h"

namespace igs::core {

/** Update-phase policy: which paths may the engine choose from. */
enum class UpdatePolicy {
    kBaseline,         ///< input-oblivious: never reorder
    kAlwaysReorder,    ///< input-oblivious: always RO
    kAlwaysReorderUsc, ///< input-oblivious: always RO+USC (Fig 15 left)
    kAlwaysHau,        ///< input-oblivious: HW-only (Fig 15 right)
    kAbr,              ///< ABR: friendly -> RO, adverse -> baseline
    kAbrUsc,           ///< ABR: friendly -> RO+USC, adverse -> baseline
    kAbrUscHau,        ///< full system: friendly -> RO+USC, adverse -> HAU
};

const char* to_string(UpdatePolicy policy);

/** Engine configuration. */
struct EngineConfig {
    UpdatePolicy policy = UpdatePolicy::kAbrUscHau;
    AbrParams abr;
    OcaParams oca;
    /** Host algorithm producing reordered batches (identical output; the
     *  simulator charges the paper's sort cost either way). */
    stream::ReorderMode reorder_mode = stream::ReorderMode::kRadix;
};

/** Everything the engine did with one batch. */
struct BatchReport {
    std::uint64_t batch_id = 0;
    bool abr_active = false;
    bool reordered = false;
    bool used_usc = false;
    bool used_hau = false;
    std::optional<CadResult> cad;
    double overlap = 0.0;
    bool defer_compute = false;
    /** Modeled ABR+OCA instrumentation cycles included in `update`. */
    double instrumentation_cycles = 0.0;
    /** Modeled update statistics (SimEngine; zero for RealTimeEngine). */
    sim::UpdateStats update;
    /** Wall-clock update seconds (RealTimeEngine; zero for SimEngine). */
    double wall_seconds = 0.0;
};

/** Batch-span work handed to the compute phase. */
struct PendingWork {
    /** Unique vertices touched since the last compute round. */
    std::vector<VertexId> affected;
    /** Edge modifications since the last compute round. */
    std::vector<StreamEdge> inserted;
    std::vector<StreamEdge> deleted;
    /** How many batches this round aggregates (1 normally, 2 under OCA). */
    std::uint32_t batches = 0;
};

namespace detail {

/** Shared ABR/OCA decision plumbing between the two engine frontends. */
class DecisionCore {
  public:
    explicit DecisionCore(const EngineConfig& config)
        : config_(config), abr_(config.abr), oca_(config.oca)
    {
    }

    const EngineConfig& config() const { return config_; }
    AbrController& abr() { return abr_; }
    OcaController& oca() { return oca_; }

    /** Does `policy` ever reorder / need ABR instrumentation? */
    static bool policy_uses_abr(UpdatePolicy p);
    /** Will the engine reorder the current batch? */
    bool reorder_now(UpdatePolicy p) const;

  private:
    EngineConfig config_;
    AbrController abr_;
    OcaController oca_;
};

/** Accumulates compute-phase work across (possibly aggregated) batches. */
class PendingAccumulator {
  public:
    void
    add(const stream::EdgeBatch& batch)
    {
        for (const StreamEdge& e : batch.edges()) {
            affected_.push_back(e.src);
            affected_.push_back(e.dst);
            if (e.is_delete) {
                deleted_.push_back(e);
            } else {
                inserted_.push_back(e);
            }
        }
        ++batches_;
    }

    PendingWork take();
    std::uint32_t pending_batches() const { return batches_; }

  private:
    std::vector<VertexId> affected_;
    std::vector<StreamEdge> inserted_;
    std::vector<StreamEdge> deleted_;
    std::uint32_t batches_ = 0;
};

} // namespace detail

/**
 * Simulation-backed input-aware engine (primary bench/eval frontend).
 * Owns the graph, the timing model, and the controllers.
 */
class SimEngine {
  public:
    /** `pool` runs the *host-side* reorder passes; the modeled Table-1
     *  cycles are independent of it (see the determinism test in
     *  tests/test_core.cc: 1 worker and N workers are bit-identical). */
    SimEngine(const EngineConfig& config, const sim::MachineParams& machine,
              const sim::SwCostParams& sw, const sim::HauCostParams& hw,
              std::size_t num_vertices, ThreadPool& pool = default_pool());

    /** The evolving graph (index-accelerated; see DESIGN.md). */
    graph::IndexedAdjacency& graph() { return graph_; }
    const graph::IndexedAdjacency& graph() const { return graph_; }

    /** Ingest one batch; runs ABR/OCA and the chosen update path. */
    BatchReport ingest(const stream::EdgeBatch& batch);

    /** True when a compute round is due (OCA may defer it). */
    bool compute_due() const { return compute_due_; }

    /** Hand the accumulated modifications to the compute phase. */
    PendingWork take_pending_work() { return pending_.take(); }

    /** The underlying update runner (HAU/NoC inspection in benches). */
    sim::UpdateRunner& runner() { return runner_; }

    const EngineConfig& config() const { return core_.config(); }

  private:
    detail::DecisionCore core_;
    graph::IndexedAdjacency graph_;
    sim::UpdateRunner runner_;
    ThreadPool& pool_;
    /** Arena-backed reorderer, reused across batches (zero steady-state
     *  allocations on the radix path). */
    stream::Reorderer reorderer_;
    detail::PendingAccumulator pending_;
    bool compute_due_ = false;
};

/**
 * Real-host input-aware engine: actual threads, actual locks.  Timing is
 * wall-clock; HAU is unavailable (hardware) so kAbrUscHau and kAlwaysHau
 * degrade to their software equivalents.
 *
 * Threading contract (see DESIGN.md §8): `ingest` is externally
 * serialized — one batch in flight at a time.  Parallelism happens *inside*
 * an ingest, where the update kernels synchronize via the graph's
 * per-vertex SpinlockArray (baseline path) or run-ownership (reordered
 * paths, lock-free by construction).  The engine's own members
 * (reorderer_, usc_scratch_, pending_) are only touched from the ingest
 * caller or from per-worker slots, so they need no locks of their own.
 */
class RealTimeEngine {
  public:
    RealTimeEngine(const EngineConfig& config, std::size_t num_vertices,
                   ThreadPool& pool = default_pool());

    graph::AdjacencyList& graph() { return graph_; }
    const graph::AdjacencyList& graph() const { return graph_; }

    BatchReport ingest(const stream::EdgeBatch& batch);

    bool compute_due() const { return compute_due_; }
    PendingWork take_pending_work() { return pending_.take(); }

    const EngineConfig& config() const { return core_.config(); }

  private:
    detail::DecisionCore core_;
    graph::AdjacencyList graph_;
    ThreadPool& pool_;
    /** Arena-backed reorderer, reused across batches. */
    stream::Reorderer reorderer_;
    /** Per-worker USC coalescing tables, reused across batches. */
    stream::UscScratch usc_scratch_;
    detail::PendingAccumulator pending_;
    bool compute_due_ = false;
};

} // namespace igs::core

#endif // IGS_CORE_ENGINE_H
