/**
 * @file
 * Order-λ Clusterable Average Degree (CAD_λ), the paper's reordering
 * predictor (§4.2):
 *
 *     CAD_λ = (b − y) / x
 *
 * where b is the batch size, y the number of edges from vertices with
 * 1 ≤ degree ≤ λ, and x the number of unique vertices with degree > λ.
 * A batch is "high-degree" (reordering-friendly) when CAD_λ ≥ TH.
 *
 * CAD is a measure of the average degree of the batch's top-degree
 * vertices; batches with no vertex above λ yield CAD = 0 (never reorder),
 * matching the intent of the pseudocode (x would be 0).
 *
 * Degrees are measured on both directions — reordering clusters the batch
 * by source *and* by destination, so the batch is friendly if either side
 * clusters; the reported CAD is the max of the two sides (consistent with
 * the paper's use of "maximum in/out degree" as the indicator metric).
 */
#ifndef IGS_CORE_CAD_H
#define IGS_CORE_CAD_H

#include <cstdint>
#include <span>

#include "common/stats.h"
#include "common/types.h"
#include "stream/reorder.h"

namespace igs::core {

/** CAD measurement of one batch. */
struct CadResult {
    double cad_out = 0.0;
    double cad_in = 0.0;
    std::uint32_t max_out_degree = 0;
    std::uint32_t max_in_degree = 0;

    double cad() const { return cad_out > cad_in ? cad_out : cad_in; }
    std::uint32_t
    max_degree() const
    {
        return max_out_degree > max_in_degree ? max_out_degree
                                              : max_in_degree;
    }
};

/** CAD_λ from a batch degree histogram N(k) with batch size `b`. */
double cad_from_histogram(const Histogram& degree_histogram, std::size_t b,
                          std::uint32_t lambda);

/**
 * CAD via the reordered-batch instrumentation path (paper pseudocode,
 * `reordering == true` branch): vertex degrees are read off the run index
 * for free.
 */
CadResult cad_from_reordered(const stream::ReorderedBatch& rb,
                             std::uint32_t lambda);

/**
 * CAD via the concurrent-hash-map instrumentation path (paper pseudocode,
 * `reordering == false` branch): per-vertex degrees are accumulated from
 * the raw batch.
 */
CadResult cad_from_batch(std::span<const StreamEdge> edges,
                         std::uint32_t lambda);

} // namespace igs::core

#endif // IGS_CORE_CAD_H
