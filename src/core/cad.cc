#include "core/cad.h"

#include <algorithm>

#include "common/concurrent_hash_map.h"
#include "common/thread_pool.h"

namespace igs::core {

double
cad_from_histogram(const Histogram& degree_histogram, std::size_t b,
                   std::uint32_t lambda)
{
    std::uint64_t y = 0; // edges from vertices with 1 <= degree <= lambda
    std::uint64_t x = 0; // unique vertices with degree > lambda
    for (const auto& [degree, count] : degree_histogram.bins()) {
        if (degree >= 1 && degree <= lambda) {
            y += degree * count;
        } else if (degree > lambda) {
            x += count;
        }
    }
    if (x == 0) {
        return 0.0;
    }
    return static_cast<double>(b - y) / static_cast<double>(x);
}

CadResult
cad_from_reordered(const stream::ReorderedBatch& rb, std::uint32_t lambda)
{
    CadResult r;
    Histogram out_h;
    for (const stream::VertexRun& run : rb.by_src.runs) {
        out_h.add(run.size());
        r.max_out_degree = std::max(r.max_out_degree, run.size());
    }
    Histogram in_h;
    for (const stream::VertexRun& run : rb.by_dst.runs) {
        in_h.add(run.size());
        r.max_in_degree = std::max(r.max_in_degree, run.size());
    }
    r.cad_out = cad_from_histogram(out_h, rb.batch_size, lambda);
    r.cad_in = cad_from_histogram(in_h, rb.batch_size, lambda);
    return r;
}

CadResult
cad_from_batch(std::span<const StreamEdge> edges, std::uint32_t lambda)
{
    // The paper populates an Intel-TBB concurrent hash map from the update
    // threads; we use our sharded map the same way (parallel accumulate,
    // then a single-threaded sweep).
    ConcurrentHashMap<VertexId, std::uint32_t> out_deg(edges.size());
    ConcurrentHashMap<VertexId, std::uint32_t> in_deg(edges.size());
    default_pool().parallel_for(0, edges.size(), [&](std::size_t i) {
        out_deg.update(edges[i].src, [](std::uint32_t& d) { ++d; });
        in_deg.update(edges[i].dst, [](std::uint32_t& d) { ++d; });
    });

    CadResult r;
    Histogram out_h;
    out_deg.for_each([&](VertexId, std::uint32_t d) {
        out_h.add(d);
        r.max_out_degree = std::max(r.max_out_degree, d);
    });
    Histogram in_h;
    in_deg.for_each([&](VertexId, std::uint32_t d) {
        in_h.add(d);
        r.max_in_degree = std::max(r.max_in_degree, d);
    });
    r.cad_out = cad_from_histogram(out_h, edges.size(), lambda);
    r.cad_in = cad_from_histogram(in_h, edges.size(), lambda);
    return r;
}

} // namespace igs::core
