/**
 * @file
 * Overlap-based Compute Aggregation (OCA, paper §5).
 *
 * During ABR-active batches, the update phase measures inter-batch
 * locality: the fraction of the batch's unique source vertices that also
 * appeared in the immediately preceding batch (via the per-vertex
 * `latest_bid` field and an @ref igs::stream::OcaProbe).  When that ratio
 * exceeds the threshold, OCA aggregates: the compute round after batch n
 * is skipped and a single round after batch n+1 analyzes both batches'
 * modifications.  Aggregation coarsens granularity by exactly one batch
 * (the paper's bound) and is trivially disabled for latency-critical
 * deployments.
 */
#ifndef IGS_CORE_OCA_H
#define IGS_CORE_OCA_H

#include <cstdint>

#include "stream/update_context.h"

namespace igs::core {

/** OCA parameters. */
struct OcaParams {
    /** Enable aggregation at all. */
    bool enabled = true;
    /** Aggregate when unique-source overlap >= threshold (paper: 0.25,
     *  chosen empirically in §5). */
    double threshold = 0.25;
    /** Modeled per-edge cost of the latest_bid/counter instrumentation
     *  (Fig 16b shows it is nearly free). */
    double instr_cycles_per_edge = 2.0;
};

/** Per-batch OCA outcome. */
struct OcaDecision {
    /** Measured overlap ratio (ABR-active batches only; else carries the
     *  last measured value). */
    double overlap = 0.0;
    /** True if the engine should *defer* this batch's compute round and
     *  fold it into the next one. */
    bool defer_compute = false;
};

/** Online OCA controller. */
class OcaController {
  public:
    explicit OcaController(const OcaParams& params = {}) : params_(params) {}

    const OcaParams& params() const { return params_; }
    bool aggregation_latched() const { return aggregate_; }
    double last_overlap() const { return last_overlap_; }

    /**
     * Consume the locality probe of one batch's update phase.
     * @param probe the probe filled during the update (non-null only on
     *        ABR-active batches)
     * @returns whether this batch's compute should be deferred
     */
    OcaDecision
    on_batch(const stream::OcaProbe* probe)
    {
        OcaDecision d;
        if (probe != nullptr && probe->unique_nodes() > 0) {
            last_overlap_ = probe->ratio();
            aggregate_ = params_.enabled && last_overlap_ >= params_.threshold;
        }
        d.overlap = last_overlap_;
        if (!params_.enabled || !aggregate_) {
            pending_ = false;
            d.defer_compute = false;
            return d;
        }
        // Aggregate pairs of batches: defer the first, compute after the
        // second ("coarsen the granularity by only one additional batch").
        if (!pending_) {
            pending_ = true;
            d.defer_compute = true;
        } else {
            pending_ = false;
            d.defer_compute = false;
        }
        return d;
    }

  private:
    OcaParams params_;
    bool aggregate_ = false;
    bool pending_ = false;
    double last_overlap_ = 0.0;
};

} // namespace igs::core

#endif // IGS_CORE_OCA_H
