#include "core/abr.h"

namespace igs::core {

AbrDecision
AbrController::on_batch(std::span<const StreamEdge> edges,
                        const stream::ReorderedBatch* reordered)
{
    AbrDecision d;
    d.reorder = reordering_;
    d.active = (batch_counter_ % params_.n) == 0;
    ++batch_counter_;
    if (!d.active || edges.empty()) {
        return d;
    }

    // Instrumentation path depends on whether this batch runs reordered:
    // a reordered batch's degrees fall out of the run index (cheap); a
    // non-reordered batch needs the concurrent hash map (expensive).
    if (reordering_ && reordered != nullptr) {
        d.cad = cad_from_reordered(*reordered, params_.lambda);
        d.instrumentation_cycles =
            static_cast<double>(edges.size()) *
            params_.instr_cycles_per_edge_reordered;
    } else {
        d.cad = cad_from_batch(edges, params_.lambda);
        d.instrumentation_cycles =
            static_cast<double>(edges.size()) *
            params_.instr_cycles_per_edge_hashed;
    }

    reordering_ = d.cad->cad() >= params_.threshold;
    return d;
}

} // namespace igs::core
