#include "core/engine.h"

#include <algorithm>

#include "common/telemetry.h"
#include "common/timer.h"
#include "core/ingest.h"

namespace igs::core {

namespace {

/** Decision-pipeline telemetry, resolved once (see DESIGN.md §9 naming).
 *  Shared by both engine frontends; per-batch cost is a handful of
 *  relaxed atomic increments. */
struct EngineTelemetry {
    telemetry::Counter& batches;
    telemetry::Counter& reordered_batches;
    telemetry::Counter& usc_batches;
    telemetry::Counter& hau_batches;
    telemetry::Counter& baseline_batches;
    telemetry::Counter& abr_active_batches;
    telemetry::Counter& abr_reorder_verdicts;
    telemetry::Counter& oca_probes;
    telemetry::Counter& oca_deferred_rounds;
    telemetry::Histogram& cad;
    telemetry::Histogram& overlap;
    telemetry::Gauge& instrumentation_cycles;
    telemetry::PhaseTimer& ingest_wall;

    static EngineTelemetry&
    get()
    {
        // Bucket bounds: CAD in decades around the paper's TH=465;
        // overlap in tenths of the [0,1] ratio (OCA threshold 0.25).
        static const double kCadBounds[] = {0.0,    50.0,   100.0,  250.0,
                                            465.0,  1000.0, 2500.0, 10000.0};
        static const double kOverlapBounds[] = {0.0, 0.1, 0.2, 0.25, 0.3,
                                                0.4, 0.5, 0.75, 0.9};
        auto& r = telemetry::Registry::global();
        static EngineTelemetry t{
            r.counter("core.engine.batches"),
            r.counter("core.engine.reordered_batches"),
            r.counter("core.engine.usc_batches"),
            r.counter("core.engine.hau_batches"),
            r.counter("core.engine.baseline_batches"),
            r.counter("core.abr.active_batches"),
            r.counter("core.abr.reorder_verdicts"),
            r.counter("core.oca.probes"),
            r.counter("core.oca.deferred_rounds"),
            r.histogram("core.abr.cad", kCadBounds),
            r.histogram("core.oca.overlap", kOverlapBounds),
            r.gauge("core.engine.instrumentation_cycles"),
            r.phase("core.engine.ingest_wall"),
        };
        return t;
    }

    void
    record(const BatchReport& report, bool oca_probed)
    {
        batches.inc();
        if (report.reordered) {
            reordered_batches.inc();
        } else if (report.used_hau) {
            hau_batches.inc();
        } else {
            baseline_batches.inc();
        }
        if (report.used_usc) {
            usc_batches.inc();
        }
        if (report.abr_active) {
            abr_active_batches.inc();
        }
        if (report.reordered) {
            abr_reorder_verdicts.inc();
        }
        if (report.cad.has_value()) {
            cad.record(report.cad->cad());
        }
        if (oca_probed) {
            oca_probes.inc();
            overlap.record(report.overlap);
        }
        if (report.defer_compute) {
            oca_deferred_rounds.inc();
        }
        instrumentation_cycles.add(report.instrumentation_cycles);
    }
};

} // namespace

const char*
to_string(UpdatePolicy policy)
{
    switch (policy) {
      case UpdatePolicy::kBaseline:
        return "baseline";
      case UpdatePolicy::kAlwaysReorder:
        return "RO";
      case UpdatePolicy::kAlwaysReorderUsc:
        return "RO+USC";
      case UpdatePolicy::kAlwaysHau:
        return "HAU-only";
      case UpdatePolicy::kAbr:
        return "ABR";
      case UpdatePolicy::kAbrUsc:
        return "ABR+USC";
      case UpdatePolicy::kAbrUscHau:
        return "ABR+USC+HAU";
    }
    return "?";
}

namespace detail {

void
record_engine_telemetry(const BatchReport& report, bool oca_probed)
{
    EngineTelemetry::get().record(report, oca_probed);
}

void
record_ingest_wall(double seconds)
{
    EngineTelemetry::get().ingest_wall.add(seconds);
}

bool
DecisionCore::policy_uses_abr(UpdatePolicy p)
{
    return p == UpdatePolicy::kAbr || p == UpdatePolicy::kAbrUsc ||
           p == UpdatePolicy::kAbrUscHau;
}

bool
DecisionCore::reorder_now(UpdatePolicy p) const
{
    switch (p) {
      case UpdatePolicy::kBaseline:
      case UpdatePolicy::kAlwaysHau:
        return false;
      case UpdatePolicy::kAlwaysReorder:
      case UpdatePolicy::kAlwaysReorderUsc:
        return true;
      case UpdatePolicy::kAbr:
      case UpdatePolicy::kAbrUsc:
      case UpdatePolicy::kAbrUscHau:
        return abr_.reordering();
    }
    return false;
}

PendingWork
PendingAccumulator::take()
{
    PendingWork w;
    std::sort(affected_.begin(), affected_.end());
    affected_.erase(std::unique(affected_.begin(), affected_.end()),
                    affected_.end());
    w.affected = std::move(affected_);
    w.inserted = std::move(inserted_);
    w.deleted = std::move(deleted_);
    w.batches = batches_;
    affected_.clear();
    inserted_.clear();
    deleted_.clear();
    batches_ = 0;
    return w;
}

} // namespace detail

RealTimeEngine::RealTimeEngine(const EngineConfig& config,
                               std::size_t num_vertices, ThreadPool& pool)
    : core_(config), graph_(num_vertices), pool_(pool),
      reorderer_(config.reorder_mode)
{
}

BatchReport
RealTimeEngine::ingest(const stream::EdgeBatch& batch)
{
    Timer timer;
    bool reorder = false;
    const stream::ReorderedBatch* reordered = detail::reorder_and_reserve(
        core_, reorderer_, graph_, batch, pool_, reorder);
    BatchReport report = detail::drive_batch(
        core_, batch, reorder, reordered, /*hau_available=*/false,
        [&](const detail::Dispatch& d, const stream::ReorderedBatch* rb,
            stream::OcaProbe* probe, BatchReport&) {
            stream::RealContext ctx(pool_, &usc_scratch_);
            if (d.reorder && d.usc) {
                stream::apply_batch_usc(graph_, batch, *rb, ctx, probe);
            } else if (d.reorder) {
                stream::apply_batch_reordered(graph_, batch, *rb, ctx,
                                              probe);
            } else {
                stream::apply_batch_baseline(graph_, batch, ctx, probe);
            }
        });
    report.wall_seconds = timer.seconds();
    detail::record_ingest_wall(report.wall_seconds);

    pending_.note_batch(batch);
    compute_due_ = !report.defer_compute;
    return report;
}

} // namespace igs::core
