#include "core/engine.h"

#include <algorithm>

#include "common/telemetry.h"
#include "common/timer.h"

namespace igs::core {

namespace {

/** Decision-pipeline telemetry, resolved once (see DESIGN.md §9 naming).
 *  Shared by both engine frontends; per-batch cost is a handful of
 *  relaxed atomic increments. */
struct EngineTelemetry {
    telemetry::Counter& batches;
    telemetry::Counter& reordered_batches;
    telemetry::Counter& usc_batches;
    telemetry::Counter& hau_batches;
    telemetry::Counter& baseline_batches;
    telemetry::Counter& abr_active_batches;
    telemetry::Counter& abr_reorder_verdicts;
    telemetry::Counter& oca_probes;
    telemetry::Counter& oca_deferred_rounds;
    telemetry::Histogram& cad;
    telemetry::Histogram& overlap;
    telemetry::Gauge& instrumentation_cycles;
    telemetry::PhaseTimer& ingest_wall;

    static EngineTelemetry&
    get()
    {
        // Bucket bounds: CAD in decades around the paper's TH=465;
        // overlap in tenths of the [0,1] ratio (OCA threshold 0.25).
        static const double kCadBounds[] = {0.0,    50.0,   100.0,  250.0,
                                            465.0,  1000.0, 2500.0, 10000.0};
        static const double kOverlapBounds[] = {0.0, 0.1, 0.2, 0.25, 0.3,
                                                0.4, 0.5, 0.75, 0.9};
        auto& r = telemetry::Registry::global();
        static EngineTelemetry t{
            r.counter("core.engine.batches"),
            r.counter("core.engine.reordered_batches"),
            r.counter("core.engine.usc_batches"),
            r.counter("core.engine.hau_batches"),
            r.counter("core.engine.baseline_batches"),
            r.counter("core.abr.active_batches"),
            r.counter("core.abr.reorder_verdicts"),
            r.counter("core.oca.probes"),
            r.counter("core.oca.deferred_rounds"),
            r.histogram("core.abr.cad", kCadBounds),
            r.histogram("core.oca.overlap", kOverlapBounds),
            r.gauge("core.engine.instrumentation_cycles"),
            r.phase("core.engine.ingest_wall"),
        };
        return t;
    }

    void
    record(const BatchReport& report, bool oca_probed)
    {
        batches.inc();
        if (report.reordered) {
            reordered_batches.inc();
        } else if (report.used_hau) {
            hau_batches.inc();
        } else {
            baseline_batches.inc();
        }
        if (report.used_usc) {
            usc_batches.inc();
        }
        if (report.abr_active) {
            abr_active_batches.inc();
        }
        if (report.reordered) {
            abr_reorder_verdicts.inc();
        }
        if (report.cad.has_value()) {
            cad.record(report.cad->cad());
        }
        if (oca_probed) {
            oca_probes.inc();
            overlap.record(report.overlap);
        }
        if (report.defer_compute) {
            oca_deferred_rounds.inc();
        }
        instrumentation_cycles.add(report.instrumentation_cycles);
    }
};

} // namespace

const char*
to_string(UpdatePolicy policy)
{
    switch (policy) {
      case UpdatePolicy::kBaseline:
        return "baseline";
      case UpdatePolicy::kAlwaysReorder:
        return "RO";
      case UpdatePolicy::kAlwaysReorderUsc:
        return "RO+USC";
      case UpdatePolicy::kAlwaysHau:
        return "HAU-only";
      case UpdatePolicy::kAbr:
        return "ABR";
      case UpdatePolicy::kAbrUsc:
        return "ABR+USC";
      case UpdatePolicy::kAbrUscHau:
        return "ABR+USC+HAU";
    }
    return "?";
}

namespace detail {

bool
DecisionCore::policy_uses_abr(UpdatePolicy p)
{
    return p == UpdatePolicy::kAbr || p == UpdatePolicy::kAbrUsc ||
           p == UpdatePolicy::kAbrUscHau;
}

bool
DecisionCore::reorder_now(UpdatePolicy p) const
{
    switch (p) {
      case UpdatePolicy::kBaseline:
      case UpdatePolicy::kAlwaysHau:
        return false;
      case UpdatePolicy::kAlwaysReorder:
      case UpdatePolicy::kAlwaysReorderUsc:
        return true;
      case UpdatePolicy::kAbr:
      case UpdatePolicy::kAbrUsc:
      case UpdatePolicy::kAbrUscHau:
        return abr_.reordering();
    }
    return false;
}

PendingWork
PendingAccumulator::take()
{
    PendingWork w;
    std::sort(affected_.begin(), affected_.end());
    affected_.erase(std::unique(affected_.begin(), affected_.end()),
                    affected_.end());
    w.affected = std::move(affected_);
    w.inserted = std::move(inserted_);
    w.deleted = std::move(deleted_);
    w.batches = batches_;
    affected_.clear();
    inserted_.clear();
    deleted_.clear();
    batches_ = 0;
    return w;
}

} // namespace detail

namespace {

/** Grow a graph to cover every vertex up to `max_v`. */
template <typename Graph>
void
ensure_capacity(Graph& g, VertexId max_v)
{
    if (static_cast<std::size_t>(max_v) + 1 > g.num_vertices()) {
        g.ensure_vertices(static_cast<std::size_t>(max_v) + 1);
    }
}

/**
 * Reorder the batch (when the latched decision says so) and make sure the
 * graph covers every vertex it names.  The radix reorderer computes the max
 * vertex id inside its fused histogram pass, so reordered batches pay no
 * separate capacity scan.  Returns the reordering, or null.
 */
template <typename Graph>
const stream::ReorderedBatch*
reorder_and_reserve(detail::DecisionCore& core, stream::Reorderer& reorderer,
                    Graph& g, const stream::EdgeBatch& batch,
                    ThreadPool& pool, bool& reorder_out)
{
    reorder_out = core.reorder_now(core.config().policy);
    if (reorder_out) {
        const stream::ReorderedBatch& rb =
            reorderer.reorder(batch.edges(), pool);
        ensure_capacity(g, reorderer.last_max_vertex());
        return &rb;
    }
    ensure_capacity(g, stream::max_vertex_of(batch.edges()));
    return nullptr;
}

/**
 * Decision + dispatch shared by both frontends.  Returns the filled
 * report (minus timing) and the chosen parameters via out-params.
 */
struct Dispatch {
    bool reorder = false;
    bool usc = false;
    bool hau = false;
    bool want_probe = false;
};

template <typename RunUpdate>
BatchReport
drive_batch(detail::DecisionCore& core, const stream::EdgeBatch& batch,
            bool reorder, const stream::ReorderedBatch* rb,
            bool hau_available, RunUpdate&& run_update)
{
    const UpdatePolicy policy = core.config().policy;
    BatchReport report;
    report.batch_id = batch.id;

    // 1. The caller reordered first if the latched decision said so —
    //    ABR's cheap instrumentation path reads that reordering's run
    //    index, and the update path reuses it outright.

    // 2. ABR instrumentation + decision latch for the following batches.
    if (detail::DecisionCore::policy_uses_abr(policy)) {
        const AbrDecision ad = core.abr().on_batch(batch.edges(), rb);
        report.abr_active = ad.active;
        report.cad = ad.cad;
        report.instrumentation_cycles += ad.instrumentation_cycles;
    } else {
        // Input-oblivious policies still sample locality on every n-th
        // batch so OCA stays available for the compute phase.
        report.abr_active =
            core.abr().params().n == 0
                ? false
                : ((batch.id - 1) % core.abr().params().n) == 0;
    }

    // 3. Update execution mode for this batch.
    Dispatch d;
    d.reorder = reorder;
    d.usc = reorder && (policy == UpdatePolicy::kAlwaysReorderUsc ||
                        policy == UpdatePolicy::kAbrUsc ||
                        policy == UpdatePolicy::kAbrUscHau);
    d.hau = hau_available && !reorder &&
            (policy == UpdatePolicy::kAlwaysHau ||
             policy == UpdatePolicy::kAbrUscHau);
    // OCA samples locality on ABR-active batches; batch 1 has no
    // predecessor (overlap is necessarily zero), so the first usable
    // sample is taken on batch 2 instead.
    d.want_probe = core.oca().params().enabled &&
                   ((report.abr_active && batch.id > 1) || batch.id == 2);

    report.reordered = d.reorder;
    report.used_usc = d.usc;
    report.used_hau = d.hau;

    // 4. Run the update (frontend-specific) with an OCA probe when due.
    stream::OcaProbe probe;
    run_update(d, rb, d.want_probe ? &probe : nullptr, report);
    if (core.oca().params().enabled) {
        report.instrumentation_cycles +=
            static_cast<double>(batch.size()) *
            core.oca().params().instr_cycles_per_edge;
    }

    // 5. OCA: decide whether to defer this batch's compute round.
    const OcaDecision od =
        core.oca().on_batch(d.want_probe ? &probe : nullptr);
    report.overlap = od.overlap;
    report.defer_compute = od.defer_compute;
    EngineTelemetry::get().record(report, d.want_probe);
    return report;
}

} // namespace

SimEngine::SimEngine(const EngineConfig& config,
                     const sim::MachineParams& machine,
                     const sim::SwCostParams& sw,
                     const sim::HauCostParams& hw, std::size_t num_vertices,
                     ThreadPool& pool)
    : core_(config), graph_(num_vertices),
      runner_(machine, sw, hw, num_vertices, config.reorder_mode),
      pool_(pool), reorderer_(config.reorder_mode)
{
}

BatchReport
SimEngine::ingest(const stream::EdgeBatch& batch)
{
    bool reorder = false;
    const stream::ReorderedBatch* rb = reorder_and_reserve(
        core_, reorderer_, graph_, batch, pool_, reorder);
    BatchReport report = drive_batch(
        core_, batch, reorder, rb, /*hau_available=*/true,
        [&](const Dispatch& d, const stream::ReorderedBatch* rb,
            stream::OcaProbe* probe, BatchReport& r) {
            const sim::UpdateMode mode =
                d.reorder ? (d.usc ? sim::UpdateMode::kReorderedUsc
                                   : sim::UpdateMode::kReordered)
                          : (d.hau ? sim::UpdateMode::kHau
                                   : sim::UpdateMode::kBaseline);
            r.update = runner_.run(graph_, batch, mode, probe, rb);
        });

    // Instrumentation work is parallel across the machine's workers; fold
    // it into the batch's modeled cycles and advance the virtual clocks so
    // subsequent batches see it.
    const double instr_parallel =
        report.instrumentation_cycles /
        static_cast<double>(runner_.machine().num_cores);
    runner_.exec().charge_all(instr_parallel);
    report.update.cycles += static_cast<Cycles>(instr_parallel);

    pending_.add(batch);
    compute_due_ = !report.defer_compute;
    return report;
}

RealTimeEngine::RealTimeEngine(const EngineConfig& config,
                               std::size_t num_vertices, ThreadPool& pool)
    : core_(config), graph_(num_vertices), pool_(pool),
      reorderer_(config.reorder_mode)
{
}

BatchReport
RealTimeEngine::ingest(const stream::EdgeBatch& batch)
{
    Timer timer;
    bool reorder = false;
    const stream::ReorderedBatch* reordered = reorder_and_reserve(
        core_, reorderer_, graph_, batch, pool_, reorder);
    BatchReport report = drive_batch(
        core_, batch, reorder, reordered, /*hau_available=*/false,
        [&](const Dispatch& d, const stream::ReorderedBatch* rb,
            stream::OcaProbe* probe, BatchReport&) {
            stream::RealContext ctx(pool_, &usc_scratch_);
            if (d.reorder && d.usc) {
                stream::apply_batch_usc(graph_, batch, *rb, ctx, probe);
            } else if (d.reorder) {
                stream::apply_batch_reordered(graph_, batch, *rb, ctx,
                                              probe);
            } else {
                stream::apply_batch_baseline(graph_, batch, ctx, probe);
            }
        });
    report.wall_seconds = timer.seconds();
    EngineTelemetry::get().ingest_wall.add(report.wall_seconds);

    pending_.add(batch);
    compute_due_ = !report.defer_compute;
    return report;
}

} // namespace igs::core
