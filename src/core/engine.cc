#include "core/engine.h"

#include <type_traits>
#include <utility>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "core/ingest.h"

namespace igs::core {

namespace {

/** Decision-pipeline telemetry, resolved once (see DESIGN.md §9 naming).
 *  Shared by both engine frontends; per-batch cost is a handful of
 *  relaxed atomic increments. */
struct EngineTelemetry {
    telemetry::Counter& batches;
    telemetry::Counter& reordered_batches;
    telemetry::Counter& usc_batches;
    telemetry::Counter& hau_batches;
    telemetry::Counter& baseline_batches;
    telemetry::Counter& abr_active_batches;
    telemetry::Counter& abr_reorder_verdicts;
    telemetry::Counter& oca_probes;
    telemetry::Counter& oca_deferred_rounds;
    telemetry::Histogram& cad;
    telemetry::Histogram& overlap;
    telemetry::Gauge& instrumentation_cycles;
    telemetry::PhaseTimer& ingest_wall;

    static EngineTelemetry&
    get()
    {
        // Bucket bounds: CAD in decades around the paper's TH=465;
        // overlap in tenths of the [0,1] ratio (OCA threshold 0.25).
        static const double kCadBounds[] = {0.0,    50.0,   100.0,  250.0,
                                            465.0,  1000.0, 2500.0, 10000.0};
        static const double kOverlapBounds[] = {0.0, 0.1, 0.2, 0.25, 0.3,
                                                0.4, 0.5, 0.75, 0.9};
        auto& r = telemetry::Registry::global();
        static EngineTelemetry t{
            r.counter("core.engine.batches"),
            r.counter("core.engine.reordered_batches"),
            r.counter("core.engine.usc_batches"),
            r.counter("core.engine.hau_batches"),
            r.counter("core.engine.baseline_batches"),
            r.counter("core.abr.active_batches"),
            r.counter("core.abr.reorder_verdicts"),
            r.counter("core.oca.probes"),
            r.counter("core.oca.deferred_rounds"),
            r.histogram("core.abr.cad", kCadBounds),
            r.histogram("core.oca.overlap", kOverlapBounds),
            r.gauge("core.engine.instrumentation_cycles"),
            r.phase("core.engine.ingest_wall"),
        };
        return t;
    }

    void
    record(const BatchReport& report, bool oca_probed)
    {
        batches.inc();
        if (report.reordered) {
            reordered_batches.inc();
        } else if (report.used_hau) {
            hau_batches.inc();
        } else {
            baseline_batches.inc();
        }
        if (report.used_usc) {
            usc_batches.inc();
        }
        if (report.abr_active) {
            abr_active_batches.inc();
        }
        if (report.reordered) {
            abr_reorder_verdicts.inc();
        }
        if (report.cad.has_value()) {
            cad.record(report.cad->cad());
        }
        if (oca_probed) {
            oca_probes.inc();
            overlap.record(report.overlap);
        }
        if (report.defer_compute) {
            oca_deferred_rounds.inc();
        }
        instrumentation_cycles.add(report.instrumentation_cycles);
    }
};

/** Pipeline telemetry (DESIGN.md §11), resolved on first publication.
 *  Lazy on purpose: engines that never enter pipeline mode must not add
 *  these metrics to the registry snapshot, or every pre-pipeline golden
 *  run would grow "only in candidate" keys. */
struct PipelineTelemetry {
    telemetry::Counter& epochs;
    telemetry::Counter& dirty_vertices;
    telemetry::Counter& copied_edges;
    telemetry::Counter& stalls;
    telemetry::PhaseTimer& stall_wall;

    static PipelineTelemetry&
    get()
    {
        auto& r = telemetry::Registry::global();
        static PipelineTelemetry t{
            r.counter("core.pipeline.epochs_published"),
            r.counter("core.pipeline.dirty_vertices_copied"),
            r.counter("core.pipeline.edges_copied"),
            r.counter("core.pipeline.backpressure_stalls"),
            r.phase("core.pipeline.stall_wall"),
        };
        return t;
    }
};

/** Renumbering telemetry (DESIGN.md §16), resolved on the first scored
 *  window.  Lazy for the same reason as PipelineTelemetry: runs with
 *  renumbering disabled must not grow the registry snapshot. */
struct RenumberTelemetry {
    telemetry::Counter& total;
    telemetry::Counter& windows;
    telemetry::Gauge& ewma;

    static RenumberTelemetry&
    get()
    {
        auto& r = telemetry::Registry::global();
        static RenumberTelemetry t{
            r.counter("core.graph.renumber_total"),
            r.counter("core.graph.renumber_windows"),
            r.gauge("core.graph.renumber_locality_ewma"),
        };
        return t;
    }
};

} // namespace

const char*
to_string(UpdatePolicy policy)
{
    switch (policy) {
      case UpdatePolicy::kBaseline:
        return "baseline";
      case UpdatePolicy::kAlwaysReorder:
        return "RO";
      case UpdatePolicy::kAlwaysReorderUsc:
        return "RO+USC";
      case UpdatePolicy::kAlwaysHau:
        return "HAU-only";
      case UpdatePolicy::kAbr:
        return "ABR";
      case UpdatePolicy::kAbrUsc:
        return "ABR+USC";
      case UpdatePolicy::kAbrUscHau:
        return "ABR+USC+HAU";
    }
    return "?";
}

const char*
to_string(GraphBackend backend)
{
    switch (backend) {
      case GraphBackend::kAdjacencyList:
        return "adjacency-list";
      case GraphBackend::kHybrid:
        return "hybrid";
    }
    return "?";
}

namespace detail {

void
record_engine_telemetry(const BatchReport& report, bool oca_probed)
{
    EngineTelemetry::get().record(report, oca_probed);
}

void
record_ingest_wall(double seconds)
{
    EngineTelemetry::get().ingest_wall.add(seconds);
}

bool
DecisionCore::policy_uses_abr(UpdatePolicy p)
{
    return p == UpdatePolicy::kAbr || p == UpdatePolicy::kAbrUsc ||
           p == UpdatePolicy::kAbrUscHau;
}

bool
DecisionCore::reorder_now(UpdatePolicy p) const
{
    switch (p) {
      case UpdatePolicy::kBaseline:
      case UpdatePolicy::kAlwaysHau:
        return false;
      case UpdatePolicy::kAlwaysReorder:
      case UpdatePolicy::kAlwaysReorderUsc:
        return true;
      case UpdatePolicy::kAbr:
      case UpdatePolicy::kAbrUsc:
      case UpdatePolicy::kAbrUscHau:
        return abr_.reordering();
    }
    return false;
}

} // namespace detail

template <typename GraphT>
BasicRealTimeEngine<GraphT>::BasicRealTimeEngine(const EngineConfig& config,
                                                 std::size_t num_vertices,
                                                 ThreadPool& pool)
    : core_(config), graph_(num_vertices), pool_(pool),
      reorderer_(config.reorder_mode), locality_monitor_(config.renumber)
{
    // Adaptive backends take their tier/migration thresholds from the
    // engine config; fixed-layout backends have no such hook.
    if constexpr (requires { graph_.set_tuning(config.store); }) {
        graph_.set_tuning(config.store);
    }
}

template <typename GraphT>
BasicRealTimeEngine<GraphT>::~BasicRealTimeEngine()
{
    join_inflight();
}

template <typename GraphT>
void
BasicRealTimeEngine<GraphT>::set_compute(ComputeFn fn)
{
    join_inflight();
    compute_fn_ = std::move(fn);
}

template <typename GraphT>
void
BasicRealTimeEngine<GraphT>::join_inflight()
{
    if (!inflight_.joinable()) {
        return;
    }
    const bool stalled = !inflight_done_.load(std::memory_order_acquire);
    Timer timer;
    inflight_.join();
    if (stalled) {
        const double waited = timer.seconds();
        pipeline_stats_.backpressure_stalls += 1;
        pipeline_stats_.stall_seconds += waited;
        auto& t = PipelineTelemetry::get();
        t.stalls.inc();
        t.stall_wall.add(waited);
    }
}

template <typename GraphT>
void
BasicRealTimeEngine<GraphT>::publish_epoch()
{
    // Backpressure: at depth 2 the previous epoch's round may still be in
    // flight; publication would mutate the snapshot under it, so wait.
    join_inflight();

    const EpochId epoch = graph_.advance_epoch();
    inflight_work_ = pending_.hand_off(epoch);
    const graph::PublishStats ps =
        snapshots_.publish(graph_, inflight_work_.affected);
    pipeline_stats_.epochs_published += 1;
    pipeline_stats_.dirty_vertices_copied += ps.dirty_vertices;
    pipeline_stats_.edges_copied += ps.copied_edges;
    auto& t = PipelineTelemetry::get();
    t.epochs.inc();
    t.dirty_vertices.inc(ps.dirty_vertices);
    t.copied_edges.inc(ps.copied_edges);
    // Tiered backends refresh their per-tier population gauges once per
    // epoch (a census, too costly per edge).
    if constexpr (requires { graph_.publish_tier_telemetry(); }) {
        graph_.publish_tier_telemetry();
    }

    const graph::SnapshotView view = snapshots_.view();
    if (core_.config().pipeline_depth >= 2) {
        inflight_done_.store(false, std::memory_order_release);
        // The capture outlives this scope by design: publish_epoch joins
        // the in-flight round (join_inflight above) before the next
        // publish, so the captured view can never dangle.
        // igs-lint: allow(snapshot-view-escape)
        inflight_ = std::thread([this, view]() {
            compute_fn_(view, inflight_work_);
            inflight_done_.store(true, std::memory_order_release);
        });
    } else {
        compute_fn_(view, inflight_work_);
    }
}

template <typename GraphT>
void
BasicRealTimeEngine<GraphT>::flush_pipeline()
{
    if (!compute_fn_) {
        return;
    }
    if (!pending_.empty()) {
        publish_epoch();
    }
    join_inflight();
}

template <typename GraphT>
BatchReport
BasicRealTimeEngine<GraphT>::ingest(const stream::EdgeBatch& batch)
{
    Timer timer;
    bool reorder = false;
    const stream::ReorderedBatch* reordered = detail::reorder_and_reserve(
        core_, reorderer_, graph_, batch, pool_, reorder);
    BatchReport report = detail::drive_batch(
        core_, batch, reorder, reordered, /*hau_available=*/false,
        [&](const detail::Dispatch& d, const stream::ReorderedBatch* rb,
            stream::OcaProbe* probe, BatchReport&) {
            stream::RealContext ctx(pool_, &usc_scratch_);
            if (d.reorder && d.usc) {
                stream::apply_batch_usc(graph_, batch, *rb, ctx, probe);
            } else if (d.reorder) {
                stream::apply_batch_reordered(graph_, batch, *rb, ctx,
                                              probe);
            } else {
                stream::apply_batch_baseline(graph_, batch, ctx, probe);
            }
        });
    report.wall_seconds = timer.seconds();
    detail::record_ingest_wall(report.wall_seconds);

    pending_.note_batch(batch);
    compute_due_ = !report.defer_compute;
    // Pipeline mode: the engine schedules the compute round itself.  The
    // report was fully assembled above, so depth-1 output stays
    // byte-identical to the non-pipelined engine.
    if (compute_fn_ && compute_due_) {
        publish_epoch();
    }
    // Disabled (the default) costs one branch here; the identity map
    // keeps every read/write path bit-identical to pre-indirection code.
    if (core_.config().renumber.enabled) {
        maybe_renumber(batch);
    }
    return report;
}

template <typename GraphT>
void
BasicRealTimeEngine<GraphT>::maybe_renumber(const stream::EdgeBatch& batch)
{
    if constexpr (requires {
                      graph_.apply_renumber(std::span<const VertexId>{});
                      graph_.id_map();
                  }) {
        // One window = one batch: every update touches its src row (out)
        // and dst row (in).
        for (const StreamEdge& e : batch.edges()) {
            locality_monitor_.observe(e.src);
            locality_monitor_.observe(e.dst);
        }
        renumber_stats_.locality_ewma =
            locality_monitor_.end_window(graph_.id_map());
        renumber_stats_.last_window_score =
            locality_monitor_.last_window_score();
        renumber_stats_.windows = locality_monitor_.windows();
        auto& t = RenumberTelemetry::get();
        t.windows.inc();
        t.ewma.set(renumber_stats_.locality_ewma);
        if (!locality_monitor_.should_renumber()) {
            return;
        }
        const std::size_t n = graph_.num_vertices();
        std::vector<std::uint64_t> degrees(n);
        for (std::size_t v = 0; v < n; ++v) {
            const auto lv = static_cast<VertexId>(v);
            degrees[v] = static_cast<std::uint64_t>(
                             graph_.degree(lv, Direction::kOut)) +
                         graph_.degree(lv, Direction::kIn);
        }
        graph_.apply_renumber(graph::LocalityRenumberer::plan(
            degrees, core_.config().renumber.mode));
        locality_monitor_.note_renumbered();
        renumber_stats_.renumbers += 1;
        renumber_stats_.locality_ewma = locality_monitor_.ewma();
        t.total.inc();
    } else {
        (void)batch;
    }
}

template class BasicRealTimeEngine<graph::AdjacencyList>;
template class BasicRealTimeEngine<graph::HybridStore>;

namespace {

/** Forwarding visitor; the monostate alternative only exists during
 *  AnyRealTimeEngine construction and is never observable afterwards. */
template <typename Variant, typename Fn>
decltype(auto)
with_engine(Variant& v, Fn&& fn)
{
    return std::visit(
        [&](auto& e) -> decltype(auto) {
            if constexpr (std::is_same_v<std::decay_t<decltype(e)>,
                                         std::monostate>) {
                IGS_CHECK_MSG(false, "AnyRealTimeEngine not constructed");
                // Unreachable; satisfies the common-return-type deduction.
                return fn(*static_cast<RealTimeEngine*>(nullptr));
            } else {
                return fn(e);
            }
        },
        v);
}

} // namespace

AnyRealTimeEngine::AnyRealTimeEngine(const EngineConfig& config,
                                     std::size_t num_vertices,
                                     ThreadPool& pool)
    : backend_(config.graph_backend)
{
    // The engines are immovable (atomics, a joinable thread), so the
    // variant alternative is constructed in place.
    if (backend_ == GraphBackend::kHybrid) {
        engine_.emplace<HybridRealTimeEngine>(config, num_vertices, pool);
    } else {
        engine_.emplace<RealTimeEngine>(config, num_vertices, pool);
    }
}

BatchReport
AnyRealTimeEngine::ingest(const stream::EdgeBatch& batch)
{
    return with_engine(engine_, [&](auto& e) { return e.ingest(batch); });
}

bool
AnyRealTimeEngine::compute_due() const
{
    return with_engine(engine_, [](const auto& e) { return e.compute_due(); });
}

PendingWork
AnyRealTimeEngine::take_pending_work()
{
    return with_engine(engine_,
                       [](auto& e) { return e.take_pending_work(); });
}

void
AnyRealTimeEngine::set_compute(ComputeFn fn)
{
    with_engine(engine_, [&](auto& e) { e.set_compute(std::move(fn)); });
}

void
AnyRealTimeEngine::flush_pipeline()
{
    with_engine(engine_, [](auto& e) { e.flush_pipeline(); });
}

graph::SnapshotView
AnyRealTimeEngine::snapshot() const
{
    return with_engine(engine_, [](const auto& e) { return e.snapshot(); });
}

const RenumberStats&
AnyRealTimeEngine::renumber_stats() const
{
    return with_engine(engine_,
                       [](const auto& e) -> const RenumberStats& {
                           return e.renumber_stats();
                       });
}

const PipelineStats&
AnyRealTimeEngine::pipeline_stats() const
{
    return with_engine(engine_,
                       [](const auto& e) -> const PipelineStats& {
                           return e.pipeline_stats();
                       });
}

const EngineConfig&
AnyRealTimeEngine::config() const
{
    return with_engine(engine_, [](const auto& e) -> const EngineConfig& {
        return e.config();
    });
}

} // namespace igs::core
