/**
 * @file
 * Decision + dispatch plumbing shared by the engine frontends.
 *
 * The input-aware ingest sequence — reorder-or-not via the latched ABR
 * decision, ABR instrumentation, execution-mode selection, OCA probe and
 * deferral — is identical for every frontend; only the update execution
 * differs (modeled cycles in sim::SimEngine, real threads and locks in
 * core::RealTimeEngine).  These templates capture the shared sequence so
 * the frontends can live in their proper layers (sim/ sits above core/ in
 * the module-layer DAG enforced by tools/igs_analyzer.py) without
 * duplicating the decision logic.
 */
#ifndef IGS_CORE_INGEST_H
#define IGS_CORE_INGEST_H

#include "core/engine.h"
#include "stream/batch.h"
#include "stream/reorder.h"
#include "stream/update_context.h"

namespace igs::core::detail {

/** Record a finished batch into the engine telemetry (engine.cc). */
void record_engine_telemetry(const BatchReport& report, bool oca_probed);

/** Accumulate one ingest's wall-clock seconds (RealTimeEngine only). */
void record_ingest_wall(double seconds);

/** Grow a graph to cover every vertex up to `max_v`. */
template <typename Graph>
void
ensure_capacity(Graph& g, VertexId max_v)
{
    if (static_cast<std::size_t>(max_v) + 1 > g.num_vertices()) {
        g.ensure_vertices(static_cast<std::size_t>(max_v) + 1);
    }
}

/**
 * Reorder the batch (when the latched decision says so) and make sure the
 * graph covers every vertex it names.  The radix reorderer computes the max
 * vertex id inside its fused histogram pass, so reordered batches pay no
 * separate capacity scan.  Returns the reordering, or null.
 */
template <typename Graph>
const stream::ReorderedBatch*
reorder_and_reserve(DecisionCore& core, stream::Reorderer& reorderer,
                    Graph& g, const stream::EdgeBatch& batch,
                    ThreadPool& pool, bool& reorder_out)
{
    reorder_out = core.reorder_now(core.config().policy);
    if (reorder_out) {
        const stream::ReorderedBatch& rb =
            reorderer.reorder(batch.edges(), pool);
        ensure_capacity(g, reorderer.last_max_vertex());
        return &rb;
    }
    ensure_capacity(g, stream::max_vertex_of(batch.edges()));
    return nullptr;
}

/** Execution-mode selection for one batch (filled by drive_batch). */
struct Dispatch {
    bool reorder = false;
    bool usc = false;
    bool hau = false;
    bool want_probe = false;
};

/**
 * Decision + dispatch shared by the frontends.  Returns the filled report
 * (minus frontend timing); `run_update(dispatch, rb, probe, report)` runs
 * the frontend-specific update execution.
 */
template <typename RunUpdate>
BatchReport
drive_batch(DecisionCore& core, const stream::EdgeBatch& batch, bool reorder,
            const stream::ReorderedBatch* rb, bool hau_available,
            RunUpdate&& run_update)
{
    const UpdatePolicy policy = core.config().policy;
    BatchReport report;
    report.batch_id = batch.id;

    // 1. The caller reordered first if the latched decision said so —
    //    ABR's cheap instrumentation path reads that reordering's run
    //    index, and the update path reuses it outright.

    // 2. ABR instrumentation + decision latch for the following batches.
    if (DecisionCore::policy_uses_abr(policy)) {
        const AbrDecision ad = core.abr().on_batch(batch.edges(), rb);
        report.abr_active = ad.active;
        report.cad = ad.cad;
        report.instrumentation_cycles += ad.instrumentation_cycles;
    } else {
        // Input-oblivious policies still sample locality on every n-th
        // batch so OCA stays available for the compute phase.
        report.abr_active =
            core.abr().params().n == 0
                ? false
                : ((batch.id - 1) % core.abr().params().n) == 0;
    }

    // 3. Update execution mode for this batch.
    Dispatch d;
    d.reorder = reorder;
    d.usc = reorder && (policy == UpdatePolicy::kAlwaysReorderUsc ||
                        policy == UpdatePolicy::kAbrUsc ||
                        policy == UpdatePolicy::kAbrUscHau);
    d.hau = hau_available && !reorder &&
            (policy == UpdatePolicy::kAlwaysHau ||
             policy == UpdatePolicy::kAbrUscHau);
    // OCA samples locality on ABR-active batches; batch 1 has no
    // predecessor (overlap is necessarily zero), so the first usable
    // sample is taken on batch 2 instead.
    d.want_probe = core.oca().params().enabled &&
                   ((report.abr_active && batch.id > 1) || batch.id == 2);

    report.reordered = d.reorder;
    report.used_usc = d.usc;
    report.used_hau = d.hau;

    // 4. Run the update (frontend-specific) with an OCA probe when due.
    stream::OcaProbe probe;
    run_update(d, rb, d.want_probe ? &probe : nullptr, report);
    if (core.oca().params().enabled) {
        report.instrumentation_cycles +=
            static_cast<double>(batch.size()) *
            core.oca().params().instr_cycles_per_edge;
    }

    // 5. OCA: decide whether to defer this batch's compute round.
    const OcaDecision od =
        core.oca().on_batch(d.want_probe ? &probe : nullptr);
    report.overlap = od.overlap;
    report.defer_compute = od.defer_compute;
    record_engine_telemetry(report, d.want_probe);
    return report;
}

} // namespace igs::core::detail

#endif // IGS_CORE_INGEST_H
