/**
 * @file
 * Adaptive Batch Reordering (ABR, paper §4.2).
 *
 * Every n-th batch is "ABR-active": the batch's degree distribution is
 * instrumented (cheaply from the run index if the batch was reordered,
 * via a concurrent hash map otherwise), CAD_λ is computed, and the binary
 * reorder decision (CAD_λ ≥ TH) is latched for the following n "ABR-inert"
 * batches.  The default is to reorder (paper pseudocode: `reordering =
 * true`), so the very first batch runs reordered and is instrumented on
 * the cheap path.
 */
#ifndef IGS_CORE_ABR_H
#define IGS_CORE_ABR_H

#include <cstdint>
#include <optional>
#include <span>

#include "core/cad.h"
#include "stream/reorder.h"

namespace igs::core {

/** ABR design parameters (paper defaults: n=10, λ=256, TH=465). */
struct AbrParams {
    /** Instrumentation period: one active batch per n batches. */
    std::uint32_t n = 10;
    /** Degree cutoff distinguishing a batch's top-degree vertices. */
    std::uint32_t lambda = 256;
    /** Reorder iff CAD_λ >= threshold. */
    double threshold = 465.0;

    /**
     * Per-edge instrumentation cost in cycles, charged on ABR-active
     * batches (calibrated to the paper's Fig 16a overheads: ~0.90x
     * slowdown on reordered active batches, ~0.54x on non-reordered ones
     * where the TBB-style concurrent hash map is expensive).
     */
    double instr_cycles_per_edge_reordered = 30.0;
    double instr_cycles_per_edge_hashed = 260.0;
};

/** What ABR did for one batch. */
struct AbrDecision {
    /** Was this batch ABR-active (instrumented)? */
    bool active = false;
    /** The reorder decision applied to THIS batch's update. */
    bool reorder = false;
    /** CAD measured on this batch (active batches only). */
    std::optional<CadResult> cad;
    /** Modeled instrumentation overhead (cycles, whole machine). */
    double instrumentation_cycles = 0.0;
};

/** Online ABR controller. */
class AbrController {
  public:
    explicit AbrController(const AbrParams& params = {}) : params_(params) {}

    const AbrParams& params() const { return params_; }

    /** The decision currently latched (applies to the next batch). */
    bool reordering() const { return reordering_; }

    /**
     * Process one incoming batch *before* its update: returns the decision
     * to apply to this batch and, if the batch is ABR-active, measures CAD
     * and latches the decision for the next n batches.
     *
     * @param edges the raw batch
     * @param reordered the reordered batch if the current decision is to
     *        reorder (instrumentation then reads the run index), nullptr
     *        otherwise (hash-map path)
     */
    AbrDecision on_batch(std::span<const StreamEdge> edges,
                         const stream::ReorderedBatch* reordered);

  private:
    AbrParams params_;
    bool reordering_ = true; // paper default: RO
    std::uint64_t batch_counter_ = 0;
};

} // namespace igs::core

#endif // IGS_CORE_ABR_H
