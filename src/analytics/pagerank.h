/**
 * @file
 * PageRank: static (GAP-style pull iteration to convergence) and
 * incremental (affected-vertex propagation, the Kineograph/Vora model
 * SAGA-Bench uses).
 *
 * Both operate on any store satisfying the graph::GraphReadPath concept —
 * a live AdjacencyList / IndexedAdjacency, or the pipeline's immutable
 * SnapshotView.  The concept constraint documents (and enforces) that the
 * compute phase only touches the read path: an algorithm cannot silently
 * grow a dependency on mutation while a snapshot is in flight.
 */
#ifndef IGS_ANALYTICS_PAGERANK_H
#define IGS_ANALYTICS_PAGERANK_H

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "analytics/compute_meter.h"
#include "graph/graph_store.h"

namespace igs::analytics {

/** PageRank parameters. */
struct PageRankParams {
    double damping = 0.85;
    double tolerance = 1e-4;
    std::uint32_t max_iterations = 50;
};

/**
 * Static PageRank from scratch: pull-based Jacobi iteration until the
 * per-vertex delta sum falls below tolerance (GAP `pr` semantics).
 */
template <typename Graph>
    requires graph::GraphReadPath<Graph>
std::vector<double>
static_pagerank(const Graph& g, const PageRankParams& params = {},
                ComputeMeter* meter = nullptr)
{
    const std::size_t n = g.num_vertices();
    std::vector<double> rank(n, n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
    std::vector<double> next(n, 0.0);
    if (n == 0) {
        return rank;
    }
    const double base = (1.0 - params.damping) / static_cast<double>(n);
    if (meter != nullptr) {
        meter->round();
    }
    for (std::uint32_t it = 0; it < params.max_iterations; ++it) {
        if (meter != nullptr) {
            meter->iteration();
        }
        double error = 0.0;
        // Precompute outgoing contributions to keep the pull loop cheap.
        std::vector<double> contrib(n, 0.0);
        for (VertexId v = 0; v < n; ++v) {
            const auto deg = g.degree(v, Direction::kOut);
            if (deg > 0) {
                contrib[v] = rank[v] / static_cast<double>(deg);
            }
        }
        for (VertexId v = 0; v < n; ++v) {
            double sum = 0.0;
            for (const Neighbor& u : g.edges(v, Direction::kIn)) {
                sum += contrib[u.id];
            }
            if (meter != nullptr) {
                meter->activate();
                meter->traverse(g.degree(v, Direction::kIn));
            }
            next[v] = base + params.damping * sum;
            error += std::abs(next[v] - rank[v]);
        }
        rank.swap(next);
        if (error < params.tolerance) {
            break;
        }
    }
    return rank;
}

/**
 * Incremental PageRank: per-vertex ranks persist across batches; each
 * compute round seeds the frontier with the batch-affected vertices and
 * propagates rank changes outward until deltas fall below tolerance.
 *
 * This is the standard streaming approximation: vertices far from any
 * modification keep their stale (already converged) ranks.
 */
class IncrementalPageRank {
  public:
    explicit IncrementalPageRank(const PageRankParams& params = {})
        : params_(params)
    {
    }

    /** Current rank estimates (resized lazily). */
    const std::vector<double>& ranks() const { return rank_; }

    /**
     * Run one compute round over `g`, seeding from `affected` (vertices
     * touched by the just-ingested batch(es)).  Returns counted work.
     */
    template <typename Graph>
        requires graph::GraphReadPath<Graph>
    ComputeStats
    on_batch(const Graph& g, const std::vector<VertexId>& affected,
             ComputeMeter* external_meter = nullptr)
    {
        ComputeMeter local;
        ComputeMeter* meter = external_meter != nullptr ? external_meter
                                                        : &local;
        const std::size_t n = g.num_vertices();
        ensure_rank_capacity(n);
        const double base = (1.0 - params_.damping) / static_cast<double>(n);
        const ComputeStats before = meter->stats();
        meter->round();

        std::vector<VertexId> frontier;
        frontier.reserve(affected.size());
        for (VertexId v : affected) {
            if (!in_frontier_[v]) {
                in_frontier_[v] = true;
                frontier.push_back(v);
            }
        }

        for (std::uint32_t it = 0;
             it < params_.max_iterations && !frontier.empty(); ++it) {
            meter->iteration();
            std::vector<VertexId> next_frontier;
            for (VertexId v : frontier) {
                in_frontier_[v] = false;
            }
            for (VertexId v : frontier) {
                meter->activate();
                double sum = 0.0;
                for (const Neighbor& u : g.edges(v, Direction::kIn)) {
                    meter->traverse();
                    const auto deg = g.degree(u.id, Direction::kOut);
                    if (deg > 0) {
                        sum += rank_[u.id] / static_cast<double>(deg);
                    }
                }
                const double new_rank = base + params_.damping * sum;
                if (std::abs(new_rank - rank_[v]) > params_.tolerance) {
                    rank_[v] = new_rank;
                    for (const Neighbor& w : g.edges(v, Direction::kOut)) {
                        meter->traverse();
                        if (!in_frontier_[w.id]) {
                            in_frontier_[w.id] = true;
                            next_frontier.push_back(w.id);
                        }
                    }
                } else {
                    rank_[v] = new_rank;
                }
            }
            frontier.swap(next_frontier);
        }
        for (VertexId v : frontier) {
            in_frontier_[v] = false; // iteration cap hit; clear residue
        }

        ComputeStats delta = meter->stats();
        delta.activations -= before.activations;
        delta.traversals -= before.traversals;
        delta.rounds -= before.rounds;
        delta.iterations -= before.iterations;
        delta.seeds -= before.seeds;
        return delta;
    }

  private:
    void
    ensure_rank_capacity(std::size_t n)
    {
        if (rank_.size() < n) {
            const double init =
                n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
            rank_.resize(n, init);
            in_frontier_.resize(n, false);
        }
    }

    PageRankParams params_;
    std::vector<double> rank_;
    std::vector<bool> in_frontier_;
};

} // namespace igs::analytics

#endif // IGS_ANALYTICS_PAGERANK_H
