/**
 * @file
 * Single-source shortest paths: static (frontier Bellman-Ford, GAP `sssp`
 * semantics on positive weights) and incremental (KickStarter-style:
 * insertions relax locally; deletions invalidate and rebuild the affected
 * dependence subtree).
 */
#ifndef IGS_ANALYTICS_SSSP_H
#define IGS_ANALYTICS_SSSP_H

#include <cstdint>
#include <vector>

#include "analytics/compute_meter.h"
#include "common/check.h"
#include "common/types.h"
#include "graph/graph_store.h"

namespace igs::analytics {

/**
 * Static SSSP from `source` over out-edges, frontier-based Bellman-Ford
 * (correct for non-negative weights; our streams use positive weights).
 */
template <typename Graph>
    requires graph::GraphReadPath<Graph>
std::vector<Weight>
static_sssp(const Graph& g, VertexId source, ComputeMeter* meter = nullptr)
{
    const std::size_t n = g.num_vertices();
    std::vector<Weight> dist(n, kInfiniteDistance);
    if (n == 0) {
        return dist;
    }
    IGS_CHECK(source < n);
    if (meter != nullptr) {
        meter->round();
    }
    dist[source] = 0.0f;
    std::vector<VertexId> frontier{source};
    std::vector<bool> in_next(n, false);
    while (!frontier.empty()) {
        if (meter != nullptr) {
            meter->iteration();
        }
        std::vector<VertexId> next;
        for (VertexId v : frontier) {
            if (meter != nullptr) {
                meter->activate();
            }
            for (const Neighbor& e : g.edges(v, Direction::kOut)) {
                if (meter != nullptr) {
                    meter->traverse();
                }
                const Weight cand = dist[v] + e.weight;
                if (cand < dist[e.id]) {
                    dist[e.id] = cand;
                    if (!in_next[e.id]) {
                        in_next[e.id] = true;
                        next.push_back(e.id);
                    }
                }
            }
        }
        for (VertexId v : next) {
            in_next[v] = false;
        }
        frontier.swap(next);
    }
    return dist;
}

/**
 * Incremental SSSP with support for edge deletions.
 *
 * Insertions only lower distances: relax outward from inserted edges'
 * endpoints.  A deletion may invalidate distances that depended on the
 * removed edge; the affected dependence region is found conservatively
 * (vertices whose current distance was achieved through the deleted edge,
 * transitively), reset to infinity, and re-relaxed from its boundary —
 * the "trimming" approach of KickStarter.
 */
class IncrementalSssp {
  public:
    explicit IncrementalSssp(VertexId source) : source_(source) {}

    VertexId source() const { return source_; }
    const std::vector<Weight>& distances() const { return dist_; }

    /**
     * One compute round after ingesting a batch.
     * @param g          graph after the batch was applied
     * @param inserted   inserted edges (src,dst,weight)
     * @param deleted    deleted edges
     */
    template <typename Graph>
        requires graph::GraphReadPath<Graph>
    ComputeStats
    on_batch(const Graph& g, const std::vector<StreamEdge>& inserted,
             const std::vector<StreamEdge>& deleted,
             ComputeMeter* external_meter = nullptr)
    {
        ComputeMeter local;
        ComputeMeter* meter =
            external_meter != nullptr ? external_meter : &local;
        const ComputeStats before = meter->stats();
        meter->round();
        const std::size_t n = g.num_vertices();
        ensure_dist_capacity(n);

        std::vector<VertexId> frontier;
        auto push = [&](VertexId v) {
            if (!in_frontier_[v]) {
                in_frontier_[v] = true;
                frontier.push_back(v);
            }
        };

        // --- Distance-increasing modifications: invalidate the
        // dependence region (KickStarter-style trimming).  Two sources:
        // deletions, and duplicate insertions — the engine *accumulates*
        // weights on duplicates, so an "insert" can make an existing edge
        // heavier and thereby lengthen paths through it.
        {
            std::vector<VertexId> dirty;
            std::vector<VertexId> stack;
            auto seed_if_dependent = [&](const StreamEdge& e) {
                if (e.dst < n && dist_[e.dst] != kInfiniteDistance &&
                    e.src < n && dist_[e.src] != kInfiniteDistance) {
                    // Did dst's distance plausibly run through (src,dst)?
                    if (dist_[e.dst] >= dist_[e.src] &&
                        !dirty_flag(e.dst)) {
                        mark_dirty(e.dst, stack);
                    }
                }
            };
            for (const StreamEdge& e : deleted) {
                seed_if_dependent(e);
            }
            for (const StreamEdge& e : inserted) {
                if (e.src >= n || e.dst >= n) {
                    continue;
                }
                // Detect accumulation: the edge's current weight exceeds
                // this insertion's contribution iff it already existed.
                for (const Neighbor& nb : g.edges(e.src, Direction::kOut)) {
                    meter->traverse();
                    if (nb.id == e.dst) {
                        if (nb.weight > e.weight + 1e-6f) {
                            seed_if_dependent(e);
                        }
                        break;
                    }
                }
            }
            // Transitively dirty everything whose distance depended on a
            // dirty vertex (conservative: any out-neighbor with a larger
            // distance may have routed through it).
            while (!stack.empty()) {
                const VertexId v = stack.back();
                stack.pop_back();
                dirty.push_back(v);
                meter->activate();
                for (const Neighbor& e : g.edges(v, Direction::kOut)) {
                    meter->traverse();
                    if (!dirty_flag(e.id) &&
                        dist_[e.id] != kInfiniteDistance &&
                        dist_[e.id] >= dist_[v]) {
                        mark_dirty(e.id, stack);
                    }
                }
            }
            // Reset and seed recomputation from the region's in-boundary.
            for (VertexId v : dirty) {
                dist_[v] = kInfiniteDistance;
            }
            for (VertexId v : dirty) {
                for (const Neighbor& e : g.edges(v, Direction::kIn)) {
                    meter->traverse();
                    if (!dirty_flag(e.id) &&
                        dist_[e.id] != kInfiniteDistance) {
                        push(e.id);
                    }
                }
            }
            for (VertexId v : dirty) {
                dirty_[v] = false;
            }
            if (!dirty.empty() && source_ < n) {
                dist_[source_] = 0.0f;
                push(source_);
            }
        }

        // --- Insertions: relax from sources of new edges. ---------------
        for (const StreamEdge& e : inserted) {
            if (e.src < n && dist_[e.src] != kInfiniteDistance) {
                push(e.src);
            }
        }
        if (source_ < n && dist_[source_] != 0.0f) {
            dist_[source_] = 0.0f;
            push(source_);
        }

        // --- Relaxation to fixpoint. -------------------------------------
        while (!frontier.empty()) {
            meter->iteration();
            std::vector<VertexId> next;
            for (VertexId v : frontier) {
                in_frontier_[v] = false;
            }
            std::vector<VertexId> current;
            current.swap(frontier);
            for (VertexId v : current) {
                meter->activate();
                for (const Neighbor& e : g.edges(v, Direction::kOut)) {
                    meter->traverse();
                    const Weight cand = dist_[v] + e.weight;
                    if (cand < dist_[e.id]) {
                        dist_[e.id] = cand;
                        if (!in_frontier_[e.id]) {
                            in_frontier_[e.id] = true;
                            frontier.push_back(e.id);
                        }
                    }
                }
            }
        }

        ComputeStats delta = meter->stats();
        delta.activations -= before.activations;
        delta.traversals -= before.traversals;
        delta.rounds -= before.rounds;
        delta.iterations -= before.iterations;
        delta.seeds -= before.seeds;
        return delta;
    }

  private:
    void
    ensure_dist_capacity(std::size_t n)
    {
        if (dist_.size() < n) {
            dist_.resize(n, kInfiniteDistance);
            in_frontier_.resize(n, false);
            dirty_.resize(n, false);
            if (source_ < n) {
                dist_[source_] = 0.0f;
            }
        }
    }

    bool dirty_flag(VertexId v) const { return dirty_[v]; }

    void
    mark_dirty(VertexId v, std::vector<VertexId>& stack)
    {
        dirty_[v] = true;
        stack.push_back(v);
    }

    VertexId source_;
    std::vector<Weight> dist_;
    std::vector<bool> in_frontier_;
    std::vector<bool> dirty_;
};

} // namespace igs::analytics

#endif // IGS_ANALYTICS_SSSP_H
