/**
 * @file
 * Operation counting for the compute phase.
 *
 * The compute benches report modeled cycles derived from counted work:
 * vertex activations, edge traversals, and compute rounds (one round = one
 * scheduled computation over a snapshot — the unit OCA aggregates).  The
 * per-round constant captures the scheduling and data-(re)access overhead
 * the paper says OCA amortizes (§5).
 */
#ifndef IGS_ANALYTICS_COMPUTE_METER_H
#define IGS_ANALYTICS_COMPUTE_METER_H

#include <cstdint>

#include "common/types.h"

namespace igs::analytics {

/** Cycle costs of compute-phase operations on the Table-1 machine. */
struct ComputeCostParams {
    /** Process one activated vertex (state read/write, frontier ops). */
    double per_vertex = 35.0;
    /** Traverse one edge (neighbor state read). */
    double per_edge = 7.0;
    /** Launch one computation round: snapshotting, scheduling, warming the
     *  affected region's data back into cache. */
    double per_round = 60000.0;
    /** Parallel efficiency of the compute phase on 16 workers. */
    double workers = 16.0;
};

/** Counted compute work. */
struct ComputeStats {
    std::uint64_t activations = 0;
    std::uint64_t traversals = 0;
    std::uint64_t rounds = 0;
    std::uint64_t iterations = 0;
    /** Vertices seeded into an incremental round's initial frontier
     *  (DESIGN.md §14).  Attribution only — each seed's processing is
     *  already counted as an activation, so `cycles()` ignores it. */
    std::uint64_t seeds = 0;

    ComputeStats&
    operator+=(const ComputeStats& o)
    {
        activations += o.activations;
        traversals += o.traversals;
        rounds += o.rounds;
        iterations += o.iterations;
        seeds += o.seeds;
        return *this;
    }

    /** Modeled compute cycles under `p`. */
    Cycles
    cycles(const ComputeCostParams& p = ComputeCostParams{}) const
    {
        const double work = static_cast<double>(activations) * p.per_vertex +
                            static_cast<double>(traversals) * p.per_edge;
        return static_cast<Cycles>(work / p.workers +
                                   static_cast<double>(rounds) * p.per_round);
    }
};

/** Lightweight counter passed through the algorithms. */
class ComputeMeter {
  public:
    void activate(std::uint64_t n = 1) { stats_.activations += n; }
    void traverse(std::uint64_t n = 1) { stats_.traversals += n; }
    void round() { ++stats_.rounds; }
    void iteration() { ++stats_.iterations; }
    void seed(std::uint64_t n = 1) { stats_.seeds += n; }

    /**
     * Start a round attributed to snapshot epoch `epoch` (pipeline mode;
     * see graph/graph_store.h).  `last_epoch` lets tests assert a compute
     * round ran against the epoch it was handed, not a newer publication.
     */
    void
    round_on(EpochId epoch)
    {
        last_epoch_ = epoch;
        ++stats_.rounds;
    }

    EpochId last_epoch() const { return last_epoch_; }

    const ComputeStats& stats() const { return stats_; }
    void reset() { stats_ = ComputeStats{}; }

  private:
    ComputeStats stats_;
    EpochId last_epoch_ = 0;
};

} // namespace igs::analytics

#endif // IGS_ANALYTICS_COMPUTE_METER_H
