/**
 * @file
 * Memoized SSSP with deletion-safe tag-and-correct delta rounds.
 *
 * Epoch-persistent variant of analytics::IncrementalSssp: the settled
 * distance vector survives across epochs in a @ref DistState and each
 * delta round applies KickStarter-style trimming — tag the dependence
 * region of every distance-increasing modification (deletions, and
 * duplicate insertions, which *accumulate* weight under the engine's
 * update semantics), reset it to infinity, and re-relax from the
 * region's in-boundary plus the source.  Distance-decreasing
 * modifications (fresh insertions) relax outward directly.
 *
 * Relaxation runs to fixpoint, so the settled distances equal the
 * least-fixpoint static_sssp computes — bit-for-bit, not just within a
 * tolerance: both solve min over paths of the float path sum, which is
 * order-independent.  The randomized harness in
 * tests/test_incremental.cc asserts exact equality every epoch.
 */
#ifndef IGS_ANALYTICS_INCREMENTAL_SSSP_H
#define IGS_ANALYTICS_INCREMENTAL_SSSP_H

#include <cstdint>
#include <span>
#include <vector>

#include "analytics/compute_meter.h"
#include "analytics/incremental/state.h"
#include "common/types.h"
#include "graph/dirty_set_view.h"
#include "graph/graph_store.h"

namespace igs::analytics::incremental {

/** Epoch-persistent single-source shortest paths (DESIGN.md §14). */
class Sssp {
  public:
    explicit Sssp(VertexId source) : source_(source) {}

    VertexId source() const { return source_; }
    const std::vector<Weight>& distances() const { return state_.dist; }
    bool warm() const { return state_.warm; }

    /** Frontier Bellman-Ford from scratch into the memo state. */
    template <typename Graph>
        requires graph::GraphReadPath<Graph>
    ComputeStats
    full_rerun(const Graph& g, ComputeMeter* external_meter = nullptr)
    {
        ComputeMeter local;
        ComputeMeter* meter =
            external_meter != nullptr ? external_meter : &local;
        const ComputeStats before = meter->stats();
        const std::size_t n = g.num_vertices();
        state_.dist.assign(n, kInfiniteDistance);
        state_.in_frontier.ensure(n);
        state_.dirty.ensure(n);
        state_.warm = true;
        if (n == 0 || source_ >= n) {
            return stats_delta(meter->stats(), before);
        }
        state_.dist[source_] = 0.0f;
        std::vector<VertexId> frontier{source_};
        relax_to_fixpoint(g, frontier, meter);
        return stats_delta(meter->stats(), before);
    }

    /**
     * One delta round over the epoch's modifications.  `inserted` /
     * `deleted` are the epoch's edge deltas (PendingWork); the view's
     * dirty set is their vertex projection.  Falls back to full_rerun
     * when cold.
     */
    template <typename Graph>
    ComputeStats
    delta_update(const graph::DirtySetView<Graph>& view,
                 std::span<const StreamEdge> inserted,
                 std::span<const StreamEdge> deleted,
                 ComputeMeter* external_meter = nullptr)
    {
        if (!state_.warm) {
            return full_rerun(view, external_meter);
        }
        ComputeMeter local;
        ComputeMeter* meter =
            external_meter != nullptr ? external_meter : &local;
        const ComputeStats before = meter->stats();
        const std::size_t n = view.num_vertices();
        state_.ensure(n);
        if (n == 0) {
            return stats_delta(meter->stats(), before);
        }

        std::vector<VertexId> frontier;
        auto push = [&](VertexId v) {
            state_.in_frontier.push_unique(v, frontier);
        };

        // --- Distance-increasing modifications: trim the dependence
        // region (KickStarter).  Deletions, plus duplicate insertions —
        // the engine accumulates weights on duplicates, so an "insert"
        // can make an existing edge heavier and lengthen paths through
        // it.
        std::vector<VertexId> dirty;
        std::vector<VertexId> stack;
        auto seed_if_dependent = [&](const StreamEdge& e) {
            if (e.dst < n && state_.dist[e.dst] != kInfiniteDistance &&
                e.src < n && state_.dist[e.src] != kInfiniteDistance) {
                // Did dst's distance plausibly run through (src,dst)?
                if (state_.dist[e.dst] >= state_.dist[e.src] &&
                    !state_.dirty.test(e.dst)) {
                    state_.dirty.push_unique(e.dst, stack);
                }
            }
        };
        for (const StreamEdge& e : deleted) {
            seed_if_dependent(e);
        }
        for (const StreamEdge& e : inserted) {
            if (e.src >= n || e.dst >= n) {
                continue;
            }
            // Detect accumulation: the edge's current weight exceeds
            // this insertion's contribution iff it already existed.
            for (const Neighbor& nb : view.edges(e.src, Direction::kOut)) {
                meter->traverse();
                if (nb.id == e.dst) {
                    if (nb.weight > e.weight + 1e-6f) {
                        seed_if_dependent(e);
                    }
                    break;
                }
            }
        }
        // Transitively tag everything whose distance may have depended
        // on a tagged vertex (conservative: any out-neighbor with a
        // larger-or-equal distance may have routed through it).
        while (!stack.empty()) {
            const VertexId v = stack.back();
            stack.pop_back();
            dirty.push_back(v);
            meter->activate();
            for (const Neighbor& e : view.edges(v, Direction::kOut)) {
                meter->traverse();
                if (!state_.dirty.test(e.id) &&
                    state_.dist[e.id] != kInfiniteDistance &&
                    state_.dist[e.id] >= state_.dist[v]) {
                    state_.dirty.push_unique(e.id, stack);
                }
            }
        }
        // Reset the region and re-seed from its in-boundary.
        for (VertexId v : dirty) {
            state_.dist[v] = kInfiniteDistance;
        }
        for (VertexId v : dirty) {
            for (const Neighbor& e : view.edges(v, Direction::kIn)) {
                meter->traverse();
                if (!state_.dirty.test(e.id) &&
                    state_.dist[e.id] != kInfiniteDistance) {
                    push(e.id);
                }
            }
        }
        for (VertexId v : dirty) {
            state_.dirty.clear(v);
        }
        if (!dirty.empty() && source_ < n) {
            state_.dist[source_] = 0.0f;
            push(source_);
        }

        // --- Distance-decreasing modifications: relax from sources of
        // new edges.
        for (const StreamEdge& e : inserted) {
            if (e.src < n && state_.dist[e.src] != kInfiniteDistance) {
                push(e.src);
            }
        }
        if (source_ < n && state_.dist[source_] != 0.0f) {
            state_.dist[source_] = 0.0f;
            push(source_);
        }

        meter->seed(frontier.size());
        relax_to_fixpoint(view, frontier, meter);
        return stats_delta(meter->stats(), before);
    }

  private:
    /**
     * Relax out-edges of `frontier` until no distance changes.  Frontier
     * membership flags are set for the incoming seeds (full_rerun's bare
     * source excepted — a one-element frontier has no duplicates) and are
     * cleared pass-by-pass at loop top, so the bitmap ends all-false.
     */
    template <typename Graph>
    void
    relax_to_fixpoint(const Graph& g, std::vector<VertexId>& frontier,
                      ComputeMeter* meter)
    {
        while (!frontier.empty()) {
            meter->iteration();
            for (VertexId v : frontier) {
                state_.in_frontier.clear(v);
            }
            std::vector<VertexId> current;
            current.swap(frontier);
            for (VertexId v : current) {
                meter->activate();
                for (const Neighbor& e : g.edges(v, Direction::kOut)) {
                    meter->traverse();
                    const Weight cand = state_.dist[v] + e.weight;
                    if (cand < state_.dist[e.id]) {
                        state_.dist[e.id] = cand;
                        state_.in_frontier.push_unique(e.id, frontier);
                    }
                }
            }
        }
    }

    VertexId source_;
    DistState state_;
};

} // namespace igs::analytics::incremental

#endif // IGS_ANALYTICS_INCREMENTAL_SSSP_H
