/**
 * @file
 * Memoized BFS (hop distances) with deletion-safe delta rounds.
 *
 * The unit-weight sibling of analytics/incremental/sssp.h: hop counts
 * persist across epochs in a @ref HopState.  Insertions can only
 * shorten hop distances, so they relax outward from the inserted
 * edges' sources.  A deletion may lengthen them: the dependence region
 * is tagged precisely — an edge (v, w) carried w's BFS level iff
 * hops[w] == hops[v] + 1 — reset to unreachable, and re-settled from
 * its in-boundary plus the source.  Duplicate insertions are harmless
 * here (weight accumulation does not change hop counts), which is why
 * BFS needs no accumulation scan.
 *
 * Hop counts are integers, so the equivalence harness asserts exact
 * equality against traversal.h's bfs_distances every epoch.
 */
#ifndef IGS_ANALYTICS_INCREMENTAL_BFS_H
#define IGS_ANALYTICS_INCREMENTAL_BFS_H

#include <cstdint>
#include <span>
#include <vector>

#include "analytics/compute_meter.h"
#include "analytics/incremental/state.h"
#include "common/types.h"
#include "graph/dirty_set_view.h"
#include "graph/graph_store.h"

namespace igs::analytics::incremental {

/** Epoch-persistent BFS hop distances (DESIGN.md §14). */
class Bfs {
  public:
    static constexpr std::uint32_t kUnreachable = ~0u;

    explicit Bfs(VertexId source) : source_(source) {}

    VertexId source() const { return source_; }
    const std::vector<std::uint32_t>& hops() const { return state_.hops; }
    bool warm() const { return state_.warm; }

    /** Plain BFS from scratch into the memo state. */
    template <typename Graph>
        requires graph::GraphReadPath<Graph>
    ComputeStats
    full_rerun(const Graph& g, ComputeMeter* external_meter = nullptr)
    {
        ComputeMeter local;
        ComputeMeter* meter =
            external_meter != nullptr ? external_meter : &local;
        const ComputeStats before = meter->stats();
        const std::size_t n = g.num_vertices();
        state_.hops.assign(n, kUnreachable);
        state_.in_frontier.ensure(n);
        state_.dirty.ensure(n);
        state_.warm = true;
        if (n == 0 || source_ >= n) {
            return stats_delta(meter->stats(), before);
        }
        state_.hops[source_] = 0;
        std::vector<VertexId> frontier{source_};
        relax_to_fixpoint(g, frontier, meter);
        return stats_delta(meter->stats(), before);
    }

    /**
     * One delta round over the epoch's modifications; falls back to
     * full_rerun when cold.
     */
    template <typename Graph>
    ComputeStats
    delta_update(const graph::DirtySetView<Graph>& view,
                 std::span<const StreamEdge> inserted,
                 std::span<const StreamEdge> deleted,
                 ComputeMeter* external_meter = nullptr)
    {
        if (!state_.warm) {
            return full_rerun(view, external_meter);
        }
        ComputeMeter local;
        ComputeMeter* meter =
            external_meter != nullptr ? external_meter : &local;
        const ComputeStats before = meter->stats();
        const std::size_t n = view.num_vertices();
        state_.ensure(n);
        if (n == 0) {
            return stats_delta(meter->stats(), before);
        }

        std::vector<VertexId> frontier;
        auto push = [&](VertexId v) {
            state_.in_frontier.push_unique(v, frontier);
        };

        // --- Deletions: tag the dependence region.  An edge (src, dst)
        // carried dst's level iff hops[dst] == hops[src] + 1 (>= covers
        // not-yet-settled oddities conservatively; trimming too much
        // only costs re-relaxation work, never correctness).
        std::vector<VertexId> dirty;
        std::vector<VertexId> stack;
        for (const StreamEdge& e : deleted) {
            if (e.src < n && e.dst < n &&
                state_.hops[e.src] != kUnreachable &&
                state_.hops[e.dst] != kUnreachable &&
                state_.hops[e.dst] >= state_.hops[e.src] + 1 &&
                !state_.dirty.test(e.dst)) {
                state_.dirty.push_unique(e.dst, stack);
            }
        }
        while (!stack.empty()) {
            const VertexId v = stack.back();
            stack.pop_back();
            dirty.push_back(v);
            meter->activate();
            for (const Neighbor& e : view.edges(v, Direction::kOut)) {
                meter->traverse();
                if (!state_.dirty.test(e.id) &&
                    state_.hops[e.id] != kUnreachable &&
                    state_.hops[e.id] >= state_.hops[v] + 1) {
                    state_.dirty.push_unique(e.id, stack);
                }
            }
        }
        for (VertexId v : dirty) {
            state_.hops[v] = kUnreachable;
        }
        for (VertexId v : dirty) {
            for (const Neighbor& e : view.edges(v, Direction::kIn)) {
                meter->traverse();
                if (!state_.dirty.test(e.id) &&
                    state_.hops[e.id] != kUnreachable) {
                    push(e.id);
                }
            }
        }
        for (VertexId v : dirty) {
            state_.dirty.clear(v);
        }
        if (!dirty.empty() && source_ < n) {
            state_.hops[source_] = 0;
            push(source_);
        }

        // --- Insertions: hop counts only drop; relax from new edges'
        // reachable sources.
        for (const StreamEdge& e : inserted) {
            if (e.src < n && state_.hops[e.src] != kUnreachable) {
                push(e.src);
            }
        }
        if (source_ < n && state_.hops[source_] != 0) {
            state_.hops[source_] = 0;
            push(source_);
        }

        meter->seed(frontier.size());
        relax_to_fixpoint(view, frontier, meter);
        return stats_delta(meter->stats(), before);
    }

  private:
    /** See incremental::Sssp::relax_to_fixpoint (unit weights here). */
    template <typename Graph>
    void
    relax_to_fixpoint(const Graph& g, std::vector<VertexId>& frontier,
                      ComputeMeter* meter)
    {
        while (!frontier.empty()) {
            meter->iteration();
            for (VertexId v : frontier) {
                state_.in_frontier.clear(v);
            }
            std::vector<VertexId> current;
            current.swap(frontier);
            for (VertexId v : current) {
                meter->activate();
                for (const Neighbor& e : g.edges(v, Direction::kOut)) {
                    meter->traverse();
                    const std::uint32_t cand = state_.hops[v] + 1;
                    if (cand < state_.hops[e.id]) {
                        state_.hops[e.id] = cand;
                        state_.in_frontier.push_unique(e.id, frontier);
                    }
                }
            }
        }
    }

    VertexId source_;
    HopState state_;
};

} // namespace igs::analytics::incremental

#endif // IGS_ANALYTICS_INCREMENTAL_BFS_H
