/**
 * @file
 * Memoized PageRank with dirty-set-seeded delta propagation.
 *
 * Unlike the batch-local analytics::IncrementalPageRank (which seeds
 * only the batch-affected vertices), this kernel persists a @ref
 * RankState across epochs and seeds each delta round with the epoch's
 * dirty set *and its out-neighborhood*: a dirty vertex's out-degree may
 * have changed, which alters the contribution every one of its
 * out-neighbors pulls — missing those is the classic seeding gap that
 * makes affected-only propagation drift from the from-scratch fixpoint.
 * With the widened seed the pull-based propagation converges to the
 * same fixpoint static_pagerank converges to, up to the residual
 * tolerance (the randomized equivalence harness in
 * tests/test_incremental.cc pins this on all three backends).
 *
 * Deletion-safe by construction: rank pulls are recomputed from the
 * current topology, so a deleted edge simply stops contributing the
 * next time its endpoint is activated — and both endpoints of every
 * deleted edge are in the dirty set.
 */
#ifndef IGS_ANALYTICS_INCREMENTAL_PAGERANK_H
#define IGS_ANALYTICS_INCREMENTAL_PAGERANK_H

#include <cmath>
#include <cstdint>
#include <vector>

#include "analytics/compute_meter.h"
#include "analytics/incremental/state.h"
#include "analytics/pagerank.h"
#include "common/types.h"
#include "graph/dirty_set_view.h"
#include "graph/graph_store.h"

namespace igs::analytics::incremental {

/** Epoch-persistent PageRank (DESIGN.md §14). */
class PageRank {
  public:
    explicit PageRank(const PageRankParams& params = {}) : params_(params)
    {
    }

    const std::vector<double>& ranks() const { return state_.rank; }
    bool warm() const { return state_.warm; }
    const PageRankParams& params() const { return params_; }

    /**
     * Recompute every rank from scratch (pull-based Jacobi, the
     * static_pagerank iteration) into the memo state.  Used for cold
     * starts, vertex-space growth (the (1-d)/|V| base term shifts for
     * *every* vertex when |V| changes, so no delta is valid), and
     * epochs the policy sends to full rerun.
     */
    template <typename Graph>
        requires graph::GraphReadPath<Graph>
    ComputeStats
    full_rerun(const Graph& g, ComputeMeter* external_meter = nullptr)
    {
        ComputeMeter local;
        ComputeMeter* meter =
            external_meter != nullptr ? external_meter : &local;
        const ComputeStats before = meter->stats();
        const std::size_t n = g.num_vertices();
        const double init = n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
        state_.rank.assign(n, init);
        state_.in_frontier.ensure(n);
        if (n == 0) {
            state_.warm = true;
            return stats_delta(meter->stats(), before);
        }
        const double base = (1.0 - params_.damping) / static_cast<double>(n);
        std::vector<double> next(n, 0.0);
        std::vector<double> contrib(n, 0.0);
        for (std::uint32_t it = 0; it < params_.max_iterations; ++it) {
            meter->iteration();
            double error = 0.0;
            for (VertexId v = 0; v < n; ++v) {
                const auto deg = g.degree(v, Direction::kOut);
                contrib[v] = deg > 0 ? state_.rank[v] /
                                           static_cast<double>(deg)
                                     : 0.0;
            }
            for (VertexId v = 0; v < n; ++v) {
                double sum = 0.0;
                for (const Neighbor& u : g.edges(v, Direction::kIn)) {
                    sum += contrib[u.id];
                }
                meter->activate();
                meter->traverse(g.degree(v, Direction::kIn));
                next[v] = base + params_.damping * sum;
                error += std::abs(next[v] - state_.rank[v]);
            }
            state_.rank.swap(next);
            if (error < params_.tolerance) {
                break;
            }
        }
        state_.warm = true;
        return stats_delta(meter->stats(), before);
    }

    /**
     * One delta round: seed the frontier with the epoch's dirty set plus
     * its out-neighborhood, then pull-recompute ranks outward until every
     * residual falls below the per-vertex tolerance.  Falls back to
     * full_rerun when cold or when the vertex space changed.
     */
    template <typename Graph>
    ComputeStats
    delta_propagate(const graph::DirtySetView<Graph>& view,
                    ComputeMeter* external_meter = nullptr)
    {
        const std::size_t n = view.num_vertices();
        if (!state_.warm || state_.rank.size() != n) {
            return full_rerun(view, external_meter);
        }
        ComputeMeter local;
        ComputeMeter* meter =
            external_meter != nullptr ? external_meter : &local;
        const ComputeStats before = meter->stats();
        if (n == 0) {
            return stats_delta(meter->stats(), before);
        }
        const double base = (1.0 - params_.damping) / static_cast<double>(n);

        std::vector<VertexId> frontier;
        frontier.reserve(view.dirty().size());
        for (VertexId v : view.dirty()) {
            if (v >= n) {
                continue;
            }
            state_.in_frontier.push_unique(v, frontier);
            // The dirty vertex's out-degree may have changed: every
            // out-neighbor's pull input did too (the seeding gap).
            for (const Neighbor& w : view.edges(v, Direction::kOut)) {
                meter->traverse();
                state_.in_frontier.push_unique(w.id, frontier);
            }
        }
        meter->seed(frontier.size());

        for (std::uint32_t it = 0;
             it < params_.max_iterations && !frontier.empty(); ++it) {
            meter->iteration();
            std::vector<VertexId> next_frontier;
            for (VertexId v : frontier) {
                state_.in_frontier.clear(v);
            }
            for (VertexId v : frontier) {
                meter->activate();
                double sum = 0.0;
                for (const Neighbor& u : view.edges(v, Direction::kIn)) {
                    meter->traverse();
                    const auto deg = view.degree(u.id, Direction::kOut);
                    if (deg > 0) {
                        sum += state_.rank[u.id] / static_cast<double>(deg);
                    }
                }
                const double new_rank = base + params_.damping * sum;
                const bool changed =
                    std::abs(new_rank - state_.rank[v]) > params_.tolerance;
                state_.rank[v] = new_rank;
                if (changed) {
                    for (const Neighbor& w : view.edges(v, Direction::kOut)) {
                        meter->traverse();
                        state_.in_frontier.push_unique(w.id, next_frontier);
                    }
                }
            }
            frontier.swap(next_frontier);
        }
        for (VertexId v : frontier) {
            state_.in_frontier.clear(v); // iteration cap hit; clear residue
        }
        return stats_delta(meter->stats(), before);
    }

  private:
    PageRankParams params_;
    RankState state_;
};

} // namespace igs::analytics::incremental

#endif // IGS_ANALYTICS_INCREMENTAL_PAGERANK_H
