/**
 * @file
 * IncrementalAnalytics — the policy-driven bundle of memoized kernels.
 *
 * One object owns the three epoch-persistent kernels (PageRank, Sssp,
 * Bfs) and, per epoch, makes the input-aware full-vs-delta call from
 * the hand-off's batch statistics (stream/compute_policy.h): delta
 * rounds seed from the dirty set through a graph::DirtySetView, full
 * reruns refresh the memo state from scratch.  The first epoch always
 * runs full (delta propagation needs a converged baseline to correct).
 *
 * Works against any graph read path: a live store in a drain loop, the
 * engine's SnapshotView in pipeline mode (wire it up with @ref attach,
 * which registers the bundle via BasicRealTimeEngine::set_compute), or
 * the simulator's IndexedAdjacency (bench_incremental).  When the
 * store itself exposes the `dirty_view` capability (declared per
 * backend in tools/layers.toml) the bundle uses it; otherwise it wraps
 * the store directly.
 *
 * Telemetry (core.analytics.incr_*) is registered lazily on the first
 * epoch so non-incremental runs keep their registry snapshot — and
 * their goldens — unchanged.
 */
#ifndef IGS_ANALYTICS_INCREMENTAL_ANALYTICS_H
#define IGS_ANALYTICS_INCREMENTAL_ANALYTICS_H

#include <cstdint>
#include <span>
#include <utility>

#include "analytics/compute_meter.h"
#include "analytics/incremental/bfs.h"
#include "analytics/incremental/pagerank.h"
#include "analytics/incremental/sssp.h"
#include "analytics/pagerank.h"
#include "common/telemetry.h"
#include "common/types.h"
#include "graph/dirty_set_view.h"
#include "graph/graph_store.h"
#include "graph/snapshot_view.h"
#include "stream/compute_policy.h"
#include "stream/pending.h"

namespace igs::analytics::incremental {

/** Bundle configuration. */
struct IncrementalConfig {
    /** Full-vs-delta policy and its kAuto thresholds. */
    stream::IncrementalPolicyParams policy;
    PageRankParams pagerank;
    VertexId sssp_source = 0;
    VertexId bfs_source = 0;
    bool run_pagerank = true;
    bool run_sssp = true;
    bool run_bfs = true;
};

/** What one epoch's compute round decided and cost. */
struct EpochDecision {
    EpochId epoch = 0;
    /** True when the round propagated deltas from the dirty set. */
    bool delta = false;
    stream::EpochInputStats stats;
    /** Work counted across this epoch's kernel runs. */
    ComputeStats work;
};

/** The three memoized kernels behind one per-epoch policy decision. */
class IncrementalAnalytics {
  public:
    explicit IncrementalAnalytics(const IncrementalConfig& config = {})
        : config_(config), pagerank_(config.pagerank),
          sssp_(config.sssp_source), bfs_(config.bfs_source)
    {
    }

    const IncrementalConfig& config() const { return config_; }
    const PageRank& pagerank() const { return pagerank_; }
    const Sssp& sssp() const { return sssp_; }
    const Bfs& bfs() const { return bfs_; }
    ComputeMeter& meter() { return meter_; }
    const ComputeMeter& meter() const { return meter_; }
    const EpochDecision& last_decision() const { return last_; }
    std::uint64_t epochs() const { return epochs_; }
    std::uint64_t delta_epochs() const { return delta_epochs_; }

    /**
     * Run the epoch's compute round over `g` (the published state the
     * hand-off `work` describes).  Decides full-vs-delta, runs the
     * enabled kernels, and records core.analytics.incr_* telemetry.
     */
    template <typename Graph>
        requires graph::GraphReadPath<Graph>
    EpochDecision
    on_epoch(const Graph& g, const stream::PendingWork& work)
    {
        EpochDecision d;
        d.epoch = work.epoch;
        d.stats = stream::EpochInputStats::measure(work, g.num_vertices());
        d.delta = warm_ && stream::use_delta(config_.policy, d.stats);
        const ComputeStats before = meter_.stats();
        if (d.delta) {
            if constexpr (requires {
                              g.dirty_view(
                                  std::span<const VertexId>{});
                          }) {
                run_delta(g.dirty_view(work.affected), work);
            } else {
                run_delta(graph::DirtySetView<Graph>(g, work.affected),
                          work);
            }
        } else {
            run_full(g, work.epoch);
        }
        d.work = stats_delta(meter_.stats(), before);
        warm_ = true;
        ++epochs_;
        delta_epochs_ += d.delta ? 1 : 0;
        record_telemetry(d);
        last_ = d;
        return d;
    }

  private:
    template <typename Graph>
    void
    run_full(const Graph& g, EpochId epoch)
    {
        if (config_.run_pagerank) {
            meter_.round_on(epoch);
            pagerank_.full_rerun(g, &meter_);
        }
        if (config_.run_sssp) {
            meter_.round_on(epoch);
            sssp_.full_rerun(g, &meter_);
        }
        if (config_.run_bfs) {
            meter_.round_on(epoch);
            bfs_.full_rerun(g, &meter_);
        }
    }

    template <typename Graph>
    void
    run_delta(const graph::DirtySetView<Graph>& view,
              const stream::PendingWork& work)
    {
        if (config_.run_pagerank) {
            meter_.round_on(work.epoch);
            pagerank_.delta_propagate(view, &meter_);
        }
        if (config_.run_sssp) {
            meter_.round_on(work.epoch);
            sssp_.delta_update(view, work.inserted, work.deleted, &meter_);
        }
        if (config_.run_bfs) {
            meter_.round_on(work.epoch);
            bfs_.delta_update(view, work.inserted, work.deleted, &meter_);
        }
    }

    /** Lazy handles: registration only on incremental runs, keeping the
     *  registry snapshot of every pre-§14 golden stable. */
    struct IncrTelemetry {
        telemetry::Counter& epochs;
        telemetry::Counter& delta_epochs;
        telemetry::Counter& full_epochs;
        telemetry::Counter& seed_vertices;
        telemetry::Counter& activations;
        telemetry::Counter& traversals;
        telemetry::Counter& dirty_vertices;

        static IncrTelemetry&
        get()
        {
            auto& r = telemetry::Registry::global();
            static IncrTelemetry t{
                r.counter("core.analytics.incr_epochs"),
                r.counter("core.analytics.incr_delta_epochs"),
                r.counter("core.analytics.incr_full_epochs"),
                r.counter("core.analytics.incr_seed_vertices"),
                r.counter("core.analytics.incr_activations"),
                r.counter("core.analytics.incr_traversals"),
                r.counter("core.analytics.incr_dirty_vertices"),
            };
            return t;
        }
    };

    void
    record_telemetry(const EpochDecision& d)
    {
        auto& t = IncrTelemetry::get();
        t.epochs.inc();
        (d.delta ? t.delta_epochs : t.full_epochs).inc();
        t.seed_vertices.inc(d.work.seeds);
        t.activations.inc(d.work.activations);
        t.traversals.inc(d.work.traversals);
        t.dirty_vertices.inc(d.stats.dirty_vertices);
    }

    IncrementalConfig config_;
    PageRank pagerank_;
    Sssp sssp_;
    Bfs bfs_;
    ComputeMeter meter_;
    EpochDecision last_;
    bool warm_ = false;
    std::uint64_t epochs_ = 0;
    std::uint64_t delta_epochs_ = 0;
};

/**
 * Register `analytics` as `engine`'s pipeline compute round: each
 * published epoch runs on_epoch over the epoch's SnapshotView and
 * PendingWork (BasicRealTimeEngine::set_compute; at pipeline depth 2
 * the round overlaps the next batch's ingest — the snapshot and the
 * hand-off are the *published* epoch's, never the in-flight one, which
 * tests/test_pipeline.cc pins).  `analytics` must outlive the engine's
 * pipeline (or the next set_compute/flush).
 */
template <typename Engine>
void
attach(Engine& engine, IncrementalAnalytics& analytics)
{
    engine.set_compute([&analytics](const graph::SnapshotView& snap,
                                    const stream::PendingWork& work) {
        analytics.on_epoch(snap, work);
    });
}

} // namespace igs::analytics::incremental

#endif // IGS_ANALYTICS_INCREMENTAL_ANALYTICS_H
