/**
 * @file
 * Memoized per-vertex analytics state that persists across epochs.
 *
 * The incremental kernels (analytics/incremental/{pagerank,sssp,bfs}.h)
 * keep their converged per-vertex values between compute rounds and
 * re-settle only the region the epoch's dirty set can reach (DESIGN.md
 * §14).  This header holds the shared state containers: a reusable
 * frontier membership bitmap and the per-algorithm memo vectors.  All
 * state grows monotonically with the vertex space and is reused across
 * epochs — steady-state delta rounds allocate only for frontier
 * vectors.
 */
#ifndef IGS_ANALYTICS_INCREMENTAL_STATE_H
#define IGS_ANALYTICS_INCREMENTAL_STATE_H

#include <cstdint>
#include <vector>

#include "analytics/compute_meter.h"
#include "common/types.h"

namespace igs::analytics::incremental {

/** Work counted between two meter snapshots (kernels report their own
 *  share of a shared, epoch-scoped meter). */
inline ComputeStats
stats_delta(ComputeStats after, const ComputeStats& before)
{
    after.activations -= before.activations;
    after.traversals -= before.traversals;
    after.rounds -= before.rounds;
    after.iterations -= before.iterations;
    after.seeds -= before.seeds;
    return after;
}

/**
 * Frontier membership bitmap: dedupes pushes into a worklist.  The
 * epoch's frontiers are transient but the bitmap itself persists (and
 * must be left all-false between rounds — push/clear in pairs).
 */
class FrontierBitmap {
  public:
    void
    ensure(std::size_t n)
    {
        if (bits_.size() < n) {
            bits_.resize(n, false);
        }
    }

    bool test(VertexId v) const { return bits_[v]; }
    void clear(VertexId v) { bits_[v] = false; }

    /** Mark `v` and append it to `out` unless already marked. */
    bool
    push_unique(VertexId v, std::vector<VertexId>& out)
    {
        if (bits_[v]) {
            return false;
        }
        bits_[v] = true;
        out.push_back(v);
        return true;
    }

    std::size_t size() const { return bits_.size(); }

  private:
    std::vector<bool> bits_;
};

/** Memoized PageRank state: converged ranks + frontier scratch. */
struct RankState {
    std::vector<double> rank;
    FrontierBitmap in_frontier;
    /** A full rerun has populated `rank` for the current vertex space. */
    bool warm = false;

    void
    ensure(std::size_t n, double init)
    {
        if (rank.size() < n) {
            rank.resize(n, init);
        }
        in_frontier.ensure(n);
    }
};

/** Memoized SSSP state: settled distances + trim/frontier scratch. */
struct DistState {
    std::vector<Weight> dist;
    FrontierBitmap in_frontier;
    FrontierBitmap dirty;
    bool warm = false;

    void
    ensure(std::size_t n)
    {
        if (dist.size() < n) {
            dist.resize(n, kInfiniteDistance);
        }
        in_frontier.ensure(n);
        dirty.ensure(n);
    }
};

/** Memoized BFS state: settled hop counts + trim/frontier scratch. */
struct HopState {
    /** Hop distance per vertex; ~0u = unreachable (traversal.h). */
    std::vector<std::uint32_t> hops;
    FrontierBitmap in_frontier;
    FrontierBitmap dirty;
    bool warm = false;

    void
    ensure(std::size_t n)
    {
        if (hops.size() < n) {
            hops.resize(n, ~0u);
        }
        in_frontier.ensure(n);
        dirty.ensure(n);
    }
};

} // namespace igs::analytics::incremental

#endif // IGS_ANALYTICS_INCREMENTAL_STATE_H
