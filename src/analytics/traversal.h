/**
 * @file
 * Extension algorithms: BFS (hop distance) and connected components
 * (label propagation over the undirected view).  Not part of the paper's
 * four evaluated algorithms; used by examples and as additional compute
 * workloads.
 */
#ifndef IGS_ANALYTICS_TRAVERSAL_H
#define IGS_ANALYTICS_TRAVERSAL_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analytics/compute_meter.h"
#include "common/check.h"
#include "common/types.h"
#include "graph/graph_store.h"

namespace igs::analytics {

/** BFS hop distances from `source` over out-edges; unreachable = ~0u. */
template <typename Graph>
    requires graph::GraphReadPath<Graph>
std::vector<std::uint32_t>
bfs_distances(const Graph& g, VertexId source, ComputeMeter* meter = nullptr)
{
    const std::size_t n = g.num_vertices();
    std::vector<std::uint32_t> dist(n, ~0u);
    if (n == 0) {
        return dist;
    }
    IGS_CHECK(source < n);
    if (meter != nullptr) {
        meter->round();
    }
    dist[source] = 0;
    std::vector<VertexId> frontier{source};
    while (!frontier.empty()) {
        if (meter != nullptr) {
            meter->iteration();
        }
        std::vector<VertexId> next;
        for (VertexId v : frontier) {
            if (meter != nullptr) {
                meter->activate();
            }
            for (const Neighbor& e : g.edges(v, Direction::kOut)) {
                if (meter != nullptr) {
                    meter->traverse();
                }
                if (dist[e.id] == ~0u) {
                    dist[e.id] = dist[v] + 1;
                    next.push_back(e.id);
                }
            }
        }
        frontier.swap(next);
    }
    return dist;
}

/**
 * Connected components over the undirected view (out- plus in-edges),
 * by label propagation; returns the component label per vertex (the
 * minimum vertex id in the component).
 */
template <typename Graph>
    requires graph::GraphReadPath<Graph>
std::vector<VertexId>
connected_components(const Graph& g, ComputeMeter* meter = nullptr)
{
    const std::size_t n = g.num_vertices();
    std::vector<VertexId> label(n);
    for (VertexId v = 0; v < n; ++v) {
        label[v] = v;
    }
    if (meter != nullptr) {
        meter->round();
    }
    bool changed = true;
    while (changed) {
        if (meter != nullptr) {
            meter->iteration();
        }
        changed = false;
        for (VertexId v = 0; v < n; ++v) {
            if (meter != nullptr) {
                meter->activate();
            }
            VertexId best = label[v];
            for (Direction dir : {Direction::kOut, Direction::kIn}) {
                for (const Neighbor& e : g.edges(v, dir)) {
                    if (meter != nullptr) {
                        meter->traverse();
                    }
                    best = std::min(best, label[e.id]);
                }
            }
            if (best < label[v]) {
                label[v] = best;
                changed = true;
            }
        }
    }
    return label;
}

} // namespace igs::analytics

#endif // IGS_ANALYTICS_TRAVERSAL_H
