/**
 * @file
 * Parallel stable sort.
 *
 * Stands in for Boost's `parallel_stable_sort`, which the paper uses for
 * batch reordering (§3.2): stability matters because reordering must
 * preserve the arrival order of a vertex's edges (insertions before
 * deletions of the same edge, and deterministic duplicate resolution).
 *
 * Implementation: split into P runs, stable_sort each run in parallel, then
 * log2(P) rounds of pairwise stable merges.
 */
#ifndef IGS_COMMON_PARALLEL_SORT_H
#define IGS_COMMON_PARALLEL_SORT_H

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/thread_pool.h"

namespace igs {

/**
 * Stable-sort [begin, end) with `comp` using `pool`.
 *
 * Falls back to `std::stable_sort` for small inputs.  Requires random-access
 * iterators over a movable value type.
 */
template <typename Iter, typename Comp>
void
parallel_stable_sort(Iter begin, Iter end, Comp comp, ThreadPool& pool)
{
    const std::size_t n = static_cast<std::size_t>(end - begin);
    const std::size_t p = pool.size();
    constexpr std::size_t kSerialCutoff = 8192;
    if (n <= kSerialCutoff || p <= 1) {
        std::stable_sort(begin, end, comp);
        return;
    }

    // Run boundaries: p contiguous runs of near-equal size.
    std::vector<std::size_t> bounds(p + 1);
    for (std::size_t i = 0; i <= p; ++i) {
        bounds[i] = n * i / p;
    }

    pool.run([&](std::size_t tid) {
        std::stable_sort(begin + static_cast<std::ptrdiff_t>(bounds[tid]),
                         begin + static_cast<std::ptrdiff_t>(bounds[tid + 1]),
                         comp);
    });

    // Pairwise merge rounds. Each round halves the number of runs; merges
    // within a round are independent and run on the pool.
    using T = typename std::iterator_traits<Iter>::value_type;
    std::vector<T> scratch(n);
    std::vector<std::size_t> cur = bounds;
    while (cur.size() > 2) {
        const std::size_t runs = cur.size() - 1;
        const std::size_t pairs = runs / 2;
        pool.parallel_for(0, pairs, [&](std::size_t k) {
            const std::size_t lo = cur[2 * k];
            const std::size_t mid = cur[2 * k + 1];
            const std::size_t hi = cur[2 * k + 2];
            std::merge(begin + static_cast<std::ptrdiff_t>(lo),
                       begin + static_cast<std::ptrdiff_t>(mid),
                       begin + static_cast<std::ptrdiff_t>(mid),
                       begin + static_cast<std::ptrdiff_t>(hi),
                       scratch.begin() + static_cast<std::ptrdiff_t>(lo), comp);
            std::move(scratch.begin() + static_cast<std::ptrdiff_t>(lo),
                      scratch.begin() + static_cast<std::ptrdiff_t>(hi),
                      begin + static_cast<std::ptrdiff_t>(lo));
        }, 1);
        // Merge-plan bookkeeping: O(runs) per pass, not per-element, and
        // only on the comparison-oracle sort path.
        std::vector<std::size_t> next;
        next.reserve(pairs + 2); // igs-lint: allow(hot-path-alloc)
        for (std::size_t k = 0; k <= pairs; ++k) {
            next.push_back(cur[2 * k]); // igs-lint: allow(hot-path-alloc)
        }
        if (runs % 2 == 1) {
            next.push_back(cur.back()); // igs-lint: allow(hot-path-alloc)
        } else {
            next.back() = cur.back();
        }
        cur = std::move(next);
    }
}

/** Convenience overload using the process-wide default pool. */
template <typename Iter, typename Comp>
void
parallel_stable_sort(Iter begin, Iter end, Comp comp)
{
    parallel_stable_sort(begin, end, comp, default_pool());
}

} // namespace igs

#endif // IGS_COMMON_PARALLEL_SORT_H
