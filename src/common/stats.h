/**
 * @file
 * Small statistics helpers used by the characterization and bench harnesses
 * (geometric means for speedup aggregation, histograms for degree
 * distributions, Welford accumulation for repeated-run reporting).
 *
 * Thread-compatibility: these accumulators are deliberately unsynchronized
 * — each harness/worker owns its own instance and merges single-threaded.
 * Sharing one across threads is a bug; shared counters belong on
 * std::atomic with explicit memory_order (cf. stream::OcaProbe), which the
 * TSan leg of tools/check_matrix.sh would catch here.
 */
#ifndef IGS_COMMON_STATS_H
#define IGS_COMMON_STATS_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/check.h"

namespace igs {

/** Geometric mean of a set of strictly positive values. */
inline double
geomean(const std::vector<double>& values)
{
    IGS_CHECK(!values.empty());
    double log_sum = 0.0;
    for (double v : values) {
        IGS_CHECK_MSG(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double>& values)
{
    IGS_CHECK(!values.empty());
    double s = 0.0;
    for (double v : values) {
        s += v;
    }
    return s / static_cast<double>(values.size());
}

/** Maximum. */
inline double
max_of(const std::vector<double>& values)
{
    IGS_CHECK(!values.empty());
    double m = values.front();
    for (double v : values) {
        m = std::max(m, v);
    }
    return m;
}

/**
 * Online mean/variance accumulator (Welford).  Used to report
 * repeated-measurement stability in benches.
 */
class Welford {
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
    }

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Sparse integer histogram, e.g. N(k): number of vertices with degree k in
 * an input batch (paper §3.1).
 */
class Histogram {
  public:
    void add(std::uint64_t key, std::uint64_t count = 1) { bins_[key] += count; }

    std::uint64_t
    at(std::uint64_t key) const
    {
        auto it = bins_.find(key);
        return it == bins_.end() ? 0 : it->second;
    }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (const auto& [k, c] : bins_) {
            t += c;
        }
        return t;
    }

    std::uint64_t
    max_key() const
    {
        return bins_.empty() ? 0 : bins_.rbegin()->first;
    }

    bool empty() const { return bins_.empty(); }

    /** Ordered (key, count) view. */
    const std::map<std::uint64_t, std::uint64_t>& bins() const { return bins_; }

  private:
    std::map<std::uint64_t, std::uint64_t> bins_;
};

} // namespace igs

#endif // IGS_COMMON_STATS_H
