/**
 * @file
 * Reusable open-addressing vertex -> weight table for USC run coalescing.
 *
 * Replaces the per-run `std::unordered_map` in the real-time USC update
 * path: one table per pool worker lives in an engine-owned arena and is
 * recycled across runs and batches, so steady-state coalescing performs no
 * heap allocations.  Resets are O(live entries) via epoch stamping (slots
 * from older epochs read as empty), and iteration is O(live entries) in
 * insertion order via a side list of slot indices — which also makes the
 * appended-remainder order deterministic, unlike `std::unordered_map`.
 *
 * The IGS_HOT_PATH tag makes tools/igs_lint.py enforce the zero-allocation
 * guarantee: growth here is legal only at the audited pragma'd sites (first
 * encounter with a larger run), never per steady-state call.
 */
// IGS_HOT_PATH
#ifndef IGS_COMMON_FLAT_TABLE_H
#define IGS_COMMON_FLAT_TABLE_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.h"

namespace igs {

/** Open-addressing VertexId -> Weight accumulator with O(1) reuse. */
class FlatWeightTable {
  public:
    /**
     * Prepare the table for a run of up to `expected` insertions: bumps the
     * epoch (logically clearing the table) and grows the slot array to keep
     * the load factor at most 1/2.  Allocation only happens when `expected`
     * exceeds every previous run's size — steady state is allocation-free.
     */
    void
    reset(std::size_t expected)
    {
        std::size_t needed = 16;
        while (needed < expected * 2) {
            needed <<= 1;
        }
        if (needed > slots_.size()) {
            slots_.clear();
            // Grows only past the largest run ever seen; steady state
            // never enters this branch.
            slots_.resize(needed); // igs-lint: allow(hot-path-alloc)
            entries_.reserve(needed / 2); // igs-lint: allow(hot-path-alloc)
            epoch_ = 0;
        }
        if (++epoch_ == 0) { // epoch wrapped: old stamps ambiguous, wipe
            std::memset(slots_.data(), 0, slots_.size() * sizeof(Slot));
            epoch_ = 1;
        }
        entries_.clear();
        live_adjust_ = 0;
    }

    /** Accumulate `w` into `key`'s entry, inserting it if absent. */
    void
    add(VertexId key, Weight w)
    {
        Slot& s = slots_[probe(key)];
        if (s.epoch != epoch_) {
            s = Slot{key, epoch_, w, false};
            // igs-lint: allow(hot-path-alloc) capacity reserved by reset()
            entries_.push_back(static_cast<std::uint32_t>(&s - slots_.data()));
        } else {
            s.weight += w;
        }
    }

    /**
     * If `key` is live, remove it and store its weight in `*out`,
     * returning true (USC's matched-during-scan case).  Named drain (not
     * take) so the analyzer's simple-name call graph keeps it distinct
     * from the generators' batch-materializing take().
     */
    bool
    drain(VertexId key, Weight* out)
    {
        Slot& s = slots_[probe(key)];
        if (s.epoch != epoch_ || s.dead) {
            return false;
        }
        s.dead = true;
        *out = s.weight;
        --live_adjust_; // entries_ keeps the slot; size() compensates
        return true;
    }

    /** Live entries (insertions minus takes) this epoch. */
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(entries_.size()) + live_adjust_);
    }

    bool empty() const { return size() == 0; }

    /** Visit live entries in insertion order: fn(key, weight). */
    template <typename F>
    void
    for_each(F&& fn) const
    {
        for (const std::uint32_t idx : entries_) {
            const Slot& s = slots_[idx];
            if (!s.dead) {
                fn(s.key, s.weight);
            }
        }
    }

  private:
    // Trivial on purpose: slots_.resize() zero-fills and the epoch-wrap
    // reset memsets; epoch 0 is never a live epoch, so all-zero == empty.
    struct Slot {
        VertexId key;
        std::uint32_t epoch;
        Weight weight;
        bool dead;
    };

    /** Index of `key`'s slot: its live slot, or the free slot to claim. */
    std::size_t
    probe(VertexId key) const
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = (static_cast<std::size_t>(key) * 0x9E3779B9u) & mask;
        while (slots_[i].epoch == epoch_ && slots_[i].key != key) {
            i = (i + 1) & mask;
        }
        return i;
    }

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> entries_;
    std::uint32_t epoch_ = 0;
    std::ptrdiff_t live_adjust_ = 0;
};

} // namespace igs

#endif // IGS_COMMON_FLAT_TABLE_H
