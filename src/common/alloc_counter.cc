#include "common/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace igs {
namespace {

std::atomic<bool> g_tracking{false};
std::atomic<std::uint64_t> g_allocs{0};

void*
counted_alloc(std::size_t n)
{
    if (g_tracking.load(std::memory_order_relaxed)) {
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    }
    return std::malloc(n == 0 ? 1 : n);
}

void*
counted_aligned_alloc(std::size_t n, std::size_t align)
{
    if (g_tracking.load(std::memory_order_relaxed)) {
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    }
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       n == 0 ? 1 : n) != 0) {
        return nullptr;
    }
    return p;
}

} // namespace

void
set_alloc_tracking(bool enabled)
{
    g_tracking.store(enabled, std::memory_order_relaxed);
}

std::uint64_t
tracked_alloc_count()
{
    return g_allocs.load(std::memory_order_relaxed);
}

} // namespace igs

// Replacement allocation functions.  Only binaries referencing the
// igs::*alloc* API link this translation unit (archive semantics), so the
// hook is scoped to tests that opt in.

void*
operator new(std::size_t n)
{
    void* p = igs::counted_alloc(n);
    if (p == nullptr) {
        throw std::bad_alloc{};
    }
    return p;
}

void*
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void*
operator new(std::size_t n, const std::nothrow_t&) noexcept
{
    return igs::counted_alloc(n);
}

void*
operator new[](std::size_t n, const std::nothrow_t&) noexcept
{
    return igs::counted_alloc(n);
}

void*
operator new(std::size_t n, std::align_val_t align)
{
    void* p = igs::counted_aligned_alloc(n, static_cast<std::size_t>(align));
    if (p == nullptr) {
        throw std::bad_alloc{};
    }
    return p;
}

void*
operator new[](std::size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void*
operator new(std::size_t n, std::align_val_t align,
             const std::nothrow_t&) noexcept
{
    return igs::counted_aligned_alloc(n, static_cast<std::size_t>(align));
}

void*
operator new[](std::size_t n, std::align_val_t align,
               const std::nothrow_t&) noexcept
{
    return igs::counted_aligned_alloc(n, static_cast<std::size_t>(align));
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
