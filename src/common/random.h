/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All generators in igstream are seeded explicitly so dataset synthesis,
 * tests, and benchmarks replay bit-identically across runs and machines.
 * SplitMix64 seeds Xoshiro256**, the main engine.
 */
#ifndef IGS_COMMON_RANDOM_H
#define IGS_COMMON_RANDOM_H

#include <cmath>
#include <cstdint>

namespace igs {

/** SplitMix64: used to expand a single 64-bit seed into generator state. */
class SplitMix64 {
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * Xoshiro256** 1.0 — fast, high-quality, 256-bit state.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can be plugged into
 * <random> distributions, but the helpers below avoid libstdc++
 * distributions whose sequences are not standardized.
 */
class Rng {
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x1905c0ffee5eedull)
    {
        SplitMix64 sm(seed);
        for (auto& s : state_) {
            s = sm.next();
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = -bound % bound;
            while (low < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Sample from a bounded discrete power law: P(k) ∝ k^-alpha for
     * k in [1, max_value], via inverse-transform on the continuous
     * approximation.  Used by the dataset generators to shape per-batch
     * degree distributions.
     */
    std::uint64_t
    power_law(double alpha, std::uint64_t max_value)
    {
        if (max_value <= 1) {
            return 1;
        }
        const double u = uniform();
        if (alpha == 1.0) {
            return static_cast<std::uint64_t>(
                std::pow(static_cast<double>(max_value), u));
        }
        const double one_minus = 1.0 - alpha;
        const double max_pow = std::pow(static_cast<double>(max_value),
                                        one_minus);
        const double v = std::pow(1.0 + u * (max_pow - 1.0), 1.0 / one_minus);
        auto k = static_cast<std::uint64_t>(v);
        if (k < 1) {
            k = 1;
        }
        if (k > max_value) {
            k = max_value;
        }
        return k;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace igs

#endif // IGS_COMMON_RANDOM_H
