/**
 * @file
 * A sharded concurrent hash map.
 *
 * Stands in for Intel TBB's `concurrent_hash_map`, which the paper uses in
 * ABR's instrumentation of *non-reordered* ABR-active batches: multiple
 * update threads accumulate per-vertex degrees concurrently (ABR pseudocode,
 * §4.2).  Open addressing within a shard, one spinlock per shard.
 */
#ifndef IGS_COMMON_CONCURRENT_HASH_MAP_H
#define IGS_COMMON_CONCURRENT_HASH_MAP_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/check.h"
#include "common/spinlock.h"

namespace igs {

/**
 * Concurrent hash map from a 64-bit-hashable key to a value, optimized for
 * the accumulate-then-sweep pattern (insert/update under contention, then a
 * single-threaded `for_each`).
 *
 * @tparam Key integral key type
 * @tparam Value mapped type (must be default-constructible)
 */
template <typename Key, typename Value>
class ConcurrentHashMap {
  public:
    /**
     * @param expected_size sizing hint: total elements across all shards.
     * @param shards number of independently locked shards (rounded up to a
     *        power of two).
     */
    explicit ConcurrentHashMap(std::size_t expected_size = 1024,
                               std::size_t shards = 64)
    {
        shard_count_ = 1;
        while (shard_count_ < shards) {
            shard_count_ <<= 1;
        }
        const std::size_t per_shard =
            std::max<std::size_t>(16, 2 * expected_size / shard_count_);
        shards_.reserve(shard_count_);
        for (std::size_t i = 0; i < shard_count_; ++i) {
            shards_.push_back(std::make_unique<Shard>());
            shards_.back()->init(per_shard);
        }
    }

    /**
     * Apply `fn(Value&)` to the value for `key`, inserting a
     * default-constructed value first if absent.  Thread-safe.
     */
    template <typename Fn>
    void
    update(Key key, Fn&& fn)
    {
        Shard& s = shard_for(key);
        SpinlockGuard lk(s.lock);
        fn(s.find_or_insert(key));
    }

    /** Look up `key`; returns nullptr if absent. Thread-safe vs. readers
     *  only — do not race with concurrent `update`. */
    // Quiescent-read contract (no concurrent update), not lock-based —
    // inexpressible to the analysis.
    const Value*
    find(Key key) const IGS_NO_THREAD_SAFETY_ANALYSIS
    {
        const Shard& s = shard_for(key);
        return s.find(key);
    }

    /** Total number of entries (not thread-safe vs. writers). */
    // Quiescent-read contract, as for find().
    std::size_t
    size() const IGS_NO_THREAD_SAFETY_ANALYSIS
    {
        std::size_t n = 0;
        for (const auto& s : shards_) {
            n += s->count;
        }
        return n;
    }

    /** Visit every (key, value) pair single-threaded. */
    // Single-threaded sweep phase of accumulate-then-sweep; no lock held.
    template <typename Fn>
    void
    for_each(Fn&& fn) const IGS_NO_THREAD_SAFETY_ANALYSIS
    {
        for (const auto& s : shards_) {
            for (std::size_t i = 0; i < s->slots.size(); ++i) {
                if (s->used[i]) {
                    fn(s->slots[i].first, s->slots[i].second);
                }
            }
        }
    }

    /** Remove all entries, keeping capacity. Single-threaded. */
    void
    clear() IGS_NO_THREAD_SAFETY_ANALYSIS
    {
        for (auto& s : shards_) {
            std::fill(s->used.begin(), s->used.end(), false);
            s->count = 0;
        }
    }

  private:
    struct Shard {
        Spinlock lock;
        std::vector<std::pair<Key, Value>> slots IGS_GUARDED_BY(lock);
        std::vector<bool> used IGS_GUARDED_BY(lock);
        std::size_t count IGS_GUARDED_BY(lock) = 0;
        std::size_t mask IGS_GUARDED_BY(lock) = 0;

        // Construction-time sizing; the shard is not yet shared.
        void
        init(std::size_t capacity) IGS_NO_THREAD_SAFETY_ANALYSIS
        {
            std::size_t cap = 16;
            while (cap < capacity) {
                cap <<= 1;
            }
            slots.resize(cap);
            used.assign(cap, false);
            mask = cap - 1;
        }

        void
        grow() IGS_REQUIRES(lock)
        {
            std::vector<std::pair<Key, Value>> old_slots = std::move(slots);
            std::vector<bool> old_used = std::move(used);
            init(old_slots.size() * 2);
            count = 0;
            for (std::size_t i = 0; i < old_slots.size(); ++i) {
                if (old_used[i]) {
                    find_or_insert(old_slots[i].first) = old_slots[i].second;
                }
            }
        }

        Value&
        find_or_insert(Key key) IGS_REQUIRES(lock)
        {
            if (count * 4 >= slots.size() * 3) {
                grow();
            }
            std::size_t i = probe_start(key);
            while (used[i]) {
                if (slots[i].first == key) {
                    return slots[i].second;
                }
                i = (i + 1) & mask;
            }
            used[i] = true;
            slots[i] = {key, Value{}};
            ++count;
            return slots[i].second;
        }

        // Reached only through the map's quiescent-read entry points.
        const Value*
        find(Key key) const IGS_NO_THREAD_SAFETY_ANALYSIS
        {
            if (slots.empty()) {
                return nullptr;
            }
            std::size_t i = probe_start(key);
            while (used[i]) {
                if (slots[i].first == key) {
                    return &slots[i].second;
                }
                i = (i + 1) & mask;
            }
            return nullptr;
        }

        // Reads only `mask`, which is immutable once the shard is shared;
        // called from both locked and quiescent-read paths.
        std::size_t
        probe_start(Key key) const IGS_NO_THREAD_SAFETY_ANALYSIS
        {
            return hash_key(key) & mask;
        }
    };

    static std::uint64_t
    hash_key(Key key)
    {
        auto x = static_cast<std::uint64_t>(key);
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ull;
        x ^= x >> 33;
        return x;
    }

    // Shard selection uses the high hash bits, slot probing the low bits, so
    // keys within one shard still spread across that shard's slots.
    Shard&
    shard_for(Key key)
    {
        return *shards_[(hash_key(key) >> 48) & (shard_count_ - 1)];
    }
    const Shard&
    shard_for(Key key) const
    {
        return *shards_[(hash_key(key) >> 48) & (shard_count_ - 1)];
    }

    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t shard_count_ = 1;
};

} // namespace igs

#endif // IGS_COMMON_CONCURRENT_HASH_MAP_H
