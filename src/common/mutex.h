/**
 * @file
 * Annotated mutex wrapper and RAII guard.
 *
 * libstdc++'s std::mutex carries no capability attributes, so clang's
 * thread-safety analysis cannot see std::lock_guard acquisitions of it.
 * igs::Mutex wraps std::mutex with IGS_CAPABILITY annotations and
 * igs::MutexLock is the annotated scoped guard; MutexLock::native() exposes
 * the underlying std::unique_lock for condition-variable waits (the wait's
 * internal unlock/relock is invisible to the analysis, which is sound: the
 * capability is re-held whenever control returns to the caller).
 *
 * Repo rule (enforced by tools/igs_lint.py, rule `bare-mutex`): outside
 * src/common/, blocking synchronization uses igs::Mutex or igs::Spinlock,
 * never a bare std::mutex — so every lock in the system is visible to the
 * thread-safety analysis.
 */
#ifndef IGS_COMMON_MUTEX_H
#define IGS_COMMON_MUTEX_H

#include <mutex>

#include "common/annotations.h"

namespace igs {

/** Annotated exclusive mutex (wraps std::mutex). */
class IGS_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() IGS_ACQUIRE() { m_.lock(); }
    void unlock() IGS_RELEASE() { m_.unlock(); }
    bool try_lock() IGS_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /** The wrapped mutex, for std::condition_variable plumbing only. */
    // igs-lint: allow(hot-path-block) -- accessor; waits audited at use
    std::mutex& native() { return m_; }

  private:
    std::mutex m_;
};

/**
 * Scoped guard holding an igs::Mutex for its lifetime.  Condition-variable
 * users pass `native()` to std::condition_variable::wait and re-check their
 * predicate in an explicit loop in the guarded scope (see ThreadPool), which
 * keeps every guarded access visible to the analysis.
 */
class IGS_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mu) IGS_ACQUIRE(mu) : lk_(mu.native()) {}
    ~MutexLock() IGS_RELEASE() = default;

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /** The live std::unique_lock, for condition-variable waits. */
    // igs-lint: allow(hot-path-block) -- accessor; waits audited at use
    std::unique_lock<std::mutex>& native() { return lk_; }

  private:
    std::unique_lock<std::mutex> lk_;
};

} // namespace igs

#endif // IGS_COMMON_MUTEX_H
