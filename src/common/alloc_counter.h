/**
 * @file
 * Global-allocation counting hook for allocation-freedom tests.
 *
 * Linking a binary that references any of these functions pulls in
 * alloc_counter.cc, whose replacement `operator new` family counts every
 * heap allocation (on all threads) while tracking is enabled.  Binaries
 * that never reference this header keep the default allocator untouched —
 * the hook costs nothing outside the tests that opt in.
 *
 * Used to verify the steady-state reorder path performs zero allocations
 * (see tests/test_reorder_radix.cc).
 */
#ifndef IGS_COMMON_ALLOC_COUNTER_H
#define IGS_COMMON_ALLOC_COUNTER_H

#include <cstdint>

namespace igs {

/** Enable/disable allocation counting (process-wide, all threads). */
void set_alloc_tracking(bool enabled);

/** Allocations observed while tracking was enabled. */
std::uint64_t tracked_alloc_count();

} // namespace igs

#endif // IGS_COMMON_ALLOC_COUNTER_H
