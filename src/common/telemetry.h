/**
 * @file
 * Process-wide structured telemetry: named metrics + stable JSON export.
 *
 * Every runtime decision the paper's techniques make (ABR reorder-or-not,
 * USC, HAU routing, OCA aggregation) and every modeled cost flows through
 * a handful of hot loops; this registry makes them observable without
 * perturbing them:
 *
 *  - @ref Counter — monotonic u64, sharded relaxed atomics so concurrent
 *    increments from real-engine workers never bounce one cacheline;
 *  - @ref Gauge — double with set / add / watermark (CAS max);
 *  - @ref Histogram — fixed bucket bounds chosen at registration; record()
 *    is a bounded scan plus one relaxed fetch_add;
 *  - @ref PhaseTimer + @ref ScopedPhase — wall-clock accumulation for
 *    harness phases (never part of golden comparisons).
 *
 * Contract for hot paths (enforced by tests/test_telemetry.cc with
 * common/alloc_counter.h): after registration, Counter::inc,
 * Gauge::set/add/watermark and Histogram::record perform zero heap
 * allocations and take no locks.  Registration itself (name lookup under
 * the annotated igs::Mutex) is setup-time only — components resolve their
 * metrics once and keep the references, which stay valid for the process
 * lifetime (reset_values() zeroes in place, it never invalidates).
 *
 * Naming scheme (DESIGN.md §9): `<area>.<subsystem>.<metric>`, e.g.
 * `core.abr.reorder_batches`, `sim.update.lock_wait_cycles`,
 * `stream.reorder.scratch_edges_watermark`.
 *
 * Serialization: @ref Registry::to_json emits metrics sorted by name with
 * shortest-round-trip double formatting (std::to_chars), so two snapshots
 * of equal state are byte-identical — the property the golden-run harness
 * (tools/golden_check.py) relies on.
 */
#ifndef IGS_COMMON_TELEMETRY_H
#define IGS_COMMON_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/timer.h"

namespace igs::telemetry {

/** Monotonic counter; increments are relaxed fetch_adds on a per-thread
 *  shard (no shared-line bouncing under the real-time engine's workers). */
class Counter {
  public:
    Counter() = default;
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void
    inc(std::uint64_t n = 1) noexcept
    {
        shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
    }

    /** Sum over shards (merge); racing increments may or may not be seen. */
    std::uint64_t
    value() const noexcept
    {
        std::uint64_t total = 0;
        for (const Shard& s : shards_) {
            total += s.v.load(std::memory_order_relaxed);
        }
        return total;
    }

    void
    reset() noexcept
    {
        for (Shard& s : shards_) {
            s.v.store(0, std::memory_order_relaxed);
        }
    }

    static constexpr std::size_t kShards = 8;

  private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> v{0};
    };

    static std::size_t shard_index() noexcept;

    Shard shards_[kShards];
};

/** Double-valued gauge: set, accumulate, or track a high-water mark. */
class Gauge {
  public:
    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }

    void
    add(double delta) noexcept
    {
        double cur = v_.load(std::memory_order_relaxed);
        while (!v_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
        }
    }

    /** Raise the gauge to `v` if `v` exceeds the current value. */
    void
    watermark(double v) noexcept
    {
        double cur = v_.load(std::memory_order_relaxed);
        while (cur < v &&
               !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
        }
    }

    double value() const noexcept { return v_.load(std::memory_order_relaxed); }
    void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Fixed-bucket histogram.  Bucket i counts samples with
 * `v <= bounds[i]` (first matching bound); the implicit last bucket is
 * +inf.  Bounds are fixed at registration so record() never allocates.
 */
class Histogram {
  public:
    explicit Histogram(std::span<const double> bounds);
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void
    record(double v) noexcept
    {
        std::size_t i = 0;
        while (i < bounds_.size() && v > bounds_[i]) {
            ++i;
        }
        counts_[i].fetch_add(1, std::memory_order_relaxed);
        sum_.add(v);
    }

    const std::vector<double>& bounds() const { return bounds_; }
    std::uint64_t bucket_count(std::size_t i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }
    std::uint64_t total_count() const;
    double sum() const { return sum_.value(); }
    void reset() noexcept;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_; // bounds_.size() + 1
    Gauge sum_;
};

/** Wall-clock phase accumulator (total seconds + invocation count). */
class PhaseTimer {
  public:
    PhaseTimer() = default;
    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;

    void
    add(double seconds) noexcept
    {
        seconds_.add(seconds);
        count_.inc();
    }

    double total_seconds() const { return seconds_.value(); }
    std::uint64_t count() const { return count_.value(); }

    void
    reset() noexcept
    {
        seconds_.reset();
        count_.reset();
    }

  private:
    Gauge seconds_;
    Counter count_;
};

/** RAII wall-clock scope feeding a @ref PhaseTimer. */
class ScopedPhase {
  public:
    explicit ScopedPhase(PhaseTimer& timer) : timer_(timer) {}
    ~ScopedPhase() { timer_.add(timer_seconds_.seconds()); }
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

  private:
    PhaseTimer& timer_;
    Timer timer_seconds_;
};

/**
 * Append-only metric registry.  Metric objects are owned by the registry
 * and never destroyed or moved; the references handed out stay valid for
 * the process lifetime.  Re-registering a name returns the existing metric
 * (histograms additionally require identical bounds); registering one name
 * under two different types aborts.
 */
class Registry {
  public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /** The process-wide default registry. */
    static Registry& global();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name,
                         std::span<const double> bounds);
    PhaseTimer& phase(std::string_view name);

    /** Zero every metric in place (references stay valid).  Test/golden
     *  isolation; not meant for concurrent use with active writers. */
    void reset_values();

    /**
     * Stable JSON snapshot: one object with "counters", "gauges",
     * "histograms", "phases" sub-objects, each sorted by metric name.
     * `indent` > 0 pretty-prints with that many spaces per level.
     */
    std::string to_json(int indent = 2) const;

  private:
    enum class Kind { kCounter, kGauge, kHistogram, kPhase };

    void check_name_free(const std::string& name, Kind want) const
        IGS_REQUIRES(mu_);

    mutable Mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
        IGS_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
        IGS_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
        IGS_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<PhaseTimer>, std::less<>> phases_
        IGS_GUARDED_BY(mu_);
};

/** Snapshot of @ref Registry::global() (convenience). */
std::string to_json(int indent = 2);

/**
 * Minimal streaming JSON writer (no external deps).  Produces stable
 * output: keys are emitted in caller order, doubles use shortest
 * round-trip formatting, non-finite doubles become null.  Used by the
 * registry snapshot and the bench `--json` exporter.
 */
class JsonWriter {
  public:
    explicit JsonWriter(int indent = 2) : indent_(indent) {}

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /** Key inside an object; follow with a value or begin_*. */
    JsonWriter& key(std::string_view k);

    JsonWriter& value(std::string_view s);
    JsonWriter& value(const char* s) { return value(std::string_view(s)); }
    JsonWriter& value(double d);
    JsonWriter& value(std::uint64_t u);
    JsonWriter& value(std::int64_t i);
    JsonWriter& value(std::uint32_t u) { return value(std::uint64_t{u}); }
    JsonWriter& value(int i) { return value(std::int64_t{i}); }
    JsonWriter& value(bool b);
    JsonWriter& null();

    /** Splice a pre-serialized JSON value (e.g. a Registry snapshot) in
     *  value position.  The fragment is emitted verbatim. */
    JsonWriter& raw(std::string_view json);

    /** Shorthand: key + scalar value. */
    template <typename T>
    JsonWriter&
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** The finished document (all scopes must be closed). */
    std::string take();

    /** Format a double exactly as value(double) would (shared with tests
     *  and the golden tooling's expectations). */
    static std::string format_double(double d);

  private:
    void before_value();
    void newline_indent();
    void append_quoted(std::string_view s);

    std::string out_;
    std::vector<bool> scope_has_item_; // one entry per open scope
    bool pending_key_ = false;
    int indent_ = 2;
};

} // namespace igs::telemetry

#endif // IGS_COMMON_TELEMETRY_H
