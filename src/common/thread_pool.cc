#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace igs {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    num_threads_ = num_threads;
    // The caller acts as worker 0; spawn the rest.
    threads_.reserve(num_threads_ - 1);
    for (std::size_t i = 1; i < num_threads_; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lk(mutex_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : threads_) {
        t.join();
    }
}

void
ThreadPool::worker_loop(std::size_t id)
{
    std::uint64_t seen_epoch = 0;
    while (true) {
        const std::function<void(std::size_t)>* job = nullptr;
        {
            // Explicit predicate loop (not the wait-with-lambda overload):
            // the guarded reads stay in this scope, where the analysis can
            // see MutexLock holds mutex_.
            MutexLock lk(mutex_);
            while (!stop_ && epoch_ == seen_epoch) {
                cv_start_.wait(lk.native());
            }
            if (stop_) {
                return;
            }
            seen_epoch = epoch_;
            job = job_;
        }
        (*job)(id);
        {
            MutexLock lk(mutex_);
            if (--active_ == 0) {
                cv_done_.notify_all();
            }
        }
    }
}

void
ThreadPool::run(const std::function<void(std::size_t)>& fn)
{
    {
        // igs-lint: allow(hot-path-block) -- per-batch fork handshake
        MutexLock lk(mutex_);
        IGS_CHECK_MSG(job_ == nullptr, "ThreadPool::run is not reentrant");
        job_ = &fn;
        active_ = num_threads_ - 1;
        ++epoch_;
    }
    cv_start_.notify_all();
    fn(0); // caller participates as worker 0
    {
        // igs-lint: allow(hot-path-block) -- join wait, once per batch
        MutexLock lk(mutex_);
        while (active_ != 0) {
            cv_done_.wait(lk.native()); // igs-lint: allow(hot-path-block)
        }
        job_ = nullptr;
    }
}

void
ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body,
                         std::size_t chunk)
{
    if (begin >= end) {
        return;
    }
    if (num_threads_ == 1 || end - begin <= chunk) {
        for (std::size_t i = begin; i < end; ++i) {
            body(i);
        }
        return;
    }
    std::atomic<std::size_t> next{begin};
    run([&](std::size_t) {
        while (true) {
            const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
            if (lo >= end) {
                return;
            }
            const std::size_t hi = std::min(lo + chunk, end);
            for (std::size_t i = lo; i < hi; ++i) {
                body(i);
            }
        }
    });
}

void
ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t chunk)
{
    if (begin >= end) {
        return;
    }
    if (num_threads_ == 1 || end - begin <= chunk) {
        body(0, begin, end);
        return;
    }
    std::atomic<std::size_t> next{begin};
    run([&](std::size_t tid) {
        while (true) {
            const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
            if (lo >= end) {
                return;
            }
            const std::size_t hi = std::min(lo + chunk, end);
            body(tid, lo, hi);
        }
    });
}

ThreadPool&
default_pool()
{
    static ThreadPool pool;
    return pool;
}

} // namespace igs
