/**
 * @file
 * Small synchronization primitives used by the update executors.
 *
 * The baseline (non-reordered) update path takes one of these per vertex
 * while mutating that vertex's edge data — exactly the lock the paper's RO
 * technique exists to eliminate.
 */
#ifndef IGS_COMMON_SPINLOCK_H
#define IGS_COMMON_SPINLOCK_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace igs {

/** Test-and-test-and-set spinlock; satisfies BasicLockable. */
class Spinlock {
  public:
    Spinlock() = default;
    Spinlock(const Spinlock&) = delete;
    Spinlock& operator=(const Spinlock&) = delete;

    void
    lock()
    {
        while (true) {
            if (!flag_.exchange(true, std::memory_order_acquire)) {
                return;
            }
            while (flag_.load(std::memory_order_relaxed)) {
                // spin
            }
        }
    }

    bool
    try_lock()
    {
        return !flag_.load(std::memory_order_relaxed) &&
               !flag_.exchange(true, std::memory_order_acquire);
    }

    void
    unlock()
    {
        flag_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> flag_{false};
};

/** A cache-line padded wrapper to avoid false sharing between counters. */
template <typename T>
struct alignas(64) Padded {
    T value{};
};

/**
 * A striped lock table: maps a key to one of a fixed number of spinlocks.
 * Used where per-object locks would be too memory-hungry.
 */
class StripedLocks {
  public:
    explicit StripedLocks(std::size_t stripes = 1024)
        : locks_(round_up_pow2(stripes)), mask_(locks_.size() - 1)
    {
    }

    Spinlock& for_key(std::uint64_t key) { return locks_[mix(key) & mask_].value; }

    std::size_t size() const { return locks_.size(); }

  private:
    static std::size_t
    round_up_pow2(std::size_t v)
    {
        std::size_t p = 1;
        while (p < v) {
            p <<= 1;
        }
        return p;
    }

    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return x;
    }

    std::vector<Padded<Spinlock>> locks_;
    std::size_t mask_;
};

} // namespace igs

#endif // IGS_COMMON_SPINLOCK_H
