/**
 * @file
 * Small synchronization primitives used by the update executors.
 *
 * The baseline (non-reordered) update path takes one of these per vertex
 * while mutating that vertex's edge data — exactly the lock the paper's RO
 * technique exists to eliminate.
 *
 * Spinlock is an annotated capability (see annotations.h): clang's
 * thread-safety analysis tracks lock()/try_lock()/unlock() pairing and
 * IGS_GUARDED_BY members.  In debug builds (!NDEBUG) the lock additionally
 * records its owning thread so unlock-by-non-owner — double unlock, or
 * unlocking a lock someone else holds — trips IGS_CHECK instead of silently
 * corrupting the edge arrays it protects.
 */
#ifndef IGS_COMMON_SPINLOCK_H
#define IGS_COMMON_SPINLOCK_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/annotations.h"
#include "common/check.h"

#ifndef NDEBUG
#include <thread>
#endif

namespace igs {

#ifndef NDEBUG
namespace detail {
/** Nonzero id of the calling thread (debug owner bookkeeping). */
inline std::uint64_t
debug_thread_id()
{
    static thread_local const std::uint64_t id =
        (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 1) | 1u;
    return id;
}
} // namespace detail
#endif

/** Test-and-test-and-set spinlock; satisfies BasicLockable. */
class IGS_CAPABILITY("spinlock") Spinlock {
  public:
    Spinlock() = default;
    Spinlock(const Spinlock&) = delete;
    Spinlock& operator=(const Spinlock&) = delete;

    void
    lock() IGS_ACQUIRE()
    {
        while (true) {
            if (!flag_.exchange(true, std::memory_order_acquire)) {
                note_acquired();
                return;
            }
            while (flag_.load(std::memory_order_relaxed)) {
                // spin
            }
        }
    }

    bool
    try_lock() IGS_TRY_ACQUIRE(true)
    {
        const bool acquired =
            !flag_.load(std::memory_order_relaxed) &&
            !flag_.exchange(true, std::memory_order_acquire);
        if (acquired) {
            note_acquired();
        }
        return acquired;
    }

    void
    unlock() IGS_RELEASE()
    {
        note_released();
        flag_.store(false, std::memory_order_release);
    }

  private:
#ifndef NDEBUG
    void
    note_acquired()
    {
        owner_.store(detail::debug_thread_id(), std::memory_order_relaxed);
    }

    void
    note_released()
    {
        IGS_CHECK_MSG(owner_.load(std::memory_order_relaxed) ==
                          detail::debug_thread_id(),
                      "Spinlock::unlock by non-owner (double unlock?)");
        owner_.store(0, std::memory_order_relaxed);
    }

    std::atomic<std::uint64_t> owner_{0};
#else
    void note_acquired() {}
    void note_released() {}
#endif

    std::atomic<bool> flag_{false};
};

/** Scoped guard for a Spinlock (annotation-visible lock_guard). */
class IGS_SCOPED_CAPABILITY SpinlockGuard {
  public:
    explicit SpinlockGuard(Spinlock& lock) IGS_ACQUIRE(lock) : lock_(lock)
    {
        lock_.lock();
    }

    ~SpinlockGuard() IGS_RELEASE() { lock_.unlock(); }

    SpinlockGuard(const SpinlockGuard&) = delete;
    SpinlockGuard& operator=(const SpinlockGuard&) = delete;

  private:
    Spinlock& lock_;
};

/** A cache-line padded wrapper to avoid false sharing between counters. */
template <typename T>
struct alignas(64) Padded {
    T value{};
};

/**
 * A fixed-size array of spinlocks (per-vertex/per-direction lock tables in
 * the graph structures).  Replacing the array wholesale via resize() is only
 * legal while no lock is held — the graphs do so between batches.
 */
class SpinlockArray {
  public:
    SpinlockArray() = default;
    explicit SpinlockArray(std::size_t n) { resize(n); }

    SpinlockArray(SpinlockArray&&) noexcept = default;
    SpinlockArray& operator=(SpinlockArray&&) noexcept = default;

    /**
     * Replace the table with `n` fresh (unlocked) locks.  Single-threaded
     * only: every lock must be free, or waiters on the old table would spin
     * on a lock nobody can ever release.
     */
    void
    resize(std::size_t n)
    {
        locks_ = n != 0 ? std::make_unique<Spinlock[]>(n) : nullptr;
        size_ = n;
    }

    Spinlock&
    operator[](std::size_t i)
    {
        IGS_DCHECK(i < size_);
        return locks_[i];
    }

    std::size_t size() const { return size_; }

  private:
    std::unique_ptr<Spinlock[]> locks_;
    std::size_t size_ = 0;
};

/**
 * A striped lock table: maps a key to one of a fixed number of spinlocks.
 * Used where per-object locks would be too memory-hungry.
 */
class StripedLocks {
  public:
    explicit StripedLocks(std::size_t stripes = 1024)
        : locks_(round_up_pow2(stripes)), mask_(locks_.size() - 1)
    {
    }

    Spinlock& for_key(std::uint64_t key) { return locks_[mix(key) & mask_].value; }

    std::size_t size() const { return locks_.size(); }

  private:
    static std::size_t
    round_up_pow2(std::size_t v)
    {
        std::size_t p = 1;
        while (p < v) {
            p <<= 1;
        }
        return p;
    }

    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return x;
    }

    std::vector<Padded<Spinlock>> locks_;
    std::size_t mask_;
};

} // namespace igs

#endif // IGS_COMMON_SPINLOCK_H
