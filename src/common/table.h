/**
 * @file
 * Plain-text table formatting for bench harnesses: every figure/table
 * reproduction prints the paper's rows/series through this so the output is
 * uniform and easy to diff against EXPERIMENTS.md.
 */
#ifndef IGS_COMMON_TABLE_H
#define IGS_COMMON_TABLE_H

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace igs {

/** Column-aligned text table builder. */
class TextTable {
  public:
    explicit TextTable(std::vector<std::string> header)
        : header_(std::move(header))
    {
    }

    /** Begin a new row. */
    TextTable&
    row()
    {
        rows_.emplace_back();
        return *this;
    }

    /** Append a string cell to the current row. */
    TextTable&
    cell(const std::string& value)
    {
        rows_.back().push_back(value);
        return *this;
    }

    /** Append a formatted floating-point cell. */
    TextTable&
    cell(double value, int precision = 2)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << value;
        rows_.back().push_back(os.str());
        return *this;
    }

    /** Append an integer cell. */
    TextTable&
    cell(std::uint64_t value)
    {
        rows_.back().push_back(std::to_string(value));
        return *this;
    }

    /** Render to a string with aligned columns. */
    std::string
    str() const
    {
        std::vector<std::size_t> widths(header_.size(), 0);
        auto widen = [&](const std::vector<std::string>& r) {
            for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
                widths[i] = std::max(widths[i], r[i].size());
            }
        };
        widen(header_);
        for (const auto& r : rows_) {
            widen(r);
        }
        std::ostringstream os;
        auto emit = [&](const std::vector<std::string>& r) {
            for (std::size_t i = 0; i < widths.size(); ++i) {
                const std::string& v = i < r.size() ? r[i] : std::string();
                os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
                   << v;
            }
            os << '\n';
        };
        emit(header_);
        std::vector<std::string> rule;
        rule.reserve(header_.size());
        for (std::size_t i = 0; i < header_.size(); ++i) {
            rule.push_back(std::string(widths[i], '-'));
        }
        emit(rule);
        for (const auto& r : rows_) {
            emit(r);
        }
        return os.str();
    }

    /** Print to stdout. */
    void
    print() const
    {
        std::fputs(str().c_str(), stdout);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace igs

#endif // IGS_COMMON_TABLE_H
