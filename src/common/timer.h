/**
 * @file
 * Wall-clock timing.  Bench harnesses report *simulated* cycles as the
 * primary metric (see DESIGN.md, substitution table); wall-clock timers are
 * used for harness bookkeeping and the wall-time columns some benches print
 * alongside.
 */
#ifndef IGS_COMMON_TIMER_H
#define IGS_COMMON_TIMER_H

#include <chrono>

namespace igs {

/** Monotonic stopwatch. */
class Timer {
  public:
    Timer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace igs

#endif // IGS_COMMON_TIMER_H
