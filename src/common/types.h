/**
 * @file
 * Fundamental types shared by every igstream module.
 *
 * The streaming engine processes a stream of <source, destination[, weight]>
 * tuples grouped into fixed-size input batches.  Vertex identifiers are dense
 * 32-bit integers (the dataset registry guarantees compaction); edge counts
 * and cycle counts are 64-bit.
 */
#ifndef IGS_COMMON_TYPES_H
#define IGS_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace igs {

/** Dense vertex identifier. */
using VertexId = std::uint32_t;
/** Edge ordinal / count type. */
using EdgeId = std::uint64_t;
/** Edge weight. Unweighted graphs carry weight 1. */
using Weight = float;
/** Simulated time in core cycles (2.5 GHz reference clock). */
using Cycles = std::uint64_t;
/**
 * Snapshot-epoch token (graph/graph_store.h).  Epoch 0 is "nothing
 * published yet"; every compute hand-off advances the live store's epoch
 * and stamps the published snapshot and pending work with the new value.
 */
using EpochId = std::uint64_t;

/** Sentinel for "no vertex". */
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/** Sentinel for "unreachable" distances in shortest-path algorithms. */
inline constexpr Weight kInfiniteDistance =
    std::numeric_limits<Weight>::infinity();

/**
 * One streamed graph modification.
 *
 * A batch is a contiguous array of these.  Deletions are streamed in-band
 * with @ref is_delete set; the engine guarantees (like the paper's HAU
 * ordering rule) that a batch's insertions are applied before its deletions.
 */
struct StreamEdge {
    VertexId src = 0;
    VertexId dst = 0;
    Weight weight = 1.0f;
    bool is_delete = false;

    friend bool operator==(const StreamEdge&, const StreamEdge&) = default;
};

/** A plain directed edge as stored in adjacency structures. */
struct Neighbor {
    VertexId id = 0;
    Weight weight = 1.0f;

    friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/** Direction selector for per-vertex edge data. */
enum class Direction : std::uint8_t { kOut = 0, kIn = 1 };

/** Human-readable name of a direction (for logs and bench output). */
inline const char* to_string(Direction d)
{
    return d == Direction::kOut ? "out" : "in";
}

} // namespace igs

#endif // IGS_COMMON_TYPES_H
