/**
 * @file
 * Lightweight run-time checking macros.
 *
 * IGS_CHECK is always on (used for user-facing argument validation, the
 * "fatal" category); IGS_DCHECK compiles out in NDEBUG builds (internal
 * invariants, the "panic" category).
 */
#ifndef IGS_COMMON_CHECK_H
#define IGS_COMMON_CHECK_H

#include <cstdio>
#include <cstdlib>

namespace igs::detail {

[[noreturn]] inline void
check_failed(const char* cond, const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "igs: check failed: %s at %s:%d%s%s\n", cond, file,
                 line, msg[0] ? ": " : "", msg);
    std::abort();
}

} // namespace igs::detail

#define IGS_CHECK(cond)                                                       \
    do {                                                                       \
        if (!(cond)) {                                                         \
            ::igs::detail::check_failed(#cond, __FILE__, __LINE__, "");        \
        }                                                                      \
    } while (0)

#define IGS_CHECK_MSG(cond, msg)                                               \
    do {                                                                       \
        if (!(cond)) {                                                         \
            ::igs::detail::check_failed(#cond, __FILE__, __LINE__, (msg));     \
        }                                                                      \
    } while (0)

#ifdef NDEBUG
#define IGS_DCHECK(cond) ((void)0)
#else
#define IGS_DCHECK(cond) IGS_CHECK(cond)
#endif

#endif // IGS_COMMON_CHECK_H
