/**
 * @file
 * A reusable fixed-size thread pool with a dynamic-scheduling parallel_for.
 *
 * The streaming engine's software update paths mirror the paper's OpenMP
 * usage: edge-centric baseline updates use a `parallel_for` over edges;
 * reordered (vertex-centric) updates use `parallel_for_dynamic` over vertex
 * runs so a thread finishes all edges of a vertex before taking new work
 * (OpenMP `schedule(dynamic)` equivalent).
 */
#ifndef IGS_COMMON_THREAD_POOL_H
#define IGS_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace igs {

/**
 * Fixed-size worker pool.  Work is submitted as a single job executed by all
 * workers (fork/join style), which is the natural shape for data-parallel
 * graph kernels and avoids per-task allocation.
 */
class ThreadPool {
  public:
    /**
     * @param num_threads Worker count; 0 means `hardware_concurrency()`.
     * The calling thread also participates in `run()`, so the effective
     * parallelism is `num_threads` total (one of them is the caller).
     */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total worker count including the calling thread. */
    std::size_t size() const { return num_threads_; }

    /**
     * Run `fn(thread_id)` on every worker (ids 0..size()-1) and block until
     * all have finished.  `fn` must be safe to call concurrently.
     */
    void run(const std::function<void(std::size_t)>& fn);

    /**
     * Parallel loop over [begin, end) with dynamic chunk scheduling.
     * `body(i)` is invoked exactly once per index; chunks of `chunk` indices
     * are claimed atomically so load imbalance self-corrects (the OpenMP
     * `schedule(dynamic, chunk)` behaviour the paper relies on for RO).
     */
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& body,
                      std::size_t chunk = 256);

    /**
     * Parallel loop where the body receives the chunk range and the worker
     * id: `body(thread_id, chunk_begin, chunk_end)`.  Useful when the body
     * keeps per-thread scratch state (e.g. USC's per-thread hash table).
     */
    void parallel_chunks(
        std::size_t begin, std::size_t end,
        const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
        std::size_t chunk = 256);

  private:
    void worker_loop(std::size_t id);

    std::size_t num_threads_;
    std::vector<std::thread> threads_;

    /** Guards the fork/join handshake state below; condition variables wait
     *  on its native std::mutex (see mutex.h for the annotation scheme). */
    Mutex mutex_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    /** Job of the current epoch; null between run() calls. */
    const std::function<void(std::size_t)>* job_ IGS_GUARDED_BY(mutex_) =
        nullptr;
    /** Bumped per run(); workers start when it moves past their last seen. */
    std::uint64_t epoch_ IGS_GUARDED_BY(mutex_) = 0;
    /** Spawned workers still executing the current job. */
    std::size_t active_ IGS_GUARDED_BY(mutex_) = 0;
    bool stop_ IGS_GUARDED_BY(mutex_) = false;
};

/** Process-wide default pool (lazily constructed, sized to the host). */
ThreadPool& default_pool();

} // namespace igs

#endif // IGS_COMMON_THREAD_POOL_H
