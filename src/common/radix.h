/**
 * @file
 * Primitives for stable LSD counting/radix sorts over dense integer keys.
 *
 * The batch-reordering pipeline (stream/reorder_radix.cc) sorts a batch by
 * vertex id in one or more stable counting passes instead of a comparison
 * sort: per-worker histograms over contiguous input chunks, a bucket-major /
 * worker-minor exclusive prefix turning counts into scatter offsets, then a
 * chunk-parallel scatter.  Stability follows from the offset order: bucket,
 * then worker (chunks are contiguous), then arrival order within a chunk.
 *
 * These helpers are key-type agnostic; callers choose the digit plan and own
 * the histogram storage so it can live in a reusable arena.
 */
#ifndef IGS_COMMON_RADIX_H
#define IGS_COMMON_RADIX_H

#include <bit>
#include <cstddef>
#include <cstdint>

namespace igs {

/** Widest digit a single counting pass handles. */
inline constexpr std::uint32_t kMaxRadixBits = 16;
/** Histogram stride sized for the widest digit. */
inline constexpr std::size_t kMaxRadixBuckets = std::size_t{1} << kMaxRadixBits;

/** Digit plan of one radix sort: `passes` stable passes of `bits` each. */
struct RadixPlan {
    std::uint32_t bits = kMaxRadixBits;
    std::uint32_t passes = 1;

    std::size_t buckets() const { return std::size_t{1} << bits; }
    std::uint32_t mask() const { return (1u << bits) - 1u; }
};

/**
 * Pick a digit plan for sorting `n` keys in [0, max_key].
 *
 * Wide digits amortize over large inputs; small inputs take narrow digits so
 * the O(workers x buckets) prefix/clear work cannot dominate the O(n) part.
 */
inline RadixPlan
plan_radix(std::size_t n, std::uint32_t max_key)
{
    RadixPlan plan;
    plan.bits = n >= 4096 ? kMaxRadixBits : 8;
    const std::uint32_t key_bits =
        max_key == 0 ? 1u : static_cast<std::uint32_t>(std::bit_width(max_key));
    plan.passes = (key_bits + plan.bits - 1) / plan.bits;
    if (plan.passes == 0) {
        plan.passes = 1;
    }
    return plan;
}

/**
 * Turn per-worker bucket counts into exclusive scatter offsets, in place.
 *
 * `hist` holds `workers` rows of `stride` counters; only the first
 * `buckets_used` buckets of each row are touched.  After the call,
 * `hist[w * stride + b]` is the output index where worker `w` places its
 * first element of bucket `b`; the bucket-major / worker-minor visit order
 * is what makes the enclosing counting pass stable.  Returns the total
 * element count (== n of the pass).
 */
inline std::size_t
radix_exclusive_offsets(std::uint32_t* hist, std::size_t workers,
                        std::size_t stride, std::size_t buckets_used)
{
    std::size_t running = 0;
    for (std::size_t b = 0; b < buckets_used; ++b) {
        for (std::size_t w = 0; w < workers; ++w) {
            const std::uint32_t count = hist[w * stride + b];
            hist[w * stride + b] = static_cast<std::uint32_t>(running);
            running += count;
        }
    }
    return running;
}

} // namespace igs

#endif // IGS_COMMON_RADIX_H
