#include "common/telemetry.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace igs::telemetry {

// ----------------------------------------------------------------- counter

std::size_t
Counter::shard_index() noexcept
{
    // Threads are striped over shards round-robin at first use; the slot
    // is computed once per thread, so inc() is one TLS read + fetch_add.
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
}

// --------------------------------------------------------------- histogram

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), counts_(bounds.size() + 1)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        IGS_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                      "histogram bounds must be strictly increasing");
    }
}

std::uint64_t
Histogram::total_count() const
{
    std::uint64_t t = 0;
    for (const auto& c : counts_) {
        t += c.load(std::memory_order_relaxed);
    }
    return t;
}

void
Histogram::reset() noexcept
{
    for (auto& c : counts_) {
        c.store(0, std::memory_order_relaxed);
    }
    sum_.reset();
}

// ---------------------------------------------------------------- registry

Registry&
Registry::global()
{
    static Registry r;
    return r;
}

void
Registry::check_name_free(const std::string& name, Kind want) const
{
    const bool taken =
        (want != Kind::kCounter && counters_.count(name) != 0) ||
        (want != Kind::kGauge && gauges_.count(name) != 0) ||
        (want != Kind::kHistogram && histograms_.count(name) != 0) ||
        (want != Kind::kPhase && phases_.count(name) != 0);
    IGS_CHECK_MSG(!taken, "telemetry metric registered under two types");
}

Counter&
Registry::counter(std::string_view name)
{
    MutexLock lk(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        std::string key(name);
        check_name_free(key, Kind::kCounter);
        it = counters_.emplace(std::move(key), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge&
Registry::gauge(std::string_view name)
{
    MutexLock lk(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        std::string key(name);
        check_name_free(key, Kind::kGauge);
        it = gauges_.emplace(std::move(key), std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram&
Registry::histogram(std::string_view name, std::span<const double> bounds)
{
    MutexLock lk(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        std::string key(name);
        check_name_free(key, Kind::kHistogram);
        it = histograms_
                 .emplace(std::move(key), std::make_unique<Histogram>(bounds))
                 .first;
    } else {
        const auto& have = it->second->bounds();
        IGS_CHECK_MSG(have.size() == bounds.size() &&
                          std::equal(have.begin(), have.end(),
                                     bounds.begin()),
                      "histogram re-registered with different bounds");
    }
    return *it->second;
}

PhaseTimer&
Registry::phase(std::string_view name)
{
    MutexLock lk(mu_);
    auto it = phases_.find(name);
    if (it == phases_.end()) {
        std::string key(name);
        check_name_free(key, Kind::kPhase);
        it = phases_.emplace(std::move(key), std::make_unique<PhaseTimer>())
                 .first;
    }
    return *it->second;
}

void
Registry::reset_values()
{
    MutexLock lk(mu_);
    for (auto& [_, c] : counters_) {
        c->reset();
    }
    for (auto& [_, g] : gauges_) {
        g->reset();
    }
    for (auto& [_, h] : histograms_) {
        h->reset();
    }
    for (auto& [_, p] : phases_) {
        p->reset();
    }
}

std::string
Registry::to_json(int indent) const
{
    MutexLock lk(mu_);
    JsonWriter w(indent);
    w.begin_object();

    w.key("counters").begin_object();
    for (const auto& [name, c] : counters_) {
        w.kv(name, c->value());
    }
    w.end_object();

    w.key("gauges").begin_object();
    for (const auto& [name, g] : gauges_) {
        w.kv(name, g->value());
    }
    w.end_object();

    w.key("histograms").begin_object();
    for (const auto& [name, h] : histograms_) {
        w.key(name).begin_object();
        w.key("bounds").begin_array();
        for (double b : h->bounds()) {
            w.value(b);
        }
        w.end_array();
        w.key("counts").begin_array();
        for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
            w.value(h->bucket_count(i));
        }
        w.end_array();
        w.kv("count", h->total_count());
        w.kv("sum", h->sum());
        w.end_object();
    }
    w.end_object();

    w.key("phases").begin_object();
    for (const auto& [name, p] : phases_) {
        w.key(name).begin_object();
        w.kv("seconds", p->total_seconds());
        w.kv("count", p->count());
        w.end_object();
    }
    w.end_object();

    w.end_object();
    return w.take();
}

std::string
to_json(int indent)
{
    return Registry::global().to_json(indent);
}

// ------------------------------------------------------------- json writer

std::string
JsonWriter::format_double(double d)
{
    if (!std::isfinite(d)) {
        return "null";
    }
    // Shortest round-trip representation: stable across runs and gives
    // exact equality when the underlying bits are equal (golden runs).
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), d);
    std::string s(buf, res.ptr);
    // Keep integral doubles visibly floating ("3" -> "3.0") so JSON types
    // never flip between int and float across snapshots.
    if (s.find_first_of(".eEn") == std::string::npos) {
        s += ".0";
    }
    return s;
}

void
JsonWriter::newline_indent()
{
    if (indent_ <= 0) {
        return;
    }
    out_ += '\n';
    out_.append(scope_has_item_.size() * static_cast<std::size_t>(indent_),
                ' ');
}

void
JsonWriter::before_value()
{
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!scope_has_item_.empty()) {
        if (scope_has_item_.back()) {
            out_ += ',';
        }
        scope_has_item_.back() = true;
        newline_indent();
    }
}

JsonWriter&
JsonWriter::begin_object()
{
    before_value();
    out_ += '{';
    scope_has_item_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::end_object()
{
    IGS_CHECK(!scope_has_item_.empty() && !pending_key_);
    const bool had = scope_has_item_.back();
    scope_has_item_.pop_back();
    if (had) {
        newline_indent();
    }
    out_ += '}';
    return *this;
}

JsonWriter&
JsonWriter::begin_array()
{
    before_value();
    out_ += '[';
    scope_has_item_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::end_array()
{
    IGS_CHECK(!scope_has_item_.empty() && !pending_key_);
    const bool had = scope_has_item_.back();
    scope_has_item_.pop_back();
    if (had) {
        newline_indent();
    }
    out_ += ']';
    return *this;
}

JsonWriter&
JsonWriter::key(std::string_view k)
{
    IGS_CHECK(!scope_has_item_.empty() && !pending_key_);
    if (scope_has_item_.back()) {
        out_ += ',';
    }
    scope_has_item_.back() = true;
    newline_indent();
    append_quoted(k);
    out_ += indent_ > 0 ? ": " : ":";
    pending_key_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::string_view s)
{
    before_value();
    append_quoted(s);
    return *this;
}

void
JsonWriter::append_quoted(std::string_view s)
{
    out_ += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out_ += "\\\"";
            break;
          case '\\':
            out_ += "\\\\";
            break;
          case '\n':
            out_ += "\\n";
            break;
          case '\r':
            out_ += "\\r";
            break;
          case '\t':
            out_ += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof(esc), "\\u%04x",
                              static_cast<unsigned>(c));
                out_ += esc;
            } else {
                out_ += c;
            }
        }
    }
    out_ += '"';
}

JsonWriter&
JsonWriter::value(double d)
{
    before_value();
    out_ += format_double(d);
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t u)
{
    before_value();
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), u);
    out_.append(buf, res.ptr);
    return *this;
}

JsonWriter&
JsonWriter::value(std::int64_t i)
{
    before_value();
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), i);
    out_.append(buf, res.ptr);
    return *this;
}

JsonWriter&
JsonWriter::value(bool b)
{
    before_value();
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    before_value();
    out_ += "null";
    return *this;
}

JsonWriter&
JsonWriter::raw(std::string_view json)
{
    before_value();
    out_ += json;
    return *this;
}

std::string
JsonWriter::take()
{
    IGS_CHECK_MSG(scope_has_item_.empty() && !pending_key_,
                  "JsonWriter::take with unclosed scopes");
    if (indent_ > 0) {
        out_ += '\n';
    }
    return std::move(out_);
}

} // namespace igs::telemetry
