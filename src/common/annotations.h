/**
 * @file
 * Clang thread-safety-analysis annotation macros.
 *
 * Under clang (`-Wthread-safety`, enabled repo-wide by the CMake option
 * `-DIGS_THREAD_SAFETY=ON`) these expand to the capability attributes the
 * static analysis consumes; under GCC and other compilers they expand to
 * nothing.  The annotated primitives are igs::Spinlock (spinlock.h) and
 * igs::Mutex (mutex.h); data members they protect carry IGS_GUARDED_BY,
 * and functions that must be called with a lock held carry IGS_REQUIRES.
 *
 * Naming follows the clang documentation's capability vocabulary
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with an IGS_
 * prefix so the macros cannot collide with other libraries'.
 */
#ifndef IGS_COMMON_ANNOTATIONS_H
#define IGS_COMMON_ANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define IGS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef IGS_THREAD_ANNOTATION
#define IGS_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a class as a lockable capability (e.g. a mutex type). */
#define IGS_CAPABILITY(name) IGS_THREAD_ANNOTATION(capability(name))

/** Marks an RAII class whose lifetime holds a capability. */
#define IGS_SCOPED_CAPABILITY IGS_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding `lock`. */
#define IGS_GUARDED_BY(lock) IGS_THREAD_ANNOTATION(guarded_by(lock))

/** Pointer member whose *pointee* is protected by `lock`. */
#define IGS_PT_GUARDED_BY(lock) IGS_THREAD_ANNOTATION(pt_guarded_by(lock))

/** Function that must be entered with `...` held exclusively. */
#define IGS_REQUIRES(...) \
    IGS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that must be entered with `...` held at least shared. */
#define IGS_REQUIRES_SHARED(...) \
    IGS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function that acquires `...` and returns holding it. */
#define IGS_ACQUIRE(...) \
    IGS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases `...`. */
#define IGS_RELEASE(...) \
    IGS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires `...` iff it returns `result`. */
#define IGS_TRY_ACQUIRE(result, ...) \
    IGS_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/** Function that must be entered with `...` NOT held (deadlock guard). */
#define IGS_EXCLUDES(...) IGS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returning a reference to the capability protecting its data. */
#define IGS_RETURN_CAPABILITY(x) IGS_THREAD_ANNOTATION(lock_returned(x))

/**
 * Escape hatch for functions whose synchronization contract the analysis
 * cannot express (e.g. quiescent single-threaded sweeps over sharded
 * state).  Every use must carry a comment stating the actual contract.
 */
#define IGS_NO_THREAD_SAFETY_ANALYSIS \
    IGS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // IGS_COMMON_ANNOTATIONS_H
