/**
 * @file
 * One-stop driver for simulated batch updates.
 *
 * Owns the virtual scheduler (worker clocks + lock table) and the HAU
 * engine for the lifetime of one stream replay, and runs each incoming
 * batch through a selected update mode.  Used by the input-aware engine
 * (src/core) and by every update-performance bench.
 */
#ifndef IGS_SIM_UPDATE_RUNNER_H
#define IGS_SIM_UPDATE_RUNNER_H

#include <memory>
#include <optional>

#include "graph/indexed_adjacency.h"
#include "sim/exec_sim.h"
#include "sim/hau.h"
#include "sim/machine.h"
#include "sim/sim_context.h"
#include "stream/batch.h"
#include "stream/reorder.h"
#include "stream/update_context.h"

namespace igs::sim {

/** Software/hardware update paths (paper Fig 2). */
enum class UpdateMode {
    kBaseline,     ///< edge-centric, per-vertex locks
    kReordered,    ///< RO: vertex-centric, lock-free
    kReorderedUsc, ///< RO + update search coalescing
    kHau,          ///< hardware-accelerated update
};

/** Human-readable mode name. */
const char* to_string(UpdateMode mode);

/** Simulated update driver for one stream replay. */
class UpdateRunner {
  public:
    /**
     * @param machine Table-1 architecture
     * @param sw software cost constants
     * @param hw HAU cost constants
     * @param num_vertices vertex-space size (lock-table sizing)
     * @param reorder_mode host algorithm for internal reorders (the
     *        modeled sort cost is charged identically either way)
     */
    UpdateRunner(const MachineParams& machine, const SwCostParams& sw,
                 const HauCostParams& hw, std::size_t num_vertices,
                 stream::ReorderMode reorder_mode =
                     stream::ReorderMode::kRadix);

    /**
     * Ingest `batch` into `g` using `mode`; returns the batch's modeled
     * update statistics (cycles include reordering cost for RO modes).
     *
     * @param reordered optional pre-reordered view of the batch (the
     *        input-aware engine reorders once and shares it with ABR's
     *        instrumentation); if null, RO modes reorder internally.
     */
    UpdateStats run(graph::IndexedAdjacency& g,
                    const stream::EdgeBatch& batch, UpdateMode mode,
                    stream::OcaProbe* probe = nullptr,
                    const stream::ReorderedBatch* reordered = nullptr);

    /** Stats of the most recent kHau run (Fig 19 / Fig 20 data). */
    const std::optional<HauRunStats>& last_hau_stats() const
    {
        return last_hau_;
    }

    /** The HAU engine (NoC inspection). */
    const HauSimulator& hau() const { return hau_; }

    ExecSim& exec() { return exec_; }
    const SwCostParams& sw_costs() const { return sw_; }
    const MachineParams& machine() const { return machine_; }

  private:
    MachineParams machine_;
    SwCostParams sw_;
    ExecSim exec_;
    HauSimulator hau_;
    /** Arena-backed reorderer for RO runs without a caller-provided view. */
    stream::Reorderer reorderer_;
    std::optional<HauRunStats> last_hau_;
};

} // namespace igs::sim

#endif // IGS_SIM_UPDATE_RUNNER_H
