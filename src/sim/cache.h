/**
 * @file
 * Set-associative cache models for the HAU timing path.
 *
 * A @ref Cache is one level (set-associative, true-LRU).  A
 * @ref CoreCacheHierarchy stacks a private L1D and L2 above a shared NUCA
 * L3 slice; @ref access walks the hierarchy, fills on miss (allocate-on-
 * fill) and returns where the line was found.  The model tracks contents
 * only (tag state), not data, and charges latencies from
 * @ref MachineParams.
 */
#ifndef IGS_SIM_CACHE_H
#define IGS_SIM_CACHE_H

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/machine.h"

namespace igs::sim {

/** 64-bit line address (byte address >> 6). */
using LineAddr = std::uint64_t;

/** Where an access was satisfied. */
enum class HitLevel : std::uint8_t { kL1, kL2, kL3, kMemory };

/** One set-associative, true-LRU cache level. */
class Cache {
  public:
    /**
     * @param bytes total capacity
     * @param ways  associativity
     * @param line_bytes line size
     */
    Cache(std::uint32_t bytes, std::uint32_t ways, std::uint32_t line_bytes);

    /** Look up `line`; on hit, promote to MRU and return true. */
    bool lookup(LineAddr line);

    /** Install `line` (evicting LRU if needed); returns evicted line or
     *  ~0ull if none. */
    LineAddr fill(LineAddr line);

    /** True if `line` is currently resident (no LRU update). */
    bool contains(LineAddr line) const;

    /** Drop a line if present (back-invalidation support). */
    void invalidate(LineAddr line);

    std::uint32_t num_sets() const { return num_sets_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Way {
        LineAddr line = ~0ull;
        std::uint64_t lru = 0; // larger = more recent
    };

    std::size_t set_index(LineAddr line) const { return line & (num_sets_ - 1); }

    std::uint32_t num_sets_;
    std::uint32_t ways_;
    std::vector<Way> ways_storage_; // num_sets_ * ways_
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Outcome of a hierarchical access. */
struct AccessResult {
    HitLevel level = HitLevel::kL1;
    Cycles latency = 0;
};

/**
 * The private caches of one core plus a pointer to its L3 slice.
 * L3 slices are owned by @ref MemorySystem.
 */
class CoreCacheHierarchy {
  public:
    CoreCacheHierarchy(const MachineParams& m);

    /**
     * Access a line through L1 -> L2; returns nullopt-equivalent miss if it
     * must go to L3 (caller resolves the slice).  On L3/memory resolution,
     * call `fill_private` to install the line.
     */
    bool hit_l1(LineAddr line);
    bool hit_l2(LineAddr line);
    void fill_private(LineAddr line);

    const Cache& l1() const { return l1_; }
    const Cache& l2() const { return l2_; }

  private:
    Cache l1_;
    Cache l2_;
};

} // namespace igs::sim

#endif // IGS_SIM_CACHE_H
