#include "sim/update_runner.h"

#include "common/thread_pool.h"
#include "stream/updaters.h"

namespace igs::sim {

const char*
to_string(UpdateMode mode)
{
    switch (mode) {
      case UpdateMode::kBaseline:
        return "baseline";
      case UpdateMode::kReordered:
        return "reordered";
      case UpdateMode::kReorderedUsc:
        return "reordered+usc";
      case UpdateMode::kHau:
        return "hau";
    }
    return "?";
}

UpdateRunner::UpdateRunner(const MachineParams& machine,
                           const SwCostParams& sw, const HauCostParams& hw,
                           std::size_t num_vertices,
                           stream::ReorderMode reorder_mode)
    : machine_(machine), sw_(sw),
      exec_(machine.num_cores, num_vertices * 2), hau_(machine, hw),
      reorderer_(reorder_mode)
{
}

UpdateStats
UpdateRunner::run(graph::IndexedAdjacency& g, const stream::EdgeBatch& batch,
                  UpdateMode mode, stream::OcaProbe* probe,
                  const stream::ReorderedBatch* reordered)
{
    exec_.ensure_lock_keys(g.num_vertices() * 2);

    if (mode == UpdateMode::kHau) {
        const HauRunStats h = hau_.run_batch(g, batch, probe);
        last_hau_ = h;
        UpdateStats s;
        s.cycles = h.cycles;
        s.inserts = h.inserts;
        s.weight_updates = h.weight_updates;
        s.removes = h.removes;
        return s;
    }

    if (reordered == nullptr && (mode == UpdateMode::kReordered ||
                                 mode == UpdateMode::kReorderedUsc)) {
        reordered = &reorderer_.reorder(batch.edges(), default_pool());
    }

    SimContext ctx(exec_, sw_);
    switch (mode) {
      case UpdateMode::kBaseline:
        stream::apply_batch_baseline(g, batch, ctx, probe);
        break;
      case UpdateMode::kReordered:
        stream::apply_batch_reordered(g, batch, *reordered, ctx, probe);
        break;
      case UpdateMode::kReorderedUsc:
        stream::apply_batch_usc(g, batch, *reordered, ctx, probe);
        break;
      case UpdateMode::kHau:
        break; // handled above
    }
    return ctx.stats();
}

} // namespace igs::sim
