#include "sim/update_runner.h"

#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "stream/updaters.h"

namespace igs::sim {

namespace {

/** Update-path telemetry, resolved once (see DESIGN.md §9 naming). */
struct UpdateTelemetry {
    telemetry::Counter& batches_baseline;
    telemetry::Counter& batches_reordered;
    telemetry::Counter& batches_reordered_usc;
    telemetry::Counter& batches_hau;
    telemetry::Counter& cycles;
    telemetry::Counter& lock_acquisitions;
    telemetry::Counter& probes;
    telemetry::Counter& inserts;
    telemetry::Counter& weight_updates;
    telemetry::Counter& removes;
    telemetry::Counter& runs;
    telemetry::Counter& sorted_edges;
    telemetry::Counter& hash_build_edges;
    telemetry::Counter& coalesced_scans;
    telemetry::Gauge& lock_wait_cycles;
    telemetry::Counter& hau_tasks;
    telemetry::Counter& hau_fifo_stall_cycles;
    telemetry::Counter& hau_lines_local;
    telemetry::Counter& hau_lines_remote;
    telemetry::Gauge& hau_l1_hits;
    telemetry::Gauge& hau_l1_misses;
    telemetry::Gauge& hau_l2_hits;
    telemetry::Gauge& hau_l2_misses;
    telemetry::Gauge& hau_l3_hits;
    telemetry::Gauge& hau_l3_misses;
    telemetry::Gauge& noc_flits_data;
    telemetry::Gauge& noc_flits_task;
    telemetry::Gauge& noc_mean_link_utilization;

    static UpdateTelemetry&
    get()
    {
        auto& r = telemetry::Registry::global();
        static UpdateTelemetry t{
            r.counter("sim.update.batches_baseline"),
            r.counter("sim.update.batches_reordered"),
            r.counter("sim.update.batches_reordered_usc"),
            r.counter("sim.update.batches_hau"),
            r.counter("sim.update.cycles"),
            r.counter("sim.update.lock_acquisitions"),
            r.counter("sim.update.probes"),
            r.counter("sim.update.inserts"),
            r.counter("sim.update.weight_updates"),
            r.counter("sim.update.removes"),
            r.counter("sim.update.runs"),
            r.counter("sim.update.sorted_edges"),
            r.counter("sim.update.hash_build_edges"),
            r.counter("sim.update.coalesced_scans"),
            r.gauge("sim.update.lock_wait_cycles"),
            r.counter("sim.hau.tasks"),
            r.counter("sim.hau.fifo_stall_cycles"),
            r.counter("sim.hau.lines_local"),
            r.counter("sim.hau.lines_remote"),
            r.gauge("sim.hau.l1_hits"),
            r.gauge("sim.hau.l1_misses"),
            r.gauge("sim.hau.l2_hits"),
            r.gauge("sim.hau.l2_misses"),
            r.gauge("sim.hau.l3_hits"),
            r.gauge("sim.hau.l3_misses"),
            r.gauge("sim.noc.flits_data"),
            r.gauge("sim.noc.flits_task"),
            r.gauge("sim.noc.mean_link_utilization"),
        };
        return t;
    }
};

void
record_update(UpdateTelemetry& t, UpdateMode mode, const UpdateStats& s)
{
    switch (mode) {
      case UpdateMode::kBaseline:
        t.batches_baseline.inc();
        break;
      case UpdateMode::kReordered:
        t.batches_reordered.inc();
        break;
      case UpdateMode::kReorderedUsc:
        t.batches_reordered_usc.inc();
        break;
      case UpdateMode::kHau:
        t.batches_hau.inc();
        break;
    }
    t.cycles.inc(s.cycles);
    t.lock_acquisitions.inc(s.lock_acquisitions);
    t.probes.inc(s.probes);
    t.inserts.inc(s.inserts);
    t.weight_updates.inc(s.weight_updates);
    t.removes.inc(s.removes);
    t.runs.inc(s.runs);
    t.sorted_edges.inc(s.sorted_edges);
    t.hash_build_edges.inc(s.hash_build_edges);
    t.coalesced_scans.inc(s.coalesced_scans);
    t.lock_wait_cycles.add(s.lock_wait_cycles);
}

} // namespace

const char*
to_string(UpdateMode mode)
{
    switch (mode) {
      case UpdateMode::kBaseline:
        return "baseline";
      case UpdateMode::kReordered:
        return "reordered";
      case UpdateMode::kReorderedUsc:
        return "reordered+usc";
      case UpdateMode::kHau:
        return "hau";
    }
    return "?";
}

UpdateRunner::UpdateRunner(const MachineParams& machine,
                           const SwCostParams& sw, const HauCostParams& hw,
                           std::size_t num_vertices,
                           stream::ReorderMode reorder_mode)
    : machine_(machine), sw_(sw),
      exec_(machine.num_cores, num_vertices * 2), hau_(machine, hw),
      reorderer_(reorder_mode)
{
}

UpdateStats
UpdateRunner::run(graph::IndexedAdjacency& g, const stream::EdgeBatch& batch,
                  UpdateMode mode, stream::OcaProbe* probe,
                  const stream::ReorderedBatch* reordered)
{
    exec_.ensure_lock_keys(g.num_vertices() * 2);

    UpdateTelemetry& t = UpdateTelemetry::get();
    if (mode == UpdateMode::kHau) {
        const HauRunStats h = hau_.run_batch(g, batch, probe);
        last_hau_ = h;
        UpdateStats s;
        s.cycles = h.cycles;
        s.inserts = h.inserts;
        s.weight_updates = h.weight_updates;
        s.removes = h.removes;
        record_update(t, mode, s);
        t.hau_tasks.inc(h.tasks);
        t.hau_fifo_stall_cycles.inc(h.fifo_stall_cycles);
        for (const HauCoreStats& c : h.per_core) {
            t.hau_lines_local.inc(c.local_lines);
            t.hau_lines_remote.inc(c.remote_lines);
        }
        // Cumulative model state (cache contents and NoC windows persist
        // across batches), exported as gauges rather than deltas.
        const HauCacheTotals ct = hau_.cache_totals();
        t.hau_l1_hits.set(static_cast<double>(ct.l1_hits));
        t.hau_l1_misses.set(static_cast<double>(ct.l1_misses));
        t.hau_l2_hits.set(static_cast<double>(ct.l2_hits));
        t.hau_l2_misses.set(static_cast<double>(ct.l2_misses));
        t.hau_l3_hits.set(static_cast<double>(ct.l3_hits));
        t.hau_l3_misses.set(static_cast<double>(ct.l3_misses));
        t.noc_flits_data.set(
            static_cast<double>(hau_.noc().flits(PacketClass::kData)));
        t.noc_flits_task.set(
            static_cast<double>(hau_.noc().flits(PacketClass::kTask)));
        t.noc_mean_link_utilization.set(hau_.noc().mean_link_utilization());
        return s;
    }

    if (reordered == nullptr && (mode == UpdateMode::kReordered ||
                                 mode == UpdateMode::kReorderedUsc)) {
        reordered = &reorderer_.reorder(batch.edges(), default_pool());
    }

    SimContext ctx(exec_, sw_);
    switch (mode) {
      case UpdateMode::kBaseline:
        stream::apply_batch_baseline(g, batch, ctx, probe);
        break;
      case UpdateMode::kReordered:
        stream::apply_batch_reordered(g, batch, *reordered, ctx, probe);
        break;
      case UpdateMode::kReorderedUsc:
        stream::apply_batch_usc(g, batch, *reordered, ctx, probe);
        break;
      case UpdateMode::kHau:
        break; // handled above
    }
    const UpdateStats s = ctx.stats();
    record_update(t, mode, s);
    return s;
}

} // namespace igs::sim
