/**
 * @file
 * Hardware-Accelerated Update (HAU) simulator (paper §4.4).
 *
 * Models the paper's CPU-coupled acceleration on the Table-1 machine:
 *
 *  - software on the worker cores produces update tasks
 *    `<edge-data start address, current degree, target>` via `supply_task`;
 *  - each task is routed over the 4x4 mesh to the consuming core
 *    `1 + (vertex mod N)` (N = 15 worker cores; core 0 hosts the master
 *    thread, matching the SAGA-Bench setup of Fig 19);
 *  - a task MSHR is allocated on receipt and freed once the task enters the
 *    consumer's 32-entry FIFO; a full FIFO back-pressures acceptance;
 *  - the consuming cache controller fetches the vertex's edge-data
 *    cachelines through its private L1/L2 and the NUCA L3 (the vertex's
 *    lines are homed at its owning tile — first-touch arena placement), and
 *    scans each returned line with dedicated logic (no CPU search
 *    instructions);
 *  - if the target is not found, the write is handed to the core through
 *    the FIFO (append path);
 *  - insertions of a batch are fully processed before its deletions (the
 *    paper's update-ordering rule).
 *
 * The graph state is mutated through @ref igs::graph::IndexedAdjacency so
 * the scan lengths come from the real evolving structure while host time
 * stays linear.
 */
#ifndef IGS_SIM_HAU_H
#define IGS_SIM_HAU_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "graph/indexed_adjacency.h"
#include "sim/cache.h"
#include "sim/machine.h"
#include "sim/noc.h"
#include "stream/batch.h"
#include "stream/update_context.h"

namespace igs::sim {

/** Per-core HAU activity (Fig 19 / Fig 20 data). */
struct HauCoreStats {
    std::uint64_t tasks = 0;
    std::uint64_t lines = 0;        // edge-data cachelines fetched by the scan logic
    std::uint64_t local_lines = 0;  // served within the local tile
    std::uint64_t remote_lines = 0; // crossed the mesh
    double busy_cycles = 0.0;
};

/** Result of running one batch through HAU. */
struct HauRunStats {
    Cycles cycles = 0;
    std::uint64_t tasks = 0;
    std::uint64_t inserts = 0;
    std::uint64_t weight_updates = 0;
    std::uint64_t removes = 0;
    std::uint64_t fifo_stall_cycles = 0;
    std::vector<HauCoreStats> per_core;
};

/** Cumulative hit/miss totals over every HAU cache (telemetry export). */
struct HauCacheTotals {
    std::uint64_t l1_hits = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t l3_hits = 0;
    std::uint64_t l3_misses = 0;
};

/** The HAU engine; owns per-core caches and the NoC for one stream run. */
class HauSimulator {
  public:
    HauSimulator(const MachineParams& machine, const HauCostParams& costs);

    /**
     * Ingest `batch` into `g` through the HAU, returning modeled timing.
     * `probe`, when non-null, receives OCA's locality instrumentation
     * (the software side still maintains latest_bid).
     */
    HauRunStats run_batch(graph::IndexedAdjacency& g,
                          const stream::EdgeBatch& batch,
                          stream::OcaProbe* probe = nullptr);

    /** NoC carrying both data and task traffic. */
    const NocModel& noc() const { return *noc_; }

    /** Counterfactual NoC fed only the data traffic (Fig 20 comparison). */
    const NocModel& noc_without_tasks() const { return *noc_data_only_; }

    /** Cumulative hit/miss totals across all private caches + L3 slices. */
    HauCacheTotals cache_totals() const;

    const MachineParams& machine() const { return machine_; }

  private:
    struct Consumer {
        double time = 0.0;
        /** Completion times of the last `fifo_entries` accepted tasks. */
        std::vector<double> fifo_ring;
        std::size_t fifo_pos = 0;
        std::uint64_t accepted = 0;
    };

    /** One directed update sub-operation, as a HAU task. */
    struct Task {
        VertexId vertex = 0;
        Direction dir = Direction::kOut;
        double arrival = 0.0;
        std::uint32_t consumer = 0;
        std::uint32_t probes = 0;     // modeled scan length
        bool found = false;
        bool is_delete = false;
    };

    /** Outcome of one line fetch by the scan engine. */
    struct LineFetch {
        /** Cost when the fetch is overlapped with other work (the task's
         *  first line, prefetched from the task descriptor via the task
         *  MSHRs). */
        double throughput_cost = 0.0;
        /** Cost when the scan must wait for the line (subsequent lines of
         *  a scan — the paper's FSM fetches them sequentially). */
        double latency_cost = 0.0;
        bool local = true;
    };

    std::uint32_t consumer_of(VertexId v) const;
    LineFetch fetch_line(std::uint32_t core, VertexId v, Direction dir,
                         std::uint32_t line_index, Cycles now);
    void consume_phase(std::vector<std::vector<Task>>& queues,
                       HauRunStats& stats);
    /** Produce+consume all operations of one sub-phase (inserts or
     *  deletes); returns the sub-phase makespan start offset. */
    void run_subphase(graph::IndexedAdjacency& g,
                      const stream::EdgeBatch& batch, bool deletes,
                      stream::OcaProbe* probe, HauRunStats& stats);
    void barrier();

    MachineParams machine_;
    HauCostParams costs_;
    std::uint32_t num_consumers_;
    std::vector<CoreCacheHierarchy> core_caches_;
    std::vector<Cache> l3_slices_;
    std::unique_ptr<NocModel> noc_;
    std::unique_ptr<NocModel> noc_data_only_;
    std::vector<double> producer_time_;
    std::vector<Consumer> consumers_;
    double phase_start_ = 0.0;
    Rng jitter_;
};

} // namespace igs::sim

#endif // IGS_SIM_HAU_H
