/**
 * @file
 * Simulation-backed input-aware engine (primary bench/eval frontend).
 *
 * SimEngine drives the shared ABR/OCA decision pipeline (core/ingest.h)
 * with updates executed on the deterministic Table-1 timing model: per
 * batch, the chosen update path's cycles are booked by sim::UpdateRunner
 * instead of running on real threads.  It lives in sim/ — above core/ in
 * the module-layer DAG (tools/layers.toml) — so the portable engine core
 * never depends on the simulator.
 */
#ifndef IGS_SIM_SIM_ENGINE_H
#define IGS_SIM_SIM_ENGINE_H

#include "core/engine.h"
#include "graph/indexed_adjacency.h"
#include "sim/update_runner.h"

namespace igs::sim {

/**
 * Simulation-backed input-aware engine.  Owns the graph, the timing
 * model, and the controllers.
 */
class SimEngine {
  public:
    /** `pool` runs the *host-side* reorder passes; the modeled Table-1
     *  cycles are independent of it (see the determinism test in
     *  tests/test_core.cc: 1 worker and N workers are bit-identical). */
    SimEngine(const core::EngineConfig& config, const MachineParams& machine,
              const SwCostParams& sw, const HauCostParams& hw,
              std::size_t num_vertices, ThreadPool& pool = default_pool());

    /** The evolving graph (index-accelerated; see DESIGN.md). */
    graph::IndexedAdjacency& graph() { return graph_; }
    const graph::IndexedAdjacency& graph() const { return graph_; }

    /** Ingest one batch; runs ABR/OCA and the chosen update path. */
    core::BatchReport ingest(const stream::EdgeBatch& batch);

    /** True when a compute round is due (OCA may defer it). */
    bool compute_due() const { return compute_due_; }

    /**
     * Hand the accumulated modifications to the compute phase, advancing
     * the graph's snapshot epoch and stamping the work with it (the sim
     * frontend models publication; there is no host-side copy to pay).
     */
    core::PendingWork
    take_pending_work()
    {
        return pending_.hand_off(graph_.advance_epoch());
    }

    /**
     * Model a compute round of `compute_cycles` launched against the epoch
     * just handed off.  At pipeline depth >= 2 those cycles run on the
     * compute half of the machine concurrently with subsequent ingests, so
     * the following batches' update cycles are hidden under them until the
     * budget is exhausted — each such batch's BatchReport reports the
     * hidden amount in `update_hidden_cycles` (DESIGN.md §11).  At depth 1
     * the round serializes with ingest and nothing is hidden.
     */
    void note_compute_round(Cycles compute_cycles);

    /** Epoch-attributed variant: asserts the round was launched against
     *  the epoch most recently published by take_pending_work(), so a
     *  bench driving compute by hand cannot mis-book a round against a
     *  stale hand-off (bench_incremental's per-epoch cycle attribution
     *  relies on this). */
    void note_compute_round(Cycles compute_cycles, EpochId epoch);

    /** The underlying update runner (HAU/NoC inspection in benches). */
    UpdateRunner& runner() { return runner_; }

    const core::EngineConfig& config() const { return core_.config(); }

  private:
    core::detail::DecisionCore core_;
    graph::IndexedAdjacency graph_;
    UpdateRunner runner_;
    ThreadPool& pool_;
    /** Arena-backed reorderer, reused across batches (zero steady-state
     *  allocations on the radix path). */
    stream::Reorderer reorderer_;
    core::detail::PendingAccumulator pending_;
    bool compute_due_ = false;
    /** Remaining modeled compute cycles the next ingests can hide under
     *  (pipeline depth >= 2 only; see note_compute_round). */
    Cycles overlap_budget_ = 0;
};

} // namespace igs::sim

#endif // IGS_SIM_SIM_ENGINE_H
