/**
 * @file
 * Cache/NoC cost meter for locality renumbering (DESIGN.md §16).
 *
 * Replays the update phase's adjacency-row-header traffic through the
 * Table-1 memory model: one private L1/L2 hierarchy for the accessing
 * core, L3 slices homed round-robin across the mesh, and NoC round trips
 * for remote lines.  The caller feeds *physical* row placements (the
 * backend's `id_map().to_physical(v)`), so the same access stream is
 * priced under the identity layout and under a renumbered layout.
 *
 * A renumber pass itself is metered too (@ref charge_renumber_pass):
 * a bandwidth-bound streaming read+write of every row header of both
 * direction arrays, plus per-row scatter bookkeeping, after which the
 * caches are cold (the permute rewrote every line).  bench_renumber's
 * amortization accounting — is the layout win worth the pass? — is the
 * sum of both terms, fully deterministic and therefore goldenable.
 */
#ifndef IGS_SIM_RENUMBER_METER_H
#define IGS_SIM_RENUMBER_METER_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/cache.h"
#include "sim/machine.h"
#include "sim/noc.h"

namespace igs::sim {

/** Accumulated meter state (all cycle terms are modeled, not wall). */
struct RenumberMeterStats {
    /** Cycles charged to row-header accesses. */
    Cycles access_cycles = 0;
    /** Cycles charged to renumber passes. */
    Cycles renumber_cycles = 0;
    std::uint64_t accesses = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l3_hits = 0;
    std::uint64_t memory_fills = 0;
    std::uint64_t renumber_passes = 0;

    /** The amortized total the trigger policy is judged on. */
    Cycles total_cycles() const { return access_cycles + renumber_cycles; }
};

/** Deterministic row-header traffic meter (see file comment). */
class RenumberMeter {
  public:
    explicit RenumberMeter(const MachineParams& machine = {},
                           std::uint32_t rows_per_line = 8);

    /**
     * Model one adjacency-row-header touch at physical row `phys` of the
     * `dir` array; returns the charged latency.  The out- and in-arrays
     * occupy disjoint address regions, as in the real stores.
     */
    Cycles access_row(VertexId phys, Direction dir);

    /**
     * Charge one renumber pass over `num_vertices` rows (both direction
     * arrays, read+write) and cold the caches; returns the pass cost.
     */
    Cycles charge_renumber_pass(std::size_t num_vertices);

    const RenumberMeterStats& stats() const { return stats_; }
    const NocModel& noc() const { return noc_; }

  private:
    LineAddr row_line(VertexId phys, Direction dir) const;

    MachineParams machine_;
    std::uint32_t rows_per_line_;
    CoreCacheHierarchy private_caches_;
    std::vector<Cache> l3_slices_;
    NocModel noc_;
    Cycles now_ = 0;
    RenumberMeterStats stats_;
};

/**
 * Export the amortization headline as sim.renumber.* gauges:
 * hub-heavy total cycles with the trigger off vs on (pass cost
 * included), the saved difference, and the uniform stream's renumber
 * count (the skew gate's expected-zero).  Lives here — not in the
 * bench — so the key registration site is in src/ where the telemetry
 * contract checker audits it.
 */
void publish_renumber_headline(double hub_off_total_cycles,
                               double hub_on_total_cycles,
                               std::uint64_t uniform_renumbers);

} // namespace igs::sim

#endif // IGS_SIM_RENUMBER_METER_H
