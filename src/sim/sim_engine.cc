#include "sim/sim_engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/telemetry.h"
#include "core/ingest.h"

namespace igs::sim {

namespace {

/** Modeled-overlap telemetry.  Lazy for the same reason as the core
 *  pipeline counters: registering only on pipelined runs keeps the
 *  registry snapshot — and therefore every pre-pipeline golden — stable. */
struct OverlapTelemetry {
    telemetry::Counter& hidden_cycles;
    telemetry::Counter& overlapped_batches;

    static OverlapTelemetry&
    get()
    {
        auto& r = telemetry::Registry::global();
        static OverlapTelemetry t{
            r.counter("sim.pipeline.hidden_cycles"),
            r.counter("sim.pipeline.overlapped_batches"),
        };
        return t;
    }
};

} // namespace

SimEngine::SimEngine(const core::EngineConfig& config,
                     const MachineParams& machine, const SwCostParams& sw,
                     const HauCostParams& hw, std::size_t num_vertices,
                     ThreadPool& pool)
    : core_(config), graph_(num_vertices),
      runner_(machine, sw, hw, num_vertices, config.reorder_mode),
      pool_(pool), reorderer_(config.reorder_mode)
{
}

core::BatchReport
SimEngine::ingest(const stream::EdgeBatch& batch)
{
    namespace cd = core::detail;
    bool reorder = false;
    const stream::ReorderedBatch* rb = cd::reorder_and_reserve(
        core_, reorderer_, graph_, batch, pool_, reorder);
    core::BatchReport report = cd::drive_batch(
        core_, batch, reorder, rb, /*hau_available=*/true,
        [&](const cd::Dispatch& d, const stream::ReorderedBatch* rbi,
            stream::OcaProbe* probe, core::BatchReport& r) {
            const UpdateMode mode =
                d.reorder ? (d.usc ? UpdateMode::kReorderedUsc
                                   : UpdateMode::kReordered)
                          : (d.hau ? UpdateMode::kHau : UpdateMode::kBaseline);
            r.update = runner_.run(graph_, batch, mode, probe, rbi);
        });

    // Instrumentation work is parallel across the machine's workers; fold
    // it into the batch's modeled cycles and advance the virtual clocks so
    // subsequent batches see it.
    const double instr_parallel =
        report.instrumentation_cycles /
        static_cast<double>(runner_.machine().num_cores);
    runner_.exec().charge_all(instr_parallel);
    report.update.cycles += static_cast<Cycles>(instr_parallel);

    // Pipeline overlap model: while the previously launched compute round
    // still has cycles left on the compute half of the machine, this
    // batch's update runs concurrently with it — its cycles are "hidden"
    // up to the remaining budget.  The reported update cycles themselves
    // stay untouched (golden schema stability); consumers subtract
    // update_hidden_cycles to get the pipeline's critical-path cost.
    if (overlap_budget_ > 0) {
        const Cycles hidden =
            std::min<Cycles>(report.update.cycles, overlap_budget_);
        overlap_budget_ -= hidden;
        report.update_hidden_cycles = hidden;
        if (hidden > 0) {
            auto& t = OverlapTelemetry::get();
            t.hidden_cycles.inc(hidden);
            t.overlapped_batches.inc();
        }
    }

    pending_.note_batch(batch);
    compute_due_ = !report.defer_compute;
    return report;
}

void
SimEngine::note_compute_round(Cycles compute_cycles)
{
    overlap_budget_ = core_.config().pipeline_depth >= 2 ? compute_cycles : 0;
}

void
SimEngine::note_compute_round(Cycles compute_cycles, EpochId epoch)
{
    IGS_DCHECK(epoch == graph_.epoch());
    (void)epoch;
    note_compute_round(compute_cycles);
}

} // namespace igs::sim
