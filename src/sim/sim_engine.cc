#include "sim/sim_engine.h"

#include "core/ingest.h"

namespace igs::sim {

SimEngine::SimEngine(const core::EngineConfig& config,
                     const MachineParams& machine, const SwCostParams& sw,
                     const HauCostParams& hw, std::size_t num_vertices,
                     ThreadPool& pool)
    : core_(config), graph_(num_vertices),
      runner_(machine, sw, hw, num_vertices, config.reorder_mode),
      pool_(pool), reorderer_(config.reorder_mode)
{
}

core::BatchReport
SimEngine::ingest(const stream::EdgeBatch& batch)
{
    namespace cd = core::detail;
    bool reorder = false;
    const stream::ReorderedBatch* rb = cd::reorder_and_reserve(
        core_, reorderer_, graph_, batch, pool_, reorder);
    core::BatchReport report = cd::drive_batch(
        core_, batch, reorder, rb, /*hau_available=*/true,
        [&](const cd::Dispatch& d, const stream::ReorderedBatch* rbi,
            stream::OcaProbe* probe, core::BatchReport& r) {
            const UpdateMode mode =
                d.reorder ? (d.usc ? UpdateMode::kReorderedUsc
                                   : UpdateMode::kReordered)
                          : (d.hau ? UpdateMode::kHau : UpdateMode::kBaseline);
            r.update = runner_.run(graph_, batch, mode, probe, rbi);
        });

    // Instrumentation work is parallel across the machine's workers; fold
    // it into the batch's modeled cycles and advance the virtual clocks so
    // subsequent batches see it.
    const double instr_parallel =
        report.instrumentation_cycles /
        static_cast<double>(runner_.machine().num_cores);
    runner_.exec().charge_all(instr_parallel);
    report.update.cycles += static_cast<Cycles>(instr_parallel);

    pending_.note_batch(batch);
    compute_due_ = !report.defer_compute;
    return report;
}

} // namespace igs::sim
