/**
 * @file
 * 4x4 mesh network-on-chip model (Table 1).
 *
 * XY-routed mesh with 2-cycle hops and 256-bit links.  The model tracks
 * per-link traffic (flits) so packet latency can include a utilization-
 * dependent queueing term, and separates traffic classes (data/coherence
 * vs HAU task messages) so Fig 20's "increase in average packet latency"
 * can be reported per core.
 */
#ifndef IGS_SIM_NOC_H
#define IGS_SIM_NOC_H

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/machine.h"

namespace igs::sim {

/** Traffic class of a NoC packet. */
enum class PacketClass : std::uint8_t { kData = 0, kTask = 1 };

/** Per-core packet latency accounting. */
struct CoreNocStats {
    std::uint64_t packets = 0;
    double total_latency = 0.0;

    double
    average_latency() const
    {
        return packets == 0 ? 0.0 : total_latency / static_cast<double>(packets);
    }
};

/** Mesh NoC with XY routing and utilization-aware latency. */
class NocModel {
  public:
    explicit NocModel(const MachineParams& m);

    /** Manhattan hop count between two cores. */
    std::uint32_t hops(std::uint32_t from, std::uint32_t to) const;

    /**
     * Send a packet of `bytes` from core `from` to core `to` at time
     * `now`; returns the modeled delivery latency in cycles and updates
     * link-utilization and per-core statistics.
     */
    Cycles send(std::uint32_t from, std::uint32_t to, std::uint32_t bytes,
                PacketClass cls, Cycles now);

    /** Advance the utilization window (called by the driving simulator). */
    void observe_time(Cycles now);

    /** Per-source-core latency stats for the given traffic class. */
    const std::vector<CoreNocStats>& core_stats(PacketClass cls) const;

    /** Total flits injected for a traffic class. */
    std::uint64_t flits(PacketClass cls) const { return flits_[static_cast<int>(cls)]; }

    /** Mean link utilization in [0,1] over the observed window. */
    double mean_link_utilization() const;

  private:
    std::uint32_t x_of(std::uint32_t core) const { return core % dim_; }
    std::uint32_t y_of(std::uint32_t core) const { return core / dim_; }
    /** Directed link id between adjacent cores a -> b. */
    std::size_t link_id(std::uint32_t a, std::uint32_t b) const;

    /** Walk the XY route, charging each link; returns queueing delay. */
    double route(std::uint32_t from, std::uint32_t to, std::uint32_t flits);

    std::uint32_t dim_;
    Cycles hop_latency_;
    std::uint32_t link_bytes_per_cycle_;
    std::vector<double> link_flits_; // per directed link
    Cycles window_end_ = 1;
    std::uint64_t flits_[2] = {0, 0};
    std::vector<CoreNocStats> stats_[2];
};

} // namespace igs::sim

#endif // IGS_SIM_NOC_H
