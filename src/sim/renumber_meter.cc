#include "sim/renumber_meter.h"

#include "common/telemetry.h"

namespace igs::sim {

namespace {

/** Request-message size for a remote line fetch (address + header). */
constexpr std::uint32_t kReqBytes = 8;

} // namespace

RenumberMeter::RenumberMeter(const MachineParams& machine,
                             std::uint32_t rows_per_line)
    : machine_(machine), rows_per_line_(rows_per_line),
      private_caches_(machine), noc_(machine)
{
    IGS_CHECK_MSG(rows_per_line_ > 0, "rows_per_line must be positive");
    l3_slices_.reserve(machine_.num_cores);
    for (std::uint32_t c = 0; c < machine_.num_cores; ++c) {
        l3_slices_.emplace_back(machine_.l3_slice_bytes, machine_.l3_ways,
                                machine_.line_bytes);
    }
}

LineAddr
RenumberMeter::row_line(VertexId phys, Direction dir) const
{
    // Disjoint regions per direction array (bit 48 is far above any line
    // index a 32-bit vertex space can produce).
    const LineAddr base = static_cast<LineAddr>(phys) / rows_per_line_;
    return base | (dir == Direction::kIn ? (1ull << 48) : 0ull);
}

Cycles
RenumberMeter::access_row(VertexId phys, Direction dir)
{
    const LineAddr line = row_line(phys, dir);
    ++stats_.accesses;
    Cycles latency = 0;
    if (private_caches_.hit_l1(line)) {
        ++stats_.l1_hits;
        latency = machine_.l1_latency;
    } else if (private_caches_.hit_l2(line)) {
        ++stats_.l2_hits;
        private_caches_.fill_private(line);
        latency = machine_.l1_latency + machine_.l2_latency;
    } else {
        // L3 resolution: the line is homed at a slice by address; a remote
        // home pays the request/response NoC round trip.
        const auto home =
            static_cast<std::uint32_t>(line % machine_.num_cores);
        latency = machine_.l1_latency + machine_.l2_latency +
                  machine_.l3_bank_latency;
        if (home != 0) {
            latency += noc_.send(0, home, kReqBytes, PacketClass::kData,
                                 now_);
            latency += noc_.send(home, 0, machine_.line_bytes,
                                 PacketClass::kData, now_);
        }
        Cache& slice = l3_slices_[home];
        if (slice.lookup(line)) {
            ++stats_.l3_hits;
        } else {
            ++stats_.memory_fills;
            latency += machine_.dram_device_latency;
            slice.fill(line);
        }
        private_caches_.fill_private(line);
    }
    now_ += latency;
    stats_.access_cycles += latency;
    return latency;
}

Cycles
RenumberMeter::charge_renumber_pass(std::size_t num_vertices)
{
    // Streaming read (old placement) + write (new placement) of every row
    // header of both direction arrays — bandwidth-bound, so charged at the
    // aggregate DRAM rate — plus one cycle of scatter bookkeeping per row
    // moved.
    const std::uint64_t lines_per_dir =
        (num_vertices + rows_per_line_ - 1) / rows_per_line_;
    const double bytes = 2.0 /*read+write*/ * 2.0 /*out+in*/ *
                         static_cast<double>(lines_per_dir) *
                         machine_.line_bytes;
    const double bytes_per_cycle = machine_.dram_controllers *
                                   machine_.dram_gbps_per_controller /
                                   machine_.ghz;
    const auto pass =
        static_cast<Cycles>(bytes / bytes_per_cycle) +
        static_cast<Cycles>(2 * num_vertices);
    // The permute rewrote every row line: the private caches are cold
    // afterwards (the streaming pass evicted everything), but the pass's
    // *writes* leave the whole row region resident in the shared L3 —
    // write-allocate at the lines' home slices.
    private_caches_ = CoreCacheHierarchy(machine_);
    for (Cache& slice : l3_slices_) {
        slice = Cache(machine_.l3_slice_bytes, machine_.l3_ways,
                      machine_.line_bytes);
    }
    for (Direction dir : {Direction::kOut, Direction::kIn}) {
        for (std::uint64_t i = 0; i < lines_per_dir; ++i) {
            const LineAddr line =
                row_line(static_cast<VertexId>(i * rows_per_line_), dir);
            l3_slices_[line % machine_.num_cores].fill(line);
        }
    }
    now_ += pass;
    stats_.renumber_cycles += pass;
    ++stats_.renumber_passes;
    return pass;
}

void
publish_renumber_headline(double hub_off_total_cycles,
                          double hub_on_total_cycles,
                          std::uint64_t uniform_renumbers)
{
    auto& r = telemetry::Registry::global();
    r.gauge("sim.renumber.hub_off_total_cycles").set(hub_off_total_cycles);
    r.gauge("sim.renumber.hub_on_total_cycles").set(hub_on_total_cycles);
    r.gauge("sim.renumber.hub_amortized_saved_cycles")
        .set(hub_off_total_cycles - hub_on_total_cycles);
    r.gauge("sim.renumber.uniform_renumbers")
        .set(static_cast<double>(uniform_renumbers));
}

} // namespace igs::sim
