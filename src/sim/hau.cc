#include "sim/hau.h"

#include <algorithm>

#include "stream/updaters.h"

namespace igs::sim {

namespace {

/** Memory-controller tiles (mesh corners). */
constexpr std::uint32_t kMemTiles[4] = {0, 3, 12, 15};

/** Task message payload: addr(8) + degree(8) + target/weight(8+8). */
constexpr std::uint32_t kTaskBytes = 32;
/** Data request / response sizes. */
constexpr std::uint32_t kReqBytes = 8;
constexpr std::uint32_t kLineBytes = 72; // 64B line + header

} // namespace

HauSimulator::HauSimulator(const MachineParams& machine,
                           const HauCostParams& costs)
    : machine_(machine), costs_(costs),
      num_consumers_(machine.num_cores - 1),
      noc_(std::make_unique<NocModel>(machine)),
      noc_data_only_(std::make_unique<NocModel>(machine)),
      jitter_(0xBADCAB1Eull)
{
    core_caches_.reserve(machine.num_cores);
    l3_slices_.reserve(machine.num_cores);
    for (std::uint32_t c = 0; c < machine.num_cores; ++c) {
        core_caches_.emplace_back(machine);
        l3_slices_.emplace_back(machine.l3_slice_bytes, machine.l3_ways,
                                machine.line_bytes);
    }
    producer_time_.assign(machine.num_cores, 0.0);
    consumers_.resize(machine.num_cores);
    for (auto& c : consumers_) {
        c.fifo_ring.assign(machine.hau_fifo_entries, 0.0);
    }
}

HauCacheTotals
HauSimulator::cache_totals() const
{
    HauCacheTotals t;
    for (const CoreCacheHierarchy& cc : core_caches_) {
        t.l1_hits += cc.l1().hits();
        t.l1_misses += cc.l1().misses();
        t.l2_hits += cc.l2().hits();
        t.l2_misses += cc.l2().misses();
    }
    for (const Cache& slice : l3_slices_) {
        t.l3_hits += slice.hits();
        t.l3_misses += slice.misses();
    }
    return t;
}

std::uint32_t
HauSimulator::consumer_of(VertexId v) const
{
    // Core 0 hosts the master thread (SAGA-Bench setup, Fig 19); workers
    // are cores 1..15 and tasks hash over them.
    return 1 + (v % num_consumers_);
}

HauSimulator::LineFetch
HauSimulator::fetch_line(std::uint32_t core, VertexId v, Direction dir,
                         std::uint32_t line_index, Cycles now)
{
    // Arena layout: each (vertex, direction) region is private to the
    // vertex's owning tile; its lines are homed at that tile's L3 slice.
    const LineAddr region = (static_cast<LineAddr>(v) << 1) |
                            (dir == Direction::kIn ? 1 : 0);
    const LineAddr line = (region << 14) | (line_index & 0x3FFF);

    LineFetch f;
    CoreCacheHierarchy& cc = core_caches_[core];
    if (cc.hit_l1(line)) {
        f.throughput_cost = f.latency_cost =
            std::max<double>(machine_.l1_latency, costs_.line_scan);
        return f;
    }
    if (cc.hit_l2(line)) {
        cc.fill_private(line);
        f.throughput_cost = f.latency_cost =
            static_cast<double>(machine_.l1_latency + machine_.l2_latency);
        return f;
    }

    // Allocator-boundary sharing occasionally homes a line at a foreign
    // tile (the paper's observed 1-2% non-local accesses).
    const bool boundary_remote = jitter_.chance(costs_.boundary_remote_prob);
    const std::uint32_t home =
        boundary_remote ? 1 + ((v + 1 + line_index) % num_consumers_) : core;

    f.throughput_cost = costs_.line_throughput;
    f.latency_cost = static_cast<double>(
        machine_.l1_latency + machine_.l2_latency + machine_.l3_bank_latency);
    if (home != core) {
        f.local = false;
        const Cycles req =
            noc_->send(core, home, kReqBytes, PacketClass::kData, now);
        const Cycles resp =
            noc_->send(home, core, kLineBytes, PacketClass::kData, now);
        noc_data_only_->send(core, home, kReqBytes, PacketClass::kData, now);
        noc_data_only_->send(home, core, kLineBytes, PacketClass::kData, now);
        f.throughput_cost +=
            static_cast<double>(req + resp) * costs_.remote_exposed;
        f.latency_cost += static_cast<double>(req + resp);
    }

    if (!l3_slices_[home].lookup(line)) {
        // L3 miss: round trip to the nearest memory controller.
        std::uint32_t mem = kMemTiles[0];
        for (std::uint32_t t : kMemTiles) {
            if (noc_->hops(home, t) < noc_->hops(home, mem)) {
                mem = t;
            }
        }
        const Cycles mreq =
            noc_->send(home, mem, kReqBytes, PacketClass::kData, now);
        const Cycles mresp =
            noc_->send(mem, home, kLineBytes, PacketClass::kData, now);
        noc_data_only_->send(home, mem, kReqBytes, PacketClass::kData, now);
        noc_data_only_->send(mem, home, kLineBytes, PacketClass::kData, now);
        f.throughput_cost += costs_.dram_extra;
        f.latency_cost += static_cast<double>(
            machine_.dram_device_latency + mreq + mresp);
        l3_slices_[home].fill(line);
    }
    cc.fill_private(line);
    return f;
}

void
HauSimulator::barrier()
{
    double m = 0.0;
    for (double t : producer_time_) {
        m = std::max(m, t);
    }
    for (const Consumer& c : consumers_) {
        m = std::max(m, c.time);
    }
    for (double& t : producer_time_) {
        t = m;
    }
    for (Consumer& c : consumers_) {
        c.time = m;
    }
}

void
HauSimulator::run_subphase(graph::IndexedAdjacency& g,
                           const stream::EdgeBatch& batch, bool deletes,
                           stream::OcaProbe* probe, HauRunStats& stats)
{
    const std::size_t n = batch.edges().size();
    std::vector<std::vector<Task>> queues(machine_.num_cores);

    // ---- Production: workers 1..15 stream through contiguous shares of
    // the batch, applying the update functionally and emitting two tasks
    // (out at src's tile, in at dst's tile) per streamed edge.
    for (std::size_t i = 0; i < n; ++i) {
        const StreamEdge& e = batch.edges()[i];
        if (e.is_delete != deletes) {
            continue;
        }
        const std::uint32_t producer =
            1 + static_cast<std::uint32_t>(i * num_consumers_ / std::max<std::size_t>(n, 1));
        double& pt = producer_time_[producer];

        stream::touch_source(g, e.src, batch.id, probe);

        auto emit = [&](VertexId v, Direction dir, graph::ApplyResult r,
                        bool is_delete) {
            pt += costs_.supply_task;
            const std::uint32_t consumer = consumer_of(v);
            const Cycles t_now = static_cast<Cycles>(pt);
            const Cycles lat = noc_->send(producer, consumer, kTaskBytes,
                                          PacketClass::kTask, t_now);
            Task task;
            task.vertex = v;
            task.dir = dir;
            task.arrival = pt + static_cast<double>(lat);
            task.consumer = consumer;
            task.probes = r.probes;
            task.found = r.found;
            task.is_delete = is_delete;
            // Host-side modeling queue: the modeled HAU cost is charged
            // analytically here.  igs-lint: allow(hot-path-alloc)
            queues[consumer].push_back(task);
        };

        if (!deletes) {
            const auto r_out = g.apply_insert(
                e.src, Neighbor{e.dst, e.weight}, Direction::kOut);
            const auto r_in = g.apply_insert(
                e.dst, Neighbor{e.src, e.weight}, Direction::kIn);
            emit(e.src, Direction::kOut, r_out, false);
            emit(e.dst, Direction::kIn, r_in, false);
            stats.inserts += (r_out.found ? 0 : 1) + (r_in.found ? 0 : 1);
            stats.weight_updates += (r_out.found ? 1 : 0) + (r_in.found ? 1 : 0);
        } else {
            const auto r_out = g.apply_remove(e.src, e.dst, Direction::kOut);
            const auto r_in = g.apply_remove(e.dst, e.src, Direction::kIn);
            emit(e.src, Direction::kOut, r_out, true);
            emit(e.dst, Direction::kIn, r_in, true);
            stats.removes += (r_out.found ? 1 : 0) + (r_in.found ? 1 : 0);
        }
        stats.tasks += 2;
    }

    consume_phase(queues, stats);
}

void
HauSimulator::consume_phase(std::vector<std::vector<Task>>& queues,
                            HauRunStats& stats)
{
    for (std::uint32_t c = 0; c < machine_.num_cores; ++c) {
        auto& q = queues[c];
        if (q.empty()) {
            continue;
        }
        std::stable_sort(q.begin(), q.end(),
                         [](const Task& a, const Task& b) {
                             return a.arrival < b.arrival;
                         });
        Consumer& con = consumers_[c];
        HauCoreStats& cs = stats.per_core[c];
        for (const Task& t : q) {
            // FIFO backpressure: a task is accepted once the task admitted
            // `fifo_entries` earlier has completed (its MSHR is freed as
            // soon as the FIFO slot frees).
            const double fifo_free = con.fifo_ring[con.fifo_pos];
            const double accept = std::max(t.arrival, fifo_free);
            if (accept > t.arrival) {
                stats.fifo_stall_cycles +=
                    static_cast<Cycles>(accept - t.arrival);
            }
            const double start = std::max(con.time, accept);

            // Even a degree-0 vertex costs one line (slot-0 metadata).
            const std::uint32_t lines =
                std::max<std::uint32_t>(1, (t.probes + 7) / 8);
            double dur = costs_.task_setup;
            for (std::uint32_t li = 0; li < lines; ++li) {
                const LineFetch f = fetch_line(
                    c, t.vertex, t.dir, li,
                    static_cast<Cycles>(start + dur));
                // The first line of a task is prefetched from the task
                // descriptor (task MSHRs overlap it with earlier tasks);
                // the scan walks subsequent lines sequentially and eats
                // their full latency — the paper's "sophisticated only
                // enough for low-degree batches" design point.
                const double line_cost =
                    li == 0 ? f.throughput_cost
                            : std::max(f.throughput_cost,
                                       f.latency_cost *
                                           costs_.within_task_exposed);
                dur += line_cost + costs_.line_scan;
                ++cs.lines;
                if (f.local) {
                    ++cs.local_lines;
                } else {
                    ++cs.remote_lines;
                }
            }
            if (!t.is_delete && !t.found) {
                dur += costs_.core_append; // write handed over to the core
            } else if (t.is_delete && t.found) {
                dur += costs_.core_append; // compaction write
            } else if (t.found) {
                dur += 4.0; // weight accumulate into the fetched line
            }

            con.time = start + dur;
            con.fifo_ring[con.fifo_pos] = con.time;
            con.fifo_pos = (con.fifo_pos + 1) % con.fifo_ring.size();
            ++con.accepted;
            ++cs.tasks;
            cs.busy_cycles += dur;
        }
    }
}

HauRunStats
HauSimulator::run_batch(graph::IndexedAdjacency& g,
                        const stream::EdgeBatch& batch,
                        stream::OcaProbe* probe)
{
    HauRunStats stats;
    // igs-lint: allow(hot-path-alloc) -- per-run stats sizing (host-side)
    stats.per_core.resize(machine_.num_cores);

    barrier();
    double start = 0.0;
    for (double t : producer_time_) {
        start = std::max(start, t);
    }

    bool has_deletes = false;
    for (const StreamEdge& e : batch.edges()) {
        if (e.is_delete) {
            has_deletes = true;
            break;
        }
    }

    run_subphase(g, batch, /*deletes=*/false, probe, stats);
    barrier();
    if (has_deletes) {
        run_subphase(g, batch, /*deletes=*/true, probe, stats);
        barrier();
    }

    double end = 0.0;
    for (double t : producer_time_) {
        end = std::max(end, t);
    }
    stats.cycles = static_cast<Cycles>(end - start);
    return stats;
}

} // namespace igs::sim
