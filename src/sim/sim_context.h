/**
 * @file
 * Simulation execution context for the stream/ update kernels.
 *
 * Implements the context concept documented in stream/update_context.h:
 * kernels run sequentially on the host while SimContext books their cost
 * onto an @ref ExecSim virtual 16-worker schedule using @ref SwCostParams.
 * The result of a kernel run is an @ref UpdateStats with the batch's
 * modeled update cycles and operation counts.
 */
#ifndef IGS_SIM_SIM_CONTEXT_H
#define IGS_SIM_SIM_CONTEXT_H

#include <cmath>
#include <cstdint>

#include "common/types.h"
#include "sim/exec_sim.h"
#include "sim/machine.h"
#include "stream/update_stats.h"

namespace igs::sim {

/** The shared update-phase statistics vocabulary (stream/update_stats.h);
 *  aliased here so simulator code keeps its historical sim::UpdateStats
 *  spelling. */
using stream::UpdateStats;

/** Books kernel work onto a virtual worker schedule. */
class SimContext {
  public:
    static constexpr bool kSimulated = true;

    /**
     * @param exec shared scheduler (owns worker clocks and lock table;
     *        persists across the batches of one stream run)
     * @param costs software cost constants
     */
    SimContext(ExecSim& exec, const SwCostParams& costs)
        : exec_(exec), costs_(costs), phase_start_(exec.now()),
          lock_wait_start_(exec.total_lock_wait())
    {
    }

    /** Modeled statistics accumulated since construction. */
    UpdateStats
    stats() const
    {
        UpdateStats s = stats_;
        s.cycles = exec_.now() - phase_start_;
        s.lock_wait_cycles = exec_.total_lock_wait() - lock_wait_start_;
        return s;
    }

    template <typename F>
    void
    for_tasks(std::size_t n, std::size_t chunk, F&& body)
    {
        // Chunk-claim overhead is amortized per task; assignment itself is
        // per-task so virtual clocks stay synchronized (see
        // ExecSim::begin_task).
        const double per_task =
            costs_.task_overhead +
            costs_.chunk_overhead / static_cast<double>(std::max<std::size_t>(chunk, 1));
        for (std::size_t i = 0; i < n; ++i) {
            exec_.begin_task(per_task);
            body(i);
        }
    }

    /** Same replay as for_tasks; the host runs sequentially, so every task
     *  executes as worker 0 (the virtual schedule still spreads the cost). */
    template <typename F>
    void
    for_worker_tasks(std::size_t n, std::size_t chunk, F&& body)
    {
        for_tasks(n, chunk,
                  [&body](std::size_t i) { body(std::size_t{0}, i); });
    }

    std::size_t workers() const { return 1; }

    template <typename Graph, typename F>
    void
    locked_apply(Graph& g, VertexId v, Direction dir, F&& fn)
    {
        const auto r = fn();
        const std::size_t key =
            static_cast<std::size_t>(v) * 2 +
            (dir == Direction::kIn ? 1 : 0);
        // Edge-centric scans pay coherence misses (shared lines).
        exec_.locked(key, costs_.lock_acquire,
                     apply_cost(r, costs_.line_touch_shared));
        ++stats_.lock_acquisitions;
        note(r);
        (void)g;
    }

    template <typename F>
    void
    apply(F&& fn)
    {
        const auto r = fn();
        exec_.charge(apply_cost(r, costs_.line_touch));
        note(r);
    }

    void
    charge_sort(std::size_t n)
    {
        if (n == 0) {
            return;
        }
        const double levels = std::max(1.0, std::log2(static_cast<double>(n)));
        const double serial =
            static_cast<double>(n) * levels * costs_.sort_per_elem_level;
        // The fixed part (buffer allocation, fork/join latency) does not
        // parallelize; only the comparison work does.
        const double parallel =
            serial / (static_cast<double>(exec_.num_workers()) *
                      costs_.sort_parallel_efficiency) +
            costs_.sort_fixed;
        exec_.charge_all(parallel);
        stats_.sorted_edges += n;
    }

    void
    charge_pass_setup()
    {
        // Fork/join latency of a parallel region is serial.
        exec_.charge_all(costs_.pass_setup);
    }

    void
    charge_run_overhead()
    {
        exec_.charge(costs_.run_overhead);
        ++stats_.runs;
    }

    void
    charge_hash_build(std::size_t n)
    {
        exec_.charge(static_cast<double>(n) * costs_.hash_build);
        stats_.hash_build_edges += n;
    }

    void
    charge_coalesced_scan(std::size_t scanned_len, std::size_t hash_probes,
                          std::size_t inserts)
    {
        exec_.charge(costs_.lines(std::max(
                         1.0, static_cast<double>(scanned_len))) *
                         costs_.line_touch +
                     static_cast<double>(hash_probes) * costs_.hash_probe +
                     static_cast<double>(inserts) * costs_.insert);
        ++stats_.coalesced_scans;
        stats_.inserts += inserts;
        stats_.probes += scanned_len;
    }

    void
    end_phase()
    {
        exec_.end_phase();
    }

  private:
    /** Cycles of one duplicate-check-and-apply, from its ApplyResult. */
    template <typename R>
    double
    apply_cost(const R& r, double line_cost) const
    {
        // Even a zero-probe scan touches one line (array metadata/slot 0).
        const double lines = costs_.lines(
            std::max(1.0, static_cast<double>(r.probes)));
        const double scan =
            static_cast<double>(r.probes) * costs_.probe + lines * line_cost;
        // Insert if the scan found nothing; weight-accumulate or remove if
        // it did (remove vs update is not distinguishable here; the caller
        // counts removes via note()).
        const double tail = r.found ? costs_.weight_update : costs_.insert;
        return scan + tail;
    }

    template <typename R>
    void
    note(const R& r)
    {
        stats_.probes += r.probes;
        if (r.found) {
            ++stats_.weight_updates;
        } else {
            ++stats_.inserts;
        }
    }

    ExecSim& exec_;
    const SwCostParams& costs_;
    Cycles phase_start_;
    double lock_wait_start_ = 0.0;
    UpdateStats stats_;
};

} // namespace igs::sim

#endif // IGS_SIM_SIM_CONTEXT_H
