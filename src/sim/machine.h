/**
 * @file
 * Machine and cost-model parameters.
 *
 * @ref MachineParams mirrors the paper's Table 1 (the Sniper baseline used
 * for HAU evaluation).  @ref SwCostParams holds the per-operation cycle
 * costs the software-update timing model charges; DESIGN.md explains why
 * simulated cycles, not host wall-clock, are the primary metric (the host
 * has one core; the paper's effects are contention effects).
 *
 * The software cost constants were chosen so that single-threaded update
 * throughput lands in the hundreds-of-cycles-per-edge regime measured for
 * adjacency-list streaming ingestion on Skylake-class parts, and are held
 * fixed across every experiment — all reported numbers are *ratios* between
 * update paths under identical constants.
 */
#ifndef IGS_SIM_MACHINE_H
#define IGS_SIM_MACHINE_H

#include <cstdint>

#include "common/types.h"

namespace igs::sim {

/** Table-1 simulated architecture. */
struct MachineParams {
    // Cores.
    std::uint32_t num_cores = 16;
    double ghz = 2.5;

    // L1D: 32KB private, 8-way, 3 cycles.
    std::uint32_t l1_bytes = 32 * 1024;
    std::uint32_t l1_ways = 8;
    Cycles l1_latency = 3;

    // L2: 256KB private, 8-way, 8 cycles.
    std::uint32_t l2_bytes = 256 * 1024;
    std::uint32_t l2_ways = 8;
    Cycles l2_latency = 8;

    // L3: 16MB NUCA, 2MB slices, 16-way, 8-cycle bank access.
    std::uint32_t l3_slice_bytes = 2 * 1024 * 1024;
    std::uint32_t l3_ways = 16;
    Cycles l3_bank_latency = 8;

    // NoC: 4x4 mesh, 2-cycle hop, 256 bits/cycle per link per direction.
    std::uint32_t mesh_dim = 4;
    Cycles noc_hop_latency = 2;
    std::uint32_t noc_link_bytes_per_cycle = 32;

    // DRAM: 4 controllers, 17GB/s each, 40ns device access.
    std::uint32_t dram_controllers = 4;
    double dram_gbps_per_controller = 17.0;
    Cycles dram_device_latency = 100; // 40ns at 2.5GHz

    // Cache line.
    std::uint32_t line_bytes = 64;

    // MSHRs (reference interface + the paper's HAU additions).
    std::uint32_t baseline_mshrs = 10;
    std::uint32_t task_mshrs = 10;     // "ten new MSHR entries (2x increase)"
    std::uint32_t hau_fifo_entries = 32; // two 32-entry FIFO buffers
};

/** Per-operation cycle costs for the software update paths. */
struct SwCostParams {
    /** Scan cost per edge-array element examined (in-cache streaming). */
    double probe = 1.2;
    /** Memory-system cost per cacheline touched by a *vertex-centric* scan
     *  (RO/USC): one thread owns the vertex's array, so repeat touches hit
     *  its private caches (average of L2/L3/DRAM mix). */
    double line_touch = 22.0;
    /** Per-cacheline cost of a scan under a per-vertex lock in the
     *  edge-centric baseline: the array's lines ping-pong between the
     *  cores updating the vertex, so most touches are coherence misses
     *  served from remote caches.  (HAU removes exactly these remote
     *  accesses — paper §6.2.3 / Fig 20.) */
    double line_touch_shared = 95.0;
    /** Edge-array elements per cacheline (8-byte Neighbor, 64B lines). */
    double elems_per_line = 8.0;
    /** Append an edge (amortized realloc included). */
    double insert = 22.0;
    /** Weight accumulate on a duplicate. */
    double weight_update = 8.0;
    /** Remove an edge (swap with last). */
    double remove = 18.0;
    /** Acquire+release an uncontended per-vertex spinlock (two atomic RMWs
     *  plus fences). */
    double lock_acquire = 46.0;
    /** Per-edge loop bookkeeping in the edge-centric baseline. */
    double task_overhead = 10.0;
    /** Claim of one dynamic-scheduling chunk. */
    double chunk_overhead = 55.0;
    /** Per-vertex-run scheduling in the reordered path (the paper's "extra
     *  scheduling overheads" of lock elimination). */
    double run_overhead = 85.0;
    /** Stable sort: cycles per element per log2-level (single thread). */
    double sort_per_elem_level = 6.0;
    /** Parallel-sort efficiency (merge tail, work imbalance). */
    double sort_parallel_efficiency = 0.70;
    /** Fixed cost per sort invocation (buffer setup, fork/join). */
    double sort_fixed = 12000.0;
    /** Fixed cost per update pass (parallel-region fork/join; the
     *  reordered path pays it twice per batch, the baseline once — a key
     *  contributor to RO's losses on small batches). */
    double pass_setup = 12000.0;
    /** USC: insert one edge into the run's hash table. */
    double hash_build = 15.0;
    /** USC: one hash lookup per scanned edge-array element. */
    double hash_probe = 7.0;

    /** Cachelines covering `n` consecutive 8-byte elements. */
    double
    lines(double n) const
    {
        return n <= 0 ? 0.0 : 1.0 + (n - 1.0) / elems_per_line;
    }
};

/** Cycle costs of the HAU hardware path (paper §4.4). */
struct HauCostParams {
    /** supply_task instruction + NoC injection at the producing core. */
    double supply_task = 6.0;
    /** fetch_task + FIFO pop + scan-engine setup at the consuming core. */
    double task_setup = 10.0;
    /** Dedicated-logic compare of one cacheline (8 elements) — replaces 8+
     *  CPU search instructions. */
    double line_scan = 2.0;
    /**
     * Per-line *throughput* cost of the controller's fetch pipeline.  The
     * controller drains its FIFO back to back and the task MSHRs let line
     * fetches overlap with scanning, so consumption is bandwidth-bound,
     * not latency-bound; the hit level (tracked through the cache model)
     * adds the extra terms below rather than its full latency.
     */
    double line_throughput = 10.0;
    /** Extra throughput cost when the line came from DRAM. */
    double dram_extra = 20.0;
    /** Fraction of a remote line's NoC latency that the pipeline cannot
     *  hide. */
    double remote_exposed = 0.5;
    /**
     * Fraction of an L3/DRAM line's latency exposed on the second and
     * later lines of one task's scan.  The engine pipelines a few lines
     * ahead within a scan, partially hiding off-chip latency; L1/L2 hits
     * are already cheap and unaffected.
     */
    double within_task_exposed = 0.35;
    /** Handing a write back to the core + append. */
    double core_append = 30.0;
    /** Probability a line fetch crosses to another tile due to allocator
     *  boundary sharing (models the paper's observed 1-2% non-local
     *  accesses; see DESIGN.md). */
    double boundary_remote_prob = 0.015;
};

} // namespace igs::sim

#endif // IGS_SIM_MACHINE_H
