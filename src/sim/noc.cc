#include "sim/noc.h"

#include <algorithm>
#include <cmath>

namespace igs::sim {

NocModel::NocModel(const MachineParams& m)
    : dim_(m.mesh_dim),
      hop_latency_(m.noc_hop_latency),
      link_bytes_per_cycle_(m.noc_link_bytes_per_cycle)
{
    IGS_CHECK(dim_ >= 1);
    // 4 directed links per node is an upper bound; index by (node, dir).
    link_flits_.assign(static_cast<std::size_t>(dim_) * dim_ * 4, 0.0);
    stats_[0].resize(static_cast<std::size_t>(dim_) * dim_);
    stats_[1].resize(static_cast<std::size_t>(dim_) * dim_);
}

std::uint32_t
NocModel::hops(std::uint32_t from, std::uint32_t to) const
{
    const auto dx = static_cast<std::int32_t>(x_of(from)) -
                    static_cast<std::int32_t>(x_of(to));
    const auto dy = static_cast<std::int32_t>(y_of(from)) -
                    static_cast<std::int32_t>(y_of(to));
    return static_cast<std::uint32_t>(std::abs(dx) + std::abs(dy));
}

std::size_t
NocModel::link_id(std::uint32_t a, std::uint32_t b) const
{
    // Direction encoding: 0=+x, 1=-x, 2=+y, 3=-y.
    std::uint32_t dir = 0;
    if (x_of(b) == x_of(a) + 1) {
        dir = 0;
    } else if (x_of(a) == x_of(b) + 1) {
        dir = 1;
    } else if (y_of(b) == y_of(a) + 1) {
        dir = 2;
    } else {
        dir = 3;
    }
    return static_cast<std::size_t>(a) * 4 + dir;
}

double
NocModel::route(std::uint32_t from, std::uint32_t to, std::uint32_t flits)
{
    // XY routing: travel x first, then y; accumulate a queueing penalty
    // from the utilization of each traversed link.
    double queue_delay = 0.0;
    std::uint32_t cur = from;
    const double window = static_cast<double>(std::max<Cycles>(window_end_, 1));
    auto traverse = [&](std::uint32_t next) {
        const std::size_t id = link_id(cur, next);
        const double util =
            std::min(0.95, link_flits_[id] / window);
        // M/M/1-style waiting factor, scaled to one hop's service time.
        queue_delay += util / (1.0 - util) * static_cast<double>(hop_latency_);
        link_flits_[id] += flits;
        cur = next;
    };
    while (x_of(cur) != x_of(to)) {
        const std::uint32_t next =
            x_of(cur) < x_of(to) ? cur + 1 : cur - 1;
        traverse(next);
    }
    while (y_of(cur) != y_of(to)) {
        const std::uint32_t next =
            y_of(cur) < y_of(to) ? cur + dim_ : cur - dim_;
        traverse(next);
    }
    return queue_delay;
}

Cycles
NocModel::send(std::uint32_t from, std::uint32_t to, std::uint32_t bytes,
               PacketClass cls, Cycles now)
{
    observe_time(now);
    const std::uint32_t flit_count =
        std::max<std::uint32_t>(1, (bytes + link_bytes_per_cycle_ - 1) /
                                       link_bytes_per_cycle_);
    flits_[static_cast<int>(cls)] += flit_count;

    if (from == to) {
        // Local tile: no network traversal, just the interface crossing.
        auto& s = stats_[static_cast<int>(cls)][from];
        ++s.packets;
        s.total_latency += 1.0;
        return 1;
    }

    const std::uint32_t h = hops(from, to);
    const double queue_delay = route(from, to, flit_count);
    const double latency = static_cast<double>(h) * hop_latency_ +
                           (flit_count - 1) + queue_delay + 1.0;
    auto& s = stats_[static_cast<int>(cls)][from];
    ++s.packets;
    s.total_latency += latency;
    return static_cast<Cycles>(latency);
}

void
NocModel::observe_time(Cycles now)
{
    window_end_ = std::max(window_end_, now);
}

const std::vector<CoreNocStats>&
NocModel::core_stats(PacketClass cls) const
{
    return stats_[static_cast<int>(cls)];
}

double
NocModel::mean_link_utilization() const
{
    double total = 0.0;
    for (double f : link_flits_) {
        total += f;
    }
    const double window = static_cast<double>(std::max<Cycles>(window_end_, 1));
    return total / (window * static_cast<double>(link_flits_.size()));
}

} // namespace igs::sim
