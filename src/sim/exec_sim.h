/**
 * @file
 * Virtual parallel-execution scheduler for software update timing.
 *
 * Replays a deterministic sequential traversal of an update kernel while
 * modeling how the paper's 16-worker machine would have executed it:
 *
 *  - dynamic chunk scheduling: each chunk of tasks is claimed by the
 *    worker with the smallest current time (greedy list scheduling — the
 *    steady state OpenMP `schedule(dynamic)` converges to);
 *  - per-vertex lock resources: a critical section on (vertex, direction)
 *    starts no earlier than the lock's availability time; the waiting
 *    worker's clock absorbs the wait, reproducing the paper's observation
 *    that baseline lock waits scale with the locked vertex's edge-array
 *    scan length;
 *  - barriers: `end_phase` advances every worker to the phase makespan.
 *
 * All times are in cycles of the Table-1 machine.  Lock availability times
 * persist across batches (stale entries are in the past and harmless).
 */
#ifndef IGS_SIM_EXEC_SIM_H
#define IGS_SIM_EXEC_SIM_H

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/machine.h"

namespace igs::sim {

/** Virtual fork-join scheduler with lock resources. */
class ExecSim {
  public:
    /**
     * @param num_workers parallel workers (paper: 16 cores)
     * @param num_lock_keys size of the lock-resource table
     *        (2 * num_vertices: one per vertex per direction)
     */
    ExecSim(std::uint32_t num_workers, std::size_t num_lock_keys);

    /** Grow the lock table (after the graph's vertex space grows). */
    void ensure_lock_keys(std::size_t num_lock_keys);

    /**
     * Claim the next task for the earliest worker and charge `cycles` of
     * scheduling overhead.  Subsequent charges bill that worker.
     *
     * Per-task earliest-worker assignment keeps the virtual clocks within
     * one task duration of each other — the discrete-event equivalent of
     * threads sharing a wall clock.  (Assigning whole chunks lets clocks
     * diverge by a chunk duration, and lock-availability comparisons then
     * manufacture phantom waits; chunk-claim overhead is instead amortized
     * into the per-task cycles by the caller.)
     */
    void begin_task(double cycles);

    /** Charge plain compute to the current worker. */
    void charge(double cycles);

    /**
     * Execute a critical section of `cycles` on `lock_key`, charging
     * `lock_overhead` for the acquire/release pair.  Returns the wait
     * time spent before the lock became available.
     */
    double locked(std::size_t lock_key, double lock_overhead, double cycles);

    /** Charge `cycles` to every worker (fully parallel region such as a
     *  parallel sort whose makespan was computed analytically). */
    void charge_all(double cycles);

    /** Barrier: all workers advance to the current makespan. */
    void end_phase();

    /** Current makespan over all workers. */
    Cycles
    now() const
    {
        double m = 0.0;
        for (double t : worker_time_) {
            m = std::max(m, t);
        }
        return static_cast<Cycles>(m);
    }

    std::uint32_t num_workers() const { return num_workers_; }

    /** Total lock-wait cycles accumulated so far. */
    double total_lock_wait() const { return total_lock_wait_; }

  private:
    std::uint32_t pick_earliest_worker() const;

    std::uint32_t num_workers_;
    std::vector<double> worker_time_;
    std::vector<double> lock_available_;
    std::uint32_t current_worker_ = 0;
    double total_lock_wait_ = 0.0;
};

} // namespace igs::sim

#endif // IGS_SIM_EXEC_SIM_H
