#include "sim/exec_sim.h"

#include <algorithm>

namespace igs::sim {

ExecSim::ExecSim(std::uint32_t num_workers, std::size_t num_lock_keys)
    : num_workers_(num_workers)
{
    IGS_CHECK(num_workers >= 1);
    worker_time_.assign(num_workers, 0.0);
    lock_available_.assign(num_lock_keys, 0.0);
}

void
ExecSim::ensure_lock_keys(std::size_t num_lock_keys)
{
    if (num_lock_keys > lock_available_.size()) {
        // igs-lint: allow(hot-path-alloc) -- grow-only lock-key table
        lock_available_.resize(num_lock_keys, 0.0);
    }
}

std::uint32_t
ExecSim::pick_earliest_worker() const
{
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < num_workers_; ++w) {
        if (worker_time_[w] < worker_time_[best]) {
            best = w;
        }
    }
    return best;
}

void
ExecSim::begin_task(double cycles)
{
    current_worker_ = pick_earliest_worker();
    worker_time_[current_worker_] += cycles;
}

void
ExecSim::charge(double cycles)
{
    worker_time_[current_worker_] += cycles;
}

double
ExecSim::locked(std::size_t lock_key, double lock_overhead, double cycles)
{
    IGS_DCHECK(lock_key < lock_available_.size());
    double& t = worker_time_[current_worker_];
    t += lock_overhead;
    const double acquire = std::max(t, lock_available_[lock_key]);
    const double wait = acquire - t;
    total_lock_wait_ += wait;
    const double release = acquire + cycles;
    lock_available_[lock_key] = release;
    t = release;
    return wait;
}

void
ExecSim::charge_all(double cycles)
{
    for (double& t : worker_time_) {
        t += cycles;
    }
}

void
ExecSim::end_phase()
{
    double m = 0.0;
    for (double t : worker_time_) {
        m = std::max(m, t);
    }
    for (double& t : worker_time_) {
        t = m;
    }
}

} // namespace igs::sim
