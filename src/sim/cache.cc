#include "sim/cache.h"

namespace igs::sim {

namespace {

std::uint32_t
round_down_pow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p * 2 <= v) {
        p *= 2;
    }
    return p;
}

} // namespace

Cache::Cache(std::uint32_t bytes, std::uint32_t ways, std::uint32_t line_bytes)
    : ways_(ways)
{
    IGS_CHECK(bytes > 0 && ways > 0 && line_bytes > 0);
    const std::uint32_t lines = bytes / line_bytes;
    IGS_CHECK(lines >= ways);
    num_sets_ = round_down_pow2(lines / ways);
    ways_storage_.resize(static_cast<std::size_t>(num_sets_) * ways_);
}

bool
Cache::lookup(LineAddr line)
{
    Way* set = &ways_storage_[set_index(line) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].line == line) {
            set[w].lru = ++tick_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

LineAddr
Cache::fill(LineAddr line)
{
    Way* set = &ways_storage_[set_index(line) * ways_];
    Way* victim = &set[0];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].line == line) {
            set[w].lru = ++tick_;
            return ~0ull; // already present
        }
        if (set[w].lru < victim->lru) {
            victim = &set[w];
        }
    }
    const LineAddr evicted = victim->line;
    victim->line = line;
    victim->lru = ++tick_;
    return evicted;
}

bool
Cache::contains(LineAddr line) const
{
    const Way* set = &ways_storage_[set_index(line) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].line == line) {
            return true;
        }
    }
    return false;
}

void
Cache::invalidate(LineAddr line)
{
    Way* set = &ways_storage_[set_index(line) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].line == line) {
            set[w].line = ~0ull;
            set[w].lru = 0;
            return;
        }
    }
}

CoreCacheHierarchy::CoreCacheHierarchy(const MachineParams& m)
    : l1_(m.l1_bytes, m.l1_ways, m.line_bytes),
      l2_(m.l2_bytes, m.l2_ways, m.line_bytes)
{
}

bool
CoreCacheHierarchy::hit_l1(LineAddr line)
{
    return l1_.lookup(line);
}

bool
CoreCacheHierarchy::hit_l2(LineAddr line)
{
    return l2_.lookup(line);
}

void
CoreCacheHierarchy::fill_private(LineAddr line)
{
    l2_.fill(line);
    l1_.fill(line);
}

} // namespace igs::sim
