/**
 * @file
 * Pending compute-phase work, accumulated per batch and handed off per
 * epoch.
 *
 * The engines (core::RealTimeEngine, sim::SimEngine) record every batch
 * into a PendingAccumulator; when a compute round is due (immediately, or
 * after OCA aggregates two batches) the accumulated work is handed off as
 * one @ref PendingWork stamped with the epoch of the snapshot it belongs
 * to (DESIGN.md §11).  Incremental algorithms consume the dirty-vertex and
 * edge-delta lists; the engine's snapshot publication consumes `affected`
 * as its copy-on-publish dirty set.
 *
 * Lives in stream/ (not core/) because the accumulation is a property of
 * the input stream, not of the decision logic — and the sim layer needs it
 * without dragging in core's controllers.  Layer rule: stream/ includes
 * only common/ (tools/layers.toml).
 */
#ifndef IGS_STREAM_PENDING_H
#define IGS_STREAM_PENDING_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "stream/batch.h"

namespace igs::stream {

/** Batch-span work handed to the compute phase. */
struct PendingWork {
    /** Unique vertices touched since the last compute round (sorted). */
    std::vector<VertexId> affected;
    /** Edge modifications since the last compute round. */
    std::vector<StreamEdge> inserted;
    std::vector<StreamEdge> deleted;
    /** How many batches this round aggregates (1 normally, 2 under OCA). */
    std::uint32_t batches = 0;
    /** Epoch of the snapshot this work was published against (0 when the
     *  caller uses the legacy epochless @ref PendingAccumulator::take). */
    EpochId epoch = 0;
};

/** Accumulates compute-phase work across (possibly aggregated) batches.
 *  Named note_batch (not add) so the whole-program analyzer's simple-name
 *  call graph keeps it distinct from the hot-path add() entry points. */
class PendingAccumulator {
  public:
    void
    note_batch(const EdgeBatch& batch)
    {
        for (const StreamEdge& e : batch.edges()) {
            affected_.push_back(e.src);
            affected_.push_back(e.dst);
            if (e.is_delete) {
                deleted_.push_back(e);
            } else {
                inserted_.push_back(e);
            }
        }
        ++batches_;
    }

    /**
     * Hand the accumulated work to the compute phase, stamped with the
     * epoch it was published under.  `affected` is deduplicated (sorted
     * unique) so snapshot publication copies each dirty vertex once.
     * The accumulator resets and its buffers are reusable.
     */
    PendingWork
    hand_off(EpochId epoch)
    {
        PendingWork w;
        std::sort(affected_.begin(), affected_.end());
        affected_.erase(std::unique(affected_.begin(), affected_.end()),
                        affected_.end());
        w.affected = std::move(affected_);
        w.inserted = std::move(inserted_);
        w.deleted = std::move(deleted_);
        w.batches = batches_;
        w.epoch = epoch;
        affected_.clear();
        inserted_.clear();
        deleted_.clear();
        batches_ = 0;
        return w;
    }

    /** Legacy epochless hand-off (pre-pipeline callers). */
    PendingWork take() { return hand_off(0); }

    std::uint32_t pending_batches() const { return batches_; }
    bool empty() const { return batches_ == 0 && affected_.empty(); }

  private:
    std::vector<VertexId> affected_;
    std::vector<StreamEdge> inserted_;
    std::vector<StreamEdge> deleted_;
    std::uint32_t batches_ = 0;
};

} // namespace igs::stream

#endif // IGS_STREAM_PENDING_H
