/**
 * @file
 * Execution contexts for the update kernels.
 *
 * The kernels in updaters.h are written once and instantiated against an
 * execution context that decides *how* tasks run:
 *
 *  - @ref RealContext — production mode: tasks run on a thread pool with
 *    real per-vertex spinlocks; all cost hooks are no-ops.
 *  - igs::sim::SimContext (src/sim/sim_context.h) — bench mode: tasks are
 *    replayed sequentially while a virtual 16-worker schedule with
 *    per-vertex lock resources accounts cycles on the paper's Table-1
 *    machine.  See DESIGN.md for why simulation is the primary metric.
 *
 * Context concept (duck-typed; both contexts implement it):
 *
 *   static constexpr bool kSimulated;
 *   void for_tasks(n, chunk, body);          // parallel loop, body(i)
 *   void for_worker_tasks(n, chunk, body);   // parallel loop, body(worker, i)
 *                                            // worker < workers(); stable id
 *   std::size_t workers();                   // max worker id bound + 1
 *   void locked_apply(graph, v, dir, fn);    // fn() -> ApplyResult under
 *                                            // (v,dir)'s lock
 *   void apply(fn);                          // fn() -> ApplyResult, no lock
 *   void charge_sort(n);                     // one stable sort of n edges
 *   void charge_pass_setup();                // per update pass
 *   void charge_run_overhead();              // per vertex run (RO sched)
 *   void charge_hash_build(n);               // USC table build, n edges
 *   void charge_coalesced_scan(len, probes, inserts);  // USC single scan
 *   void end_phase();                        // join / virtual barrier
 */
#ifndef IGS_STREAM_UPDATE_CONTEXT_H
#define IGS_STREAM_UPDATE_CONTEXT_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/flat_table.h"
#include "common/spinlock.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace igs::stream {

/** Default chunk of edges claimed per dynamic-scheduling grab (baseline). */
inline constexpr std::size_t kEdgeChunk = 256;
/** Default chunk of vertex runs claimed per grab (reordered updates). */
inline constexpr std::size_t kRunChunk = 8;

/**
 * OCA's online inter-batch locality instrumentation (paper §5): counts
 * unique sources in the current batch and how many of them also appeared
 * in the immediately preceding batch.
 */
class OcaProbe {
  public:
    /** Record a first-touch of a source whose previous batch id was
     *  `prev_bid`, in batch `bid`.  Batch ids are 1-based; a prev_bid of
     *  0 means the vertex was never seen. */
    void
    note(std::uint64_t prev_bid, std::uint64_t bid)
    {
        nodes_.fetch_add(1, std::memory_order_relaxed);
        if (prev_bid != 0 && prev_bid + 1 == bid) {
            overlap_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    std::uint64_t
    unique_nodes() const
    {
        return nodes_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    overlapping_nodes() const
    {
        return overlap_.load(std::memory_order_relaxed);
    }

    /** overlap_counter / node_counter, the paper's locality measure. */
    double
    ratio() const
    {
        const std::uint64_t n = nodes_.load(std::memory_order_relaxed);
        return n == 0 ? 0.0
                      : static_cast<double>(
                            overlap_.load(std::memory_order_relaxed)) /
                            static_cast<double>(n);
    }

  private:
    std::atomic<std::uint64_t> overlap_{0};
    std::atomic<std::uint64_t> nodes_{0};
};

/**
 * Per-worker USC coalescing tables, reusable across batches.  Owned by the
 * engine (so capacity survives between ingests) and lent to RealContext;
 * a context constructed without one falls back to internal storage.
 */
struct UscScratch {
    std::vector<FlatWeightTable> tables;
};

/** Production context: real parallelism, real locks, no cost accounting. */
class RealContext {
  public:
    static constexpr bool kSimulated = false;

    explicit RealContext(ThreadPool& pool = default_pool(),
                         UscScratch* usc = nullptr)
        : pool_(pool), usc_(usc != nullptr ? usc : &own_usc_)
    {
        // Sized up front: usc_table() is called from inside parallel
        // regions, where growing the vector would race.
        if (usc_->tables.size() < pool_.size()) {
            usc_->tables.resize(pool_.size());
        }
    }

    template <typename F>
    void
    for_tasks(std::size_t n, std::size_t chunk, F&& body)
    {
        pool_.parallel_for(0, n, body, chunk);
    }

    /** Parallel loop whose body also receives a stable worker id, so it can
     *  address per-worker scratch (e.g. @ref usc_table) without locking. */
    template <typename F>
    void
    for_worker_tasks(std::size_t n, std::size_t chunk, F&& body)
    {
        pool_.parallel_chunks(
            0, n,
            [&body](std::size_t tid, std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                    body(tid, i);
                }
            },
            chunk);
    }

    std::size_t workers() const { return pool_.size(); }

    /** Reusable coalescing table of `worker` (never shrunk). */
    FlatWeightTable& usc_table(std::size_t worker)
    {
        return usc_->tables[worker];
    }

    template <typename Graph, typename F>
    void
    locked_apply(Graph& g, VertexId v, Direction dir, F&& fn)
    {
        SpinlockGuard lk(g.lock(v, dir));
        (void)fn();
    }

    template <typename F>
    void
    apply(F&& fn)
    {
        (void)fn();
    }

    void charge_sort(std::size_t) {}
    void charge_pass_setup() {}
    void charge_run_overhead() {}
    void charge_hash_build(std::size_t) {}
    void charge_coalesced_scan(std::size_t, std::size_t, std::size_t) {}
    void end_phase() {}

    ThreadPool& pool() { return pool_; }

  private:
    ThreadPool& pool_;
    UscScratch* usc_;
    UscScratch own_usc_; // fallback when no engine-owned scratch is lent
};

} // namespace igs::stream

#endif // IGS_STREAM_UPDATE_CONTEXT_H
