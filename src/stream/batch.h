/**
 * @file
 * Input batch representation and per-batch degree statistics.
 *
 * An input batch is a fixed-size slice of the edge stream (paper §3.1).
 * Batch-level degree concepts: the degree of vertex v *in a batch* is the
 * number of batch edges incident to v as source (out) or destination (in);
 * N(k) is the number of batch vertices with degree k.
 */
#ifndef IGS_STREAM_BATCH_H
#define IGS_STREAM_BATCH_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace igs::stream {

/**
 * A batch of streamed graph modifications, in arrival order.
 *
 * The edge array is filled through @ref set_edges / @ref push_edge so the
 * batch can cache per-batch facts at construction time instead of paying
 * extra scans in the update hot path — currently whether the batch contains
 * any deletion (the baseline kernel's second pass is skipped using it).
 */
class EdgeBatch {
  public:
    /** 1-based batch sequence number (0 = "no batch yet" in latest_bid). */
    std::uint64_t id = 1;

    EdgeBatch() = default;
    EdgeBatch(std::uint64_t bid, std::vector<StreamEdge> e) : id(bid)
    {
        set_edges(std::move(e));
    }

    /** Replace the batch contents, refreshing the cached flags. */
    void
    set_edges(std::vector<StreamEdge> e)
    {
        edges_ = std::move(e);
        has_deletes_ = false;
        for (const StreamEdge& edge : edges_) {
            if (edge.is_delete) {
                has_deletes_ = true;
                break;
            }
        }
    }

    /** Append one modification, keeping the cached flags current. */
    void
    push_edge(const StreamEdge& e)
    {
        has_deletes_ = has_deletes_ || e.is_delete;
        edges_.push_back(e);
    }

    const std::vector<StreamEdge>& edges() const { return edges_; }

    /** Cached at fill time: does the batch contain any deletion? */
    bool has_deletes() const { return has_deletes_; }

    std::size_t size() const { return edges_.size(); }
    bool empty() const { return edges_.empty(); }

  private:
    std::vector<StreamEdge> edges_;
    bool has_deletes_ = false;
};

/** Degree statistics of one batch, as used by the characterization study. */
struct BatchDegreeStats {
    /** Max #edges sourced at a single vertex. */
    std::uint32_t max_out_degree = 0;
    /** Max #edges targeting a single vertex. */
    std::uint32_t max_in_degree = 0;
    /** Unique sources / destinations in the batch. */
    std::uint32_t unique_sources = 0;
    std::uint32_t unique_destinations = 0;
    /** N(k) over batch out-degrees and in-degrees. */
    Histogram out_degree_histogram;
    Histogram in_degree_histogram;
};

/**
 * Compute full degree statistics of a batch (characterization/bench path;
 * the online ABR metric in src/core is the cheap alternative).
 */
BatchDegreeStats compute_batch_degree_stats(std::span<const StreamEdge> edges);

} // namespace igs::stream

#endif // IGS_STREAM_BATCH_H
