/**
 * @file
 * Input batch representation and per-batch degree statistics.
 *
 * An input batch is a fixed-size slice of the edge stream (paper §3.1).
 * Batch-level degree concepts: the degree of vertex v *in a batch* is the
 * number of batch edges incident to v as source (out) or destination (in);
 * N(k) is the number of batch vertices with degree k.
 */
#ifndef IGS_STREAM_BATCH_H
#define IGS_STREAM_BATCH_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace igs::stream {

/** A batch of streamed graph modifications, in arrival order. */
struct EdgeBatch {
    /** 1-based batch sequence number (0 = "no batch yet" in latest_bid). */
    std::uint64_t id = 1;
    std::vector<StreamEdge> edges;

    std::size_t size() const { return edges.size(); }
    bool empty() const { return edges.empty(); }
};

/** Degree statistics of one batch, as used by the characterization study. */
struct BatchDegreeStats {
    /** Max #edges sourced at a single vertex. */
    std::uint32_t max_out_degree = 0;
    /** Max #edges targeting a single vertex. */
    std::uint32_t max_in_degree = 0;
    /** Unique sources / destinations in the batch. */
    std::uint32_t unique_sources = 0;
    std::uint32_t unique_destinations = 0;
    /** N(k) over batch out-degrees and in-degrees. */
    Histogram out_degree_histogram;
    Histogram in_degree_histogram;
};

/**
 * Compute full degree statistics of a batch (characterization/bench path;
 * the online ABR metric in src/core is the cheap alternative).
 */
BatchDegreeStats compute_batch_degree_stats(std::span<const StreamEdge> edges);

} // namespace igs::stream

#endif // IGS_STREAM_BATCH_H
