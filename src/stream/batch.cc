#include "stream/batch.h"

#include <unordered_map>

namespace igs::stream {

BatchDegreeStats
compute_batch_degree_stats(std::span<const StreamEdge> edges)
{
    BatchDegreeStats s;
    std::unordered_map<VertexId, std::uint32_t> out_deg;
    std::unordered_map<VertexId, std::uint32_t> in_deg;
    out_deg.reserve(edges.size());
    in_deg.reserve(edges.size());
    for (const StreamEdge& e : edges) {
        ++out_deg[e.src];
        ++in_deg[e.dst];
    }
    s.unique_sources = static_cast<std::uint32_t>(out_deg.size());
    s.unique_destinations = static_cast<std::uint32_t>(in_deg.size());
    for (const auto& [v, d] : out_deg) {
        s.max_out_degree = std::max(s.max_out_degree, d);
        s.out_degree_histogram.add(d);
    }
    for (const auto& [v, d] : in_deg) {
        s.max_in_degree = std::max(s.max_in_degree, d);
        s.in_degree_histogram.add(d);
    }
    return s;
}

} // namespace igs::stream
