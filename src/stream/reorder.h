/**
 * @file
 * Batch reordering (RO, paper §3.2).
 *
 * Reorganizes an input batch so that all edges of one vertex are contiguous
 * ("clustered"), enabling lock-free vertex-centric updates: ordering the
 * batch by source yields the out-edge update order, and a second ordering by
 * destination yields the in-edge order ("two reordered input batches which
 * must each be updated separately").  Within a vertex's run, arrival order
 * is preserved (stability) so insert-before-delete semantics and duplicate
 * resolution stay deterministic.
 *
 * Two host implementations produce byte-identical reorderings:
 *
 *  - @ref ReorderMode::kComparison — the paper's two parallel stable sorts
 *    plus a serial run-index scan (also exposed as the free function
 *    @ref reorder_batch, the test oracle);
 *  - @ref ReorderMode::kRadix — a stable LSD counting/radix pipeline: one
 *    fused pass histograms the batch by source and destination low digits
 *    *and* finds the max vertex id (folding in the engine's
 *    ensure-capacity scan), edges are then scattered into preallocated
 *    flat buffers, and run boundaries fall out of the histogram prefix
 *    sums.  All state lives in a reusable @ref ReorderScratch arena, so
 *    steady-state reordering performs zero heap allocations.
 *
 * The engine executes the radix path by default (EngineConfig::reorder_mode)
 * while the simulator keeps charging the paper's parallel-stable-sort cost —
 * host execution changed, the Table-1 machine model did not.
 */
#ifndef IGS_STREAM_REORDER_H
#define IGS_STREAM_REORDER_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"

namespace igs::stream {

/** A contiguous run of equal-key edges in a reordered batch. */
struct VertexRun {
    VertexId vertex = 0;
    std::uint32_t begin = 0; // index into the sorted edge array
    std::uint32_t end = 0;

    std::uint32_t size() const { return end - begin; }

    friend bool operator==(const VertexRun&, const VertexRun&) = default;
};

/** One direction of a reordered batch: sorted edges plus its run index. */
struct ReorderedDirection {
    std::vector<StreamEdge> edges;
    std::vector<VertexRun> runs;
};

/** Both reordered views of one input batch. */
struct ReorderedBatch {
    /** Sorted by source (drives out-edge updates). */
    ReorderedDirection by_src;
    /** Sorted by destination (drives in-edge updates). */
    ReorderedDirection by_dst;
    /** Original batch size (for cost accounting). */
    std::size_t batch_size = 0;
};

/**
 * Reorder `edges` for lock-free vertex-centric updates (comparison-sort
 * path, allocating fresh buffers).  Kept as the reference implementation
 * and property-test oracle; hot paths use @ref Reorderer instead.
 *
 * Cost: two parallel stable sorts of the batch plus two linear run-index
 * scans — the software overhead ABR weighs against lock savings.
 */
ReorderedBatch reorder_batch(std::span<const StreamEdge> edges,
                             ThreadPool& pool);

/** Build the run index of an already-sorted edge array. */
std::vector<VertexRun> build_runs(std::span<const StreamEdge> sorted,
                                  Direction key);

/** Host algorithm used to produce a ReorderedBatch (identical output). */
enum class ReorderMode {
    kRadix,      ///< stable counting/radix scatter, allocation-free reuse
    kComparison, ///< the paper's parallel stable sorts (oracle path)
};

const char* to_string(ReorderMode mode);

/**
 * Reusable buffers of the radix reorder pipeline.  Owned by a @ref
 * Reorderer; grows to the largest batch seen and is never shrunk, so
 * steady-state ingest reorders without touching the allocator.
 */
struct ReorderScratch {
    /** The output being built; storage persists across batches. */
    ReorderedBatch rb;
    /** Ping-pong buffer for multi-pass radix scatters. */
    std::vector<StreamEdge> tmp;
    /** Per-worker histograms / scatter offsets (worker-major rows). */
    std::vector<std::uint32_t> hist;
    /** Fused-pass destination-digit histograms (worker-major rows). */
    std::vector<std::uint32_t> hist_dst;
    /** Contiguous per-worker input chunk bounds (size workers + 1). */
    std::vector<std::size_t> bounds;
    /** Per-worker run/boundary counts for parallel run-index builds. */
    std::vector<std::uint32_t> run_counts;
    /** Per-worker max vertex id seen by the fused histogram pass. */
    std::vector<VertexId> worker_max;
};

/**
 * Reusable batch reorderer: produces the same ReorderedBatch as
 * @ref reorder_batch through the configured host algorithm, into
 * arena-owned storage that is recycled across batches.
 */
class Reorderer {
  public:
    explicit Reorderer(ReorderMode mode = ReorderMode::kRadix)
        : mode_(mode)
    {
    }

    ReorderMode mode() const { return mode_; }

    /**
     * Reorder `edges` on `pool`.  The returned reference stays valid (and
     * its buffers stay reused) until the next reorder() call.  Also records
     * the batch's max vertex id — the radix path computes it in the fused
     * histogram pass, folding away the engine's ensure-capacity scan.
     */
    const ReorderedBatch& reorder(std::span<const StreamEdge> edges,
                                  ThreadPool& pool);

    /** Max vertex id of the last reordered batch (0 for an empty batch). */
    VertexId last_max_vertex() const { return max_vertex_; }

  private:
    ReorderMode mode_;
    ReorderScratch scratch_;
    VertexId max_vertex_ = 0;
};

/** Max vertex id named by `edges` (0 if empty) — the capacity scan. */
VertexId max_vertex_of(std::span<const StreamEdge> edges);

namespace detail {
/** Radix implementation (reorder_radix.cc); fills scratch.rb, returns max. */
VertexId reorder_batch_radix(std::span<const StreamEdge> edges,
                             ThreadPool& pool, ReorderScratch& scratch);
} // namespace detail

} // namespace igs::stream

#endif // IGS_STREAM_REORDER_H
