/**
 * @file
 * Batch reordering (RO, paper §3.2).
 *
 * Reorganizes an input batch so that all edges of one vertex are contiguous
 * ("clustered"), enabling lock-free vertex-centric updates: a parallel
 * *stable* sort by source yields the out-edge update order, and a second
 * stable sort by destination yields the in-edge order ("two reordered input
 * batches which must each be updated separately").  Stability preserves
 * arrival order within a vertex's run.
 */
#ifndef IGS_STREAM_REORDER_H
#define IGS_STREAM_REORDER_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"

namespace igs::stream {

/** A contiguous run of equal-key edges in a reordered batch. */
struct VertexRun {
    VertexId vertex = 0;
    std::uint32_t begin = 0; // index into the sorted edge array
    std::uint32_t end = 0;

    std::uint32_t size() const { return end - begin; }
};

/** One direction of a reordered batch: sorted edges plus its run index. */
struct ReorderedDirection {
    std::vector<StreamEdge> edges;
    std::vector<VertexRun> runs;
};

/** Both reordered views of one input batch. */
struct ReorderedBatch {
    /** Sorted by source (drives out-edge updates). */
    ReorderedDirection by_src;
    /** Sorted by destination (drives in-edge updates). */
    ReorderedDirection by_dst;
    /** Original batch size (for cost accounting). */
    std::size_t batch_size = 0;
};

/**
 * Reorder `edges` for lock-free vertex-centric updates.
 *
 * Cost: two parallel stable sorts of the batch plus two linear run-index
 * scans — the software overhead ABR weighs against lock savings.
 */
ReorderedBatch reorder_batch(std::span<const StreamEdge> edges,
                             ThreadPool& pool);

/** Build the run index of an already-sorted edge array. */
std::vector<VertexRun> build_runs(std::span<const StreamEdge> sorted,
                                  Direction key);

} // namespace igs::stream

#endif // IGS_STREAM_REORDER_H
