#include "stream/reorder.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/parallel_sort.h"
#include "common/telemetry.h"

namespace igs::stream {

namespace {

/** Reorderer telemetry, resolved once (see DESIGN.md §9 naming). */
struct ReorderTelemetry {
    telemetry::Counter& batches;
    telemetry::Counter& edges;
    telemetry::Counter& sort_passes;
    telemetry::Gauge& scratch_edges_watermark;
    telemetry::Gauge& scratch_hist_watermark;

    static ReorderTelemetry&
    get()
    {
        auto& r = telemetry::Registry::global();
        static ReorderTelemetry t{
            r.counter("stream.reorder.batches"),
            r.counter("stream.reorder.edges"),
            r.counter("stream.reorder.sort_passes"),
            r.gauge("stream.reorder.scratch_edges_watermark"),
            r.gauge("stream.reorder.scratch_hist_watermark"),
        };
        return t;
    }
};

} // namespace

std::vector<VertexRun>
build_runs(std::span<const StreamEdge> sorted, Direction key)
{
    // VertexRun offsets are 32-bit; a batch that would overflow them must
    // fail loudly rather than silently truncate run boundaries.
    IGS_CHECK_MSG(sorted.size() <=
                      std::numeric_limits<std::uint32_t>::max(),
                  "batch too large for 32-bit run offsets");
    std::vector<VertexRun> runs;
    const auto key_of = [key](const StreamEdge& e) {
        return key == Direction::kOut ? e.src : e.dst;
    };
    std::size_t i = 0;
    while (i < sorted.size()) {
        const VertexId v = key_of(sorted[i]);
        std::size_t j = i + 1;
        while (j < sorted.size() && key_of(sorted[j]) == v) {
            ++j;
        }
        // Comparison-oracle path: the paper's baseline reorder allocates,
        // and the oracle matches it.  igs-lint: allow(hot-path-alloc)
        runs.push_back(VertexRun{v, static_cast<std::uint32_t>(i),
                                 static_cast<std::uint32_t>(j)});
        i = j;
    }
    return runs;
}

ReorderedBatch
reorder_batch(std::span<const StreamEdge> edges, ThreadPool& pool)
{
    ReorderedBatch rb;
    rb.batch_size = edges.size();

    rb.by_src.edges.assign(edges.begin(), edges.end());
    parallel_stable_sort(
        rb.by_src.edges.begin(), rb.by_src.edges.end(),
        [](const StreamEdge& a, const StreamEdge& b) { return a.src < b.src; },
        pool);
    rb.by_src.runs = build_runs(rb.by_src.edges, Direction::kOut);

    rb.by_dst.edges.assign(edges.begin(), edges.end());
    parallel_stable_sort(
        rb.by_dst.edges.begin(), rb.by_dst.edges.end(),
        [](const StreamEdge& a, const StreamEdge& b) { return a.dst < b.dst; },
        pool);
    rb.by_dst.runs = build_runs(rb.by_dst.edges, Direction::kIn);

    return rb;
}

const char*
to_string(ReorderMode mode)
{
    switch (mode) {
      case ReorderMode::kRadix:
        return "radix";
      case ReorderMode::kComparison:
        return "comparison";
    }
    return "?";
}

VertexId
max_vertex_of(std::span<const StreamEdge> edges)
{
    VertexId max_v = 0;
    for (const StreamEdge& e : edges) {
        max_v = std::max({max_v, e.src, e.dst});
    }
    return max_v;
}

const ReorderedBatch&
Reorderer::reorder(std::span<const StreamEdge> edges, ThreadPool& pool)
{
    ReorderTelemetry& t = ReorderTelemetry::get();
    t.batches.inc();
    t.edges.inc(edges.size());
    t.sort_passes.inc(2); // one ordering by source, one by destination
    if (mode_ == ReorderMode::kRadix) {
        max_vertex_ = detail::reorder_batch_radix(edges, pool, scratch_);
    } else {
        // Comparison path: the paper's two stable sorts into the reused
        // ReorderedBatch storage (allocation behaviour matches the oracle).
        scratch_.rb = reorder_batch(edges, pool);
        max_vertex_ = max_vertex_of(edges);
    }
    // Arena high-water marks, in elements (DESIGN.md §9: watermark gauges
    // track steady-state capacity, the arena's zero-allocation guarantee).
    t.scratch_edges_watermark.watermark(static_cast<double>(
        scratch_.rb.by_src.edges.capacity() +
        scratch_.rb.by_dst.edges.capacity() + scratch_.tmp.capacity()));
    t.scratch_hist_watermark.watermark(static_cast<double>(
        scratch_.hist.capacity() + scratch_.hist_dst.capacity()));
    return scratch_.rb;
}

} // namespace igs::stream
