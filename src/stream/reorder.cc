#include "stream/reorder.h"

#include "common/parallel_sort.h"

namespace igs::stream {

std::vector<VertexRun>
build_runs(std::span<const StreamEdge> sorted, Direction key)
{
    std::vector<VertexRun> runs;
    const auto key_of = [key](const StreamEdge& e) {
        return key == Direction::kOut ? e.src : e.dst;
    };
    std::size_t i = 0;
    while (i < sorted.size()) {
        const VertexId v = key_of(sorted[i]);
        std::size_t j = i + 1;
        while (j < sorted.size() && key_of(sorted[j]) == v) {
            ++j;
        }
        runs.push_back(VertexRun{v, static_cast<std::uint32_t>(i),
                                 static_cast<std::uint32_t>(j)});
        i = j;
    }
    return runs;
}

ReorderedBatch
reorder_batch(std::span<const StreamEdge> edges, ThreadPool& pool)
{
    ReorderedBatch rb;
    rb.batch_size = edges.size();

    rb.by_src.edges.assign(edges.begin(), edges.end());
    parallel_stable_sort(
        rb.by_src.edges.begin(), rb.by_src.edges.end(),
        [](const StreamEdge& a, const StreamEdge& b) { return a.src < b.src; },
        pool);
    rb.by_src.runs = build_runs(rb.by_src.edges, Direction::kOut);

    rb.by_dst.edges.assign(edges.begin(), edges.end());
    parallel_stable_sort(
        rb.by_dst.edges.begin(), rb.by_dst.edges.end(),
        [](const StreamEdge& a, const StreamEdge& b) { return a.dst < b.dst; },
        pool);
    rb.by_dst.runs = build_runs(rb.by_dst.edges, Direction::kIn);

    return rb;
}

} // namespace igs::stream
