/**
 * @file
 * Full-rerun vs delta-propagate: the input-aware compute-phase policy.
 *
 * The paper's thesis applied to the compute side (DESIGN.md §14): the
 * per-epoch input statistics the stream layer already accumulates —
 * dirty-set size, insert/delete mix — predict whether re-running an
 * analytics kernel from scratch or propagating deltas from the dirty
 * set is cheaper.  Delta propagation wins when the dirty set is a small
 * fraction of the graph; it loses its edge as the dirty fraction grows
 * (the seeded frontier approaches the full vertex set while paying
 * extra bookkeeping) and under delete-heavy batches (deletion-safe
 * correction must trim and rebuild dependence regions, KickStarter-
 * style, which can cascade).  `kAuto` makes that call per epoch from
 * @ref EpochInputStats — the same shape of decision ABR makes for the
 * update phase.
 *
 * Lives in stream/ (not core/ or analytics/): the decision is a pure
 * function of input-stream statistics, core and analytics are sibling
 * layers that cannot include each other (tools/layers.toml), and both
 * need it — core carries the chosen policy in EngineConfig, analytics
 * executes it.
 */
#ifndef IGS_STREAM_COMPUTE_POLICY_H
#define IGS_STREAM_COMPUTE_POLICY_H

#include <cstdint>

#include "common/types.h"
#include "stream/pending.h"

namespace igs::stream {

/** How incremental analytics treat each epoch's compute round. */
enum class IncrementalPolicy {
    kFullRerun,      ///< input-oblivious: recompute from scratch
    kDeltaPropagate, ///< input-oblivious: always seed from the dirty set
    kAuto,           ///< input-aware: choose per epoch from batch stats
};

inline const char*
to_string(IncrementalPolicy policy)
{
    switch (policy) {
    case IncrementalPolicy::kFullRerun:
        return "full";
    case IncrementalPolicy::kDeltaPropagate:
        return "delta";
    case IncrementalPolicy::kAuto:
        return "auto";
    }
    return "?";
}

/** Policy selection plus the kAuto decision thresholds. */
struct IncrementalPolicyParams {
    IncrementalPolicy policy = IncrementalPolicy::kAuto;
    /** kAuto: delta-propagate only when |dirty| / |V| stays below this
     *  (above it the seeded frontier covers most of the graph anyway). */
    double max_dirty_fraction = 0.25;
    /** kAuto: delta-propagate only when deletes / (inserts + deletes)
     *  stays below this (delete-heavy epochs cascade trim-and-correct). */
    double max_delete_ratio = 0.6;
};

/** Per-epoch input statistics the policy decision keys on. */
struct EpochInputStats {
    std::size_t dirty_vertices = 0;
    std::size_t inserted = 0;
    std::size_t deleted = 0;
    /** |dirty| / |V| at hand-off. */
    double dirty_fraction = 0.0;
    /** deleted / (inserted + deleted); 0 for an empty epoch. */
    double delete_ratio = 0.0;

    static EpochInputStats
    measure(const PendingWork& work, std::size_t num_vertices)
    {
        EpochInputStats s;
        s.dirty_vertices = work.affected.size();
        s.inserted = work.inserted.size();
        s.deleted = work.deleted.size();
        s.dirty_fraction =
            num_vertices == 0
                ? 0.0
                : static_cast<double>(s.dirty_vertices) /
                      static_cast<double>(num_vertices);
        const std::size_t ops = s.inserted + s.deleted;
        s.delete_ratio = ops == 0 ? 0.0
                                  : static_cast<double>(s.deleted) /
                                        static_cast<double>(ops);
        return s;
    }
};

/** The per-epoch decision: should this round propagate deltas? */
inline bool
use_delta(const IncrementalPolicyParams& params, const EpochInputStats& s)
{
    switch (params.policy) {
    case IncrementalPolicy::kFullRerun:
        return false;
    case IncrementalPolicy::kDeltaPropagate:
        return true;
    case IncrementalPolicy::kAuto:
        return s.dirty_fraction <= params.max_dirty_fraction &&
               s.delete_ratio <= params.max_delete_ratio;
    }
    return false;
}

} // namespace igs::stream

#endif // IGS_STREAM_COMPUTE_POLICY_H
