/**
 * @file
 * Modeled cost and operation counts of one or more update phases.
 *
 * Lives in stream/ (below both core/ and sim/ in the module-layer DAG,
 * see tools/layers.toml) because both the engine's per-batch report and
 * the simulator's cost accounting speak this vocabulary: core::BatchReport
 * embeds an UpdateStats without depending on the simulator, and
 * sim::SimContext fills one in while replaying the stream/ update kernels.
 */
#ifndef IGS_STREAM_UPDATE_STATS_H
#define IGS_STREAM_UPDATE_STATS_H

#include <cstdint>

#include "common/types.h"

namespace igs::stream {

/** Modeled cost and operation counts of one or more update phases. */
struct UpdateStats {
    Cycles cycles = 0;
    double lock_wait_cycles = 0.0;
    std::uint64_t lock_acquisitions = 0;
    std::uint64_t probes = 0;
    std::uint64_t inserts = 0;
    std::uint64_t weight_updates = 0;
    std::uint64_t removes = 0;
    std::uint64_t runs = 0;
    std::uint64_t sorted_edges = 0;
    std::uint64_t hash_build_edges = 0;
    std::uint64_t coalesced_scans = 0;

    UpdateStats&
    operator+=(const UpdateStats& o)
    {
        cycles += o.cycles;
        lock_wait_cycles += o.lock_wait_cycles;
        lock_acquisitions += o.lock_acquisitions;
        probes += o.probes;
        inserts += o.inserts;
        weight_updates += o.weight_updates;
        removes += o.removes;
        runs += o.runs;
        sorted_edges += o.sorted_edges;
        hash_build_edges += o.hash_build_edges;
        coalesced_scans += o.coalesced_scans;
        return *this;
    }
};

} // namespace igs::stream

#endif // IGS_STREAM_UPDATE_STATS_H
