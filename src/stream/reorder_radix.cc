/**
 * @file
 * Radix batch reordering: a stable LSD counting-sort pipeline that produces
 * byte-identical output to the comparison-sort path in O(n) host work, with
 * every buffer recycled through a ReorderScratch arena.
 *
 * Pipeline per batch (bits = 16 for large batches, 8 for small ones):
 *
 *  1. One fused parallel pass over the raw batch builds per-worker
 *     histograms of the source and destination low digits *and* the max
 *     vertex id (the capacity scan the engine otherwise pays separately).
 *  2. Per direction, each radix pass turns its histograms into scatter
 *     offsets (bucket-major/worker-minor exclusive prefix — stability by
 *     construction) and scatters edges chunk-parallel into the ping-pong
 *     buffers; the final pass lands in the ReorderedBatch storage.
 *  3. Run boundaries come from the final histogram prefix when one pass
 *     suffices (max vertex < bucket count), else from a chunk-parallel
 *     boundary scan — either way the serial build_runs pass is gone.
 *
 * Allocation discipline: pool jobs are dispatched through lambdas whose
 * captures fit std::function's small-object buffer, and all arrays grow
 * monotonically inside the scratch arena, so steady-state reordering
 * performs zero heap allocations (asserted by tests/test_reorder_radix.cc).
 * The IGS_HOT_PATH tag below makes tools/igs_lint.py enforce that
 * discipline: any new allocation or container growth in this file must
 * carry an audited `igs-lint: allow(hot-path-alloc)` pragma.
 */
// IGS_HOT_PATH
#include "stream/reorder.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/radix.h"

namespace igs::stream {
namespace detail {
namespace {

struct SrcKey {
    VertexId operator()(const StreamEdge& e) const { return e.src; }
};
struct DstKey {
    VertexId operator()(const StreamEdge& e) const { return e.dst; }
};

/** Grow-only resize: never releases arena capacity. */
template <typename T>
void
ensure_scratch_size(std::vector<T>& v, std::size_t n)
{
    if (v.size() < n) {
        v.resize(n); // igs-lint: allow(hot-path-alloc) grow-only arena
    }
}

/**
 * Run `body(worker)` for workers [0, workers).  The dispatch lambda holds
 * two words so std::function keeps it in its small-object buffer — no
 * allocation on the steady-state path.
 */
template <typename F>
void
run_workers(ThreadPool& pool, std::size_t workers, F&& body)
{
    if (workers <= 1) {
        body(0);
        return;
    }
    const F* fn = &body;
    pool.run([fn, workers](std::size_t tid) {
        if (tid < workers) {
            (*fn)(tid);
        }
    });
}

/** Worker count for a batch of `n` edges (1 below the fork/join cutoff). */
std::size_t
radix_workers(std::size_t n, ThreadPool& pool)
{
    constexpr std::size_t kSerialCutoff = 8192;
    constexpr std::size_t kMinPerWorker = 4096;
    if (n < kSerialCutoff || pool.size() <= 1) {
        return 1;
    }
    return std::min(pool.size(),
                    std::max<std::size_t>(1, n / kMinPerWorker));
}

/** Shared state of one counting or scatter pass (pointer-captured). */
struct PassCtx {
    const StreamEdge* in = nullptr;
    StreamEdge* out = nullptr;
    std::uint32_t* hist = nullptr;
    const std::size_t* bounds = nullptr;
    std::size_t stride = 0;
    std::size_t buckets_used = 0;
    std::uint32_t shift = 0;
    std::uint32_t mask = 0;
};

template <typename KeyOf>
void
count_pass(ThreadPool& pool, std::size_t workers, PassCtx& ctx)
{
    run_workers(pool, workers, [c = &ctx](std::size_t w) {
        std::uint32_t* row = c->hist + w * c->stride;
        std::fill_n(row, c->buckets_used, 0u);
        for (std::size_t i = c->bounds[w]; i < c->bounds[w + 1]; ++i) {
            ++row[(KeyOf{}(c->in[i]) >> c->shift) & c->mask];
        }
    });
}

template <typename KeyOf>
void
scatter_pass(ThreadPool& pool, std::size_t workers, PassCtx& ctx)
{
    run_workers(pool, workers, [c = &ctx](std::size_t w) {
        std::uint32_t* row = c->hist + w * c->stride;
        for (std::size_t i = c->bounds[w]; i < c->bounds[w + 1]; ++i) {
            const StreamEdge& e = c->in[i];
            c->out[row[(KeyOf{}(e) >> c->shift) & c->mask]++] = e;
        }
    });
}

/** Emit runs from bucket starts (single-pass case: bucket id == vertex). */
void
runs_from_histogram(const std::uint32_t* worker0_row,
                    std::size_t buckets_used, std::size_t n,
                    std::vector<VertexRun>& runs)
{
    runs.clear();
    for (std::size_t b = 0; b < buckets_used; ++b) {
        const std::uint32_t begin = worker0_row[b];
        const std::uint32_t end =
            b + 1 < buckets_used ? worker0_row[b + 1]
                                 : static_cast<std::uint32_t>(n);
        if (end > begin) {
            // igs-lint: allow(hot-path-alloc) reuses retained run capacity
            runs.push_back(
                VertexRun{static_cast<VertexId>(b), begin, end});
        }
    }
}

/** Shared state of the parallel run-boundary build (pointer-captured). */
struct RunsCtx {
    const StreamEdge* edges = nullptr;
    const std::size_t* bounds = nullptr;
    std::uint32_t* counts = nullptr; // per-worker boundary counts / offsets
    VertexRun* runs = nullptr;
};

/** Build the run index of sorted `edges` with a chunk-parallel boundary
 *  scan (multi-pass case, where no per-vertex histogram exists). */
template <typename KeyOf>
void
runs_from_boundaries(ThreadPool& pool, std::size_t workers,
                     std::span<const StreamEdge> edges,
                     ReorderScratch& s, std::vector<VertexRun>& runs)
{
    const std::size_t n = edges.size();
    ensure_scratch_size(s.run_counts, workers);
    RunsCtx ctx{edges.data(), s.bounds.data(), s.run_counts.data(), nullptr};

    run_workers(pool, workers, [c = &ctx](std::size_t w) {
        std::uint32_t count = 0;
        for (std::size_t i = c->bounds[w]; i < c->bounds[w + 1]; ++i) {
            count += i == 0 || KeyOf{}(c->edges[i - 1]) != KeyOf{}(c->edges[i]);
        }
        c->counts[w] = count;
    });

    std::size_t total = 0;
    for (std::size_t w = 0; w < workers; ++w) {
        const std::uint32_t count = s.run_counts[w];
        // total <= n (runs never outnumber edges) and every batch size
        // is CHECKed against uint32 max at the reorder entry point.
        // igs-lint: allow(unproven-narrowing)
        s.run_counts[w] = static_cast<std::uint32_t>(total);
        total += count;
    }
    runs.clear();
    runs.resize(total); // igs-lint: allow(hot-path-alloc) grow-only arena
    ctx.runs = runs.data();

    run_workers(pool, workers, [c = &ctx](std::size_t w) {
        std::uint32_t slot = c->counts[w];
        for (std::size_t i = c->bounds[w]; i < c->bounds[w + 1]; ++i) {
            if (i == 0 || KeyOf{}(c->edges[i - 1]) != KeyOf{}(c->edges[i])) {
                c->runs[slot++] = VertexRun{
                    KeyOf{}(c->edges[i]), static_cast<std::uint32_t>(i), 0};
            }
        }
    });

    for (std::size_t r = 0; r < total; ++r) {
        runs[r].end = r + 1 < total ? runs[r + 1].begin
                                    : static_cast<std::uint32_t>(n);
    }
}

/**
 * Radix-sort one direction of the batch into `out`.  `fused_hist` carries
 * pass-0 counts from the fused pass (16-bit plans), so the raw batch is
 * not re-read for counting; pass it null to count locally (8-bit plans).
 */
template <typename KeyOf>
void
radix_direction(std::span<const StreamEdge> raw, ReorderScratch& s,
                ReorderedDirection& out, const RadixPlan& plan,
                std::size_t workers, ThreadPool& pool,
                std::uint32_t* fused_hist, VertexId max_key)
{
    const std::size_t n = raw.size();
    const std::size_t stride = plan.buckets();
    ensure_scratch_size(s.hist, workers * stride);
    if (plan.passes > 1) {
        ensure_scratch_size(s.tmp, n);
    }

    PassCtx ctx;
    ctx.bounds = s.bounds.data();
    ctx.stride = stride;
    ctx.mask = plan.mask();

    const StreamEdge* in = raw.data();
    // Ping-pong schedule: the final pass must land in out.edges.
    StreamEdge* dst = plan.passes % 2 == 0 ? s.tmp.data() : out.edges.data();

    for (std::uint32_t p = 0; p < plan.passes; ++p) {
        ctx.shift = p * plan.bits;
        ctx.in = in;
        ctx.out = dst;
        const std::uint64_t max_digit =
            static_cast<std::uint64_t>(max_key) >> ctx.shift;
        ctx.buckets_used =
            std::min<std::size_t>(stride,
                                  static_cast<std::size_t>(max_digit) + 1);

        const bool have_counts = p == 0 && fused_hist != nullptr;
        ctx.hist = have_counts ? fused_hist : s.hist.data();
        if (!have_counts) {
            count_pass<KeyOf>(pool, workers, ctx);
        }
        radix_exclusive_offsets(ctx.hist, workers, stride, ctx.buckets_used);
        if (plan.passes == 1) {
            // Worker 0's offsets are the global bucket starts: the run
            // index falls out of the prefix sums before the scatter.
            runs_from_histogram(ctx.hist, ctx.buckets_used, n, out.runs);
        }
        scatter_pass<KeyOf>(pool, workers, ctx);

        in = dst;
        dst = dst == s.tmp.data() ? out.edges.data() : s.tmp.data();
    }

    if (plan.passes > 1) {
        runs_from_boundaries<KeyOf>(pool, workers, out.edges, s, out.runs);
    }
}

/** Shared state of the fused histogram + max-vertex pass. */
struct FusedCtx {
    const StreamEdge* in = nullptr;
    std::uint32_t* hist_src = nullptr;
    std::uint32_t* hist_dst = nullptr;
    const std::size_t* bounds = nullptr;
    VertexId* worker_max = nullptr;
    std::size_t stride = 0;
    std::uint32_t mask = 0;
};

} // namespace

VertexId
reorder_batch_radix(std::span<const StreamEdge> edges, ThreadPool& pool,
                    ReorderScratch& s)
{
    const std::size_t n = edges.size();
    IGS_CHECK_MSG(n <= std::numeric_limits<std::uint32_t>::max(),
                  "batch too large for 32-bit run offsets");
    s.rb.batch_size = n;
    s.rb.by_src.edges.resize(n); // igs-lint: allow(hot-path-alloc) arena
    s.rb.by_dst.edges.resize(n); // igs-lint: allow(hot-path-alloc) arena
    if (n == 0) {
        s.rb.by_src.runs.clear();
        s.rb.by_dst.runs.clear();
        return 0;
    }

    const std::size_t workers = radix_workers(n, pool);
    ensure_scratch_size(s.bounds, workers + 1);
    for (std::size_t w = 0; w <= workers; ++w) {
        s.bounds[w] = n * w / workers;
    }

    RadixPlan plan = plan_radix(n, /*max_key=*/0); // bits fixed by n
    const std::size_t stride = plan.buckets();
    VertexId max_v = 0;

    bool fused = plan.bits == kMaxRadixBits;
    if (fused) {
        // One pass over the raw batch: src + dst low-digit histograms and
        // the max vertex id (subsumes the engine's capacity scan).
        ensure_scratch_size(s.hist, workers * stride);
        ensure_scratch_size(s.hist_dst, workers * stride);
        ensure_scratch_size(s.worker_max, workers);
        FusedCtx ctx{edges.data(), s.hist.data(),     s.hist_dst.data(),
                     s.bounds.data(), s.worker_max.data(), stride,
                     plan.mask()};
        run_workers(pool, workers, [c = &ctx](std::size_t w) {
            std::uint32_t* src_row = c->hist_src + w * c->stride;
            std::uint32_t* dst_row = c->hist_dst + w * c->stride;
            std::fill_n(src_row, c->stride, 0u);
            std::fill_n(dst_row, c->stride, 0u);
            VertexId max_v = 0;
            for (std::size_t i = c->bounds[w]; i < c->bounds[w + 1]; ++i) {
                const StreamEdge& e = c->in[i];
                ++src_row[e.src & c->mask];
                ++dst_row[e.dst & c->mask];
                max_v = std::max({max_v, e.src, e.dst});
            }
            c->worker_max[w] = max_v;
        });
        for (std::size_t w = 0; w < workers; ++w) {
            max_v = std::max(max_v, s.worker_max[w]);
        }
    } else {
        max_v = max_vertex_of(edges);
    }

    // Now that the key range is known, fix the pass count.  The fused
    // histograms remain valid pass-0 counts regardless of the pass count.
    plan = plan_radix(n, max_v);
    IGS_CHECK(plan.buckets() == stride);

    radix_direction<SrcKey>(edges, s, s.rb.by_src, plan, workers, pool,
                            fused ? s.hist.data() : nullptr, max_v);
    radix_direction<DstKey>(edges, s, s.rb.by_dst, plan, workers, pool,
                            fused ? s.hist_dst.data() : nullptr, max_v);
    return max_v;
}

} // namespace detail
} // namespace igs::stream
