/**
 * @file
 * The three software update kernels of the paper, templated over graph
 * structure and execution context (see update_context.h):
 *
 *  - @ref apply_batch_baseline — edge-centric parallelism, one task per
 *    streamed edge, per-vertex locks around each duplicate-check-and-apply
 *    (the "baseline" of §3.2);
 *  - @ref apply_batch_reordered — vertex-centric lock-free updates over a
 *    reordered batch: one task per vertex run, two passes (by-source for
 *    out-edges, by-destination for in-edges);
 *  - @ref apply_batch_usc — reordered updates with Update Search Coalescing
 *    (§4.3): per run, all incoming targets go into a small hash table and
 *    the vertex's edge data is scanned once against it.
 *
 * All kernels implement the same engine semantics (insertions before
 * deletions; duplicate insertion accumulates weight) and therefore produce
 * identical final graph state — property-tested in tests/.
 */
#ifndef IGS_STREAM_UPDATERS_H
#define IGS_STREAM_UPDATERS_H

#include <cstdint>
#include <unordered_map>

#include "common/flat_table.h"
#include "common/types.h"
#include "stream/batch.h"
#include "stream/reorder.h"
#include "stream/update_context.h"

namespace igs::stream {

/**
 * Record `src`'s appearance in batch `bid`, feeding OCA's locality probe
 * (exactly once per unique source per batch, via atomic exchange).
 */
template <typename Graph>
inline void
touch_source(Graph& g, VertexId src, std::uint64_t bid, OcaProbe* probe)
{
    const std::uint64_t prev = g.exchange_latest_bid(src, bid);
    if (prev != bid && probe != nullptr) {
        probe->note(prev, bid);
    }
}

/** True if the batch contains at least one deletion (cached at fill time). */
inline bool
batch_has_deletes(const EdgeBatch& batch)
{
    return batch.has_deletes();
}

/**
 * Baseline edge-centric update: one parallel task per streamed edge; each
 * endpoint's edge array is mutated under that vertex's lock.
 */
template <typename Graph, typename Ctx>
void
apply_batch_baseline(Graph& g, const EdgeBatch& batch, Ctx& ctx,
                     OcaProbe* probe = nullptr)
{
    const auto& edges = batch.edges();
    ctx.charge_pass_setup();
    // Insertions first (engine-wide ordering rule).
    ctx.for_tasks(edges.size(), kEdgeChunk, [&](std::size_t i) {
        const StreamEdge& e = edges[i];
        if (e.is_delete) {
            return;
        }
        touch_source(g, e.src, batch.id, probe);
        ctx.locked_apply(g, e.src, Direction::kOut, [&] {
            return g.apply_insert(e.src, Neighbor{e.dst, e.weight},
                                  Direction::kOut);
        });
        ctx.locked_apply(g, e.dst, Direction::kIn, [&] {
            return g.apply_insert(e.dst, Neighbor{e.src, e.weight},
                                  Direction::kIn);
        });
    });
    ctx.end_phase();

    if (!batch_has_deletes(batch)) {
        return;
    }
    ctx.charge_pass_setup();
    ctx.for_tasks(edges.size(), kEdgeChunk, [&](std::size_t i) {
        const StreamEdge& e = edges[i];
        if (!e.is_delete) {
            return;
        }
        touch_source(g, e.src, batch.id, probe);
        ctx.locked_apply(g, e.src, Direction::kOut, [&] {
            return g.apply_remove(e.src, e.dst, Direction::kOut);
        });
        ctx.locked_apply(g, e.dst, Direction::kIn, [&] {
            return g.apply_remove(e.dst, e.src, Direction::kIn);
        });
    });
    ctx.end_phase();
}

namespace detail {

/** Apply one direction of a reordered batch, one task per vertex run. */
template <typename Graph, typename Ctx>
void
apply_reordered_direction(Graph& g, const ReorderedDirection& rd,
                          Direction dir, std::uint64_t bid, Ctx& ctx,
                          OcaProbe* probe)
{
    ctx.charge_pass_setup();
    ctx.for_tasks(rd.runs.size(), kRunChunk, [&](std::size_t ri) {
        const VertexRun& run = rd.runs[ri];
        ctx.charge_run_overhead();
        if (dir == Direction::kOut) {
            touch_source(g, run.vertex, bid, probe);
        }
        // Insertions of the run, then deletions (pairs of ops on the same
        // edge always share both the src run and the dst run, so per-run
        // ordering is equivalent to batch-global ordering).
        for (std::uint32_t i = run.begin; i < run.end; ++i) {
            const StreamEdge& e = rd.edges[i];
            if (e.is_delete) {
                continue;
            }
            const Neighbor nbr = dir == Direction::kOut
                                     ? Neighbor{e.dst, e.weight}
                                     : Neighbor{e.src, e.weight};
            ctx.apply([&] { return g.apply_insert(run.vertex, nbr, dir); });
        }
        for (std::uint32_t i = run.begin; i < run.end; ++i) {
            const StreamEdge& e = rd.edges[i];
            if (!e.is_delete) {
                continue;
            }
            const VertexId nbr = dir == Direction::kOut ? e.dst : e.src;
            ctx.apply([&] { return g.apply_remove(run.vertex, nbr, dir); });
        }
    });
    ctx.end_phase();
}

} // namespace detail

/**
 * Reordered (RO) vertex-centric update: requires `rb = reorder_batch(...)`.
 * `charge_sort` accounts the two stable sorts the reordering performed.
 */
template <typename Graph, typename Ctx>
void
apply_batch_reordered(Graph& g, const EdgeBatch& batch,
                      const ReorderedBatch& rb, Ctx& ctx,
                      OcaProbe* probe = nullptr)
{
    ctx.charge_sort(rb.batch_size);
    ctx.charge_sort(rb.batch_size);
    detail::apply_reordered_direction(g, rb.by_src, Direction::kOut, batch.id,
                                      ctx, probe);
    detail::apply_reordered_direction(g, rb.by_dst, Direction::kIn, batch.id,
                                      ctx, probe);
}

namespace detail {

/**
 * One direction of a USC update.  Per run: accumulate the run's insertions
 * into a hash table, scan the vertex's edge data once against it (updating
 * weights of matches in place), then append the remainder.
 */
template <typename Graph, typename Ctx>
void
apply_usc_direction(Graph& g, const ReorderedDirection& rd, Direction dir,
                    std::uint64_t bid, Ctx& ctx, OcaProbe* probe)
{
    ctx.charge_pass_setup();
    ctx.for_worker_tasks(rd.runs.size(), kRunChunk,
                         [&](std::size_t worker, std::size_t ri) {
        const VertexRun& run = rd.runs[ri];
        ctx.charge_run_overhead();
        if (dir == Direction::kOut) {
            touch_source(g, run.vertex, bid, probe);
        }

        if constexpr (Ctx::kSimulated) {
            (void)worker;
            // Step 1 (Fig 8): populate the run's target -> weight table,
            // accumulating duplicate targets within the run.  The simulated
            // path keeps std::unordered_map: its iteration order fixes the
            // edge append order the cycle model depends on downstream.
            // Simulated path only (see comment above): the modeled cost is
            // charged analytically.  igs-lint: allow(hot-path-alloc)
            std::unordered_map<VertexId, Weight> table;
            std::size_t num_inserts = 0;
            for (std::uint32_t i = run.begin; i < run.end; ++i) {
                const StreamEdge& e = rd.edges[i];
                if (e.is_delete) {
                    continue;
                }
                const VertexId target = dir == Direction::kOut ? e.dst : e.src;
                table[target] += e.weight;
                ++num_inserts;
            }
            ctx.charge_hash_build(num_inserts);

            if (!table.empty()) {
                const std::size_t len_before = g.degree(run.vertex, dir);
                // Functional shortcut: applying each table entry through the
                // indexed structure produces the same state the single scan
                // would; the scan's cost is charged analytically.
                std::size_t appended = 0;
                for (const auto& [target, w] : table) {
                    const auto r = g.apply_insert(run.vertex,
                                                  Neighbor{target, w}, dir);
                    appended += r.found ? 0 : 1;
                }
                ctx.charge_coalesced_scan(len_before, len_before, appended);
            }
        } else {
            // Production path: the run's table is this worker's reusable
            // open-addressing array (no per-run node allocations).
            FlatWeightTable& table = ctx.usc_table(worker);
            table.reset(run.size());
            std::size_t num_inserts = 0;
            for (std::uint32_t i = run.begin; i < run.end; ++i) {
                const StreamEdge& e = rd.edges[i];
                if (e.is_delete) {
                    continue;
                }
                const VertexId target = dir == Direction::kOut ? e.dst : e.src;
                table.add(target, e.weight);
                ++num_inserts;
            }
            ctx.charge_hash_build(num_inserts);

            if (!table.empty()) {
                if constexpr (requires { g.edges_mut(run.vertex, dir); }) {
                    // Steps 2-4 (Fig 8): one scan of the edge data, hash
                    // lookups per element, then append the non-matching
                    // remainder.
                    auto& edge_data = g.edges_mut(run.vertex, dir);
                    for (Neighbor& n : edge_data) {
                        Weight w = 0.0f;
                        if (table.drain(n.id, &w)) {
                            n.weight += w;
                        }
                    }
                    std::size_t appended = 0;
                    table.for_each([&](VertexId target, Weight w) {
                        // igs-lint: allow(hot-path-alloc) -- amortized append
                        edge_data.push_back(Neighbor{target, w});
                        ++appended;
                    });
                    g.note_edges_added(dir, appended);
                } else {
                    // Backends whose edge sets carry internal invariants
                    // (graph::HybridStore's tier index) run the coalesced
                    // scan themselves and keep num_edges consistent.
                    g.apply_coalesced(run.vertex, dir, table);
                }
            }
        }

        // Deletions of the run (after the run's insertions).
        for (std::uint32_t i = run.begin; i < run.end; ++i) {
            const StreamEdge& e = rd.edges[i];
            if (!e.is_delete) {
                continue;
            }
            const VertexId nbr = dir == Direction::kOut ? e.dst : e.src;
            ctx.apply([&] { return g.apply_remove(run.vertex, nbr, dir); });
        }
    });
    ctx.end_phase();
}

} // namespace detail

/**
 * Reordered update with Update Search Coalescing.  Only meaningful on
 * reordering-friendly batches (ABR decides); equivalent in outcome to
 * apply_batch_reordered.
 */
template <typename Graph, typename Ctx>
void
apply_batch_usc(Graph& g, const EdgeBatch& batch, const ReorderedBatch& rb,
                Ctx& ctx, OcaProbe* probe = nullptr)
{
    ctx.charge_sort(rb.batch_size);
    ctx.charge_sort(rb.batch_size);
    detail::apply_usc_direction(g, rb.by_src, Direction::kOut, batch.id, ctx,
                                probe);
    detail::apply_usc_direction(g, rb.by_dst, Direction::kIn, batch.id, ctx,
                                probe);
}

} // namespace igs::stream

#endif // IGS_STREAM_UPDATERS_H
