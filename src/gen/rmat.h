/**
 * @file
 * R-MAT (recursive matrix) edge generator.
 *
 * A classic synthetic graph model (Chakrabarti et al.) used by examples and
 * tests that need a generic skewed graph outside the paper's dataset
 * registry.  Each edge picks a quadrant of the adjacency matrix recursively
 * with probabilities (a, b, c, d).
 */
#ifndef IGS_GEN_RMAT_H
#define IGS_GEN_RMAT_H

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/types.h"

namespace igs::gen {

/** R-MAT parameters; defaults are the Graph500 values. */
struct RmatParams {
    /** log2 of the vertex count. */
    std::uint32_t scale = 14;
    double a = 0.57;
    double b = 0.19;
    double c = 0.19; // d = 1 - a - b - c
    /** Quadrant-probability noise per level, for degree-distribution
     *  smoothing. */
    double noise = 0.1;
    std::uint64_t seed = 7;
};

/** Streaming R-MAT generator. */
class RmatGenerator {
  public:
    explicit RmatGenerator(const RmatParams& params)
        : params_(params), rng_(params.seed)
    {
        IGS_CHECK(params.scale >= 1 && params.scale <= 30);
        IGS_CHECK(params.a + params.b + params.c < 1.0);
    }

    std::uint32_t num_vertices() const { return 1u << params_.scale; }

    /** Generate one edge. */
    StreamEdge
    next()
    {
        VertexId src = 0;
        VertexId dst = 0;
        for (std::uint32_t level = 0; level < params_.scale; ++level) {
            double a = params_.a;
            double b = params_.b;
            double c = params_.c;
            if (params_.noise > 0.0) {
                const double f = 1.0 + params_.noise * (rng_.uniform() - 0.5);
                a *= f;
                const double g = 1.0 + params_.noise * (rng_.uniform() - 0.5);
                b *= g;
            }
            const double u = rng_.uniform();
            std::uint32_t sbit = 0;
            std::uint32_t dbit = 0;
            if (u < a) {
                // top-left
            } else if (u < a + b) {
                dbit = 1;
            } else if (u < a + b + c) {
                sbit = 1;
            } else {
                sbit = 1;
                dbit = 1;
            }
            src = (src << 1) | sbit;
            dst = (dst << 1) | dbit;
        }
        if (src == dst) {
            dst = (dst + 1) & (num_vertices() - 1);
        }
        return StreamEdge{src, dst, 1.0f, false};
    }

    /** Generate `n` edges. */
    std::vector<StreamEdge>
    take(std::size_t n)
    {
        std::vector<StreamEdge> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(next());
        }
        return out;
    }

  private:
    RmatParams params_;
    Rng rng_;
};

} // namespace igs::gen

#endif // IGS_GEN_RMAT_H
