#include "gen/datasets.h"

#include <algorithm>

#include "common/check.h"

namespace igs::gen {
namespace {

/** Helper assembling one registry entry. */
DatasetSpec
make(std::string name, std::string full, std::uint64_t pv, std::uint64_t pe,
     bool ts, bool friendly, std::uint64_t friendly_from, StreamModel m,
     std::uint64_t stream_edges)
{
    DatasetSpec d;
    d.name = std::move(name);
    d.full_name = std::move(full);
    d.paper_vertices = pv;
    d.paper_edges = pe;
    d.timestamped = ts;
    d.reorder_friendly = friendly;
    d.friendly_from_batch = friendly_from;
    d.model = m;
    d.stream_edges = stream_edges;
    return d;
}

std::vector<DatasetSpec>
build_registry()
{
    std::vector<DatasetSpec> r;

    // ---- Shuffled static datasets (talk..uk in Table 2). -------------
    // Reordering-adverse everywhere: near-uniform endpoints, negligible
    // hub mass, so per-batch max degrees stay low (lj-100K tops out around
    // the paper's ~30).
    {
        StreamModel m;
        m.num_vertices = 600000;
        m.num_hubs = 5000;
        m.hub_mass_dst = 0.02;
        m.hub_mass_src = 0.02;
        m.zipf_s = 0.6;
        m.seed = 0xA001;
        r.push_back(make("lj", "soc-LiveJournal", 4847571, 68993773, false,
                         false, 0, m, 600000));
    }
    {
        StreamModel m;
        m.num_vertices = 500000;
        m.num_hubs = 4000;
        m.hub_mass_dst = 0.01;
        m.hub_mass_src = 0.01;
        m.zipf_s = 0.5;
        m.seed = 0xA002;
        r.push_back(make("patents", "cit-Patents", 3774768, 16518948, false,
                         false, 0, m, 500000));
    }
    // Reordering-friendly at >=100K: moderate hub mass concentrates a
    // percent-level share of each batch on the top destination.
    {
        StreamModel m;
        m.num_vertices = 220000;
        m.num_hubs = 2000;
        m.hub_mass_dst = 0.06;
        m.hub_mass_src = 0.04;
        m.zipf_s = 0.8;
        m.hub_src_pool = 2000;
        m.burst_mass = 0.02;
        m.burst_period = 110000;
        m.seed = 0xA003;
        r.push_back(make("topcats", "Wiki-Topcats", 1791489, 28511807, false,
                         true, 100000, m, 500000));
    }
    // Reordering-friendly from 10K: strong hub skew (admin talk pages).
    {
        StreamModel m;
        m.num_vertices = 240000;
        m.num_hubs = 2000;
        m.hub_mass_dst = 0.10;
        m.hub_mass_src = 0.05;
        m.zipf_s = 0.8;
        m.hub_src_pool = 5000;
        m.burst_mass = 0.05;
        m.burst_period = 50000;
        m.seed = 0xA004;
        r.push_back(make("talk", "Wiki-Talk", 2394385, 5021410, false, true,
                         10000, m, 500000));
    }
    {
        StreamModel m;
        m.num_vertices = 140000;
        m.num_hubs = 1000;
        m.hub_mass_dst = 0.06;
        m.hub_mass_src = 0.04;
        m.zipf_s = 0.8;
        m.hub_src_pool = 2000;
        m.burst_mass = 0.02;
        m.burst_period = 120000;
        m.seed = 0xA005;
        r.push_back(make("berkstan", "WebBerkStan", 685230, 7600595, false,
                         true, 100000, m, 500000));
    }
    {
        StreamModel m;
        m.num_vertices = 1500000;
        m.num_hubs = 10000;
        m.hub_mass_dst = 0.005;
        m.hub_mass_src = 0.005;
        m.zipf_s = 0.5;
        m.seed = 0xA006;
        r.push_back(make("friendster", "com-Friendster", 65608366,
                         1806067135ull, false, false, 0, m, 600000));
    }
    {
        StreamModel m;
        m.num_vertices = 2000000;
        m.num_hubs = 30000;
        m.hub_mass_dst = 0.015;
        m.hub_mass_src = 0.01;
        m.zipf_s = 0.95;
        m.seed = 0xA007;
        r.push_back(make("uk", "UK-Union-2006-2007", 133633040,
                         5507679822ull, false, false, 0, m, 600000));
    }

    // ---- Timestamped datasets (fb..wiki in Table 2). ------------------
    // Source draws favour a drifting active community, producing the
    // inter-batch unique-vertex overlap OCA keys on.
    {
        StreamModel m;
        m.num_vertices = 12000;
        m.num_hubs = 400;
        m.hub_mass_dst = 0.03;
        m.hub_mass_src = 0.02;
        m.zipf_s = 0.5;
        m.community_mass = 0.6;
        m.community_size = 6000;
        m.seed = 0xA008;
        r.push_back(make("fb", "Facebook-wall", 46952, 876993, true, false, 0,
                         m, 400000));
    }
    {
        StreamModel m;
        m.num_vertices = 900000;
        m.num_hubs = 8000;
        m.hub_mass_dst = 0.03;
        m.hub_mass_src = 0.02;
        m.zipf_s = 0.7;
        m.community_mass = 0.85;
        m.community_size = 60000;
        m.seed = 0xA009;
        r.push_back(make("flickr", "Flickr-photo", 11730773, 34734221, true,
                         false, 0, m, 600000));
    }
    // yt is reordering-friendly from 10K (Fig 3).
    {
        StreamModel m;
        m.num_vertices = 320000;
        m.num_hubs = 2000;
        m.hub_mass_dst = 0.08;
        m.hub_mass_src = 0.04;
        m.zipf_s = 0.8;
        m.community_mass = 0.8;
        m.community_size = 50000;
        m.hub_src_pool = 5000;
        m.burst_mass = 0.055;
        m.burst_period = 45000;
        m.seed = 0xA00A;
        r.push_back(make("yt", "Youtube", 3223589, 12223774, true, true,
                         10000, m, 500000));
    }
    {
        StreamModel m;
        m.num_vertices = 400000;
        m.num_hubs = 4000;
        m.hub_mass_dst = 0.02;
        m.hub_mass_src = 0.01;
        m.zipf_s = 0.6;
        m.community_mass = 0.85;
        m.community_size = 50000;
        m.seed = 0xA00B;
        r.push_back(make("amazon", "Amazon-ratings", 2146057, 5838041, true,
                         false, 0, m, 500000));
    }
    {
        StreamModel m;
        m.num_vertices = 500000;
        m.num_hubs = 5000;
        m.hub_mass_dst = 0.04;
        m.hub_mass_src = 0.02;
        m.zipf_s = 0.7;
        m.community_mass = 0.85;
        m.community_size = 60000;
        m.seed = 0xA00C;
        r.push_back(make("stack", "Stack-overflow", 2601977, 63497050, true,
                         false, 0, m, 600000));
    }
    {
        StreamModel m;
        m.num_vertices = 60000;
        m.num_hubs = 800;
        m.hub_mass_dst = 0.07;
        m.hub_mass_src = 0.04;
        m.zipf_s = 0.8;
        m.community_mass = 0.75;
        m.community_size = 45000;
        m.hub_src_pool = 2000;
        m.burst_mass = 0.022;
        m.burst_period = 100000;
        m.seed = 0xA00D;
        r.push_back(make("superuser", "Superuser", 194085, 1443339, true,
                         true, 100000, m, 400000));
    }
    // wiki: the paper's flagship reordering-friendly dataset (23x max
    // update speedup at 100K): strongest destination skew.
    {
        StreamModel m;
        m.num_vertices = 150000;
        m.num_hubs = 2000;
        m.hub_mass_dst = 0.12;
        m.hub_mass_src = 0.05;
        m.zipf_s = 0.9;
        m.community_mass = 0.8;
        m.community_size = 90000;
        m.hub_src_pool = 6000;
        m.burst_mass = 0.055;
        m.burst_period = 60000;
        m.seed = 0xA00E;
        r.push_back(make("wiki", "Wiki-talk-temporal", 1140149, 7833140, true,
                         true, 10000, m, 600000));
    }
    return r;
}

} // namespace

const std::vector<DatasetSpec>&
registry()
{
    static const std::vector<DatasetSpec> r = build_registry();
    return r;
}

const DatasetSpec&
find_dataset(const std::string& name)
{
    for (const DatasetSpec& d : registry()) {
        if (d.name == name) {
            return d;
        }
    }
    IGS_CHECK_MSG(false, ("unknown dataset: " + name).c_str());
    __builtin_unreachable();
}

std::size_t
default_batch_count(const DatasetSpec& ds, std::size_t batch_size,
                    std::size_t cap)
{
    IGS_CHECK(batch_size > 0);
    // The generator is an infinite stream, so we can always draw at least a
    // few batches even when batch_size exceeds the nominal stream length —
    // OCA and ABR need consecutive batches to be meaningful.
    const std::size_t available =
        std::max<std::size_t>(4, ds.stream_edges / batch_size);
    return std::min(available, cap);
}

} // namespace igs::gen
