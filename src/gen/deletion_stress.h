/**
 * @file
 * Adversarial deletion-stress stream generator.
 *
 * EdgeStreamGenerator's in-band deletions are sparse and scattered —
 * good for modeling real datasets, useless for attacking the
 * incremental analytics kernels (DESIGN.md §14), whose hard cases are
 * exactly the ones a benign stream never concentrates:
 *
 *  - *delete bursts*: a batch that is (almost) all deletions tears a
 *    large dependence region out of the memoized SSSP/BFS state at
 *    once and pushes the batch's delete ratio past the auto policy's
 *    threshold (stream/compute_policy.h);
 *  - *delete-then-reinsert-same-edge*: the reinserted edge must
 *    restore distances to their exact prior values, which catches
 *    stale memo state and missed trim regions;
 *  - *duplicate insertions*: a fresh insert may duplicate a live edge,
 *    which the engine *accumulates* — the distance-increasing
 *    insertion case SSSP's trim pass must detect.
 *
 * The stream is phase-structured: a build-up prefix of fresh
 * insertions, then alternating delete/reinsert bursts.  Weights are
 * dyadic rationals (multiples of 1/64 in [0.5, 1.5)), so float path
 * sums are exact and the equivalence harness can assert *bitwise*
 * distance equality even across ties.  Fully deterministic per seed.
 */
#ifndef IGS_GEN_DELETION_STRESS_H
#define IGS_GEN_DELETION_STRESS_H

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace igs::gen {

/** Parameters of the deletion-stress stream. */
struct DeletionStressModel {
    /** Vertex ids are drawn from [0, num_vertices). */
    std::uint32_t num_vertices = 1u << 12;
    /** Fresh-insertion prefix that builds the victim graph. */
    std::uint64_t build_edges = 1u << 12;
    /** Operations per delete burst and per reinsert burst. */
    std::uint64_t burst = 256;
    /** Fraction of a reinsert burst replaying recently deleted edges
     *  (same endpoints, same weight); the rest are fresh insertions. */
    double reinsert_fraction = 0.75;
    /** RNG seed. */
    std::uint64_t seed = 1;
};

/**
 * Pull-based generator mirroring EdgeStreamGenerator's surface:
 * `next()` yields one operation, `take(n)` materializes a batch.
 */
class DeletionStressGenerator {
  public:
    enum class Phase : std::uint8_t { kBuild, kDelete, kReinsert };

    explicit DeletionStressGenerator(const DeletionStressModel& model);

    /** Produce the next stream operation. */
    StreamEdge next();

    /** Materialize the next `n` operations. */
    std::vector<StreamEdge> take(std::size_t n);

    /** Number of operations emitted so far. */
    std::uint64_t position() const { return position_; }

    /** Phase the *next* operation will be drawn from. */
    Phase phase() const;

    const DeletionStressModel& model() const { return model_; }

  private:
    StreamEdge fresh_insert();

    DeletionStressModel model_;
    Rng rng_;
    std::uint64_t position_ = 0;
    /** Insertions emitted and not yet deleted (deletion targets). */
    std::vector<StreamEdge> live_;
    /** Deleted during the current/previous delete burst; reinsert pool. */
    std::vector<StreamEdge> recently_deleted_;
};

} // namespace igs::gen

#endif // IGS_GEN_DELETION_STRESS_H
