/**
 * @file
 * Deterministic synthetic edge-stream generator.
 *
 * The paper evaluates on 14 real datasets (Table 2) whose raw files are not
 * redistributable at multi-billion-edge scale; DESIGN.md documents the
 * substitution.  This generator reproduces the *properties the paper's
 * techniques key on*:
 *
 *  - per-batch degree distribution, controlled by a hub mixture: each edge
 *    endpoint is drawn from a small Zipf-weighted hub set with probability
 *    `hub_mass`, else uniformly from the full vertex range.  High hub mass +
 *    strong skew = "high-degree input batches" (reordering-friendly, e.g.
 *    wiki); negligible hub mass = "low-degree" (adverse, e.g. lj);
 *  - inter-batch vertex locality for timestamped datasets (OCA §5), via a
 *    slowly drifting *active community*: with probability `community_mass`
 *    the source is drawn from a window of `community_size` vertices.  Two
 *    consecutive batches much larger than the community cover it almost
 *    fully, so their unique-source overlap is high; small batches sample
 *    disjoint slivers, so overlap is low — matching the paper's observation
 *    that OCA triggers at larger batch sizes;
 *  - in-band deletions at a configurable rate (deletes target previously
 *    emitted edges);
 *  - temporal stability: distribution parameters are constant over the
 *    stream, matching the paper's Fig 5 observation.
 */
#ifndef IGS_GEN_EDGE_STREAM_H
#define IGS_GEN_EDGE_STREAM_H

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace igs::gen {

/** Parameters of the synthetic stream model. */
struct StreamModel {
    /** Vertex ids are drawn from [0, num_vertices). */
    std::uint32_t num_vertices = 1u << 16;
    /** Number of hub vertices (ids [0, num_hubs)). */
    std::uint32_t num_hubs = 256;
    /** Probability that an edge's destination is a hub. */
    double hub_mass_dst = 0.0;
    /** Probability that an edge's source is a hub. */
    double hub_mass_src = 0.0;
    /** Zipf exponent for hub popularity (higher = more skew). */
    double zipf_s = 1.0;
    /**
     * When an edge's destination is a hub, its source is drawn from
     * [0, hub_src_pool) instead of the full range (0 disables).  Real
     * high-degree vertices see *repeated* interactions from a bounded
     * population (the editors of a wiki talk page), so their adjacency
     * arrays saturate at the unique-neighbor count while their per-batch
     * degree stays high — the regime USC exploits.
     */
    std::uint32_t hub_src_pool = 0;
    /**
     * Burst hubs: with probability `burst_mass`, the destination is the
     * *currently hot* vertex, which rotates every `burst_period` stream
     * positions.  Real graph streams are bursty — a vertex is hot for a
     * window, then cools — which makes a batch's top degree scale with
     * min(batch, burst_period) rather than with batch size alone.  This
     * is what makes talk/yt/wiki reordering-friendly already at 10K-edge
     * batches while topcats/berkstan/superuser only turn friendly at
     * 100K (paper Fig 3).  Burst sources come from `hub_src_pool` when
     * set, bounding the hot vertex's unique-neighbor count.
     */
    double burst_mass = 0.0;
    std::uint64_t burst_period = 1u << 16;
    /** Probability a (non-hub) source is drawn from the active community. */
    double community_mass = 0.0;
    /** Active community size (timestamped datasets). */
    std::uint32_t community_size = 1u << 16;
    /** Stream positions between one-community_size drifts of the window. */
    std::uint64_t community_drift_period = 1u << 22;
    /** Fraction of emitted operations that are deletions of prior edges. */
    double delete_fraction = 0.0;
    /** Weighted-graph mode: weights drawn in [0.5, 1.5); else all 1. */
    bool weighted = false;
    /** RNG seed. */
    std::uint64_t seed = 1;
};

/**
 * Pull-based generator: `next()` yields the stream one edge at a time;
 * `take(n)` materializes the next n edges.
 */
class EdgeStreamGenerator {
  public:
    explicit EdgeStreamGenerator(const StreamModel& model);

    /** Produce the next stream operation. */
    StreamEdge next();

    /** Materialize the next `n` operations. */
    std::vector<StreamEdge> take(std::size_t n);

    /** Number of operations emitted so far. */
    std::uint64_t position() const { return position_; }

    const StreamModel& model() const { return model_; }

  private:
    VertexId sample_hub();
    VertexId sample_community();

    StreamModel model_;
    Rng rng_;
    std::uint64_t position_ = 0;
    /** Cumulative Zipf weights over hubs for inverse-CDF sampling. */
    std::vector<double> hub_cdf_;
    /** Reservoir of previously emitted insertions (deletion targets). */
    std::vector<StreamEdge> delete_reservoir_;
};

} // namespace igs::gen

#endif // IGS_GEN_EDGE_STREAM_H
