/**
 * @file
 * Registry of the paper's 14 evaluation datasets (Table 2), modeled
 * synthetically at CI scale.
 *
 * Each entry records the real dataset's identity and size and a
 * @ref igs::gen::StreamModel whose parameters were calibrated so that the
 * *input properties the paper's techniques key on* match the paper's
 * characterization (Fig 3–5):
 *
 *  - talk, topcats, berkstan, yt, superuser, wiki — "high-degree" input
 *    batches at larger batch sizes (reordering-friendly);
 *  - lj, patents, fb, flickr, amazon, stack, friendster, uk — "low-degree"
 *    batches at every batch size (reordering-adverse);
 *  - fb..wiki are timestamped (temporal source locality, OCA-relevant);
 *    talk..uk are static datasets streamed in shuffled order (modeled as
 *    i.i.d. draws, which is what shuffling produces).
 *
 * Absolute sizes are scaled down so the full 260-workload sweep runs on a
 *  laptop; relative per-dataset character is preserved (see DESIGN.md).
 */
#ifndef IGS_GEN_DATASETS_H
#define IGS_GEN_DATASETS_H

#include <cstdint>
#include <string>
#include <vector>

#include "gen/edge_stream.h"

namespace igs::gen {

/** One evaluation dataset: paper identity + synthetic model. */
struct DatasetSpec {
    /** Short name used throughout the paper's figures ("wiki", "lj", ...). */
    std::string name;
    /** Full dataset name from Table 2. */
    std::string full_name;
    /** Vertex/edge counts of the real dataset (Table 2). */
    std::uint64_t paper_vertices = 0;
    std::uint64_t paper_edges = 0;
    /** True for datasets with real arrival timestamps (fb..wiki). */
    bool timestamped = false;
    /** Expected reordering class per the paper's Fig 3 (for tests and the
     *  ABR-accuracy harness): true if reordering-friendly at batch sizes
     *  >= `friendly_from_batch`, false everywhere. */
    bool reorder_friendly = false;
    std::uint64_t friendly_from_batch = 0;
    /** Synthetic model reproducing the dataset's input character. */
    StreamModel model;
    /** Default stream length (scaled). */
    std::uint64_t stream_edges = 0;

    /** Construct a generator for this dataset (optionally reseeded so
     *  repeated runs can draw independent streams). */
    EdgeStreamGenerator
    make_generator(std::uint64_t seed_offset = 0) const
    {
        StreamModel m = model;
        m.seed += seed_offset;
        return EdgeStreamGenerator(m);
    }
};

/** All 14 datasets, in the paper's figure order (lj..uk). */
const std::vector<DatasetSpec>& registry();

/** Look up a dataset by short name; aborts on unknown names. */
const DatasetSpec& find_dataset(const std::string& name);

/** The batch sizes evaluated by the paper. */
inline const std::vector<std::size_t>&
paper_batch_sizes()
{
    static const std::vector<std::size_t> sizes{100, 1000, 10000, 100000,
                                                500000};
    return sizes;
}

/**
 * Number of batches a bench should replay for a dataset/batch-size pair:
 * everything the stream offers, bounded so small batch sizes don't explode
 * the workload count (ratios are per-batch averages anyway).
 */
std::size_t default_batch_count(const DatasetSpec& ds, std::size_t batch_size,
                                std::size_t cap = 48);

} // namespace igs::gen

#endif // IGS_GEN_DATASETS_H
