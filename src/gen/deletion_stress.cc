#include "gen/deletion_stress.h"

#include "common/check.h"

namespace igs::gen {

DeletionStressGenerator::DeletionStressGenerator(
    const DeletionStressModel& model)
    : model_(model), rng_(model.seed)
{
    IGS_CHECK(model_.num_vertices >= 2);
    IGS_CHECK(model_.build_edges >= 1);
    IGS_CHECK(model_.burst >= 1);
}

DeletionStressGenerator::Phase
DeletionStressGenerator::phase() const
{
    if (position_ < model_.build_edges) {
        return Phase::kBuild;
    }
    // After the build prefix the stream alternates burst-sized delete
    // and reinsert windows.
    const std::uint64_t cycle_pos =
        (position_ - model_.build_edges) % (2 * model_.burst);
    return cycle_pos < model_.burst ? Phase::kDelete : Phase::kReinsert;
}

StreamEdge
DeletionStressGenerator::fresh_insert()
{
    StreamEdge e;
    e.src = static_cast<VertexId>(rng_.below(model_.num_vertices));
    e.dst = static_cast<VertexId>(rng_.below(model_.num_vertices));
    // Dyadic weight in [0.5, 1.5): multiples of 1/64 are exact in float,
    // and so are their path sums — the harness's bitwise SSSP equality
    // depends on this.
    e.weight = static_cast<Weight>(32 + rng_.below(64)) / 64.0f;
    live_.push_back(e);
    return e;
}

StreamEdge
DeletionStressGenerator::next()
{
    const Phase p = phase();
    ++position_;
    switch (p) {
    case Phase::kBuild:
        return fresh_insert();
    case Phase::kDelete: {
        if (live_.empty()) {
            return fresh_insert();
        }
        const std::size_t i = rng_.below(live_.size());
        StreamEdge del = live_[i];
        live_[i] = live_.back();
        live_.pop_back();
        recently_deleted_.push_back(del);
        del.is_delete = true;
        return del;
    }
    case Phase::kReinsert: {
        if (!recently_deleted_.empty() &&
            rng_.chance(model_.reinsert_fraction)) {
            // Same endpoints, same weight: the memoized state must come
            // back to exactly its pre-deletion fixpoint.
            const std::size_t i = rng_.below(recently_deleted_.size());
            const StreamEdge e = recently_deleted_[i];
            recently_deleted_[i] = recently_deleted_.back();
            recently_deleted_.pop_back();
            live_.push_back(e);
            return e;
        }
        return fresh_insert();
    }
    }
    IGS_CHECK(false);
    return {};
}

std::vector<StreamEdge>
DeletionStressGenerator::take(std::size_t n)
{
    std::vector<StreamEdge> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(next());
    }
    return out;
}

} // namespace igs::gen
