#include "gen/edge_stream.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace igs::gen {

EdgeStreamGenerator::EdgeStreamGenerator(const StreamModel& model)
    : model_(model), rng_(model.seed)
{
    IGS_CHECK(model_.num_vertices >= 2);
    IGS_CHECK(model_.num_hubs >= 1);
    IGS_CHECK(model_.num_hubs <= model_.num_vertices);
    IGS_CHECK(model_.community_size >= 1);
    IGS_CHECK(model_.community_drift_period >= 1);

    // Precompute the hub inverse-CDF: weight(k) = (k+1)^-s.
    hub_cdf_.resize(model_.num_hubs);
    double acc = 0.0;
    for (std::uint32_t k = 0; k < model_.num_hubs; ++k) {
        acc += std::pow(static_cast<double>(k + 1), -model_.zipf_s);
        hub_cdf_[k] = acc;
    }
    for (double& c : hub_cdf_) {
        c /= acc;
    }
}

VertexId
EdgeStreamGenerator::sample_hub()
{
    const double u = rng_.uniform();
    const auto it = std::lower_bound(hub_cdf_.begin(), hub_cdf_.end(), u);
    return static_cast<VertexId>(it - hub_cdf_.begin());
}

VertexId
EdgeStreamGenerator::sample_community()
{
    // The community is a contiguous id window that advances by one window
    // length every drift period, wrapping around the vertex range.
    const std::uint64_t window_index = position_ / model_.community_drift_period;
    const std::uint64_t start =
        (window_index * model_.community_size) % model_.num_vertices;
    const std::uint64_t offset = rng_.below(
        std::min<std::uint64_t>(model_.community_size, model_.num_vertices));
    return static_cast<VertexId>((start + offset) % model_.num_vertices);
}

StreamEdge
EdgeStreamGenerator::next()
{
    ++position_;
    // Deletions replay a previously inserted edge.
    if (model_.delete_fraction > 0.0 && !delete_reservoir_.empty() &&
        rng_.chance(model_.delete_fraction)) {
        const std::size_t i = rng_.below(delete_reservoir_.size());
        StreamEdge del = delete_reservoir_[i];
        delete_reservoir_[i] = delete_reservoir_.back();
        delete_reservoir_.pop_back();
        del.is_delete = true;
        return del;
    }

    StreamEdge e;
    // Destination first: hub edges constrain the source population.
    bool dst_is_hub = false;
    if (model_.burst_mass > 0.0 && rng_.chance(model_.burst_mass)) {
        // The currently hot vertex; rotates each burst period through
        // otherwise-quiet ids (hot vertices are usually fresh ones).
        const std::uint64_t epoch = position_ / model_.burst_period;
        e.dst = static_cast<VertexId>(
            (model_.num_hubs + 1 + 1009 * epoch) % model_.num_vertices);
        dst_is_hub = true;
    } else if (model_.hub_mass_dst > 0.0 &&
               rng_.chance(model_.hub_mass_dst)) {
        e.dst = sample_hub();
        dst_is_hub = true;
    } else {
        e.dst = static_cast<VertexId>(rng_.below(model_.num_vertices));
    }
    // Source: bounded hub-interaction pool, hub, active community, or
    // uniform.
    if (dst_is_hub && model_.hub_src_pool > 0) {
        e.src = static_cast<VertexId>(rng_.below(
            std::min(model_.hub_src_pool, model_.num_vertices)));
    } else if (model_.hub_mass_src > 0.0 && rng_.chance(model_.hub_mass_src)) {
        e.src = sample_hub();
    } else if (model_.community_mass > 0.0 &&
               rng_.chance(model_.community_mass)) {
        e.src = sample_community();
    } else {
        e.src = static_cast<VertexId>(rng_.below(model_.num_vertices));
    }
    // Avoid self loops by displacement.
    if (e.dst == e.src) {
        e.dst = (e.dst + 1) % model_.num_vertices;
    }
    e.weight = model_.weighted
                   ? static_cast<Weight>(rng_.uniform(0.5, 1.5))
                   : 1.0f;

    // Feed the deletion reservoir (bounded).
    if (model_.delete_fraction > 0.0 && delete_reservoir_.size() < (1u << 20)) {
        delete_reservoir_.push_back(e);
    }
    return e;
}

std::vector<StreamEdge>
EdgeStreamGenerator::take(std::size_t n)
{
    std::vector<StreamEdge> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(next());
    }
    return out;
}

} // namespace igs::gen
