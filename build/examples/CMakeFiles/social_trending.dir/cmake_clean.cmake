file(REMOVE_RECURSE
  "CMakeFiles/social_trending.dir/social_trending.cpp.o"
  "CMakeFiles/social_trending.dir/social_trending.cpp.o.d"
  "social_trending"
  "social_trending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_trending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
