# Empty compiler generated dependencies file for social_trending.
# This may be replaced when dependencies are built.
