# Empty dependencies file for bench_fig06_update_fraction.
# This may be replaced when dependencies are built.
