file(REMOVE_RECURSE
  "../bench/bench_fig06_update_fraction"
  "../bench/bench_fig06_update_fraction.pdb"
  "CMakeFiles/bench_fig06_update_fraction.dir/bench_fig06_update_fraction.cc.o"
  "CMakeFiles/bench_fig06_update_fraction.dir/bench_fig06_update_fraction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_update_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
