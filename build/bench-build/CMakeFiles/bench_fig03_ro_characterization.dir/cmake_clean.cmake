file(REMOVE_RECURSE
  "../bench/bench_fig03_ro_characterization"
  "../bench/bench_fig03_ro_characterization.pdb"
  "CMakeFiles/bench_fig03_ro_characterization.dir/bench_fig03_ro_characterization.cc.o"
  "CMakeFiles/bench_fig03_ro_characterization.dir/bench_fig03_ro_characterization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_ro_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
