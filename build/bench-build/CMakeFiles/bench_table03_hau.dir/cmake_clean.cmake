file(REMOVE_RECURSE
  "../bench/bench_table03_hau"
  "../bench/bench_table03_hau.pdb"
  "CMakeFiles/bench_table03_hau.dir/bench_table03_hau.cc.o"
  "CMakeFiles/bench_table03_hau.dir/bench_table03_hau.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_hau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
