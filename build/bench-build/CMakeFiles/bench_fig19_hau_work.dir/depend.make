# Empty dependencies file for bench_fig19_hau_work.
# This may be replaced when dependencies are built.
