file(REMOVE_RECURSE
  "../bench/bench_fig19_hau_work"
  "../bench/bench_fig19_hau_work.pdb"
  "CMakeFiles/bench_fig19_hau_work.dir/bench_fig19_hau_work.cc.o"
  "CMakeFiles/bench_fig19_hau_work.dir/bench_fig19_hau_work.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_hau_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
