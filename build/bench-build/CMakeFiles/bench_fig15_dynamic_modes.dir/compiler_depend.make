# Empty compiler generated dependencies file for bench_fig15_dynamic_modes.
# This may be replaced when dependencies are built.
