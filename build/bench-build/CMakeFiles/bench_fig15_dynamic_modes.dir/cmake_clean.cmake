file(REMOVE_RECURSE
  "../bench/bench_fig15_dynamic_modes"
  "../bench/bench_fig15_dynamic_modes.pdb"
  "CMakeFiles/bench_fig15_dynamic_modes.dir/bench_fig15_dynamic_modes.cc.o"
  "CMakeFiles/bench_fig15_dynamic_modes.dir/bench_fig15_dynamic_modes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dynamic_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
