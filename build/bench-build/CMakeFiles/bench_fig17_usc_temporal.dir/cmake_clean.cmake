file(REMOVE_RECURSE
  "../bench/bench_fig17_usc_temporal"
  "../bench/bench_fig17_usc_temporal.pdb"
  "CMakeFiles/bench_fig17_usc_temporal.dir/bench_fig17_usc_temporal.cc.o"
  "CMakeFiles/bench_fig17_usc_temporal.dir/bench_fig17_usc_temporal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_usc_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
