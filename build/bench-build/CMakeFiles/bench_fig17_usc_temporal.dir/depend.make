# Empty dependencies file for bench_fig17_usc_temporal.
# This may be replaced when dependencies are built.
