
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table02_datasets.cc" "bench-build/CMakeFiles/bench_table02_datasets.dir/bench_table02_datasets.cc.o" "gcc" "bench-build/CMakeFiles/bench_table02_datasets.dir/bench_table02_datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/igs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/igs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/igs_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/igs_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/igs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/igs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
