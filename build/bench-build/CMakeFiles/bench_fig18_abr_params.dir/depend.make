# Empty dependencies file for bench_fig18_abr_params.
# This may be replaced when dependencies are built.
