file(REMOVE_RECURSE
  "../bench/bench_fig18_abr_params"
  "../bench/bench_fig18_abr_params.pdb"
  "CMakeFiles/bench_fig18_abr_params.dir/bench_fig18_abr_params.cc.o"
  "CMakeFiles/bench_fig18_abr_params.dir/bench_fig18_abr_params.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_abr_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
