file(REMOVE_RECURSE
  "../bench/bench_dah_comparison"
  "../bench/bench_dah_comparison.pdb"
  "CMakeFiles/bench_dah_comparison.dir/bench_dah_comparison.cc.o"
  "CMakeFiles/bench_dah_comparison.dir/bench_dah_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dah_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
