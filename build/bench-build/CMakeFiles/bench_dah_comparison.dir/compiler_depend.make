# Empty compiler generated dependencies file for bench_dah_comparison.
# This may be replaced when dependencies are built.
