file(REMOVE_RECURSE
  "../bench/bench_fig13_abr_usc"
  "../bench/bench_fig13_abr_usc.pdb"
  "CMakeFiles/bench_fig13_abr_usc.dir/bench_fig13_abr_usc.cc.o"
  "CMakeFiles/bench_fig13_abr_usc.dir/bench_fig13_abr_usc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_abr_usc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
