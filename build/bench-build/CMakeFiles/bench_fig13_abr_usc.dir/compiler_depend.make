# Empty compiler generated dependencies file for bench_fig13_abr_usc.
# This may be replaced when dependencies are built.
