# Empty compiler generated dependencies file for bench_fig20_hau_noc.
# This may be replaced when dependencies are built.
