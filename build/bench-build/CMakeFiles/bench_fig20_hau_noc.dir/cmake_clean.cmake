file(REMOVE_RECURSE
  "../bench/bench_fig20_hau_noc"
  "../bench/bench_fig20_hau_noc.pdb"
  "CMakeFiles/bench_fig20_hau_noc.dir/bench_fig20_hau_noc.cc.o"
  "CMakeFiles/bench_fig20_hau_noc.dir/bench_fig20_hau_noc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_hau_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
