# Empty compiler generated dependencies file for bench_fig04_degree_distribution.
# This may be replaced when dependencies are built.
