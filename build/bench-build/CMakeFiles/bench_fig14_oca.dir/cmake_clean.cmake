file(REMOVE_RECURSE
  "../bench/bench_fig14_oca"
  "../bench/bench_fig14_oca.pdb"
  "CMakeFiles/bench_fig14_oca.dir/bench_fig14_oca.cc.o"
  "CMakeFiles/bench_fig14_oca.dir/bench_fig14_oca.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_oca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
