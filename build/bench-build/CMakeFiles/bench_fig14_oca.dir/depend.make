# Empty dependencies file for bench_fig14_oca.
# This may be replaced when dependencies are built.
