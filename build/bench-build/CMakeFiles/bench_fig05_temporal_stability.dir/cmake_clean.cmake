file(REMOVE_RECURSE
  "../bench/bench_fig05_temporal_stability"
  "../bench/bench_fig05_temporal_stability.pdb"
  "CMakeFiles/bench_fig05_temporal_stability.dir/bench_fig05_temporal_stability.cc.o"
  "CMakeFiles/bench_fig05_temporal_stability.dir/bench_fig05_temporal_stability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_temporal_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
