file(REMOVE_RECURSE
  "CMakeFiles/igs_common.dir/thread_pool.cc.o"
  "CMakeFiles/igs_common.dir/thread_pool.cc.o.d"
  "libigs_common.a"
  "libigs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
