# Empty compiler generated dependencies file for igs_common.
# This may be replaced when dependencies are built.
