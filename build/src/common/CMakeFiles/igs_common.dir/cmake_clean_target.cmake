file(REMOVE_RECURSE
  "libigs_common.a"
)
