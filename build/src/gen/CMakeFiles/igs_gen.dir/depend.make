# Empty dependencies file for igs_gen.
# This may be replaced when dependencies are built.
