file(REMOVE_RECURSE
  "CMakeFiles/igs_gen.dir/datasets.cc.o"
  "CMakeFiles/igs_gen.dir/datasets.cc.o.d"
  "CMakeFiles/igs_gen.dir/edge_stream.cc.o"
  "CMakeFiles/igs_gen.dir/edge_stream.cc.o.d"
  "libigs_gen.a"
  "libigs_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igs_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
