file(REMOVE_RECURSE
  "libigs_gen.a"
)
