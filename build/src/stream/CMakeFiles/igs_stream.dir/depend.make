# Empty dependencies file for igs_stream.
# This may be replaced when dependencies are built.
