file(REMOVE_RECURSE
  "libigs_stream.a"
)
