file(REMOVE_RECURSE
  "CMakeFiles/igs_stream.dir/batch.cc.o"
  "CMakeFiles/igs_stream.dir/batch.cc.o.d"
  "CMakeFiles/igs_stream.dir/reorder.cc.o"
  "CMakeFiles/igs_stream.dir/reorder.cc.o.d"
  "libigs_stream.a"
  "libigs_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igs_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
