file(REMOVE_RECURSE
  "libigs_graph.a"
)
