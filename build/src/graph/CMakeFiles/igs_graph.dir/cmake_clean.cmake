file(REMOVE_RECURSE
  "CMakeFiles/igs_graph.dir/adjacency_list.cc.o"
  "CMakeFiles/igs_graph.dir/adjacency_list.cc.o.d"
  "CMakeFiles/igs_graph.dir/degree_aware_hash.cc.o"
  "CMakeFiles/igs_graph.dir/degree_aware_hash.cc.o.d"
  "CMakeFiles/igs_graph.dir/indexed_adjacency.cc.o"
  "CMakeFiles/igs_graph.dir/indexed_adjacency.cc.o.d"
  "libigs_graph.a"
  "libigs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
