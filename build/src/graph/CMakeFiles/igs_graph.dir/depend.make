# Empty dependencies file for igs_graph.
# This may be replaced when dependencies are built.
