
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adjacency_list.cc" "src/graph/CMakeFiles/igs_graph.dir/adjacency_list.cc.o" "gcc" "src/graph/CMakeFiles/igs_graph.dir/adjacency_list.cc.o.d"
  "/root/repo/src/graph/degree_aware_hash.cc" "src/graph/CMakeFiles/igs_graph.dir/degree_aware_hash.cc.o" "gcc" "src/graph/CMakeFiles/igs_graph.dir/degree_aware_hash.cc.o.d"
  "/root/repo/src/graph/indexed_adjacency.cc" "src/graph/CMakeFiles/igs_graph.dir/indexed_adjacency.cc.o" "gcc" "src/graph/CMakeFiles/igs_graph.dir/indexed_adjacency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/igs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
