file(REMOVE_RECURSE
  "libigs_core.a"
)
