file(REMOVE_RECURSE
  "CMakeFiles/igs_core.dir/abr.cc.o"
  "CMakeFiles/igs_core.dir/abr.cc.o.d"
  "CMakeFiles/igs_core.dir/cad.cc.o"
  "CMakeFiles/igs_core.dir/cad.cc.o.d"
  "CMakeFiles/igs_core.dir/engine.cc.o"
  "CMakeFiles/igs_core.dir/engine.cc.o.d"
  "libigs_core.a"
  "libigs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
