# Empty compiler generated dependencies file for igs_core.
# This may be replaced when dependencies are built.
