file(REMOVE_RECURSE
  "libigs_sim.a"
)
