# Empty compiler generated dependencies file for igs_sim.
# This may be replaced when dependencies are built.
