
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/igs_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/igs_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/exec_sim.cc" "src/sim/CMakeFiles/igs_sim.dir/exec_sim.cc.o" "gcc" "src/sim/CMakeFiles/igs_sim.dir/exec_sim.cc.o.d"
  "/root/repo/src/sim/hau.cc" "src/sim/CMakeFiles/igs_sim.dir/hau.cc.o" "gcc" "src/sim/CMakeFiles/igs_sim.dir/hau.cc.o.d"
  "/root/repo/src/sim/noc.cc" "src/sim/CMakeFiles/igs_sim.dir/noc.cc.o" "gcc" "src/sim/CMakeFiles/igs_sim.dir/noc.cc.o.d"
  "/root/repo/src/sim/update_runner.cc" "src/sim/CMakeFiles/igs_sim.dir/update_runner.cc.o" "gcc" "src/sim/CMakeFiles/igs_sim.dir/update_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/igs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/igs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/igs_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
