file(REMOVE_RECURSE
  "CMakeFiles/igs_sim.dir/cache.cc.o"
  "CMakeFiles/igs_sim.dir/cache.cc.o.d"
  "CMakeFiles/igs_sim.dir/exec_sim.cc.o"
  "CMakeFiles/igs_sim.dir/exec_sim.cc.o.d"
  "CMakeFiles/igs_sim.dir/hau.cc.o"
  "CMakeFiles/igs_sim.dir/hau.cc.o.d"
  "CMakeFiles/igs_sim.dir/noc.cc.o"
  "CMakeFiles/igs_sim.dir/noc.cc.o.d"
  "CMakeFiles/igs_sim.dir/update_runner.cc.o"
  "CMakeFiles/igs_sim.dir/update_runner.cc.o.d"
  "libigs_sim.a"
  "libigs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
