/**
 * @file
 * Domain example: social-network trending dashboard.
 *
 * A wiki-like interaction stream (strong burst hubs, temporal community
 * locality) is ingested in *large* batches — the throughput scenario
 * where the paper's machinery shines: ABR keeps these high-degree
 * batches on the reordered+USC path, and OCA aggregates compute rounds
 * of overlapping batches.  Incremental PageRank maintains the trending
 * list.
 *
 *   $ ./social_trending [batches]
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "analytics/pagerank.h"
#include "core/engine.h"
#include "gen/datasets.h"

int
main(int argc, char** argv)
{
    using namespace igs;

    const std::uint64_t batches =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
    const auto& ds = gen::find_dataset("wiki");
    auto interactions = ds.make_generator();

    core::EngineConfig config;
    config.policy = core::UpdatePolicy::kAbrUscHau;
    config.oca.enabled = true;
    core::RealTimeEngine engine(config, ds.model.num_vertices);
    analytics::IncrementalPageRank trending;

    constexpr std::size_t kBatchSize = 50000;
    std::printf("%-6s %-10s %-6s %-8s %-8s %s\n", "batch", "path", "CAD",
                "overlap", "compute", "update ms");
    for (std::uint64_t id = 1; id <= batches; ++id) {
        stream::EdgeBatch batch;
        batch.id = id;
        batch.set_edges(interactions.take(kBatchSize));
        const core::BatchReport report = engine.ingest(batch);

        const bool compute_now = engine.compute_due();
        std::printf("%-6llu %-10s %-6s %-8.2f %-8s %.1f\n",
                    static_cast<unsigned long long>(id),
                    report.reordered
                        ? (report.used_usc ? "RO+USC" : "RO")
                        : "baseline",
                    report.cad.has_value()
                        ? std::to_string(
                              static_cast<int>(report.cad->cad()))
                              .c_str()
                        : "-",
                    report.overlap,
                    compute_now ? "now" : "deferred",
                    report.wall_seconds * 1e3);

        if (compute_now) {
            const core::PendingWork work = engine.take_pending_work();
            trending.on_batch(engine.graph(), work.affected);
        }
    }

    // Final trending list: top 5 by rank.
    const auto& ranks = trending.ranks();
    std::vector<VertexId> order(ranks.size());
    for (VertexId v = 0; v < order.size(); ++v) {
        order[v] = v;
    }
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](VertexId a, VertexId b) {
                          return ranks[a] > ranks[b];
                      });
    std::printf("\ntrending now:\n");
    for (int i = 0; i < 5; ++i) {
        std::printf("  #%d  vertex %-8u rank %.6f  (in-degree %u)\n", i + 1,
                    order[i], ranks[order[i]],
                    engine.graph().degree(order[i], Direction::kIn));
    }
    return 0;
}
