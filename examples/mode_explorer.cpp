/**
 * @file
 * Mode explorer: compare every update policy on one dataset/batch-size
 * combination using the Table-1 timing model — a one-command view of the
 * paper's trade-off space.
 *
 *   $ ./mode_explorer [dataset] [batch_size] [batches]
 *   $ ./mode_explorer wiki 100000 4
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "core/engine.h"
#include "gen/datasets.h"
#include "sim/sim_engine.h"

int
main(int argc, char** argv)
{
    using namespace igs;
    using core::UpdatePolicy;

    const std::string dataset = argc > 1 ? argv[1] : "wiki";
    const std::size_t batch_size =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;
    const std::uint64_t batches =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;

    const auto& ds = gen::find_dataset(dataset);
    std::printf("dataset %s (%s), batch size %zu, %llu batches — "
                "simulated on the paper's Table-1 16-core machine\n\n",
                ds.name.c_str(), ds.full_name.c_str(), batch_size,
                static_cast<unsigned long long>(batches));

    const UpdatePolicy policies[] = {
        UpdatePolicy::kBaseline,    UpdatePolicy::kAlwaysReorder,
        UpdatePolicy::kAlwaysReorderUsc, UpdatePolicy::kAlwaysHau,
        UpdatePolicy::kAbr,         UpdatePolicy::kAbrUsc,
        UpdatePolicy::kAbrUscHau};

    TextTable t({"policy", "update Mcycles", "speedup", "reordered",
                 "HAU batches"});
    double baseline_cycles = 0.0;
    for (UpdatePolicy policy : policies) {
        core::EngineConfig cfg;
        cfg.policy = policy;
        sim::SimEngine engine(cfg, sim::MachineParams{},
                               sim::SwCostParams{}, sim::HauCostParams{},
                               ds.model.num_vertices);
        auto genr = ds.make_generator();
        Cycles cycles = 0;
        int reordered = 0;
        int hau = 0;
        for (std::uint64_t k = 1; k <= batches; ++k) {
            stream::EdgeBatch batch;
            batch.id = k;
            batch.set_edges(genr.take(batch_size));
            const auto report = engine.ingest(batch);
            cycles += report.update.cycles;
            reordered += report.reordered ? 1 : 0;
            hau += report.used_hau ? 1 : 0;
        }
        if (policy == UpdatePolicy::kBaseline) {
            baseline_cycles = static_cast<double>(cycles);
        }
        t.row()
            .cell(std::string(to_string(policy)))
            .cell(static_cast<double>(cycles) / 1e6, 2)
            .cell(baseline_cycles / static_cast<double>(cycles))
            .cell(static_cast<std::uint64_t>(reordered))
            .cell(static_cast<std::uint64_t>(hau));
    }
    t.print();
    std::printf("\nTip: try an adverse dataset (lj, uk) or a small batch "
                "size (1000) to watch the trade-off flip.\n");
    return 0;
}
