/**
 * @file
 * Quickstart: five minutes with the input-aware streaming engine.
 *
 * Streams a synthetic R-MAT graph into a @ref igs::core::RealTimeEngine
 * (real threads, real locks — the production frontend), lets ABR pick the
 * update path per batch, and keeps PageRank fresh incrementally.
 *
 *   $ ./quickstart
 */
#include <cstdio>

#include "analytics/pagerank.h"
#include "core/engine.h"
#include "gen/rmat.h"

int
main()
{
    using namespace igs;

    // 1. Configure the engine: the full input-aware policy (ABR decides
    //    per batch between reordered+USC software updates and the
    //    baseline path; on real hardware HAU is unavailable and adverse
    //    batches simply stay on the baseline path).
    core::EngineConfig config;
    config.policy = core::UpdatePolicy::kAbrUscHau;
    config.oca.enabled = true;

    gen::RmatGenerator rmat(gen::RmatParams{.scale = 14, .seed = 42});
    core::RealTimeEngine engine(config, rmat.num_vertices());
    analytics::IncrementalPageRank pagerank;

    // 2. Stream batches; compute after each (or after two, when OCA
    //    aggregates overlapping batches).
    constexpr std::size_t kBatchSize = 10000;
    constexpr std::uint64_t kBatches = 12;
    for (std::uint64_t id = 1; id <= kBatches; ++id) {
        stream::EdgeBatch batch;
        batch.id = id;
        batch.set_edges(rmat.take(kBatchSize));

        const core::BatchReport report = engine.ingest(batch);
        std::printf("batch %2llu: %-9s %s%s  (%.2f ms update",
                    static_cast<unsigned long long>(id),
                    report.reordered ? "reordered" : "baseline",
                    report.used_usc ? "+USC" : "",
                    report.abr_active ? "  [ABR-active]" : "",
                    report.wall_seconds * 1e3);
        if (report.cad.has_value()) {
            std::printf(", CAD=%.0f", report.cad->cad());
        }
        std::printf(")\n");

        if (engine.compute_due()) {
            const core::PendingWork work = engine.take_pending_work();
            pagerank.on_batch(engine.graph(), work.affected);
        } else {
            std::printf("          compute deferred (OCA overlap %.2f)\n",
                        report.overlap);
        }
    }

    // 3. Read results off the latest snapshot.
    const auto& ranks = pagerank.ranks();
    VertexId best = 0;
    for (VertexId v = 1; v < ranks.size(); ++v) {
        if (ranks[v] > ranks[best]) {
            best = v;
        }
    }
    std::printf("\ngraph: %zu vertices, %llu edges\n",
                engine.graph().num_vertices(),
                static_cast<unsigned long long>(engine.graph().num_edges()));
    std::printf("top-ranked vertex: %u (rank %.6f)\n", best, ranks[best]);
    return 0;
}
