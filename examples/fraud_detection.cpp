/**
 * @file
 * Domain example: streaming financial-fraud monitoring.
 *
 * A transaction stream (accounts as vertices, weighted payment edges)
 * is ingested in *small* batches — the latency-critical scenario of
 * paper §5, where OCA is deliberately disabled so every batch gets an
 * immediate analysis round.  Incremental SSSP from a flagged mule
 * account maintains "proximity to known fraud"; accounts whose weighted
 * distance drops under a threshold are alerted in the same batch they
 * become reachable.
 *
 *   $ ./fraud_detection [batches]
 */
#include <cstdio>
#include <cstdlib>

#include "analytics/sssp.h"
#include "core/engine.h"
#include "gen/edge_stream.h"

int
main(int argc, char** argv)
{
    using namespace igs;

    constexpr VertexId kFlaggedAccount = 0;
    constexpr Weight kAlertDistance = 2.5f;
    const std::uint64_t batches =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40;

    // Transaction streams are bursty and community-local: model with a
    // tight active community and weighted edges (transfer sizes).
    gen::StreamModel model;
    model.num_vertices = 20000;
    model.num_hubs = 64;       // payment processors / exchanges
    model.hub_mass_dst = 0.15;
    model.community_mass = 0.7;
    model.community_size = 3000;
    model.weighted = true;
    model.seed = 2026;
    gen::EdgeStreamGenerator transactions(model);

    // Latency-sensitive configuration: small batches, OCA off (§5:
    // "extremely latency-sensitive applications ... trading off
    // granularity for a higher computation performance is not a good
    // choice"), ABR still adapts the update path.
    core::EngineConfig config;
    config.policy = core::UpdatePolicy::kAbrUsc;
    config.oca.enabled = false;
    core::RealTimeEngine engine(config, model.num_vertices);
    analytics::IncrementalSssp proximity(kFlaggedAccount);

    constexpr std::size_t kBatchSize = 500; // ~sub-second reaction
    std::size_t alerts = 0;
    std::vector<bool> alerted(model.num_vertices, false);

    for (std::uint64_t id = 1; id <= batches; ++id) {
        stream::EdgeBatch batch;
        batch.id = id;
        batch.set_edges(transactions.take(kBatchSize));
        engine.ingest(batch);

        const core::PendingWork work = engine.take_pending_work();
        proximity.on_batch(engine.graph(), work.inserted, work.deleted);

        // Alert newly-close accounts (affected vertices only: the
        // incremental model guarantees distances elsewhere are unchanged).
        for (VertexId v : work.affected) {
            if (!alerted[v] && v != kFlaggedAccount &&
                proximity.distances()[v] <= kAlertDistance) {
                alerted[v] = true;
                ++alerts;
                if (alerts <= 10) {
                    std::printf("batch %3llu  ALERT account %6u is %.2f "
                                "hops-worth of money from flagged "
                                "account\n",
                                static_cast<unsigned long long>(id), v,
                                proximity.distances()[v]);
                }
            }
        }
    }

    std::size_t reachable = 0;
    for (Weight d : proximity.distances()) {
        if (d != kInfiniteDistance) {
            ++reachable;
        }
    }
    std::printf("\nprocessed %llu batches x %zu transactions\n",
                static_cast<unsigned long long>(batches), kBatchSize);
    std::printf("accounts reachable from flagged account: %zu; alerts "
                "raised: %zu\n",
                reachable, alerts);
    return 0;
}
