/**
 * @file
 * Fig 4 reproduction: input-batch degree distributions of lj vs wiki at
 * batch size 100K (the paper's log-log plot).  lj's batch is "low-degree"
 * (paper: top ten degrees 7-30); wiki's is "high-degree" (401-1881).
 */
#include <algorithm>
#include <cmath>

#include "bench_support.h"

#include "stream/batch.h"

namespace {

void
print_distribution(const char* name, const igs::Histogram& h)
{
    std::printf("%s: N(k) by log2 degree bucket\n", name);
    // Log-binned summary of the paper's log-log scatter.
    std::map<int, std::uint64_t> buckets;
    for (const auto& [deg, count] : h.bins()) {
        buckets[static_cast<int>(std::log2(static_cast<double>(deg)))] +=
            count;
    }
    igs::TextTable t({"degree range", "vertices"});
    for (const auto& [b, count] : buckets) {
        const std::uint64_t lo = 1ull << b;
        const std::uint64_t hi = (1ull << (b + 1)) - 1;
        t.row()
            .cell(std::to_string(lo) + "-" + std::to_string(hi))
            .cell(count);
    }
    t.print();
}

} // namespace

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig04_degree_distribution", argc, argv);
    using namespace igs;
    bench::banner("Fig 4: batch degree distributions, lj vs wiki @100K",
                  "Fig 4 (log-log N(k); lj max ~30, wiki max ~1881)", "");

    for (const char* name : {"lj", "wiki"}) {
        const auto& ds = gen::find_dataset(name);
        auto genr = ds.make_generator();
        const auto stats =
            stream::compute_batch_degree_stats(genr.take(100000));
        std::printf("--- %s-100K ---\n", name);
        std::printf("max out-degree = %u, max in-degree = %u\n",
                    stats.max_out_degree, stats.max_in_degree);
        // Top-ten in-batch degrees, the paper's headline comparison.
        std::vector<std::uint64_t> top;
        for (const auto& [deg, count] : stats.in_degree_histogram.bins()) {
            for (std::uint64_t i = 0; i < count; ++i) {
                top.push_back(deg);
            }
        }
        std::sort(top.rbegin(), top.rend());
        std::printf("top ten in-batch degrees:");
        for (std::size_t i = 0; i < 10 && i < top.size(); ++i) {
            std::printf(" %llu",
                        static_cast<unsigned long long>(top[i]));
        }
        std::printf("\n");
        print_distribution(name, stats.in_degree_histogram);
        std::printf("\n");
    }
    return 0;
}
