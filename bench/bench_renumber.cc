/**
 * @file
 * Locality-renumbering harness (DESIGN.md §16).  Replays two synthetic
 * streams through RealTimeEngine with the vertex-id indirection layer and
 * prices the resulting adjacency-row traffic in the Table-1 memory model
 * (sim::RenumberMeter):
 *
 *  - "hub": hub-heavy traffic whose hot vertices are *scattered* across
 *    the logical id space (the adversarial placement renumbering exists
 *    for).  Run once with renumbering off and once with the ABR-style
 *    threshold trigger on — the headline is the amortized modeled-cycle
 *    win, renumber-pass cost included;
 *  - "uniform": no hot set at all.  The trigger's skew gate must keep the
 *    policy from ever firing (reordering uniform traffic only costs).
 *
 * Each batch is metered under the id map that was live while it was
 * applied: accesses are replayed before `ingest` (a renumber happens at
 * the ingest tail), and every renumber the engine performs charges
 * charge_renumber_pass into the same meter, so the exported totals are an
 * honest amortization account.
 *
 * Batch counts are pinned — IGS_BENCH_SCALE deliberately has no effect —
 * so `--json` output is a deterministic function of the code and is used
 * as a golden set (tests/golden/golden_renumber.json) in
 * `ctest -L golden`.
 *
 * Usage: bench_renumber [--set=locality] [--json=<path>]
 */
#include "bench_support.h"

#include <cstring>

#include "common/random.h"
#include "sim/renumber_meter.h"
#include "stream/batch.h"

namespace {

using namespace igs;

// Sized so the *scattered* hot set (plus the uniform tail's churn)
// overflows the modeled private L2 while the *packed* hot set fits the
// private levels — the regime where row placement moves modeled cycles.
constexpr std::size_t kNumVertices = 65536;
constexpr std::size_t kNumHubs = 16384;
constexpr std::size_t kBatchSize = 8192;
constexpr std::size_t kNumBatches = 24;
constexpr double kHubBias = 0.9;

/** One pinned replay. */
struct Run {
    const char* dataset; // "hub" | "uniform"
    bool renumber;       // trigger policy on?
};

/** Meter + trigger activity of one replay. */
struct RenumberResult {
    core::RenumberStats engine;
    sim::RenumberMeterStats meter;
};

/**
 * Deterministic hub-id scatter: a SplitMix64-driven Fisher-Yates shuffle
 * of the vertex space; the first kNumHubs entries are the hub ids.  The
 * scatter is what renumbering undoes — consecutive hub *ranks* land on
 * unrelated lines until hub-sort packs them.
 */
std::vector<VertexId>
scattered_hubs()
{
    std::vector<VertexId> perm(kNumVertices);
    for (std::size_t i = 0; i < kNumVertices; ++i) {
        perm[i] = static_cast<VertexId>(i);
    }
    Rng rng(0x5ca77e12ed); // "scattered"
    for (std::size_t i = kNumVertices - 1; i > 0; --i) {
        std::swap(perm[i], perm[rng.below(i + 1)]);
    }
    perm.resize(kNumHubs);
    return perm;
}

/** Draw one endpoint of a hub-heavy edge (skewed within the hub set). */
VertexId
hub_endpoint(Rng& rng, const std::vector<VertexId>& hubs)
{
    if (rng.chance(kHubBias)) {
        // u^8 within-hub skew: a few thousand genuinely hot hubs, the
        // concentration the monitor's skew gate requires before a
        // renumber can pay off.
        const double u = rng.uniform();
        const double sq = u * u;
        const double quad = sq * sq;
        const auto idx = static_cast<std::size_t>(
            quad * quad * static_cast<double>(kNumHubs));
        return hubs[idx < kNumHubs ? idx : kNumHubs - 1];
    }
    return static_cast<VertexId>(rng.below(kNumVertices));
}

std::vector<StreamEdge>
make_batch(const char* dataset, Rng& rng, const std::vector<VertexId>& hubs)
{
    std::vector<StreamEdge> edges;
    edges.reserve(kBatchSize);
    const bool hub_heavy = std::strcmp(dataset, "hub") == 0;
    for (std::size_t i = 0; i < kBatchSize; ++i) {
        StreamEdge e;
        if (hub_heavy) {
            e.src = hub_endpoint(rng, hubs);
            e.dst = hub_endpoint(rng, hubs);
        } else {
            e.src = static_cast<VertexId>(rng.below(kNumVertices));
            e.dst = static_cast<VertexId>(rng.below(kNumVertices));
        }
        e.weight = 1.0f;
        edges.push_back(e);
    }
    return edges;
}

RenumberResult
replay(const Run& run)
{
    core::EngineConfig cfg;
    cfg.policy = core::UpdatePolicy::kBaseline;
    cfg.renumber.enabled = run.renumber;
    cfg.renumber.mode = graph::RenumberMode::kHubSort;
    core::RealTimeEngine engine(cfg, kNumVertices);
    sim::RenumberMeter meter;

    const std::vector<VertexId> hubs = scattered_hubs();
    Rng rng(0xb3ac4e5eedull + (std::strcmp(run.dataset, "hub") == 0 ? 0 : 1));

    RenumberResult out;
    std::uint64_t renumbers_seen = 0;
    for (std::uint64_t k = 1; k <= kNumBatches; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(make_batch(run.dataset, rng, hubs));
        // Meter the batch under the map that is live while it is applied:
        // a triggered renumber runs at the *tail* of this ingest.
        const graph::VertexIdMap& map = engine.graph().id_map();
        for (const StreamEdge& e : batch.edges()) {
            meter.access_row(map.to_physical(e.src), Direction::kOut);
            meter.access_row(map.to_physical(e.dst), Direction::kIn);
        }
        engine.ingest(batch);
        const core::RenumberStats& rs = engine.renumber_stats();
        while (renumbers_seen < rs.renumbers) {
            meter.charge_renumber_pass(kNumVertices);
            ++renumbers_seen;
        }
    }
    out.engine = engine.renumber_stats();
    out.meter = meter.stats();
    return out;
}

const std::vector<Run>&
runs()
{
    static const std::vector<Run> kRuns = {
        {"hub", false},
        {"hub", true},
        {"uniform", true},
    };
    return kRuns;
}

/**
 * Dedicated exporter (same pattern as bench_pipeline_overlap): the
 * renumber series is not part of the shared per-batch record shape in
 * bench_support.h's JsonSink — the pre-renumber goldens keep their exact
 * shape — so this bench serializes its own document with the same
 * top-level schema (schema_version / experiment / host / streams /
 * telemetry).
 */
void
write_json(const std::string& path, const std::vector<Run>& rs,
           const std::vector<RenumberResult>& results, const Timer& wall)
{
    telemetry::JsonWriter w(2);
    w.begin_object();
    w.kv("schema_version", bench::JsonSink::kSchemaVersion);
    w.kv("experiment", "renumber");
    w.key("host").begin_object();
    w.kv("bench_scale", bench::bench_scale());
    if (const char* e = std::getenv("IGS_BENCH_SCALE")) {
        w.kv("bench_scale_env", e);
    } else {
        w.key("bench_scale_env").null();
    }
    w.kv("wall_seconds", wall.seconds());
    w.end_object();
    w.kv("set", "locality");
    w.key("streams").begin_array();
    for (std::size_t i = 0; i < rs.size(); ++i) {
        const Run& r = rs[i];
        const RenumberResult& res = results[i];
        w.begin_object();
        w.kv("dataset", r.dataset);
        w.kv("renumber", r.renumber ? graph::to_string(
                                          graph::RenumberMode::kHubSort)
                                    : "off");
        w.kv("batch_size", static_cast<std::uint64_t>(kBatchSize));
        w.kv("num_batches", static_cast<std::uint64_t>(kNumBatches));
        w.kv("renumbers", res.engine.renumbers);
        w.kv("windows", res.engine.windows);
        w.kv("locality_ewma", res.engine.locality_ewma);
        w.kv("access_cycles",
             static_cast<std::uint64_t>(res.meter.access_cycles));
        w.kv("renumber_cycles",
             static_cast<std::uint64_t>(res.meter.renumber_cycles));
        w.kv("total_cycles",
             static_cast<std::uint64_t>(res.meter.total_cycles()));
        w.kv("l1_hits", res.meter.l1_hits);
        w.kv("l2_hits", res.meter.l2_hits);
        w.kv("l3_hits", res.meter.l3_hits);
        w.kv("memory_fills", res.meter.memory_fills);
        w.end_object();
    }
    w.end_array();
    w.key("telemetry").raw(telemetry::to_json(0));
    w.end_object();

    const std::string doc = w.take();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
        return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    Timer wall;
    std::string json_path;
    const char* set_name = "locality";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else if (std::strncmp(argv[i], "--set=", 6) == 0) {
            set_name = argv[i] + 6;
        }
    }
    if (std::strcmp(set_name, "locality") != 0) {
        std::fprintf(stderr,
                     "usage: bench_renumber [--set=locality] "
                     "[--json=<path>]\n");
        return 2;
    }

    bench::banner("locality renumbering",
                  "DESIGN.md §16 (input-aware renumbering; not a paper "
                  "figure)",
                  "amortized modeled cycles, renumber-pass cost included");
    TextTable t({"dataset", "renumber", "passes", "ewma", "access Mcyc",
                 "pass Mcyc", "total Mcyc"});
    std::vector<RenumberResult> results;
    results.reserve(runs().size());
    for (const Run& r : runs()) {
        const RenumberResult res = replay(r);
        t.row()
            .cell(std::string(r.dataset))
            .cell(std::string(r.renumber ? "hub-sort" : "off"))
            .cell(res.engine.renumbers)
            .cell(res.engine.locality_ewma, 3)
            .cell(1e-6 * static_cast<double>(res.meter.access_cycles))
            .cell(1e-6 * static_cast<double>(res.meter.renumber_cycles))
            .cell(1e-6 * static_cast<double>(res.meter.total_cycles()));
        results.push_back(res);
    }
    t.print();

    // Headline: amortized win on the hub-heavy stream, and the uniform
    // stream's trigger silence.  Exported as sim.renumber.* gauges so the
    // account is visible in every telemetry snapshot of this bench.
    const auto hub_off =
        static_cast<double>(results[0].meter.total_cycles());
    const auto hub_on = static_cast<double>(results[1].meter.total_cycles());
    sim::publish_renumber_headline(hub_off, hub_on,
                                   results[2].engine.renumbers);
    std::printf("\nhub-heavy amortized: off %.2f Mcyc -> on %.2f Mcyc "
                "(%.2fx, renumber passes included)\n",
                1e-6 * hub_off, 1e-6 * hub_on, hub_off / hub_on);
    std::printf("uniform stream renumbers: %llu (skew gate; expected 0)\n",
                static_cast<unsigned long long>(results[2].engine.renumbers));

    if (!json_path.empty()) {
        write_json(json_path, runs(), results, wall);
    }
    return 0;
}
