/**
 * @file
 * Fig 6 reproduction: total time spent in graph updates (percentage of
 * overall, and absolute) for the baseline and always-RO configurations.
 * Paper: geomean 19% (baseline) and 33% (RO) of total time is updates —
 * RO inflates the update share because many workloads are
 * reordering-adverse.
 */
#include "bench_support.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig06_update_fraction", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Fig 6: update share of total time, baseline vs RO",
                  "Fig 6 (geomean: baseline 19%, RO 33%)",
                  "absolute times are simulated Mcycles on the Table-1 "
                  "machine; compute = incremental PR");

    std::vector<std::size_t> batch_sizes = gen::paper_batch_sizes();
    if (argc > 1 && std::string(argv[1]) == "--quick") {
        batch_sizes = {10000, 100000};
    }

    TextTable t({"dataset", "batch", "base upd %", "RO upd %",
                 "base upd Mcyc", "RO upd Mcyc"});
    std::vector<double> base_pcts;
    std::vector<double> ro_pcts;
    for (const auto& ds : gen::registry()) {
        for (std::size_t b : batch_sizes) {
            const std::size_t nb = bench::batches_for(b);
            const auto base = bench::run_stream(ds, b, nb,
                                                UpdatePolicy::kBaseline,
                                                Algo::kPageRank);
            const auto ro = bench::run_stream(ds, b, nb,
                                              UpdatePolicy::kAlwaysReorder,
                                              Algo::kPageRank);
            const double bp = 100.0 *
                              static_cast<double>(base.update_cycles) /
                              static_cast<double>(base.overall_cycles());
            const double rp = 100.0 *
                              static_cast<double>(ro.update_cycles) /
                              static_cast<double>(ro.overall_cycles());
            base_pcts.push_back(bp);
            ro_pcts.push_back(rp);
            t.row()
                .cell(ds.name)
                .cell(static_cast<std::uint64_t>(b))
                .cell(bp, 1)
                .cell(rp, 1)
                .cell(static_cast<double>(base.update_cycles) / 1e6, 2)
                .cell(static_cast<double>(ro.update_cycles) / 1e6, 2);
        }
    }
    t.print();
    std::printf("\ngeomean update share: baseline %.1f%% (paper 19%%), "
                "RO %.1f%% (paper 33%%)\n",
                geomean(base_pcts), geomean(ro_pcts));
    return 0;
}
