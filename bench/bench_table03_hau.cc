/**
 * @file
 * Table 3 reproduction: speedup of the full system (ABR+USC+HAU) over the
 * software-only input-aware configuration (ABR+USC), for the paper's
 * 8-dataset x 4-batch-size HAU evaluation subset.
 *
 * Paper: update speedups 1x-7.54x (1x where the batch is
 * reordering-friendly and HAU is not engaged), average 2.6x across
 * reordering-adverse cases; overall (avg) up to 2.01x, overall (max) up
 * to 3.29x.
 */
#include "bench_support.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("table03_hau", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Table 3: ABR+USC+HAU vs ABR+USC",
                  "Table 3 (8 datasets x {100,1K,10K,100K}; paper avg 2.6x "
                  "update speedup on reordering-adverse cases)",
                  "overall avg/max are across incremental PR and SSSP");

    const std::vector<std::string> datasets{"lj",     "patents", "topcats",
                                            "berkstan", "fb",    "flickr",
                                            "amazon", "superuser"};
    const std::vector<std::size_t> batch_sizes{100, 1000, 10000, 100000};

    TextTable t({"dataset", "batch", "update x", "overall avg x",
                 "overall max x", "HAU engaged"});
    std::vector<double> adverse_updates;
    for (const auto& name : datasets) {
        const auto& ds = gen::find_dataset(name);
        for (std::size_t b : batch_sizes) {
            const std::size_t nb = bench::batches_for(b);
            double update_x = 0.0;
            std::vector<double> overall_x;
            bool hau_engaged = false;
            for (Algo algo : {Algo::kPageRank, Algo::kSssp}) {
                const auto sw = bench::run_stream(
                    ds, b, nb, UpdatePolicy::kAbrUsc, algo);
                const auto hw = bench::run_stream(
                    ds, b, nb, UpdatePolicy::kAbrUscHau, algo);
                if (algo == Algo::kPageRank) {
                    update_x = bench::speedup(sw, hw);
                    for (const auto& rec : hw.batches) {
                        hau_engaged = hau_engaged || rec.report.used_hau;
                    }
                }
                overall_x.push_back(bench::overall_speedup(sw, hw));
            }
            if (hau_engaged) {
                adverse_updates.push_back(update_x);
            }
            t.row()
                .cell(ds.name)
                .cell(static_cast<std::uint64_t>(b))
                .cell(update_x)
                .cell(mean(overall_x))
                .cell(max_of(overall_x))
                .cell(std::string(hau_engaged ? "yes" : "no (friendly)"));
        }
    }
    t.print();
    if (!adverse_updates.empty()) {
        std::printf("\naverage update speedup across HAU-engaged "
                    "(reordering-adverse) cases: %.2fx (paper: 2.6x, max "
                    "7.54x); max here: %.2fx\n",
                    geomean(adverse_updates), max_of(adverse_updates));
    }
    return 0;
}
