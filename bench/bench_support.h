/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * Every bench binary replays registry dataset streams through the Table-1
 * timing model and prints the paper's rows/series as aligned text tables.
 * Workload sizes are scaled for a laptop run (see DESIGN.md); set
 * IGS_BENCH_SCALE=<float> to multiply the per-configuration batch counts
 * (e.g. 2 for a longer, lower-variance run, 0.5 for a smoke run).
 */
#ifndef IGS_BENCH_BENCH_SUPPORT_H
#define IGS_BENCH_BENCH_SUPPORT_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analytics/compute_meter.h"
#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/engine.h"
#include "gen/datasets.h"
#include "sim/update_runner.h"

namespace igs::bench {

/** Batch-count defaults per batch size, keeping total work laptop-sized. */
inline std::size_t
batches_for(std::size_t batch_size)
{
    double scale = 1.0;
    if (const char* s = std::getenv("IGS_BENCH_SCALE")) {
        scale = std::atof(s);
        if (scale <= 0.0) {
            scale = 1.0;
        }
    }
    std::size_t n = 4;
    if (batch_size <= 100) {
        n = 20;
    } else if (batch_size <= 1000) {
        n = 16;
    } else if (batch_size <= 10000) {
        n = 8;
    } else if (batch_size <= 100000) {
        n = 4;
    } else {
        n = 2;
    }
    n = static_cast<std::size_t>(static_cast<double>(n) * scale);
    return n < 2 ? 2 : n;
}

/** Per-batch record of one stream replay. */
struct BatchRecord {
    core::BatchReport report;
    analytics::ComputeStats compute;
    bool computed = false; // false when OCA deferred this batch's round
};

/** Totals of one replayed stream. */
struct StreamResult {
    std::vector<BatchRecord> batches;
    Cycles update_cycles = 0;
    Cycles compute_cycles = 0;

    Cycles overall_cycles() const { return update_cycles + compute_cycles; }
};

/** Which incremental algorithm drives the compute phase. */
enum class Algo { kPageRank, kSssp, kNone };

inline const char*
to_string(Algo a)
{
    switch (a) {
      case Algo::kPageRank:
        return "incremental-PR";
      case Algo::kSssp:
        return "incremental-SSSP";
      case Algo::kNone:
        return "update-only";
    }
    return "?";
}

/**
 * Replay `num_batches` batches of `batch_size` edges of `ds` through an
 * input-aware engine with the given policy, running the chosen incremental
 * algorithm on each (possibly OCA-aggregated) snapshot.
 */
inline StreamResult
run_stream(const gen::DatasetSpec& ds, std::size_t batch_size,
           std::size_t num_batches, core::UpdatePolicy policy,
           Algo algo = Algo::kPageRank, bool oca = false,
           const core::AbrParams& abr = core::AbrParams{})
{
    core::EngineConfig cfg;
    cfg.policy = policy;
    cfg.abr = abr;
    cfg.oca.enabled = oca;
    core::SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                           sim::HauCostParams{}, ds.model.num_vertices);
    analytics::IncrementalPageRank pr;
    analytics::IncrementalSssp sssp(0);
    auto genr = ds.make_generator();

    StreamResult out;
    const analytics::ComputeCostParams ccp;
    for (std::uint64_t k = 1; k <= num_batches; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(genr.take(batch_size));
        BatchRecord rec;
        rec.report = engine.ingest(batch);
        out.update_cycles += rec.report.update.cycles;
        if (algo != Algo::kNone && engine.compute_due()) {
            const auto work = engine.take_pending_work();
            rec.computed = true;
            switch (algo) {
              case Algo::kPageRank:
                rec.compute = pr.on_batch(engine.graph(), work.affected);
                break;
              case Algo::kSssp:
                rec.compute = sssp.on_batch(engine.graph(), work.inserted,
                                            work.deleted);
                break;
              case Algo::kNone:
                break;
            }
            out.compute_cycles += rec.compute.cycles(ccp);
        }
        out.batches.push_back(std::move(rec));
    }
    return out;
}

/** Mean of update speedups vs a baseline result. */
inline double
speedup(const StreamResult& baseline, const StreamResult& variant)
{
    return static_cast<double>(baseline.update_cycles) /
           static_cast<double>(variant.update_cycles);
}

inline double
overall_speedup(const StreamResult& baseline, const StreamResult& variant)
{
    return static_cast<double>(baseline.overall_cycles()) /
           static_cast<double>(variant.overall_cycles());
}

/** Print the standard bench banner. */
inline void
banner(const char* experiment, const char* paper_ref, const char* note)
{
    std::printf("== %s ==\n", experiment);
    std::printf("paper: %s\n", paper_ref);
    if (note != nullptr && note[0] != '\0') {
        std::printf("%s\n", note);
    }
    std::printf("\n");
}

} // namespace igs::bench

#endif // IGS_BENCH_BENCH_SUPPORT_H
