/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * Every bench binary replays registry dataset streams through the Table-1
 * timing model and prints the paper's rows/series as aligned text tables.
 * Workload sizes are scaled for a laptop run (see DESIGN.md); set
 * IGS_BENCH_SCALE=<float> to multiply the per-configuration batch counts
 * (e.g. 2 for a longer, lower-variance run, 0.5 for a smoke run).
 */
#ifndef IGS_BENCH_BENCH_SUPPORT_H
#define IGS_BENCH_BENCH_SUPPORT_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "analytics/compute_meter.h"
#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "common/check.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "core/engine.h"
#include "gen/datasets.h"
#include "graph/degree_aware_hash.h"
#include "graph/hybrid_store.h"
#include "graph/store_tuning.h"
#include "sim/sim_engine.h"
#include "sim/update_runner.h"

namespace igs::bench {

/**
 * The process-wide store tuning benches construct adaptive graph stores
 * with.  Defaults match StoreTuning's defaults; JsonSink's constructor
 * overrides it from `--dah-threshold=` / `--hybrid-threshold=` flags, and
 * every JSON export echoes the effective values in its `host` block so
 * golden diffs are threshold-aware.
 */
inline graph::StoreTuning&
store_tuning()
{
    static graph::StoreTuning tuning;
    return tuning;
}

/**
 * The IGS_BENCH_SCALE multiplier, parsed once per process.  Announces the
 * effective scale on stderr the first time it is consulted so a scaled run
 * is never mistaken for a full one.
 */
inline double
bench_scale()
{
    static const double scale = [] {
        double s = 1.0;
        if (const char* e = std::getenv("IGS_BENCH_SCALE")) {
            s = std::atof(e);
            if (s <= 0.0) {
                std::fprintf(stderr,
                             "[bench] ignoring invalid IGS_BENCH_SCALE=%s "
                             "(must be > 0); using 1\n",
                             e);
                s = 1.0;
            } else {
                std::fprintf(stderr, "[bench] effective IGS_BENCH_SCALE=%g\n",
                             s);
            }
        }
        return s;
    }();
    return scale;
}

/**
 * Batch-count defaults per batch size, keeping total work laptop-sized.
 * Counts never drop below 2 (speedups need at least one post-warmup batch);
 * a scale small enough to hit that floor is reported once rather than
 * silently yielding the unscaled minimum.
 */
inline std::size_t
batches_for(std::size_t batch_size)
{
    std::size_t n = 4;
    if (batch_size <= 100) {
        n = 20;
    } else if (batch_size <= 1000) {
        n = 16;
    } else if (batch_size <= 10000) {
        n = 8;
    } else if (batch_size <= 100000) {
        n = 4;
    } else {
        n = 2;
    }
    const double scaled = static_cast<double>(n) * bench_scale();
    if (scaled < 2.0) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::fprintf(stderr,
                         "[bench] IGS_BENCH_SCALE=%g clamps some batch "
                         "counts to the minimum of 2\n",
                         bench_scale());
        }
        return 2;
    }
    return static_cast<std::size_t>(scaled);
}

/** Per-batch record of one stream replay. */
struct BatchRecord {
    core::BatchReport report;
    analytics::ComputeStats compute;
    bool computed = false; // false when OCA deferred this batch's round
};

/** Totals of one replayed stream. */
struct StreamResult {
    std::vector<BatchRecord> batches;
    Cycles update_cycles = 0;
    Cycles compute_cycles = 0;

    Cycles overall_cycles() const { return update_cycles + compute_cycles; }
};

/** Which incremental algorithm drives the compute phase. */
enum class Algo { kPageRank, kSssp, kNone };

inline const char*
to_string(Algo a)
{
    switch (a) {
      case Algo::kPageRank:
        return "incremental-PR";
      case Algo::kSssp:
        return "incremental-SSSP";
      case Algo::kNone:
        return "update-only";
    }
    return "?";
}

/**
 * Structured metrics exporter behind every bench binary's `--json=<path>`
 * flag (DESIGN.md §9).  Construct one at the top of main(); the
 * constructor strips `--json=<path>` from argv (so the bench's own flag
 * handling like `--quick` is position-independent), every subsequent
 * @ref run_stream records its replay into the active sink, and the
 * destructor writes one schema-versioned JSON document: the replayed
 * per-batch decision/cycle series plus a full telemetry registry
 * snapshot.  Without `--json` the sink is inert and records nothing.
 */
class JsonSink {
  public:
    /** Schema version stamped into every document; golden tooling and the
     *  smoke harness refuse documents with a different major. */
    static constexpr int kSchemaVersion = 1;

    JsonSink(const char* experiment, int& argc, char** argv)
        : experiment_(experiment)
    {
        IGS_CHECK_MSG(active_slot() == nullptr,
                      "only one JsonSink per process");
        for (int i = 1; i < argc;) {
            bool strip = true;
            if (std::strncmp(argv[i], "--json=", 7) == 0) {
                path_ = argv[i] + 7;
            } else if (std::strncmp(argv[i], "--dah-threshold=", 16) == 0) {
                store_tuning().dah_hash_threshold = parse_threshold(
                    argv[i] + 16, graph::DahEdgeSet::kHashThreshold);
            } else if (std::strncmp(argv[i], "--hybrid-threshold=", 19) ==
                       0) {
                store_tuning().hybrid_sorted_threshold = parse_threshold(
                    argv[i] + 19, graph::StoreTuning{}.hybrid_sorted_threshold);
            } else {
                strip = false;
            }
            if (strip) {
                for (int j = i; j + 1 < argc; ++j) {
                    argv[j] = argv[j + 1];
                }
                --argc;
                argv[argc] = nullptr;
            } else {
                ++i;
            }
        }
        active_slot() = this;
    }

    ~JsonSink()
    {
        active_slot() = nullptr;
        if (path_.empty()) {
            return;
        }
        const std::string doc = serialize();
        std::FILE* f = std::fopen(path_.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "[bench] cannot write %s\n", path_.c_str());
            return;
        }
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "[bench] wrote %s\n", path_.c_str());
    }

    JsonSink(const JsonSink&) = delete;
    JsonSink& operator=(const JsonSink&) = delete;

    /** The process's sink, or null (run_stream records through this). */
    static JsonSink* active() { return active_slot(); }

    bool enabled() const { return !path_.empty(); }

    /** Record one replayed stream (called by run_stream). */
    void
    record_stream(std::string_view dataset, std::size_t batch_size,
                  core::UpdatePolicy policy, Algo algo, bool oca,
                  const core::AbrParams& abr, const StreamResult& result)
    {
        if (!enabled()) {
            return;
        }
        streams_.push_back(Stream{std::string(dataset), batch_size, policy,
                                  algo, oca, abr, result});
    }

  private:
    struct Stream {
        std::string dataset;
        std::size_t batch_size;
        core::UpdatePolicy policy;
        Algo algo;
        bool oca;
        core::AbrParams abr;
        StreamResult result;
    };

    static JsonSink*&
    active_slot()
    {
        static JsonSink* slot = nullptr;
        return slot;
    }

    static std::uint32_t
    parse_threshold(const char* s, std::uint32_t fallback)
    {
        const long v = std::atol(s);
        if (v <= 0) {
            std::fprintf(stderr,
                         "[bench] ignoring invalid store threshold '%s' "
                         "(must be > 0); using %u\n",
                         s, fallback);
            return fallback;
        }
        return static_cast<std::uint32_t>(v);
    }

    std::string
    serialize() const
    {
        telemetry::JsonWriter w(2);
        w.begin_object();
        w.kv("schema_version", kSchemaVersion);
        w.kv("experiment", experiment_);
        w.key("host").begin_object();
        w.kv("bench_scale", bench_scale());
        // Raw IGS_BENCH_SCALE (null when unset): golden_check.py refuses
        // to diff documents produced at mismatched effective scales.
        if (const char* e = std::getenv("IGS_BENCH_SCALE")) {
            w.kv("bench_scale_env", e);
        } else {
            w.key("bench_scale_env").null();
        }
        // Effective adaptive-store thresholds: golden diffs compare these
        // exactly, so a run swept with non-default tiers can never pass
        // for (or silently corrupt) a default-threshold golden.
        w.kv("dah_hash_threshold", store_tuning().dah_hash_threshold);
        w.kv("hybrid_sorted_threshold",
             store_tuning().hybrid_sorted_threshold);
        w.kv("hybrid_inline_capacity",
             graph::HybridEdgeSet::kInlineCapacity);
        w.kv("wall_seconds", wall_.seconds());
        w.end_object();
        w.key("streams").begin_array();
        for (const Stream& s : streams_) {
            write_stream(w, s);
        }
        w.end_array();
        // Whole-process registry snapshot (spliced pre-serialized).
        w.key("telemetry").raw(telemetry::to_json(0));
        w.end_object();
        return w.take();
    }

    static void
    write_stream(telemetry::JsonWriter& w, const Stream& s)
    {
        w.begin_object();
        w.kv("dataset", s.dataset);
        w.kv("batch_size", static_cast<std::uint64_t>(s.batch_size));
        w.kv("policy", core::to_string(s.policy));
        w.kv("algo", to_string(s.algo));
        w.kv("oca", s.oca);
        w.key("abr").begin_object();
        w.kv("n", s.abr.n);
        w.kv("lambda", s.abr.lambda);
        w.kv("threshold", s.abr.threshold);
        w.end_object();
        w.kv("num_batches",
             static_cast<std::uint64_t>(s.result.batches.size()));
        w.kv("update_cycles", static_cast<std::uint64_t>(s.result.update_cycles));
        w.kv("compute_cycles",
             static_cast<std::uint64_t>(s.result.compute_cycles));
        w.key("batches").begin_array();
        for (const BatchRecord& rec : s.result.batches) {
            const core::BatchReport& r = rec.report;
            w.begin_object();
            w.kv("id", r.batch_id);
            w.kv("abr_active", r.abr_active);
            w.kv("reordered", r.reordered);
            w.kv("used_usc", r.used_usc);
            w.kv("used_hau", r.used_hau);
            // Key always present (null when ABR did not instrument this
            // batch) so record shapes never vary across batches.
            if (r.cad.has_value()) {
                w.kv("cad", r.cad->cad());
            } else {
                w.key("cad").null();
            }
            w.kv("overlap", r.overlap);
            w.kv("defer_compute", r.defer_compute);
            w.kv("instrumentation_cycles", r.instrumentation_cycles);
            w.kv("update_cycles", static_cast<std::uint64_t>(r.update.cycles));
            w.kv("lock_wait_cycles", r.update.lock_wait_cycles);
            w.kv("lock_acquisitions", r.update.lock_acquisitions);
            w.kv("probes", r.update.probes);
            w.kv("inserts", r.update.inserts);
            w.kv("weight_updates", r.update.weight_updates);
            w.kv("removes", r.update.removes);
            w.kv("computed", rec.computed);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    std::string experiment_;
    std::string path_;
    std::vector<Stream> streams_;
    Timer wall_;
};

/**
 * Replay `num_batches` batches of `batch_size` edges of `ds` through an
 * input-aware engine with the given policy, running the chosen incremental
 * algorithm on each (possibly OCA-aggregated) snapshot.
 */
inline StreamResult
run_stream(const gen::DatasetSpec& ds, std::size_t batch_size,
           std::size_t num_batches, core::UpdatePolicy policy,
           Algo algo = Algo::kPageRank, bool oca = false,
           const core::AbrParams& abr = core::AbrParams{})
{
    core::EngineConfig cfg;
    cfg.policy = policy;
    cfg.abr = abr;
    cfg.oca.enabled = oca;
    sim::SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                           sim::HauCostParams{}, ds.model.num_vertices);
    analytics::IncrementalPageRank pr;
    analytics::IncrementalSssp sssp(0);
    auto genr = ds.make_generator();

    StreamResult out;
    const analytics::ComputeCostParams ccp;
    for (std::uint64_t k = 1; k <= num_batches; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(genr.take(batch_size));
        BatchRecord rec;
        rec.report = engine.ingest(batch);
        out.update_cycles += rec.report.update.cycles;
        if (algo != Algo::kNone && engine.compute_due()) {
            const auto work = engine.take_pending_work();
            rec.computed = true;
            switch (algo) {
              case Algo::kPageRank:
                rec.compute = pr.on_batch(engine.graph(), work.affected);
                break;
              case Algo::kSssp:
                rec.compute = sssp.on_batch(engine.graph(), work.inserted,
                                            work.deleted);
                break;
              case Algo::kNone:
                break;
            }
            out.compute_cycles += rec.compute.cycles(ccp);
        }
        out.batches.push_back(std::move(rec));
    }
    if (JsonSink* sink = JsonSink::active()) {
        sink->record_stream(ds.name, batch_size, policy, algo, oca, abr, out);
    }
    return out;
}

/** Mean of update speedups vs a baseline result. */
inline double
speedup(const StreamResult& baseline, const StreamResult& variant)
{
    return static_cast<double>(baseline.update_cycles) /
           static_cast<double>(variant.update_cycles);
}

inline double
overall_speedup(const StreamResult& baseline, const StreamResult& variant)
{
    return static_cast<double>(baseline.overall_cycles()) /
           static_cast<double>(variant.overall_cycles());
}

/** Print the standard bench banner. */
inline void
banner(const char* experiment, const char* paper_ref, const char* note)
{
    std::printf("== %s ==\n", experiment);
    std::printf("paper: %s\n", paper_ref);
    if (note != nullptr && note[0] != '\0') {
        std::printf("%s\n", note);
    }
    std::printf("\n");
}

} // namespace igs::bench

#endif // IGS_BENCH_BENCH_SUPPORT_H
