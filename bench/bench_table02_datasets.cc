/**
 * @file
 * Table 2 reproduction: the evaluated dataset suite.  Prints the paper's
 * vertex/edge counts alongside the synthetic model's scaled parameters.
 */
#include "bench_support.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("table02_datasets", argc, argv);
    using namespace igs;
    bench::banner("Table 2: Evaluated Datasets",
                  "Table 2 (14 datasets, SNAP/LAW/konect)",
                  "paper sizes are the real datasets'; scaled columns are "
                  "this reproduction's synthetic models (DESIGN.md).");

    TextTable t({"dataset", "full name", "paper |V|", "paper |E|",
                 "timestamped", "scaled |V|", "scaled stream", "class"});
    for (const auto& d : gen::registry()) {
        t.row()
            .cell(d.name)
            .cell(d.full_name)
            .cell(static_cast<std::uint64_t>(d.paper_vertices))
            .cell(static_cast<std::uint64_t>(d.paper_edges))
            .cell(std::string(d.timestamped ? "yes" : "no (shuffled)"))
            .cell(static_cast<std::uint64_t>(d.model.num_vertices))
            .cell(static_cast<std::uint64_t>(d.stream_edges))
            .cell(std::string(d.reorder_friendly
                                  ? "reorder-friendly (>=" +
                                        std::to_string(
                                            d.friendly_from_batch) +
                                        ")"
                                  : "reorder-adverse"));
    }
    t.print();
    return 0;
}
