/**
 * @file
 * §6.2.3 "Impact of other data structures" reproduction: Adjacency-list
 * (AS) vs Degree-Aware Hashing (DAH) on wiki-100K.
 *
 * Paper: DAH beats AS's baseline on reordering-friendly cases (1.95x for
 * wiki-100K), but AS+RO is on par (1.8x) and AS+RO+USC overtakes it
 * (2.1x) — so a system can keep the single AS structure and adapt, which
 * is ABR's point.  (The paper's ratios are consistent with overall
 * update+compute performance — Fig 13 reports far larger update-only
 * gains for the same workload — so we report both.)
 *
 * A third arm runs the same replay on the GraphTango-style three-tier
 * hybrid store (DESIGN.md §12); bench_hybrid_store sweeps it in depth.
 */
#include "bench_support.h"

#include "graph/degree_aware_hash.h"
#include "graph/hybrid_store.h"
#include "sim/sim_context.h"
#include "stream/updaters.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("dah_comparison", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Data structures: AS vs DAH (wiki @100K)",
                  "§6.2.3 (DAH 1.95x over AS; AS+RO 1.8x; AS+RO+USC 2.1x)",
                  "normalized to the AS baseline; 'overall' adds the "
                  "incremental-PR compute phase (identical across "
                  "structures)");

    const auto& ds = gen::find_dataset("wiki");
    const std::size_t b = 100000;
    const std::size_t nb = bench::batches_for(b);

    // AS arms via the standard runner (with compute for overall).
    const auto as_base = bench::run_stream(ds, b, nb,
                                           UpdatePolicy::kBaseline,
                                           Algo::kPageRank);
    const auto as_ro = bench::run_stream(ds, b, nb,
                                         UpdatePolicy::kAlwaysReorder,
                                         Algo::kPageRank);
    const auto as_usc = bench::run_stream(ds, b, nb,
                                          UpdatePolicy::kAlwaysReorderUsc,
                                          Algo::kPageRank);

    // DAH / hybrid baselines: the baseline kernel on the alternative
    // structures under the same timing context.  Their ApplyResults
    // report hash (or tiered) probes, so duplicate checks on high-degree
    // vertices are O(1) / O(log d); the compute phase is
    // structure-independent (same graph content), so AS's compute cycles
    // apply.
    const auto replay_structure = [&](auto& g) {
        sim::ExecSim exec(sim::MachineParams{}.num_cores,
                          ds.model.num_vertices * 2);
        sim::SwCostParams sw;
        auto genr = ds.make_generator();
        Cycles update = 0;
        for (std::uint64_t k = 1; k <= nb; ++k) {
            stream::EdgeBatch batch;
            batch.id = k;
            batch.set_edges(genr.take(b));
            sim::SimContext ctx(exec, sw);
            stream::apply_batch_baseline(g, batch, ctx);
            update += ctx.stats().cycles;
        }
        return update;
    };
    Cycles dah_update = 0;
    {
        graph::DegreeAwareHash g(ds.model.num_vertices,
                                 bench::store_tuning());
        dah_update = replay_structure(g);
    }
    Cycles hybrid_update = 0;
    {
        graph::HybridStore g(ds.model.num_vertices, bench::store_tuning());
        hybrid_update = replay_structure(g);
        g.publish_tier_telemetry();
    }

    const double base_update = static_cast<double>(as_base.update_cycles);
    const double base_overall =
        static_cast<double>(as_base.overall_cycles());
    const double compute =
        static_cast<double>(as_base.compute_cycles);

    TextTable t({"configuration", "update x", "overall x", "paper"});
    t.row()
        .cell(std::string("AS baseline"))
        .cell(1.0)
        .cell(1.0)
        .cell(std::string("1.00x"));
    t.row()
        .cell(std::string("DAH baseline"))
        .cell(base_update / static_cast<double>(dah_update))
        .cell(base_overall / (static_cast<double>(dah_update) + compute))
        .cell(std::string("1.95x"));
    t.row()
        .cell(std::string("Hybrid baseline"))
        .cell(base_update / static_cast<double>(hybrid_update))
        .cell(base_overall / (static_cast<double>(hybrid_update) + compute))
        .cell(std::string("n/a (DESIGN.md 12)"));
    t.row()
        .cell(std::string("AS + batch reordering"))
        .cell(bench::speedup(as_base, as_ro))
        .cell(base_overall /
              (static_cast<double>(as_ro.update_cycles) + compute))
        .cell(std::string("1.8x"));
    t.row()
        .cell(std::string("AS + reordering + USC"))
        .cell(bench::speedup(as_base, as_usc))
        .cell(base_overall /
              (static_cast<double>(as_usc.update_cycles) + compute))
        .cell(std::string("2.1x (beats DAH)"));
    t.print();
    std::printf(
        "\nNote: at this reproduction's scale the AS baseline is dominated "
        "by hub scan chains,\nso an O(1)-duplicate-check structure wins by "
        "more than the paper's 1.95x; the paper's\nsystemic point stands — "
        "adaptive reordering+USC reaches DAH-class update performance\n"
        "while keeping the single AS structure (and, unlike DAH, it adapts "
        "away on adverse\ninputs instead of paying hashing overheads "
        "everywhere).\n");
    return 0;
}
