/**
 * @file
 * Golden-run replay driver (DESIGN.md §9).  Replays small, fixed-seed
 * dataset streams through the SimEngine and exports the full per-batch
 * decision/cycle series with `--json=<path>`.  Batch counts are pinned —
 * IGS_BENCH_SCALE deliberately has no effect here — so the output is a
 * deterministic function of the code: tools/golden_check.py diffs it
 * against the blessed snapshots in tests/golden/.
 *
 * Usage: bench_golden_replay --set=<name> --json=<path>
 * Sets: abr_usc | hau | oca (see kSets below).
 */
#include "bench_support.h"

#include <cstring>

namespace {

using namespace igs;
using bench::Algo;
using core::UpdatePolicy;

struct Replay {
    const char* dataset;
    std::size_t batch_size;
    std::size_t num_batches;
    UpdatePolicy policy;
    Algo algo;
    bool oca;
};

struct GoldenSet {
    const char* name;
    std::vector<Replay> replays;
};

/** Small fixed replays covering every decision path the paper exercises:
 *  ABR latching on friendly (wiki) and adverse (lj) inputs, USC, the HAU
 *  fallback, and OCA aggregation.  Keep each set under ~1s. */
const std::vector<GoldenSet>&
sets()
{
    static const std::vector<GoldenSet> kSets = {
        {"abr_usc",
         {
             {"wiki", 1000, 6, UpdatePolicy::kBaseline, Algo::kPageRank,
              false},
             {"wiki", 1000, 6, UpdatePolicy::kAbrUsc, Algo::kPageRank, false},
             {"lj", 1000, 6, UpdatePolicy::kAbrUsc, Algo::kPageRank, false},
             {"lj", 1000, 6, UpdatePolicy::kAlwaysReorderUsc, Algo::kSssp,
              false},
         }},
        {"hau",
         {
             {"wiki", 1000, 6, UpdatePolicy::kAbrUscHau, Algo::kPageRank,
              false},
             {"lj", 1000, 6, UpdatePolicy::kAbrUscHau, Algo::kPageRank,
              false},
             {"lj", 1000, 4, UpdatePolicy::kAlwaysHau, Algo::kNone, false},
         }},
        {"oca",
         {
             {"fb", 1000, 8, UpdatePolicy::kAbrUsc, Algo::kPageRank, true},
             {"wiki", 1000, 8, UpdatePolicy::kAbrUscHau, Algo::kPageRank,
              true},
         }},
    };
    return kSets;
}

} // namespace

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("golden_replay", argc, argv);

    const char* set_name = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--set=", 6) == 0) {
            set_name = argv[i] + 6;
        }
    }
    const GoldenSet* set = nullptr;
    for (const GoldenSet& s : sets()) {
        if (set_name != nullptr && s.name == std::string(set_name)) {
            set = &s;
        }
    }
    if (set == nullptr) {
        std::fprintf(stderr,
                     "usage: bench_golden_replay --set=<name> "
                     "[--json=<path>]\nsets:");
        for (const GoldenSet& s : sets()) {
            std::fprintf(stderr, " %s", s.name);
        }
        std::fprintf(stderr, "\n");
        return 2;
    }

    bench::banner("golden replay", "regression harness, not a paper figure",
                  set->name);
    TextTable t({"dataset", "batch", "policy", "algo", "oca", "upd Mcyc",
                 "cmp Mcyc"});
    for (const Replay& r : set->replays) {
        const auto res =
            bench::run_stream(gen::find_dataset(r.dataset), r.batch_size,
                              r.num_batches, r.policy, r.algo, r.oca);
        t.row()
            .cell(r.dataset)
            .cell(static_cast<std::uint64_t>(r.batch_size))
            .cell(core::to_string(r.policy))
            .cell(bench::to_string(r.algo))
            .cell(std::string(r.oca ? "yes" : "no"))
            .cell(static_cast<double>(res.update_cycles) / 1e6)
            .cell(static_cast<double>(res.compute_cycles) / 1e6);
    }
    t.print();
    return 0;
}
