/**
 * @file
 * Fig 14 reproduction: compute-phase speedup from overlap-based compute
 * aggregation (OCA) across all datasets and batch sizes.
 *
 * Paper: up to 2.7x; average 1.24x (incremental PR) and 1.26x
 * (incremental SSSP); OCA activates predominantly at larger batch sizes.
 */
#include "bench_support.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig14_oca", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Fig 14: OCA compute speedup",
                  "Fig 14 (up to 2.7x; avg 1.24x PR / 1.26x SSSP; "
                  "activates at larger batch sizes)",
                  "overlap threshold 0.25, measured on ABR-active batches");

    std::vector<std::size_t> batch_sizes = gen::paper_batch_sizes();
    if (argc > 1 && std::string(argv[1]) == "--quick") {
        batch_sizes = {1000, 100000};
    }
    const bool sweep = argc > 1 && std::string(argv[1]) == "--sweep";

    if (sweep) {
        // Ablation: OCA threshold sensitivity on yt (paper §5 narrative:
        // 0.15 would already trigger yt-10K for only an 8% gain).
        const auto& ds = gen::find_dataset("yt");
        TextTable t({"threshold", "compute speedup @10K",
                     "compute speedup @100K"});
        for (double th : {0.1, 0.15, 0.25, 0.4, 0.5}) {
            double sp[2];
            int i = 0;
            for (std::size_t b : {std::size_t{10000}, std::size_t{100000}}) {
                const std::size_t nb = bench::batches_for(b);
                const auto off = bench::run_stream(
                    ds, b, nb, UpdatePolicy::kBaseline, Algo::kPageRank,
                    false);
                auto run_with = [&](double threshold) {
                    core::EngineConfig cfg2;
                    cfg2.policy = UpdatePolicy::kBaseline;
                    cfg2.oca.enabled = true;
                    cfg2.oca.threshold = threshold;
                    sim::SimEngine engine(cfg2, sim::MachineParams{},
                                           sim::SwCostParams{},
                                           sim::HauCostParams{},
                                           ds.model.num_vertices);
                    analytics::IncrementalPageRank pr;
                    auto genr = ds.make_generator();
                    Cycles compute = 0;
                    for (std::uint64_t k = 1; k <= nb; ++k) {
                        stream::EdgeBatch batch;
                        batch.id = k;
                        batch.set_edges(genr.take(b));
                        engine.ingest(batch);
                        if (engine.compute_due()) {
                            const auto work = engine.take_pending_work();
                            compute += pr
                                           .on_batch(engine.graph(),
                                                     work.affected)
                                           .cycles(
                                               analytics::
                                                   ComputeCostParams{});
                        }
                    }
                    return compute;
                };
                const Cycles with_oca = run_with(th);
                sp[i++] = static_cast<double>(off.compute_cycles) /
                          static_cast<double>(with_oca);
            }
            t.row().cell(th, 2).cell(sp[0]).cell(sp[1]);
        }
        t.print();
        return 0;
    }

    TextTable t({"dataset", "batch", "PR speedup", "SSSP speedup",
                 "overlap", "activated"});
    std::vector<double> pr_all;
    std::vector<double> sssp_all;
    double max_speedup = 0.0;
    for (const auto& ds : gen::registry()) {
        for (std::size_t b : batch_sizes) {
            const std::size_t nb = bench::batches_for(b);
            double sp[2];
            double overlap = 0.0;
            bool activated = false;
            int i = 0;
            for (Algo algo : {Algo::kPageRank, Algo::kSssp}) {
                const auto off = bench::run_stream(
                    ds, b, nb, UpdatePolicy::kBaseline, algo, false);
                const auto on = bench::run_stream(
                    ds, b, nb, UpdatePolicy::kBaseline, algo, true);
                sp[i++] = static_cast<double>(off.compute_cycles) /
                          static_cast<double>(
                              std::max<Cycles>(on.compute_cycles, 1));
                for (const auto& rec : on.batches) {
                    overlap = std::max(overlap, rec.report.overlap);
                    activated = activated || rec.report.defer_compute;
                }
            }
            pr_all.push_back(sp[0]);
            sssp_all.push_back(sp[1]);
            max_speedup = std::max({max_speedup, sp[0], sp[1]});
            t.row()
                .cell(ds.name)
                .cell(static_cast<std::uint64_t>(b))
                .cell(sp[0])
                .cell(sp[1])
                .cell(overlap)
                .cell(std::string(activated ? "yes" : "no"));
        }
    }
    t.print();
    std::printf("\naverage compute speedup: PR %.2fx (paper 1.24x), SSSP "
                "%.2fx (paper 1.26x); max %.2fx (paper 2.7x)\n",
                mean(pr_all), mean(sssp_all), max_speedup);
    return 0;
}
