/**
 * @file
 * Three-tier hybrid adjacency store harness (DESIGN.md §12).
 *
 * Two legs:
 *
 *  1. Store sweep — replays the baseline edge-centric kernel over the
 *     same stream against all three adjacency structures (AS
 *     adjacency-list, DAH degree-aware hashing, hybrid three-tier) under
 *     the Table-1 timing model, reporting modeled update cycles and the
 *     duplicate-check probe counts the structures were built to shrink.
 *     Sweeps Table-2 dataset models plus a hub-heavy R-MAT stream whose
 *     top vertices cross both tier thresholds.
 *
 *  2. Equivalence leg — drives RealTimeEngine (adjacency-list backend)
 *     and HybridRealTimeEngine over an identical ABR+USC stream on a
 *     single-worker pool and counts exact mismatches: directed edges
 *     whose (id, weight) differ bitwise, and incremental-PageRank ranks
 *     differing beyond 1e-9.  Both counts are integers and golden-pinned
 *     at zero, which is the "byte-identical analytics across backends"
 *     acceptance gate in CI.
 *
 * The `golden` set pins its batch counts (IGS_BENCH_SCALE deliberately
 * has no effect) so `--json` output is a deterministic function of the
 * code: `ctest -L golden` diffs it against tests/golden/golden_hybrid.json.
 *
 * Usage: bench_hybrid_store [--set=all|table2|rmat|golden] [--json=<path>]
 *                           [--dah-threshold=<n>] [--hybrid-threshold=<n>]
 */
#include "bench_support.h"

#include <cmath>
#include <cstring>

#include "common/thread_pool.h"
#include "gen/rmat.h"
#include "graph/adjacency_list.h"
#include "sim/sim_context.h"
#include "stream/batch.h"
#include "stream/updaters.h"

namespace {

using namespace igs;

/** One pinned replay: an edge source at one batch size. */
struct Workload {
    const char* source; // Table-2 short name, or "rmat-hub"
    std::size_t batch_size;
    std::size_t num_batches;
};

struct SweepSet {
    const char* name;
    std::vector<Workload> runs;
    /** Whether this set also runs the engine equivalence leg. */
    bool equivalence;
};

/** One store arm of one workload. */
struct ArmResult {
    const char* store = "?";
    stream::UpdateStats stats;
    EdgeId num_edges = 0;
    graph::HybridStore::TierCensus census{}; // hybrid arm only
    bool has_census = false;
};

/** Integer outcome of the cross-backend engine replay. */
struct EquivResult {
    const char* source = "?";
    std::size_t batch_size = 0;
    std::size_t num_batches = 0;
    EdgeId num_edges_as = 0;
    EdgeId num_edges_hybrid = 0;
    std::uint64_t edges_mismatched = 0;
    std::uint64_t pr_mismatched_vertices = 0;
    bool topology_equal = false;
};

/** Hub-heavy R-MAT: skew strong enough that the hottest vertices cross
 *  both the sorted and the hash tier thresholds within a few batches. */
gen::RmatParams
hub_rmat_params()
{
    gen::RmatParams rp;
    rp.scale = 14;
    rp.a = 0.65;
    rp.b = 0.15;
    rp.c = 0.15;
    rp.noise = 0.05;
    rp.seed = 11;
    return rp;
}

/** The golden set pins both legs; keep each run well under a second. */
const std::vector<SweepSet>&
sets()
{
    static const std::vector<SweepSet> kSets = {
        {"all",
         {
             {"wiki", 10000, 4},
             {"wiki", 100000, 2},
             {"lj", 10000, 4},
             {"lj", 100000, 2},
             {"rmat-hub", 10000, 4},
             {"rmat-hub", 50000, 2},
         },
         true},
        {"table2",
         {
             {"wiki", 10000, 4},
             {"wiki", 100000, 2},
             {"lj", 10000, 4},
             {"lj", 100000, 2},
         },
         false},
        {"rmat",
         {
             {"rmat-hub", 10000, 4},
             {"rmat-hub", 50000, 2},
         },
         false},
        {"golden",
         {
             {"wiki", 5000, 4},
             {"rmat-hub", 5000, 4},
         },
         true},
    };
    return kSets;
}

/** Replay `wl` batches through the baseline kernel on store `g`,
 *  accumulating the modeled update statistics. */
template <typename Graph, typename Gen>
stream::UpdateStats
replay_store(Graph& g, Gen& genr, std::size_t num_vertices,
             const Workload& wl)
{
    sim::ExecSim exec(sim::MachineParams{}.num_cores, num_vertices * 2);
    const sim::SwCostParams sw;
    stream::UpdateStats total;
    for (std::uint64_t k = 1; k <= wl.num_batches; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(genr.take(wl.batch_size));
        sim::SimContext ctx(exec, sw);
        stream::apply_batch_baseline(g, batch, ctx);
        total += ctx.stats();
    }
    return total;
}

/** Run one workload against all three stores (identical streams: each
 *  arm draws from a freshly seeded generator). */
template <typename MakeGen>
std::vector<ArmResult>
run_arms(MakeGen&& make_gen, std::size_t num_vertices, const Workload& wl)
{
    std::vector<ArmResult> arms;
    {
        ArmResult a;
        a.store = "as";
        graph::AdjacencyList g(num_vertices);
        auto genr = make_gen();
        a.stats = replay_store(g, genr, num_vertices, wl);
        a.num_edges = g.num_edges();
        arms.push_back(a);
    }
    {
        ArmResult a;
        a.store = "dah";
        graph::DegreeAwareHash g(num_vertices, bench::store_tuning());
        auto genr = make_gen();
        a.stats = replay_store(g, genr, num_vertices, wl);
        a.num_edges = g.num_edges();
        arms.push_back(a);
    }
    {
        ArmResult a;
        a.store = "hybrid";
        graph::HybridStore g(num_vertices, bench::store_tuning());
        auto genr = make_gen();
        a.stats = replay_store(g, genr, num_vertices, wl);
        a.num_edges = g.num_edges();
        a.census = g.tier_census();
        a.has_census = true;
        g.publish_tier_telemetry();
        arms.push_back(a);
    }
    return arms;
}

std::vector<ArmResult>
run_workload(const Workload& wl)
{
    if (std::strcmp(wl.source, "rmat-hub") == 0) {
        const gen::RmatParams rp = hub_rmat_params();
        const std::size_t n = gen::RmatGenerator(rp).num_vertices();
        return run_arms([&rp] { return gen::RmatGenerator(rp); }, n, wl);
    }
    const gen::DatasetSpec& ds = gen::find_dataset(wl.source);
    return run_arms([&ds] { return ds.make_generator(); },
                    ds.model.num_vertices, wl);
}

/** Directed edges whose sorted (id, weight) sequences differ bitwise. */
template <typename A, typename B>
std::uint64_t
count_edge_mismatches(const A& a, const B& b)
{
    std::uint64_t mismatched = 0;
    const std::size_t n = std::max(a.num_vertices(), b.num_vertices());
    for (VertexId v = 0; v < n; ++v) {
        for (Direction dir : {Direction::kOut, Direction::kIn}) {
            const auto ea = v < a.num_vertices()
                                ? a.sorted_edges(v, dir)
                                : std::vector<Neighbor>{};
            const auto eb = v < b.num_vertices()
                                ? b.sorted_edges(v, dir)
                                : std::vector<Neighbor>{};
            const std::size_t len = std::max(ea.size(), eb.size());
            for (std::size_t i = 0; i < len; ++i) {
                if (i >= ea.size() || i >= eb.size() ||
                    ea[i].id != eb[i].id || ea[i].weight != eb[i].weight) {
                    ++mismatched;
                }
            }
        }
    }
    return mismatched;
}

/**
 * Drive both engine backends over the identical stream and count exact
 * divergences.  Single-worker pool: identical task order on both sides
 * makes per-vertex weight accumulation bit-identical, so any nonzero
 * count is a real backend bug, not scheduling noise.
 */
EquivResult
run_equivalence(const Workload& wl)
{
    EquivResult eq;
    eq.source = wl.source;
    eq.batch_size = wl.batch_size;
    eq.num_batches = wl.num_batches;

    const gen::DatasetSpec& ds = gen::find_dataset(wl.source);
    ThreadPool pool(1);
    core::EngineConfig cfg;
    cfg.policy = core::UpdatePolicy::kAbrUsc;
    cfg.store = bench::store_tuning();

    core::RealTimeEngine as_engine(cfg, ds.model.num_vertices, pool);
    cfg.graph_backend = core::GraphBackend::kHybrid;
    core::AnyRealTimeEngine hy_engine(cfg, ds.model.num_vertices, pool);

    analytics::IncrementalPageRank pr_as;
    analytics::IncrementalPageRank pr_hy;
    auto gen_as = ds.make_generator();
    auto gen_hy = ds.make_generator();
    for (std::uint64_t k = 1; k <= wl.num_batches; ++k) {
        stream::EdgeBatch ba;
        ba.id = k;
        ba.set_edges(gen_as.take(wl.batch_size));
        stream::EdgeBatch bh;
        bh.id = k;
        bh.set_edges(gen_hy.take(wl.batch_size));
        (void)as_engine.ingest(ba);
        (void)hy_engine.ingest(bh);
        if (as_engine.compute_due() && hy_engine.compute_due()) {
            const auto wa = as_engine.take_pending_work();
            const auto wh = hy_engine.take_pending_work();
            (void)pr_as.on_batch(as_engine.graph(), wa.affected);
            (void)pr_hy.on_batch(
                hy_engine.engine<graph::HybridStore>().graph(), wh.affected);
        }
    }

    const graph::AdjacencyList& ga = as_engine.graph();
    const graph::HybridStore& gh =
        hy_engine.engine<graph::HybridStore>().graph();
    eq.num_edges_as = ga.num_edges();
    eq.num_edges_hybrid = gh.num_edges();
    eq.edges_mismatched = count_edge_mismatches(ga, gh);
    eq.topology_equal = gh.same_topology(ga);

    const auto& ra = pr_as.ranks();
    const auto& rh = pr_hy.ranks();
    const std::size_t n = std::max(ra.size(), rh.size());
    for (std::size_t v = 0; v < n; ++v) {
        const double x = v < ra.size() ? ra[v] : 0.0;
        const double y = v < rh.size() ? rh[v] : 0.0;
        // Iteration order differs across backends (tier promotion
        // re-sorts edge data), so PR sums associate differently; 1e-9
        // absolute is ~1e6x above the float-weight rounding floor.
        if (std::fabs(x - y) > 1e-9) {
            ++eq.pr_mismatched_vertices;
        }
    }
    return eq;
}

/**
 * Dedicated exporter (same top-level schema as bench_support.h's
 * JsonSink: schema_version / experiment / host / streams / telemetry).
 * The per-stream shape carries the store sweep's probe counters and the
 * equivalence leg's integer mismatch gauges, which the shared per-batch
 * record does not model.
 */
void
write_json(const std::string& path, const char* set_name,
           const std::vector<Workload>& runs,
           const std::vector<std::vector<ArmResult>>& results,
           const std::vector<EquivResult>& equiv, const Timer& wall)
{
    telemetry::JsonWriter w(2);
    w.begin_object();
    w.kv("schema_version", bench::JsonSink::kSchemaVersion);
    w.kv("experiment", "hybrid_store");
    w.key("host").begin_object();
    w.kv("bench_scale", bench::bench_scale());
    if (const char* e = std::getenv("IGS_BENCH_SCALE")) {
        w.kv("bench_scale_env", e);
    } else {
        w.key("bench_scale_env").null();
    }
    w.kv("dah_hash_threshold", bench::store_tuning().dah_hash_threshold);
    w.kv("hybrid_sorted_threshold",
         bench::store_tuning().hybrid_sorted_threshold);
    w.kv("hybrid_inline_capacity", graph::HybridEdgeSet::kInlineCapacity);
    w.kv("wall_seconds", wall.seconds());
    w.end_object();
    w.kv("set", set_name);
    w.key("streams").begin_array();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Workload& r = runs[i];
        for (const ArmResult& a : results[i]) {
            w.begin_object();
            w.kv("dataset", std::string(r.source) + "/" + a.store);
            w.kv("store", a.store);
            w.kv("batch_size", static_cast<std::uint64_t>(r.batch_size));
            w.kv("num_batches", static_cast<std::uint64_t>(r.num_batches));
            w.kv("update_cycles",
                 static_cast<std::uint64_t>(a.stats.cycles));
            w.kv("probes", a.stats.probes);
            w.kv("inserts", a.stats.inserts);
            w.kv("weight_updates", a.stats.weight_updates);
            w.kv("removes", a.stats.removes);
            w.kv("num_edges", static_cast<std::uint64_t>(a.num_edges));
            if (a.has_census) {
                w.kv("tier0_vertices",
                     static_cast<std::uint64_t>(a.census.vertices[0]));
                w.kv("tier1_vertices",
                     static_cast<std::uint64_t>(a.census.vertices[1]));
                w.kv("tier2_vertices",
                     static_cast<std::uint64_t>(a.census.vertices[2]));
            }
            w.end_object();
        }
    }
    for (const EquivResult& eq : equiv) {
        w.begin_object();
        w.kv("dataset", std::string(eq.source) + "/equivalence");
        w.kv("store", "equivalence");
        w.kv("batch_size", static_cast<std::uint64_t>(eq.batch_size));
        w.kv("num_batches", static_cast<std::uint64_t>(eq.num_batches));
        w.kv("num_edges_as", static_cast<std::uint64_t>(eq.num_edges_as));
        w.kv("num_edges_hybrid",
             static_cast<std::uint64_t>(eq.num_edges_hybrid));
        w.kv("edges_mismatched", eq.edges_mismatched);
        w.kv("pr_mismatched_vertices", eq.pr_mismatched_vertices);
        w.kv("topology_equal", eq.topology_equal);
        w.end_object();
    }
    w.end_array();
    w.key("telemetry").raw(telemetry::to_json(0));
    w.end_object();

    const std::string doc = w.take();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
        return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    Timer wall;
    std::string json_path;
    const char* set_name = "all";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else if (std::strncmp(argv[i], "--set=", 6) == 0) {
            set_name = argv[i] + 6;
        } else if (std::strncmp(argv[i], "--dah-threshold=", 16) == 0) {
            const long v = std::atol(argv[i] + 16);
            if (v > 0) {
                bench::store_tuning().dah_hash_threshold =
                    static_cast<std::uint32_t>(v);
            }
        } else if (std::strncmp(argv[i], "--hybrid-threshold=", 19) == 0) {
            const long v = std::atol(argv[i] + 19);
            if (v > 0) {
                bench::store_tuning().hybrid_sorted_threshold =
                    static_cast<std::uint32_t>(v);
            }
        }
    }
    const SweepSet* set = nullptr;
    for (const SweepSet& s : sets()) {
        if (s.name == std::string(set_name)) {
            set = &s;
        }
    }
    if (set == nullptr) {
        std::fprintf(stderr,
                     "usage: bench_hybrid_store [--set=<name>] "
                     "[--json=<path>] [--dah-threshold=<n>] "
                     "[--hybrid-threshold=<n>]\nsets:");
        for (const SweepSet& s : sets()) {
            std::fprintf(stderr, " %s", s.name);
        }
        std::fprintf(stderr, "\n");
        return 2;
    }

    bench::banner("hybrid three-tier adjacency store",
                  "DESIGN.md §12 (GraphTango-style tiers; not a paper "
                  "figure)",
                  set->name);

    TextTable t({"source", "batch", "store", "upd Mcyc", "probes/ins",
                 "speedup", "probe redux"});
    std::vector<std::vector<ArmResult>> results;
    results.reserve(set->runs.size());
    for (const Workload& wl : set->runs) {
        results.push_back(run_workload(wl));
        const std::vector<ArmResult>& arms = results.back();
        const ArmResult& as = arms.front();
        for (const ArmResult& a : arms) {
            const double probes_per_insert =
                a.stats.inserts == 0
                    ? 0.0
                    : static_cast<double>(a.stats.probes) /
                          static_cast<double>(a.stats.inserts);
            t.row()
                .cell(wl.source)
                .cell(static_cast<std::uint64_t>(wl.batch_size))
                .cell(a.store)
                .cell(static_cast<double>(a.stats.cycles) / 1e6)
                .cell(probes_per_insert)
                .cell(static_cast<double>(as.stats.cycles) /
                      static_cast<double>(a.stats.cycles))
                .cell(a.stats.probes == 0
                          ? 0.0
                          : static_cast<double>(as.stats.probes) /
                                static_cast<double>(a.stats.probes));
        }
    }
    t.print();

    for (const std::vector<ArmResult>& arms : results) {
        for (const ArmResult& a : arms) {
            if (a.has_census) {
                std::printf("tier census (%s arm): inline=%zu sorted=%zu "
                            "hashed=%zu vertices\n",
                            a.store, a.census.vertices[0],
                            a.census.vertices[1], a.census.vertices[2]);
            }
        }
    }

    std::vector<EquivResult> equiv;
    if (set->equivalence) {
        equiv.push_back(run_equivalence(Workload{"wiki", 2000, 6}));
        std::printf("\nengine equivalence (AS vs hybrid backend, ABR+USC, "
                    "1 worker):\n");
        for (const EquivResult& eq : equiv) {
            std::printf("  %s@%zu x%zu: edges %llu vs %llu, "
                        "edge mismatches=%llu, PR mismatches=%llu, "
                        "topology %s\n",
                        eq.source, eq.batch_size, eq.num_batches,
                        static_cast<unsigned long long>(eq.num_edges_as),
                        static_cast<unsigned long long>(eq.num_edges_hybrid),
                        static_cast<unsigned long long>(eq.edges_mismatched),
                        static_cast<unsigned long long>(
                            eq.pr_mismatched_vertices),
                        eq.topology_equal ? "equal" : "DIVERGED");
            if (eq.edges_mismatched != 0 || eq.pr_mismatched_vertices != 0 ||
                !eq.topology_equal) {
                std::fprintf(stderr,
                             "[bench] backend equivalence FAILED\n");
                return 1;
            }
        }
    }

    if (!json_path.empty()) {
        write_json(json_path, set->name, set->runs, results, equiv, wall);
    }
    return 0;
}
