/**
 * @file
 * Fig 17 reproduction: per-batch USC speedup over time for
 * superuser-100K vs wiki-500K.
 *
 * Paper insights: wiki-500K (higher CAD: 1072 vs 528; higher max degree:
 * 43992 vs 3171) coalesces more searches and thus gains more; USC never
 * degrades a batch even when the coalescing scope is small.
 */
#include "bench_support.h"

#include "common/thread_pool.h"
#include "core/cad.h"
#include "stream/reorder.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig17_usc_temporal", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Fig 17: temporal USC speedup, superuser-100K vs "
                  "wiki-500K",
                  "Fig 17 (+ §6.2.3 CAD/max-degree contrast)",
                  "per-batch speedup of ABR+USC over always-RO "
                  "(isolating the search-coalescing gain)");

    struct Case {
        const char* name;
        std::size_t batch;
        std::size_t nb;
    };
    for (const Case c : {Case{"superuser", 100000, 8},
                         Case{"wiki", 500000, 4}}) {
        const auto& ds = gen::find_dataset(c.name);
        const auto ro = bench::run_stream(ds, c.batch, c.nb,
                                          UpdatePolicy::kAlwaysReorder,
                                          Algo::kNone);
        const auto usc = bench::run_stream(ds, c.batch, c.nb,
                                           UpdatePolicy::kAlwaysReorderUsc,
                                           Algo::kNone);
        // CAD / max degree of a representative batch (the paper's §6.2.3
        // numbers: superuser-100K CAD 528 max 3171; wiki-500K CAD 1072
        // max 43992).
        auto genr = ds.make_generator();
        const auto edges = genr.take(c.batch);
        const auto rb = stream::reorder_batch(edges, default_pool());
        const auto cad = core::cad_from_reordered(rb, 256);

        std::printf("--- %s-%zuK: CAD_256 = %.0f, max degree = %u ---\n",
                    c.name, c.batch / 1000, cad.cad(), cad.max_degree());
        TextTable t({"batch id", "USC speedup over RO"});
        for (std::size_t k = 0; k < c.nb; ++k) {
            t.row()
                .cell(static_cast<std::uint64_t>(k + 1))
                .cell(static_cast<double>(
                          ro.batches[k].report.update.cycles) /
                      static_cast<double>(
                          usc.batches[k].report.update.cycles));
        }
        t.print();
        std::printf("\n");
    }
    return 0;
}
