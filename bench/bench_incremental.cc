/**
 * @file
 * Incremental-analytics policy harness (DESIGN.md §14).  Replays the
 * ingest -> hand-off -> compute loop with the memoized kernel bundle
 * under each IncrementalPolicy (full-rerun / delta-propagate / auto)
 * and compares the modeled compute work: per epoch the bundle's
 * ComputeStats are booked into SimEngine::note_compute_round, so the
 * pipeline-overlap model also reports how much update work each policy
 * hides.  Streams: two Table-2 datasets (wiki: high-degree bursty;
 * lj: low-degree adverse) and the adversarial deletion-stress stream
 * (delete bursts + same-edge reinserts, gen/deletion_stress.h).
 *
 * On the stress stream (small enough to afford from-scratch references
 * every epoch) the harness also audits results: SSSP/BFS mismatches
 * against static_sssp/bfs_distances are counted exactly (pinned zero in
 * the golden set) and PageRank is checked within tolerance.
 *
 * Batch counts are pinned — IGS_BENCH_SCALE deliberately has no effect —
 * so `--json` output is a deterministic function of the code and is
 * pinned as tests/golden/golden_incremental.json in `ctest -L golden`.
 *
 * Usage: bench_incremental [--set=golden] [--json=<path>]
 */
#include "bench_support.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "analytics/incremental/analytics.h"
#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "analytics/traversal.h"
#include "gen/datasets.h"
#include "gen/deletion_stress.h"
#include "stream/batch.h"
#include "stream/compute_policy.h"

namespace {

using namespace igs;
using analytics::incremental::IncrementalAnalytics;
using analytics::incremental::IncrementalConfig;
using stream::IncrementalPolicy;

/** One pinned replay: a stream source under one compute policy. */
struct Run {
    const char* source; // Table-2 short name, or "stress"
    IncrementalPolicy policy;
    std::size_t batch_size;
    std::size_t num_batches;
};

struct BenchSet {
    const char* name;
    std::vector<Run> runs;
};

/** Per-epoch slice of one replay. */
struct EpochRow {
    EpochId epoch = 0;
    bool delta = false;
    double dirty_fraction = 0.0;
    double delete_ratio = 0.0;
    std::uint64_t iterations = 0;
    std::uint64_t traversals = 0;
    std::uint64_t seeds = 0;
    Cycles cycles = 0;
};

/** Totals of one replay. */
struct PolicyResult {
    std::vector<EpochRow> epochs;
    std::uint64_t delta_epochs = 0;
    analytics::ComputeStats work;
    Cycles compute_cycles = 0;
    Cycles update_cycles = 0;
    Cycles hidden_cycles = 0;
    // Result audit (stress runs only; references are from-scratch runs).
    bool audited = false;
    std::uint64_t dist_mismatches = 0;
    std::uint64_t hop_mismatches = 0;
    double pagerank_max_abs_err = 0.0;
    bool pagerank_within_tol = true;
};

/** Audit threshold for delta-propagated PageRank vs the from-scratch
 *  fixpoint at the stress runs' 1e-9 kernel tolerance. */
constexpr double kPagerankAuditTol = 1e-6;

/** The golden set pins every sweep; keep each run well under a second. */
const std::vector<BenchSet>&
sets()
{
    static const std::vector<BenchSet> kSets = {
        {"golden",
         {
             {"wiki", IncrementalPolicy::kFullRerun, 2000, 6},
             {"wiki", IncrementalPolicy::kDeltaPropagate, 2000, 6},
             {"wiki", IncrementalPolicy::kAuto, 2000, 6},
             {"lj", IncrementalPolicy::kFullRerun, 2000, 6},
             {"lj", IncrementalPolicy::kDeltaPropagate, 2000, 6},
             {"lj", IncrementalPolicy::kAuto, 2000, 6},
             {"stress", IncrementalPolicy::kFullRerun, 256, 12},
             {"stress", IncrementalPolicy::kDeltaPropagate, 256, 12},
             {"stress", IncrementalPolicy::kAuto, 256, 12},
         }},
    };
    return kSets;
}

IncrementalConfig
bundle_config(const Run& run)
{
    IncrementalConfig cfg;
    cfg.policy.policy = run.policy;
    if (std::strcmp(run.source, "stress") == 0) {
        // Small graph: afford a tight fixpoint so the audit threshold
        // sits far above the kernels' residual truncation.
        cfg.pagerank.tolerance = 1e-9;
        cfg.pagerank.max_iterations = 300;
    }
    return cfg;
}

/**
 * Replay the pipeline loop against any generator with `take(n)`.  OCA is
 * disabled so every batch runs a compute round: the per-epoch series then
 * isolates the policy effect instead of mixing in aggregation decisions.
 */
template <typename Gen>
PolicyResult
replay(Gen& genr, std::size_t num_vertices, const Run& run, bool audit)
{
    core::EngineConfig cfg;
    cfg.policy = core::UpdatePolicy::kAbrUsc;
    cfg.oca.enabled = false;
    cfg.pipeline_depth = 2;
    cfg.incremental.policy = run.policy;
    sim::SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                          sim::HauCostParams{}, num_vertices);
    IncrementalAnalytics bundle(bundle_config(run));
    const analytics::ComputeCostParams ccp;

    PolicyResult out;
    for (std::uint64_t k = 1; k <= run.num_batches; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(genr.take(run.batch_size));
        const core::BatchReport rep = engine.ingest(batch);
        out.update_cycles += rep.update.cycles;
        out.hidden_cycles += rep.update_hidden_cycles;
        if (!engine.compute_due()) {
            continue;
        }
        const core::PendingWork work = engine.take_pending_work();
        const auto decision = bundle.on_epoch(engine.graph(), work);
        const Cycles cycles = decision.work.cycles(ccp);
        engine.note_compute_round(cycles, work.epoch);
        out.compute_cycles += cycles;
        out.work += decision.work;
        out.delta_epochs += decision.delta ? 1 : 0;
        out.epochs.push_back({work.epoch, decision.delta,
                              decision.stats.dirty_fraction,
                              decision.stats.delete_ratio,
                              decision.work.iterations,
                              decision.work.traversals, decision.work.seeds,
                              cycles});
        if (audit) {
            out.audited = true;
            const auto& g = engine.graph();
            const auto dist = analytics::static_sssp(g, 0);
            const auto hops = analytics::bfs_distances(g, 0);
            for (std::size_t v = 0; v < dist.size(); ++v) {
                out.dist_mismatches +=
                    bundle.sssp().distances()[v] != dist[v] ? 1 : 0;
                out.hop_mismatches +=
                    bundle.bfs().hops()[v] != hops[v] ? 1 : 0;
            }
            const auto ranks =
                analytics::static_pagerank(g, bundle.config().pagerank);
            for (std::size_t v = 0; v < ranks.size(); ++v) {
                out.pagerank_max_abs_err =
                    std::max(out.pagerank_max_abs_err,
                             std::abs(bundle.pagerank().ranks()[v] -
                                      ranks[v]));
            }
        }
    }
    out.pagerank_within_tol = out.pagerank_max_abs_err <= kPagerankAuditTol;
    return out;
}

PolicyResult
run_one(const Run& run)
{
    if (std::strcmp(run.source, "stress") == 0) {
        gen::DeletionStressModel m;
        m.num_vertices = 1u << 12;
        m.build_edges = 1024;
        m.burst = run.batch_size;
        m.seed = 0xDE1E7E;
        gen::DeletionStressGenerator genr(m);
        return replay(genr, m.num_vertices, run, /*audit=*/true);
    }
    const gen::DatasetSpec& ds = gen::find_dataset(run.source);
    auto genr = ds.make_generator();
    return replay(genr, ds.model.num_vertices, run, /*audit=*/false);
}

/**
 * Dedicated exporter (same rationale as bench_pipeline_overlap: the
 * policy series is not the shared per-batch record shape), same
 * top-level schema: schema_version / experiment / host / streams /
 * telemetry, plus a per-dataset policy summary.
 */
void
write_json(const std::string& path, const char* set_name,
           const std::vector<Run>& runs,
           const std::vector<PolicyResult>& results, const Timer& wall)
{
    telemetry::JsonWriter w(2);
    w.begin_object();
    w.kv("schema_version", bench::JsonSink::kSchemaVersion);
    w.kv("experiment", "incremental_policy");
    w.key("host").begin_object();
    w.kv("bench_scale", bench::bench_scale());
    if (const char* e = std::getenv("IGS_BENCH_SCALE")) {
        w.kv("bench_scale_env", e);
    } else {
        w.key("bench_scale_env").null();
    }
    w.kv("wall_seconds", wall.seconds());
    w.end_object();
    w.kv("set", set_name);
    w.key("streams").begin_array();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Run& r = runs[i];
        const PolicyResult& res = results[i];
        w.begin_object();
        w.kv("dataset", r.source);
        w.kv("policy", stream::to_string(r.policy));
        w.kv("batch_size", static_cast<std::uint64_t>(r.batch_size));
        w.kv("epochs", static_cast<std::uint64_t>(res.epochs.size()));
        w.kv("delta_epochs", res.delta_epochs);
        w.kv("iterations", res.work.iterations);
        w.kv("activations", res.work.activations);
        w.kv("traversals", res.work.traversals);
        w.kv("seeds", res.work.seeds);
        w.kv("rounds", res.work.rounds);
        w.kv("compute_cycles", static_cast<std::uint64_t>(res.compute_cycles));
        w.kv("update_cycles", static_cast<std::uint64_t>(res.update_cycles));
        w.kv("hidden_cycles", static_cast<std::uint64_t>(res.hidden_cycles));
        w.kv("audited", res.audited);
        if (res.audited) {
            w.kv("dist_mismatches", res.dist_mismatches);
            w.kv("hop_mismatches", res.hop_mismatches);
            w.kv("pagerank_within_tol", res.pagerank_within_tol);
        }
        w.key("epoch_series").begin_array();
        for (const EpochRow& e : res.epochs) {
            w.begin_object();
            w.kv("epoch", static_cast<std::uint64_t>(e.epoch));
            w.kv("mode", e.delta ? "delta" : "full");
            w.kv("dirty_fraction", e.dirty_fraction);
            w.kv("delete_ratio", e.delete_ratio);
            w.kv("iterations", e.iterations);
            w.kv("traversals", e.traversals);
            w.kv("seeds", e.seeds);
            w.kv("cycles", static_cast<std::uint64_t>(e.cycles));
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();

    // Per-dataset policy comparison: the acceptance headline is that
    // kAuto's modeled compute never exceeds kFullRerun's.
    w.key("summary").begin_array();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (runs[i].policy != IncrementalPolicy::kFullRerun) {
            continue;
        }
        Cycles full = results[i].compute_cycles;
        Cycles del = 0;
        Cycles aut = 0;
        for (std::size_t j = 0; j < runs.size(); ++j) {
            if (std::strcmp(runs[j].source, runs[i].source) != 0) {
                continue;
            }
            if (runs[j].policy == IncrementalPolicy::kDeltaPropagate) {
                del = results[j].compute_cycles;
            } else if (runs[j].policy == IncrementalPolicy::kAuto) {
                aut = results[j].compute_cycles;
            }
        }
        w.begin_object();
        w.kv("dataset", runs[i].source);
        w.kv("full_cycles", static_cast<std::uint64_t>(full));
        w.kv("delta_cycles", static_cast<std::uint64_t>(del));
        w.kv("auto_cycles", static_cast<std::uint64_t>(aut));
        w.kv("auto_not_worse", aut <= full);
        w.end_object();
    }
    w.end_array();
    w.key("telemetry").raw(telemetry::to_json(0));
    w.end_object();

    const std::string doc = w.take();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
        return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    Timer wall;
    std::string json_path;
    const char* set_name = "golden";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else if (std::strncmp(argv[i], "--set=", 6) == 0) {
            set_name = argv[i] + 6;
        }
    }
    const BenchSet* set = nullptr;
    for (const BenchSet& s : sets()) {
        if (s.name == std::string(set_name)) {
            set = &s;
        }
    }
    if (set == nullptr) {
        std::fprintf(stderr,
                     "usage: bench_incremental [--set=<name>] "
                     "[--json=<path>]\nsets:");
        for (const BenchSet& s : sets()) {
            std::fprintf(stderr, " %s", s.name);
        }
        std::fprintf(stderr, "\n");
        return 2;
    }

    bench::banner("incremental analytics policy",
                  "DESIGN.md §14 (delta propagation from dirty sets; not "
                  "a paper figure)",
                  set->name);
    TextTable t({"source", "policy", "epochs", "delta", "iters", "Mtrav",
                 "seeds", "cmp Mcyc", "hidden Mcyc"});
    std::vector<PolicyResult> results;
    results.reserve(set->runs.size());
    for (const Run& r : set->runs) {
        results.push_back(run_one(r));
        const PolicyResult& res = results.back();
        t.row()
            .cell(r.source)
            .cell(stream::to_string(r.policy))
            .cell(static_cast<std::uint64_t>(res.epochs.size()))
            .cell(res.delta_epochs)
            .cell(res.work.iterations)
            .cell(static_cast<double>(res.work.traversals) / 1e6)
            .cell(res.work.seeds)
            .cell(static_cast<double>(res.compute_cycles) / 1e6)
            .cell(static_cast<double>(res.hidden_cycles) / 1e6);
    }
    t.print();

    if (!json_path.empty()) {
        write_json(json_path, set->name, set->runs, results, wall);
    }
    return 0;
}
