/**
 * @file
 * Pipeline overlap harness (DESIGN.md §11).  Measures how much of the
 * modeled update phase is hidden under the previous epoch's compute round
 * when the engine runs as a two-stage pipeline (pipeline_depth = 2) versus
 * the serial baseline (depth 1), sweeping batch size over the Table-2
 * datasets and a generic R-MAT stream.
 *
 * Per stream the driver replays the ingest -> hand-off -> compute loop:
 * after each due compute round it books the round's modeled cycles with
 * SimEngine::note_compute_round(), and subsequent ingests report the
 * update cycles hidden under that budget in
 * BatchReport::update_hidden_cycles.  The headline series is the
 * update-hidden fraction (hidden / update cycles) per batch size.
 *
 * Batch counts are pinned — IGS_BENCH_SCALE deliberately has no effect —
 * so `--json` output is a deterministic function of the code and is used
 * as a golden set (tests/golden/golden_pipeline.json) in `ctest -L golden`.
 *
 * Usage: bench_pipeline_overlap [--set=rmat|table2] [--json=<path>]
 */
#include "bench_support.h"

#include <cstring>

#include "gen/rmat.h"
#include "stream/batch.h"

namespace {

using namespace igs;

/** One pinned replay: an edge source at one batch size and depth. */
struct Run {
    const char* source; // Table-2 short name, or "rmat"
    std::size_t batch_size;
    std::size_t num_batches;
    unsigned pipeline_depth;
};

struct OverlapSet {
    const char* name;
    std::vector<Run> runs;
};

/** Per-batch slice of one replay. */
struct OverlapBatch {
    std::uint64_t id = 0;
    Cycles update_cycles = 0;
    Cycles hidden_cycles = 0;
    bool computed = false;
};

/** Totals of one replay. */
struct OverlapResult {
    std::vector<OverlapBatch> batches;
    Cycles update_cycles = 0;
    Cycles compute_cycles = 0;
    Cycles hidden_cycles = 0;

    double
    hidden_fraction() const
    {
        return update_cycles == 0
                   ? 0.0
                   : static_cast<double>(hidden_cycles) /
                         static_cast<double>(update_cycles);
    }
};

/** The golden set pins both sweeps; keep each run well under a second. */
const std::vector<OverlapSet>&
sets()
{
    static const std::vector<OverlapSet> kSets = {
        {"rmat",
         {
             {"rmat", 500, 8, 1},
             {"rmat", 500, 8, 2},
             {"rmat", 1000, 8, 1},
             {"rmat", 1000, 8, 2},
             {"rmat", 5000, 6, 1},
             {"rmat", 5000, 6, 2},
         }},
        {"table2",
         {
             {"wiki", 1000, 8, 1},
             {"wiki", 1000, 8, 2},
             {"wiki", 10000, 4, 1},
             {"wiki", 10000, 4, 2},
             {"lj", 1000, 8, 1},
             {"lj", 1000, 8, 2},
         }},
    };
    return kSets;
}

/**
 * Replay the pipeline loop against any generator with `take(n)`.  OCA is
 * disabled so every batch runs a compute round: the overlap series then
 * isolates the depth effect instead of mixing in aggregation decisions.
 */
template <typename Gen>
OverlapResult
replay(Gen& genr, std::size_t num_vertices, const Run& run)
{
    core::EngineConfig cfg;
    cfg.policy = core::UpdatePolicy::kAbrUsc;
    cfg.oca.enabled = false;
    cfg.pipeline_depth = run.pipeline_depth;
    sim::SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                          sim::HauCostParams{}, num_vertices);
    analytics::IncrementalPageRank pr;
    const analytics::ComputeCostParams ccp;

    OverlapResult out;
    for (std::uint64_t k = 1; k <= run.num_batches; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(genr.take(run.batch_size));
        const core::BatchReport rep = engine.ingest(batch);
        OverlapBatch b{rep.batch_id, rep.update.cycles,
                       rep.update_hidden_cycles, false};
        out.update_cycles += rep.update.cycles;
        out.hidden_cycles += rep.update_hidden_cycles;
        if (engine.compute_due()) {
            const core::PendingWork work = engine.take_pending_work();
            const analytics::ComputeStats stats =
                pr.on_batch(engine.graph(), work.affected);
            const Cycles compute = stats.cycles(ccp);
            out.compute_cycles += compute;
            engine.note_compute_round(compute);
            b.computed = true;
        }
        out.batches.push_back(b);
    }
    return out;
}

OverlapResult
run_one(const Run& run)
{
    if (std::strcmp(run.source, "rmat") == 0) {
        gen::RmatParams rp;
        rp.scale = 14;
        gen::RmatGenerator genr(rp);
        return replay(genr, genr.num_vertices(), run);
    }
    const gen::DatasetSpec& ds = gen::find_dataset(run.source);
    auto genr = ds.make_generator();
    return replay(genr, ds.model.num_vertices, run);
}

/**
 * Dedicated exporter: the overlap series (hidden cycles / fraction) is
 * not part of the shared per-batch record shape in bench_support.h's
 * JsonSink — the pre-pipeline goldens must keep their exact shape — so
 * this bench serializes its own document with the same top-level schema
 * (schema_version / experiment / host / streams / telemetry).
 */
void
write_json(const std::string& path, const char* set_name,
           const std::vector<Run>& runs,
           const std::vector<OverlapResult>& results, const Timer& wall)
{
    telemetry::JsonWriter w(2);
    w.begin_object();
    w.kv("schema_version", bench::JsonSink::kSchemaVersion);
    w.kv("experiment", "pipeline_overlap");
    w.key("host").begin_object();
    w.kv("bench_scale", bench::bench_scale());
    if (const char* e = std::getenv("IGS_BENCH_SCALE")) {
        w.kv("bench_scale_env", e);
    } else {
        w.key("bench_scale_env").null();
    }
    w.kv("wall_seconds", wall.seconds());
    w.end_object();
    w.kv("set", set_name);
    w.key("streams").begin_array();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Run& r = runs[i];
        const OverlapResult& res = results[i];
        w.begin_object();
        w.kv("dataset", r.source);
        w.kv("batch_size", static_cast<std::uint64_t>(r.batch_size));
        w.kv("pipeline_depth", static_cast<std::uint64_t>(r.pipeline_depth));
        w.kv("num_batches", static_cast<std::uint64_t>(res.batches.size()));
        w.kv("update_cycles", static_cast<std::uint64_t>(res.update_cycles));
        w.kv("compute_cycles", static_cast<std::uint64_t>(res.compute_cycles));
        w.kv("hidden_cycles", static_cast<std::uint64_t>(res.hidden_cycles));
        w.kv("hidden_fraction", res.hidden_fraction());
        w.key("batches").begin_array();
        for (const OverlapBatch& b : res.batches) {
            w.begin_object();
            w.kv("id", b.id);
            w.kv("update_cycles", static_cast<std::uint64_t>(b.update_cycles));
            w.kv("hidden_cycles", static_cast<std::uint64_t>(b.hidden_cycles));
            w.kv("computed", b.computed);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("telemetry").raw(telemetry::to_json(0));
    w.end_object();

    const std::string doc = w.take();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
        return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    Timer wall;
    std::string json_path;
    const char* set_name = "rmat";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else if (std::strncmp(argv[i], "--set=", 6) == 0) {
            set_name = argv[i] + 6;
        }
    }
    const OverlapSet* set = nullptr;
    for (const OverlapSet& s : sets()) {
        if (s.name == std::string(set_name)) {
            set = &s;
        }
    }
    if (set == nullptr) {
        std::fprintf(stderr,
                     "usage: bench_pipeline_overlap [--set=<name>] "
                     "[--json=<path>]\nsets:");
        for (const OverlapSet& s : sets()) {
            std::fprintf(stderr, " %s", s.name);
        }
        std::fprintf(stderr, "\n");
        return 2;
    }

    bench::banner("pipeline overlap",
                  "DESIGN.md §11 (pipelined update/compute; not a paper "
                  "figure)",
                  set->name);
    TextTable t({"source", "batch", "depth", "upd Mcyc", "cmp Mcyc",
                 "hidden Mcyc", "hidden frac"});
    std::vector<OverlapResult> results;
    results.reserve(set->runs.size());
    for (const Run& r : set->runs) {
        results.push_back(run_one(r));
        const OverlapResult& res = results.back();
        t.row()
            .cell(r.source)
            .cell(static_cast<std::uint64_t>(r.batch_size))
            .cell(static_cast<std::uint64_t>(r.pipeline_depth))
            .cell(static_cast<double>(res.update_cycles) / 1e6)
            .cell(static_cast<double>(res.compute_cycles) / 1e6)
            .cell(static_cast<double>(res.hidden_cycles) / 1e6)
            .cell(res.hidden_fraction());
    }
    t.print();

    if (!json_path.empty()) {
        write_json(json_path, set->name, set->runs, results, wall);
    }
    return 0;
}
