/**
 * @file
 * Fig 19 reproduction: HAU work distribution among cores (uk @100K).
 *
 * Paper: update tasks per core are near-uniform (max 3% above min, 1.3%
 * above average — hashing spreads vertices evenly); edge-data cachelines
 * per core are skewed (max 600% above min, 148% above average — some
 * cores own hotter vertices).  Cores 1-15 host the workers (core 0 is
 * the master thread).
 */
#include "bench_support.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig19_hau_work", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Fig 19: HAU per-core work distribution (uk @100K)",
                  "Fig 19 (tasks near-uniform; cachelines skewed)", "");

    const auto& ds = gen::find_dataset("uk");
    const std::size_t b = 100000;
    const std::size_t nb = bench::batches_for(b);

    core::EngineConfig cfg;
    cfg.policy = UpdatePolicy::kAlwaysHau;
    sim::SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                           sim::HauCostParams{}, ds.model.num_vertices);
    auto genr = ds.make_generator();
    // Pre-seed stream history so hub adjacency arrays have accumulated
    // (the paper measures at batch number 100, i.e. 10M edges in); the
    // history is ingested functionally, outside the timed window.
    for (const StreamEdge& e : genr.take(1500000)) {
        if (!e.is_delete) {
            engine.graph().ensure_vertices(
                std::max<std::size_t>(std::max(e.src, e.dst) + 1,
                                      engine.graph().num_vertices()));
            engine.graph().apply_insert(e.src, {e.dst, e.weight},
                                        Direction::kOut);
            engine.graph().apply_insert(e.dst, {e.src, e.weight},
                                        Direction::kIn);
        }
    }
    std::vector<std::uint64_t> tasks(16, 0);
    std::vector<std::uint64_t> lines(16, 0);
    for (std::uint64_t k = 1; k <= nb; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(genr.take(b));
        engine.ingest(batch);
        const auto& hau = engine.runner().last_hau_stats();
        if (hau.has_value()) {
            for (std::size_t c = 0; c < hau->per_core.size(); ++c) {
                tasks[c] += hau->per_core[c].tasks;
                lines[c] += hau->per_core[c].lines;
            }
        }
    }

    TextTable t({"core", "update tasks", "edge-data cachelines"});
    std::uint64_t tmax = 0, tmin = ~0ull, ttot = 0;
    std::uint64_t lmax = 0, lmin = ~0ull, ltot = 0;
    for (std::size_t c = 1; c < 16; ++c) {
        t.row()
            .cell(static_cast<std::uint64_t>(c))
            .cell(tasks[c])
            .cell(lines[c]);
        tmax = std::max(tmax, tasks[c]);
        tmin = std::min(tmin, tasks[c]);
        ttot += tasks[c];
        lmax = std::max(lmax, lines[c]);
        lmin = std::min(lmin, lines[c]);
        ltot += lines[c];
    }
    t.print();
    const double tavg = static_cast<double>(ttot) / 15.0;
    const double lavg = static_cast<double>(ltot) / 15.0;
    std::printf("\ntasks: max/min = %.3f (paper ~1.03), max/avg = %.3f "
                "(paper ~1.013)\n",
                static_cast<double>(tmax) / static_cast<double>(tmin),
                static_cast<double>(tmax) / tavg);
    std::printf("cachelines: max/min = %.2f (paper ~7.0), max/avg = %.2f "
                "(paper ~2.48)\n",
                static_cast<double>(lmax) / static_cast<double>(lmin),
                static_cast<double>(lmax) / lavg);
    return 0;
}
