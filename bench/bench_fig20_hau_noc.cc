/**
 * @file
 * Fig 20 reproduction: HAU's cache-access locality and NoC impact
 * (uk @100K).
 *
 * Paper: 98-99% of accessed edge-data cachelines hit the local core tile;
 * HAU eliminates the remote cache accesses the software baseline would
 * incur; the average NoC packet latency rises by <10% from carrying the
 * update-task traffic.
 */
#include "bench_support.h"

#include "sim/noc.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig20_hau_noc", argc, argv);
    using namespace igs;
    using core::UpdatePolicy;

    bench::banner("Fig 20: HAU locality and NoC impact (uk @100K)",
                  "Fig 20 (98-99% local lines; <10% packet-latency "
                  "increase)",
                  "");

    const auto& ds = gen::find_dataset("uk");
    const std::size_t b = 100000;
    const std::size_t nb = bench::batches_for(b);

    core::EngineConfig cfg;
    cfg.policy = UpdatePolicy::kAlwaysHau;
    sim::SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                           sim::HauCostParams{}, ds.model.num_vertices);
    auto genr = ds.make_generator();
    // Pre-seed stream history so hub adjacency arrays have accumulated
    // (the paper measures at batch number 100, i.e. 10M edges in); the
    // history is ingested functionally, outside the timed window.
    for (const StreamEdge& e : genr.take(1500000)) {
        if (!e.is_delete) {
            engine.graph().ensure_vertices(
                std::max<std::size_t>(std::max(e.src, e.dst) + 1,
                                      engine.graph().num_vertices()));
            engine.graph().apply_insert(e.src, {e.dst, e.weight},
                                        Direction::kOut);
            engine.graph().apply_insert(e.dst, {e.src, e.weight},
                                        Direction::kIn);
        }
    }
    std::vector<std::uint64_t> local(16, 0);
    std::vector<std::uint64_t> total(16, 0);
    for (std::uint64_t k = 1; k <= nb; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(genr.take(b));
        engine.ingest(batch);
        const auto& hau = engine.runner().last_hau_stats();
        if (hau.has_value()) {
            for (std::size_t c = 0; c < hau->per_core.size(); ++c) {
                local[c] += hau->per_core[c].local_lines;
                total[c] += hau->per_core[c].lines;
            }
        }
    }

    const auto& with_tasks =
        engine.runner().hau().noc().core_stats(sim::PacketClass::kData);
    const auto& data_only = engine.runner()
                                .hau()
                                .noc_without_tasks()
                                .core_stats(sim::PacketClass::kData);

    TextTable t({"core", "local lines %", "remote elimination %",
                 "packet latency increase %"});
    double worst_latency = 0.0;
    for (std::size_t c = 1; c < 16; ++c) {
        const double local_pct =
            total[c] == 0 ? 100.0
                          : 100.0 * static_cast<double>(local[c]) /
                                static_cast<double>(total[c]);
        // The software baseline spreads a vertex's updates over all 16
        // cores: ~15/16 of its line transfers would cross tiles.  HAU's
        // static vertex->core mapping removes them; what remains is the
        // allocator-boundary residue.
        const double sw_remote =
            static_cast<double>(total[c]) * 15.0 / 16.0;
        const double hau_remote =
            static_cast<double>(total[c] - local[c]);
        const double elim = sw_remote == 0.0
                                ? 100.0
                                : 100.0 * (1.0 - hau_remote / sw_remote);
        double latency_increase = 0.0;
        if (data_only[c].packets > 0 &&
            data_only[c].average_latency() > 0.0) {
            latency_increase =
                100.0 * (with_tasks[c].average_latency() /
                             data_only[c].average_latency() -
                         1.0);
        }
        worst_latency = std::max(worst_latency, latency_increase);
        t.row()
            .cell(static_cast<std::uint64_t>(c))
            .cell(local_pct, 2)
            .cell(elim, 2)
            .cell(latency_increase, 2);
    }
    t.print();
    std::printf("\nworst-core packet-latency increase: %.2f%% (paper: "
                "within 10%%)\n",
                worst_latency);
    return 0;
}
