/**
 * @file
 * Fig 18 reproduction: ABR design-parameter analysis.
 *
 *  (a) decision accuracy over the paper's lambda-TH grid (paper: 97% at
 *      lambda=256/TH=465), plus the plain-average-degree alternative the
 *      paper rejects;
 *  (b) sensitivity to the instrumentation period n: a larger n is
 *      slightly cheaper on stationary streams but misses temporal regime
 *      changes (paper: flickr-500K / yt-100K / stack-500K degrade at
 *      n=100).
 */
#include <algorithm>

#include "bench_support.h"

#include "common/thread_pool.h"
#include "core/cad.h"
#include "stream/reorder.h"

namespace {

using namespace igs;

struct LabeledBatch {
    double cad = 0.0;        // CAD_lambda for each candidate lambda
    double avg_degree = 0.0; // the rejected alternative metric
    bool reorder_better = false;
};

} // namespace

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig18_abr_params", argc, argv);
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Fig 18: ABR parameter analysis",
                  "Fig 18a (accuracy over lambda-TH grid; 97% at "
                  "lambda=256, TH=465) and Fig 18b (sensitivity to n)",
                  "ground truth per batch: simulated RO update cycles < "
                  "baseline update cycles");

    // The paper's grid: lambda with its per-lambda best TH.
    const std::vector<std::pair<std::uint32_t, double>> grid{
        {2, -1.0}, {4, 10.0},  {8, 20.0},  {16, 35.0},   {32, 65.0},
        {64, 90.0}, {128, 140.0}, {256, 465.0}, {512, 770.0}};

    // Gather labeled batches across datasets and batch sizes (yt,
    // friendster and uk excluded, as in the paper's parameter study).
    std::vector<std::pair<std::vector<double>, LabeledBatch>> samples;
    // per sample: CAD per grid lambda + label.
    for (const auto& ds : gen::registry()) {
        if (ds.name == "yt" || ds.name == "friendster" || ds.name == "uk") {
            continue;
        }
        for (std::size_t b : {std::size_t{1000}, std::size_t{10000},
                              std::size_t{100000}}) {
            const std::size_t nb = std::min<std::size_t>(
                bench::batches_for(b), 4);
            const auto base = bench::run_stream(
                ds, b, nb, UpdatePolicy::kBaseline, Algo::kNone);
            const auto ro = bench::run_stream(
                ds, b, nb, UpdatePolicy::kAlwaysReorder, Algo::kNone);
            auto genr = ds.make_generator();
            for (std::size_t k = 0; k < nb; ++k) {
                const auto edges = genr.take(b);
                const auto rb =
                    stream::reorder_batch(edges, default_pool());
                std::vector<double> cads;
                cads.reserve(grid.size());
                for (const auto& [lambda, th] : grid) {
                    cads.push_back(
                        core::cad_from_reordered(rb, lambda).cad());
                }
                LabeledBatch lb;
                lb.reorder_better =
                    ro.batches[k].report.update.cycles <
                    base.batches[k].report.update.cycles;
                lb.avg_degree =
                    static_cast<double>(b) /
                    static_cast<double>(rb.by_src.runs.size());
                samples.push_back({std::move(cads), lb});
            }
        }
    }

    std::printf("--- (a) decision accuracy over the lambda-TH grid ---\n");
    TextTable t({"lambda", "TH", "accuracy %"});
    double best_acc = 0.0;
    std::uint32_t best_lambda = 0;
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
        const auto [lambda, th] = grid[gi];
        const double threshold = th < 0 ? 1.0 : th; // "max" column -> any
        int correct = 0;
        for (const auto& [cads, lb] : samples) {
            const bool predict = cads[gi] >= threshold;
            correct += predict == lb.reorder_better ? 1 : 0;
        }
        const double acc =
            100.0 * correct / static_cast<double>(samples.size());
        if (acc > best_acc) {
            best_acc = acc;
            best_lambda = lambda;
        }
        t.row()
            .cell(static_cast<std::uint64_t>(lambda))
            .cell(threshold, 0)
            .cell(acc, 1);
    }
    t.print();
    std::printf("best: lambda=%u at %.1f%% (paper: 97%% at lambda=256, "
                "TH=465)\n",
                best_lambda, best_acc);

    // The rejected alternative: plain average degree.
    {
        int correct = 0;
        for (const auto& [cads, lb] : samples) {
            const bool predict = lb.avg_degree >= 1.5; // best-effort cut
            correct += predict == lb.reorder_better ? 1 : 0;
        }
        std::printf("alternative metric (plain average degree, best "
                    "single cut): %.1f%% — the paper rejects it for poor "
                    "discrimination\n\n",
                    100.0 * correct / static_cast<double>(samples.size()));
    }

    std::printf("--- (b) sensitivity to the instrumentation period n ---\n");
    // A stream with temporal regime changes: alternate wiki-like
    // (friendly) and lj-like (adverse) segments so a coarse n misses
    // transitions.
    {
        const auto& friendly = gen::find_dataset("wiki");
        const auto& adverse = gen::find_dataset("lj");
        const std::size_t b = 10000;
        const std::size_t total_batches = 40;
        const std::size_t segment = 10;

        auto run_n = [&](std::uint32_t n) {
            core::AbrParams abr;
            abr.n = n;
            core::EngineConfig cfg;
            cfg.policy = UpdatePolicy::kAbrUsc;
            cfg.abr = abr;
            sim::SimEngine engine(cfg, sim::MachineParams{},
                                   sim::SwCostParams{}, sim::HauCostParams{},
                                   std::max(friendly.model.num_vertices,
                                            adverse.model.num_vertices));
            auto gf = friendly.make_generator();
            auto ga = adverse.make_generator();
            std::vector<bool> decisions;
            for (std::uint64_t k = 1; k <= total_batches; ++k) {
                const bool friendly_phase = ((k - 1) / segment) % 2 == 0;
                stream::EdgeBatch batch;
                batch.id = k;
                batch.set_edges(friendly_phase ? gf.take(b) : ga.take(b));
                decisions.push_back(engine.ingest(batch).reordered);
            }
            return decisions;
        };
        // Per-batch oracle: the cheaper of pure-baseline / pure-RO+USC
        // runs of the identical mixed stream (RO+USC is what the
        // adaptive policy uses on its reorder path).
        auto run_pure = [&](UpdatePolicy policy) {
            core::EngineConfig cfg;
            cfg.policy = policy;
            sim::SimEngine engine(cfg, sim::MachineParams{},
                                   sim::SwCostParams{}, sim::HauCostParams{},
                                   std::max(friendly.model.num_vertices,
                                            adverse.model.num_vertices));
            auto gf = friendly.make_generator();
            auto ga = adverse.make_generator();
            std::vector<Cycles> per_batch;
            for (std::uint64_t k = 1; k <= total_batches; ++k) {
                const bool friendly_phase = ((k - 1) / segment) % 2 == 0;
                stream::EdgeBatch batch;
                batch.id = k;
                batch.set_edges(friendly_phase ? gf.take(b) : ga.take(b));
                per_batch.push_back(engine.ingest(batch).update.cycles);
            }
            return per_batch;
        };
        const auto pure_base = run_pure(UpdatePolicy::kBaseline);
        const auto pure_ro = run_pure(UpdatePolicy::kAlwaysReorderUsc);
        std::vector<bool> oracle_decision(total_batches);
        for (std::size_t k = 0; k < total_batches; ++k) {
            oracle_decision[k] = pure_ro[k] < pure_base[k];
        }

        TextTable t2({"n", "decisions matching per-batch oracle %"});
        for (std::uint32_t n : {2u, 5u, 10u, 20u, 40u}) {
            const auto decisions = run_n(n);
            int match = 0;
            for (std::size_t k = 0; k < total_batches; ++k) {
                match += decisions[k] == oracle_decision[k] ? 1 : 0;
            }
            t2.row()
                .cell(static_cast<std::uint64_t>(n))
                .cell(100.0 * match / static_cast<double>(total_batches),
                      1);
        }
        t2.print();
        std::printf("a small n tracks the regime changes (phases of 10 "
                    "batches); a large n latches stale decisions across "
                    "transitions — the paper's Fig 18b effect.\n");
    }
    return 0;
}
