/**
 * @file
 * Fig 16 reproduction: instrumentation overheads of ABR and OCA.
 *
 *  (a) Speedup of an ABR-active batch vs the same batch uninstrumented:
 *      ~0.90x when the batch is reordered (run-index instrumentation),
 *      ~0.54x when not (concurrent-hash-map instrumentation).
 *  (b) OCA's latest_bid/counter upkeep is nearly free (~0.99x).
 */
#include "bench_support.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig16_overheads", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Fig 16: ABR and OCA overheads",
                  "Fig 16 (a: reordered ~0.90x / non-reordered ~0.54x "
                  "active-batch slowdown; b: OCA ~0.99x)",
                  "");

    std::printf("--- (a) ABR-active batch overhead ---\n");
    {
        TextTable t({"instrumentation path", "dataset", "batch",
                     "active-batch speedup", "paper"});
        // Reordered path: friendly dataset where ABR keeps reordering.
        {
            const auto& ds = gen::find_dataset("wiki");
            const std::size_t b = 100000;
            core::AbrParams every;
            every.n = 1; // instrument every batch
            const auto instr = bench::run_stream(
                ds, b, 3, UpdatePolicy::kAbrUsc, Algo::kNone, false, every);
            const auto plain = bench::run_stream(
                ds, b, 3, UpdatePolicy::kAlwaysReorderUsc, Algo::kNone);
            t.row()
                .cell(std::string("reordered (run index)"))
                .cell(ds.name)
                .cell(static_cast<std::uint64_t>(b))
                .cell(static_cast<double>(plain.update_cycles) /
                      static_cast<double>(instr.update_cycles))
                .cell(std::string("0.90x"));
        }
        // Non-reordered path: adverse dataset, hash-map instrumentation.
        {
            const auto& ds = gen::find_dataset("lj");
            const std::size_t b = 100000;
            core::AbrParams every;
            every.n = 1;
            // ABR falls back to baseline after batch 1; from then on every
            // active batch pays the concurrent-hash-map path.
            const auto instr = bench::run_stream(
                ds, b, 4, UpdatePolicy::kAbr, Algo::kNone, false, every);
            const auto plain = bench::run_stream(
                ds, b, 4, UpdatePolicy::kBaseline, Algo::kNone);
            // Compare only batches 2.. (batch 1 of the ABR run reorders).
            Cycles i_cyc = 0;
            Cycles p_cyc = 0;
            for (std::size_t k = 1; k < 4; ++k) {
                i_cyc += instr.batches[k].report.update.cycles;
                p_cyc += plain.batches[k].report.update.cycles;
            }
            t.row()
                .cell(std::string("non-reordered (hash map)"))
                .cell(ds.name)
                .cell(static_cast<std::uint64_t>(b))
                .cell(static_cast<double>(p_cyc) /
                      static_cast<double>(i_cyc))
                .cell(std::string("0.54x"));
        }
        t.print();
    }

    std::printf("\n--- (b) OCA overhead ---\n");
    {
        TextTable t({"configuration", "dataset", "speedup vs no OCA",
                     "paper"});
        const auto& ds = gen::find_dataset("stack");
        const std::size_t b = 100000;
        const std::size_t nb = bench::batches_for(b);
        // Compare update cycles with OCA instrumentation on vs off, with
        // identical update paths (compute excluded to isolate upkeep).
        const auto with_oca = bench::run_stream(
            ds, b, nb, UpdatePolicy::kAbrUsc, Algo::kNone, true);
        const auto without = bench::run_stream(
            ds, b, nb, UpdatePolicy::kAbrUsc, Algo::kNone, false);
        t.row()
            .cell(std::string("ABR+USC+OCA vs ABR+USC"))
            .cell(ds.name)
            .cell(static_cast<double>(without.update_cycles) /
                  static_cast<double>(with_oca.update_cycles))
            .cell(std::string("~0.99x"));
        t.print();
    }
    return 0;
}
