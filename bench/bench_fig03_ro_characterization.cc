/**
 * @file
 * Fig 3 reproduction: the characterization study.  For all 14 datasets
 * across the paper's five batch sizes, the effect of input-oblivious batch
 * reordering on update and overall performance, with the batch's maximum
 * in/out degree (the right-axis indicator metric).
 *
 * Expected shape (paper): topcats/talk/berkstan/yt/superuser/wiki gain up
 * to ~3x at 100K/500K (talk/yt/wiki already at 10K); every dataset loses
 * at 100/1K; lj/patents/fb/flickr/amazon/stack/friendster/uk lose at all
 * batch sizes.
 */
#include "bench_support.h"

#include "stream/batch.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig03_ro_characterization", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Fig 3: RO performance characterization",
                  "Fig 3 (left axis: RO update & overall speedup; right "
                  "axis: max in/out degree per batch)",
                  "overall = update + incremental-PR compute");

    std::vector<std::size_t> batch_sizes = gen::paper_batch_sizes();
    if (argc > 1 && std::string(argv[1]) == "--quick") {
        batch_sizes = {1000, 100000};
    }

    TextTable t({"dataset", "batch", "RO update x", "RO overall x",
                 "max out-deg", "max in-deg", "class"});
    for (const auto& ds : gen::registry()) {
        for (std::size_t b : batch_sizes) {
            const std::size_t nb = bench::batches_for(b);
            const auto base = bench::run_stream(ds, b, nb,
                                                UpdatePolicy::kBaseline,
                                                Algo::kPageRank);
            const auto ro = bench::run_stream(ds, b, nb,
                                              UpdatePolicy::kAlwaysReorder,
                                              Algo::kPageRank);
            // Right axis: average over batches of the max batch degree.
            auto genr = ds.make_generator();
            double max_out = 0.0;
            double max_in = 0.0;
            for (std::size_t k = 0; k < nb; ++k) {
                const auto stats =
                    stream::compute_batch_degree_stats(genr.take(b));
                max_out += stats.max_out_degree;
                max_in += stats.max_in_degree;
            }
            const bool friendly =
                ds.reorder_friendly && b >= ds.friendly_from_batch;
            t.row()
                .cell(ds.name)
                .cell(static_cast<std::uint64_t>(b))
                .cell(bench::speedup(base, ro))
                .cell(bench::overall_speedup(base, ro))
                .cell(max_out / static_cast<double>(nb), 0)
                .cell(max_in / static_cast<double>(nb), 0)
                .cell(std::string(friendly ? "friendly" : "adverse"));
        }
    }
    t.print();
    return 0;
}
