/**
 * @file
 * Google-benchmark micro-benchmarks for the library's hot primitives:
 * batch reordering (parallel stable sort + run index), adjacency-list
 * mutation, the concurrent hash map, the generator, and the cache/NoC
 * models.  These measure host wall time (unlike the figure harnesses,
 * which report simulated cycles).
 */
#include <benchmark/benchmark.h>

#include "bench_support.h"
#include "common/concurrent_hash_map.h"
#include "common/parallel_sort.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "gen/datasets.h"
#include "graph/adjacency_list.h"
#include "graph/degree_aware_hash.h"
#include "graph/indexed_adjacency.h"
#include "sim/cache.h"
#include "sim/noc.h"
#include "stream/reorder.h"

namespace {

using namespace igs;

std::vector<StreamEdge>
sample_edges(std::size_t n)
{
    auto g = gen::find_dataset("wiki").make_generator();
    return g.take(n);
}

void
BM_ReorderBatch(benchmark::State& state)
{
    const auto edges = sample_edges(static_cast<std::size_t>(state.range(0)));
    ThreadPool pool(2);
    for (auto _ : state) {
        auto rb = stream::reorder_batch(edges, pool);
        benchmark::DoNotOptimize(rb.by_src.runs.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReorderBatch)->Arg(10000)->Arg(100000);

void
BM_ParallelStableSort(benchmark::State& state)
{
    Rng rng(1);
    std::vector<std::uint64_t> base(
        static_cast<std::size_t>(state.range(0)));
    for (auto& v : base) {
        v = rng();
    }
    ThreadPool pool(2);
    for (auto _ : state) {
        auto copy = base;
        parallel_stable_sort(copy.begin(), copy.end(), std::less<>(), pool);
        benchmark::DoNotOptimize(copy.front());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelStableSort)->Arg(10000)->Arg(100000);

void
BM_AdjacencyListInsert(benchmark::State& state)
{
    const auto edges = sample_edges(100000);
    for (auto _ : state) {
        graph::AdjacencyList g(200000);
        for (const auto& e : edges) {
            g.apply_insert(e.src, {e.dst, e.weight}, Direction::kOut);
        }
        benchmark::DoNotOptimize(g.num_edges());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_AdjacencyListInsert);

void
BM_IndexedAdjacencyInsert(benchmark::State& state)
{
    const auto edges = sample_edges(100000);
    for (auto _ : state) {
        graph::IndexedAdjacency g(200000);
        for (const auto& e : edges) {
            g.apply_insert(e.src, {e.dst, e.weight}, Direction::kOut);
        }
        benchmark::DoNotOptimize(g.num_edges());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_IndexedAdjacencyInsert);

void
BM_DegreeAwareHashInsert(benchmark::State& state)
{
    const auto edges = sample_edges(100000);
    for (auto _ : state) {
        graph::DegreeAwareHash g(200000);
        for (const auto& e : edges) {
            g.apply_insert(e.src, {e.dst, e.weight}, Direction::kOut);
        }
        benchmark::DoNotOptimize(g.num_edges());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_DegreeAwareHashInsert);

void
BM_ConcurrentHashMapUpdate(benchmark::State& state)
{
    Rng rng(3);
    std::vector<std::uint32_t> keys(100000);
    for (auto& k : keys) {
        k = static_cast<std::uint32_t>(rng.below(50000));
    }
    for (auto _ : state) {
        ConcurrentHashMap<std::uint32_t, std::uint32_t> map(keys.size());
        for (auto k : keys) {
            map.update(k, [](std::uint32_t& v) { ++v; });
        }
        benchmark::DoNotOptimize(map.size());
    }
    state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_ConcurrentHashMapUpdate);

void
BM_EdgeStreamGenerate(benchmark::State& state)
{
    auto g = gen::find_dataset("wiki").make_generator();
    for (auto _ : state) {
        benchmark::DoNotOptimize(g.next());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EdgeStreamGenerate);

void
BM_CacheLookup(benchmark::State& state)
{
    sim::Cache cache(32 * 1024, 8, 64);
    Rng rng(4);
    std::vector<sim::LineAddr> lines(4096);
    for (auto& l : lines) {
        l = rng.below(2048);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const auto line = lines[i++ & 4095];
        if (!cache.lookup(line)) {
            cache.fill(line);
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void
BM_NocSend(benchmark::State& state)
{
    sim::NocModel noc{sim::MachineParams{}};
    Rng rng(5);
    Cycles now = 0;
    for (auto _ : state) {
        const auto from = static_cast<std::uint32_t>(rng.below(16));
        const auto to = static_cast<std::uint32_t>(rng.below(16));
        benchmark::DoNotOptimize(
            noc.send(from, to, 32, sim::PacketClass::kTask, ++now));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NocSend);

} // namespace

int
main(int argc, char** argv)
{
    // The sink strips --json=<path> first — google-benchmark aborts on
    // flags it does not recognize.
    igs::bench::JsonSink json_sink("micro_primitives", argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
