/**
 * @file
 * Fig 15 reproduction: why the dynamic SW/HW execution mode beats both
 * input-oblivious extremes.
 *
 *  - Left: enforcing the software optimizations (RO+USC) on
 *    reordering-adverse cases performs about as poorly as plain RO, while
 *    ABR+USC recovers (paper bars ~0.4 vs ~0.9).
 *  - Right: enforcing HAU on reordering-friendly cases degrades update
 *    performance relative to ABR+USC(+HAU) (paper bars ~0.2-0.8).
 */
#include "bench_support.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig15_dynamic_modes", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Fig 15: input-aware SW/HW vs SW-only and HW-only",
                  "Fig 15 (left: RO+USC on adverse cases; right: HAU on "
                  "friendly cases)",
                  "speedups are vs the non-reordered baseline (left) and "
                  "vs ABR+USC (right)");

    std::printf("--- left: reordering-adverse cases, software enforced ---\n");
    {
        TextTable t({"dataset", "batch", "RO x", "RO+USC x", "ABR+USC x",
                     "ABR+USC+HAU x"});
        std::vector<double> ro_all, rousc_all, abrusc_all, full_all;
        for (const auto& name : {"lj", "patents", "flickr", "amazon",
                                 "stack", "uk"}) {
            const auto& ds = gen::find_dataset(name);
            for (std::size_t b : {std::size_t{10000}, std::size_t{100000}}) {
                const std::size_t nb = bench::batches_for(b);
                const auto base = bench::run_stream(
                    ds, b, nb, UpdatePolicy::kBaseline, Algo::kNone);
                const auto ro = bench::run_stream(
                    ds, b, nb, UpdatePolicy::kAlwaysReorder, Algo::kNone);
                const auto rousc = bench::run_stream(
                    ds, b, nb, UpdatePolicy::kAlwaysReorderUsc, Algo::kNone);
                const auto abrusc = bench::run_stream(
                    ds, b, nb, UpdatePolicy::kAbrUsc, Algo::kNone);
                const auto full = bench::run_stream(
                    ds, b, nb, UpdatePolicy::kAbrUscHau, Algo::kNone);
                const double s1 = bench::speedup(base, ro);
                const double s2 = bench::speedup(base, rousc);
                const double s3 = bench::speedup(base, abrusc);
                const double s4 = bench::speedup(base, full);
                ro_all.push_back(s1);
                rousc_all.push_back(s2);
                abrusc_all.push_back(s3);
                full_all.push_back(s4);
                t.row()
                    .cell(ds.name)
                    .cell(static_cast<std::uint64_t>(b))
                    .cell(s1)
                    .cell(s2)
                    .cell(s3)
                    .cell(s4);
            }
        }
        t.print();
        std::printf("geomean: RO %.2f, RO+USC %.2f (enforced SW performs "
                    "~like RO), ABR+USC %.2f, ABR+USC+HAU %.2f\n\n",
                    geomean(ro_all), geomean(rousc_all), geomean(abrusc_all),
                    geomean(full_all));
    }

    std::printf("--- right: reordering-friendly cases, HAU enforced ---\n");
    {
        TextTable t({"dataset", "batch", "HAU-only / ABR+USC x"});
        std::vector<double> ratios;
        for (const auto& name : {"talk", "yt", "wiki", "topcats",
                                 "berkstan", "superuser"}) {
            const auto& ds = gen::find_dataset(name);
            const std::size_t b =
                std::max<std::size_t>(ds.friendly_from_batch, 10000);
            const std::size_t nb = bench::batches_for(b);
            const auto sw = bench::run_stream(
                ds, b, nb, UpdatePolicy::kAbrUsc, Algo::kNone);
            const auto hw = bench::run_stream(
                ds, b, nb, UpdatePolicy::kAlwaysHau, Algo::kNone);
            const double ratio = bench::speedup(sw, hw);
            ratios.push_back(ratio);
            t.row()
                .cell(ds.name)
                .cell(static_cast<std::uint64_t>(b))
                .cell(ratio);
        }
        t.print();
        std::printf("geomean %.2f — values below 1 mean enforcing HAU on "
                    "friendly batches degrades performance (paper: "
                    "0.2-0.8)\n",
                    geomean(ratios));
    }
    return 0;
}
