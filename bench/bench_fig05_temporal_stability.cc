/**
 * @file
 * Fig 5 reproduction: temporal stability of the input-batch degree
 * distribution (lj, batch size 100K).  The share of batch edges
 * originating from vertices of a given degree stays stable over time —
 * the property that lets ABR reuse one decision for n inert batches.
 */
#include "bench_support.h"

#include "stream/batch.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig05_temporal_stability", argc, argv);
    using namespace igs;
    bench::banner("Fig 5: batch degree mix over time (lj @100K)",
                  "Fig 5 (% of edges from vertices of a given out-degree, "
                  "per batch id)",
                  "");

    const auto& ds = gen::find_dataset("lj");
    auto genr = ds.make_generator();
    const std::size_t batch = 100000;
    const std::size_t nb = std::max<std::size_t>(6, bench::batches_for(batch));

    TextTable t({"batch id", "deg=1 %", "deg=2 %", "deg=3 %", "deg=4 %",
                 "deg 5-10 %", "deg >10 %"});
    for (std::size_t k = 1; k <= nb; ++k) {
        const auto stats =
            stream::compute_batch_degree_stats(genr.take(batch));
        double share[6] = {0, 0, 0, 0, 0, 0};
        for (const auto& [deg, count] : stats.out_degree_histogram.bins()) {
            const double edges = static_cast<double>(deg * count);
            if (deg <= 4) {
                share[deg - 1] += edges;
            } else if (deg <= 10) {
                share[4] += edges;
            } else {
                share[5] += edges;
            }
        }
        auto pct = [&](double x) {
            return 100.0 * x / static_cast<double>(batch);
        };
        t.row()
            .cell(static_cast<std::uint64_t>(k))
            .cell(pct(share[0]), 1)
            .cell(pct(share[1]), 1)
            .cell(pct(share[2]), 1)
            .cell(pct(share[3]), 1)
            .cell(pct(share[4]), 1)
            .cell(pct(share[5]), 1);
    }
    t.print();
    std::printf("\nStability check: the columns should barely move across "
                "batch ids (paper Fig 5).\n");
    return 0;
}
