/**
 * @file
 * Fig 1 reproduction: the motivating result.  Input-oblivious batch
 * reordering speeds up wiki's updates but *degrades* uk's; input-aware
 * software (ABR) recovers uk, and the hardware mode (HAU) pushes it past
 * the baseline.
 *
 * Paper values at batch size 100K: (a) wiki RO 2.7x, (b) uk RO 0.69x,
 * (c) uk input-aware SW 0.92x, (d) uk input-aware SW+HW 1.6x.
 */
#include "bench_support.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig01_motivation", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Fig 1: motivation — input-oblivious RO vs input-aware "
                  "SW/HW",
                  "Fig 1 (wiki 2.7x / uk 0.69x -> 0.92x -> 1.6x)",
                  "update-phase speedups at batch size 100K");

    const std::size_t batch = 100000;
    const std::size_t nb = bench::batches_for(batch);

    TextTable t({"bar", "dataset", "configuration", "update speedup",
                 "paper"});
    {
        const auto& wiki = gen::find_dataset("wiki");
        const auto base = bench::run_stream(wiki, batch, nb,
                                            UpdatePolicy::kBaseline,
                                            Algo::kNone);
        const auto ro = bench::run_stream(wiki, batch, nb,
                                          UpdatePolicy::kAlwaysReorder,
                                          Algo::kNone);
        t.row().cell(std::string("(a)")).cell(std::string("wiki"))
            .cell(std::string("input-oblivious RO"))
            .cell(bench::speedup(base, ro))
            .cell(std::string("2.7x"));
    }
    {
        const auto& uk = gen::find_dataset("uk");
        const auto base = bench::run_stream(uk, batch, nb,
                                            UpdatePolicy::kBaseline,
                                            Algo::kNone);
        const auto ro = bench::run_stream(uk, batch, nb,
                                          UpdatePolicy::kAlwaysReorder,
                                          Algo::kNone);
        const auto abr = bench::run_stream(uk, batch, nb,
                                           UpdatePolicy::kAbrUsc,
                                           Algo::kNone);
        const auto full = bench::run_stream(uk, batch, nb,
                                            UpdatePolicy::kAbrUscHau,
                                            Algo::kNone);
        t.row().cell(std::string("(b)")).cell(std::string("uk"))
            .cell(std::string("input-oblivious RO"))
            .cell(bench::speedup(base, ro))
            .cell(std::string("0.69x"));
        t.row().cell(std::string("(c)")).cell(std::string("uk"))
            .cell(std::string("input-aware SW (ABR)"))
            .cell(bench::speedup(base, abr))
            .cell(std::string("0.92x"));
        t.row().cell(std::string("(d)")).cell(std::string("uk"))
            .cell(std::string("input-aware SW + HW (ABR+HAU)"))
            .cell(bench::speedup(base, full))
            .cell(std::string("1.6x"));
    }
    t.print();
    return 0;
}
