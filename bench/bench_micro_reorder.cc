/**
 * @file
 * Host-side microbenchmark of the batch-reordering pipeline: the paper's
 * comparison-sort path vs the radix/counting path (identical output), plus
 * the USC per-run table build (reusable flat table vs std::unordered_map).
 *
 * Wall-clock only — simulated cycles are charged identically for both
 * reorder modes (DESIGN.md §5).  One JSON line per configuration goes to
 * stdout and to BENCH_reorder.json for machine consumption.
 */
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_support.h"
#include "common/flat_table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "gen/edge_stream.h"
#include "stream/reorder.h"

namespace {

using namespace igs;

std::vector<StreamEdge>
make_batch(std::size_t n)
{
    gen::StreamModel m;
    // Scale the vertex space with the batch so large batches exceed the
    // 16-bit digit range and exercise the multi-pass radix path.
    m.num_vertices = std::max<std::uint32_t>(
        300, static_cast<std::uint32_t>(n / 4));
    m.num_hubs = 8;
    m.hub_mass_dst = 0.2;
    m.weighted = true;
    m.seed = 2024;
    return gen::EdgeStreamGenerator(m).take(n);
}

/** Best-of-`reps` wall seconds of `fn()`. */
template <typename F>
double
time_best(int reps, F&& fn)
{
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        Timer t;
        fn();
        best = std::min(best, t.seconds());
    }
    return best;
}

void
emit(std::FILE* json, std::size_t batch_size, const char* mode,
     double seconds, std::size_t edges)
{
    char line[256];
    std::snprintf(line, sizeof line,
                  "{\"bench\": \"micro_reorder\", \"batch_size\": %zu, "
                  "\"mode\": \"%s\", \"seconds\": %.6e, "
                  "\"ns_per_edge\": %.2f}",
                  batch_size, mode, seconds,
                  seconds * 1e9 / static_cast<double>(edges));
    std::printf("%s\n", line);
    if (json != nullptr) {
        std::fprintf(json, "%s\n", line);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("micro_reorder", argc, argv);
    std::printf("== micro: batch reordering, comparison vs radix ==\n");
    std::printf("host wall-clock; both modes produce identical output\n\n");
    std::FILE* json = std::fopen("BENCH_reorder.json", "w");

    ThreadPool& pool = default_pool();
    stream::Reorderer comparison(stream::ReorderMode::kComparison);
    stream::Reorderer radix(stream::ReorderMode::kRadix);

    for (const std::size_t n :
         {std::size_t{100}, std::size_t{1000}, std::size_t{10000},
          std::size_t{100000}, std::size_t{500000}}) {
        const std::vector<StreamEdge> edges = make_batch(n);
        const int reps = n >= 100000 ? 5 : 9;

        // Warm both arenas (first call grows the scratch buffers).
        comparison.reorder(edges, pool);
        radix.reorder(edges, pool);

        const double t_cmp = time_best(
            reps, [&] { comparison.reorder(edges, pool); });
        emit(json, n, "comparison", t_cmp, n);

        const double t_rad =
            time_best(reps, [&] { radix.reorder(edges, pool); });
        emit(json, n, "radix", t_rad, n);

        // USC per-run table build over the by-source runs of this batch.
        const stream::ReorderedBatch& rb = radix.reorder(edges, pool);
        FlatWeightTable flat;
        const double t_flat = time_best(reps, [&] {
            for (const stream::VertexRun& run : rb.by_src.runs) {
                flat.reset(run.size());
                for (std::uint32_t i = run.begin; i < run.end; ++i) {
                    flat.add(rb.by_src.edges[i].dst,
                             rb.by_src.edges[i].weight);
                }
            }
        });
        emit(json, n, "usc_flat_table", t_flat, n);

        const double t_umap = time_best(reps, [&] {
            for (const stream::VertexRun& run : rb.by_src.runs) {
                std::unordered_map<VertexId, Weight> table;
                for (std::uint32_t i = run.begin; i < run.end; ++i) {
                    table[rb.by_src.edges[i].dst] +=
                        rb.by_src.edges[i].weight;
                }
            }
        });
        emit(json, n, "usc_unordered_map", t_umap, n);

        std::printf("# n=%zu: radix %.2fx vs comparison, flat table %.2fx "
                    "vs unordered_map\n\n",
                    n, t_cmp / t_rad, t_umap / t_flat);
    }

    if (json != nullptr) {
        std::fclose(json);
        std::printf("wrote BENCH_reorder.json\n");
    }
    return 0;
}
