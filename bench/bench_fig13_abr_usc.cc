/**
 * @file
 * Fig 13 reproduction (the paper's central software result): update and
 * overall speedups of always-RO, ABR, perfect ABR, and ABR+USC over the
 * non-reordered baseline, for all datasets and batch sizes, plus the
 * inset-table geomeans.
 *
 * Paper inset (geomeans): reorder-friendly update RO 1.92x / ABR 1.85x /
 * perfect 1.98x / ABR+USC 4.55x; reorder-adverse update RO 0.37x /
 * ABR 0.87x / perfect 1.02x / ABR+USC 0.87x; friendly overall 1.77/1.71/
 * 1.81/3.49; adverse overall 0.78/0.91/1.00/0.91.
 */
#include <algorithm>

#include "bench_support.h"

int
main(int argc, char** argv)
{
    igs::bench::JsonSink json_sink("fig13_abr_usc", argc, argv);
    using namespace igs;
    using bench::Algo;
    using core::UpdatePolicy;

    bench::banner("Fig 13: ABR and USC speedups over baseline",
                  "Fig 13 + inset table (n=10, lambda=256, TH=465)",
                  "perfect ABR = per-batch oracle picking the faster of "
                  "baseline/RO with zero instrumentation overhead");

    std::vector<std::size_t> batch_sizes = gen::paper_batch_sizes();
    if (argc > 1 && std::string(argv[1]) == "--quick") {
        batch_sizes = {1000, 100000};
    }

    struct Group {
        std::vector<double> ro, abr, perfect, usc;
        std::vector<double> ro_o, abr_o, perfect_o, usc_o;
    };
    Group friendly;
    Group adverse;

    TextTable t({"dataset", "batch", "RO upd", "ABR upd", "perfect upd",
                 "ABR+USC upd", "RO ovl", "ABR ovl", "ABR+USC ovl",
                 "class"});
    for (const auto& ds : gen::registry()) {
        for (std::size_t b : batch_sizes) {
            const std::size_t nb = bench::batches_for(b);
            const auto base = bench::run_stream(
                ds, b, nb, UpdatePolicy::kBaseline, Algo::kPageRank);
            const auto ro = bench::run_stream(
                ds, b, nb, UpdatePolicy::kAlwaysReorder, Algo::kPageRank);
            const auto abr = bench::run_stream(ds, b, nb,
                                               UpdatePolicy::kAbr,
                                               Algo::kPageRank);
            const auto usc = bench::run_stream(ds, b, nb,
                                               UpdatePolicy::kAbrUsc,
                                               Algo::kPageRank);
            // Perfect ABR: per-batch min of the two pure arms.
            Cycles perfect_cycles = 0;
            for (std::size_t k = 0; k < nb; ++k) {
                perfect_cycles += std::min(
                    base.batches[k].report.update.cycles,
                    ro.batches[k].report.update.cycles);
            }

            const double sp_ro = bench::speedup(base, ro);
            const double sp_abr = bench::speedup(base, abr);
            const double sp_perfect =
                static_cast<double>(base.update_cycles) /
                static_cast<double>(perfect_cycles);
            const double sp_usc = bench::speedup(base, usc);
            const double so_ro = bench::overall_speedup(base, ro);
            const double so_abr = bench::overall_speedup(base, abr);
            const double so_perfect =
                static_cast<double>(base.overall_cycles()) /
                static_cast<double>(perfect_cycles + base.compute_cycles);
            const double so_usc = bench::overall_speedup(base, usc);

            const bool is_friendly =
                ds.reorder_friendly && b >= ds.friendly_from_batch;
            Group& g = is_friendly ? friendly : adverse;
            g.ro.push_back(sp_ro);
            g.abr.push_back(sp_abr);
            g.perfect.push_back(sp_perfect);
            g.usc.push_back(sp_usc);
            g.ro_o.push_back(so_ro);
            g.abr_o.push_back(so_abr);
            g.perfect_o.push_back(so_perfect);
            g.usc_o.push_back(so_usc);

            t.row()
                .cell(ds.name)
                .cell(static_cast<std::uint64_t>(b))
                .cell(sp_ro)
                .cell(sp_abr)
                .cell(sp_perfect)
                .cell(sp_usc)
                .cell(so_ro)
                .cell(so_abr)
                .cell(so_usc)
                .cell(std::string(is_friendly ? "friendly" : "adverse"));
        }
    }
    t.print();

    std::printf("\nInset table (geomeans)          RO     ABR   perfect  "
                "ABR+USC   (paper)\n");
    auto line = [](const char* label, const std::vector<double>& a,
                   const std::vector<double>& b,
                   const std::vector<double>& c,
                   const std::vector<double>& d, const char* paper) {
        std::printf("%-28s %6.2f  %6.2f  %6.2f   %6.2f    %s\n", label,
                    geomean(a), geomean(b), geomean(c), geomean(d), paper);
    };
    line("reorder-friendly update", friendly.ro, friendly.abr,
         friendly.perfect, friendly.usc, "(1.92/1.85/1.98/4.55)");
    line("reorder-adverse update", adverse.ro, adverse.abr, adverse.perfect,
         adverse.usc, "(0.37/0.87/1.02/0.87)");
    line("reorder-friendly overall", friendly.ro_o, friendly.abr_o,
         friendly.perfect_o, friendly.usc_o, "(1.77/1.71/1.81/3.49)");
    line("reorder-adverse overall", adverse.ro_o, adverse.abr_o,
         adverse.perfect_o, adverse.usc_o, "(0.78/0.91/1.00/0.91)");
    return 0;
}
