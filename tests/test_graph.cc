/**
 * @file
 * Tests for the dynamic graph structures: AdjacencyList, DegreeAwareHash,
 * IndexedAdjacency, and the CSR snapshot — including randomized
 * cross-structure equivalence properties.
 */
#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/adjacency_list.h"
#include "graph/csr_snapshot.h"
#include "graph/degree_aware_hash.h"
#include "graph/indexed_adjacency.h"

namespace igs::graph {
namespace {

// ------------------------------------------------------- adjacency list
TEST(AdjacencyList, InsertCreatesBothViews)
{
    AdjacencyList g(4);
    const auto r = g.apply_insert(1, {2, 1.0f}, Direction::kOut);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.probes, 0u);
    g.apply_insert(2, {1, 1.0f}, Direction::kIn);
    EXPECT_EQ(g.degree(1, Direction::kOut), 1u);
    EXPECT_EQ(g.degree(2, Direction::kIn), 1u);
    EXPECT_EQ(g.num_edges(), 1u);
}

TEST(AdjacencyList, DuplicateInsertAccumulatesWeight)
{
    AdjacencyList g(4);
    g.apply_insert(0, {1, 2.0f}, Direction::kOut);
    const auto r = g.apply_insert(0, {1, 3.0f}, Direction::kOut);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.probes, 1u);
    EXPECT_EQ(g.degree(0, Direction::kOut), 1u);
    EXPECT_FLOAT_EQ(g.edges(0, Direction::kOut)[0].weight, 5.0f);
    EXPECT_EQ(g.num_edges(), 1u);
}

TEST(AdjacencyList, ProbesCountScanPosition)
{
    AdjacencyList g(8);
    for (VertexId t = 1; t <= 5; ++t) {
        g.apply_insert(0, {t, 1.0f}, Direction::kOut);
    }
    // Duplicate of the 3rd inserted edge: scan stops after 3 probes.
    const auto r = g.apply_insert(0, {3, 1.0f}, Direction::kOut);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.probes, 3u);
    EXPECT_EQ(r.len_before, 5u);
    // A miss probes the full array.
    const auto miss = g.apply_insert(0, {7, 1.0f}, Direction::kOut);
    EXPECT_FALSE(miss.found);
    EXPECT_EQ(miss.probes, 5u);
}

TEST(AdjacencyList, RemoveExistingAndMissing)
{
    AdjacencyList g(4);
    g.apply_insert(0, {1, 1.0f}, Direction::kOut);
    g.apply_insert(0, {2, 1.0f}, Direction::kOut);
    const auto hit = g.apply_remove(0, 1, Direction::kOut);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(g.degree(0, Direction::kOut), 1u);
    EXPECT_EQ(g.num_edges(), 1u);
    const auto miss = g.apply_remove(0, 9, Direction::kOut);
    EXPECT_FALSE(miss.found);
    EXPECT_EQ(g.num_edges(), 1u);
}

TEST(AdjacencyList, EnsureVerticesPreservesEdges)
{
    AdjacencyList g(2);
    g.apply_insert(0, {1, 1.0f}, Direction::kOut);
    g.exchange_latest_bid(1, 7);
    g.ensure_vertices(100);
    EXPECT_EQ(g.num_vertices(), 100u);
    EXPECT_EQ(g.degree(0, Direction::kOut), 1u);
    EXPECT_EQ(g.latest_bid(1), 7u);
}

TEST(AdjacencyList, LatestBidExchangeReturnsPrevious)
{
    AdjacencyList g(2);
    EXPECT_EQ(g.exchange_latest_bid(0, 5), 0u);
    EXPECT_EQ(g.exchange_latest_bid(0, 6), 5u);
    EXPECT_EQ(g.latest_bid(0), 6u);
}

TEST(AdjacencyList, SameTopologyIsOrderInsensitive)
{
    AdjacencyList a(3);
    AdjacencyList b(3);
    a.apply_insert(0, {1, 1.0f}, Direction::kOut);
    a.apply_insert(0, {2, 1.0f}, Direction::kOut);
    b.apply_insert(0, {2, 1.0f}, Direction::kOut);
    b.apply_insert(0, {1, 1.0f}, Direction::kOut);
    EXPECT_TRUE(a.same_topology(b));
    b.apply_insert(1, {2, 1.0f}, Direction::kOut);
    EXPECT_FALSE(a.same_topology(b));
}

// --------------------------------------------------- degree-aware hash
TEST(DegreeAwareHash, MigratesToHashAtThreshold)
{
    DegreeAwareHash g(2);
    for (VertexId t = 0; t < DahEdgeSet::kHashThreshold - 1; ++t) {
        g.apply_insert(0, {t + 100, 1.0f}, Direction::kOut);
    }
    EXPECT_FALSE(g.edge_set(0, Direction::kOut).hashed());
    g.apply_insert(0, {999, 1.0f}, Direction::kOut);
    EXPECT_TRUE(g.edge_set(0, Direction::kOut).hashed());
    EXPECT_EQ(g.degree(0, Direction::kOut), DahEdgeSet::kHashThreshold);
}

TEST(DegreeAwareHash, DuplicateAccumulatesAcrossMigration)
{
    DegreeAwareHash g(2);
    for (VertexId t = 0; t < 64; ++t) {
        g.apply_insert(0, {t, 1.0f}, Direction::kOut);
    }
    const auto r = g.apply_insert(0, {10, 2.5f}, Direction::kOut);
    EXPECT_TRUE(r.found);
    const auto sorted = g.sorted_edges(0, Direction::kOut);
    const auto it =
        std::find_if(sorted.begin(), sorted.end(),
                     [](const Neighbor& n) { return n.id == 10; });
    ASSERT_NE(it, sorted.end());
    EXPECT_FLOAT_EQ(it->weight, 3.5f);
}

/** Randomized insert/remove against a std::map reference. */
class DahRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DahRandomTest, MatchesReferenceModel)
{
    Rng rng(GetParam());
    DegreeAwareHash g(8);
    std::map<VertexId, float> reference;
    for (int op = 0; op < 4000; ++op) {
        const auto t = static_cast<VertexId>(rng.below(200));
        if (rng.chance(0.3) && !reference.empty()) {
            // Remove a random-ish key (may or may not exist).
            const auto victim = static_cast<VertexId>(rng.below(200));
            const auto r = g.apply_remove(0, victim, Direction::kOut);
            EXPECT_EQ(r.found, reference.erase(victim) > 0);
        } else {
            const float w = static_cast<float>(rng.uniform(0.5, 1.5));
            const auto r = g.apply_insert(0, {t, w}, Direction::kOut);
            EXPECT_EQ(r.found, reference.count(t) > 0);
            reference[t] += w;
        }
    }
    const auto sorted = g.sorted_edges(0, Direction::kOut);
    ASSERT_EQ(sorted.size(), reference.size());
    std::size_t i = 0;
    for (const auto& [id, w] : reference) {
        EXPECT_EQ(sorted[i].id, id);
        EXPECT_NEAR(sorted[i].weight, w, 1e-3);
        ++i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DahRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------------- indexed adjacency
TEST(IndexedAdjacency, ProbesMatchLinearScanSemantics)
{
    IndexedAdjacency g(8);
    AdjacencyList ref(8);
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
        const auto s = static_cast<VertexId>(rng.below(8));
        const auto t = static_cast<VertexId>(rng.below(8));
        const auto a = g.apply_insert(s, {t, 1.0f}, Direction::kOut);
        const auto b = ref.apply_insert(s, {t, 1.0f}, Direction::kOut);
        ASSERT_EQ(a.found, b.found);
        // On insert-only streams the modeled probe counts are identical
        // to the real linear scan's.
        ASSERT_EQ(a.probes, b.probes);
        ASSERT_EQ(a.len_before, b.len_before);
    }
    EXPECT_TRUE(g.same_topology(ref));
}

class IndexedEquivalenceTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IndexedEquivalenceTest, StateMatchesAdjacencyListWithDeletes)
{
    Rng rng(GetParam());
    IndexedAdjacency g(64);
    AdjacencyList ref(64);
    for (int i = 0; i < 5000; ++i) {
        const auto s = static_cast<VertexId>(rng.below(64));
        const auto t = static_cast<VertexId>(rng.below(64));
        for (auto dir : {Direction::kOut, Direction::kIn}) {
            if (rng.chance(0.25)) {
                const auto a = g.apply_remove(s, t, dir);
                const auto b = ref.apply_remove(s, t, dir);
                ASSERT_EQ(a.found, b.found);
            } else {
                const float w = static_cast<float>(rng.uniform(0.5, 1.5));
                const auto a = g.apply_insert(s, {t, w}, dir);
                const auto b = ref.apply_insert(s, {t, w}, dir);
                ASSERT_EQ(a.found, b.found);
            }
        }
    }
    EXPECT_TRUE(g.same_topology(ref));
    EXPECT_EQ(g.num_edges(), ref.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedEquivalenceTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(IndexedAdjacency, RemoveFixesMovedIndexEntry)
{
    IndexedAdjacency g(4);
    g.apply_insert(0, {1, 1.0f}, Direction::kOut);
    g.apply_insert(0, {2, 1.0f}, Direction::kOut);
    g.apply_insert(0, {3, 1.0f}, Direction::kOut);
    // Removing the first entry swaps 3 into its slot; 3 must stay findable.
    g.apply_remove(0, 1, Direction::kOut);
    const auto r = g.apply_insert(0, {3, 2.0f}, Direction::kOut);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(g.degree(0, Direction::kOut), 2u);
}

// ------------------------------------------------------------- snapshot
TEST(CsrSnapshot, BuildsSortedRows)
{
    AdjacencyList g(4);
    g.apply_insert(0, {3, 1.0f}, Direction::kOut);
    g.apply_insert(0, {1, 2.0f}, Direction::kOut);
    g.apply_insert(2, {0, 1.0f}, Direction::kOut);
    const auto csr = CsrSnapshot::build(g, Direction::kOut);
    EXPECT_EQ(csr.num_vertices(), 4u);
    EXPECT_EQ(csr.num_edges(), 3u);
    EXPECT_EQ(csr.degree(0), 2u);
    EXPECT_EQ(csr.degree(1), 0u);
    const auto row0 = csr.neighbors(0);
    ASSERT_EQ(row0.size(), 2u);
    EXPECT_EQ(row0[0].id, 1u);
    EXPECT_EQ(row0[1].id, 3u);
    EXPECT_FLOAT_EQ(row0[0].weight, 2.0f);
}

TEST(CsrSnapshot, EmptyGraph)
{
    AdjacencyList g(0);
    const auto csr = CsrSnapshot::build(g, Direction::kIn);
    EXPECT_EQ(csr.num_vertices(), 0u);
    EXPECT_EQ(csr.num_edges(), 0u);
}

} // namespace
} // namespace igs::graph

// Additional coverage appended after the first green run: cross-structure
// CSR building, growth invariants, and argument-validation death tests.
namespace igs::graph {
namespace {

TEST(CsrSnapshot, BuildsFromDegreeAwareHash)
{
    DegreeAwareHash g(5);
    for (VertexId t = 0; t < 40; ++t) {
        g.apply_insert(1, {(t * 7) % 200 + 10, 1.0f}, Direction::kOut);
    }
    const auto csr = CsrSnapshot::build(g, Direction::kOut);
    EXPECT_EQ(csr.num_vertices(), 5u);
    EXPECT_EQ(csr.degree(1), g.degree(1, Direction::kOut));
    // Rows are sorted.
    const auto row = csr.neighbors(1);
    for (std::size_t i = 1; i < row.size(); ++i) {
        EXPECT_LT(row[i - 1].id, row[i].id);
    }
}

TEST(IndexedAdjacency, EnsureVerticesPreservesBidsAndEdges)
{
    IndexedAdjacency g(4);
    g.apply_insert(0, {1, 1.0f}, Direction::kOut);
    g.exchange_latest_bid(2, 9);
    g.ensure_vertices(1000);
    EXPECT_EQ(g.num_vertices(), 1000u);
    EXPECT_EQ(g.degree(0, Direction::kOut), 1u);
    EXPECT_EQ(g.latest_bid(2), 9u);
    // The index still finds the pre-growth edge.
    const auto r = g.apply_insert(0, {1, 2.0f}, Direction::kOut);
    EXPECT_TRUE(r.found);
}

TEST(AdjacencyList, MoveTransfersState)
{
    AdjacencyList a(4);
    a.apply_insert(0, {1, 1.0f}, Direction::kOut);
    a.exchange_latest_bid(3, 5);
    AdjacencyList b(std::move(a));
    EXPECT_EQ(b.num_vertices(), 4u);
    EXPECT_EQ(b.num_edges(), 1u);
    EXPECT_EQ(b.latest_bid(3), 5u);
}

using GraphDeathTest = ::testing::Test;

TEST(GraphDeathTest, OutOfRangeVertexAbortsInDebug)
{
#ifndef NDEBUG
    AdjacencyList g(2);
    EXPECT_DEATH(g.apply_insert(7, {0, 1.0f}, Direction::kOut), "check");
#else
    GTEST_SKIP() << "IGS_DCHECK compiled out in NDEBUG";
#endif
}

} // namespace
} // namespace igs::graph
