/**
 * @file
 * Tests for the synthetic stream generators and the 14-dataset registry —
 * including the input-character properties the paper's techniques key on
 * (per-batch degree skew, burstiness, inter-batch locality).
 */
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/cad.h"
#include "common/thread_pool.h"
#include "gen/datasets.h"
#include "gen/edge_stream.h"
#include "gen/rmat.h"
#include "stream/batch.h"
#include "stream/reorder.h"

namespace igs::gen {
namespace {

StreamModel
small_model()
{
    StreamModel m;
    m.num_vertices = 1000;
    m.num_hubs = 16;
    m.seed = 99;
    return m;
}

TEST(EdgeStream, DeterministicForSameSeed)
{
    EdgeStreamGenerator a(small_model());
    EdgeStreamGenerator b(small_model());
    for (int i = 0; i < 2000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(EdgeStream, VerticesStayInRange)
{
    StreamModel m = small_model();
    m.hub_mass_dst = 0.3;
    m.hub_mass_src = 0.2;
    m.community_mass = 0.5;
    m.community_size = 100;
    m.burst_mass = 0.1;
    m.burst_period = 500;
    EdgeStreamGenerator g(m);
    for (int i = 0; i < 10000; ++i) {
        const StreamEdge e = g.next();
        ASSERT_LT(e.src, m.num_vertices);
        ASSERT_LT(e.dst, m.num_vertices);
        ASSERT_NE(e.src, e.dst) << "self loop";
    }
}

TEST(EdgeStream, UnweightedEdgesHaveUnitWeight)
{
    EdgeStreamGenerator g(small_model());
    for (int i = 0; i < 100; ++i) {
        EXPECT_FLOAT_EQ(g.next().weight, 1.0f);
    }
}

TEST(EdgeStream, WeightedEdgesInRange)
{
    StreamModel m = small_model();
    m.weighted = true;
    EdgeStreamGenerator g(m);
    for (int i = 0; i < 1000; ++i) {
        const float w = g.next().weight;
        ASSERT_GE(w, 0.5f);
        ASSERT_LT(w, 1.5f);
    }
}

TEST(EdgeStream, DeleteFractionProducesDeletesOfPriorEdges)
{
    StreamModel m = small_model();
    m.delete_fraction = 0.2;
    EdgeStreamGenerator g(m);
    std::set<std::pair<VertexId, VertexId>> inserted;
    int deletes = 0;
    for (int i = 0; i < 5000; ++i) {
        const StreamEdge e = g.next();
        if (e.is_delete) {
            ++deletes;
            EXPECT_TRUE(inserted.count({e.src, e.dst}))
                << "delete of never-inserted edge";
        } else {
            inserted.insert({e.src, e.dst});
        }
    }
    EXPECT_GT(deletes, 500);
    EXPECT_LT(deletes, 1500);
}

TEST(EdgeStream, HubMassConcentratesDestinations)
{
    StreamModel m = small_model();
    m.hub_mass_dst = 0.5;
    m.zipf_s = 1.2;
    EdgeStreamGenerator g(m);
    std::unordered_map<VertexId, int> in_deg;
    for (int i = 0; i < 20000; ++i) {
        ++in_deg[g.next().dst];
    }
    int max_deg = 0;
    for (const auto& [v, d] : in_deg) {
        max_deg = std::max(max_deg, d);
    }
    // Top hub should hold a large share; uniform would give ~20.
    EXPECT_GT(max_deg, 1000);
}

TEST(EdgeStream, BurstTopDegreeScalesWithWindowNotBatch)
{
    StreamModel m = small_model();
    m.num_vertices = 100000;
    m.burst_mass = 0.05;
    m.burst_period = 20000;
    auto max_in_degree = [&](std::size_t batch) {
        EdgeStreamGenerator g(m);
        const auto edges = g.take(batch);
        std::unordered_map<VertexId, int> deg;
        for (const auto& e : edges) {
            ++deg[e.dst];
        }
        int mx = 0;
        for (const auto& [v, d] : deg) {
            mx = std::max(mx, d);
        }
        return mx;
    };
    const int at_1k = max_in_degree(1000);
    const int at_10k = max_in_degree(10000);
    const int at_40k = max_in_degree(40000);
    // Grows with batch size while the batch fits one burst window...
    EXPECT_GT(at_10k, 4 * at_1k);
    // ...but saturates once the batch spans whole windows.
    EXPECT_LT(at_40k, 3 * at_10k);
}

TEST(EdgeStream, CommunityOverlapGrowsWithBatchSize)
{
    StreamModel m = small_model();
    m.num_vertices = 200000;
    m.community_mass = 0.85;
    m.community_size = 20000;
    auto overlap = [&](std::size_t batch) {
        EdgeStreamGenerator g(m);
        const auto b1 = g.take(batch);
        const auto b2 = g.take(batch);
        std::unordered_set<VertexId> first;
        for (const auto& e : b1) {
            first.insert(e.src);
        }
        std::unordered_set<VertexId> seen;
        std::size_t hits = 0;
        for (const auto& e : b2) {
            if (seen.insert(e.src).second && first.count(e.src)) {
                ++hits;
            }
        }
        return static_cast<double>(hits) / static_cast<double>(seen.size());
    };
    const double small = overlap(1000);
    const double large = overlap(60000);
    EXPECT_LT(small, 0.25);
    EXPECT_GT(large, 0.5);
}

// ------------------------------------------------------------- registry
TEST(Registry, HasAllFourteenPaperDatasets)
{
    const auto& r = registry();
    ASSERT_EQ(r.size(), 14u);
    const std::set<std::string> expected{
        "lj",   "patents",    "topcats", "talk",  "berkstan",
        "fb",   "flickr",     "yt",      "amazon", "stack",
        "superuser", "wiki",  "friendster", "uk"};
    std::set<std::string> actual;
    for (const auto& d : r) {
        actual.insert(d.name);
    }
    EXPECT_EQ(actual, expected);
}

TEST(Registry, PaperSizesMatchTable2)
{
    EXPECT_EQ(find_dataset("wiki").paper_vertices, 1140149u);
    EXPECT_EQ(find_dataset("wiki").paper_edges, 7833140u);
    EXPECT_EQ(find_dataset("uk").paper_edges, 5507679822ull);
    EXPECT_EQ(find_dataset("friendster").paper_vertices, 65608366u);
    EXPECT_EQ(find_dataset("fb").paper_vertices, 46952u);
}

TEST(Registry, TimestampedFlagsMatchTable2)
{
    for (const char* name : {"fb", "flickr", "yt", "amazon", "stack",
                             "superuser", "wiki"}) {
        EXPECT_TRUE(find_dataset(name).timestamped) << name;
    }
    for (const char* name : {"talk", "berkstan", "patents", "topcats", "lj",
                             "friendster", "uk"}) {
        EXPECT_FALSE(find_dataset(name).timestamped) << name;
    }
}

TEST(Registry, GeneratorsAreDeterministicPerDataset)
{
    for (const auto& d : registry()) {
        auto a = d.make_generator();
        auto b = d.make_generator();
        for (int i = 0; i < 100; ++i) {
            ASSERT_EQ(a.next(), b.next()) << d.name;
        }
    }
}

TEST(Registry, DefaultBatchCountBounds)
{
    const auto& ds = find_dataset("lj");
    EXPECT_LE(default_batch_count(ds, 100), 48u);
    EXPECT_GE(default_batch_count(ds, 500000), 4u);
    EXPECT_EQ(default_batch_count(ds, 100000, 3), 3u);
}

/**
 * The classification property behind the whole paper (Fig 3 / Fig 13):
 * at batch size 100K, CAD_256 of the reordering-friendly datasets must
 * exceed the paper's threshold (465) and the adverse datasets must fall
 * below it.
 */
TEST(Registry, CadClassifiesFriendlinessAt100K)
{
    for (const auto& d : registry()) {
        auto g = d.make_generator();
        stream::EdgeBatch batch;
        batch.set_edges(g.take(100000));
        const auto rb = stream::reorder_batch(batch.edges(), default_pool());
        const auto cad = core::cad_from_reordered(rb, 256);
        if (d.reorder_friendly) {
            EXPECT_GE(cad.cad(), 465.0) << d.name;
        } else {
            EXPECT_LT(cad.cad(), 465.0) << d.name;
        }
    }
}

/** Fig 3's right axis: friendly datasets have much higher batch max
 *  degree than adverse ones at 100K. */
TEST(Registry, FriendlyDatasetsHaveHighMaxDegreeAt100K)
{
    std::uint32_t min_friendly = ~0u;
    std::uint32_t max_adverse = 0;
    for (const auto& d : registry()) {
        auto g = d.make_generator();
        const auto edges = g.take(100000);
        const auto stats = stream::compute_batch_degree_stats(edges);
        const auto mx = std::max(stats.max_in_degree, stats.max_out_degree);
        if (d.reorder_friendly) {
            min_friendly = std::min(min_friendly, mx);
        } else {
            max_adverse = std::max(max_adverse, mx);
        }
    }
    EXPECT_GT(min_friendly, 4 * max_adverse);
}

// ----------------------------------------------------------------- rmat
TEST(Rmat, GeneratesWithinRangeAndSkewed)
{
    RmatParams p;
    p.scale = 10;
    RmatGenerator g(p);
    std::unordered_map<VertexId, int> deg;
    for (int i = 0; i < 20000; ++i) {
        const StreamEdge e = g.next();
        ASSERT_LT(e.src, g.num_vertices());
        ASSERT_LT(e.dst, g.num_vertices());
        ++deg[e.dst];
    }
    int mx = 0;
    for (const auto& [v, d] : deg) {
        mx = std::max(mx, d);
    }
    // R-MAT with default params is strongly skewed vs uniform (~20).
    EXPECT_GT(mx, 200);
}

TEST(Rmat, TakeReturnsRequestedCount)
{
    RmatGenerator g(RmatParams{});
    EXPECT_EQ(g.take(123).size(), 123u);
}

} // namespace
} // namespace igs::gen

// Additional coverage: invalid-argument handling and stream invariants.
namespace igs::gen {
namespace {

TEST(GenDeathTest, UnknownDatasetAborts)
{
    EXPECT_DEATH(find_dataset("not-a-dataset"), "unknown dataset");
}

TEST(GenDeathTest, DegenerateModelAborts)
{
    StreamModel m;
    m.num_vertices = 1; // need at least 2 to avoid self loops
    EXPECT_DEATH(EdgeStreamGenerator{m}, "check");
}

TEST(EdgeStream, PositionAdvancesPerOperation)
{
    EdgeStreamGenerator g(StreamModel{});
    EXPECT_EQ(g.position(), 0u);
    g.take(17);
    EXPECT_EQ(g.position(), 17u);
}

TEST(Registry, SeedOffsetProducesIndependentStreams)
{
    const auto& ds = find_dataset("lj");
    auto a = ds.make_generator(0);
    auto b = ds.make_generator(1);
    int same = 0;
    for (int i = 0; i < 200; ++i) {
        same += a.next() == b.next() ? 1 : 0;
    }
    EXPECT_LT(same, 5);
}

} // namespace
} // namespace igs::gen
