/**
 * @file
 * Tests for the analytics layer: static/incremental PageRank and SSSP,
 * BFS, connected components, and the compute meter.
 */
#include <cmath>
#include <queue>

#include <gtest/gtest.h>

#include "analytics/compute_meter.h"
#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "analytics/traversal.h"
#include "common/random.h"
#include "gen/edge_stream.h"
#include "graph/adjacency_list.h"
#include "stream/batch.h"
#include "stream/update_context.h"
#include "stream/updaters.h"

namespace igs::analytics {
namespace {

/** Build a small graph from explicit edges. */
graph::AdjacencyList
build(std::size_t n, const std::vector<std::pair<VertexId, VertexId>>& edges,
      const std::vector<Weight>& weights = {})
{
    graph::AdjacencyList g(n);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const Weight w = weights.empty() ? 1.0f : weights[i];
        g.apply_insert(edges[i].first, {edges[i].second, w}, Direction::kOut);
        g.apply_insert(edges[i].second, {edges[i].first, w}, Direction::kIn);
    }
    return g;
}

// ------------------------------------------------------------- pagerank
TEST(StaticPageRank, SumsToOne)
{
    const auto g = build(5, {{0, 1}, {1, 2}, {2, 0}, {3, 2}, {4, 0}});
    const auto ranks = static_pagerank(g);
    double sum = 0.0;
    for (double r : ranks) {
        sum += r;
    }
    // Dangling mass leaks slightly in the GAP formulation; generous bound.
    EXPECT_NEAR(sum, 1.0, 0.25);
}

TEST(StaticPageRank, SymmetricCycleIsUniform)
{
    const auto g = build(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    const auto ranks = static_pagerank(g);
    for (double r : ranks) {
        EXPECT_NEAR(r, 0.25, 1e-3);
    }
}

TEST(StaticPageRank, HubReceivesHigherRank)
{
    // Everyone points at vertex 0.
    const auto g = build(5, {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
    const auto ranks = static_pagerank(g);
    for (VertexId v = 1; v < 5; ++v) {
        EXPECT_GT(ranks[0], ranks[v]);
    }
}

TEST(StaticPageRank, EmptyGraph)
{
    graph::AdjacencyList g(0);
    EXPECT_TRUE(static_pagerank(g).empty());
}

TEST(IncrementalPageRank, ConvergesTowardStaticResult)
{
    graph::AdjacencyList g(50);
    IncrementalPageRank inc{PageRankParams{0.85, 1e-7, 200}};
    stream::RealContext ctx;
    Rng rng(9);
    for (std::uint64_t k = 1; k <= 5; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        std::vector<VertexId> affected;
        for (int i = 0; i < 40; ++i) {
            const auto s = static_cast<VertexId>(rng.below(50));
            auto d = static_cast<VertexId>(rng.below(50));
            if (d == s) {
                d = (d + 1) % 50;
            }
            batch.push_edge({s, d, 1.0f, false});
            affected.push_back(s);
            affected.push_back(d);
        }
        stream::apply_batch_baseline(g, batch, ctx);
        inc.on_batch(g, affected);
    }
    const auto exact = static_pagerank(g, {0.85, 1e-10, 500});
    // The incremental model is an approximation; errors stay moderate.
    double max_err = 0.0;
    for (std::size_t v = 0; v < 50; ++v) {
        max_err = std::max(max_err, std::abs(exact[v] - inc.ranks()[v]));
    }
    EXPECT_LT(max_err, 0.02);
}

TEST(IncrementalPageRank, CountsWork)
{
    graph::AdjacencyList g(10);
    g.apply_insert(0, {1, 1.0f}, Direction::kOut);
    g.apply_insert(1, {0, 1.0f}, Direction::kIn);
    IncrementalPageRank inc;
    const auto stats = inc.on_batch(g, {0, 1});
    EXPECT_EQ(stats.rounds, 1u);
    EXPECT_GT(stats.activations, 0u);
}

// ----------------------------------------------------------------- sssp
TEST(StaticSssp, HopDistancesOnChain)
{
    const auto g = build(4, {{0, 1}, {1, 2}, {2, 3}});
    const auto d = static_sssp(g, 0);
    EXPECT_FLOAT_EQ(d[0], 0.0f);
    EXPECT_FLOAT_EQ(d[1], 1.0f);
    EXPECT_FLOAT_EQ(d[2], 2.0f);
    EXPECT_FLOAT_EQ(d[3], 3.0f);
}

TEST(StaticSssp, PrefersLighterPath)
{
    // 0 -> 1 -> 2 with weights 1+1 beats direct 0 -> 2 with weight 5.
    const auto g =
        build(3, {{0, 1}, {1, 2}, {0, 2}}, {1.0f, 1.0f, 5.0f});
    const auto d = static_sssp(g, 0);
    EXPECT_FLOAT_EQ(d[2], 2.0f);
}

TEST(StaticSssp, UnreachableIsInfinite)
{
    const auto g = build(3, {{0, 1}});
    const auto d = static_sssp(g, 0);
    EXPECT_TRUE(std::isinf(d[2]));
}

/**
 * The strong property: incremental SSSP equals a from-scratch recompute
 * after every batch, including deletions (KickStarter-style trimming).
 */
class IncSsspTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncSsspTest, MatchesStaticAfterEveryBatch)
{
    gen::StreamModel m;
    m.num_vertices = 120;
    m.num_hubs = 6;
    m.hub_mass_dst = 0.2;
    m.delete_fraction = 0.25;
    m.weighted = true;
    m.seed = GetParam();
    gen::EdgeStreamGenerator genr(m);

    graph::AdjacencyList g(120);
    IncrementalSssp inc(0);
    stream::RealContext ctx;

    for (std::uint64_t k = 1; k <= 8; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(genr.take(150));
        std::vector<StreamEdge> ins;
        std::vector<StreamEdge> del;
        for (const auto& e : batch.edges()) {
            (e.is_delete ? del : ins).push_back(e);
        }
        stream::apply_batch_baseline(g, batch, ctx);
        inc.on_batch(g, ins, del);

        const auto expected = static_sssp(g, 0);
        for (std::size_t v = 0; v < 120; ++v) {
            if (std::isinf(expected[v])) {
                ASSERT_TRUE(std::isinf(inc.distances()[v]))
                    << "batch " << k << " vertex " << v;
            } else {
                ASSERT_NEAR(inc.distances()[v], expected[v], 1e-4)
                    << "batch " << k << " vertex " << v;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncSsspTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ------------------------------------------------------------ traversal
TEST(Bfs, MatchesHandComputedDistances)
{
    const auto g = build(6, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
    const auto d = bfs_distances(g, 0);
    EXPECT_EQ(d[0], 0u);
    EXPECT_EQ(d[1], 1u);
    EXPECT_EQ(d[2], 1u);
    EXPECT_EQ(d[3], 2u);
    EXPECT_EQ(d[4], 3u);
    EXPECT_EQ(d[5], ~0u);
}

TEST(ConnectedComponents, LabelsComponentsByMinVertex)
{
    const auto g = build(6, {{0, 1}, {1, 2}, {4, 5}});
    const auto labels = connected_components(g);
    EXPECT_EQ(labels[0], 0u);
    EXPECT_EQ(labels[1], 0u);
    EXPECT_EQ(labels[2], 0u);
    EXPECT_EQ(labels[3], 3u);
    EXPECT_EQ(labels[4], 4u);
    EXPECT_EQ(labels[5], 4u);
}

TEST(ConnectedComponents, DirectionIgnored)
{
    // Directed edges both ways still one component.
    const auto g = build(3, {{2, 0}, {1, 2}});
    const auto labels = connected_components(g);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[1], labels[2]);
}

// ---------------------------------------------------------------- meter
TEST(ComputeMeter, CyclesFollowCounts)
{
    ComputeCostParams p;
    ComputeStats a;
    a.activations = 100;
    a.traversals = 1000;
    a.rounds = 1;
    ComputeStats b = a;
    b.rounds = 2;
    EXPECT_GT(b.cycles(p), a.cycles(p));
    EXPECT_EQ(b.cycles(p) - a.cycles(p), static_cast<Cycles>(p.per_round));
}

TEST(ComputeMeter, Accumulates)
{
    ComputeMeter m;
    m.activate(3);
    m.traverse(7);
    m.round();
    m.iteration();
    EXPECT_EQ(m.stats().activations, 3u);
    EXPECT_EQ(m.stats().traversals, 7u);
    EXPECT_EQ(m.stats().rounds, 1u);
    m.reset();
    EXPECT_EQ(m.stats().activations, 0u);
}

} // namespace
} // namespace igs::analytics
