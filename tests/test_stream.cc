/**
 * @file
 * Tests for the streaming layer: batch statistics, reordering, and the
 * three software update kernels — in particular the cross-kernel
 * equivalence property (all paths produce the same final graph).
 */
#include <algorithm>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "gen/edge_stream.h"
#include "graph/adjacency_list.h"
#include "graph/degree_aware_hash.h"
#include "stream/batch.h"
#include "stream/reorder.h"
#include "stream/update_context.h"
#include "stream/updaters.h"

namespace igs::stream {
namespace {

std::vector<StreamEdge>
random_edges(std::size_t n, std::uint64_t seed, double delete_fraction = 0.0,
             std::uint32_t vertices = 300)
{
    gen::StreamModel m;
    m.num_vertices = vertices;
    m.num_hubs = 8;
    m.hub_mass_dst = 0.2;
    m.delete_fraction = delete_fraction;
    m.weighted = true;
    m.seed = seed;
    return gen::EdgeStreamGenerator(m).take(n);
}

// ----------------------------------------------------------- batch stats
TEST(BatchStats, CountsDegreesAndUniques)
{
    std::vector<StreamEdge> edges{
        {0, 1, 1.0f, false}, {0, 2, 1.0f, false}, {3, 1, 1.0f, false}};
    const auto s = compute_batch_degree_stats(edges);
    EXPECT_EQ(s.max_out_degree, 2u);
    EXPECT_EQ(s.max_in_degree, 2u);
    EXPECT_EQ(s.unique_sources, 2u);
    EXPECT_EQ(s.unique_destinations, 2u);
    EXPECT_EQ(s.out_degree_histogram.at(2), 1u);
    EXPECT_EQ(s.out_degree_histogram.at(1), 1u);
}

// -------------------------------------------------------------- reorder
TEST(Reorder, SortsBySourceAndDestinationStably)
{
    std::vector<StreamEdge> edges{{2, 5, 1.0f, false},
                                  {1, 6, 2.0f, false},
                                  {2, 4, 3.0f, false},
                                  {1, 6, 4.0f, false}};
    const auto rb = reorder_batch(edges, default_pool());
    ASSERT_EQ(rb.by_src.edges.size(), 4u);
    // Sorted by src; ties keep arrival order (stability).
    EXPECT_EQ(rb.by_src.edges[0].src, 1u);
    EXPECT_FLOAT_EQ(rb.by_src.edges[0].weight, 2.0f);
    EXPECT_FLOAT_EQ(rb.by_src.edges[1].weight, 4.0f);
    EXPECT_EQ(rb.by_src.edges[2].src, 2u);
    EXPECT_FLOAT_EQ(rb.by_src.edges[2].weight, 1.0f);
    // Runs: vertex 1 spans [0,2), vertex 2 spans [2,4).
    ASSERT_EQ(rb.by_src.runs.size(), 2u);
    EXPECT_EQ(rb.by_src.runs[0].vertex, 1u);
    EXPECT_EQ(rb.by_src.runs[0].size(), 2u);
    EXPECT_EQ(rb.by_src.runs[1].vertex, 2u);
    // Destination view.
    ASSERT_EQ(rb.by_dst.runs.size(), 3u);
    EXPECT_EQ(rb.by_dst.runs[0].vertex, 4u);
}

TEST(Reorder, RunsPartitionTheBatch)
{
    const auto edges = random_edges(5000, 21);
    const auto rb = reorder_batch(edges, default_pool());
    for (const auto& dir_view : {rb.by_src, rb.by_dst}) {
        std::size_t covered = 0;
        std::uint32_t prev_end = 0;
        for (const auto& run : dir_view.runs) {
            EXPECT_EQ(run.begin, prev_end);
            EXPECT_GT(run.end, run.begin);
            covered += run.size();
            prev_end = run.end;
        }
        EXPECT_EQ(covered, edges.size());
    }
}

TEST(Reorder, EmptyBatch)
{
    const auto rb = reorder_batch({}, default_pool());
    EXPECT_TRUE(rb.by_src.runs.empty());
    EXPECT_TRUE(rb.by_dst.runs.empty());
}

// ------------------------------------------------------------ oca probe
TEST(OcaProbe, RatioCountsOnlyAdjacentBatchOverlap)
{
    OcaProbe p;
    p.note(4, 5); // previous batch -> overlap
    p.note(2, 5); // older batch -> no overlap
    p.note(0, 5); // never seen -> no overlap
    EXPECT_EQ(p.unique_nodes(), 3u);
    EXPECT_EQ(p.overlapping_nodes(), 1u);
    EXPECT_NEAR(p.ratio(), 1.0 / 3.0, 1e-12);
}

TEST(TouchSource, CountsEachSourceOncePerBatch)
{
    graph::AdjacencyList g(4);
    OcaProbe p;
    touch_source(g, 1, 7, &p);
    touch_source(g, 1, 7, &p); // same batch: no double count
    touch_source(g, 2, 7, &p);
    EXPECT_EQ(p.unique_nodes(), 2u);
    touch_source(g, 1, 8, &p); // next batch: counts and overlaps
    EXPECT_EQ(p.unique_nodes(), 3u);
    EXPECT_EQ(p.overlapping_nodes(), 1u);
}

// ----------------------------------------------- kernel building blocks
TEST(Updaters, BaselineAppliesInsertsAndDeletes)
{
    graph::AdjacencyList g(10);
    RealContext ctx;
    EdgeBatch b;
    b.id = 1;
    b.set_edges({{0, 1, 2.0f, false},
               {0, 2, 1.0f, false},
               {0, 1, 3.0f, false},  // duplicate: accumulate
               {0, 2, 0.0f, true}});  // delete in same batch
    apply_batch_baseline(g, b, ctx);
    EXPECT_EQ(g.degree(0, Direction::kOut), 1u);
    EXPECT_FLOAT_EQ(g.edges(0, Direction::kOut)[0].weight, 5.0f);
    EXPECT_EQ(g.degree(1, Direction::kIn), 1u);
    EXPECT_EQ(g.degree(2, Direction::kIn), 0u);
    EXPECT_EQ(g.latest_bid(0), 1u);
}

/**
 * The central correctness property: every software update path produces
 * the same final graph, with and without deletions, across seeds and
 * batch sizes, under real multithreaded execution.
 */
struct EquivalenceCase {
    std::uint64_t seed;
    std::size_t batch_size;
    double delete_fraction;
};

class KernelEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(KernelEquivalenceTest, AllPathsAgree)
{
    const auto [seed, batch_size, delete_fraction] = GetParam();
    constexpr std::size_t kBatches = 5;
    ThreadPool pool(4);
    RealContext ctx(pool);

    graph::AdjacencyList baseline(300);
    graph::AdjacencyList reordered(300);
    graph::AdjacencyList usc(300);

    gen::StreamModel m;
    m.num_vertices = 300;
    m.num_hubs = 8;
    m.hub_mass_dst = 0.25;
    m.delete_fraction = delete_fraction;
    m.weighted = true;
    m.seed = seed;

    for (std::size_t k = 0; k < kBatches; ++k) {
        // All three paths see identical batches.
        gen::EdgeStreamGenerator g(m);
        std::vector<StreamEdge> all = g.take(batch_size * kBatches);
        EdgeBatch batch;
        batch.id = k + 1;
        batch.set_edges(std::vector<StreamEdge>(
            all.begin() + static_cast<long>(k * batch_size),
            all.begin() + static_cast<long>((k + 1) * batch_size)));

        apply_batch_baseline(baseline, batch, ctx);
        const auto rb = reorder_batch(batch.edges(), pool);
        apply_batch_reordered(reordered, batch, rb, ctx);
        apply_batch_usc(usc, batch, rb, ctx);
    }

    EXPECT_TRUE(baseline.same_topology(reordered));
    EXPECT_TRUE(baseline.same_topology(usc));
    EXPECT_EQ(baseline.num_edges(), reordered.num_edges());
    EXPECT_EQ(baseline.num_edges(), usc.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KernelEquivalenceTest,
    ::testing::Values(EquivalenceCase{1, 100, 0.0},
                      EquivalenceCase{2, 100, 0.2},
                      EquivalenceCase{3, 1000, 0.0},
                      EquivalenceCase{4, 1000, 0.1},
                      EquivalenceCase{5, 3000, 0.3},
                      EquivalenceCase{6, 500, 0.05},
                      EquivalenceCase{7, 2000, 0.0},
                      EquivalenceCase{8, 2500, 0.25}));

TEST(Updaters, DahMatchesAdjacencyListUnderBaseline)
{
    ThreadPool pool(4);
    RealContext ctx(pool);
    graph::AdjacencyList al(300);
    graph::DegreeAwareHash dah(300);
    for (int k = 0; k < 4; ++k) {
        EdgeBatch b;
        b.id = static_cast<std::uint64_t>(k + 1);
        b.set_edges(random_edges(2000, 100 + k, 0.15));
        apply_batch_baseline(al, b, ctx);
        apply_batch_baseline(dah, b, ctx);
    }
    ASSERT_EQ(al.num_edges(), dah.num_edges());
    for (VertexId v = 0; v < 300; ++v) {
        for (auto dir : {Direction::kOut, Direction::kIn}) {
            const auto a = al.sorted_edges(v, dir);
            const auto d = dah.sorted_edges(v, dir);
            ASSERT_EQ(a.size(), d.size()) << "vertex " << v;
            for (std::size_t i = 0; i < a.size(); ++i) {
                ASSERT_EQ(a[i].id, d[i].id);
                ASSERT_NEAR(a[i].weight, d[i].weight, 1e-3);
            }
        }
    }
}

TEST(Updaters, OcaProbeSeesOverlapThroughBaselineUpdates)
{
    graph::AdjacencyList g(100);
    RealContext ctx;
    EdgeBatch b1;
    b1.id = 1;
    for (VertexId v = 0; v < 50; ++v) {
        b1.push_edge({v, static_cast<VertexId>(v + 50), 1.0f, false});
    }
    apply_batch_baseline(g, b1, ctx);

    EdgeBatch b2;
    b2.id = 2;
    for (VertexId v = 0; v < 50; ++v) {
        // Half the sources repeat from batch 1.
        const VertexId src = v < 25 ? v : static_cast<VertexId>(v + 25);
        b2.push_edge({src, static_cast<VertexId>(99 - src % 50),
                            1.0f, false});
    }
    OcaProbe probe;
    apply_batch_baseline(g, b2, ctx, &probe);
    EXPECT_NEAR(probe.ratio(), 0.5, 0.05);
}

} // namespace
} // namespace igs::stream
