#include "core/engine.h"
#include "graph/mini_store.h"

namespace app {

int attach_compute(MiniEngine<MiniStore>& engine, int seed)
{
    engine.set_compute([seed](const SnapshotView& snap) {
        return snap.degree(seed);
    });
    return seed;
}

} // namespace app
