#pragma once

#include <atomic>
#include <thread>

#include "graph/mini_store.h"

namespace app {

struct SnapshotView {
    int degree(int v) const { return v; }
};

template <class Graph>
class MiniEngine {
  public:
    template <class Fn>
    void set_compute(Fn fn) { (void)fn; }

    void publish_epoch() {
        done_.store(false, std::memory_order_release);
        worker_ = std::thread([this]() {
            SnapshotView snap;
            sink(snap.degree(1));
            done_.store(true, std::memory_order_release);
        });
    }

    void join_round() {
        while (!done_.load(std::memory_order_acquire)) {
        }
        worker_.join();
    }

  private:
    static void sink(int) {}

    Graph graph_;
    std::thread worker_;
    std::atomic<bool> done_{false};
};

template class MiniEngine<MiniStore>;

} // namespace app
