#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace app {

std::uint32_t clamp_offset(std::size_t n)
{
    IGS_CHECK(n <= std::numeric_limits<std::uint32_t>::max());
    return static_cast<std::uint32_t>(n);
}

} // namespace app
