#pragma once

namespace app {

struct MiniStore {
    void apply_insert(int e) { n_ += e; }
    int edges(int v) const { return n_ + v; }
    int n_ = 0;
};

} // namespace app
