#include "graph/mini_store.h"

namespace app {

struct Hub {
    template <class Fn>
    void set_compute(Fn fn) { (void)fn; }
};

// Looks innocent from the lambda: the mutation happens one call deep,
// where only the interprocedural walk can see it.
void bump_counts(MiniStore& store)
{
    store.apply_insert(7);
}

void wire(Hub& hub, MiniStore& store)
{
    hub.set_compute([&store]() { bump_counts(store); });
}

} // namespace app
