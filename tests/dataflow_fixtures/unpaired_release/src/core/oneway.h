#pragma once

#include <atomic>

namespace app {

class OneWay {
  public:
    void signal() {
        flag_.store(true, std::memory_order_release);
    }

    bool peek() const {
        return flag_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag_{false};
};

} // namespace app
