#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace app {

// Guarded: the IGS_CHECK bound proves the cast.
std::uint32_t checked(std::size_t guarded_total)
{
    IGS_CHECK(guarded_total <=
              std::numeric_limits<std::uint32_t>::max());
    return static_cast<std::uint32_t>(guarded_total);
}

// Unguarded: same shape, no dominating bound.
std::uint32_t unchecked(std::size_t raw)
{
    return static_cast<std::uint32_t>(raw);
}

} // namespace app
