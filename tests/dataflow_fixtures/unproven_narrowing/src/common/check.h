#pragma once

#define IGS_CHECK(cond) \
    do { \
        if (!(cond)) { \
            __builtin_trap(); \
        } \
    } while (0)
