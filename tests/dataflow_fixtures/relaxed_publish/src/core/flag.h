#pragma once

#include <atomic>

namespace app {

class EpochFlag {
  public:
    void publish() {
        ready_.store(true, std::memory_order_release);
    }

    bool poll() const {
        return ready_.load(std::memory_order_acquire);
    }

    void reset() {
        ready_.store(false, std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> ready_{false};
};

} // namespace app
