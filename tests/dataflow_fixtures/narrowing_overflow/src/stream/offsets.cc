#include <cstddef>
#include <cstdint>

namespace app {

std::uint32_t bad_offset()
{
    std::size_t big = 5000000000;
    return static_cast<std::uint32_t>(big);
}

} // namespace app
