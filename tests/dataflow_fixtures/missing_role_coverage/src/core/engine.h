#pragma once

#include "graph/mini_store.h"
#include "graph/other_store.h"

namespace app {

template <class Graph>
class MiniEngine {
  public:
    int tick() { return graph_.edges(0); }

  private:
    Graph graph_;
};

// Only MiniStore is bound; OtherStore stays outside the role proof.
template class MiniEngine<MiniStore>;

} // namespace app
