#pragma once

namespace app {

struct MiniStore {
    int edges(int v) const { return v; }
};

} // namespace app
