#pragma once

namespace app {

struct OtherStore {
    int edges(int v) const { return v + 1; }
};

} // namespace app
