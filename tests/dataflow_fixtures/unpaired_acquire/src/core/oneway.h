#pragma once

#include <atomic>

namespace app {
class Gate {
  public:
    bool ready() const {
        return flag_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<bool> flag_{false};
};
} // namespace app
