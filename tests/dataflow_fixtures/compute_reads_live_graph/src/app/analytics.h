#pragma once

#include <thread>

#include "graph/mini_store.h"

namespace app {

template <class Graph>
class MiniEngine {
  public:
    void publish_epoch() {
        worker_ = std::thread([this]() { run_compute(); });
    }

  private:
    // The compute thread must read the snapshot, not the live store;
    // the backend binding comes from the explicit instantiation below.
    int run_compute() { return graph_.edges(0); }

    Graph graph_;
    std::thread worker_;
};

template class MiniEngine<MiniStore>;

} // namespace app
