/**
 * @file
 * Integration tests: the full input-aware pipeline (engine + incremental
 * analytics + OCA aggregation) on registry datasets, cross-policy state
 * equivalence, and end-to-end determinism.
 */
#include <gtest/gtest.h>

#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "core/engine.h"
#include "sim/sim_engine.h"
#include "gen/datasets.h"

namespace igs {
namespace {

using core::EngineConfig;
using sim::SimEngine;
using core::UpdatePolicy;

/** Drive `batches` batches of `batch_size` from a registry dataset
 *  through an engine with incremental PR, returning total compute work
 *  and the final ranks. */
struct PipelineResult {
    analytics::ComputeStats compute;
    std::vector<double> ranks;
    Cycles update_cycles = 0;
    int compute_rounds_launched = 0;
};

PipelineResult
run_pipeline(const std::string& dataset, UpdatePolicy policy, bool oca,
             std::size_t batch_size, std::size_t batches,
             double oca_threshold = 0.25)
{
    const auto& ds = gen::find_dataset(dataset);
    EngineConfig cfg;
    cfg.policy = policy;
    cfg.oca.enabled = oca;
    cfg.oca.threshold = oca_threshold;
    SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                     sim::HauCostParams{}, ds.model.num_vertices);
    analytics::IncrementalPageRank pr;
    auto genr = ds.make_generator();

    PipelineResult out;
    for (std::uint64_t k = 1; k <= batches; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(genr.take(batch_size));
        const auto report = engine.ingest(batch);
        out.update_cycles += report.update.cycles;
        if (engine.compute_due()) {
            const auto work = engine.take_pending_work();
            out.compute += pr.on_batch(engine.graph(), work.affected);
            ++out.compute_rounds_launched;
        }
    }
    // Flush any trailing deferred round (stream end).
    if (!engine.compute_due()) {
        const auto work = engine.take_pending_work();
        if (!work.affected.empty()) {
            out.compute += pr.on_batch(engine.graph(), work.affected);
            ++out.compute_rounds_launched;
        }
    }
    out.ranks = pr.ranks();
    return out;
}

TEST(Integration, FullPipelineIsDeterministic)
{
    const auto a =
        run_pipeline("fb", UpdatePolicy::kAbrUscHau, true, 2000, 5);
    const auto b =
        run_pipeline("fb", UpdatePolicy::kAbrUscHau, true, 2000, 5);
    EXPECT_EQ(a.update_cycles, b.update_cycles);
    EXPECT_EQ(a.compute.traversals, b.compute.traversals);
    EXPECT_EQ(a.ranks, b.ranks);
}

TEST(Integration, PoliciesAgreeOnFinalGraphAndRanks)
{
    const auto base =
        run_pipeline("fb", UpdatePolicy::kBaseline, false, 2000, 5);
    const auto full =
        run_pipeline("fb", UpdatePolicy::kAbrUscHau, false, 2000, 5);
    // Same computation model on the same final graphs: identical ranks.
    ASSERT_EQ(base.ranks.size(), full.ranks.size());
    for (std::size_t v = 0; v < base.ranks.size(); ++v) {
        ASSERT_NEAR(base.ranks[v], full.ranks[v], 1e-9);
    }
}

TEST(Integration, OcaAggregationReducesRoundsNotAccuracy)
{
    // fb at 2K-edge batches exhibits high inter-batch overlap, so OCA
    // halves the number of compute rounds.
    const auto without =
        run_pipeline("fb", UpdatePolicy::kBaseline, false, 2000, 8);
    const auto with =
        run_pipeline("fb", UpdatePolicy::kBaseline, true, 2000, 8, 0.1);
    EXPECT_LT(with.compute_rounds_launched, without.compute_rounds_launched);
    EXPECT_LT(with.compute.cycles(), without.compute.cycles());
    // Aggregation may only coarsen granularity, not corrupt results: the
    // final ranks converge to the same fixed point.
    ASSERT_EQ(with.ranks.size(), without.ranks.size());
    double max_err = 0.0;
    for (std::size_t v = 0; v < with.ranks.size(); ++v) {
        max_err = std::max(max_err,
                           std::abs(with.ranks[v] - without.ranks[v]));
    }
    EXPECT_LT(max_err, 5e-3);
}

TEST(Integration, AdaptationBeatsAlwaysReorderOnAdverseInput)
{
    // lj is reordering-adverse: always-RO must cost more update cycles
    // than ABR (which falls back after the first active batch).
    const auto ro =
        run_pipeline("lj", UpdatePolicy::kAlwaysReorder, false, 5000, 6);
    const auto abr = run_pipeline("lj", UpdatePolicy::kAbr, false, 5000, 6);
    EXPECT_LT(abr.update_cycles, ro.update_cycles);
}

TEST(Integration, AbrKeepsReorderingOnFriendlyInput)
{
    // wiki at 100K is reordering-friendly; ABR+USC should land close to
    // (not catastrophically above) always-RO+USC.
    const auto always = run_pipeline("wiki", UpdatePolicy::kAlwaysReorderUsc,
                                     false, 20000, 4);
    const auto abr =
        run_pipeline("wiki", UpdatePolicy::kAbrUsc, false, 20000, 4);
    EXPECT_LT(static_cast<double>(abr.update_cycles),
              1.25 * static_cast<double>(always.update_cycles));
}

TEST(Integration, FullSystemBeatsSoftwareOnlyOnAdverseInput)
{
    // The paper's headline claim (Fig 1 / §6.2.2): dynamic SW/HW beats
    // the SW-only input-oblivious path on adverse inputs.
    const auto sw_only = run_pipeline("uk", UpdatePolicy::kAlwaysReorderUsc,
                                      false, 10000, 5);
    const auto full =
        run_pipeline("uk", UpdatePolicy::kAbrUscHau, false, 10000, 5);
    EXPECT_LT(full.update_cycles, sw_only.update_cycles);
    // And it beats the plain baseline too (HAU's contribution).
    const auto baseline =
        run_pipeline("uk", UpdatePolicy::kBaseline, false, 10000, 5);
    EXPECT_LT(full.update_cycles, baseline.update_cycles);
}

TEST(Integration, IncrementalSsspSurvivesFullPipeline)
{
    const auto& ds = gen::find_dataset("amazon");
    EngineConfig cfg;
    cfg.policy = UpdatePolicy::kAbrUscHau;
    SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                     sim::HauCostParams{}, ds.model.num_vertices);
    gen::StreamModel m = ds.model;
    m.delete_fraction = 0.1;
    m.weighted = true;
    gen::EdgeStreamGenerator genr(m);
    analytics::IncrementalSssp sssp(0);

    for (std::uint64_t k = 1; k <= 4; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        batch.set_edges(genr.take(3000));
        engine.ingest(batch);
        const auto work = engine.take_pending_work();
        sssp.on_batch(engine.graph(), work.inserted, work.deleted);
        const auto expected = analytics::static_sssp(engine.graph(), 0);
        for (std::size_t v = 0; v < expected.size(); ++v) {
            if (std::isinf(expected[v])) {
                ASSERT_TRUE(std::isinf(sssp.distances()[v]));
            } else {
                ASSERT_NEAR(sssp.distances()[v], expected[v], 1e-3);
            }
        }
    }
}

} // namespace
} // namespace igs
