/**
 * @file
 * Tests for the incremental memoized analytics tier (DESIGN.md §14):
 * DirtySetView semantics, the full-vs-delta input policy, and the
 * randomized equivalence harness — N seeded mixed insert/delete streams
 * driven through the incremental kernels and their from-scratch
 * references on all three storage backends, with SSSP/BFS asserted
 * *exactly* equal and PageRank equal within tolerance every epoch.
 * The adversarial deletion-stress stream (delete bursts,
 * delete-then-reinsert-same-edge) runs through the same harness.
 *
 * Seeds are overridable via $IGS_TEST_SEED and printed on failure
 * (testutil::seed_trace).
 */
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/incremental/analytics.h"
#include "analytics/sssp.h"
#include "analytics/traversal.h"
#include "gen/deletion_stress.h"
#include "gen/edge_stream.h"
#include "graph/adjacency_list.h"
#include "graph/degree_aware_hash.h"
#include "graph/dirty_set_view.h"
#include "graph/hybrid_store.h"
#include "graph/snapshot_view.h"
#include "stream/batch.h"
#include "stream/compute_policy.h"
#include "stream/pending.h"

#include "test_support.h"

namespace igs {
namespace {

using analytics::incremental::IncrementalAnalytics;
using analytics::incremental::IncrementalConfig;
using stream::IncrementalPolicy;
using testutil::harness_seeds;
using testutil::seed_trace;
using testutil::tight_tuning;

// The dirty-set view is itself a read path over any read path — the
// snapshot included — and DegreeAwareHash now satisfies the concept
// (its edges() view is what made the incremental tier backend-complete).
static_assert(graph::GraphReadPath<graph::DegreeAwareHash>);
static_assert(graph::GraphReadPath<graph::DirtySetView<graph::AdjacencyList>>);
static_assert(
    graph::GraphReadPath<graph::DirtySetView<graph::DegreeAwareHash>>);
static_assert(graph::GraphReadPath<graph::DirtySetView<graph::HybridStore>>);
static_assert(graph::GraphReadPath<graph::DirtySetView<graph::SnapshotView>>);

// ------------------------------------------------------- DirtySetView

TEST(DirtySetView, WrapsReadPathAndAnswersMembership)
{
    graph::AdjacencyList g(8);
    g.apply_insert(1, {3, 2.0f}, Direction::kOut);
    g.apply_insert(3, {1, 2.0f}, Direction::kIn);
    const std::vector<VertexId> dirty{1, 3};
    const auto view = g.dirty_view(dirty);
    EXPECT_EQ(view.num_vertices(), 8u);
    EXPECT_EQ(view.degree(1, Direction::kOut), 1u);
    EXPECT_EQ(view.edges(1, Direction::kOut).front().id, 3u);
    EXPECT_EQ(view.dirty().size(), 2u);
    EXPECT_TRUE(view.is_dirty(1));
    EXPECT_TRUE(view.is_dirty(3));
    EXPECT_FALSE(view.is_dirty(0));
    EXPECT_FALSE(view.is_dirty(7));
    EXPECT_DOUBLE_EQ(view.dirty_fraction(), 2.0 / 8.0);
    EXPECT_EQ(&view.base(), &g);
}

TEST(DirtySetView, EmptyDirtySetAndEmptyGraph)
{
    graph::AdjacencyList g(4);
    const auto view = g.dirty_view({});
    EXPECT_EQ(view.dirty().size(), 0u);
    EXPECT_DOUBLE_EQ(view.dirty_fraction(), 0.0);
    graph::AdjacencyList empty(0);
    EXPECT_DOUBLE_EQ(empty.dirty_view({}).dirty_fraction(), 0.0);
}

// ------------------------------------------------------- input policy

TEST(IncrementalPolicy, MeasureComputesRatios)
{
    stream::PendingWork w;
    w.affected = {1, 2, 3};
    w.inserted.resize(3);
    w.deleted.resize(1);
    const auto s = stream::EpochInputStats::measure(w, 30);
    EXPECT_EQ(s.dirty_vertices, 3u);
    EXPECT_EQ(s.inserted, 3u);
    EXPECT_EQ(s.deleted, 1u);
    EXPECT_DOUBLE_EQ(s.dirty_fraction, 0.1);
    EXPECT_DOUBLE_EQ(s.delete_ratio, 0.25);
    // Degenerate inputs don't divide by zero.
    const auto e = stream::EpochInputStats::measure({}, 0);
    EXPECT_DOUBLE_EQ(e.dirty_fraction, 0.0);
    EXPECT_DOUBLE_EQ(e.delete_ratio, 0.0);
}

TEST(IncrementalPolicy, AutoKeysOnDirtyFractionAndDeleteRatio)
{
    stream::IncrementalPolicyParams p;
    p.policy = IncrementalPolicy::kAuto;
    stream::EpochInputStats s;
    s.dirty_fraction = 0.1;
    s.delete_ratio = 0.1;
    EXPECT_TRUE(stream::use_delta(p, s));
    s.dirty_fraction = p.max_dirty_fraction; // boundary is inclusive
    EXPECT_TRUE(stream::use_delta(p, s));
    s.dirty_fraction = p.max_dirty_fraction + 0.01;
    EXPECT_FALSE(stream::use_delta(p, s));
    s.dirty_fraction = 0.1;
    s.delete_ratio = p.max_delete_ratio + 0.01;
    EXPECT_FALSE(stream::use_delta(p, s));
    // The oblivious policies ignore the statistics entirely.
    p.policy = IncrementalPolicy::kFullRerun;
    EXPECT_FALSE(stream::use_delta(p, s));
    p.policy = IncrementalPolicy::kDeltaPropagate;
    EXPECT_TRUE(stream::use_delta(p, s));
    EXPECT_STREQ(to_string(IncrementalPolicy::kAuto), "auto");
}

// ------------------------------------------- randomized equivalence

/** Engine update semantics: a batch's insertions land before its
 *  deletions, symmetrically in both directions. */
template <typename Graph>
void
apply_batch(Graph& g, const std::vector<StreamEdge>& ops)
{
    for (const StreamEdge& e : ops) {
        if (!e.is_delete) {
            g.apply_insert(e.src, {e.dst, e.weight}, Direction::kOut);
            g.apply_insert(e.dst, {e.src, e.weight}, Direction::kIn);
        }
    }
    for (const StreamEdge& e : ops) {
        if (e.is_delete) {
            g.apply_remove(e.src, e.dst, Direction::kOut);
            g.apply_remove(e.dst, e.src, Direction::kIn);
        }
    }
}

/** Tolerances tight enough that residual truncation stays far below the
 *  1e-8 comparison threshold: the delta kernel's per-vertex residual is
 *  amplified at most n/(1-damping)-fold, 1e-12 * 300 / 0.15 ≈ 2e-9. */
analytics::PageRankParams
tight_pagerank()
{
    analytics::PageRankParams p;
    p.tolerance = 1e-12;
    p.max_iterations = 250;
    return p;
}

IncrementalConfig
harness_config(IncrementalPolicy policy)
{
    IncrementalConfig cfg;
    cfg.policy.policy = policy;
    cfg.pagerank = tight_pagerank();
    return cfg;
}

/**
 * Drive `epochs` of operations through one shared graph, comparing an
 * always-delta bundle against an always-full bundle every epoch: BFS
 * and SSSP must match the from-scratch kernels exactly (least-fixpoint
 * argument, analytics/incremental/sssp.h), PageRank within tolerance.
 */
template <typename Graph>
void
expect_incremental_matches_full(
    Graph& g, const std::vector<std::vector<StreamEdge>>& epochs)
{
    IncrementalAnalytics inc(
        harness_config(IncrementalPolicy::kDeltaPropagate));
    IncrementalAnalytics ref(harness_config(IncrementalPolicy::kFullRerun));
    stream::PendingAccumulator acc;
    EpochId epoch = 0;
    for (const auto& ops : epochs) {
        apply_batch(g, ops);
        acc.note_batch(stream::EdgeBatch(epoch + 1, ops));
        const auto work = acc.hand_off(++epoch);
        (void)inc.on_epoch(g, work);
        (void)ref.on_epoch(g, work);
        SCOPED_TRACE("epoch=" + std::to_string(epoch));
        EXPECT_EQ(inc.sssp().distances(), ref.sssp().distances());
        EXPECT_EQ(inc.bfs().hops(), ref.bfs().hops());
        // Anchor the memoized reference itself against the stateless
        // kernels (a bug shared by full_rerun and delta would otherwise
        // cancel out).
        EXPECT_EQ(ref.sssp().distances(), analytics::static_sssp(g, 0));
        EXPECT_EQ(ref.bfs().hops(), analytics::bfs_distances(g, 0));
        const auto& ra = inc.pagerank().ranks();
        const auto& rb = ref.pagerank().ranks();
        ASSERT_EQ(ra.size(), rb.size());
        for (std::size_t v = 0; v < ra.size(); ++v) {
            EXPECT_NEAR(ra[v], rb[v], 1e-8) << "vertex " << v;
        }
    }
    // The delta bundle must actually have exercised the delta path
    // (first epoch is always full — the memo state starts cold).
    EXPECT_EQ(ref.delta_epochs(), 0u);
    EXPECT_GT(inc.delta_epochs(), 0u);
    EXPECT_LT(inc.delta_epochs(), inc.epochs());
}

std::vector<std::vector<StreamEdge>>
mixed_epochs(std::uint64_t seed, std::size_t epochs, std::size_t ops)
{
    gen::StreamModel m;
    m.num_vertices = 300;
    m.num_hubs = 6;
    m.hub_mass_dst = 0.4;
    m.delete_fraction = 0.3;
    m.weighted = true;
    m.seed = seed;
    gen::EdgeStreamGenerator generator(m);
    std::vector<std::vector<StreamEdge>> out;
    out.reserve(epochs);
    for (std::size_t i = 0; i < epochs; ++i) {
        out.push_back(generator.take(ops));
    }
    return out;
}

TEST(IncrementalEquivalence, AdjacencyListRandomizedStreams)
{
    for (const std::uint64_t seed : harness_seeds({101, 102, 103})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::AdjacencyList g(300);
        const auto epochs = mixed_epochs(seed, 8, 250);
        expect_incremental_matches_full(g, epochs);
    }
}

TEST(IncrementalEquivalence, DegreeAwareHashRandomizedStreams)
{
    for (const std::uint64_t seed : harness_seeds({111, 112, 113})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::DegreeAwareHash g(300, tight_tuning());
        const auto epochs = mixed_epochs(seed, 8, 250);
        expect_incremental_matches_full(g, epochs);
    }
}

TEST(IncrementalEquivalence, HybridStoreRandomizedStreams)
{
    for (const std::uint64_t seed : harness_seeds({121, 122, 123})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::HybridStore g(300, tight_tuning());
        const auto epochs = mixed_epochs(seed, 8, 250);
        expect_incremental_matches_full(g, epochs);
    }
}

// --------------------------------------------- deletion-stress streams

std::vector<std::vector<StreamEdge>>
stress_epochs(std::uint64_t seed, std::size_t epochs, std::size_t ops)
{
    gen::DeletionStressModel m;
    m.num_vertices = 256;
    m.build_edges = 1024;
    m.burst = ops; // burst == batch: whole epochs of pure deletion
    m.seed = seed;
    gen::DeletionStressGenerator generator(m);
    std::vector<std::vector<StreamEdge>> out;
    out.reserve(epochs);
    for (std::size_t i = 0; i < epochs; ++i) {
        out.push_back(generator.take(ops));
    }
    return out;
}

TEST(DeletionStressGenerator, PhasesProduceDeleteBurstsAndReinserts)
{
    const std::size_t ops = 128;
    const auto epochs = stress_epochs(7, 14, ops);
    // Epochs 0..7 build (1024/128); then delete and reinsert alternate.
    std::size_t pure_delete_epochs = 0;
    std::size_t reinserted = 0;
    std::vector<StreamEdge> deleted;
    for (const auto& batch : epochs) {
        std::size_t deletes = 0;
        for (const StreamEdge& e : batch) {
            if (e.is_delete) {
                ++deletes;
                deleted.push_back(e);
            } else {
                for (const StreamEdge& d : deleted) {
                    if (d.src == e.src && d.dst == e.dst &&
                        d.weight == e.weight) {
                        ++reinserted;
                        break;
                    }
                }
            }
            // Dyadic weights: scaling by 64 must give exact integers.
            const float scaled = e.weight * 64.0f;
            EXPECT_EQ(scaled, std::floor(scaled));
            EXPECT_GE(e.weight, 0.5f);
            EXPECT_LT(e.weight, 1.5f);
        }
        if (deletes == batch.size()) {
            ++pure_delete_epochs;
        }
    }
    // The adversarial shape actually materialized: whole-batch delete
    // bursts and same-edge reinsertions.
    EXPECT_GE(pure_delete_epochs, 3u);
    EXPECT_GT(reinserted, 0u);
}

TEST(IncrementalEquivalence, DeletionStressAdjacencyList)
{
    for (const std::uint64_t seed : harness_seeds({131, 132})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::AdjacencyList g(256);
        expect_incremental_matches_full(g, stress_epochs(seed, 16, 128));
    }
}

TEST(IncrementalEquivalence, DeletionStressHybridStore)
{
    for (const std::uint64_t seed : harness_seeds({141, 142})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::HybridStore g(256, tight_tuning());
        expect_incremental_matches_full(g, stress_epochs(seed, 16, 128));
    }
}

// ------------------------------------------------- policy integration

TEST(IncrementalAnalyticsBundle, FirstEpochIsAlwaysFull)
{
    graph::AdjacencyList g(64);
    IncrementalAnalytics a(
        harness_config(IncrementalPolicy::kDeltaPropagate));
    std::vector<StreamEdge> ops{{1, 2, 1.0f, false}};
    apply_batch(g, ops);
    stream::PendingAccumulator acc;
    acc.note_batch(stream::EdgeBatch(1, ops));
    const auto d = a.on_epoch(g, acc.hand_off(1));
    EXPECT_FALSE(d.delta); // cold state: no baseline to correct
    EXPECT_EQ(a.epochs(), 1u);
    EXPECT_EQ(a.delta_epochs(), 0u);
    EXPECT_TRUE(a.pagerank().warm());
}

TEST(IncrementalAnalyticsBundle, AutoChoosesPerEpochFromBatchStats)
{
    graph::AdjacencyList g(2000);
    IncrementalAnalytics a(harness_config(IncrementalPolicy::kAuto));
    stream::PendingAccumulator acc;
    EpochId epoch = 0;
    const auto run = [&](const std::vector<StreamEdge>& ops) {
        apply_batch(g, ops);
        acc.note_batch(stream::EdgeBatch(epoch + 1, ops));
        return a.on_epoch(g, acc.hand_off(++epoch));
    };

    // Epoch 1: a build batch — full regardless (cold).
    std::vector<StreamEdge> build;
    for (VertexId v = 0; v < 600; ++v) {
        build.push_back({v, v + 1, 1.0f, false});
    }
    EXPECT_FALSE(run(build).delta);

    // Epoch 2: a few inserts — tiny dirty fraction, no deletes: delta.
    const auto d2 = run({{5, 700, 1.0f, false}, {6, 701, 1.0f, false}});
    EXPECT_TRUE(d2.delta);
    EXPECT_LE(d2.stats.dirty_fraction, 0.25);

    // Epoch 3: delete-heavy batch — ratio above threshold: full rerun.
    const auto d3 = run({{5, 700, 1.0f, true},
                         {6, 701, 1.0f, true},
                         {0, 1, 1.0f, true},
                         {7, 702, 1.0f, false}});
    EXPECT_DOUBLE_EQ(d3.stats.delete_ratio, 0.75);
    EXPECT_FALSE(d3.delta);

    // Epoch 4: quiet again: back to delta.
    EXPECT_TRUE(run({{8, 703, 1.0f, false}}).delta);
    EXPECT_EQ(a.epochs(), 4u);
    EXPECT_EQ(a.delta_epochs(), 2u);
}

TEST(IncrementalPageRank, DeltaFallsBackToFullWhenVertexSpaceChanges)
{
    analytics::incremental::PageRank pr(tight_pagerank());
    graph::AdjacencyList small(4);
    small.apply_insert(0, {1, 1.0f}, Direction::kOut);
    small.apply_insert(1, {0, 1.0f}, Direction::kIn);
    pr.full_rerun(small);
    ASSERT_EQ(pr.ranks().size(), 4u);

    // A bigger graph shifts the (1-d)/|V| base term for every vertex:
    // delta_propagate must detect the size change and rerun fully.
    graph::AdjacencyList big(6);
    big.apply_insert(0, {1, 1.0f}, Direction::kOut);
    big.apply_insert(1, {0, 1.0f}, Direction::kIn);
    const std::vector<VertexId> dirty{0, 1};
    pr.delta_propagate(big.dirty_view(dirty));
    analytics::incremental::PageRank fresh(tight_pagerank());
    fresh.full_rerun(big);
    EXPECT_EQ(pr.ranks(), fresh.ranks());
}

TEST(IncrementalAnalyticsBundle, DeltaDoesLessTraversalWorkWhenQuiet)
{
    // A small dirty set on a warm state must touch far fewer edges than
    // a full rerun — the point of the whole tier.  (The bench pins the
    // magnitude; this guards the direction.)
    graph::AdjacencyList g(500);
    const auto epochs = mixed_epochs(201, 2, 1500);
    // Default pagerank tolerance (1e-4): this test compares *work*, not
    // rank values, and at equivalence-harness tolerances (1e-12) the
    // residual wave legitimately spreads graph-wide.
    IncrementalConfig delta_cfg;
    delta_cfg.policy.policy = IncrementalPolicy::kDeltaPropagate;
    IncrementalConfig full_cfg;
    full_cfg.policy.policy = IncrementalPolicy::kFullRerun;
    IncrementalAnalytics inc(delta_cfg);
    IncrementalAnalytics ref(full_cfg);
    stream::PendingAccumulator acc;
    EpochId epoch = 0;
    for (const auto& ops : epochs) {
        apply_batch(g, ops);
        acc.note_batch(stream::EdgeBatch(epoch + 1, ops));
        const auto work = acc.hand_off(++epoch);
        (void)inc.on_epoch(g, work);
        (void)ref.on_epoch(g, work);
    }
    // Now a tiny third epoch.
    std::vector<StreamEdge> quiet{{3, 4, 1.0f, false}};
    apply_batch(g, quiet);
    acc.note_batch(stream::EdgeBatch(epoch + 1, quiet));
    const auto work = acc.hand_off(++epoch);
    const auto di = inc.on_epoch(g, work);
    const auto dr = ref.on_epoch(g, work);
    EXPECT_TRUE(di.delta);
    EXPECT_FALSE(dr.delta);
    EXPECT_LT(di.work.traversals, dr.work.traversals / 4);
    EXPECT_GT(di.work.seeds, 0u);
    EXPECT_EQ(dr.work.seeds, 0u);
    // Rounds are attributed identically: one per kernel per epoch.
    EXPECT_EQ(di.work.rounds, dr.work.rounds);
    EXPECT_EQ(inc.meter().last_epoch(), epoch);
}

} // namespace
} // namespace igs
