// Semantic fixture: a telemetry key violating the area.subsystem.name
// naming scheme (wrong case, too few segments).
struct Registry {
    int counter(const char* name) { (void)name; return 0; }
};
void register_all(Registry& r) {
    int ok = r.counter("core.app.events");
    int bad = r.counter("App.Events");
    (void)ok;
    (void)bad;
}
