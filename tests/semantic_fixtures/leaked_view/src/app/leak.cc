// Semantic fixture: a SnapshotView stored beyond its producing scope
// (member store) and captured by a lambda handed to a runner.
struct SnapshotView {
    int epoch = 0;
};
struct SnapshotStore {
    SnapshotView view() const { return SnapshotView{}; }
};
struct Holder {
    SnapshotStore snapshots_;
    SnapshotView stash_;
    void keep() {
        const SnapshotView view = snapshots_.view();
        stash_ = view;
    }
};
template <typename Fn> void spawn(Fn fn) { fn(); }
struct Runner {
    SnapshotStore snapshots_;
    void run() {
        const SnapshotView view = snapshots_.view();
        spawn([view]() { (void)view.epoch; });
    }
};
