// Semantic fixture: the backend declares apply_coalesced in layers.toml
// but no longer defines it (renamed to apply_bulk) — the engine's
// `if constexpr (requires ...)` probe would silently take the fallback.
#ifndef MINI_STORE_H
#define MINI_STORE_H
struct MiniStore {
    void apply_insert(int u, int v) { (void)u; (void)v; }
    void apply_bulk() {}
};
#endif
