// Semantic fixture: a backend-specific allocation on the hot path —
// only the FancyStore instantiation reaches the allocating branch, so
// the finding must be attributed to FancyStore and not to PlainStore.
#ifndef KERNEL_H
#define KERNEL_H
#include <vector>
struct PlainStore {
    std::vector<int>& edges_mut(int v) { (void)v; return edges_; }
    std::vector<int> edges_;
};
struct FancyStore {
    void apply_coalesced(int v) { scratch_.push_back(v); }
    std::vector<int> scratch_;
};
template <typename G> void apply_batch(G& g, int v) {
    if constexpr (requires { g.edges_mut(v); }) {
        g.edges_mut(v).clear();
    } else {
        g.apply_coalesced(v);
    }
}
#endif
