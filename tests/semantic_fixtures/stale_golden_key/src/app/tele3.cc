// Semantic fixture: the golden JSON references a telemetry key that was
// renamed in the source — the golden would never fail for it again.
struct Registry {
    int counter(const char* name) { (void)name; return 0; }
};
void register_all(Registry& r) {
    int a = r.counter("core.app.events");
    (void)a;
}
