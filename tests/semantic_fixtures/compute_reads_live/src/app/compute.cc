// Semantic fixture: the compute callable registered via set_compute
// mutates live adjacency state instead of reading its SnapshotView.
struct SnapshotView {
    int epoch = 0;
};
struct Graph {
    void apply_insert(int u, int v) { (void)u; (void)v; }
};
struct Engine {
    template <typename Fn> void set_compute(Fn fn) { (void)fn; }
};
void wire(Engine& e, Graph& g) {
    e.set_compute([&g](const SnapshotView& view) {
        (void)view;
        g.apply_insert(1, 2);
    });
}
