// Semantic fixture: everything conforms — view used and dropped before
// the next publish, telemetry key well-formed, backend surface intact.
struct SnapshotView {
    int epoch = 0;
};
struct SnapshotStore {
    SnapshotView view() const { return SnapshotView{}; }
    void publish() {}
};
struct Registry {
    int counter(const char* name) { (void)name; return 0; }
};
int read_epoch(Registry& r) {
    int batches = r.counter("core.app.batches");
    SnapshotStore snapshots_;
    const SnapshotView view = snapshots_.view();
    int e = view.epoch;
    snapshots_.publish();
    return e + batches;
}
