// Semantic fixture: publish() runs while a view of the same store is
// still in use afterwards (the classic stale-view bug).
struct SnapshotView {
    int epoch = 0;
};
struct SnapshotStore {
    SnapshotView view() const { return SnapshotView{}; }
    void publish() {}
};
int stale_read() {
    SnapshotStore snapshots_;
    const SnapshotView view = snapshots_.view();
    snapshots_.publish();
    return view.epoch;
}
