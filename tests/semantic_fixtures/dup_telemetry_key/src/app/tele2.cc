// Semantic fixture: one telemetry key registered at two sites (and
// with two different kinds) — the registry would merge both streams.
struct Registry {
    int counter(const char* name) { (void)name; return 0; }
    int gauge(const char* name) { (void)name; return 0; }
};
void register_a(Registry& r) {
    int a = r.counter("core.app.hits");
    (void)a;
}
void register_b(Registry& r) {
    int b = r.gauge("core.app.hits");
    (void)b;
}
