/**
 * @file
 * Tests for the epoch-versioned GraphStore and the update/compute
 * pipeline (DESIGN.md §11): snapshot publication correctness, depth-1
 * equivalence with the pre-pipeline engine, depth-2 result equality with
 * the serial run, backpressure accounting, per-epoch PendingWork
 * hand-off, and the sim frontend's modeled overlap.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/compute_meter.h"
#include "analytics/incremental/analytics.h"
#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "analytics/traversal.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "gen/edge_stream.h"
#include "graph/adjacency_list.h"
#include "graph/graph_store.h"
#include "graph/indexed_adjacency.h"
#include "graph/snapshot_view.h"
#include "sim/sim_engine.h"
#include "stream/pending.h"

#include "test_support.h"

namespace igs {
namespace {

using testutil::expect_reports_equal;
using testutil::expect_snapshot_matches_live;
using testutil::pipeline_batch;
using testutil::pipeline_config;

// Every storage backend satisfies the read-path concept; the live stores
// and the snapshot additionally carry the epoch token.
static_assert(graph::GraphReadPath<graph::AdjacencyList>);
static_assert(graph::GraphReadPath<graph::IndexedAdjacency>);
static_assert(graph::GraphReadPath<graph::SnapshotView>);
static_assert(graph::GraphStore<graph::AdjacencyList>);
static_assert(graph::GraphStore<graph::IndexedAdjacency>);
static_assert(graph::GraphStore<graph::SnapshotView>);

// ----------------------------------------------------------- snapshots
TEST(SnapshotStore, FirstPublishCopiesWholeGraph)
{
    graph::AdjacencyList live(8);
    live.apply_insert(1, {2, 1.0f}, Direction::kOut);
    live.apply_insert(2, {1, 1.0f}, Direction::kIn);
    live.apply_insert(3, {4, 2.5f}, Direction::kOut);
    live.apply_insert(4, {3, 2.5f}, Direction::kIn);
    live.advance_epoch();

    graph::SnapshotStore store;
    // Empty dirty set: the first publication must still copy everything.
    const auto ps = store.publish(live, {});
    EXPECT_EQ(ps.epoch, 1u);
    EXPECT_EQ(ps.dirty_vertices, 8u);
    EXPECT_EQ(ps.copied_edges, 4u);
    EXPECT_EQ(ps.grown_vertices, 8u);
    expect_snapshot_matches_live(store.view(), live);
    EXPECT_EQ(store.view().epoch(), 1u);
}

TEST(SnapshotStore, IncrementalPublishCopiesOnlyDirtyVertices)
{
    graph::AdjacencyList live(6);
    live.apply_insert(0, {1, 1.0f}, Direction::kOut);
    live.apply_insert(1, {0, 1.0f}, Direction::kIn);
    live.advance_epoch();
    graph::SnapshotStore store;
    (void)store.publish(live, {});

    // Mutate vertices 2 and 3 only; vertex 0/1 snapshots must survive a
    // publication whose dirty set excludes them.
    live.apply_insert(2, {3, 4.0f}, Direction::kOut);
    live.apply_insert(3, {2, 4.0f}, Direction::kIn);
    live.advance_epoch();
    const std::vector<VertexId> dirty{2, 3};
    const auto ps = store.publish(live, dirty);
    EXPECT_EQ(ps.epoch, 2u);
    EXPECT_EQ(ps.dirty_vertices, 2u);
    EXPECT_EQ(ps.copied_edges, 2u); // one out-entry + one in-entry
    EXPECT_EQ(ps.grown_vertices, 0u);
    expect_snapshot_matches_live(store.view(), live);

    // A stale dirty set misses vertex 4's new edge: the snapshot must NOT
    // pick it up — proof that publication copies only what it is told.
    live.apply_insert(4, {5, 1.0f}, Direction::kOut);
    live.advance_epoch();
    (void)store.publish(live, dirty);
    EXPECT_EQ(store.view().degree(4, Direction::kOut), 0u);
    EXPECT_EQ(live.degree(4, Direction::kOut), 1u);
}

TEST(SnapshotStore, DirtyIdsBeyondLiveVertexSpaceAreIgnored)
{
    graph::AdjacencyList live(4);
    live.advance_epoch();
    graph::SnapshotStore store;
    (void)store.publish(live, {});
    live.advance_epoch();
    const std::vector<VertexId> dirty{2, 17, 400};
    const auto ps = store.publish(live, dirty);
    EXPECT_EQ(ps.copied_edges, 0u);
    EXPECT_EQ(store.view().num_vertices(), 4u);
}

// ----------------------------------------------------- pending hand-off
TEST(PendingAccumulator, HandOffOnEmptyAccumulatorIsEmptyButStamped)
{
    stream::PendingAccumulator acc;
    EXPECT_TRUE(acc.empty());
    const auto w = acc.hand_off(7);
    EXPECT_TRUE(w.affected.empty());
    EXPECT_TRUE(w.inserted.empty());
    EXPECT_TRUE(w.deleted.empty());
    EXPECT_EQ(w.batches, 0u);
    EXPECT_EQ(w.epoch, 7u);
    // Legacy epochless drain on the (still empty) accumulator.
    const auto legacy = acc.take();
    EXPECT_EQ(legacy.epoch, 0u);
    EXPECT_EQ(legacy.batches, 0u);
    EXPECT_TRUE(acc.empty());
}

TEST(PendingAccumulator, DeleteThenInsertOfSameEdgeWithinAggregatedWindow)
{
    // OCA aggregates two batches into one compute round.  Batch 1 deletes
    // (5,6); batch 2 re-inserts it.  The hand-off must preserve both
    // modifications (the compute phase sees the net effect through the
    // snapshot; incremental SSSP needs both lists to trim and re-relax).
    stream::PendingAccumulator acc;
    stream::EdgeBatch b1(1, {{5, 6, 1.0f, /*is_delete=*/true}});
    stream::EdgeBatch b2(2, {{5, 6, 2.0f, /*is_delete=*/false}});
    acc.note_batch(b1);
    EXPECT_FALSE(acc.empty());
    acc.note_batch(b2);
    const auto w = acc.hand_off(3);
    EXPECT_EQ(w.batches, 2u);
    EXPECT_EQ(w.epoch, 3u);
    ASSERT_EQ(w.deleted.size(), 1u);
    ASSERT_EQ(w.inserted.size(), 1u);
    EXPECT_TRUE(w.deleted[0].is_delete);
    EXPECT_EQ(w.inserted[0].weight, 2.0f);
    // Affected covers both endpoints once despite four mentions.
    EXPECT_EQ(w.affected, (std::vector<VertexId>{5, 6}));
    // The accumulator reset: a following window starts clean.
    EXPECT_TRUE(acc.empty());
    EXPECT_EQ(acc.pending_batches(), 0u);
}

// ------------------------------------------------- depth-1 equivalence
TEST(RealTimeEnginePipeline, DepthOneMatchesUnpipelinedEngineExactly)
{
    ThreadPool pool(4);
    const auto cfg = pipeline_config(core::UpdatePolicy::kAbrUsc, 1);
    core::RealTimeEngine plain(cfg, 2000, pool);
    core::RealTimeEngine piped(cfg, 2000, pool);
    std::uint64_t rounds = 0;
    piped.set_compute([&](const graph::SnapshotView& snap,
                          const core::PendingWork& work) {
        ++rounds;
        EXPECT_EQ(snap.epoch(), work.epoch);
    });

    for (std::uint64_t k = 1; k <= 4; ++k) {
        const auto batch = pipeline_batch(k, 1200, 40 + k);
        const auto ra = plain.ingest(batch);
        const auto rb = piped.ingest(batch);
        expect_reports_equal(ra, rb);
        // The legacy polling contract is untouched in pipeline mode.
        EXPECT_EQ(plain.compute_due(), piped.compute_due());
    }
    EXPECT_TRUE(plain.graph().same_topology(piped.graph()));
    EXPECT_GT(rounds, 0u);
    // An OCA-deferred tail may still be pending; flush it so the final
    // snapshot corresponds to the full stream.
    piped.flush_pipeline();
    EXPECT_EQ(rounds, piped.pipeline_stats().epochs_published);
    // Depth 1 runs rounds inline: no compute thread, no stalls.
    EXPECT_EQ(piped.pipeline_stats().backpressure_stalls, 0u);
    // The published snapshot is the live graph at the last publication.
    expect_snapshot_matches_live(piped.snapshot(), piped.graph());
    EXPECT_EQ(piped.snapshot().epoch(), piped.graph().epoch());
}

// ------------------------------------------------- depth-2 equivalence
struct PipelineAnalytics {
    analytics::IncrementalPageRank pagerank;
    analytics::IncrementalSssp sssp{0};
    analytics::ComputeMeter meter;

    void
    round(const graph::SnapshotView& snap, const core::PendingWork& work)
    {
        meter.round_on(work.epoch);
        pagerank.on_batch(snap, work.affected, &meter);
        sssp.on_batch(snap, work.inserted, work.deleted, &meter);
    }
};

TEST(RealTimeEnginePipeline, DepthTwoResultsEqualSerialRun)
{
    // One update worker pins the edge-array order: under a multi-worker
    // update only weights/topology are schedule-deterministic (see
    // adjacency_list.h), and incremental PageRank's float summation is
    // order-sensitive.  With the order pinned, any divergence below is
    // attributable to the pipeline itself — which must introduce none.
    ThreadPool pool(1);
    PipelineAnalytics serial;
    PipelineAnalytics overlapped;
    const auto serial_cfg = pipeline_config(core::UpdatePolicy::kAbrUsc, 1);
    const auto piped_cfg = pipeline_config(core::UpdatePolicy::kAbrUsc, 2);
    core::RealTimeEngine serial_engine(serial_cfg, 2000, pool);
    core::RealTimeEngine piped_engine(piped_cfg, 2000, pool);
    serial_engine.set_compute(
        [&](const graph::SnapshotView& s, const core::PendingWork& w) {
            serial.round(s, w);
        });
    piped_engine.set_compute(
        [&](const graph::SnapshotView& s, const core::PendingWork& w) {
            overlapped.round(s, w);
        });

    for (std::uint64_t k = 1; k <= 6; ++k) {
        // Mix in deletions so the SSSP trim path is exercised.
        auto batch = pipeline_batch(k, 900, 50 + k);
        if (k >= 2) {
            auto prev = pipeline_batch(k - 1, 900, 50 + k - 1);
            for (std::size_t i = 0; i < 40; ++i) {
                StreamEdge del = prev.edges()[i * 7];
                del.is_delete = true;
                batch.push_edge(del);
            }
        }
        (void)serial_engine.ingest(batch);
        (void)piped_engine.ingest(batch);
    }
    serial_engine.flush_pipeline();
    piped_engine.flush_pipeline();

    // Same epochs, same snapshots, same rounds => bitwise-equal results.
    EXPECT_TRUE(serial_engine.graph().same_topology(piped_engine.graph()));
    EXPECT_EQ(serial.meter.last_epoch(), overlapped.meter.last_epoch());
    EXPECT_EQ(serial.meter.stats().activations,
              overlapped.meter.stats().activations);
    EXPECT_EQ(serial.meter.stats().traversals,
              overlapped.meter.stats().traversals);
    EXPECT_EQ(serial.pagerank.ranks(), overlapped.pagerank.ranks());
    EXPECT_EQ(serial.sssp.distances(), overlapped.sssp.distances());
    EXPECT_GT(serial.pagerank.ranks().size(), 0u);
}

TEST(RealTimeEnginePipeline, DepthTwoComputeSeesOnlyPublishedDirtySet)
{
    // Each batch k touches only the disjoint vertex range
    // [(k-1)*100, (k-1)*100 + 50).  At depth 2 the incremental compute
    // round for epoch k runs concurrently with the ingest of batch k+1
    // into the live graph — but it must see exactly epoch k's published
    // snapshot and dirty set: the dirty vertices all lie in batch k's
    // range, and every later batch's range is still empty in the
    // snapshot.  (The tsan check_matrix leg re-runs this test to prove
    // the overlap is race-free, not just value-correct.)
    constexpr std::uint64_t kBatches = 6;
    constexpr VertexId kStride = 100;
    constexpr VertexId kSpan = 50;
    const auto range_lo = [](EpochId k) {
        return static_cast<VertexId>((k - 1) * kStride);
    };

    ThreadPool pool(4);
    const auto cfg = pipeline_config(core::UpdatePolicy::kBaseline, 2);
    core::RealTimeEngine engine(cfg, 2000, pool);

    struct EpochRecord {
        EpochId epoch = 0;
        EpochId snap_epoch = 0;
        bool delta = false;
        bool dirty_in_range = false;
        bool future_ranges_empty = false;
        bool sssp_matches = false;
        bool bfs_matches = false;
    };
    Mutex mu;
    std::vector<EpochRecord> records;
    analytics::incremental::IncrementalAnalytics bundle;

    engine.set_compute([&](const graph::SnapshotView& snap,
                           const core::PendingWork& work) {
        EpochRecord r;
        r.epoch = work.epoch;
        r.snap_epoch = snap.epoch();
        const VertexId lo = range_lo(work.epoch);
        r.dirty_in_range =
            !work.affected.empty() &&
            std::all_of(work.affected.begin(), work.affected.end(),
                        [&](VertexId v) {
                            return v >= lo && v < lo + kSpan;
                        });
        r.future_ranges_empty = true;
        for (EpochId k = work.epoch + 1; k <= kBatches; ++k) {
            for (VertexId v = range_lo(k); v < range_lo(k) + kSpan; ++v) {
                if (snap.degree(v, Direction::kOut) != 0) {
                    r.future_ranges_empty = false;
                }
            }
        }
        const auto d = bundle.on_epoch(snap, work);
        r.delta = d.delta;
        r.sssp_matches =
            bundle.sssp().distances() == analytics::static_sssp(snap, 0);
        r.bfs_matches =
            bundle.bfs().hops() == analytics::bfs_distances(snap, 0);
        const MutexLock lock(mu);
        records.push_back(r);
    });

    for (EpochId k = 1; k <= kBatches; ++k) {
        std::vector<StreamEdge> edges;
        for (VertexId i = 0; i + 1 < kSpan; ++i) {
            edges.push_back({range_lo(k) + i, range_lo(k) + i + 1, 1.0f,
                             /*is_delete=*/false});
        }
        (void)engine.ingest(stream::EdgeBatch(k, std::move(edges)));
    }
    engine.flush_pipeline();

    ASSERT_EQ(records.size(), kBatches);
    for (const EpochRecord& r : records) {
        SCOPED_TRACE("epoch=" + std::to_string(r.epoch));
        EXPECT_EQ(r.snap_epoch, r.epoch);
        EXPECT_TRUE(r.dirty_in_range);
        EXPECT_TRUE(r.future_ranges_empty);
        EXPECT_TRUE(r.sssp_matches);
        EXPECT_TRUE(r.bfs_matches);
        // kAuto sends every warm epoch down the delta path here: the
        // dirty fraction is 50/2000 and there are no deletions.
        EXPECT_EQ(r.delta, r.epoch > 1);
    }
    EXPECT_EQ(bundle.delta_epochs(), kBatches - 1);
}

TEST(RealTimeEnginePipeline, DepthTwoStallsWhenComputeOutlastsIngest)
{
    ThreadPool pool(4);
    const auto cfg = pipeline_config(core::UpdatePolicy::kBaseline, 2);
    core::RealTimeEngine engine(cfg, 2000, pool);
    std::atomic<std::uint64_t> rounds{0};
    engine.set_compute([&](const graph::SnapshotView&,
                           const core::PendingWork&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        rounds.fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint64_t k = 1; k <= 3; ++k) {
        (void)engine.ingest(pipeline_batch(k, 400, 60 + k));
    }
    engine.flush_pipeline();
    const auto& ps = engine.pipeline_stats();
    EXPECT_EQ(rounds.load(), 3u);
    EXPECT_EQ(ps.epochs_published, 3u);
    // A 20ms round always outlasts a 400-edge ingest: every publication
    // after the first (and the final flush) waits on the in-flight round.
    EXPECT_GE(ps.backpressure_stalls, 2u);
    EXPECT_GT(ps.stall_seconds, 0.0);
}

TEST(RealTimeEnginePipeline, FlushPublishesOcaDeferredTail)
{
    ThreadPool pool(4);
    auto cfg = pipeline_config(core::UpdatePolicy::kBaseline, 2);
    cfg.oca.enabled = true;
    cfg.oca.threshold = 0.0; // always aggregate once measured
    cfg.abr.n = 1;           // probe every batch
    core::RealTimeEngine engine(cfg, 2000, pool);
    std::atomic<std::uint64_t> batches_computed{0};
    engine.set_compute([&](const graph::SnapshotView&,
                           const core::PendingWork& w) {
        batches_computed.fetch_add(w.batches, std::memory_order_relaxed);
    });
    (void)engine.ingest(pipeline_batch(1, 500, 71));
    // Batch 2 defers its round (aggregation latched): no publication.
    const auto r2 = engine.ingest(pipeline_batch(2, 500, 72));
    EXPECT_TRUE(r2.defer_compute);
    engine.flush_pipeline();
    // The deferred tail reached compute via the flush.
    EXPECT_EQ(batches_computed.load(), 2u);
    EXPECT_EQ(engine.pipeline_stats().epochs_published, 2u);
    // Flushing again is a no-op.
    engine.flush_pipeline();
    EXPECT_EQ(engine.pipeline_stats().epochs_published, 2u);
}

// ----------------------------------------------------- epochs + tokens
TEST(Epochs, AdvanceOnHandOffAndStampWork)
{
    sim::SimEngine engine(pipeline_config(core::UpdatePolicy::kBaseline, 2),
                          sim::MachineParams{}, sim::SwCostParams{},
                          sim::HauCostParams{}, 2000);
    EXPECT_EQ(engine.graph().epoch(), 0u);
    (void)engine.ingest(pipeline_batch(1, 300, 80));
    const auto w1 = engine.take_pending_work();
    EXPECT_EQ(w1.epoch, 1u);
    EXPECT_EQ(engine.graph().epoch(), 1u);
    (void)engine.ingest(pipeline_batch(2, 300, 81));
    const auto w2 = engine.take_pending_work();
    EXPECT_EQ(w2.epoch, 2u);
}

// ------------------------------------------------- sim overlap modeling
TEST(SimEnginePipeline, UpdateCyclesHiddenUnderComputeAtDepthTwo)
{
    sim::SimEngine engine(pipeline_config(core::UpdatePolicy::kBaseline, 2),
                          sim::MachineParams{}, sim::SwCostParams{},
                          sim::HauCostParams{}, 2000);
    const auto r1 = engine.ingest(pipeline_batch(1, 800, 90));
    EXPECT_EQ(r1.update_hidden_cycles, 0u); // nothing in flight yet
    (void)engine.take_pending_work();
    // A compute round larger than any batch's update: the next batches'
    // updates hide completely until the budget drains.
    engine.note_compute_round(r1.update.cycles * 3);
    const auto r2 = engine.ingest(pipeline_batch(2, 800, 91));
    EXPECT_EQ(r2.update_hidden_cycles, r2.update.cycles);
    EXPECT_GT(r2.update_hidden_cycles, 0u);
    // Budget drains monotonically across subsequent ingests.
    const auto r3 = engine.ingest(pipeline_batch(3, 800, 92));
    const auto r4 = engine.ingest(pipeline_batch(4, 800, 93));
    const auto r5 = engine.ingest(pipeline_batch(5, 800, 94));
    const Cycles hidden_total = r2.update_hidden_cycles +
                                r3.update_hidden_cycles +
                                r4.update_hidden_cycles +
                                r5.update_hidden_cycles;
    EXPECT_LE(hidden_total, r1.update.cycles * 3);
    EXPECT_LT(r5.update_hidden_cycles, r5.update.cycles); // budget exhausted
}

TEST(SimEnginePipeline, NoHidingAtDepthOne)
{
    sim::SimEngine engine(pipeline_config(core::UpdatePolicy::kBaseline, 1),
                          sim::MachineParams{}, sim::SwCostParams{},
                          sim::HauCostParams{}, 2000);
    const auto r1 = engine.ingest(pipeline_batch(1, 800, 95));
    (void)engine.take_pending_work();
    engine.note_compute_round(r1.update.cycles * 100);
    const auto r2 = engine.ingest(pipeline_batch(2, 800, 96));
    EXPECT_EQ(r2.update_hidden_cycles, 0u);
}

// ----------------------------------------------------------- move fix
TEST(AdjacencyListMove, MoveConstructionTransfersAndZeroesSource)
{
    graph::AdjacencyList a(16);
    a.apply_insert(3, {4, 1.5f}, Direction::kOut);
    a.apply_insert(4, {3, 1.5f}, Direction::kIn);
    a.advance_epoch();
    graph::AdjacencyList b(std::move(a));
    EXPECT_EQ(b.num_vertices(), 16u);
    EXPECT_EQ(b.num_edges(), 1u);
    EXPECT_EQ(b.epoch(), 1u);
    EXPECT_EQ(b.degree(3, Direction::kOut), 1u);
    // The moved-from graph is empty and reusable, not half-alive.
    EXPECT_EQ(a.num_vertices(), 0u);   // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(a.num_edges(), 0u);
    EXPECT_EQ(a.epoch(), 0u);
    a.ensure_vertices(4);
    a.apply_insert(0, {1, 1.0f}, Direction::kOut);
    EXPECT_EQ(a.num_edges(), 1u);
    static_assert(!std::is_move_assignable_v<graph::AdjacencyList>);
}

} // namespace
} // namespace igs
