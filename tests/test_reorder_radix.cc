/**
 * @file
 * Property tests for the radix reorder pipeline and its arena plumbing:
 *
 *  - the radix path is *identical* (edges and runs) to the comparison-sort
 *    oracle across batch sizes, key ranges (single- and multi-pass),
 *    deletions, duplicates, and weights;
 *  - a RealTimeEngine configured with either reorder mode reaches the same
 *    final graph under every policy;
 *  - FlatWeightTable behaves like the map it replaces;
 *  - the steady-state reorder path performs zero heap allocations.
 */
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_counter.h"
#include "common/flat_table.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "sim/sim_engine.h"
#include "gen/edge_stream.h"
#include "stream/reorder.h"

namespace igs::stream {
namespace {

std::vector<StreamEdge>
random_edges(std::size_t n, std::uint64_t seed, double delete_fraction,
             std::uint32_t vertices)
{
    gen::StreamModel m;
    m.num_vertices = vertices;
    m.num_hubs = std::min<std::uint32_t>(8, vertices / 2);
    m.hub_mass_dst = 0.2;
    m.delete_fraction = delete_fraction;
    m.weighted = true;
    m.seed = seed;
    return gen::EdgeStreamGenerator(m).take(n);
}

void
expect_identical(const ReorderedBatch& oracle, const ReorderedBatch& radix)
{
    EXPECT_EQ(oracle.batch_size, radix.batch_size);
    EXPECT_EQ(oracle.by_src.edges, radix.by_src.edges);
    EXPECT_EQ(oracle.by_dst.edges, radix.by_dst.edges);
    EXPECT_EQ(oracle.by_src.runs, radix.by_src.runs);
    EXPECT_EQ(oracle.by_dst.runs, radix.by_dst.runs);
}

// ------------------------------------------------ radix == oracle property
struct RadixCase {
    std::size_t n;
    double delete_fraction;
    std::uint32_t vertices;
};

class RadixOracleTest : public ::testing::TestWithParam<RadixCase> {};

TEST_P(RadixOracleTest, MatchesComparisonSortExactly)
{
    const RadixCase c = GetParam();
    ThreadPool& pool = default_pool();
    Reorderer radix(ReorderMode::kRadix);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto edges =
            random_edges(c.n, seed, c.delete_fraction, c.vertices);
        const ReorderedBatch oracle = reorder_batch(edges, pool);
        const ReorderedBatch& rb = radix.reorder(edges, pool);
        expect_identical(oracle, rb);
        EXPECT_EQ(radix.last_max_vertex(), max_vertex_of(edges));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixOracleTest,
    ::testing::Values(
        // Small batches take the 8-bit plan; duplicates are guaranteed by
        // the tiny vertex space.
        RadixCase{1, 0.0, 10}, RadixCase{100, 0.0, 20},
        RadixCase{500, 0.2, 50},
        // Large batches take the fused 16-bit plan.
        RadixCase{5000, 0.0, 300}, RadixCase{20000, 0.15, 3000},
        // Vertex ids beyond 2^16 force the multi-pass (ping-pong) path.
        RadixCase{5000, 0.0, 200000}, RadixCase{50000, 0.1, 1000000}));

TEST(RadixReorder, EmptyBatch)
{
    Reorderer radix(ReorderMode::kRadix);
    const ReorderedBatch& rb = radix.reorder({}, default_pool());
    EXPECT_EQ(rb.batch_size, 0u);
    EXPECT_TRUE(rb.by_src.runs.empty());
    EXPECT_TRUE(rb.by_dst.runs.empty());
    EXPECT_EQ(radix.last_max_vertex(), 0u);
}

TEST(RadixReorder, ArenaSurvivesShrinkingAndGrowingBatches)
{
    ThreadPool& pool = default_pool();
    Reorderer radix(ReorderMode::kRadix);
    // Alternate sizes and key ranges so scratch reuse crosses plan shapes.
    const std::size_t sizes[] = {10000, 100, 30000, 1, 5000};
    const std::uint32_t spaces[] = {500, 40, 300000, 5, 70000};
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const auto edges = random_edges(sizes[i], 77 + i, 0.1, spaces[i]);
        expect_identical(reorder_batch(edges, pool),
                         radix.reorder(edges, pool));
    }
}

// -------------------------------------------- engine-level mode equivalence
class ReorderModeEngineTest
    : public ::testing::TestWithParam<core::UpdatePolicy> {};

TEST_P(ReorderModeEngineTest, FinalGraphIndependentOfReorderMode)
{
    core::EngineConfig radix_cfg;
    radix_cfg.policy = GetParam();
    radix_cfg.reorder_mode = ReorderMode::kRadix;
    core::EngineConfig cmp_cfg = radix_cfg;
    cmp_cfg.reorder_mode = ReorderMode::kComparison;

    core::RealTimeEngine a(radix_cfg, 100);
    core::RealTimeEngine b(cmp_cfg, 100);
    for (std::uint64_t k = 1; k <= 6; ++k) {
        EdgeBatch batch(k, random_edges(2000, 500 + k, 0.15, 400));
        a.ingest(batch);
        b.ingest(batch);
    }
    EXPECT_TRUE(a.graph().same_topology(b.graph()));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ReorderModeEngineTest,
    ::testing::Values(core::UpdatePolicy::kBaseline,
                      core::UpdatePolicy::kAlwaysReorder,
                      core::UpdatePolicy::kAlwaysReorderUsc,
                      core::UpdatePolicy::kAbr,
                      core::UpdatePolicy::kAbrUsc,
                      core::UpdatePolicy::kAbrUscHau));

TEST(ReorderModeSim, ModeledCyclesBitIdenticalAcrossModes)
{
    // The host reorder algorithm must be invisible to the timing model:
    // identical reorderings, identical charge_sort accounting, identical
    // per-batch cycles.  Guards the "figures unchanged" property.
    core::EngineConfig radix_cfg;
    radix_cfg.policy = core::UpdatePolicy::kAbrUscHau;
    radix_cfg.oca.enabled = true;
    radix_cfg.reorder_mode = ReorderMode::kRadix;
    core::EngineConfig cmp_cfg = radix_cfg;
    cmp_cfg.reorder_mode = ReorderMode::kComparison;

    sim::SimEngine a(radix_cfg, sim::MachineParams{}, sim::SwCostParams{},
                      sim::HauCostParams{}, 400);
    sim::SimEngine b(cmp_cfg, sim::MachineParams{}, sim::SwCostParams{},
                      sim::HauCostParams{}, 400);
    for (std::uint64_t k = 1; k <= 8; ++k) {
        EdgeBatch batch(k, random_edges(3000, 900 + k, 0.1, 400));
        const core::BatchReport ra = a.ingest(batch);
        const core::BatchReport rb = b.ingest(batch);
        EXPECT_EQ(ra.update.cycles, rb.update.cycles) << "batch " << k;
        EXPECT_EQ(ra.reordered, rb.reordered) << "batch " << k;
    }
}

// ------------------------------------------------------- flat weight table
TEST(FlatWeightTable, AccumulatesAndTakes)
{
    FlatWeightTable t;
    t.reset(4);
    t.add(7, 1.0f);
    t.add(9, 2.0f);
    t.add(7, 0.5f); // duplicate accumulates
    EXPECT_EQ(t.size(), 2u);

    Weight w = 0.0f;
    EXPECT_TRUE(t.drain(7, &w));
    EXPECT_FLOAT_EQ(w, 1.5f);
    EXPECT_FALSE(t.drain(7, &w)); // already taken
    EXPECT_FALSE(t.drain(42, &w)); // never inserted
    EXPECT_EQ(t.size(), 1u);

    // Remaining entries iterate in insertion order, skipping taken ones.
    std::vector<VertexId> keys;
    t.for_each([&](VertexId k, Weight) { keys.push_back(k); });
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], 9u);
}

TEST(FlatWeightTable, ResetClearsLogically)
{
    FlatWeightTable t;
    t.reset(8);
    for (VertexId v = 0; v < 8; ++v) {
        t.add(v, 1.0f);
    }
    t.reset(2); // new epoch: previous entries must be invisible
    EXPECT_TRUE(t.empty());
    Weight w = 0.0f;
    EXPECT_FALSE(t.drain(3, &w));
    t.add(3, 4.0f);
    EXPECT_TRUE(t.drain(3, &w));
    EXPECT_FLOAT_EQ(w, 4.0f);
}

TEST(FlatWeightTable, MatchesUnorderedMapOnRandomRuns)
{
    FlatWeightTable t;
    const auto edges = random_edges(5000, 11, 0.0, 64); // heavy duplication
    t.reset(edges.size());
    std::unordered_map<VertexId, Weight> ref;
    for (const StreamEdge& e : edges) {
        t.add(e.dst, e.weight);
        ref[e.dst] += e.weight;
    }
    EXPECT_EQ(t.size(), ref.size());
    std::size_t seen = 0;
    t.for_each([&](VertexId k, Weight w) {
        ASSERT_TRUE(ref.count(k));
        EXPECT_FLOAT_EQ(w, ref[k]);
        ++seen;
    });
    EXPECT_EQ(seen, ref.size());
}

// ----------------------------------------------- steady-state allocations
class SteadyStateAllocTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SteadyStateAllocTest, RadixReorderIsAllocationFree)
{
    const std::size_t n = GetParam();
    ThreadPool& pool = default_pool();
    Reorderer radix(ReorderMode::kRadix);
    // Key space > 2^16 so even the multi-pass path must stay clean.
    const auto edges = random_edges(n, 5, 0.1, 100000);

    radix.reorder(edges, pool); // grow the arena
    radix.reorder(edges, pool); // confirm shape is stable

    set_alloc_tracking(true);
    radix.reorder(edges, pool);
    set_alloc_tracking(false);
    EXPECT_EQ(tracked_alloc_count(), 0u)
        << "steady-state radix reorder touched the allocator";
}

INSTANTIATE_TEST_SUITE_P(Sizes, SteadyStateAllocTest,
                         ::testing::Values(100, 20000));

} // namespace
} // namespace igs::stream
