/**
 * @file
 * Concurrency stress tests — the TSan leg's primary workload
 * (tools/check_matrix.sh tsan) and the runtime half of the static
 * thread-safety story: ConcurrentHashMap under write contention, the
 * per-vertex Spinlock path of the baseline updater from N real threads,
 * ThreadPool fork/join handshakes, and the debug-mode Spinlock owner
 * assertion (double unlock must trip IGS_CHECK, not corrupt state).
 */
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/concurrent_hash_map.h"
#include "common/spinlock.h"
#include "common/thread_pool.h"
#include "gen/edge_stream.h"
#include "graph/adjacency_list.h"
#include "graph/hybrid_store.h"
#include "graph/store_tuning.h"
#include "stream/batch.h"
#include "stream/reorder.h"
#include "stream/update_context.h"
#include "stream/updaters.h"

namespace igs {
namespace {

constexpr std::size_t kThreads = 8;

/** Run `fn(thread_index)` on `n` plain std::threads and join them. */
template <typename Fn>
void
on_threads(std::size_t n, Fn&& fn)
{
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
        threads.emplace_back([&fn, t] { fn(t); });
    }
    for (auto& th : threads) {
        th.join();
    }
}

// ----------------------------------------------------- ConcurrentHashMap

TEST(ConcurrencyHashMap, ParallelUpdatesSumExactly)
{
    constexpr std::size_t kOpsPerThread = 20000;
    constexpr std::uint64_t kKeys = 512;
    ConcurrentHashMap<std::uint64_t, std::uint64_t> map(kKeys);

    on_threads(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < kOpsPerThread; ++i) {
            const std::uint64_t key = (t * 7919 + i * 31) % kKeys;
            map.update(key, [](std::uint64_t& v) { ++v; });
        }
    });

    std::uint64_t total = 0;
    map.for_each([&](std::uint64_t, std::uint64_t v) { total += v; });
    EXPECT_EQ(total, kThreads * kOpsPerThread);
    EXPECT_EQ(map.size(), kKeys);
}

TEST(ConcurrencyHashMap, SingleShardContentionAndGrowth)
{
    // One shard serializes every writer on one Spinlock, and the tiny
    // initial capacity forces grow() to run under contention.
    ConcurrentHashMap<std::uint64_t, std::uint64_t> map(/*expected_size=*/4,
                                                        /*shards=*/1);
    constexpr std::size_t kOpsPerThread = 4000;
    on_threads(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < kOpsPerThread; ++i) {
            map.update(t * kOpsPerThread + i, [](std::uint64_t& v) { ++v; });
        }
    });
    EXPECT_EQ(map.size(), kThreads * kOpsPerThread);
}

// --------------------------------------------------------------- Spinlock

TEST(ConcurrencySpinlock, MutualExclusionOverPlainCounter)
{
    Spinlock lock;
    std::uint64_t counter = 0; // deliberately non-atomic: the lock is the
                               // only thing keeping this race-free
    constexpr std::size_t kIters = 50000;
    on_threads(kThreads, [&](std::size_t) {
        for (std::size_t i = 0; i < kIters; ++i) {
            SpinlockGuard lk(lock);
            ++counter;
        }
    });
    EXPECT_EQ(counter, kThreads * kIters);
}

TEST(ConcurrencySpinlock, TryLockRespectsHolder)
{
    Spinlock lock;
    lock.lock();
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(ConcurrencySpinlock, StripedLocksSerializePerStripe)
{
    StripedLocks locks(64);
    std::vector<std::uint64_t> counters(16, 0);
    constexpr std::size_t kIters = 20000;
    on_threads(kThreads, [&](std::size_t) {
        for (std::size_t i = 0; i < kIters; ++i) {
            const std::uint64_t key = i % counters.size();
            SpinlockGuard lk(locks.for_key(key));
            ++counters[key];
        }
    });
    std::uint64_t total = 0;
    for (const std::uint64_t c : counters) {
        total += c;
    }
    EXPECT_EQ(total, kThreads * kIters);
}

TEST(ConcurrencySpinlock, SpinlockArrayIndexesIndependentLocks)
{
    SpinlockArray locks(4);
    ASSERT_EQ(locks.size(), 4u);
    locks[0].lock();
    EXPECT_TRUE(locks[1].try_lock()); // distinct lock, not blocked by [0]
    locks[1].unlock();
    locks[0].unlock();
    locks.resize(8);
    EXPECT_EQ(locks.size(), 8u);
    EXPECT_TRUE(locks[7].try_lock());
    locks[7].unlock();
}

#if defined(__SANITIZE_THREAD__)
#define IGS_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IGS_TEST_TSAN 1
#endif
#endif

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST) && \
    !defined(IGS_TEST_TSAN)
// Debug builds track the owning thread; unlocking a lock this thread does
// not hold must abort via IGS_CHECK instead of silently releasing someone
// else's critical section. (Skipped under TSan: death tests fork, and
// TSan's own report machinery interferes with the abort-message match.)
TEST(ConcurrencySpinlockDeathTest, DoubleUnlockTripsOwnerCheckInDebug)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    Spinlock lock;
    lock.lock();
    lock.unlock();
    EXPECT_DEATH(lock.unlock(), "non-owner");
}

TEST(ConcurrencySpinlockDeathTest, UnlockWithoutLockTripsOwnerCheckInDebug)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    Spinlock lock;
    EXPECT_DEATH(lock.unlock(), "non-owner");
}
#endif

// -------------------------------------------------------------- ThreadPool

TEST(ConcurrencyThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(kThreads);
    constexpr std::size_t kN = 1 << 18;
    std::vector<std::atomic<std::uint8_t>> seen(kN);
    pool.parallel_for(0, kN, [&](std::size_t i) {
        seen[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(seen[i].load(std::memory_order_relaxed), 1u);
    }
}

TEST(ConcurrencyThreadPool, RepeatedForkJoinEpochsStayCoherent)
{
    ThreadPool pool(kThreads);
    std::atomic<std::uint64_t> sum{0};
    constexpr std::size_t kRounds = 200;
    constexpr std::size_t kN = 1000;
    for (std::size_t r = 0; r < kRounds; ++r) {
        pool.parallel_for(0, kN, [&](std::size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        }, /*chunk=*/16);
    }
    EXPECT_EQ(sum.load(std::memory_order_relaxed),
              kRounds * (kN * (kN - 1) / 2));
}

TEST(ConcurrencyThreadPool, ParallelChunksWorkerIdsInBounds)
{
    ThreadPool pool(kThreads);
    std::atomic<bool> out_of_bounds{false};
    std::atomic<std::uint64_t> covered{0};
    pool.parallel_chunks(0, 100000, [&](std::size_t tid, std::size_t lo,
                                        std::size_t hi) {
        if (tid >= pool.size()) {
            out_of_bounds.store(true, std::memory_order_relaxed);
        }
        covered.fetch_add(hi - lo, std::memory_order_relaxed);
    });
    EXPECT_FALSE(out_of_bounds.load(std::memory_order_relaxed));
    EXPECT_EQ(covered.load(std::memory_order_relaxed), 100000u);
}

// ------------------------------------------------------------- OcaProbe

TEST(ConcurrencyOcaProbe, ConcurrentNotesCountExactly)
{
    stream::OcaProbe probe;
    constexpr std::size_t kNotes = 20000;
    on_threads(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < kNotes; ++i) {
            // Alternate overlapping (prev_bid + 1 == bid) and fresh notes.
            probe.note(i % 2 == 0 ? 4 : 0, 5);
        }
        (void)t;
    });
    EXPECT_EQ(probe.unique_nodes(), kThreads * kNotes);
    EXPECT_EQ(probe.overlapping_nodes(), kThreads * kNotes / 2);
    EXPECT_DOUBLE_EQ(probe.ratio(), 0.5);
}

// --------------------------------------- per-vertex lock path end-to-end

/** A high-contention batch: many edges over few vertices, so every vertex
 *  lock is fought over by multiple workers. Weights stay 1.0f: weight
 *  accumulation commutes exactly for small integers, so parallel and
 *  serial application agree bit-for-bit. */
stream::EdgeBatch
contended_batch(std::size_t n, std::uint64_t seed, double delete_fraction)
{
    gen::StreamModel m;
    m.num_vertices = 48; // few vertices -> heavy per-vertex lock contention
    m.num_hubs = 4;
    m.hub_mass_dst = 0.4;
    m.delete_fraction = delete_fraction;
    m.weighted = false;
    m.seed = seed;
    return stream::EdgeBatch(1, gen::EdgeStreamGenerator(m).take(n));
}

TEST(ConcurrencyUpdatePath, BaselineLockPathMatchesSerialUnderContention)
{
    const stream::EdgeBatch batch = contended_batch(60000, 77, 0.1);

    graph::AdjacencyList serial(64);
    {
        ThreadPool one(1);
        stream::RealContext ctx(one);
        stream::apply_batch_baseline(serial, batch, ctx);
    }

    graph::AdjacencyList parallel(64);
    {
        ThreadPool pool(kThreads);
        stream::RealContext ctx(pool);
        stream::apply_batch_baseline(parallel, batch, ctx);
    }

    EXPECT_TRUE(parallel.same_topology(serial));
    EXPECT_EQ(parallel.num_edges(), serial.num_edges());
}

TEST(ConcurrencyUpdatePath, UscRealPathMatchesBaselineUnderContention)
{
    const stream::EdgeBatch batch = contended_batch(60000, 78, 0.1);

    graph::AdjacencyList baseline(64);
    {
        ThreadPool one(1);
        stream::RealContext ctx(one);
        stream::apply_batch_baseline(baseline, batch, ctx);
    }

    graph::AdjacencyList usc(64);
    {
        ThreadPool pool(kThreads);
        const stream::ReorderedBatch rb =
            stream::reorder_batch(batch.edges(), pool);
        stream::RealContext ctx(pool);
        stream::apply_batch_usc(usc, batch, rb, ctx);
    }

    EXPECT_TRUE(usc.same_topology(baseline));
    EXPECT_EQ(usc.num_edges(), baseline.num_edges());
}

// Same two contention properties on the three-tier hybrid store: tier
// promotions happen under the per-vertex locks (baseline path) or run
// ownership (USC path), so a parallel run must still match the serial
// one exactly.

TEST(ConcurrencyUpdatePath, HybridBaselineLockPathMatchesSerialUnderContention)
{
    const stream::EdgeBatch batch = contended_batch(60000, 79, 0.1);
    graph::StoreTuning tuning;
    tuning.hybrid_sorted_threshold = 16; // hubs cross both tiers

    graph::HybridStore serial(64, tuning);
    {
        ThreadPool one(1);
        stream::RealContext ctx(one);
        stream::apply_batch_baseline(serial, batch, ctx);
    }

    graph::HybridStore parallel(64, tuning);
    {
        ThreadPool pool(kThreads);
        stream::RealContext ctx(pool);
        stream::apply_batch_baseline(parallel, batch, ctx);
    }

    EXPECT_TRUE(parallel.same_topology(serial));
    EXPECT_EQ(parallel.num_edges(), serial.num_edges());
    EXPECT_GT(parallel.tier_census().vertices[2], 0u);
}

TEST(ConcurrencyUpdatePath, HybridUscRealPathMatchesBaselineUnderContention)
{
    const stream::EdgeBatch batch = contended_batch(60000, 80, 0.1);
    graph::StoreTuning tuning;
    tuning.hybrid_sorted_threshold = 16;

    graph::HybridStore baseline(64, tuning);
    {
        ThreadPool one(1);
        stream::RealContext ctx(one);
        stream::apply_batch_baseline(baseline, batch, ctx);
    }

    graph::HybridStore usc(64, tuning);
    {
        ThreadPool pool(kThreads);
        const stream::ReorderedBatch rb =
            stream::reorder_batch(batch.edges(), pool);
        stream::RealContext ctx(pool);
        stream::apply_batch_usc(usc, batch, rb, ctx);
    }

    EXPECT_TRUE(usc.same_topology(baseline));
    EXPECT_EQ(usc.num_edges(), baseline.num_edges());
}

} // namespace
} // namespace igs
