/**
 * @file
 * Tests for the three-tier hybrid adjacency store (DESIGN.md §12): tier
 * transitions and promotion bookkeeping, hash-tier backshift deletion,
 * randomized equivalence against a reference model, cross-backend
 * equivalence of AdjacencyList / DegreeAwareHash / HybridStore under
 * mixed insert/delete schedules (including across tier-promotion
 * boundaries), analytics equality, and the backend-selectable real-time
 * engine (AnyRealTimeEngine, pipeline mode included).
 */
#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "common/flat_table.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "gen/edge_stream.h"
#include "graph/adjacency_list.h"
#include "graph/csr_snapshot.h"
#include "graph/degree_aware_hash.h"
#include "graph/hybrid_store.h"
#include "graph/store_tuning.h"
#include "stream/batch.h"

#include "test_support.h"

namespace igs::graph {
namespace {

constexpr Direction kOut = Direction::kOut;
constexpr Direction kIn = Direction::kIn;

using testutil::mixed_stream;
using testutil::tight_tuning;

// ------------------------------------------------------ tier transitions

TEST(HybridStore, InlineTierHoldsSmallDegrees)
{
    HybridStore g(4);
    for (VertexId t = 0; t < HybridEdgeSet::kInlineCapacity; ++t) {
        const auto r = g.apply_insert(0, {t + 10, 1.0f}, kOut);
        EXPECT_FALSE(r.found);
    }
    EXPECT_EQ(g.tier(0, kOut), HybridEdgeSet::kInline);
    EXPECT_EQ(g.degree(0, kOut), HybridEdgeSet::kInlineCapacity);
    // Duplicate stays inline and accumulates.
    const auto r = g.apply_insert(0, {10, 2.5f}, kOut);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(g.tier(0, kOut), HybridEdgeSet::kInline);
    EXPECT_FLOAT_EQ(g.sorted_edges(0, kOut).front().weight, 3.5f);
}

TEST(HybridStore, PromotesToSortedPastInlineCapacity)
{
    HybridStore g(4);
    for (VertexId t = 0; t <= HybridEdgeSet::kInlineCapacity; ++t) {
        g.apply_insert(0, {t + 10, 1.0f}, kOut);
    }
    EXPECT_EQ(g.tier(0, kOut), HybridEdgeSet::kSorted);
    EXPECT_EQ(g.degree(0, kOut), HybridEdgeSet::kInlineCapacity + 1);
    // The sorted tier keeps the span contiguous and the ids ordered.
    const auto view = g.edges(0, kOut);
    EXPECT_TRUE(std::is_sorted(view.begin(), view.end(),
                               [](const Neighbor& a, const Neighbor& b) {
                                   return a.id < b.id;
                               }));
}

TEST(HybridStore, PromotesToHashAtSortedThreshold)
{
    HybridStore g(4, tight_tuning());
    const std::uint32_t thr = g.tuning().hybrid_sorted_threshold;
    // Promotion fires when the degree reaches the threshold.
    for (VertexId t = 0; t + 1 < thr; ++t) {
        g.apply_insert(0, {t + 10, 1.0f}, kOut);
        EXPECT_NE(g.tier(0, kOut), HybridEdgeSet::kHashed);
    }
    g.apply_insert(0, {999, 1.0f}, kOut);
    EXPECT_EQ(g.tier(0, kOut), HybridEdgeSet::kHashed);
    EXPECT_EQ(g.degree(0, kOut), thr);
    // Duplicate check is now through the index; weight still accumulates.
    const auto r = g.apply_insert(0, {999, 0.5f}, kOut);
    EXPECT_TRUE(r.found);
    const auto sorted = g.sorted_edges(0, kOut);
    const auto it = std::find_if(sorted.begin(), sorted.end(),
                                 [](const Neighbor& n) { return n.id == 999; });
    ASSERT_NE(it, sorted.end());
    EXPECT_FLOAT_EQ(it->weight, 1.5f);
}

TEST(HybridStore, DuplicateAccumulatesAcrossBothPromotions)
{
    HybridStore g(2, tight_tuning());
    // id 10 goes in at tier 0 and is re-inserted at every tier.
    g.apply_insert(0, {10, 1.0f}, kOut);
    g.apply_insert(0, {10, 1.0f}, kOut); // inline hit
    for (VertexId t = 0; t < 6; ++t) {
        g.apply_insert(0, {t + 100, 1.0f}, kOut); // -> sorted
    }
    EXPECT_EQ(g.tier(0, kOut), HybridEdgeSet::kSorted);
    g.apply_insert(0, {10, 1.0f}, kOut); // sorted hit
    for (VertexId t = 0; t < 8; ++t) {
        g.apply_insert(0, {t + 200, 1.0f}, kOut); // -> hashed
    }
    EXPECT_EQ(g.tier(0, kOut), HybridEdgeSet::kHashed);
    g.apply_insert(0, {10, 1.0f}, kOut); // hash hit
    const auto sorted = g.sorted_edges(0, kOut);
    ASSERT_EQ(sorted.front().id, 10u);
    EXPECT_FLOAT_EQ(sorted.front().weight, 4.0f);
}

TEST(HybridStore, RemoveWorksAtEveryTierAndNeverDemotes)
{
    HybridStore g(2, tight_tuning());
    // Inline removal.
    g.apply_insert(0, {10, 1.0f}, kOut);
    g.apply_insert(0, {11, 1.0f}, kOut);
    EXPECT_TRUE(g.apply_remove(0, 10, kOut).found);
    EXPECT_EQ(g.degree(0, kOut), 1u);
    EXPECT_EQ(g.num_edges(), 1u);

    // Build up to the hash tier, then shrink below every threshold: the
    // representation must stay hashed and stay correct.
    for (VertexId t = 0; t < 20; ++t) {
        g.apply_insert(1, {t, 1.0f}, kOut);
    }
    EXPECT_EQ(g.tier(1, kOut), HybridEdgeSet::kHashed);
    for (VertexId t = 0; t < 18; ++t) {
        EXPECT_TRUE(g.apply_remove(1, t, kOut).found);
    }
    EXPECT_EQ(g.tier(1, kOut), HybridEdgeSet::kHashed);
    EXPECT_EQ(g.degree(1, kOut), 2u);
    const auto sorted = g.sorted_edges(1, kOut);
    EXPECT_EQ(sorted[0].id, 18u);
    EXPECT_EQ(sorted[1].id, 19u);
    // Deleted keys can come back (index slots were backshifted, not
    // tombstoned).
    EXPECT_FALSE(g.apply_insert(1, {5, 1.0f}, kOut).found);
    EXPECT_EQ(g.degree(1, kOut), 3u);
}

TEST(HybridStore, DeleteOfMissingIsNoOpAtEveryTier)
{
    HybridStore g(3, tight_tuning());
    g.apply_insert(0, {1, 1.0f}, kOut); // inline
    for (VertexId t = 0; t < 6; ++t) {
        g.apply_insert(1, {t, 1.0f}, kOut); // sorted
    }
    for (VertexId t = 0; t < 12; ++t) {
        g.apply_insert(2, {t, 1.0f}, kOut); // hashed
    }
    const EdgeId before = g.num_edges();
    EXPECT_FALSE(g.apply_remove(0, 999, kOut).found);
    EXPECT_FALSE(g.apply_remove(1, 999, kOut).found);
    EXPECT_FALSE(g.apply_remove(2, 999, kOut).found);
    EXPECT_EQ(g.num_edges(), before);
}

TEST(HybridStore, EnsureVerticesPreservesEdgesAndBids)
{
    HybridStore g(2);
    g.apply_insert(0, {1, 2.0f}, kOut);
    g.apply_insert(1, {0, 3.0f}, kIn);
    g.exchange_latest_bid(1, 42);
    g.ensure_vertices(100);
    EXPECT_EQ(g.num_vertices(), 100u);
    EXPECT_EQ(g.degree(0, kOut), 1u);
    EXPECT_FLOAT_EQ(g.edges(1, kIn).front().weight, 3.0f);
    EXPECT_EQ(g.latest_bid(1), 42u);
}

TEST(HybridStore, TierCensusCountsOutSets)
{
    HybridStore g(3, tight_tuning());
    g.apply_insert(0, {1, 1.0f}, kOut); // inline
    for (VertexId t = 0; t < 6; ++t) {
        g.apply_insert(1, {t, 1.0f}, kOut); // sorted
    }
    for (VertexId t = 0; t < 12; ++t) {
        g.apply_insert(2, {t, 1.0f}, kOut); // hashed
    }
    const auto census = g.tier_census();
    EXPECT_EQ(census.vertices[0], 1u);
    EXPECT_EQ(census.vertices[1], 1u);
    EXPECT_EQ(census.vertices[2], 1u);
    g.publish_tier_telemetry(); // must not crash; gauge values are exported
}

TEST(HybridStore, ApplyCoalescedMatchesIndividualInserts)
{
    const StoreTuning tuning = tight_tuning();
    HybridStore coalesced(2, tuning);
    HybridStore individual(2, tuning);
    for (VertexId t = 0; t < 10; ++t) {
        coalesced.apply_insert(0, {t, 1.0f}, kOut);
        individual.apply_insert(0, {t, 1.0f}, kOut);
    }
    // Half the table hits existing edges, half appends new ones.
    FlatWeightTable table;
    table.reset(8);
    for (VertexId t = 6; t < 14; ++t) {
        table.add(t, 0.5f);
        individual.apply_insert(0, {t, 0.5f}, kOut);
    }
    const std::size_t appended = coalesced.apply_coalesced(0, kOut, table);
    EXPECT_EQ(appended, 4u);
    EXPECT_EQ(coalesced.num_edges(), individual.num_edges());
    EXPECT_TRUE(coalesced.same_topology(individual));
}

TEST(HybridStore, MoveTransfersState)
{
    HybridStore a(4, tight_tuning());
    for (VertexId t = 0; t < 12; ++t) {
        a.apply_insert(0, {t, 1.0f}, kOut);
    }
    a.advance_epoch();
    HybridStore b(std::move(a));
    EXPECT_EQ(b.num_vertices(), 4u);
    EXPECT_EQ(b.num_edges(), 12u);
    EXPECT_EQ(b.tier(0, kOut), HybridEdgeSet::kHashed);
    EXPECT_EQ(b.epoch(), 1u);
    EXPECT_EQ(a.num_edges(), 0u);
}

// ------------------------------------------- randomized reference model

/** Randomized insert/remove against a std::map reference (the DAH
 *  property test, re-run across the hybrid tier ladder). */
class HybridRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridRandomTest, MatchesReferenceModel)
{
    Rng rng(GetParam());
    HybridStore g(8, tight_tuning());
    std::map<VertexId, float> reference;
    for (int op = 0; op < 4000; ++op) {
        const auto t = static_cast<VertexId>(rng.below(200));
        if (rng.chance(0.3) && !reference.empty()) {
            const auto victim = static_cast<VertexId>(rng.below(200));
            const auto r = g.apply_remove(0, victim, kOut);
            EXPECT_EQ(r.found, reference.erase(victim) > 0);
        } else {
            const float w = static_cast<float>(rng.uniform(0.5, 1.5));
            const auto r = g.apply_insert(0, {t, w}, kOut);
            EXPECT_EQ(r.found, reference.count(t) > 0);
            reference[t] += w;
        }
    }
    EXPECT_EQ(g.tier(0, kOut), HybridEdgeSet::kHashed);
    const auto sorted = g.sorted_edges(0, kOut);
    ASSERT_EQ(sorted.size(), reference.size());
    std::size_t i = 0;
    for (const auto& [id, w] : reference) {
        EXPECT_EQ(sorted[i].id, id);
        EXPECT_NEAR(sorted[i].weight, w, 1e-3);
        ++i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------- cross-backend equivalence

TEST(CrossBackendEquivalence, IdenticalStateUnderMixedSchedules)
{
    for (const std::uint64_t seed : {21u, 22u, 23u}) {
        const auto edges = mixed_stream(12000, seed);
        const StoreTuning tuning = tight_tuning();
        AdjacencyList as(300);
        DegreeAwareHash dah(300, tuning);
        HybridStore hybrid(300, tuning);
        // Same engine-wide schedule on all three: the batch's insertions
        // first, then its deletions.
        const auto apply_all = [&edges](auto& g) {
            for (const StreamEdge& e : edges) {
                if (!e.is_delete) {
                    g.apply_insert(e.src, {e.dst, e.weight}, kOut);
                    g.apply_insert(e.dst, {e.src, e.weight}, kIn);
                }
            }
            for (const StreamEdge& e : edges) {
                if (e.is_delete) {
                    g.apply_remove(e.src, e.dst, kOut);
                    g.apply_remove(e.dst, e.src, kIn);
                }
            }
        };
        apply_all(as);
        apply_all(dah);
        apply_all(hybrid);

        EXPECT_EQ(hybrid.num_edges(), as.num_edges());
        EXPECT_EQ(dah.num_edges(), as.num_edges());
        EXPECT_TRUE(hybrid.same_topology(as));
        EXPECT_TRUE(hybrid.same_topology(dah));
        // Identical application order -> bitwise-identical weights.
        for (VertexId v = 0; v < 300; ++v) {
            for (Direction dir : {kOut, kIn}) {
                const auto ea = as.sorted_edges(v, dir);
                const auto eh = hybrid.sorted_edges(v, dir);
                ASSERT_EQ(ea.size(), eh.size());
                for (std::size_t i = 0; i < ea.size(); ++i) {
                    ASSERT_EQ(ea[i].id, eh[i].id);
                    ASSERT_EQ(ea[i].weight, eh[i].weight);
                }
            }
        }
        // The stream's hubs must actually have crossed into the hash tier
        // for this test to cover promotions.
        EXPECT_GT(hybrid.tier_census().vertices[2], 0u);
    }
}

TEST(CrossBackendEquivalence, AnalyticsAgreeAcrossBackends)
{
    const auto edges = mixed_stream(8000, 31);
    AdjacencyList as(300);
    HybridStore hybrid(300, tight_tuning());
    for (const StreamEdge& e : edges) {
        if (e.is_delete) {
            continue;
        }
        as.apply_insert(e.src, {e.dst, e.weight}, kOut);
        as.apply_insert(e.dst, {e.src, e.weight}, kIn);
        hybrid.apply_insert(e.src, {e.dst, e.weight}, kOut);
        hybrid.apply_insert(e.dst, {e.src, e.weight}, kIn);
    }
    // CSR canonicalization produces identical snapshots.
    const CsrSnapshot ca = CsrSnapshot::build(as, kOut);
    const CsrSnapshot ch = CsrSnapshot::build(hybrid, kOut);
    ASSERT_EQ(ca.num_vertices(), ch.num_vertices());
    ASSERT_EQ(ca.num_edges(), ch.num_edges());
    for (VertexId v = 0; v < ca.num_vertices(); ++v) {
        const auto ra = ca.neighbors(v);
        const auto rh = ch.neighbors(v);
        ASSERT_EQ(ra.size(), rh.size());
        for (std::size_t i = 0; i < ra.size(); ++i) {
            EXPECT_EQ(ra[i].id, rh[i].id);
            EXPECT_EQ(ra[i].weight, rh[i].weight);
        }
    }
    // Full static PageRank over both dynamic reads.  Iteration order of
    // the in-edge sets differs (tier promotion re-sorts edge data), so
    // rank sums associate differently; anything beyond rounding noise is
    // a content divergence.
    const auto pra = analytics::static_pagerank(as);
    const auto prh = analytics::static_pagerank(hybrid);
    ASSERT_EQ(pra.size(), prh.size());
    for (std::size_t v = 0; v < pra.size(); ++v) {
        EXPECT_NEAR(pra[v], prh[v], 1e-9);
    }
}

} // namespace
} // namespace igs::graph

// --------------------------------------------- backend-selectable engine

namespace igs {
namespace {

using testutil::engine_batch;

TEST(AnyRealTimeEngine, HybridBackendMatchesAdjacencyListBackend)
{
    ThreadPool pool(1); // identical task order -> bit-identical weights
    core::EngineConfig cfg;
    cfg.policy = core::UpdatePolicy::kAbrUsc;

    core::AnyRealTimeEngine as_engine(cfg, 500, pool);
    cfg.graph_backend = core::GraphBackend::kHybrid;
    core::AnyRealTimeEngine hy_engine(cfg, 500, pool);
    EXPECT_EQ(as_engine.backend(), core::GraphBackend::kAdjacencyList);
    EXPECT_EQ(hy_engine.backend(), core::GraphBackend::kHybrid);

    for (std::uint64_t k = 1; k <= 6; ++k) {
        const auto ra =
            as_engine.ingest(engine_batch(k, 3000, 50 + k));
        const auto rb =
            hy_engine.ingest(engine_batch(k, 3000, 50 + k));
        EXPECT_EQ(ra.reordered, rb.reordered);
        EXPECT_EQ(ra.used_usc, rb.used_usc);
    }
    const auto& ga =
        as_engine.engine<graph::AdjacencyList>().graph();
    const auto& gh = hy_engine.engine<graph::HybridStore>().graph();
    EXPECT_EQ(ga.num_edges(), gh.num_edges());
    EXPECT_TRUE(gh.same_topology(ga));
    for (VertexId v = 0; v < ga.num_vertices(); ++v) {
        const auto ea = ga.sorted_edges(v, Direction::kOut);
        const auto eh = gh.sorted_edges(v, Direction::kOut);
        ASSERT_EQ(ea.size(), eh.size());
        for (std::size_t i = 0; i < ea.size(); ++i) {
            ASSERT_EQ(ea[i].weight, eh[i].weight);
        }
    }
}

TEST(AnyRealTimeEngine, ConfigTuningReachesHybridBackend)
{
    ThreadPool pool(1);
    core::EngineConfig cfg;
    cfg.graph_backend = core::GraphBackend::kHybrid;
    cfg.store.hybrid_sorted_threshold = 8;
    core::AnyRealTimeEngine engine(cfg, 100, pool);
    const auto& g = engine.engine<graph::HybridStore>().graph();
    EXPECT_EQ(g.tuning().hybrid_sorted_threshold, 8u);
}

TEST(HybridRealTimeEngine, PipelineDepthTwoMatchesDepthOne)
{
    core::EngineConfig cfg1;
    cfg1.policy = core::UpdatePolicy::kAbrUsc;
    cfg1.graph_backend = core::GraphBackend::kHybrid;
    cfg1.oca.enabled = false;
    core::EngineConfig cfg2 = cfg1;
    cfg2.pipeline_depth = 2;

    ThreadPool pool(4);
    core::HybridRealTimeEngine serial(cfg1, 500, pool);
    core::HybridRealTimeEngine piped(cfg2, 500, pool);
    std::atomic<int> serial_rounds{0};
    std::atomic<int> piped_rounds{0};
    serial.set_compute([&](const graph::SnapshotView& s,
                           const core::PendingWork&) {
        (void)s;
        serial_rounds.fetch_add(1);
    });
    piped.set_compute([&](const graph::SnapshotView& s,
                          const core::PendingWork&) {
        (void)s;
        piped_rounds.fetch_add(1);
    });
    for (std::uint64_t k = 1; k <= 5; ++k) {
        (void)serial.ingest(engine_batch(k, 2000, 90 + k));
        (void)piped.ingest(engine_batch(k, 2000, 90 + k));
    }
    serial.flush_pipeline();
    piped.flush_pipeline();
    EXPECT_EQ(serial_rounds.load(), piped_rounds.load());
    EXPECT_GT(piped.pipeline_stats().epochs_published, 0u);
    EXPECT_TRUE(piped.graph().same_topology(serial.graph()));
    // The published snapshot reflects the full hybrid graph.
    const graph::SnapshotView snap = piped.snapshot();
    EXPECT_EQ(snap.num_edges(), piped.graph().num_edges());
}

} // namespace
} // namespace igs
