/**
 * @file
 * Telemetry registry tests: counter shard merging, histogram bucketing,
 * JSON snapshot stability, concurrent writers (exercised under the TSan
 * ctest leg), and the zero-allocation hot-path contract from
 * common/telemetry.h (verified with the global allocation hook).
 */
#include "common/telemetry.h"

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_counter.h"

namespace igs::telemetry {
namespace {

TEST(Counter, MergesIncrementsAcrossThreads)
{
    Counter c;
    constexpr int kThreads = 8;
    constexpr int kIncs = 10000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&c] {
            for (int i = 0; i < kIncs; ++i) {
                c.inc();
            }
            c.inc(5);
        });
    }
    for (auto& t : ts) {
        t.join();
    }
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * (kIncs + 5));
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddWatermark)
{
    Gauge g;
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.add(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 5.0);
    g.watermark(4.0); // below: no change
    EXPECT_DOUBLE_EQ(g.value(), 5.0);
    g.watermark(9.0);
    EXPECT_DOUBLE_EQ(g.value(), 9.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsOnFirstBoundAtLeastValue)
{
    const double bounds[] = {10.0, 20.0, 30.0};
    Histogram h(bounds);
    h.record(-1.0); // bucket 0
    h.record(10.0); // bucket 0 (v <= bound)
    h.record(10.5); // bucket 1
    h.record(20.0); // bucket 1
    h.record(30.0); // bucket 2
    h.record(31.0); // overflow bucket 3
    EXPECT_EQ(h.bucket_count(0), 2u);
    EXPECT_EQ(h.bucket_count(1), 2u);
    EXPECT_EQ(h.bucket_count(2), 1u);
    EXPECT_EQ(h.bucket_count(3), 1u);
    EXPECT_EQ(h.total_count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), -1.0 + 10.0 + 10.5 + 20.0 + 30.0 + 31.0);
}

TEST(Histogram, ConcurrentRecords)
{
    const double bounds[] = {100.0};
    Histogram h(bounds);
    constexpr int kThreads = 6;
    constexpr int kRecs = 5000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&h, t] {
            for (int i = 0; i < kRecs; ++i) {
                h.record(t < kThreads / 2 ? 1.0 : 1000.0);
            }
        });
    }
    for (auto& t : ts) {
        t.join();
    }
    EXPECT_EQ(h.total_count(),
              static_cast<std::uint64_t>(kThreads) * kRecs);
    EXPECT_EQ(h.bucket_count(0) + h.bucket_count(1), h.total_count());
}

TEST(Registry, SameNameYieldsSameMetric)
{
    Registry r;
    Counter& a = r.counter("x.y.z");
    Counter& b = r.counter("x.y.z");
    EXPECT_EQ(&a, &b);
    const double bounds[] = {1.0, 2.0};
    Histogram& h1 = r.histogram("h", bounds);
    Histogram& h2 = r.histogram("h", bounds);
    EXPECT_EQ(&h1, &h2);
}

TEST(Registry, ResetZeroesInPlaceKeepingReferences)
{
    Registry r;
    Counter& c = r.counter("c");
    Gauge& g = r.gauge("g");
    c.inc(7);
    g.set(2.0);
    r.reset_values();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    c.inc(); // the reference must still be live and registered
    EXPECT_EQ(r.counter("c").value(), 1u);
}

/** Equal state must serialize byte-identically — the golden-run premise. */
TEST(Registry, JsonSnapshotIsStable)
{
    const double bounds[] = {1.0, 465.0};
    auto populate = [&bounds](Registry& r) {
        r.counter("b.count").inc(3);
        r.counter("a.count").inc(41);
        r.gauge("m.gauge").set(0.25);
        Histogram& h = r.histogram("m.hist", bounds);
        h.record(0.5);
        h.record(465.0);
        h.record(1e6);
        r.phase("p.wall").add(1.5);
    };
    Registry r1;
    Registry r2;
    populate(r1);
    populate(r2);
    const std::string s1 = r1.to_json();
    EXPECT_EQ(s1, r2.to_json());
    EXPECT_EQ(s1, r1.to_json()); // snapshotting does not mutate

    // Keys come out sorted, so diffs are positional.
    EXPECT_LT(s1.find("a.count"), s1.find("b.count"));
    EXPECT_NE(s1.find("\"counters\""), std::string::npos);
    EXPECT_NE(s1.find("\"histograms\""), std::string::npos);

    // Zero-then-replay round-trips to the identical document.
    r1.reset_values();
    EXPECT_NE(s1, r1.to_json());
    populate(r1);
    EXPECT_EQ(s1, r1.to_json());

    // Indent-0 form is the same document modulo whitespace.
    std::string compact = r1.to_json(0);
    EXPECT_EQ(compact.find('\n'), std::string::npos);
}

TEST(JsonWriter, DoubleFormattingIsTypedAndStable)
{
    EXPECT_EQ(JsonWriter::format_double(3.0), "3.0");
    EXPECT_EQ(JsonWriter::format_double(-2.0), "-2.0");
    EXPECT_EQ(JsonWriter::format_double(0.1), "0.1");
    EXPECT_EQ(JsonWriter::format_double(465.0), "465.0");
    EXPECT_EQ(JsonWriter::format_double(0.0), "0.0");
    const std::string nan = JsonWriter::format_double(
        std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(nan, "null");
    EXPECT_EQ(JsonWriter::format_double(
                  std::numeric_limits<double>::infinity()),
              "null");
}

TEST(JsonWriter, EscapesAndNesting)
{
    JsonWriter w(0);
    w.begin_object();
    w.kv("quote\"back\\slash", "line\nfeed\ttab");
    w.key("arr").begin_array().value(1).value(false).null().end_array();
    w.key("empty").begin_object().end_object();
    w.end_object();
    EXPECT_EQ(w.take(),
              "{\"quote\\\"back\\\\slash\":\"line\\nfeed\\ttab\","
              "\"arr\":[1,false,null],\"empty\":{}}");
}

TEST(JsonWriter, PrettyPrintsWithIndent)
{
    JsonWriter w(2);
    w.begin_object();
    w.kv("a", 1);
    w.key("b").begin_array().value(2).end_array();
    w.end_object();
    EXPECT_EQ(w.take(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n");
}

/** The hot-path contract: once registered (and the calling thread's shard
 *  slot is warm), recording a metric never touches the allocator. */
TEST(Telemetry, HotPathIsAllocationFree)
{
    Registry r;
    Counter& c = r.counter("hot.counter");
    Gauge& g = r.gauge("hot.gauge");
    const double bounds[] = {1.0, 10.0, 100.0};
    Histogram& h = r.histogram("hot.hist", bounds);
    c.inc(); // warm this thread's TLS shard slot

    set_alloc_tracking(true);
    for (int i = 0; i < 10000; ++i) {
        c.inc();
        c.inc(3);
        g.set(static_cast<double>(i));
        g.add(0.5);
        g.watermark(static_cast<double>(i));
        h.record(static_cast<double>(i % 200));
    }
    set_alloc_tracking(false);
    EXPECT_EQ(tracked_alloc_count(), 0u)
        << "telemetry hot path touched the allocator";
}

/** Writers on several threads while another thread snapshots: exercises
 *  the registry lock + relaxed counters under the TSan ctest leg. */
TEST(Telemetry, ConcurrentWritersAndSnapshots)
{
    Registry r;
    Counter& c = r.counter("cc.counter");
    const double bounds[] = {8.0};
    Histogram& h = r.histogram("cc.hist", bounds);
    constexpr int kThreads = 4;
    constexpr int kIters = 20000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                h.record(static_cast<double>(i % 16));
            }
        });
    }
    std::string last;
    for (int i = 0; i < 50; ++i) {
        last = r.to_json(0); // racing reads are relaxed-atomic, not torn
    }
    for (auto& t : ts) {
        t.join();
    }
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(h.total_count(), static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_FALSE(last.empty());
}

} // namespace
} // namespace igs::telemetry
