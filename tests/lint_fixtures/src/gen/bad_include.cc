// Lint fixture: parent-relative and unresolvable includes must be flagged.
// Never compiled; scanned only by `igs_lint.py --self-test`.
#include "../common/check.h"      // flagged: parent-relative path
#include "nonexistent/missing.h"  // flagged: resolves nowhere

void
bad_include()
{
}
