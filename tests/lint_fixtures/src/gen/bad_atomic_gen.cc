// Lint fixture: the atomic-memory-order rule covers all of src/,
// including src/gen (generator progress counters are shared with the
// driver thread).  Never compiled; scanned by `igs_lint.py --self-test`.
#include <atomic>
#include <cstdint>

std::uint64_t
bad_atomic_gen(std::atomic<std::uint64_t>& emitted)
{
    emitted.fetch_add(1);                                // flagged
    emitted.store(0, std::memory_order_relaxed);         // fine
    return emitted.load(std::memory_order_relaxed);      // fine
}
