// Lint fixture: side effects inside IGS_CHECK must be flagged.
// Never compiled; scanned only by `igs_lint.py --self-test`.
#include <vector>

#define IGS_CHECK(cond) ((void)(cond))
#define IGS_DCHECK(cond) ((void)(cond))

void
bad_check(std::vector<int>& v, int i)
{
    IGS_CHECK(++i < 10);       // flagged: increment inside check
    IGS_DCHECK(v.size() == 1); // fine: pure read
    IGS_DCHECK((i = 5));       // flagged: assignment inside check
}
