// Lint fixture: every allocation class the hot-path-alloc rule must catch.
// Never compiled; scanned only by `igs_lint.py --self-test`.
// IGS_HOT_PATH
#include <unordered_map>
#include <vector>

void
bad_hot_alloc(std::vector<int>& v)
{
    std::unordered_map<int, int> table; // flagged: unordered_map
    table[1] = 2;
    int* p = new int(3);  // flagged: new expression
    v.push_back(*p);      // flagged: container growth
    v.resize(128);        // flagged: container growth
    delete p;
    // An audited arena site must NOT be flagged:
    v.reserve(256); // igs-lint: allow(hot-path-alloc) fixture arena
}
