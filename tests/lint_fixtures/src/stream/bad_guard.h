// Lint fixture: non-canonical header guard must be flagged
// (canonical for this path is IGS_STREAM_BAD_GUARD_H).
// Never compiled; scanned only by `igs_lint.py --self-test`.
#ifndef SOME_RANDOM_GUARD_H
#define SOME_RANDOM_GUARD_H

inline int
fixture_fn()
{
    return 42;
}

#endif // SOME_RANDOM_GUARD_H
