/**
 * Lint fixture: a fully clean header — the self-test asserts no rule fires
 * on it (guards canonical, atomics explicit, no hot-path tag, std::mutex
 * allowed because the fixture lives under src/common/).
 * Never compiled; scanned only by `igs_lint.py --self-test`.
 */
#ifndef IGS_COMMON_CLEAN_OK_H
#define IGS_COMMON_CLEAN_OK_H

#include <atomic>
#include <cstdint>
#include <mutex>

namespace igs_fixture {

inline std::uint64_t
clean_read(const std::atomic<std::uint64_t>& a)
{
    return a.load(std::memory_order_acquire);
}

} // namespace igs_fixture

#endif // IGS_COMMON_CLEAN_OK_H
