// Lint fixture: bare std::mutex outside src/common/ must be flagged.
// Never compiled; scanned only by `igs_lint.py --self-test`.
#include <mutex>

struct BadEngineState {
    std::mutex m; // flagged: bare-mutex (should be igs::Mutex)
};

void
bad_mutex_use(BadEngineState& s)
{
    std::lock_guard lk(s.m);
}
