// Lint fixture: implicit-seq_cst atomics in src/sim must be flagged.
// Never compiled; scanned only by `igs_lint.py --self-test`.
#include <atomic>
#include <cstdint>

std::uint64_t
bad_atomic(std::atomic<std::uint64_t>& counter)
{
    counter.fetch_add(1);                                // flagged
    counter.store(7);                                    // flagged
    counter.fetch_sub(1, std::memory_order_relaxed);     // fine
    return counter.load();                               // flagged
}
