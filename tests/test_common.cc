/**
 * @file
 * Unit tests for the common substrate: RNG, stats, sync primitives,
 * thread pool, parallel sort, and the concurrent hash map.
 */
#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/concurrent_hash_map.h"
#include "common/parallel_sort.h"
#include "common/random.h"
#include "common/spinlock.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace igs {
namespace {

// ---------------------------------------------------------------- random
TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        same += a() == b() ? 1 : 0;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 20}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(r.below(bound), bound);
        }
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(11);
    constexpr std::uint64_t kBuckets = 10;
    std::vector<int> counts(kBuckets, 0);
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        ++counts[r.below(kBuckets)];
    }
    for (int c : counts) {
        EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, PowerLawBounded)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i) {
        const auto k = r.power_law(2.0, 1000);
        ASSERT_GE(k, 1u);
        ASSERT_LE(k, 1000u);
    }
}

TEST(Rng, PowerLawIsSkewed)
{
    Rng r(5);
    int ones = 0;
    for (int i = 0; i < 10000; ++i) {
        ones += r.power_law(2.0, 1000) == 1 ? 1 : 0;
    }
    // For alpha=2, P(1) is large (> a third of the mass).
    EXPECT_GT(ones, 3000);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

// ---------------------------------------------------------------- stats
TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, MeanAndMax)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(max_of({1.0, 5.0, 3.0}), 5.0);
}

TEST(Stats, WelfordMatchesDirectComputation)
{
    Welford w;
    const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
    for (double x : xs) {
        w.add(x);
    }
    EXPECT_EQ(w.count(), xs.size());
    EXPECT_NEAR(w.mean(), 6.2, 1e-9);
    double var = 0.0;
    for (double x : xs) {
        var += (x - 6.2) * (x - 6.2);
    }
    var /= static_cast<double>(xs.size() - 1);
    EXPECT_NEAR(w.variance(), var, 1e-9);
}

TEST(Stats, HistogramBasics)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    h.add(3);
    h.add(3);
    h.add(10, 5);
    EXPECT_EQ(h.at(3), 2u);
    EXPECT_EQ(h.at(10), 5u);
    EXPECT_EQ(h.at(4), 0u);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.max_key(), 10u);
}

TEST(Table, AlignsColumns)
{
    TextTable t({"a", "long-header"});
    t.row().cell(std::string("x")).cell(1.5, 1);
    t.row().cell(std::uint64_t{42}).cell(std::string("y"));
    const std::string s = t.str();
    EXPECT_NE(s.find("long-header"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    // Header + rule + 2 rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

// ----------------------------------------------------------- spinlock
TEST(Spinlock, MutualExclusion)
{
    Spinlock lock;
    int counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 10000; ++i) {
                std::lock_guard lk(lock);
                ++counter;
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(counter, 40000);
}

TEST(Spinlock, TryLock)
{
    Spinlock lock;
    EXPECT_TRUE(lock.try_lock());
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(StripedLocks, StableMapping)
{
    StripedLocks locks(64);
    EXPECT_GE(locks.size(), 64u);
    Spinlock* a = &locks.for_key(12345);
    Spinlock* b = &locks.for_key(12345);
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------- thread pool
TEST(ThreadPool, RunReachesAllWorkers)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(4);
    pool.run([&](std::size_t tid) { hits[tid].fetch_add(1); });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 10000;
    std::vector<std::atomic<int>> counts(kN);
    pool.parallel_for(0, kN, [&](std::size_t i) { counts[i].fetch_add(1); },
                      64);
    for (const auto& c : counts) {
        ASSERT_EQ(c.load(), 1);
    }
}

TEST(ThreadPool, ParallelForEmptyRange)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelChunksPartitionIsExact)
{
    ThreadPool pool(3);
    constexpr std::size_t kN = 5000;
    std::atomic<std::size_t> total{0};
    pool.parallel_chunks(0, kN,
                         [&](std::size_t, std::size_t lo, std::size_t hi) {
                             total.fetch_add(hi - lo);
                         },
                         128);
    EXPECT_EQ(total.load(), kN);
}

TEST(ThreadPool, SingleThreadPoolStillWorks)
{
    ThreadPool pool(1);
    std::size_t sum = 0;
    pool.parallel_for(0, 100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum, 4950u);
}

// --------------------------------------------------------- parallel sort
class ParallelSortTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelSortTest, MatchesStdStableSort)
{
    const std::size_t n = GetParam();
    Rng r(n + 1);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> data(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Narrow key range forces ties, exercising stability.
        data[i] = {static_cast<std::uint32_t>(r.below(64)),
                   static_cast<std::uint32_t>(i)};
    }
    auto expected = data;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    ThreadPool pool(4);
    parallel_stable_sort(data.begin(), data.end(),
                         [](const auto& a, const auto& b) {
                             return a.first < b.first;
                         },
                         pool);
    // Exact equality (including the payload order) proves stability.
    EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelSortTest,
                         ::testing::Values(0, 1, 2, 100, 8192, 8193, 50000,
                                           131072));

// ------------------------------------------------- concurrent hash map
TEST(ConcurrentHashMap, UpdateAndFind)
{
    ConcurrentHashMap<std::uint32_t, std::uint32_t> map(16);
    map.update(5, [](std::uint32_t& v) { v += 3; });
    map.update(5, [](std::uint32_t& v) { v += 4; });
    map.update(9, [](std::uint32_t& v) { v = 1; });
    ASSERT_NE(map.find(5), nullptr);
    EXPECT_EQ(*map.find(5), 7u);
    EXPECT_EQ(*map.find(9), 1u);
    EXPECT_EQ(map.find(6), nullptr);
    EXPECT_EQ(map.size(), 2u);
}

TEST(ConcurrentHashMap, GrowsBeyondInitialCapacity)
{
    ConcurrentHashMap<std::uint32_t, std::uint32_t> map(4, 2);
    for (std::uint32_t k = 0; k < 5000; ++k) {
        map.update(k, [](std::uint32_t& v) { ++v; });
    }
    EXPECT_EQ(map.size(), 5000u);
    for (std::uint32_t k = 0; k < 5000; ++k) {
        ASSERT_NE(map.find(k), nullptr);
        ASSERT_EQ(*map.find(k), 1u);
    }
}

TEST(ConcurrentHashMap, ConcurrentAccumulationIsExact)
{
    ConcurrentHashMap<std::uint32_t, std::uint64_t> map(1024);
    ThreadPool pool(4);
    constexpr std::size_t kOps = 100000;
    pool.parallel_for(0, kOps, [&](std::size_t i) {
        map.update(static_cast<std::uint32_t>(i % 257),
                   [](std::uint64_t& v) { ++v; });
    });
    std::uint64_t total = 0;
    map.for_each([&](std::uint32_t, std::uint64_t v) { total += v; });
    EXPECT_EQ(total, kOps);
    EXPECT_EQ(map.size(), 257u);
}

TEST(ConcurrentHashMap, ClearKeepsWorking)
{
    ConcurrentHashMap<std::uint32_t, std::uint32_t> map(16);
    map.update(1, [](std::uint32_t& v) { v = 7; });
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(1), nullptr);
    map.update(1, [](std::uint32_t& v) { v += 2; });
    EXPECT_EQ(*map.find(1), 2u);
}

} // namespace
} // namespace igs
