/**
 * @file
 * Shared test scaffolding: deterministic stream/batch builders, engine
 * configs, and state-equality assertions used by the engine-equivalence
 * suites (test_pipeline.cc, test_hybrid_store.cc, test_incremental.cc).
 *
 * The builders are *definitional* for several suites at once: two tests
 * calling pipeline_batch(k, n, seed) must get byte-identical batches or
 * their cross-engine comparisons silently weaken.  Change a model
 * parameter here and every equivalence suite moves together.
 */
#ifndef IGS_TESTS_TEST_SUPPORT_H
#define IGS_TESTS_TEST_SUPPORT_H

#include <cstdlib>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "gen/edge_stream.h"
#include "graph/adjacency_list.h"
#include "graph/snapshot_view.h"
#include "graph/store_tuning.h"
#include "stream/batch.h"

namespace igs::testutil {

/** The pipeline suites' batch model: 2000 vertices, mild hub skew. */
inline stream::EdgeBatch
pipeline_batch(std::uint64_t id, std::size_t n, std::uint64_t seed)
{
    gen::StreamModel m;
    m.num_vertices = 2000;
    m.num_hubs = 8;
    m.hub_mass_dst = 0.3;
    m.seed = seed;
    stream::EdgeBatch b;
    b.id = id;
    b.set_edges(gen::EdgeStreamGenerator(m).take(n));
    return b;
}

inline core::EngineConfig
pipeline_config(core::UpdatePolicy policy, unsigned depth)
{
    core::EngineConfig cfg;
    cfg.policy = policy;
    cfg.abr.n = 2;
    cfg.pipeline_depth = depth;
    return cfg;
}

/** The backend-engine suites' batch model: 500 vertices, in-band
 *  deletions. */
inline stream::EdgeBatch
engine_batch(std::uint64_t id, std::size_t n, std::uint64_t seed)
{
    gen::StreamModel m;
    m.num_vertices = 500;
    m.num_hubs = 8;
    m.hub_mass_dst = 0.4;
    m.delete_fraction = 0.1;
    m.seed = seed;
    return stream::EdgeBatch(id, gen::EdgeStreamGenerator(m).take(n));
}

/** A mixed insert/delete stream with enough per-vertex concentration to
 *  push hot vertices across both promotion boundaries. */
inline std::vector<StreamEdge>
mixed_stream(std::size_t n, std::uint64_t seed)
{
    gen::StreamModel m;
    m.num_vertices = 300;
    m.num_hubs = 6;
    m.hub_mass_dst = 0.5;
    m.delete_fraction = 0.25;
    m.seed = seed;
    return gen::EdgeStreamGenerator(m).take(n);
}

/** Tuning with a low hash threshold so tests cross both promotion
 *  boundaries with small degrees. */
inline graph::StoreTuning
tight_tuning()
{
    graph::StoreTuning t;
    t.hybrid_sorted_threshold = 8;
    t.dah_hash_threshold = 8;
    return t;
}

inline void
expect_snapshot_matches_live(const graph::SnapshotView& snap,
                             const graph::AdjacencyList& live)
{
    ASSERT_EQ(snap.num_vertices(), live.num_vertices());
    EXPECT_EQ(snap.num_edges(), live.num_edges());
    for (VertexId v = 0; v < live.num_vertices(); ++v) {
        for (Direction dir : {Direction::kOut, Direction::kIn}) {
            EXPECT_EQ(snap.edges(v, dir), live.edges(v, dir))
                << "vertex " << v << " dir " << to_string(dir);
        }
    }
}

inline void
expect_reports_equal(const core::BatchReport& a, const core::BatchReport& b)
{
    EXPECT_EQ(a.batch_id, b.batch_id);
    EXPECT_EQ(a.abr_active, b.abr_active);
    EXPECT_EQ(a.reordered, b.reordered);
    EXPECT_EQ(a.used_usc, b.used_usc);
    EXPECT_EQ(a.used_hau, b.used_hau);
    ASSERT_EQ(a.cad.has_value(), b.cad.has_value());
    if (a.cad.has_value()) {
        EXPECT_EQ(a.cad->cad_out, b.cad->cad_out);
        EXPECT_EQ(a.cad->cad_in, b.cad->cad_in);
        EXPECT_EQ(a.cad->max_out_degree, b.cad->max_out_degree);
        EXPECT_EQ(a.cad->max_in_degree, b.cad->max_in_degree);
    }
    EXPECT_EQ(a.overlap, b.overlap);
    EXPECT_EQ(a.defer_compute, b.defer_compute);
    EXPECT_EQ(a.instrumentation_cycles, b.instrumentation_cycles);
    EXPECT_EQ(a.update.cycles, b.update.cycles);
    EXPECT_EQ(a.update.probes, b.update.probes);
    EXPECT_EQ(a.update.inserts, b.update.inserts);
    EXPECT_EQ(a.update.removes, b.update.removes);
    EXPECT_EQ(a.update_hidden_cycles, b.update_hidden_cycles);
    // wall_seconds is wall clock: nondeterministic by nature, excluded.
}

/**
 * Seeds for a randomized harness: the suite's defaults, or the single
 * seed in $IGS_TEST_SEED (reproduce a failure by exporting the seed the
 * failing run printed).
 */
inline std::vector<std::uint64_t>
harness_seeds(std::initializer_list<std::uint64_t> defaults)
{
    if (const char* env = std::getenv("IGS_TEST_SEED")) {
        return {std::strtoull(env, nullptr, 10)};
    }
    return defaults;
}

/** Tag every assertion under this scope with the seed that drove it. */
inline std::string
seed_trace(std::uint64_t seed)
{
    return "seed=" + std::to_string(seed) +
           " (rerun with IGS_TEST_SEED=" + std::to_string(seed) + ")";
}

} // namespace igs::testutil

#endif // IGS_TESTS_TEST_SUPPORT_H
