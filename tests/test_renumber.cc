/**
 * @file
 * Tests for the vertex-id indirection layer and input-aware locality
 * renumbering (DESIGN.md §16): VertexIdMap semantics, planner
 * determinism, the LocalityMonitor's skew gate / warmup / cooldown /
 * re-fire hysteresis, permutation invariance of every backend's logical
 * reads under apply_renumber, engine-level trigger behavior (hub-heavy
 * fires, uniform never does, renumber-off is bit-identical), and
 * incremental PageRank/SSSP/BFS state surviving renumbers mid-stream.
 *
 * Every suite name contains "Renumber": the tsan-renumber CI leg runs
 * exactly this file via `ctest -R Renumber`.
 */
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/incremental/analytics.h"
#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "analytics/traversal.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "gen/edge_stream.h"
#include "graph/adjacency_list.h"
#include "graph/degree_aware_hash.h"
#include "graph/hybrid_store.h"
#include "graph/renumber.h"
#include "graph/vertex_id_map.h"
#include "stream/batch.h"
#include "stream/compute_policy.h"
#include "stream/pending.h"

#include "test_support.h"

namespace igs {
namespace {

constexpr Direction kOut = Direction::kOut;
constexpr Direction kIn = Direction::kIn;

using analytics::incremental::IncrementalAnalytics;
using analytics::incremental::IncrementalConfig;
using graph::LocalityMonitor;
using graph::LocalityRenumberer;
using graph::RenumberMode;
using graph::RenumberParams;
using graph::VertexIdMap;
using stream::IncrementalPolicy;
using testutil::harness_seeds;
using testutil::mixed_stream;
using testutil::seed_trace;
using testutil::tight_tuning;

// The engine's renumber hook is gated on this shape; all three backends
// must satisfy it or the trigger silently becomes a no-op for them.
template <typename G>
concept Renumberable = requires(G& g, std::span<const VertexId> l2p) {
    g.apply_renumber(l2p);
    { g.id_map() } -> std::convertible_to<const VertexIdMap&>;
};
static_assert(Renumberable<graph::AdjacencyList>);
static_assert(Renumberable<graph::DegreeAwareHash>);
static_assert(Renumberable<graph::HybridStore>);

std::vector<VertexId>
random_permutation(std::size_t n, std::uint64_t seed)
{
    std::vector<VertexId> p(n);
    std::iota(p.begin(), p.end(), VertexId{0});
    Rng rng(seed);
    for (std::size_t i = n - 1; i > 0; --i) {
        std::swap(p[i], p[rng.below(i + 1)]);
    }
    return p;
}

// ------------------------------------------------------------ VertexIdMap

TEST(RenumberIdMap, DefaultIsIdentity)
{
    VertexIdMap m;
    EXPECT_FALSE(m.enabled());
    EXPECT_TRUE(m.is_identity());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.to_physical(0), 0u);
    EXPECT_EQ(m.to_physical(12345), 12345u);
    EXPECT_EQ(m.to_logical(77), 77u);
}

TEST(RenumberIdMap, RebindRoundTrip)
{
    VertexIdMap m;
    const auto l2p = random_permutation(64, 9001);
    m.rebind(l2p);
    EXPECT_TRUE(m.enabled());
    EXPECT_EQ(m.size(), 64u);
    for (VertexId l = 0; l < 64; ++l) {
        EXPECT_EQ(m.to_physical(l), l2p[l]);
        EXPECT_EQ(m.to_logical(m.to_physical(l)), l);
    }
}

TEST(RenumberIdMap, GrowthPastTableFallsThroughToIdentity)
{
    VertexIdMap m;
    m.rebind(random_permutation(16, 5));
    // Logical ids past the bound table (vertex growth after a renumber)
    // identity-map to rows the bound permutation cannot occupy.
    EXPECT_EQ(m.to_physical(16), 16u);
    EXPECT_EQ(m.to_physical(1000), 1000u);
    EXPECT_EQ(m.to_logical(16), 16u);
}

TEST(RenumberIdMap, ResetRestoresIdentity)
{
    VertexIdMap m;
    m.rebind(random_permutation(16, 6));
    EXPECT_FALSE(m.is_identity());
    m.reset();
    EXPECT_FALSE(m.enabled());
    EXPECT_TRUE(m.is_identity());
    EXPECT_EQ(m.to_physical(3), 3u);
}

TEST(RenumberIdMap, BoundIdentityIsDetected)
{
    VertexIdMap m;
    std::vector<VertexId> ident(32);
    std::iota(ident.begin(), ident.end(), VertexId{0});
    m.rebind(ident);
    EXPECT_TRUE(m.enabled());
    EXPECT_TRUE(m.is_identity());
}

// ---------------------------------------------------------------- planner

TEST(RenumberPlan, HubSortOrdersByDegreeThenId)
{
    const std::vector<std::uint64_t> degrees{3, 9, 9, 1, 0};
    const auto l2p = LocalityRenumberer::plan(degrees, RenumberMode::kHubSort);
    // Rank order: 1 (deg 9), 2 (deg 9, higher id), 0, 3, 4.
    const std::vector<VertexId> expect{2, 0, 1, 3, 4};
    EXPECT_EQ(l2p, expect);
}

TEST(RenumberPlan, DegreeGroupBucketsHotFirstStableWithin)
{
    // log2 buckets: {8, 9} -> bucket 4; {4, 7} -> bucket 3; {1} -> 1.
    const std::vector<std::uint64_t> degrees{4, 8, 1, 9, 7};
    const auto l2p =
        LocalityRenumberer::plan(degrees, RenumberMode::kDegreeGroup);
    // Rank order: 1, 3 (bucket 4, id-stable), 0, 4 (bucket 3), 2.
    const std::vector<VertexId> expect{2, 0, 4, 1, 3};
    EXPECT_EQ(l2p, expect);
}

TEST(RenumberPlan, PlanIsAlwaysAPermutation)
{
    Rng rng(77);
    for (const RenumberMode mode :
         {RenumberMode::kHubSort, RenumberMode::kDegreeGroup}) {
        std::vector<std::uint64_t> degrees(500);
        for (auto& d : degrees) {
            d = rng.below(40);
        }
        const auto l2p = LocalityRenumberer::plan(degrees, mode);
        std::vector<bool> hit(l2p.size(), false);
        for (const VertexId p : l2p) {
            ASSERT_LT(p, l2p.size());
            EXPECT_FALSE(hit[p]) << to_string(mode);
            hit[p] = true;
        }
    }
}

// ---------------------------------------------------------------- monitor

/**
 * One synthetic window: 64 equally-hot vertices at ids i*spacing (64
 * touches each) over a 512-touch uniform background at ids 4096+.  The
 * hot set always clears the skew gate; `spacing` controls the placement
 * density the window scores (spacing 8 = one hot row per line, terrible;
 * spacing 1 = packed, perfect).
 */
void
feed_hot_window(LocalityMonitor& m, std::uint32_t spacing)
{
    for (VertexId i = 0; i < 64; ++i) {
        for (int k = 0; k < 64; ++k) {
            m.observe(i * spacing);
        }
    }
    for (VertexId i = 0; i < 512; ++i) {
        m.observe(4096 + i);
    }
}

void
feed_uniform_window(LocalityMonitor& m)
{
    for (VertexId v = 0; v < 1024; ++v) {
        m.observe(v);
    }
}

TEST(RenumberMonitor, UniformWindowScoresPerfectAndNeverFires)
{
    RenumberParams p;
    p.warmup_windows = 1;
    p.cooldown_windows = 1;
    LocalityMonitor m(p);
    const VertexIdMap identity;
    for (int w = 0; w < 20; ++w) {
        feed_uniform_window(m);
        const double ewma = m.end_window(identity);
        EXPECT_DOUBLE_EQ(m.last_window_score(), 1.0);
        EXPECT_DOUBLE_EQ(ewma, 1.0);
        EXPECT_FALSE(m.should_renumber());
    }
}

TEST(RenumberMonitor, ScatteredHotSetFiresAfterWarmup)
{
    RenumberParams p;
    p.warmup_windows = 4;
    LocalityMonitor m(p);
    const VertexIdMap identity;
    for (std::uint32_t w = 1; w <= 8; ++w) {
        feed_hot_window(m, /*spacing=*/8);
        m.end_window(identity);
        EXPECT_LT(m.last_window_score(), 0.2);
        if (w < p.warmup_windows) {
            EXPECT_FALSE(m.should_renumber()) << "window " << w;
        }
    }
    EXPECT_LT(m.ewma(), p.threshold);
    EXPECT_TRUE(m.should_renumber());
}

TEST(RenumberMonitor, PackedPlacementOfSameTrafficScoresWell)
{
    // The same hot traffic, mapped to packed physical rows, must score
    // near-perfect: the monitor measures *placement*, not skew itself.
    RenumberParams p;
    LocalityMonitor m(p);
    VertexIdMap packed;
    // Hot ids i*8 -> rows 0..63; everything else fills the rest in order.
    std::vector<VertexId> l2p(4096 + 512);
    VertexId next_hot = 0;
    VertexId next_cold = 64;
    for (VertexId l = 0; l < l2p.size(); ++l) {
        const bool hot = l % 8 == 0 && l < 64 * 8;
        l2p[l] = hot ? next_hot++ : next_cold++;
    }
    packed.rebind(l2p);
    feed_hot_window(m, /*spacing=*/8);
    m.end_window(packed);
    EXPECT_GT(m.last_window_score(), 0.8);
}

TEST(RenumberMonitor, CooldownMasksTheTriggerAfterARenumber)
{
    RenumberParams p;
    p.warmup_windows = 1;
    p.cooldown_windows = 6;
    p.ewma_alpha = 0.9;     // converge within one window
    p.refire_factor = 10.0; // isolate the cooldown gate
    LocalityMonitor m(p);
    const VertexIdMap identity;
    feed_hot_window(m, 8);
    m.end_window(identity);
    ASSERT_TRUE(m.should_renumber());
    m.note_renumbered();
    for (std::uint32_t w = 1; w < p.cooldown_windows; ++w) {
        feed_hot_window(m, 8);
        m.end_window(identity);
        EXPECT_FALSE(m.should_renumber()) << "window " << w;
    }
    feed_hot_window(m, 8);
    m.end_window(identity);
    EXPECT_TRUE(m.should_renumber());
}

TEST(RenumberMonitor, RefireHysteresisHoldsUntilPlacementDecaysFurther)
{
    RenumberParams p;
    p.warmup_windows = 1;
    p.cooldown_windows = 1;
    p.ewma_alpha = 0.9; // fast convergence keeps the arithmetic readable
    LocalityMonitor m(p);
    const VertexIdMap identity;
    feed_hot_window(m, 8);
    m.end_window(identity);
    ASSERT_TRUE(m.should_renumber());
    m.note_renumbered();
    // The "renumber" only achieved a mediocre layout: spacing 2 scores
    // ~0.5 — below the 0.55 threshold, but not below what the pass
    // achieved times refire_factor.  Without the hysteresis this would
    // re-fire every cooldown and reproduce the same layout each time.
    for (int w = 0; w < 6; ++w) {
        feed_hot_window(m, 2);
        m.end_window(identity);
        EXPECT_FALSE(m.should_renumber()) << "window " << w;
    }
    EXPECT_LT(m.ewma(), p.threshold);
    // A genuine shift (placement decaying far below the achieved score)
    // un-masks the trigger.
    for (int w = 0; w < 3; ++w) {
        feed_hot_window(m, 8);
        m.end_window(identity);
    }
    EXPECT_TRUE(m.should_renumber());
}

// ----------------------------------- backend permutation invariance

/** Full logical-read state of a backend (what renumbering must fix). */
struct LogicalState {
    std::size_t num_vertices = 0;
    EdgeId num_edges = 0;
    std::vector<std::vector<Neighbor>> out, in;
    std::vector<std::uint64_t> bids;
};

template <typename Graph>
LogicalState
capture(const Graph& g)
{
    LogicalState s;
    s.num_vertices = g.num_vertices();
    s.num_edges = g.num_edges();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        s.out.push_back(g.sorted_edges(v, kOut));
        s.in.push_back(g.sorted_edges(v, kIn));
        s.bids.push_back(g.latest_bid(v));
    }
    return s;
}

void
expect_states_bitwise_equal(const LogicalState& a, const LogicalState& b)
{
    ASSERT_EQ(a.num_vertices, b.num_vertices);
    EXPECT_EQ(a.num_edges, b.num_edges);
    EXPECT_EQ(a.bids, b.bids);
    const auto expect_rows_equal = [](const std::vector<Neighbor>& ea,
                                      const std::vector<Neighbor>& eb,
                                      std::size_t v) {
        ASSERT_EQ(ea.size(), eb.size()) << "vertex " << v;
        for (std::size_t i = 0; i < ea.size(); ++i) {
            ASSERT_EQ(ea[i].id, eb[i].id) << "vertex " << v;
            // Bitwise: renumbering must not touch weights at all.
            ASSERT_EQ(ea[i].weight, eb[i].weight) << "vertex " << v;
        }
    };
    for (std::size_t v = 0; v < a.num_vertices; ++v) {
        expect_rows_equal(a.out[v], b.out[v], v);
        expect_rows_equal(a.in[v], b.in[v], v);
    }
}

/**
 * The core tentpole property, per backend: every public (logical) read
 * is invariant under apply_renumber — across a random permutation, a
 * planner permutation, and interleaved further updates against a
 * never-renumbered twin.
 */
template <typename Graph>
void
expect_renumber_invariance(Graph& g, Graph& twin, std::uint64_t seed)
{
    constexpr std::size_t kN = 300;
    ASSERT_EQ(g.num_vertices(), kN);
    const auto apply = [](Graph& dst, const std::vector<StreamEdge>& ops) {
        for (const StreamEdge& e : ops) {
            if (!e.is_delete) {
                dst.apply_insert(e.src, {e.dst, e.weight}, kOut);
                dst.apply_insert(e.dst, {e.src, e.weight}, kIn);
            }
        }
        for (const StreamEdge& e : ops) {
            if (e.is_delete) {
                dst.apply_remove(e.src, e.dst, kOut);
                dst.apply_remove(e.dst, e.src, kIn);
            }
        }
    };
    const auto first = mixed_stream(6000, seed);
    apply(g, first);
    apply(twin, first);
    for (VertexId v = 0; v < kN; v += 17) {
        g.exchange_latest_bid(v, 1000 + v);
        twin.exchange_latest_bid(v, 1000 + v);
    }

    // 1) Random permutation: reads unchanged, bitwise.
    const LogicalState before = capture(g);
    g.apply_renumber(random_permutation(kN, seed * 3 + 1));
    EXPECT_TRUE(g.id_map().enabled());
    EXPECT_FALSE(g.id_map().is_identity());
    expect_states_bitwise_equal(before, capture(g));

    // 2) Keep streaming on the renumbered graph, then renumber again
    //    with a planner permutation of the live degrees: still equal to
    //    the never-renumbered twin.
    const auto second = mixed_stream(6000, seed + 50);
    apply(g, second);
    apply(twin, second);
    std::vector<std::uint64_t> degrees(kN);
    for (VertexId v = 0; v < kN; ++v) {
        degrees[v] = static_cast<std::uint64_t>(g.degree(v, kOut)) +
                     g.degree(v, kIn);
    }
    g.apply_renumber(
        LocalityRenumberer::plan(degrees, RenumberMode::kHubSort));
    expect_states_bitwise_equal(capture(twin), capture(g));
}

TEST(RenumberBackends, AdjacencyListReadsInvariant)
{
    for (const std::uint64_t seed : harness_seeds({201, 202})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::AdjacencyList g(300);
        graph::AdjacencyList twin(300);
        expect_renumber_invariance(g, twin, seed);
    }
}

TEST(RenumberBackends, DegreeAwareHashReadsInvariant)
{
    for (const std::uint64_t seed : harness_seeds({211, 212})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::DegreeAwareHash g(300, tight_tuning());
        graph::DegreeAwareHash twin(300, tight_tuning());
        expect_renumber_invariance(g, twin, seed);
    }
}

TEST(RenumberBackends, HybridStoreReadsInvariant)
{
    for (const std::uint64_t seed : harness_seeds({221, 222})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::HybridStore g(300, tight_tuning());
        graph::HybridStore twin(300, tight_tuning());
        expect_renumber_invariance(g, twin, seed);
    }
}

TEST(RenumberBackends, IdentityRebindIsInvisible)
{
    graph::AdjacencyList g(64);
    for (const StreamEdge& e : mixed_stream(800, 303)) {
        if (!e.is_delete && e.src < 64 && e.dst < 64) {
            g.apply_insert(e.src, {e.dst, e.weight}, kOut);
            g.apply_insert(e.dst, {e.src, e.weight}, kIn);
        }
    }
    const LogicalState before = capture(g);
    std::vector<VertexId> ident(64);
    std::iota(ident.begin(), ident.end(), VertexId{0});
    g.apply_renumber(ident);
    EXPECT_TRUE(g.id_map().enabled());
    EXPECT_TRUE(g.id_map().is_identity());
    expect_states_bitwise_equal(before, capture(g));
}

TEST(RenumberBackends, DegreeAwareHashMoveTransfersMapAndResetsSource)
{
    graph::DegreeAwareHash a(32, tight_tuning());
    for (VertexId t = 0; t < 20; ++t) {
        a.apply_insert(0, {t, 1.0f}, kOut);
        a.apply_insert(t, {0, 1.0f}, kIn);
    }
    a.exchange_latest_bid(5, 99);
    a.apply_renumber(random_permutation(32, 404));
    const EdgeId edges = a.num_edges();
    graph::DegreeAwareHash b(std::move(a));
    EXPECT_EQ(b.num_edges(), edges);
    EXPECT_TRUE(b.id_map().enabled());
    EXPECT_EQ(b.latest_bid(5), 99u);
    EXPECT_EQ(b.degree(0, kOut), 20u);
    // The moved-from store is consistently empty: counters, bid table,
    // and id map all reset together.
    EXPECT_EQ(a.num_edges(), 0u);
    EXPECT_FALSE(a.id_map().enabled());
}

// ------------------------------------------------- engine-level trigger

constexpr std::size_t kEngVertices = 4096;
constexpr std::size_t kEngHubs = 512;
constexpr std::size_t kEngBatch = 2048;

const std::vector<VertexId>&
eng_hubs()
{
    static const std::vector<VertexId> kHubs = [] {
        std::vector<VertexId> perm(kEngVertices);
        std::iota(perm.begin(), perm.end(), VertexId{0});
        Rng rng(0xd15c0);
        for (std::size_t i = kEngVertices - 1; i > 0; --i) {
            std::swap(perm[i], perm[rng.below(i + 1)]);
        }
        perm.resize(kEngHubs);
        return perm;
    }();
    return kHubs;
}

stream::EdgeBatch
eng_batch(std::uint64_t id, Rng& rng, bool hub_heavy)
{
    std::vector<StreamEdge> edges;
    edges.reserve(kEngBatch);
    const auto endpoint = [&]() -> VertexId {
        if (hub_heavy && rng.chance(0.95)) {
            // u^8 within-hub skew: concentrated enough that the hot set
            // clears the monitor's skew gate (see bench_renumber.cc).
            const double u = rng.uniform();
            const double sq = u * u;
            const double quad = sq * sq;
            const auto idx =
                static_cast<std::size_t>(quad * quad * kEngHubs);
            return eng_hubs()[idx < kEngHubs ? idx : kEngHubs - 1];
        }
        return static_cast<VertexId>(rng.below(kEngVertices));
    };
    for (std::size_t i = 0; i < kEngBatch; ++i) {
        StreamEdge e;
        e.src = endpoint();
        e.dst = endpoint();
        e.weight = 1.0f;
        edges.push_back(e);
    }
    return stream::EdgeBatch(id, std::move(edges));
}

core::EngineConfig
eng_config(bool renumber_on)
{
    core::EngineConfig cfg;
    cfg.policy = core::UpdatePolicy::kBaseline;
    cfg.renumber.enabled = renumber_on;
    cfg.renumber.warmup_windows = 2;
    cfg.renumber.cooldown_windows = 4;
    return cfg;
}

TEST(RenumberEngine, HubHeavyStreamTriggersAndPreservesLogicalState)
{
    core::RealTimeEngine on(eng_config(true), kEngVertices);
    core::RealTimeEngine off(eng_config(false), kEngVertices);
    Rng rng_on(0xbeef01);
    Rng rng_off(0xbeef01);
    for (std::uint64_t k = 1; k <= 12; ++k) {
        (void)on.ingest(eng_batch(k, rng_on, /*hub_heavy=*/true));
        (void)off.ingest(eng_batch(k, rng_off, /*hub_heavy=*/true));
    }
    const core::RenumberStats& rs = on.renumber_stats();
    EXPECT_GE(rs.renumbers, 1u);
    EXPECT_EQ(rs.windows, 12u);
    EXPECT_TRUE(on.graph().id_map().enabled());
    EXPECT_FALSE(on.graph().id_map().is_identity());
    // Renumbering is a physical-layout change only: the logical graph is
    // bitwise the one the renumber-off engine built.
    EXPECT_EQ(off.renumber_stats().renumbers, 0u);
    EXPECT_FALSE(off.graph().id_map().enabled());
    expect_states_bitwise_equal(capture(off.graph()), capture(on.graph()));
}

TEST(RenumberEngine, UniformStreamNeverTriggers)
{
    core::RealTimeEngine engine(eng_config(true), kEngVertices);
    Rng rng(0xbeef02);
    for (std::uint64_t k = 1; k <= 12; ++k) {
        (void)engine.ingest(eng_batch(k, rng, /*hub_heavy=*/false));
    }
    EXPECT_EQ(engine.renumber_stats().renumbers, 0u);
    EXPECT_EQ(engine.renumber_stats().windows, 12u);
    EXPECT_DOUBLE_EQ(engine.renumber_stats().locality_ewma, 1.0);
    EXPECT_FALSE(engine.graph().id_map().enabled());
}

TEST(RenumberEngine, AnyEngineForwardsStatsAndTriggersOnHybrid)
{
    ThreadPool pool(1);
    core::EngineConfig cfg = eng_config(true);
    cfg.graph_backend = core::GraphBackend::kHybrid;
    core::AnyRealTimeEngine engine(cfg, kEngVertices, pool);
    Rng rng(0xbeef03);
    for (std::uint64_t k = 1; k <= 12; ++k) {
        (void)engine.ingest(eng_batch(k, rng, /*hub_heavy=*/true));
    }
    EXPECT_GE(engine.renumber_stats().renumbers, 1u);
    EXPECT_EQ(engine.renumber_stats().windows, 12u);
    const auto& g = engine.engine<graph::HybridStore>().graph();
    EXPECT_TRUE(g.id_map().enabled());
}

TEST(RenumberEngine, PipelineDepthTwoMatchesRenumberOffSerial)
{
    core::EngineConfig serial_cfg = eng_config(false);
    serial_cfg.oca.enabled = false;
    core::EngineConfig piped_cfg = eng_config(true);
    piped_cfg.oca.enabled = false;
    piped_cfg.pipeline_depth = 2;

    ThreadPool pool(4);
    core::HybridRealTimeEngine serial(serial_cfg, kEngVertices, pool);
    core::HybridRealTimeEngine piped(piped_cfg, kEngVertices, pool);
    piped.set_compute(
        [](const graph::SnapshotView&, const core::PendingWork&) {});
    Rng rng_a(0xbeef04);
    Rng rng_b(0xbeef04);
    for (std::uint64_t k = 1; k <= 10; ++k) {
        (void)serial.ingest(eng_batch(k, rng_a, /*hub_heavy=*/true));
        (void)piped.ingest(eng_batch(k, rng_b, /*hub_heavy=*/true));
    }
    piped.flush_pipeline();
    EXPECT_GE(piped.renumber_stats().renumbers, 1u);
    EXPECT_TRUE(piped.graph().same_topology(serial.graph()));
    // The published snapshot is logical, so it too is renumber-invariant.
    const graph::SnapshotView snap = piped.snapshot();
    EXPECT_EQ(snap.num_edges(), piped.graph().num_edges());
}

// -------------------------------- incremental state survives renumbers

analytics::PageRankParams
tight_pagerank()
{
    analytics::PageRankParams p;
    p.tolerance = 1e-12;
    p.max_iterations = 250;
    return p;
}

IncrementalConfig
inc_config(IncrementalPolicy policy)
{
    IncrementalConfig cfg;
    cfg.policy.policy = policy;
    cfg.pagerank = tight_pagerank();
    return cfg;
}

std::vector<std::vector<StreamEdge>>
inc_epochs(std::uint64_t seed)
{
    gen::StreamModel m;
    m.num_vertices = 300;
    m.num_hubs = 6;
    m.hub_mass_dst = 0.4;
    m.delete_fraction = 0.3;
    m.weighted = true;
    m.seed = seed;
    gen::EdgeStreamGenerator generator(m);
    std::vector<std::vector<StreamEdge>> out;
    for (std::size_t i = 0; i < 8; ++i) {
        out.push_back(generator.take(250));
    }
    return out;
}

/**
 * The memoized kernels key every per-vertex array by *logical* id and
 * read the graph only through its public API, so their warm state must
 * survive a renumber mid-stream bit-for-bit: delta results keep
 * matching the from-scratch references before and after each pass.
 */
template <typename Graph>
void
expect_incremental_survives_renumber(Graph& g, std::uint64_t seed)
{
    IncrementalAnalytics inc(inc_config(IncrementalPolicy::kDeltaPropagate));
    IncrementalAnalytics ref(inc_config(IncrementalPolicy::kFullRerun));
    stream::PendingAccumulator acc;
    EpochId epoch = 0;
    for (const auto& ops : inc_epochs(seed)) {
        for (const StreamEdge& e : ops) {
            if (!e.is_delete) {
                g.apply_insert(e.src, {e.dst, e.weight}, kOut);
                g.apply_insert(e.dst, {e.src, e.weight}, kIn);
            }
        }
        for (const StreamEdge& e : ops) {
            if (e.is_delete) {
                g.apply_remove(e.src, e.dst, kOut);
                g.apply_remove(e.dst, e.src, kIn);
            }
        }
        acc.note_batch(stream::EdgeBatch(epoch + 1, ops));
        const auto work = acc.hand_off(++epoch);
        // Renumber *between* publish and compute (the engine's order:
        // the pass runs at the ingest tail), with warm memo state from
        // the pre-renumber epochs, twice, with both planner modes.
        if (epoch == 3 || epoch == 6) {
            std::vector<std::uint64_t> degrees(g.num_vertices());
            for (VertexId v = 0; v < g.num_vertices(); ++v) {
                degrees[v] = static_cast<std::uint64_t>(g.degree(v, kOut)) +
                             g.degree(v, kIn);
            }
            g.apply_renumber(LocalityRenumberer::plan(
                degrees, epoch == 3 ? RenumberMode::kHubSort
                                    : RenumberMode::kDegreeGroup));
        }
        (void)inc.on_epoch(g, work);
        (void)ref.on_epoch(g, work);
        SCOPED_TRACE("epoch=" + std::to_string(epoch));
        EXPECT_EQ(inc.sssp().distances(), ref.sssp().distances());
        EXPECT_EQ(inc.bfs().hops(), ref.bfs().hops());
        EXPECT_EQ(ref.sssp().distances(), analytics::static_sssp(g, 0));
        EXPECT_EQ(ref.bfs().hops(), analytics::bfs_distances(g, 0));
        const auto& ra = inc.pagerank().ranks();
        const auto& rb = ref.pagerank().ranks();
        ASSERT_EQ(ra.size(), rb.size());
        for (std::size_t v = 0; v < ra.size(); ++v) {
            EXPECT_NEAR(ra[v], rb[v], 1e-8) << "vertex " << v;
        }
    }
    EXPECT_TRUE(g.id_map().enabled());
    EXPECT_GT(inc.delta_epochs(), 0u);
}

TEST(RenumberIncremental, AdjacencyListStateSurvivesMidStream)
{
    for (const std::uint64_t seed : harness_seeds({231})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::AdjacencyList g(300);
        expect_incremental_survives_renumber(g, seed);
    }
}

TEST(RenumberIncremental, DegreeAwareHashStateSurvivesMidStream)
{
    for (const std::uint64_t seed : harness_seeds({232})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::DegreeAwareHash g(300, tight_tuning());
        expect_incremental_survives_renumber(g, seed);
    }
}

TEST(RenumberIncremental, HybridStoreStateSurvivesMidStream)
{
    for (const std::uint64_t seed : harness_seeds({233})) {
        SCOPED_TRACE(seed_trace(seed));
        graph::HybridStore g(300, tight_tuning());
        expect_incremental_survives_renumber(g, seed);
    }
}

} // namespace
} // namespace igs
