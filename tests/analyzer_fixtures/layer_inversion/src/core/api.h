// Fixture upper-layer header; clean on its own.
#ifndef FIXTURE_CORE_API_H
#define FIXTURE_CORE_API_H

inline int
core_answer()
{
    return 42;
}

#endif // FIXTURE_CORE_API_H
