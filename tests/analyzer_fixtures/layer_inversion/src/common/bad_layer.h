// Fixture: a bottom-layer module reaching up into core/ must be
// reported as layer-inversion (tools/igs_analyzer.py --self-test).
#ifndef FIXTURE_COMMON_BAD_LAYER_H
#define FIXTURE_COMMON_BAD_LAYER_H

#include "core/api.h"

inline int
doubled_answer()
{
    return core_answer() * 2;
}

#endif // FIXTURE_COMMON_BAD_LAYER_H
