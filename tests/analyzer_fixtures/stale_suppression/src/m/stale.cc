// IGS_HOT_PATH
// Fixture: the allow(lock-order-cycle) pragma below suppresses nothing
// and must be reported as stale-suppression.  The allow(hot-path-alloc)
// pragma sits on a live allocation site in an IGS_HOT_PATH file, which
// igs_lint still needs, so it must NOT be reported.

int counter_value = 0; // igs-lint: allow(lock-order-cycle)

void
grow(Buffer& buf)
{
    // igs-lint: allow(hot-path-alloc) -- grow-only fixture append
    buf.items.push_back(1);
}
