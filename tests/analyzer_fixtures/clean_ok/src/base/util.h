// Fixture lower-layer helper; allocation-, lock- and throw-free.
#ifndef FIXTURE_BASE_UTIL_H
#define FIXTURE_BASE_UTIL_H

inline void
bump(Table& t)
{
    t.count += 1;
}

#endif // FIXTURE_BASE_UTIL_H
