// Fixture: clean hot path.  setup_tables is stop-listed (setup-time by
// contract), the append carries an audited pragma, and bump() is clean.
#include "base/util.h"

void
setup_tables(Table& t)
{
    t.slots.resize(64);
}

void
kernel_main(Table& t)
{
    setup_tables(t);
    // igs-lint: allow(hot-path-alloc) -- amortized growth, audited
    t.slots.push_back(7);
    bump(t);
}
