// Fixture: a.h <-> b.h form an include cycle.
#ifndef FIXTURE_RING_B_H
#define FIXTURE_RING_B_H

#include "ring/a.h"

struct NodeB {
    int value;
};

#endif // FIXTURE_RING_B_H
