// Fixture: a.h <-> b.h form an include cycle.
#ifndef FIXTURE_RING_A_H
#define FIXTURE_RING_A_H

#include "ring/b.h"

struct NodeA {
    int value;
};

#endif // FIXTURE_RING_A_H
