// Fixture: conflicting lock acquisition orders.  The direct pair
// (alpha/beta) and the interprocedural pair (gamma/delta, stitched
// through helper_takes_delta) must each produce a lock-order-cycle.

struct State {
    int work;
};

void
take_alpha_then_beta(State& s)
{
    MutexLock la(mu_alpha);
    MutexLock lb(mu_beta);
    s.work += 1;
}

void
take_beta_then_alpha(State& s)
{
    MutexLock lb(mu_beta);
    MutexLock la(mu_alpha);
    s.work += 1;
}

void
helper_takes_delta(State& s)
{
    MutexLock ld(mu_delta);
    s.work += 1;
}

void
take_gamma_then_delta(State& s)
{
    MutexLock lg(mu_gamma);
    helper_takes_delta(s);
}

void
take_delta_then_gamma(State& s)
{
    MutexLock ld(mu_delta);
    MutexLock lg(mu_gamma);
    s.work += 1;
}
