// Fixture helpers reached from the hot_kernel root: one allocates,
// one takes a blocking lock, one throws.
#ifndef FIXTURE_M_HELPERS_H
#define FIXTURE_M_HELPERS_H

inline void
helper_append(Buffer& buf)
{
    buf.items.push_back(1);
}

inline void
helper_block(Buffer& buf)
{
    MutexLock lock(buf.mu);
    buf.blocked += 1;
}

inline void
helper_throw(Buffer& buf)
{
    if (buf.items_used > buf.items_cap) {
        throw BufferOverflow{};
    }
}

#endif // FIXTURE_M_HELPERS_H
