// Fixture: hot_kernel is a declared hot-path root; its own body is
// clean, so every finding comes from the transitive walk into
// m/helpers.h.
#include "m/helpers.h"

void
hot_kernel(Buffer& buf)
{
    helper_append(buf);
    helper_block(buf);
    helper_throw(buf);
}
