// IGS_HOT_PATH
// Fixture: tagged as hot, but no function here appears in the hot-path
// call graph -> the tag is stale and must be reported.

int helper(int x)
{
    return x * 2;
}
