// IGS_HOT_PATH
// Fixture: this file is a hot-path root; its tag is valid.

int run(int x)
{
    return x + 1;
}
