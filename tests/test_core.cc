/**
 * @file
 * Tests for the paper's contribution layer: CAD_λ, the ABR and OCA
 * controllers, and the input-aware engines.
 */
#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/abr.h"
#include "core/cad.h"
#include "core/engine.h"
#include "core/oca.h"
#include "gen/datasets.h"
#include "sim/sim_engine.h"
#include "gen/edge_stream.h"
#include "stream/reorder.h"

namespace igs::core {
namespace {

// ------------------------------------------------------------------ cad
TEST(Cad, FormulaFromHistogram)
{
    // Batch of b=100 edges: 40 edges from degree-1 vertices, 20 from
    // degree-2 (10 vertices), 40 from two degree-20 vertices.
    Histogram h;
    h.add(1, 40);
    h.add(2, 10);
    h.add(20, 2);
    // lambda = 10: y = 40 + 20 = 60, x = 2 -> CAD = (100-60)/2 = 20.
    EXPECT_DOUBLE_EQ(cad_from_histogram(h, 100, 10), 20.0);
    // lambda = 1: y = 40, x = 12 -> CAD = 60/12 = 5.
    EXPECT_DOUBLE_EQ(cad_from_histogram(h, 100, 1), 5.0);
}

TEST(Cad, ZeroWhenNoVertexAboveLambda)
{
    Histogram h;
    h.add(1, 50);
    h.add(3, 10);
    EXPECT_DOUBLE_EQ(cad_from_histogram(h, 80, 256), 0.0);
}

std::vector<StreamEdge>
skewed_batch(std::size_t n, std::uint64_t seed)
{
    gen::StreamModel m;
    m.num_vertices = 10000;
    m.num_hubs = 4;
    m.hub_mass_dst = 0.4;
    m.zipf_s = 1.0;
    m.seed = seed;
    return gen::EdgeStreamGenerator(m).take(n);
}

TEST(Cad, ReorderedAndHashedPathsAgree)
{
    const auto edges = skewed_batch(5000, 3);
    const auto rb = stream::reorder_batch(edges, default_pool());
    const auto a = cad_from_reordered(rb, 64);
    const auto b = cad_from_batch(edges, 64);
    EXPECT_DOUBLE_EQ(a.cad_out, b.cad_out);
    EXPECT_DOUBLE_EQ(a.cad_in, b.cad_in);
    EXPECT_EQ(a.max_in_degree, b.max_in_degree);
    EXPECT_EQ(a.max_out_degree, b.max_out_degree);
}

TEST(Cad, MaxIsOverBothDirections)
{
    CadResult r;
    r.cad_out = 10.0;
    r.cad_in = 30.0;
    r.max_out_degree = 5;
    r.max_in_degree = 2;
    EXPECT_DOUBLE_EQ(r.cad(), 30.0);
    EXPECT_EQ(r.max_degree(), 5u);
}

// ------------------------------------------------------------------ abr
TEST(Abr, DefaultsToReordering)
{
    AbrController abr;
    EXPECT_TRUE(abr.reordering());
}

TEST(Abr, ActiveEveryNthBatch)
{
    AbrParams p;
    p.n = 3;
    p.threshold = 1e18; // decision will flip to "don't reorder"
    AbrController abr(p);
    const auto edges = skewed_batch(100, 1);
    const auto rb = stream::reorder_batch(edges, default_pool());
    std::vector<bool> actives;
    for (int i = 0; i < 7; ++i) {
        const auto d =
            abr.on_batch(edges, abr.reordering() ? &rb : nullptr);
        actives.push_back(d.active);
    }
    EXPECT_EQ(actives, (std::vector<bool>{true, false, false, true, false,
                                          false, true}));
}

TEST(Abr, DecisionAppliesToFollowingBatchesOnly)
{
    AbrParams p;
    p.n = 2;
    p.lambda = 4;
    p.threshold = 1e18; // unreachable: every active batch turns RO off
    AbrController abr(p);
    const auto edges = skewed_batch(1000, 2);
    const auto rb = stream::reorder_batch(edges, default_pool());
    // First batch: instrumented while still reordering (the default).
    const auto d1 = abr.on_batch(edges, &rb);
    EXPECT_TRUE(d1.reorder);
    EXPECT_TRUE(d1.active);
    ASSERT_TRUE(d1.cad.has_value());
    // The latched decision flipped for subsequent batches.
    EXPECT_FALSE(abr.reordering());
    const auto d2 = abr.on_batch(edges, nullptr);
    EXPECT_FALSE(d2.reorder);
    EXPECT_FALSE(d2.active);
}

TEST(Abr, HighCadKeepsReorderingOn)
{
    AbrParams p;
    p.n = 1; // every batch active
    p.lambda = 16;
    p.threshold = 10.0;
    AbrController abr(p);
    const auto edges = skewed_batch(5000, 4); // heavy hubs -> high CAD
    const auto rb = stream::reorder_batch(edges, default_pool());
    for (int i = 0; i < 3; ++i) {
        const auto d = abr.on_batch(edges, &rb);
        EXPECT_TRUE(d.reorder);
        EXPECT_TRUE(abr.reordering());
    }
}

TEST(Abr, InstrumentationCostDependsOnPath)
{
    AbrParams p;
    p.n = 1;
    AbrController abr(p);
    const auto edges = skewed_batch(1000, 5);
    const auto rb = stream::reorder_batch(edges, default_pool());
    const auto cheap = abr.on_batch(edges, &rb);
    // Force the hashed path by reporting no reordered view available.
    AbrController abr2(p);
    // abr2 defaults to reordering=true but gets no reordered batch:
    const auto costly = abr2.on_batch(edges, nullptr);
    EXPECT_GT(costly.instrumentation_cycles, cheap.instrumentation_cycles);
}

// ------------------------------------------------------------------ oca
TEST(Oca, AggregatesAboveThreshold)
{
    OcaController oca{OcaParams{true, 0.25, 2.0}};
    stream::OcaProbe probe;
    for (int i = 0; i < 10; ++i) {
        probe.note(4, 5); // 100% overlap
    }
    const auto d1 = oca.on_batch(&probe);
    EXPECT_TRUE(oca.aggregation_latched());
    EXPECT_TRUE(d1.defer_compute);
    // Second batch of the aggregated pair computes.
    const auto d2 = oca.on_batch(nullptr);
    EXPECT_FALSE(d2.defer_compute);
    // Pattern repeats while aggregation stays latched.
    EXPECT_TRUE(oca.on_batch(nullptr).defer_compute);
    EXPECT_FALSE(oca.on_batch(nullptr).defer_compute);
}

TEST(Oca, StaysOffBelowThreshold)
{
    OcaController oca{OcaParams{true, 0.25, 2.0}};
    stream::OcaProbe probe;
    probe.note(4, 5);
    probe.note(0, 5);
    probe.note(0, 5);
    probe.note(0, 5);
    probe.note(0, 5); // 20% overlap, below the 25% threshold
    const auto d = oca.on_batch(&probe);
    EXPECT_FALSE(oca.aggregation_latched());
    EXPECT_FALSE(d.defer_compute);
}

TEST(Oca, DisabledNeverDefers)
{
    OcaController oca{OcaParams{false, 0.25, 2.0}};
    stream::OcaProbe probe;
    probe.note(4, 5);
    for (int i = 0; i < 5; ++i) {
        EXPECT_FALSE(oca.on_batch(&probe).defer_compute);
    }
}

TEST(Oca, ReleasesPendingWhenOverlapDrops)
{
    OcaController oca{OcaParams{true, 0.25, 2.0}};
    stream::OcaProbe high;
    high.note(4, 5);
    EXPECT_TRUE(oca.on_batch(&high).defer_compute);
    // New measurement shows no overlap: aggregation unlatches and the
    // deferred round is released immediately.
    stream::OcaProbe low;
    low.note(0, 7);
    EXPECT_FALSE(oca.on_batch(&low).defer_compute);
}

// --------------------------------------------------------------- engine
EngineConfig
config_for(UpdatePolicy policy)
{
    EngineConfig cfg;
    cfg.policy = policy;
    cfg.abr.n = 2;
    return cfg;
}

stream::EdgeBatch
engine_batch(std::uint64_t id, std::size_t n, std::uint64_t seed)
{
    gen::StreamModel m;
    m.num_vertices = 2000;
    m.num_hubs = 8;
    m.hub_mass_dst = 0.3;
    m.seed = seed;
    stream::EdgeBatch b;
    b.id = id;
    b.set_edges(gen::EdgeStreamGenerator(m).take(n));
    return b;
}

class EnginePolicyTest : public ::testing::TestWithParam<UpdatePolicy> {};

TEST_P(EnginePolicyTest, ProducesBaselineEquivalentState)
{
    const UpdatePolicy policy = GetParam();
    sim::SimEngine engine(config_for(policy), sim::MachineParams{},
                     sim::SwCostParams{}, sim::HauCostParams{}, 2000);
    graph::AdjacencyList reference(2000);
    stream::RealContext ctx;
    for (std::uint64_t k = 1; k <= 4; ++k) {
        const auto batch = engine_batch(k, 1500, 70 + k);
        const auto report = engine.ingest(batch);
        EXPECT_EQ(report.batch_id, k);
        EXPECT_GT(report.update.cycles, 0u);
        stream::apply_batch_baseline(reference, batch, ctx);
    }
    EXPECT_TRUE(engine.graph().same_topology(reference));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EnginePolicyTest,
    ::testing::Values(UpdatePolicy::kBaseline, UpdatePolicy::kAlwaysReorder,
                      UpdatePolicy::kAlwaysReorderUsc,
                      UpdatePolicy::kAlwaysHau, UpdatePolicy::kAbr,
                      UpdatePolicy::kAbrUsc, UpdatePolicy::kAbrUscHau));

TEST(SimEngine, DispatchFlagsMatchPolicy)
{
    // kAbrUscHau on a low-degree stream: ABR turns reordering off after
    // the first active batch and HAU takes over.
    sim::SimEngine engine(config_for(UpdatePolicy::kAbrUscHau),
                     sim::MachineParams{}, sim::SwCostParams{},
                     sim::HauCostParams{}, 2000);
    gen::StreamModel m;
    m.num_vertices = 2000;
    m.seed = 123; // uniform: adverse
    gen::EdgeStreamGenerator g(m);
    bool saw_hau = false;
    for (std::uint64_t k = 1; k <= 4; ++k) {
        stream::EdgeBatch b;
        b.id = k;
        b.set_edges(g.take(1000));
        const auto r = engine.ingest(b);
        if (k == 1) {
            EXPECT_TRUE(r.reordered); // default-RO first batch
            EXPECT_TRUE(r.abr_active);
            ASSERT_TRUE(r.cad.has_value());
            EXPECT_LT(r.cad->cad(), engine.config().abr.threshold);
        } else {
            EXPECT_FALSE(r.reordered);
            saw_hau = saw_hau || r.used_hau;
        }
    }
    EXPECT_TRUE(saw_hau);
}

TEST(SimEngine, PendingWorkAccumulatesAcrossDeferredBatches)
{
    EngineConfig cfg = config_for(UpdatePolicy::kBaseline);
    cfg.oca.enabled = true;
    cfg.oca.threshold = 0.0; // always aggregate once measured
    cfg.abr.n = 1;           // probe every batch
    sim::SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                     sim::HauCostParams{}, 2000);
    // Batch 1 has no predecessor: OCA cannot measure overlap yet, so its
    // compute round runs immediately.
    const auto r1 = engine.ingest(engine_batch(1, 500, 7));
    EXPECT_FALSE(r1.defer_compute);
    EXPECT_TRUE(engine.compute_due());
    (void)engine.take_pending_work();
    // Batch 2 carries the first locality sample; with threshold 0 the
    // aggregation latches and defers this batch's round.
    const auto r2 = engine.ingest(engine_batch(2, 500, 8));
    EXPECT_TRUE(r2.defer_compute);
    EXPECT_FALSE(engine.compute_due());
    // Batch 3 completes the aggregated pair.
    const auto r3 = engine.ingest(engine_batch(3, 500, 9));
    EXPECT_FALSE(r3.defer_compute);
    EXPECT_TRUE(engine.compute_due());
    const auto work = engine.take_pending_work();
    EXPECT_EQ(work.batches, 2u);
    EXPECT_EQ(work.inserted.size(), 1000u);
    // Affected vertices are deduplicated.
    for (std::size_t i = 1; i < work.affected.size(); ++i) {
        ASSERT_LT(work.affected[i - 1], work.affected[i]);
    }
}

TEST(SimEngine, InstrumentationChargedOnActiveBatches)
{
    EngineConfig cfg = config_for(UpdatePolicy::kAbrUsc);
    cfg.abr.n = 4;
    sim::SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                     sim::HauCostParams{}, 2000);
    const auto r1 = engine.ingest(engine_batch(1, 1000, 9));
    EXPECT_TRUE(r1.abr_active);
    EXPECT_GT(r1.instrumentation_cycles, 0.0);
    const auto r2 = engine.ingest(engine_batch(2, 1000, 10));
    EXPECT_FALSE(r2.abr_active);
    // Inert batches still pay the (tiny) OCA latest_bid upkeep only.
    EXPECT_LT(r2.instrumentation_cycles, r1.instrumentation_cycles);
}

TEST(RealTimeEngine, RunsAllPoliciesWithRealThreads)
{
    ThreadPool pool(4);
    for (auto policy : {UpdatePolicy::kBaseline, UpdatePolicy::kAbrUsc,
                        UpdatePolicy::kAbrUscHau}) {
        RealTimeEngine engine(config_for(policy), 2000, pool);
        graph::AdjacencyList reference(2000);
        stream::RealContext ctx(pool);
        for (std::uint64_t k = 1; k <= 3; ++k) {
            const auto batch = engine_batch(k, 1200, 30 + k);
            const auto report = engine.ingest(batch);
            EXPECT_GE(report.wall_seconds, 0.0);
            // Hardware is unavailable on a real host.
            EXPECT_FALSE(report.used_hau);
            stream::apply_batch_baseline(reference, batch, ctx);
        }
        EXPECT_TRUE(engine.graph().same_topology(reference));
    }
}

TEST(Engine, GrowsVertexSpaceOnDemand)
{
    sim::SimEngine engine(config_for(UpdatePolicy::kBaseline),
                     sim::MachineParams{}, sim::SwCostParams{},
                     sim::HauCostParams{}, 4);
    stream::EdgeBatch b;
    b.id = 1;
    b.set_edges({{100, 200, 1.0f, false}});
    engine.ingest(b);
    EXPECT_GE(engine.graph().num_vertices(), 201u);
    EXPECT_EQ(engine.graph().degree(100, Direction::kOut), 1u);
}

TEST(Engine, PolicyNames)
{
    EXPECT_STREQ(to_string(UpdatePolicy::kAbrUscHau), "ABR+USC+HAU");
    EXPECT_STREQ(to_string(UpdatePolicy::kBaseline), "baseline");
}

// ------------------------------------------------- cad property / oracle

/** Naive CAD_λ for one direction: per-vertex degrees counted in a plain
 *  map over every edge (duplicates and deletes included, mirroring the
 *  production accumulation), then the paper's (b−y)/x. */
double
oracle_cad(const std::map<VertexId, std::uint64_t>& degrees, std::size_t b,
           std::uint32_t lambda)
{
    std::uint64_t y = 0;
    std::uint64_t x = 0;
    for (const auto& [v, d] : degrees) {
        if (d > lambda) {
            ++x;
        } else {
            y += d;
        }
    }
    if (x == 0) {
        return 0.0;
    }
    return static_cast<double>(b - y) / static_cast<double>(x);
}

TEST(Cad, PropertyMatchesNaiveOracleAndAbrAgrees)
{
    Rng rng(0xC0FFEE);
    for (int iter = 0; iter < 16; ++iter) {
        // Small vertex spaces force duplicates and degrees above λ; a
        // slice of deletes checks they count toward degrees like the
        // production path does.
        const std::size_t n = 200 + rng.below(1800);
        const auto v_space = static_cast<VertexId>(2 + rng.below(300));
        std::vector<StreamEdge> edges;
        edges.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            StreamEdge e;
            if (!edges.empty() && rng.below(4) == 0) {
                e = edges[rng.below(edges.size())]; // exact duplicate
            } else {
                e.src = static_cast<VertexId>(rng.below(v_space));
                e.dst = static_cast<VertexId>(rng.below(v_space));
                e.is_delete = rng.below(8) == 0;
            }
            edges.push_back(e);
        }

        std::map<VertexId, std::uint64_t> out_deg;
        std::map<VertexId, std::uint64_t> in_deg;
        for (const StreamEdge& e : edges) {
            ++out_deg[e.src];
            ++in_deg[e.dst];
        }

        for (const std::uint32_t lambda : {1u, 4u, 16u, 64u}) {
            const double co = oracle_cad(out_deg, edges.size(), lambda);
            const double ci = oracle_cad(in_deg, edges.size(), lambda);
            const CadResult got = cad_from_batch(edges, lambda);
            EXPECT_DOUBLE_EQ(got.cad_out, co);
            EXPECT_DOUBLE_EQ(got.cad_in, ci);

            // The controller must reach the same reorder verdict the
            // oracle predicts, both for a threshold the batch clears
            // (>= boundary inclusive) and one it misses.
            const double cad = std::max(co, ci);
            for (const double threshold : {cad, cad + 1.0}) {
                AbrParams p;
                p.n = 1;
                p.lambda = lambda;
                p.threshold = threshold;
                AbrController abr(p);
                const AbrDecision d = abr.on_batch(edges, nullptr);
                ASSERT_TRUE(d.cad.has_value());
                EXPECT_DOUBLE_EQ(d.cad->cad(), cad);
                EXPECT_EQ(abr.reordering(), cad >= threshold)
                    << "λ=" << lambda << " cad=" << cad
                    << " threshold=" << threshold;
            }
        }
    }
}

// ------------------------------------------------------- determinism

/** One fixed-seed replay; returns every decision + modeled cycle count. */
std::vector<std::tuple<Cycles, bool, bool, bool, bool, bool, double>>
replay_decisions(ThreadPool& pool)
{
    EngineConfig cfg = config_for(UpdatePolicy::kAbrUscHau);
    cfg.oca.enabled = true;
    sim::SimEngine engine(cfg, sim::MachineParams{}, sim::SwCostParams{},
                     sim::HauCostParams{}, 2000, pool);
    std::vector<std::tuple<Cycles, bool, bool, bool, bool, bool, double>>
        out;
    for (std::uint64_t k = 1; k <= 8; ++k) {
        const auto r = engine.ingest(engine_batch(k, 1200, 40 + k));
        out.emplace_back(r.update.cycles, r.reordered, r.used_usc,
                         r.used_hau, r.abr_active, r.defer_compute,
                         r.cad.has_value() ? r.cad->cad() : -1.0);
    }
    return out;
}

TEST(SimEngine, ModeledCyclesAndDecisionsAreDeterministic)
{
    // The host pool only parallelizes reordering and CAD accumulation,
    // whose outputs are order-independent by construction — so the modeled
    // timing must be bit-identical across runs AND across worker counts.
    ThreadPool one(1);
    ThreadPool four(4);
    const auto a = replay_decisions(one);
    const auto b = replay_decisions(four);
    const auto c = replay_decisions(four); // same pool, fresh engine
    EXPECT_EQ(a, b) << "1 vs 4 workers diverged";
    EXPECT_EQ(b, c) << "same config diverged across runs";
    // The replay must exercise real decisions, not a degenerate stream.
    bool any_reorder = false;
    bool any_cycles = false;
    for (const auto& [cycles, ro, usc, hau, active, defer, cad] : a) {
        any_reorder = any_reorder || ro;
        any_cycles = any_cycles || cycles > 0;
    }
    EXPECT_TRUE(any_reorder);
    EXPECT_TRUE(any_cycles);
}

} // namespace
} // namespace igs::core
