/**
 * @file
 * Tests for the timing substrate: cache model, NoC, virtual execution
 * scheduler, the simulated update runner (determinism + equivalence with
 * the real kernels), and the HAU engine.
 */
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "gen/edge_stream.h"
#include "graph/adjacency_list.h"
#include "graph/indexed_adjacency.h"
#include "sim/cache.h"
#include "sim/exec_sim.h"
#include "sim/hau.h"
#include "sim/machine.h"
#include "sim/noc.h"
#include "sim/sim_context.h"
#include "sim/update_runner.h"
#include "stream/update_context.h"
#include "stream/updaters.h"

namespace igs::sim {
namespace {

// ---------------------------------------------------------------- cache
TEST(Cache, HitAfterFill)
{
    Cache c(1024, 2, 64); // 16 lines, 2-way, 8 sets
    EXPECT_FALSE(c.lookup(100));
    c.fill(100);
    EXPECT_TRUE(c.lookup(100));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(1024, 2, 64); // 8 sets: lines with equal low bits collide
    // Three lines mapping to set 0 in a 2-way cache.
    c.fill(0);
    c.fill(8);
    EXPECT_TRUE(c.lookup(0)); // 0 becomes MRU
    const LineAddr evicted = c.fill(16);
    EXPECT_EQ(evicted, 8u); // LRU victim
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(16));
    EXPECT_FALSE(c.contains(8));
}

TEST(Cache, FillOfResidentLineEvictsNothing)
{
    Cache c(1024, 2, 64);
    c.fill(3);
    EXPECT_EQ(c.fill(3), ~0ull);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(1024, 2, 64);
    c.fill(5);
    c.invalidate(5);
    EXPECT_FALSE(c.contains(5));
}

TEST(CoreCacheHierarchy, FillsBothLevels)
{
    MachineParams m;
    CoreCacheHierarchy cc(m);
    EXPECT_FALSE(cc.hit_l1(7));
    EXPECT_FALSE(cc.hit_l2(7));
    cc.fill_private(7);
    EXPECT_TRUE(cc.hit_l1(7));
}

// ------------------------------------------------------------------ noc
TEST(Noc, HopsAreManhattanDistance)
{
    NocModel noc{MachineParams{}};
    EXPECT_EQ(noc.hops(0, 0), 0u);
    EXPECT_EQ(noc.hops(0, 3), 3u);   // same row
    EXPECT_EQ(noc.hops(0, 12), 3u);  // same column
    EXPECT_EQ(noc.hops(0, 15), 6u);  // opposite corner
    EXPECT_EQ(noc.hops(5, 10), 2u);
}

TEST(Noc, LatencyScalesWithDistance)
{
    NocModel noc{MachineParams{}};
    const Cycles near = noc.send(0, 1, 8, PacketClass::kData, 0);
    const Cycles far = noc.send(0, 15, 8, PacketClass::kData, 0);
    EXPECT_GT(far, near);
    EXPECT_EQ(noc.send(3, 3, 8, PacketClass::kData, 0), 1u); // local
}

TEST(Noc, TracksPerClassStats)
{
    NocModel noc{MachineParams{}};
    noc.send(0, 5, 8, PacketClass::kData, 10);
    noc.send(0, 5, 32, PacketClass::kTask, 10);
    noc.send(2, 7, 8, PacketClass::kTask, 10);
    EXPECT_EQ(noc.core_stats(PacketClass::kData)[0].packets, 1u);
    EXPECT_EQ(noc.core_stats(PacketClass::kTask)[0].packets, 1u);
    EXPECT_EQ(noc.core_stats(PacketClass::kTask)[2].packets, 1u);
    EXPECT_GT(noc.flits(PacketClass::kTask), 0u);
}

TEST(Noc, MultiFlitPacketsAddSerialization)
{
    NocModel noc{MachineParams{}};
    const Cycles small = noc.send(0, 1, 8, PacketClass::kData, 0);
    NocModel noc2{MachineParams{}};
    const Cycles big = noc2.send(0, 1, 128, PacketClass::kData, 0);
    EXPECT_GT(big, small);
}

// ------------------------------------------------------------- exec sim
TEST(ExecSim, SingleWorkerAccumulates)
{
    ExecSim ex(1, 10);
    ex.begin_task(10);
    ex.charge(5);
    ex.begin_task(10);
    ex.charge(5);
    EXPECT_EQ(ex.now(), 30u);
}

TEST(ExecSim, TasksSpreadAcrossWorkers)
{
    ExecSim ex(4, 10);
    for (int i = 0; i < 4; ++i) {
        ex.begin_task(0);
        ex.charge(100);
    }
    // Four equal tasks on four workers: makespan is one task.
    EXPECT_EQ(ex.now(), 100u);
    ex.end_phase();
    ex.begin_task(0);
    ex.charge(50);
    EXPECT_EQ(ex.now(), 150u);
}

TEST(ExecSim, LockSerializesCriticalSections)
{
    ExecSim ex(4, 4);
    // Four workers each grab the same lock for 100 cycles.
    double waited = 0.0;
    for (int i = 0; i < 4; ++i) {
        ex.begin_task(0);
        waited += ex.locked(2, 0, 100);
    }
    // Serialized: 100+200+300 cycles of waiting, makespan 400.
    EXPECT_EQ(ex.now(), 400u);
    EXPECT_DOUBLE_EQ(waited, 600.0);
    EXPECT_DOUBLE_EQ(ex.total_lock_wait(), 600.0);
}

TEST(ExecSim, DistinctLocksDoNotSerialize)
{
    ExecSim ex(4, 8);
    for (std::size_t i = 0; i < 4; ++i) {
        ex.begin_task(0);
        ex.locked(i, 0, 100);
    }
    EXPECT_EQ(ex.now(), 100u);
}

TEST(ExecSim, ChargeAllAdvancesEveryWorker)
{
    ExecSim ex(3, 1);
    ex.charge_all(500);
    ex.begin_task(0);
    ex.charge(10);
    EXPECT_EQ(ex.now(), 510u);
}

TEST(ExecSim, EnsureLockKeysGrows)
{
    ExecSim ex(2, 4);
    ex.ensure_lock_keys(1000);
    ex.begin_task(0);
    ex.locked(999, 0, 10); // must not crash
    EXPECT_GE(ex.now(), 10u);
}

// -------------------------------------------------------- update runner
stream::EdgeBatch
make_batch(std::uint64_t id, std::size_t n, std::uint64_t seed,
           double deletes = 0.0)
{
    gen::StreamModel m;
    m.num_vertices = 500;
    m.num_hubs = 10;
    m.hub_mass_dst = 0.3;
    m.delete_fraction = deletes;
    m.weighted = true;
    m.seed = seed;
    stream::EdgeBatch b;
    b.id = id;
    b.set_edges(gen::EdgeStreamGenerator(m).take(n));
    return b;
}

class RunnerModeTest : public ::testing::TestWithParam<UpdateMode> {};

TEST_P(RunnerModeTest, MatchesRealKernelState)
{
    const UpdateMode mode = GetParam();
    MachineParams machine;
    SwCostParams sw;
    HauCostParams hw;

    graph::IndexedAdjacency sim_graph(500);
    UpdateRunner runner(machine, sw, hw, 500);

    ThreadPool pool(4);
    stream::RealContext ctx(pool);
    graph::AdjacencyList real_graph(500);

    Cycles last = 0;
    for (std::uint64_t k = 1; k <= 3; ++k) {
        const auto batch = make_batch(k, 2000, 40 + k, 0.1);
        const auto stats = runner.run(sim_graph, batch, mode);
        EXPECT_GT(stats.cycles, 0u);
        last = stats.cycles;

        // Reference: real baseline kernel (all kernels are equivalent).
        stream::apply_batch_baseline(real_graph, batch, ctx);
    }
    (void)last;
    EXPECT_TRUE(sim_graph.same_topology(real_graph));
}

INSTANTIATE_TEST_SUITE_P(Modes, RunnerModeTest,
                         ::testing::Values(UpdateMode::kBaseline,
                                           UpdateMode::kReordered,
                                           UpdateMode::kReorderedUsc,
                                           UpdateMode::kHau));

TEST(UpdateRunner, DeterministicCycles)
{
    auto run_once = [](UpdateMode mode) {
        MachineParams machine;
        SwCostParams sw;
        HauCostParams hw;
        graph::IndexedAdjacency g(500);
        UpdateRunner runner(machine, sw, hw, 500);
        Cycles total = 0;
        for (std::uint64_t k = 1; k <= 3; ++k) {
            total += runner.run(g, make_batch(k, 1500, 7 + k), mode).cycles;
        }
        return total;
    };
    for (auto mode : {UpdateMode::kBaseline, UpdateMode::kReordered,
                      UpdateMode::kReorderedUsc, UpdateMode::kHau}) {
        EXPECT_EQ(run_once(mode), run_once(mode)) << to_string(mode);
    }
}

TEST(UpdateRunner, StatsCountOperations)
{
    MachineParams machine;
    SwCostParams sw;
    HauCostParams hw;
    graph::IndexedAdjacency g(500);
    UpdateRunner runner(machine, sw, hw, 500);
    const auto batch = make_batch(1, 1000, 3);
    const auto stats = runner.run(g, batch, UpdateMode::kBaseline);
    // 1000 streamed edges -> 2000 locked sub-operations.
    EXPECT_EQ(stats.lock_acquisitions, 2000u);
    EXPECT_EQ(stats.inserts + stats.weight_updates, 2000u);
}

TEST(UpdateRunner, ReorderingChargesSorts)
{
    MachineParams machine;
    SwCostParams sw;
    HauCostParams hw;
    graph::IndexedAdjacency g(500);
    UpdateRunner runner(machine, sw, hw, 500);
    const auto stats =
        runner.run(g, make_batch(1, 1000, 3), UpdateMode::kReordered);
    EXPECT_EQ(stats.sorted_edges, 2000u); // two sorts of the batch
    EXPECT_GT(stats.runs, 0u);
}

// ------------------------------------------------------------------ hau
TEST(Hau, TasksHashOverWorkerCores)
{
    MachineParams machine;
    HauCostParams hw;
    HauSimulator hau(machine, hw);
    graph::IndexedAdjacency g(1000);
    stream::EdgeBatch batch;
    batch.id = 1;
    Rng rng(5);
    for (int i = 0; i < 3000; ++i) {
        const auto s = static_cast<VertexId>(rng.below(1000));
        auto d = static_cast<VertexId>(rng.below(1000));
        if (d == s) {
            d = (d + 1) % 1000;
        }
        batch.push_edge({s, d, 1.0f, false});
    }
    const auto stats = hau.run_batch(g, batch);
    EXPECT_EQ(stats.tasks, 6000u);
    // Core 0 hosts the master thread: no consumption there.
    EXPECT_EQ(stats.per_core[0].tasks, 0u);
    std::uint64_t total = 0;
    std::uint64_t mx = 0;
    std::uint64_t mn = ~0ull;
    for (std::uint32_t c = 1; c < machine.num_cores; ++c) {
        total += stats.per_core[c].tasks;
        mx = std::max(mx, stats.per_core[c].tasks);
        mn = std::min(mn, stats.per_core[c].tasks);
    }
    EXPECT_EQ(total, 6000u);
    // Hash distribution is near-uniform (paper Fig 19: ~1-3% spread).
    EXPECT_LT(static_cast<double>(mx - mn), 0.25 * 6000.0 / 15.0);
}

TEST(Hau, LocalTileServesAlmostAllLines)
{
    MachineParams machine;
    HauCostParams hw;
    HauSimulator hau(machine, hw);
    graph::IndexedAdjacency g(2000);
    for (std::uint64_t k = 1; k <= 3; ++k) {
        stream::EdgeBatch batch;
        batch.id = k;
        gen::StreamModel m;
        m.num_vertices = 2000;
        m.seed = k;
        batch.set_edges(gen::EdgeStreamGenerator(m).take(5000));
        const auto stats = hau.run_batch(g, batch);
        std::uint64_t local = 0;
        std::uint64_t lines = 0;
        for (const auto& cs : stats.per_core) {
            local += cs.local_lines;
            lines += cs.lines;
        }
        ASSERT_GT(lines, 0u);
        // Paper Fig 20: 98-99% of edge-data lines hit the local tile.
        EXPECT_GT(static_cast<double>(local) / static_cast<double>(lines),
                  0.97);
    }
}

TEST(Hau, InsertionsBeforeDeletionsWithinBatch)
{
    MachineParams machine;
    HauCostParams hw;
    HauSimulator hau(machine, hw);
    graph::IndexedAdjacency g(10);
    stream::EdgeBatch batch;
    batch.id = 1;
    // Delete arrives *before* the insert in stream order; the ordering
    // rule still applies the insert first, so the delete removes it.
    batch.set_edges({{1, 2, 1.0f, true}, {1, 2, 1.0f, false}});
    const auto stats = hau.run_batch(g, batch);
    EXPECT_EQ(stats.inserts, 2u);  // out + in entries
    EXPECT_EQ(stats.removes, 2u);
    EXPECT_EQ(g.degree(1, Direction::kOut), 0u);
}

TEST(Hau, TaskTrafficRaisesPacketLatencyOnlyModestly)
{
    MachineParams machine;
    HauCostParams hw;
    HauSimulator hau(machine, hw);
    graph::IndexedAdjacency g(5000);
    gen::StreamModel m;
    m.num_vertices = 5000;
    m.seed = 77;
    stream::EdgeBatch batch;
    batch.id = 1;
    batch.set_edges(gen::EdgeStreamGenerator(m).take(20000));
    hau.run_batch(g, batch);
    // The counterfactual NoC saw the same data packets without the task
    // class; with tasks the data latency may rise, but only modestly
    // (paper Fig 20: <10% average increase).
    const auto& with_tasks = hau.noc().core_stats(PacketClass::kData);
    const auto& without = hau.noc_without_tasks().core_stats(PacketClass::kData);
    double a = 0.0;
    double b = 0.0;
    int cores = 0;
    for (std::size_t c = 0; c < with_tasks.size(); ++c) {
        if (without[c].packets > 0) {
            a += with_tasks[c].average_latency();
            b += without[c].average_latency();
            ++cores;
        }
    }
    ASSERT_GT(cores, 0);
    EXPECT_LT(a / b, 1.15);
}

// ------------------------------------------------------------- contexts
TEST(SimContext, PhantomLockWaitsAreBounded)
{
    // Regression test for the scheduler-divergence bug: uncontended
    // workloads must see (near-)zero lock waiting.
    ExecSim ex(16, 48000);
    SwCostParams sw;
    SimContext ctx(ex, sw);
    graph::IndexedAdjacency g(24000);
    Rng rng(3);
    ctx.for_tasks(20000, 256, [&](std::size_t) {
        const auto v = static_cast<VertexId>(rng.below(24000));
        const auto t = static_cast<VertexId>(rng.below(24000));
        ctx.locked_apply(g, v, Direction::kOut, [&] {
            return g.apply_insert(v, {t, 1.0f}, Direction::kOut);
        });
    });
    const auto stats = ctx.stats();
    // Waits below 1% of total machine-cycles.
    EXPECT_LT(stats.lock_wait_cycles,
              0.01 * 16.0 * static_cast<double>(stats.cycles));
}

} // namespace
} // namespace igs::sim

// Additional coverage: NoC accounting and cross-structure timing checks.
namespace igs::sim {
namespace {

TEST(Noc, FlitsConservedAcrossClasses)
{
    NocModel noc{MachineParams{}};
    const std::uint64_t before =
        noc.flits(PacketClass::kData) + noc.flits(PacketClass::kTask);
    EXPECT_EQ(before, 0u);
    noc.send(0, 15, 64, PacketClass::kData, 5);
    noc.send(1, 2, 32, PacketClass::kTask, 5);
    EXPECT_EQ(noc.flits(PacketClass::kData), 2u); // 64B = 2 flits
    EXPECT_EQ(noc.flits(PacketClass::kTask), 1u);
    EXPECT_GT(noc.mean_link_utilization(), 0.0);
}

TEST(ExecSim, LongerScansCostMore)
{
    SwCostParams sw;
    auto cost_of = [&](std::uint32_t degree) {
        ExecSim ex(16, 100);
        SimContext ctx(ex, sw);
        graph::IndexedAdjacency g(50);
        for (std::uint32_t t = 0; t < degree; ++t) {
            g.apply_insert(0, {t + 1, 1.0f}, Direction::kOut);
        }
        ctx.for_tasks(1, 1, [&](std::size_t) {
            ctx.locked_apply(g, 0, Direction::kOut, [&] {
                return g.apply_insert(0, {49, 1.0f}, Direction::kOut);
            });
        });
        return ctx.stats().cycles;
    };
    EXPECT_GT(cost_of(40), cost_of(4));
}

TEST(UpdateRunner, BatchesAccumulateAcrossCalls)
{
    MachineParams machine;
    SwCostParams sw;
    HauCostParams hw;
    graph::IndexedAdjacency g(500);
    UpdateRunner runner(machine, sw, hw, 500);
    const auto b1 = make_batch(1, 500, 1);
    const auto s1 = runner.run(g, b1, UpdateMode::kBaseline);
    const auto b2 = make_batch(2, 500, 2);
    const auto s2 = runner.run(g, b2, UpdateMode::kBaseline);
    // Second batch scans longer arrays: at least as many probes.
    EXPECT_GE(s2.probes + 100, s1.probes);
    // Each streamed edge contributes an out-entry and an in-entry;
    // num_edges counts out-entries only.
    EXPECT_EQ(g.num_edges() * 2, s1.inserts + s2.inserts);
}

TEST(Hau, LastStatsExposedThroughRunner)
{
    MachineParams machine;
    SwCostParams sw;
    HauCostParams hw;
    graph::IndexedAdjacency g(500);
    UpdateRunner runner(machine, sw, hw, 500);
    EXPECT_FALSE(runner.last_hau_stats().has_value());
    runner.run(g, make_batch(1, 200, 3), UpdateMode::kHau);
    ASSERT_TRUE(runner.last_hau_stats().has_value());
    EXPECT_EQ(runner.last_hau_stats()->tasks, 400u);
}

} // namespace
} // namespace igs::sim
