#!/usr/bin/env python3
"""Smoke-run one bench binary: tiny workload, `--json` export, schema check.

Runs the binary with IGS_BENCH_SCALE=0.1 (unless overridden) and
`--json=<out>`, asserts a zero exit status, and validates the produced
document against the schema rules shared with tools/golden_check.py.
Extra arguments after `--` are forwarded to the binary (used to pass
`--quick` to the wide sweeps and a filter to the google-benchmark runner).

Usage: bench_smoke.py --binary <path> --out <json> [--scale S] [-- args...]
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from golden_check import check_schema  # noqa: E402


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True)
    ap.add_argument("--out", required=True)
    ap.add_argument("--scale", default="0.1")
    ap.add_argument("extra", nargs="*", help="forwarded to the binary")
    args = ap.parse_args()

    env = dict(os.environ)
    env.setdefault("IGS_BENCH_SCALE", args.scale)

    cmd = [args.binary, f"--json={args.out}"] + args.extra
    proc = subprocess.run(cmd, env=env)
    if proc.returncode != 0:
        print(f"bench_smoke: {cmd} exited {proc.returncode}")
        return 1

    try:
        with open(args.out) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_smoke: cannot parse {args.out}: {e}")
        return 1

    errs = check_schema(doc, os.path.basename(args.binary))
    for key in ("counters", "gauges", "histograms", "phases"):
        if not isinstance(doc.get("telemetry", {}).get(key), dict):
            errs.append(f"telemetry.{key} missing")
    if errs:
        print("\n".join(errs))
        return 1

    print(f"bench_smoke OK: {os.path.basename(args.binary)} "
          f"({len(doc['streams'])} streams, "
          f"{len(doc['telemetry']['counters'])} counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
