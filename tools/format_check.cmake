# clang-format drift check, wired as the `format_check` ctest (see the
# top-level CMakeLists.txt).  Run as:
#   cmake -DCLANG_FORMAT=... -DSOURCE_DIR=... [-DFORMAT_FATAL=ON]
#         -P tools/format_check.cmake
#
# Two modes:
#   FORMAT_FATAL=OFF (default)  drift is reported, never fails.  Used
#       when the detected clang-format major differs from the pin in
#       tools/format_version (cross-major output differs spuriously) or
#       the one-time blessed reformat pass has not landed yet
#       (tools/.format_blessed absent).
#   FORMAT_FATAL=ON   any drift fails the test.  The top-level
#       CMakeLists.txt turns this on automatically once the pinned major
#       is the one installed AND tools/.format_blessed exists — i.e.
#       from the commit that lands `tools/format_all.sh --bless` onward,
#       format_check is a hard CI failure.

file(GLOB_RECURSE files RELATIVE ${SOURCE_DIR}
    ${SOURCE_DIR}/src/*.h ${SOURCE_DIR}/src/*.cc
    ${SOURCE_DIR}/bench/*.h ${SOURCE_DIR}/bench/*.cc
    ${SOURCE_DIR}/tests/*.h ${SOURCE_DIR}/tests/*.cc
    ${SOURCE_DIR}/examples/*.cc ${SOURCE_DIR}/examples/*.cpp)

set(drifted 0)
set(checked 0)
foreach(f ${files})
    if(f MATCHES "lint_fixtures|analyzer_fixtures|semantic_fixtures|/build")
        continue()
    endif()
    math(EXPR checked "${checked}+1")
    execute_process(
        COMMAND ${CLANG_FORMAT} --dry-run ${SOURCE_DIR}/${f}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0 OR NOT err STREQUAL "")
        math(EXPR drifted "${drifted}+1")
        message(STATUS "format drift: ${f}")
    endif()
endforeach()

if(FORMAT_FATAL AND drifted GREATER 0)
    message(FATAL_ERROR
        "format_check: ${drifted}/${checked} file(s) differ from "
        ".clang-format under the pinned clang-format major "
        "(tools/format_version); run tools/format_all.sh")
endif()
if(FORMAT_FATAL)
    message(STATUS "format_check: ${drifted}/${checked} file(s) drifted "
                   "(enforced: pinned major + blessed pass landed)")
else()
    message(STATUS "format_check: ${drifted}/${checked} file(s) differ from "
                   ".clang-format (informational: unpinned clang-format "
                   "major or blessed pass not landed yet)")
endif()
