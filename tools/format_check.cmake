# Non-fatal clang-format drift report, wired as the `format_check` ctest
# (see the top-level CMakeLists.txt).  Run as:
#   cmake -DCLANG_FORMAT=... -DSOURCE_DIR=... -P tools/format_check.cmake
#
# Deliberately never fails: .clang-format documents the house style for
# new code, but existing files are not reformatted retroactively (diff
# churn would swamp review), so drift is reported, not enforced.

file(GLOB_RECURSE files RELATIVE ${SOURCE_DIR}
    ${SOURCE_DIR}/src/*.h ${SOURCE_DIR}/src/*.cc
    ${SOURCE_DIR}/bench/*.h ${SOURCE_DIR}/bench/*.cc
    ${SOURCE_DIR}/tests/*.h ${SOURCE_DIR}/tests/*.cc
    ${SOURCE_DIR}/examples/*.cc ${SOURCE_DIR}/examples/*.cpp)

set(drifted 0)
set(checked 0)
foreach(f ${files})
    if(f MATCHES "lint_fixtures|analyzer_fixtures|/build")
        continue()
    endif()
    math(EXPR checked "${checked}+1")
    execute_process(
        COMMAND ${CLANG_FORMAT} --dry-run ${SOURCE_DIR}/${f}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0 OR NOT err STREQUAL "")
        math(EXPR drifted "${drifted}+1")
        message(STATUS "format drift: ${f}")
    endif()
endforeach()

message(STATUS "format_check: ${drifted}/${checked} file(s) differ from "
               ".clang-format (informational only, never fatal)")
