#!/usr/bin/env bash
# check_matrix.sh — configure + build + run the tier-1 suite under the
# concurrency-correctness matrix:
#
#   asan  ASan + UBSan   (-DIGS_SANITIZE=address,undefined, gcc or clang)
#   tsan  ThreadSanitizer (-DIGS_SANITIZE=thread)
#   tsan-pipeline  focused TSan deep-run of the depth>=2 pipeline tests
#         (test_pipeline's concurrent publish/compute interleavings,
#         DESIGN.md §11) repeated until-fail; shares the tsan build tree
#   asan-hybrid / tsan-hybrid  focused deep-runs of the hybrid-store
#         backend tests (tier promotions under the contended lock and
#         USC paths, DESIGN.md §12) repeated until-fail; share the asan
#         and tsan build trees respectively
#   tsan-incremental  focused TSan deep-run of the incremental-analytics
#         equivalence harness and the depth>=2 dirty-set isolation test
#         (memoized kernel state vs the published snapshot's dirty set,
#         DESIGN.md §14) repeated until-fail; shares the tsan build tree
#   tsan-renumber  focused TSan deep-run of the vertex-id indirection /
#         locality-renumbering suite (renumber at the ingest tail vs the
#         depth>=2 compute stage reading published snapshots, DESIGN.md
#         §16) repeated until-fail; shares the tsan build tree
#   tsa   clang -Wthread-safety as errors (-DIGS_THREAD_SAFETY=ON);
#         compile-only analysis, then the plain test suite.
#         Skipped (with a notice) when no clang++ is on PATH — the
#         annotations compile as no-ops under gcc, so there is nothing
#         to analyze.
#   lint  tools/igs_lint.py repo rules + self-test (via ctest -R lint)
#   analyze  tools/igs_analyzer.py whole-program rules (module-layer DAG,
#         lock-order cycles, hot-path escapes) + fixture self-test
#   semantic  tools/igs_semantic.py semantic passes (template-aware
#         hot-path walk, snapshot lifetimes, backend contracts,
#         telemetry-key registry) + fixture self-test
#   dataflow  tools/igs_dataflow.py interprocedural passes (epoch role
#         proofs, atomic publication pairing, hot-path value ranges)
#         + fixture self-test — the static counterpart of the tsan legs
#
# Usage:  tools/check_matrix.sh [leg ...]
#         (default: lint analyze semantic dataflow asan asan-hybrid tsan
#          tsan-pipeline tsan-hybrid tsan-incremental tsan-renumber tsa)
#
# Each leg builds in its own tree (build-check-<leg>) with
# CMAKE_BUILD_TYPE=Debug so IGS_DCHECK and the Spinlock owner assertions
# are live, and with benches/examples off to keep the matrix fast — the
# tier-1 *tests* always build and run in full.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
LEGS=("$@")
if [ ${#LEGS[@]} -eq 0 ]; then
    LEGS=(lint analyze semantic dataflow asan asan-hybrid tsan
          tsan-pipeline tsan-hybrid tsan-incremental tsan-renumber tsa)
fi

# TSan suppressions: intentionally empty unless a race is provably benign
# AND documented inline (see DESIGN.md §8). Every entry needs a comment
# explaining why suppression is sound — prefer fixing with atomics.
TSAN_SUPP="$ROOT/tools/tsan.supp"

PASSED=()
FAILED=()
SKIPPED=()

# Optional per-leg overrides, set by the caller before run_leg:
#   IGS_CHECK_BDIR  build tree to (re)use instead of build-check-<leg>
#   CTEST_EXTRA     extra ctest arguments (array), e.g. a -R filter
run_leg() {
    local leg="$1"; shift
    local bdir="${IGS_CHECK_BDIR:-$ROOT/build-check-$leg}"
    local cmake_extra=("$@")
    local cc_env=()

    echo "=== [$leg] configure ($bdir) ==="
    if ! cmake -B "$bdir" -S "$ROOT" \
            -DCMAKE_BUILD_TYPE=Debug \
            -DIGS_BUILD_BENCH=OFF -DIGS_BUILD_EXAMPLES=OFF \
            "${cmake_extra[@]}"; then
        FAILED+=("$leg (configure)"); return 1
    fi
    echo "=== [$leg] build ==="
    if ! cmake --build "$bdir" -j "$JOBS"; then
        FAILED+=("$leg (build)"); return 1
    fi
    echo "=== [$leg] ctest ==="
    local env_prefix=()
    case "$leg" in
      tsan*)
        if [ -s "$TSAN_SUPP" ]; then
            env_prefix=(env TSAN_OPTIONS="suppressions=$TSAN_SUPP ${TSAN_OPTIONS:-}")
        fi
        ;;
    esac
    if ! (cd "$bdir" && "${env_prefix[@]}" ctest --output-on-failure -j "$JOBS" \
            ${CTEST_EXTRA[@]+"${CTEST_EXTRA[@]}"}); then
        FAILED+=("$leg (ctest)"); return 1
    fi
    PASSED+=("$leg")
}

for leg in "${LEGS[@]}"; do
    case "$leg" in
      lint)
        echo "=== [lint] igs_lint + self-test ==="
        if python3 "$ROOT/tools/igs_lint.py" --root "$ROOT" &&
           python3 "$ROOT/tools/igs_lint.py" --root "$ROOT" --self-test; then
            PASSED+=(lint)
        else
            FAILED+=(lint)
        fi
        ;;
      analyze)
        echo "=== [analyze] igs_analyzer + self-test ==="
        # No --compile-commands: the analyzer picks up build/ when it is
        # configured and falls back to a directory walk otherwise.
        if python3 "$ROOT/tools/igs_analyzer.py" --root "$ROOT" &&
           python3 "$ROOT/tools/igs_analyzer.py" --root "$ROOT" --self-test; then
            PASSED+=(analyze)
        else
            FAILED+=(analyze)
        fi
        ;;
      semantic)
        echo "=== [semantic] igs_semantic + self-test ==="
        # No --compile-commands: the libclang frontend is optional and
        # auto-detected; the lexical frontend covers everything else.
        if python3 "$ROOT/tools/igs_semantic.py" --root "$ROOT" &&
           python3 "$ROOT/tools/igs_semantic.py" --root "$ROOT" --self-test; then
            PASSED+=(semantic)
        else
            FAILED+=(semantic)
        fi
        ;;
      dataflow)
        echo "=== [dataflow] igs_dataflow + self-test ==="
        # Static counterpart of the tsan-* legs: role/publication/
        # interval proofs over the same pipeline edges.
        if python3 "$ROOT/tools/igs_dataflow.py" --root "$ROOT" &&
           python3 "$ROOT/tools/igs_dataflow.py" --root "$ROOT" --self-test; then
            PASSED+=(dataflow)
        else
            FAILED+=(dataflow)
        fi
        ;;
      asan)
        run_leg asan -DIGS_SANITIZE=address,undefined
        ;;
      tsan)
        run_leg tsan -DIGS_SANITIZE=thread
        ;;
      tsan-pipeline)
        # The plain tsan leg already runs test_pipeline once as part of
        # the full suite; this leg re-runs the pipeline/epoch tests
        # (which exercise the depth>=2 concurrent publish/compute path)
        # several times to widen schedule coverage.  Reuses the tsan
        # tree, so running after `tsan` costs no extra build.
        IGS_CHECK_BDIR="$ROOT/build-check-tsan"
        CTEST_EXTRA=(-R 'Pipeline|Epochs|SnapshotStore' --repeat until-fail:5)
        run_leg tsan-pipeline -DIGS_SANITIZE=thread
        unset IGS_CHECK_BDIR CTEST_EXTRA
        ;;
      asan-hybrid)
        # Focused ASan deep-run of the hybrid-store tests: tier
        # promotions move edges between the inline record, the sorted
        # heap array and the hash index, so the randomized and
        # cross-backend suites are re-run until-fail to shake out
        # lifetime bugs.  Reuses the asan tree (no extra build after
        # `asan`).
        IGS_CHECK_BDIR="$ROOT/build-check-asan"
        CTEST_EXTRA=(-R 'Hybrid|CrossBackend' --repeat until-fail:3)
        run_leg asan-hybrid -DIGS_SANITIZE=address,undefined
        unset IGS_CHECK_BDIR CTEST_EXTRA
        ;;
      tsan-hybrid)
        # Focused TSan deep-run of the hybrid backend under contention:
        # the contended baseline/USC kernels over HybridStore and the
        # backend-selectable engine (pipeline depth 2 included).  Reuses
        # the tsan tree.
        IGS_CHECK_BDIR="$ROOT/build-check-tsan"
        CTEST_EXTRA=(-R 'Hybrid|CrossBackend' --repeat until-fail:3)
        run_leg tsan-hybrid -DIGS_SANITIZE=thread
        unset IGS_CHECK_BDIR CTEST_EXTRA
        ;;
      tsan-incremental)
        # Focused TSan deep-run of the incremental-analytics suite: the
        # randomized equivalence harness across all three backends plus
        # the depth-2 test where the memoized bundle computes inside the
        # engine's compute callback against the published snapshot.
        # Reuses the tsan tree.
        IGS_CHECK_BDIR="$ROOT/build-check-tsan"
        CTEST_EXTRA=(-R 'Incremental|DirtySet' --repeat until-fail:3)
        run_leg tsan-incremental -DIGS_SANITIZE=thread
        unset IGS_CHECK_BDIR CTEST_EXTRA
        ;;
      tsan-renumber)
        # Focused TSan deep-run of the renumber suite: the engine applies
        # a renumber (live-row move-permute + map rebind) at the ingest
        # tail while the depth>=2 compute stage reads published snapshot
        # copies, so these schedules are the racy-by-construction ones.
        # Reuses the tsan tree.
        IGS_CHECK_BDIR="$ROOT/build-check-tsan"
        CTEST_EXTRA=(-R 'Renumber' --repeat until-fail:3)
        run_leg tsan-renumber -DIGS_SANITIZE=thread
        unset IGS_CHECK_BDIR CTEST_EXTRA
        ;;
      tsa)
        if command -v clang++ >/dev/null 2>&1; then
            CC=clang CXX=clang++ run_leg tsa -DIGS_THREAD_SAFETY=ON \
                -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++
        else
            echo "=== [tsa] SKIPPED: clang++ not found (annotations are" \
                 "no-ops under this toolchain) ==="
            SKIPPED+=(tsa)
        fi
        ;;
      *)
        echo "unknown leg: $leg (known: lint analyze semantic dataflow" \
             "asan asan-hybrid tsan tsan-pipeline tsan-hybrid" \
             "tsan-incremental tsan-renumber tsa)" >&2
        FAILED+=("$leg (unknown)")
        ;;
    esac
done

echo
echo "=== check matrix summary ==="
[ ${#PASSED[@]} -gt 0 ] && echo "passed:  ${PASSED[*]}"
[ ${#SKIPPED[@]} -gt 0 ] && echo "skipped: ${SKIPPED[*]}"
if [ ${#FAILED[@]} -gt 0 ]; then
    echo "FAILED:  ${FAILED[*]}"
    exit 1
fi
exit 0
