#!/usr/bin/env python3
"""igs_dataflow — interprocedural dataflow tier for igstream.

The fourth analysis tier (after igs_lint's per-line rules, igs_analyzer's
include/call-graph walk, and igs_semantic's declaration-level passes):
abstract interpretation over the whole-program Model the semantic front
end parses (tools/semantic/, shared parallel parse + on-disk cache).
Three pass families (DESIGN.md §15):

  roles        epoch-ownership protocol verification: infer compute-role
               entry points (set_compute/attach registrations, the
               engine's in-flight std::thread spawn) and prove their
               call graphs never reach live-graph mutators or concrete
               live-backend read paths — per backend, via the explicit-
               instantiation binding.
  publication  atomic publication pairing: every release store needs an
               acquire-side observer of the same object (and vice
               versa); relaxed writes to publication objects are
               flagged.  Findings cite the check_matrix.sh TSan leg that
               exercises the same edge dynamically.
  intervals    value-range/narrowing analysis on the [hot_paths] roots:
               provable uint32 overflow (constant propagation) and
               unguarded wide->narrow casts (guard-macro facts).

Findings honour igs_lint's `igs-lint: allow(<rule>)` pragmas, the shared
audited baseline (tools/analysis_baseline.json, section igs_dataflow)
with stale-entry detection, and are emitted as SARIF 2.1.0 through the
emitter shared with igs_analyzer/igs_semantic.  `--diff-base <ref>`
scopes the exit code to files changed since the merge base (CI);
`--matrix` writes the inferred role-assignment matrix artifact.

Exit codes: 0 clean / only baselined, 1 findings, 2 usage error.
"""

import argparse
import json
import os
import subprocess
import sys
import time
import tomllib

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from dataflow import intervals, publication, roles  # noqa: E402
from semantic import baseline, parse_cache, sarif  # noqa: E402
from semantic.passes import ALLOW_PRAGMA  # noqa: E402

TOOL_NAME = "igs_dataflow"

DATAFLOW_RULES = (
    "compute-role-mutates-live", "compute-role-reads-live",
    "backend-role-coverage",
    "unpaired-release-store", "unpaired-acquire-load",
    "relaxed-publication-store",
    "narrowing-overflow", "unproven-narrowing",
    "stale-baseline", "stale-suppression",
)

# Rules owned exclusively by this tool: an allow() pragma for one of
# these that suppresses nothing here is stale.
EXCLUSIVE_RULES = frozenset(r for r in DATAFLOW_RULES
                            if not r.startswith("stale-"))

RULE_DESCRIPTIONS = {
    "compute-role-mutates-live":
        "Compute-role call graph reaches a live-graph mutator; the "
        "compute round overlaps the next epoch's updates.",
    "compute-role-reads-live":
        "Compute-role call graph reads a concretely-typed live backend "
        "instead of SnapshotView/DirtySetView state.",
    "backend-role-coverage":
        "engine_backend=true backend is bound by no engine "
        "instantiation, so the role proof cannot cover it.",
    "unpaired-release-store":
        "Release-ordered atomic write with no acquire-side observer of "
        "the same object anywhere in src/.",
    "unpaired-acquire-load":
        "Acquire-ordered atomic read with no release-side producer of "
        "the same object anywhere in src/.",
    "relaxed-publication-store":
        "Relaxed atomic write to an object that carries acquire/release "
        "publication ordering elsewhere.",
    "narrowing-overflow":
        "static_cast to a narrow unsigned type provably overflows "
        "(constant propagation).",
    "unproven-narrowing":
        "Wide integer narrowed on a hot-path root file with no "
        "dominating guard-macro bound.",
    "stale-baseline":
        "Audited baseline entry matches no current finding.",
    "stale-suppression":
        "allow() pragma for a dataflow-only rule suppresses nothing.",
}


def check_stale_pragmas(model, findings):
    """allow() pragmas for dataflow-exclusive rules must suppress a
    finding; a pragma that outlives its finding is a hole in the gate."""
    suppressed = {(f.path, ln, f.rule)
                  for f in findings if f.suppressed
                  for ln in (f.line, f.line - 1)}
    for rel, fm in sorted(model.files.items()):
        for lineno, text in sorted(fm.comments.items()):
            m = ALLOW_PRAGMA.search(text)
            if not m or m.group(1) not in EXCLUSIVE_RULES:
                continue
            if (rel, lineno, m.group(1)) not in suppressed:
                from semantic.model import Finding
                findings.append(Finding(
                    rel, lineno, "stale-suppression",
                    f"allow({m.group(1)}) pragma suppresses no "
                    f"igs_dataflow finding; remove it"))


def run_analysis(root, config, frontend="auto", compile_commands=None,
                 model=None):
    if model is None:
        model = parse_cache.build_model(root, config, frontend,
                                        compile_commands)
    findings = []
    timings = {}
    for name, pass_mod in (("roles", roles),
                           ("publication", publication),
                           ("intervals", intervals)):
        t0 = time.monotonic()
        pass_mod.run(model, config, findings)
        timings[name] = round(time.monotonic() - t0, 3)
    check_stale_pragmas(model, findings)
    model.pass_timings = timings
    return model, findings


def changed_files(root, diff_base):
    try:
        base = subprocess.run(
            ["git", "merge-base", diff_base, "HEAD"], cwd=root,
            capture_output=True, text=True, check=True).stdout.strip()
        out = subprocess.run(
            ["git", "diff", "--name-only", base, "--"], cwd=root,
            capture_output=True, text=True, check=True).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    return {l.strip() for l in out.splitlines() if l.strip()}


def main(argv=None):
    here = os.path.dirname(os.path.abspath(__file__))
    default_root = os.path.dirname(here)
    ap = argparse.ArgumentParser(prog=TOOL_NAME,
                                 description=__doc__.splitlines()[1])
    ap.add_argument("--root", default=default_root)
    ap.add_argument("--layers",
                    default=os.path.join(here, "layers.toml"))
    ap.add_argument("--compile-commands",
                    default=os.path.join(default_root, "build",
                                         "compile_commands.json"))
    ap.add_argument("--frontend", choices=("auto", "clang", "lex"),
                    default="auto")
    ap.add_argument("--sarif", metavar="PATH")
    ap.add_argument("--matrix", metavar="PATH",
                    help="write the role-assignment matrix (JSON)")
    ap.add_argument("--baseline",
                    default=os.path.join(here, "analysis_baseline.json"))
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite this tool's baseline section from "
                         "current findings (justifications by review)")
    ap.add_argument("--diff-base", metavar="REF",
                    help="only fail on findings in files changed since "
                         "the merge base with REF")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return run_self_test(args.root)

    try:
        with open(args.layers, "rb") as f:
            config = tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        print(f"igs_dataflow: cannot load {args.layers}: {exc}",
              file=sys.stderr)
        return 2

    cc = args.compile_commands if args.frontend != "lex" else None
    model, findings = run_analysis(args.root, config, args.frontend, cc)

    if args.update_baseline:
        baseline.write_template(args.baseline, findings, tool=TOOL_NAME)
        print(f"igs_dataflow: baseline section written to "
              f"{args.baseline}")
        return 0

    entries = baseline.load(args.baseline, tool=TOOL_NAME)
    baseline_rel = os.path.relpath(args.baseline, args.root)
    findings.extend(baseline.apply(findings, entries, baseline_rel))

    if args.matrix:
        with open(args.matrix, "w", encoding="utf-8") as f:
            json.dump(model.role_matrix, f, indent=2)
            f.write("\n")
    if args.sarif:
        sarif.write_sarif(args.sarif, TOOL_NAME, findings, args.root,
                          RULE_DESCRIPTIONS, DATAFLOW_RULES)

    active = [f for f in findings if not f.suppressed and not f.baselined]
    gate = active
    if args.diff_base:
        changed = changed_files(args.root, args.diff_base)
        if changed is not None:
            # Coverage holes and stale audit entries gate regardless of
            # the diff: both are whole-tree invariants, not line edits.
            gate = [f for f in active
                    if f.path in changed or f.rule.startswith("stale-")
                    or f.rule == "backend-role-coverage"]
    for f in active:
        mark = "" if f in gate else " [outside diff scope]"
        print(f"{f}{mark}")

    ps = getattr(model, "parse_stats", {})
    pt = getattr(model, "pass_timings", {})
    timing = ", ".join([f"parse {ps.get('seconds', 0)}s "
                        f"({ps.get('jobs', 1)}j, "
                        f"{ps.get('cache_hits', 0)} cached)"] +
                       [f"{k} {v}s" for k, v in pt.items()])
    print(f"igs_dataflow: {'FAIL' if gate else 'OK'} "
          f"({ps.get('files', len(model.files))} files, "
          f"frontend={model.frontend}, {len(active)} finding(s), "
          f"{len(gate)} gating; {timing})")
    if not gate and active and args.diff_base:
        print("igs_dataflow: non-gating findings above predate "
              "--diff-base; fix or baseline them in a follow-up")
    return 1 if gate else 0


# --- self-test over tests/dataflow_fixtures ------------------------------

# fixture name -> {"rules": {rule: [(path, line)]}, "contains": [...],
# "not_contains": [...]}.  Line 0 matches any line.  Any finding with a
# rule outside the expectation fails the fixture (exact-SARIF check).
SELF_TEST_EXPECTATIONS = {
    "clean_ok": {"rules": {}},
    "compute_mutates_live": {
        "rules": {"compute-role-mutates-live":
                  [("src/app/pipeline.cc", 14)]},
        "contains": ["apply_insert"],
    },
    "compute_reads_live_graph": {
        "rules": {"compute-role-reads-live":
                  [("src/app/analytics.h", 19)]},
        "contains": ["[backend: MiniStore]"],
    },
    "relaxed_publish": {
        "rules": {"relaxed-publication-store":
                  [("src/core/flag.h", 18)]},
        "contains": ["tsan-pipeline"],
    },
    "unpaired_release": {
        "rules": {"unpaired-release-store": [("src/core/oneway.h", 10)]},
    },
    "unpaired_acquire": {
        "rules": {"unpaired-acquire-load": [("src/core/oneway.h", 9)]},
    },
    "narrowing_overflow": {
        "rules": {"narrowing-overflow": [("src/stream/offsets.cc", 9)]},
        "contains": ["5000000000"],
    },
    "unproven_narrowing": {
        "rules": {"unproven-narrowing": [("src/stream/offsets.cc", 20)]},
        "not_contains": ["guarded_total"],
    },
    "missing_role_coverage": {
        "rules": {"backend-role-coverage":
                  [("src/graph/other_store.h", 5)]},
        "contains": ["OtherStore"],
    },
}


def run_self_test(root):
    fixtures = os.path.join(root, "tests", "dataflow_fixtures")
    if not os.path.isdir(fixtures):
        print(f"igs_dataflow: fixture dir missing: {fixtures}",
              file=sys.stderr)
        return 2
    failures = []
    for name, exp in sorted(SELF_TEST_EXPECTATIONS.items()):
        fdir = os.path.join(fixtures, name)
        layers = os.path.join(fdir, "layers.toml")
        with open(layers, "rb") as f:
            config = tomllib.load(f)
        _model, findings = run_analysis(fdir, config, frontend="lex")
        doc = sarif.sarif_document(TOOL_NAME, findings, fdir,
                                   RULE_DESCRIPTIONS, DATAFLOW_RULES)
        got = []
        messages = []
        for res in doc["runs"][0]["results"]:
            loc = res["locations"][0]["physicalLocation"]
            got.append((res["ruleId"],
                        loc["artifactLocation"]["uri"],
                        loc["region"]["startLine"]))
            messages.append(res["message"]["text"])
        want = [(rule, path, line)
                for rule, locs in exp["rules"].items()
                for path, line in locs]
        for rule, path, line in want:
            hit = any(g[0] == rule and g[1] == path and
                      (line == 0 or g[2] == line) for g in got)
            if not hit:
                failures.append(f"{name}: expected [{rule}] at "
                                f"{path}:{line}, got {sorted(got)}")
        expected_rules = set(exp["rules"])
        for g in got:
            if g[0] not in expected_rules:
                failures.append(f"{name}: unexpected finding "
                                f"[{g[0]}] at {g[1]}:{g[2]}")
        for needle in exp.get("contains", ()):
            if not any(needle in m for m in messages):
                failures.append(f"{name}: no finding message contains "
                                f"{needle!r}")
        for needle in exp.get("not_contains", ()):
            if any(needle in m for m in messages):
                failures.append(f"{name}: a finding message contains "
                                f"forbidden {needle!r}")
    if failures:
        for f in failures:
            print(f"igs_dataflow self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"igs_dataflow self-test: OK "
          f"({len(SELF_TEST_EXPECTATIONS)} fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
