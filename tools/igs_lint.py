#!/usr/bin/env python3
"""igs_lint — repo-specific static checks for igstream.

Wired as the `lint` ctest/CMake target.  Enforces invariants that neither
the compiler nor clang's thread-safety analysis can express:

  hot-path-alloc      Files tagged with a `// IGS_HOT_PATH` line comment
                      (the radix-reorder pipeline and the USC FlatWeightTable
                      path) must not allocate or grow containers:
                      std::unordered_map/set, new, make_unique/make_shared,
                      malloc-family calls, and growth methods (push_back,
                      emplace_back, resize, reserve, insert, emplace, append)
                      are flagged.  Audited grow-only arena sites carry an
                      `igs-lint: allow(hot-path-alloc)` comment on the same
                      or the preceding line.
  bare-mutex          Outside src/common/, blocking synchronization must use
                      igs::Mutex or igs::Spinlock (both visible to the
                      thread-safety analysis), never a bare std::*mutex.
  check-side-effect   IGS_CHECK/IGS_DCHECK/IGS_CHECK_MSG arguments must be
                      side-effect free: IGS_DCHECK compiles out under NDEBUG,
                      so a mutation inside it changes release behaviour.
  atomic-memory-order Everywhere under src/ (every module, including
                      src/gen) every atomic operation spells its
                      memory_order explicitly — the implicit seq_cst
                      default hides the cost and the intent on hot paths.
  header-guard        src/**/*.h guards follow IGS_<PATH>_H canonically.
  include-hygiene     Quoted includes are src-root-relative (or a sibling
                      file); no `..` traversal, no <bits/...> internals.

Usage:
  igs_lint.py [--root DIR]      lint the repo rooted at DIR (default: the
                                repository containing this script)
  igs_lint.py --self-test       run the rules against tests/lint_fixtures
                                and assert every rule fires where expected

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
SOURCE_EXTS = (".h", ".cc")
EXCLUDED_PARTS = ("lint_fixtures", "analyzer_fixtures",
                  "semantic_fixtures", "dataflow_fixtures", "build")

HOT_PATH_TAG = re.compile(r"^\s*//\s*IGS_HOT_PATH\s*$")
ALLOW_PRAGMA = re.compile(r"igs-lint:\s*allow\(([a-z-]+)")

HOT_ALLOC_PATTERNS = [
    (re.compile(r"std::unordered_(map|set)\b"), "std::unordered_{map,set}"),
    (re.compile(r"\bnew\b"), "new expression"),
    (re.compile(r"std::make_(unique|shared)\b"), "std::make_unique/shared"),
    (re.compile(r"\b(malloc|calloc|realloc|strdup)\s*\("), "malloc-family call"),
    (re.compile(
        r"\.\s*(push_back|emplace_back|resize|reserve|insert|emplace|append)"
        r"\s*\("),
     "container growth"),
]

BARE_MUTEX = re.compile(r"std::(recursive_|timed_|shared_)?mutex\b")

CHECK_MACROS = re.compile(r"\b(IGS_CHECK_MSG|IGS_CHECK|IGS_DCHECK)\s*\(")
SIDE_EFFECT_PATTERNS = [
    (re.compile(r"(\+\+|--)"), "increment/decrement"),
    (re.compile(r"(?<![=!<>+\-*/%&|^])=(?![=])"), "assignment"),
    (re.compile(r"(\+|-|\*|/|%|&|\||\^|<<|>>)="), "compound assignment"),
    (re.compile(
        r"\.\s*(push_back|pop_back|insert|erase|emplace|clear|assign|reset"
        r"|release|swap)\s*\("),
     "mutating call"),
]

ATOMIC_OPS = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or"
    r"|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")
ATOMIC_SCOPE = ("src/",)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def blank_comments_and_strings(text):
    """Return (code, comments): `code` is `text` with comment bodies and
    string/char literal contents replaced by spaces (newlines preserved, so
    line numbers survive), `comments` maps 1-based line number -> comment
    text found on that line (for pragma detection)."""
    code = []
    comments = {}
    i, n, line = 0, len(text), 1

    def note_comment(ch):
        comments[line] = comments.get(line, "") + ch

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append(c)
            line += 1
            i += 1
        elif c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                note_comment(text[i])
                code.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            code.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] == "\n":
                    code.append("\n")
                    line += 1
                else:
                    note_comment(text[i])
                    code.append(" ")
                i += 1
            if i < n:
                code.append("  ")
                i += 2
        elif c == "R" and nxt == '"':
            # Raw string literal R"delim(...)delim"
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m is None:
                code.append(c)
                i += 1
                continue
            end = text.find(")" + m.group(1) + '"', i + m.end())
            if end < 0:
                end = n
            for j in range(i, min(end + len(m.group(1)) + 2, n)):
                if text[j] == "\n":
                    code.append("\n")
                    line += 1
                else:
                    code.append(" ")
            i = min(end + len(m.group(1)) + 2, n)
        elif c in "\"'":
            quote = c
            code.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    code.append("  ")
                    i += 2
                elif text[i] == "\n":  # unterminated; bail to keep lines
                    break
                else:
                    code.append(" ")
                    i += 1
            if i < n and text[i] == quote:
                code.append(quote)
                i += 1
        else:
            code.append(c)
            i += 1
    return "".join(code), comments


def is_allowed(rule, lineno, comments):
    for ln in (lineno, lineno - 1):
        m = ALLOW_PRAGMA.search(comments.get(ln, ""))
        if m and m.group(1) == rule:
            return True
    return False


def extract_call_args(code, start):
    """Given `code` and the index of the '(' opening a call, return
    (args, end_line_offset) with balanced parentheses, or None."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[start + 1:i]
    return None


def check_hot_path_alloc(rel, raw_lines, code_lines, comments, out):
    if not any(HOT_PATH_TAG.match(l) for l in raw_lines):
        return
    for idx, codeline in enumerate(code_lines, start=1):
        for pattern, label in HOT_ALLOC_PATTERNS:
            if pattern.search(codeline):
                if not is_allowed("hot-path-alloc", idx, comments):
                    out.append(Violation(
                        rel, idx, "hot-path-alloc",
                        f"{label} in IGS_HOT_PATH file (add an audited "
                        f"'igs-lint: allow(hot-path-alloc)' if grow-only)"))
                break  # one violation per line is enough


def check_bare_mutex(rel, code_lines, comments, out):
    if rel.replace(os.sep, "/").startswith("src/common/"):
        return
    for idx, codeline in enumerate(code_lines, start=1):
        if BARE_MUTEX.search(codeline):
            if not is_allowed("bare-mutex", idx, comments):
                out.append(Violation(
                    rel, idx, "bare-mutex",
                    "bare std::mutex outside src/common/ — use igs::Mutex "
                    "or igs::Spinlock so the thread-safety analysis sees it"))


def check_side_effects(rel, code, out):
    if rel.replace(os.sep, "/") == "src/common/check.h":
        return  # the macro definitions themselves
    for m in CHECK_MACROS.finditer(code):
        args = extract_call_args(code, m.end() - 1)
        if args is None:
            continue
        lineno = code.count("\n", 0, m.start()) + 1
        for pattern, label in SIDE_EFFECT_PATTERNS:
            if pattern.search(args):
                out.append(Violation(
                    rel, lineno, "check-side-effect",
                    f"{label} inside {m.group(1)} — the expression "
                    f"must be side-effect free (IGS_DCHECK compiles out "
                    f"under NDEBUG)"))
                break


def check_atomic_orders(rel, code, comments, out):
    posix = rel.replace(os.sep, "/")
    if not any(posix.startswith(scope) for scope in ATOMIC_SCOPE):
        return
    for m in ATOMIC_OPS.finditer(code):
        args = extract_call_args(code, m.end() - 1)
        if args is None:
            continue
        lineno = code.count("\n", 0, m.start()) + 1
        if "memory_order" not in args and \
                not is_allowed("atomic-memory-order", lineno, comments):
            out.append(Violation(
                rel, lineno, "atomic-memory-order",
                f".{m.group(1)}() without an explicit std::memory_order "
                f"argument (implicit seq_cst hides intent and cost)"))


def expected_guard(rel):
    posix = rel.replace(os.sep, "/")
    assert posix.startswith("src/") and posix.endswith(".h")
    stem = posix[len("src/"):-len(".h")]
    return "IGS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H"


def check_header_guard(rel, code_lines, out):
    posix = rel.replace(os.sep, "/")
    if not (posix.startswith("src/") and posix.endswith(".h")):
        return
    guard = expected_guard(rel)
    ifndef_re = re.compile(r"^\s*#\s*ifndef\s+(\S+)")
    define_re = re.compile(r"^\s*#\s*define\s+(\S+)")
    for idx, line in enumerate(code_lines, start=1):
        m = ifndef_re.match(line)
        if m is None:
            if line.strip():
                break  # first non-blank code line is not a guard
            continue
        if m.group(1) != guard:
            out.append(Violation(
                rel, idx, "header-guard",
                f"guard {m.group(1)} != canonical {guard}"))
            return
        for jdx in range(idx, len(code_lines)):
            nxt = code_lines[jdx]
            if nxt.strip():
                d = define_re.match(nxt)
                if d is None or d.group(1) != guard:
                    out.append(Violation(
                        rel, jdx + 1, "header-guard",
                        f"#ifndef {guard} not followed by matching #define"))
                return
        return
    out.append(Violation(rel, 1, "header-guard",
                         f"missing header guard (expected {guard})"))


def check_includes(root, rel, raw_lines, out):
    src_root = os.path.join(root, "src")
    here = os.path.dirname(os.path.join(root, rel))
    for idx, line in enumerate(raw_lines, start=1):
        m = INCLUDE_RE.match(line)
        if m is None:
            continue
        kind, target = m.groups()
        if kind == "<" and target.startswith("bits/"):
            out.append(Violation(rel, idx, "include-hygiene",
                                 f"<{target}> is a libstdc++ internal"))
            continue
        if kind != '"':
            continue
        if ".." in target.split("/"):
            out.append(Violation(rel, idx, "include-hygiene",
                                 f'"{target}" uses parent-relative path'))
            continue
        if not (os.path.exists(os.path.join(src_root, target)) or
                os.path.exists(os.path.join(here, target))):
            out.append(Violation(
                rel, idx, "include-hygiene",
                f'"{target}" resolves neither from src/ nor as a sibling'))


def lint_file(root, rel):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except (OSError, UnicodeDecodeError) as e:
        return [Violation(rel, 0, "io", str(e))]
    code, comments = blank_comments_and_strings(text)
    raw_lines = text.splitlines()
    code_lines = code.splitlines()
    out = []
    check_hot_path_alloc(rel, raw_lines, code_lines, comments, out)
    check_bare_mutex(rel, code_lines, comments, out)
    check_side_effects(rel, code, out)
    check_atomic_orders(rel, code, comments, out)
    check_header_guard(rel, code_lines, out)
    check_includes(root, rel, raw_lines, out)
    return out


def discover(root):
    files = []
    for scan in SCAN_DIRS:
        top = os.path.join(root, scan)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames if d not in EXCLUDED_PARTS and
                           not d.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.relpath(
                        os.path.join(dirpath, name), root))
    return sorted(files)


def run_lint(root):
    violations = []
    files = discover(root)
    for rel in files:
        violations.extend(lint_file(root, rel))
    return files, violations


# Fixture file -> rules it must trip (see tests/lint_fixtures/).
SELF_TEST_EXPECTATIONS = {
    "src/stream/bad_hot_alloc.cc": {"hot-path-alloc"},
    "src/core/bad_mutex.cc": {"bare-mutex"},
    "src/graph/bad_check.cc": {"check-side-effect"},
    "src/sim/bad_atomic.cc": {"atomic-memory-order"},
    "src/gen/bad_atomic_gen.cc": {"atomic-memory-order"},
    "src/stream/bad_guard.h": {"header-guard"},
    "src/gen/bad_include.cc": {"include-hygiene"},
    "src/common/clean_ok.h": set(),
}


def run_self_test(repo_root):
    fixture_root = os.path.join(repo_root, "tests", "lint_fixtures")
    if not os.path.isdir(fixture_root):
        print(f"igs_lint self-test: missing {fixture_root}", file=sys.stderr)
        return 2
    failures = []
    by_file = {}
    for rel in discover(fixture_root):
        by_file[rel.replace(os.sep, "/")] = {
            v.rule for v in lint_file(fixture_root, rel)}
    for rel, expected in SELF_TEST_EXPECTATIONS.items():
        got = by_file.get(rel)
        if got is None:
            failures.append(f"fixture {rel} not found/scanned")
        elif expected and not expected <= got:
            failures.append(f"{rel}: expected rules {sorted(expected)} "
                            f"to fire, got {sorted(got)}")
        elif not expected and got:
            failures.append(f"{rel}: expected clean, got {sorted(got)}")
    for rel in by_file:
        if rel not in SELF_TEST_EXPECTATIONS:
            failures.append(f"unexpected fixture file {rel} (add it to "
                            f"SELF_TEST_EXPECTATIONS)")
    if failures:
        for f in failures:
            print(f"igs_lint self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"igs_lint self-test OK ({len(by_file)} fixtures, "
          f"{len(SELF_TEST_EXPECTATIONS)} expectations)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the rules against tests/lint_fixtures")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root if args.root is not None
        else os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

    if args.self_test:
        return run_self_test(root)

    files, violations = run_lint(root)
    for v in violations:
        print(v)
    if violations:
        print(f"igs_lint: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s) "
              f"({len(files)} scanned)", file=sys.stderr)
        return 1
    print(f"igs_lint: OK ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
