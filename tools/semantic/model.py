"""Intermediate model shared by the two semantic-analyzer frontends.

The passes (tools/semantic/passes/) consume only these types, so the
libclang frontend and the ast_lite fallback are interchangeable: both
produce a Model holding per-file token streams plus the parsed entities
(classes with typed members, functions with typed params and body token
ranges, explicit template instantiations, using-aliases).
"""

import os


class Finding:
    """One analyzer finding.  `level` is the SARIF severity; suppressed
    findings were silenced by an allow() pragma, baselined ones by an
    entry in the audited baseline file."""

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.suppressed = False
        self.baselined = False
        self.level = "error"

    def __str__(self):
        tag = " [baselined]" if self.baselined else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{tag}"


class FileModel:
    """One source file: token stream + per-line comment text."""

    def __init__(self, rel, tokens, comments):
        self.rel = rel
        self.tokens = tokens
        self.comments = comments

    @property
    def module(self):
        parts = self.rel.split("/")
        if parts[0] == "src" and len(parts) > 1:
            return parts[1]
        return parts[0]


class ClassInfo:
    def __init__(self, name, namespace, file, line, template_params=(),
                 synthetic=False):
        self.name = name                    # simple name
        self.namespace = namespace          # 'igs::graph'
        self.file = file
        self.line = line
        self.template_params = list(template_params)
        self.synthetic = synthetic          # inferred from out-of-line defs
        self.members = {}                   # simple name -> [FunctionInfo]
        self.fields = {}                    # field name -> type base name
        self.field_lines = {}               # field name -> line
        self.field_types = {}               # field name -> full type text

    @property
    def qual(self):
        return f"{self.namespace}::{self.name}" if self.namespace \
            else self.name

    def add_member(self, fn):
        self.members.setdefault(fn.name, []).append(fn)

    def member_names(self):
        return set(self.members)

    def __repr__(self):
        return f"<class {self.qual}>"


class FunctionInfo:
    def __init__(self, name, file, line, cls=None, template_params=(),
                 params=(), return_type="", body=None, virtual=False):
        self.name = name
        self.file = file                    # FileModel
        self.line = line
        self.cls = cls                      # ClassInfo or None
        self.template_params = list(template_params)
        self.params = list(params)          # [(type_base, name, full_text)]
        self.return_type = return_type      # base name of the return type
        self.body = body                    # (lo, hi) token range or None
        self.virtual = virtual
        self._locals = None                 # lazy: body VarDecls

    @property
    def key(self):
        return f"{self.file.rel}:{self.qual_name}:{self.line}"

    @property
    def qual_name(self):
        return f"{self.cls.name}::{self.name}" if self.cls else self.name

    def __repr__(self):
        return self.key


class VarDecl:
    __slots__ = ("name", "type_base", "line", "decl_idx", "init_lo",
                 "init_hi")

    def __init__(self, name, type_base, line, decl_idx, init_lo, init_hi):
        self.name = name
        self.type_base = type_base          # 'auto' possible
        self.line = line
        self.decl_idx = decl_idx            # token index of the name
        self.init_lo = init_lo              # initializer token range
        self.init_hi = init_hi


class LambdaInfo:
    __slots__ = ("cap_lo", "cap_hi", "body_lo", "body_hi", "line")

    def __init__(self, cap_lo, cap_hi, body_lo, body_hi, line):
        self.cap_lo = cap_lo
        self.cap_hi = cap_hi
        self.body_lo = body_lo
        self.body_hi = body_hi
        self.line = line


class CallSite:
    __slots__ = ("name", "receiver", "qualifier", "targs", "idx", "line",
                 "arg_lo", "arg_hi")

    def __init__(self, name, receiver, qualifier, targs, idx, line,
                 arg_lo, arg_hi):
        self.name = name                    # simple callee name
        self.receiver = receiver            # receiver id text or None
        self.qualifier = qualifier          # 'A::B' qualifier text or None
        self.targs = targs                  # explicit template args (texts)
        self.idx = idx                      # token index of the name
        self.line = line
        self.arg_lo = arg_lo                # argument token range ( ... )
        self.arg_hi = arg_hi


class RequiresBranch:
    """`if constexpr (requires { recv.m1(..); recv.m2(..); }) {A} else {B}`.
    negated=True for `if constexpr (!requires ...)` (A/B swap roles)."""

    __slots__ = ("receiver", "probes", "then_lo", "then_hi", "else_lo",
                 "else_hi", "line", "negated")

    def __init__(self, receiver, probes, then_lo, then_hi, else_lo, else_hi,
                 line, negated=False):
        self.receiver = receiver
        self.probes = probes                # probed member names
        self.then_lo = then_lo
        self.then_hi = then_hi
        self.else_lo = else_lo              # -1 when absent
        self.else_hi = else_hi
        self.line = line
        self.negated = negated


class Instantiation:
    __slots__ = ("class_name", "args", "file", "line", "explicit")

    def __init__(self, class_name, args, file, line, explicit=True):
        self.class_name = class_name
        self.args = args                    # argument type texts
        self.file = file
        self.line = line
        self.explicit = explicit


class Model:
    """Whole-program view the passes consume."""

    def __init__(self, root):
        self.root = root
        self.files = {}                     # rel -> FileModel
        self.classes = {}                   # simple name -> [ClassInfo]
        self.functions = []                 # every FunctionInfo
        self.by_name = {}                   # simple name -> [FunctionInfo]
        self.instantiations = []            # Instantiation
        self.aliases = {}                   # alias name -> target type text
        self.frontend = "ast_lite"
        self.frontend_notes = []

    def add_class(self, ci):
        self.classes.setdefault(ci.name, []).append(ci)

    def add_function(self, fn):
        self.functions.append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)

    def find_class(self, name):
        """The ClassInfo for a (possibly qualified) type name, or None.
        With several same-named classes, prefers one defined under src/."""
        simple = name.split("::")[-1]
        cands = self.classes.get(simple, [])
        if not cands:
            return None
        ranked = sorted(cands, key=lambda ci: (
            ci.synthetic, not ci.file.rel.startswith("src/")))
        return ranked[0]

    def src_functions(self):
        return [f for f in self.functions if f.file.rel.startswith("src/")]


# --- type text helpers ----------------------------------------------------

_TYPE_NOISE = frozenset({
    "const", "volatile", "static", "inline", "constexpr", "mutable",
    "typename", "struct", "class", "register", "thread_local", "extern",
    "virtual", "explicit", "friend", "unsigned", "signed", "long", "short",
})


def type_base(tokens_or_text):
    """Reduce a type spelling to its base identifier: the last identifier
    of the outermost (non-std) name chain, template arguments stripped.
    'const graph::SnapshotView&' -> 'SnapshotView'; 'GraphT' -> 'GraphT';
    'std::vector<Neighbor>' -> 'vector'."""
    if isinstance(tokens_or_text, str):
        words = _split_type_words(tokens_or_text)
    else:
        words = [t.text for t in tokens_or_text if t.kind == "id"]
        # Template arguments of the chain head are part of the spelling;
        # cut at the first '<' so 'vector<Neighbor>' keeps 'vector'.
        cut = []
        depth = 0
        for t in tokens_or_text:
            if t.kind == "punct" and t.text == "<":
                depth += 1
            elif t.kind == "punct" and (t.text == ">" or t.text == ">>"):
                depth -= 2 if t.text == ">>" else 1
            elif depth == 0 and t.kind == "id":
                cut.append(t.text)
        words = cut or words
    words = [w for w in words if w not in _TYPE_NOISE]
    return words[-1] if words else ""


def _split_type_words(text):
    out, cur, depth = [], "", 0
    for ch in text:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        if depth == 0 and (ch.isalnum() or ch == "_"):
            cur += ch
        else:
            if cur:
                out.append(cur)
            cur = ""
    if cur:
        out.append(cur)
    return out


def module_of(rel):
    parts = rel.replace(os.sep, "/").split("/")
    if parts[0] == "src" and len(parts) > 1:
        return parts[1]
    return parts[0]
