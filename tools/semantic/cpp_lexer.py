"""C++ tokenizer for the ast_lite frontend.

Produces a flat token stream with line numbers, preserving string-literal
values (the telemetry pass reads them) and collecting comment text per
line (the allow() pragma mechanism reads those).  Preprocessor directives
become single 'pp' tokens so the parser never trips over them.

This is a tokenizer, not a preprocessor: macros are not expanded.  The
repository's style keeps hot-path code macro-free apart from IGS_CHECK
and the thread-safety annotations, both of which parse as ordinary call
expressions.
"""

PUNCT2 = ("::", "->", "<<", ">>", "==", "!=", "<=", ">=", "&&", "||",
          "+=", "-=", "*=", "/=", "++", "--")


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind        # 'id' | 'num' | 'str' | 'chr' | 'punct' | 'pp'
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.text!r}@{self.line}"


def _is_id_start(c):
    return c.isalpha() or c == "_"


def _is_id(c):
    return c.isalnum() or c == "_"


def tokenize(text):
    """Return (tokens, comments) where comments maps line -> comment text
    accumulated on that line (igs_lint pragma compatible)."""
    tokens = []
    comments = {}
    i, n, line = 0, len(text), 1

    def note_comment(s, ln):
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        # Comments.
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            note_comment(text[i:j], line)
            i = j
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for part in text[i + 2:j].split("\n"):
                note_comment(part, line)
                line += 1
            line -= 1  # split() yields one more part than newlines
            i = j + 2
            continue
        # Preprocessor directive: one token to (continuation-aware) EOL.
        if c == "#":
            start, start_line = i, line
            while i < n:
                j = text.find("\n", i)
                j = n if j < 0 else j
                if text[j - 1] == "\\" and j > start:
                    line += 1
                    i = j + 1
                    continue
                i = j
                break
            tokens.append(Token("pp", text[start:i], start_line))
            continue
        # Raw string literal.
        if c == "R" and nxt == '"':
            k = text.find("(", i + 2)
            if k > 0 and k - i - 2 <= 16:
                delim = text[i + 2:k]
                end = text.find(")" + delim + '"', k)
                end = n if end < 0 else end + len(delim) + 2
                lit = text[i:end]
                tokens.append(Token("str", lit, line))
                line += lit.count("\n")
                i = end
                continue
        # String / char literals (with common prefixes).
        if c in "\"'" or (c in "uUL" and nxt in "\"'"):
            j = i
            while j < n and text[j] not in "\"'":
                j += 1
            quote = text[j]
            k = j + 1
            while k < n and text[k] != quote:
                k = k + 2 if text[k] == "\\" else k + 1
            k = min(k + 1, n)
            tokens.append(Token("str" if quote == '"' else "chr",
                                text[i:k], line))
            line += text.count("\n", i, k)
            i = k
            continue
        # Identifiers / keywords.
        if _is_id_start(c):
            j = i + 1
            while j < n and _is_id(text[j]):
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        # Numbers (good enough: digits plus id-chars, '.', exponent signs).
        if c.isdigit() or (c == "." and nxt.isdigit()):
            j = i + 1
            while j < n and (_is_id(text[j]) or text[j] == "." or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        # Punctuation: two-char first.
        two = text[i:i + 2]
        if two in PUNCT2:
            tokens.append(Token("punct", two, line))
            i += 2
            continue
        tokens.append(Token("punct", c, line))
        i += 1
    return tokens, comments


def match_delim(tokens, open_idx, open_ch, close_ch):
    """Index of the token matching tokens[open_idx] (which must be
    `open_ch`), or -1.  Ignores other delimiter kinds."""
    depth = 0
    for k in range(open_idx, len(tokens)):
        t = tokens[k]
        if t.kind != "punct":
            continue
        if t.text == open_ch:
            depth += 1
        elif t.text == close_ch:
            depth -= 1
            if depth == 0:
                return k
    return -1


def match_angle(tokens, open_idx):
    """Index of the '>' matching a template-argument '<', or -1.  Bails
    out (returns -1) on tokens that mean the '<' was a comparison."""
    depth = 0
    for k in range(open_idx, min(open_idx + 256, len(tokens))):
        t = tokens[k]
        if t.kind != "punct":
            continue
        if t.text == "<":
            depth += 1
        elif t.text == ">":
            depth -= 1
            if depth == 0:
                return k
        elif t.text == ">>":
            depth -= 2
            if depth <= 0:
                return k
        elif t.text in (";", "{", "}", "&&", "||"):
            return -1
    return -1
