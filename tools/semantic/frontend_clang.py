"""Optional libclang frontend.

When `clang.cindex` is importable (CI installs a pinned libclang; the
local toolchain may not ship the Python bindings), this module parses
the real translation units listed in compile_commands.json and
cross-validates the ast_lite model against the compiler's view: class
member surfaces, field types, and virtual-ness.  Discrepancies are
recorded as frontend notes (and missing members are grafted into the
model) so the passes run over compiler-verified declarations.

When libclang is unavailable the import fails gracefully and the driver
stays on the ast_lite frontend — same model shape, same passes.
"""

import json
import os

from .model import ClassInfo, FunctionInfo


def available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def _index():
    import clang.cindex as ci
    lib = os.environ.get("IGS_LIBCLANG")
    if lib:
        try:
            ci.Config.set_library_file(lib)
        except Exception:
            pass
    return ci, ci.Index.create()


def load_compile_commands(path):
    """[(file, [args])] from a compile_commands.json."""
    with open(path, encoding="utf-8") as f:
        db = json.load(f)
    out = []
    for e in db:
        args = e.get("arguments")
        if not args:
            args = e.get("command", "").split()
        # Drop the compiler, the input file, and -o/-c plumbing.
        keep = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a == e.get("file") or a.endswith(e.get("file", "\0")):
                continue
            keep.append(a)
        out.append((os.path.join(e.get("directory", "."), e["file"]),
                    keep))
    return out


def validate(model, compile_commands, limit=None):
    """Parse TUs with libclang and reconcile the model.  Returns the
    number of TUs parsed, or 0 when libclang is unavailable."""
    if not available():
        model.frontend_notes.append("libclang unavailable; ast_lite only")
        return 0
    ci, index = _index()
    tus = load_compile_commands(compile_commands)
    if limit:
        tus = tus[:limit]
    parsed = 0
    for path, args in tus:
        if not os.path.exists(path):
            continue
        try:
            tu = index.parse(path, args=args)
        except Exception as exc:  # noqa: BLE001 - frontend stays optional
            model.frontend_notes.append(f"libclang parse failed for "
                                        f"{path}: {exc}")
            continue
        parsed += 1
        _reconcile(model, ci, tu.cursor)
    if parsed:
        model.frontend = "clang+ast_lite"
    return parsed


def _reconcile(model, ci, cursor):
    K = ci.CursorKind
    for c in cursor.walk_preorder():
        if c.kind not in (K.CLASS_DECL, K.STRUCT_DECL,
                          K.CLASS_TEMPLATE):
            continue
        if not c.is_definition():
            continue
        loc = c.location
        if loc.file is None:
            continue
        rel = os.path.relpath(loc.file.name, model.root)
        if rel.startswith(".."):
            continue
        known = model.find_class(c.spelling)
        if known is None:
            fm = model.files.get(rel)
            if fm is None:
                continue
            known = ClassInfo(c.spelling, "", fm, loc.line,
                              synthetic=False)
            model.add_class(known)
            model.frontend_notes.append(
                f"libclang found class {c.spelling} ({rel}) missed by "
                f"ast_lite")
        for m in c.get_children():
            if m.kind in (K.CXX_METHOD, K.FUNCTION_TEMPLATE,
                          K.CONSTRUCTOR, K.DESTRUCTOR):
                if m.spelling not in known.members:
                    fm = model.files.get(rel, known.file)
                    fn = FunctionInfo(m.spelling, fm, m.location.line,
                                      cls=known,
                                      virtual=bool(
                                          getattr(m, "is_virtual_method",
                                                  lambda: False)()))
                    known.add_member(fn)
                    model.add_function(fn)
                    model.frontend_notes.append(
                        f"libclang added member {c.spelling}::"
                        f"{m.spelling} missed by ast_lite")
                elif getattr(m, "is_virtual_method", lambda: False)():
                    for fn in known.members[m.spelling]:
                        fn.virtual = True
            elif m.kind == K.FIELD_DECL:
                if m.spelling not in known.fields:
                    known.fields[m.spelling] = m.type.spelling.split(
                        "<")[0].split("::")[-1].strip()
                    known.field_lines[m.spelling] = m.location.line
                    known.field_types[m.spelling] = m.type.spelling
                    model.frontend_notes.append(
                        f"libclang added field {c.spelling}::"
                        f"{m.spelling} missed by ast_lite")
