"""ast_lite — the always-available C++ frontend of the semantic analyzer.

A lightweight recursive scanner over the token stream (cpp_lexer) that
recovers the structure the passes need: namespaces, (template) classes
with member functions and typed fields, free and out-of-line member
function definitions with typed parameter lists and body token ranges,
explicit template instantiations, and using-aliases.

It is deliberately tuned to this repository's idiom (see DESIGN.md §13)
and over-approximates where C++ is ambiguous: a spurious function or
field only widens the call graph, it cannot hide real code from the
escape analysis.  Bodies are stored as token ranges and analyzed lazily
by body_scan helpers (calls, locals, lambdas, constexpr-requires
branches).
"""

from . import cpp_lexer
from .cpp_lexer import match_angle, match_delim
from .model import (CallSite, ClassInfo, FileModel, FunctionInfo,
                    Instantiation, LambdaInfo, Model, RequiresBranch,
                    VarDecl, type_base)

KEYWORDS_NOT_FN = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "static_assert", "new", "delete",
    "throw", "else", "do", "case", "default", "defined", "requires",
    "template", "using", "typedef", "goto", "and", "or", "not", "assert",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "typename", "constexpr", "consteval", "co_await", "co_return",
})

QUAL_TOKENS = frozenset({
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "&", "&&", "->",
})


def parse_file(model, rel, text):
    tokens, comments = cpp_lexer.tokenize(text)
    fm = FileModel(rel, tokens, comments)
    model.files[rel] = fm
    _Parser(model, fm).run()
    return fm


class _Scope:
    __slots__ = ("kind", "name", "cls")

    def __init__(self, kind, name="", cls=None):
        self.kind = kind                    # 'ns' | 'class' | 'block'
        self.name = name
        self.cls = cls


class _Parser:
    def __init__(self, model, fm):
        self.model = model
        self.fm = fm
        self.toks = fm.tokens
        self.scopes = []

    # -- helpers ---------------------------------------------------------

    def namespace(self):
        return "::".join(s.name for s in self.scopes
                         if s.kind == "ns" and s.name)

    def cur_class(self):
        for s in reversed(self.scopes):
            if s.kind == "class":
                return s.cls
        return None

    # -- main loop -------------------------------------------------------

    def run(self):
        toks = self.toks
        i = 0
        n = len(toks)
        stmt = []                           # token indices of the statement
        pending_template = None             # param names of `template <...>`
        while i < n:
            t = toks[i]
            if t.kind == "pp":
                i += 1
                continue
            if t.kind == "id" and t.text == "template":
                if i + 1 < n and toks[i + 1].text == "<":
                    close = match_angle(toks, i + 1)
                    if close > 0:
                        pending_template = self._template_params(i + 2,
                                                                 close)
                        i = close + 1
                        continue
                # `template class X<...>;` explicit instantiation: keep
                # the token in the statement.
            if t.kind == "id" and not stmt and \
                    t.text in ("public", "private", "protected") and \
                    i + 1 < n and toks[i + 1].text == ":":
                i += 2
                continue
            if t.kind == "id" and t.text == "namespace" and not stmt:
                i = self._enter_namespace(i)
                continue
            if t.kind == "id" and t.text in ("class", "struct") and \
                    not any(toks[k].text in ("enum", "template", "friend")
                            for k in stmt):
                ni = self._try_class(i, pending_template)
                if ni > 0:
                    pending_template = None
                    stmt = []
                    i = ni
                    continue
            if t.kind == "punct" and t.text == "{":
                fn = self._try_function(stmt, i, pending_template)
                if fn is not None:
                    close = match_delim(toks, i, "{", "}")
                    close = n - 1 if close < 0 else close
                    fn.body = (i + 1, close)
                    pending_template = None
                    stmt = []
                    i = close + 1
                    continue
                if stmt:
                    # Braced initializer inside a declaration: skip it but
                    # keep the statement open (field/variable decl).
                    close = match_delim(toks, i, "{", "}")
                    close = n - 1 if close < 0 else close
                    i = close + 1
                    continue
                self.scopes.append(_Scope("block"))
                i += 1
                continue
            if t.kind == "punct" and t.text == "}":
                if self.scopes:
                    left = self.scopes.pop()
                    if left.kind == "class" and i + 1 < n and \
                            toks[i + 1].text == ";":
                        i += 1
                stmt = []
                i += 1
                continue
            if t.kind == "punct" and t.text == ";":
                self._statement(stmt, pending_template)
                pending_template = None
                stmt = []
                i += 1
                continue
            stmt.append(i)
            i += 1

    # -- constructs ------------------------------------------------------

    def _template_params(self, lo, hi):
        """Names of the type parameters in template <...> (indices)."""
        toks = self.toks
        names = []
        depth = 0
        k = lo
        while k < hi:
            t = toks[k]
            if t.kind == "punct":
                if t.text == "<":
                    depth += 1
                elif t.text in (">", ">>"):
                    depth -= 1
            elif depth == 0 and t.kind == "id" and \
                    t.text in ("typename", "class"):
                if k + 1 < hi and toks[k + 1].kind == "id":
                    names.append(toks[k + 1].text)
                    k += 1
            k += 1
        return names

    def _enter_namespace(self, i):
        toks = self.toks
        names = []
        k = i + 1
        while k < len(toks) and toks[k].kind == "id":
            names.append(toks[k].text)
            k += 1
            if k < len(toks) and toks[k].text == "::":
                k += 1
        if k < len(toks) and toks[k].text == "{":
            for nm in names or [""]:
                self.scopes.append(_Scope("ns", nm))
            if len(names) > 1:
                # collapse A::B into the right number of pops: mark the
                # extras as blocks-with-name already handled by pops at '}'
                # -- each '{' gets exactly one '}', so fold to one scope.
                for _ in range(len(names) - 1):
                    self.scopes.pop()
                self.scopes.append(_Scope("ns", "::".join(names[1:])))
                self.scopes.insert(len(self.scopes) - 1,
                                   _Scope("ns", names[0]))
                self.scopes.pop()
                self.scopes[-1] = _Scope("ns", "::".join(names))
            return k + 1
        # `namespace X = ...;` alias or `using namespace` tail: skip to ';'
        while k < len(toks) and toks[k].text != ";":
            k += 1
        return k + 1

    def _try_class(self, i, template_params):
        """Parse `class|struct NAME [final] [: bases] {` at index i.
        Returns the index just past '{', or -1 if not a definition."""
        toks = self.toks
        k = i + 1
        # attribute-ish macros between keyword and name
        while k < len(toks) and toks[k].kind == "id" and \
                k + 1 < len(toks) and toks[k + 1].text == "(":
            close = match_delim(toks, k + 1, "(", ")")
            if close < 0:
                return -1
            k = close + 1
        if k >= len(toks) or toks[k].kind != "id":
            return -1
        name = toks[k].text
        line = toks[k].line
        k += 1
        # template specialization arguments on the name
        if k < len(toks) and toks[k].text == "<":
            close = match_angle(toks, k)
            if close < 0:
                return -1
            k = close + 1
        while k < len(toks) and toks[k].kind == "id" and \
                toks[k].text == "final":
            k += 1
        if k < len(toks) and toks[k].text == ":":
            while k < len(toks) and toks[k].text not in ("{", ";"):
                k += 1
        if k >= len(toks) or toks[k].text != "{":
            return -1
        ci = ClassInfo(name, self.namespace(), self.fm, line,
                       template_params or ())
        self.model.add_class(ci)
        self.scopes.append(_Scope("class", name, ci))
        return k + 1

    def _try_function(self, stmt, brace_idx, template_params):
        """Does the statement before `{` parse as a function signature?
        Returns a registered FunctionInfo (body set by caller) or None."""
        toks = self.toks
        if not stmt:
            return None
        # Find the parameter list: the first top-level (...) group whose
        # opener is preceded by a plausible function name (ctor init-list
        # entries and trailing annotation macros come after it).
        close_at = -1
        open_at = -1
        depth = 0
        for pos, ti in enumerate(stmt):
            t = toks[ti]
            if t.kind != "punct":
                continue
            if t.text == "(":
                if depth == 0 and open_at < 0 and pos > 0:
                    prev = toks[stmt[pos - 1]]
                    name_like = (
                        (prev.kind == "id" and
                         prev.text not in KEYWORDS_NOT_FN) or
                        (prev.kind == "punct" and
                         prev.text in (">", ">>")) or
                        (prev.kind == "punct" and pos >= 2 and
                         toks[stmt[pos - 2]].kind == "id" and
                         toks[stmt[pos - 2]].text == "operator"))
                    if name_like:
                        open_at = pos
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0 and open_at >= 0 and close_at < 0:
                    close_at = pos
        if close_at < 0:
            return None
        # Tokens after ')' must be qualifiers, attribute macros, a ctor
        # init-list, or a trailing return type.
        pos = close_at + 1
        while pos < len(stmt):
            t = toks[stmt[pos]]
            if t.kind == "punct" and t.text == ":":
                break                       # ctor member-init-list
            if t.kind == "id":
                if t.text in QUAL_TOKENS or t.text.isupper() or \
                        t.text.startswith("IGS_"):
                    # qualifier keyword or annotation macro
                    if pos + 1 < len(stmt) and \
                            toks[stmt[pos + 1]].text == "(":
                        d = 0
                        pos += 1
                        while pos < len(stmt):
                            tt = toks[stmt[pos]].text
                            if tt == "(":
                                d += 1
                            elif tt == ")":
                                d -= 1
                                if d == 0:
                                    break
                            pos += 1
                    pos += 1
                    continue
                # trailing-return-type / init-list identifiers
                pos += 1
                continue
            if t.kind == "punct" and t.text in ("&", "&&", "->", "::", "<",
                                                ">", ",", ":", "(", ")"):
                pos += 1
                continue
            return None
        # The name: identifier chain immediately before '('.
        np = open_at - 1
        if np < 0:
            return None
        # operator functions: `operator ==` etc.
        name = None
        cls_name = None
        t = toks[stmt[np]]
        if t.kind == "punct" and t.text in (">", ">>"):
            # destructor-with-template or name<T>(...): walk to matching '<'
            d = 0
            while np >= 0:
                tt = toks[stmt[np]].text
                if tt in (">", ">>"):
                    d += 2 if tt == ">>" else 1
                elif tt == "<":
                    d -= 1
                    if d == 0:
                        np -= 1
                        break
                np -= 1
            t = toks[stmt[np]] if np >= 0 else None
        if t is None:
            return None
        if t.kind == "id":
            name = t.text
        elif t.kind == "punct" and np >= 1 and \
                toks[stmt[np - 1]].kind == "id" and \
                toks[stmt[np - 1]].text == "operator":
            name = "operator" + t.text
            np -= 1
        else:
            return None
        if name in KEYWORDS_NOT_FN:
            return None
        line = toks[stmt[np]].line
        # Qualified name: Class[<T>]:: before it?
        qp = np - 1
        if qp >= 0 and toks[stmt[qp]].text == "::":
            qp -= 1
            if qp >= 0 and toks[stmt[qp]].text in (">", ">>"):
                d = 0
                while qp >= 0:
                    tt = toks[stmt[qp]].text
                    if tt in (">", ">>"):
                        d += 2 if tt == ">>" else 1
                    elif tt == "<":
                        d -= 1
                        if d == 0:
                            qp -= 1
                            break
                    qp -= 1
            if qp >= 0 and toks[stmt[qp]].kind == "id":
                cls_name = toks[stmt[qp]].text
        # Return type: tokens before the (qualified) name.
        ret_end = qp if cls_name else np
        ret_toks = [toks[k] for k in stmt[:max(ret_end, 0)]
                    if toks[k].kind in ("id", "punct")]
        prefix_ids = [tk.text for tk in ret_toks if tk.kind == "id"]
        virtual = "virtual" in prefix_ids
        ret = type_base(ret_toks) if ret_toks else ""
        # Constructors: name == class name, no return type.
        cls = self.cur_class()
        if cls is None and cls_name:
            cls = self.model.find_class(cls_name)
            if cls is None:
                cls = ClassInfo(cls_name, self.namespace(), self.fm, line,
                                synthetic=True)
                self.model.add_class(cls)
        params = self._params([toks[k] for k in
                               stmt[open_at + 1:close_at]])
        fn = FunctionInfo(name, self.fm, line, cls=cls,
                          template_params=template_params or
                          (cls.template_params if cls and not cls_name
                           else template_params or ()),
                          params=params, return_type=ret, virtual=virtual)
        if cls is not None:
            cls.add_member(fn)
        self.model.add_function(fn)
        return fn

    def _params(self, ptoks):
        """[(type_base, name, full_text)] for a parameter token list."""
        groups = []
        cur = []
        depth = 0
        for t in ptoks:
            if t.kind == "punct":
                if t.text in ("(", "<", "[", "{"):
                    depth += 1
                elif t.text in (")", ">", "]", "}"):
                    depth -= 1
                elif t.text == ">>":
                    depth -= 2
                elif t.text == "," and depth == 0:
                    groups.append(cur)
                    cur = []
                    continue
            cur.append(t)
        if cur:
            groups.append(cur)
        out = []
        for g in groups:
            # strip default argument
            for j, t in enumerate(g):
                if t.kind == "punct" and t.text == "=":
                    g = g[:j]
                    break
            if not g:
                continue
            name = None
            tpart = g
            if len(g) >= 2 and g[-1].kind == "id" and \
                    not (g[-2].kind == "punct" and g[-2].text == "::"):
                name = g[-1].text
                tpart = g[:-1]
            out.append((type_base(tpart), name,
                        " ".join(t.text for t in g)))
        return out

    # -- non-function statements ----------------------------------------

    def _statement(self, stmt, template_params):
        toks = self.toks
        if not stmt:
            return
        texts = [toks[k].text for k in stmt]
        # using alias:  using NAME = TYPE
        if texts[0] == "using" and len(texts) >= 4 and texts[2] == "=":
            self.model.aliases[texts[1]] = "".join(texts[3:])
            return
        # explicit instantiation:  template class NAME<ARGS>
        if texts[0] == "template" and len(texts) >= 3 and \
                texts[1] in ("class", "struct"):
            name = texts[2]
            args = self._angle_args(stmt, 3)
            if args is not None:
                self.model.instantiations.append(Instantiation(
                    name, args, self.fm, toks[stmt[0]].line))
            return
        if texts[0] in ("extern", "friend", "public", "private",
                        "protected", "static_assert", "typedef"):
            return
        cls = self.cur_class()
        # member function declaration (no body):  ... name ( params ) quals
        has_paren = "(" in texts
        if cls is not None and has_paren:
            fn = self._try_decl(stmt, template_params)
            if fn is not None:
                return
        # field:  TYPE name  (class scope, no parens at top level)
        if cls is not None and not has_paren:
            self._try_field(stmt, cls)

    def _angle_args(self, stmt, start_pos):
        toks = self.toks
        if start_pos >= len(stmt) or toks[stmt[start_pos]].text != "<":
            return None
        args = []
        cur = []
        depth = 0
        for k in stmt[start_pos:]:
            t = toks[k]
            if t.kind == "punct":
                if t.text == "<":
                    depth += 1
                    if depth == 1:
                        continue
                elif t.text in (">", ">>"):
                    depth -= 2 if t.text == ">>" else 1
                    if depth <= 0:
                        break
                elif t.text == "," and depth == 1:
                    args.append("".join(cur))
                    cur = []
                    continue
            cur.append(t.text)
        if cur:
            args.append("".join(cur))
        return args

    def _try_decl(self, stmt, template_params):
        """Member function declaration ending in ';'.  Reuses the
        signature parser by pretending the ';' were a '{'."""
        toks = self.toks
        # Reject obvious non-declarations: assignment at top level before
        # the first '(' (e.g. `x = f(y)`), or call statements `f(x)`
        # with no leading type tokens -- a declaration in this repo's
        # style always has at least `Type name(`.
        depth = 0
        first_open = None
        for pos, k in enumerate(stmt):
            t = toks[k]
            if t.kind == "punct":
                if t.text == "(":
                    if depth == 0 and first_open is None:
                        first_open = pos
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                elif t.text == "=" and depth == 0 and first_open is None:
                    return None
        if first_open is not None and first_open < 2 and \
                not (first_open == 1 and
                     toks[stmt[0]].kind == "id"):
            # `name(args)` with nothing before it: a ctor declaration has
            # name == class name; otherwise it is an expression.
            cls = self.cur_class()
            if not (cls and toks[stmt[0]].text in (cls.name, "~" )):
                return None
        fn = self._try_function(stmt, -1, template_params)
        return fn

    def _try_field(self, stmt, cls):
        toks = self.toks
        # strip initializer
        decl = []
        for k in stmt:
            if toks[k].kind == "punct" and toks[k].text == "=":
                break
            decl.append(k)
        if len(decl) < 2:
            return
        # name = last id token (allow trailing [N])
        name_idx = None
        for k in reversed(decl):
            if toks[k].kind == "id":
                name_idx = k
                break
            if toks[k].kind == "punct" and toks[k].text in ("]", "["):
                continue
            if toks[k].kind == "num":
                continue
            return
        if name_idx is None or name_idx == decl[0]:
            return
        name = toks[name_idx].text
        tpart = [toks[k] for k in decl if k < name_idx]
        if not any(t.kind == "id" for t in tpart):
            return
        if tpart[0].kind == "id" and tpart[0].text in (
                "using", "return", "delete", "case", "goto", "friend"):
            return
        base = type_base(tpart)
        if not base or base == name:
            return
        cls.fields[name] = base
        cls.field_lines[name] = toks[name_idx].line
        cls.field_types[name] = " ".join(t.text for t in tpart)
        # implicit instantiation from the field's type spelling
        self._note_type_instantiation(tpart, toks[name_idx].line)

    def _note_type_instantiation(self, ttoks, line):
        for j, t in enumerate(ttoks):
            if t.kind == "id" and j + 1 < len(ttoks) and \
                    ttoks[j + 1].kind == "punct" and \
                    ttoks[j + 1].text == "<":
                close = match_angle(ttoks, j + 1)
                if close > 0:
                    args = "".join(x.text for x in ttoks[j + 2:close])
                    self.model.instantiations.append(Instantiation(
                        t.text, [a for a in args.split(",") if a],
                        self.fm, line, explicit=False))


# --- body scanning helpers (lazy, used by the passes) --------------------

CALL_KEYWORDS = KEYWORDS_NOT_FN | frozenset({"while", "for", "if",
                                             "switch", "catch"})


def iter_calls(toks, lo, hi):
    """Yield CallSite for every `name(`-shaped call in [lo, hi)."""
    k = lo
    while k < hi:
        t = toks[k]
        if t.kind == "id" and t.text not in CALL_KEYWORDS and \
                k + 1 < hi and toks[k + 1].kind == "punct":
            nxt = toks[k + 1].text
            targs = []
            open_idx = -1
            if nxt == "(":
                open_idx = k + 1
            elif nxt == "<":
                close = match_angle(toks, k + 1)
                if close > 0 and close + 1 < hi and \
                        toks[close + 1].text == "(":
                    targs = ["".join(x.text for x in toks[k + 2:close])]
                    targs = [a for a in targs[0].split(",") if a]
                    open_idx = close + 1
            if open_idx > 0:
                arg_close = match_delim(toks, open_idx, "(", ")")
                receiver = None
                qualifier = None
                p = k - 1
                if p >= lo and toks[p].kind == "punct" and \
                        toks[p].text in (".", "->"):
                    if p - 1 >= lo and toks[p - 1].kind == "id":
                        receiver = toks[p - 1].text
                    elif p - 1 >= lo and toks[p - 1].text == ")":
                        receiver = "<expr>"
                elif p >= lo and toks[p].kind == "punct" and \
                        toks[p].text == "::":
                    quals = []
                    q = p
                    while q - 1 >= lo and toks[q].text == "::" and \
                            toks[q - 1].kind == "id":
                        quals.append(toks[q - 1].text)
                        q -= 2
                    qualifier = "::".join(reversed(quals)) or None
                yield CallSite(t.text, receiver, qualifier, targs, k,
                               t.line, open_idx + 1,
                               arg_close if arg_close > 0 else open_idx + 1)
        k += 1


def iter_locals(toks, lo, hi):
    """Yield VarDecl for local declarations in [lo, hi).  Pattern-based:
    at a statement boundary, a type spelling followed by a name and one
    of `=`, `(`, `{`, `;`."""
    boundary = True
    k = lo
    while k < hi:
        t = toks[k]
        if t.kind == "punct" and t.text in (";", "{", "}"):
            boundary = True
            k += 1
            continue
        if boundary and t.kind == "id" and t.text not in CALL_KEYWORDS:
            got = _try_local(toks, k, hi)
            if got is not None:
                yield got
                k = got.init_hi
                boundary = False
                continue
        boundary = False
        k += 1


def _try_local(toks, k, hi):
    """Parse a declaration starting at token k; None if not one."""
    # type spelling: [const] [auto | id(::id)*[<...>]] [&|*|const]...
    p = k
    ids = 0
    while p < hi:
        t = toks[p]
        if t.kind == "id" and t.text in ("const", "constexpr", "static",
                                         "typename", "volatile"):
            p += 1
            continue
        if t.kind == "id":
            ids += 1
            p += 1
            while p + 1 < hi and toks[p].text == "::" and \
                    toks[p + 1].kind == "id":
                p += 2
            if p < hi and toks[p].text == "<":
                close = match_angle(toks, p)
                if close < 0:
                    return None
                p = close + 1
            break
        return None
    if ids == 0:
        return None
    type_toks = toks[k:p]
    while p < hi and toks[p].kind == "punct" and toks[p].text in ("&", "*",
                                                                  "&&"):
        p += 1
    if p >= hi or toks[p].kind != "id" or toks[p].text in CALL_KEYWORDS:
        return None
    name_idx = p
    name = toks[p].text
    p += 1
    if p >= hi or toks[p].kind != "punct" or \
            toks[p].text not in ("=", "(", "{", ";", ","):
        return None
    init_lo = p
    # initializer extent: to the ';' at depth 0
    depth = 0
    q = p
    while q < hi:
        tt = toks[q].text if toks[q].kind == "punct" else ""
        if tt in ("(", "{", "["):
            depth += 1
        elif tt in (")", "}", "]"):
            if depth == 0:
                break
            depth -= 1
        elif tt == ";" and depth == 0:
            break
        q += 1
    return VarDecl(name, type_base(type_toks), toks[name_idx].line,
                   name_idx, init_lo, q)


_LAMBDA_PRECEDERS = frozenset({"(", ",", "=", "{", ";", "}", ":", "?",
                               "&&", "||", "return"})


def iter_lambdas(toks, lo, hi):
    k = lo
    while k < hi:
        t = toks[k]
        if t.kind == "punct" and t.text == "[":
            prev = toks[k - 1] if k - 1 >= lo else None
            prev_ok = prev is None or \
                (prev.kind == "punct" and prev.text in _LAMBDA_PRECEDERS) \
                or (prev.kind == "id" and prev.text == "return")
            if prev_ok:
                cap_close = match_delim(toks, k, "[", "]")
                if cap_close > 0:
                    p = cap_close + 1
                    if p < hi and toks[p].text == "(":
                        pc = match_delim(toks, p, "(", ")")
                        p = pc + 1 if pc > 0 else p
                    while p < hi and (toks[p].kind == "id" or
                                      toks[p].text in ("->", "&", "*", "::",
                                                       "<", ">", ",")):
                        p += 1
                    if p < hi and toks[p].text == "{":
                        body_close = match_delim(toks, p, "{", "}")
                        if body_close > 0:
                            yield LambdaInfo(k + 1, cap_close, p + 1,
                                             body_close, t.line)
                            k = p  # descend into body for nested lambdas
        k += 1


def iter_requires_branches(toks, lo, hi):
    """Yield RequiresBranch for `if constexpr (requires {...})` in
    [lo, hi)."""
    k = lo
    while k < hi - 3:
        if toks[k].kind == "id" and toks[k].text == "if" and \
                toks[k + 1].kind == "id" and \
                toks[k + 1].text == "constexpr" and \
                toks[k + 2].text == "(":
            cond_close = match_delim(toks, k + 2, "(", ")")
            if cond_close > 0:
                req = None
                negated = False
                for q in range(k + 3, cond_close):
                    if toks[q].kind == "id" and toks[q].text == "requires":
                        if toks[q - 1].kind == "punct" and \
                                toks[q - 1].text == "!":
                            negated = True
                        req = q
                        break
                if req is not None and req + 1 < cond_close and \
                        toks[req + 1].text == "{":
                    req_close = match_delim(toks, req + 1, "{", "}")
                    probes = []
                    receiver = None
                    for c in iter_calls(toks, req + 2, req_close):
                        if c.receiver is not None:
                            probes.append(c.name)
                            receiver = receiver or c.receiver
                    then_lo = then_hi = else_lo = else_hi = -1
                    p = cond_close + 1
                    if p < hi and toks[p].text == "{":
                        tc = match_delim(toks, p, "{", "}")
                        if tc > 0:
                            then_lo, then_hi = p + 1, tc
                            q = tc + 1
                            if q < hi and toks[q].kind == "id" and \
                                    toks[q].text == "else" and \
                                    q + 1 < hi and toks[q + 1].text == "{":
                                ec = match_delim(toks, q + 1, "{", "}")
                                if ec > 0:
                                    else_lo, else_hi = q + 2, ec
                    if probes and then_lo >= 0:
                        yield RequiresBranch(receiver, probes, then_lo,
                                             then_hi, else_lo, else_hi,
                                             toks[k].line, negated)
                        k = then_lo
                        continue
        k += 1


def iter_string_literals(toks, lo, hi):
    for k in range(lo, hi):
        if toks[k].kind == "str":
            raw = toks[k].text
            q = raw.find('"')
            if q >= 0 and raw.endswith('"') and len(raw) >= q + 2:
                yield k, raw[q + 1:-1], toks[k].line
