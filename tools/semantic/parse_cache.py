"""Shared C++ parsing front end: parallel parse + on-disk fragment cache.

igs_semantic and igs_dataflow both consume the same whole-program Model;
building it is dominated by tokenizing/parsing ~100 translation units.
This module owns that step:

  parallelism   files are parsed into independent single-file fragment
                Models by a multiprocessing fork pool (IGS_PARSE_JOBS
                overrides the worker count; small trees parse serially —
                pool startup would dominate).
  caching       each fragment is pickled under <root>/build/
                .igs-parse-cache keyed by sha256(parser sources ‖ path ‖
                file contents), so an unchanged file never re-parses and
                the cache survives across the tools sharing it (set
                IGS_PARSE_CACHE=off to disable, or to a directory to
                relocate).  The parser-version component invalidates the
                whole cache whenever cpp_lexer/ast_lite/model change.
  merging       fragments merge in headers-first order; a synthetic
                ClassInfo a .cc fragment invented for an out-of-line
                member definition is grafted onto the real class parsed
                from its header, reproducing exactly the structure the
                serial parse builds.

`build_model(...)` is the single entry point; it returns the merged
Model with `model.parse_stats` timing attached.
"""

import hashlib
import os
import pickle
import time

from . import ast_lite
from .model import Model

SOURCE_EXTS = (".h", ".cc", ".cpp")
EXCLUDED_PARTS = ("lint_fixtures", "analyzer_fixtures",
                  "semantic_fixtures", "dataflow_fixtures", "build")
_PARALLEL_MIN_FILES = 24


def discover_sources(root, scan_dirs):
    files = []
    for d in scan_dirs:
        top = os.path.join(root, d)
        for dirpath, dirnames, names in os.walk(top):
            dirnames[:] = [x for x in dirnames if x not in EXCLUDED_PARTS]
            for nm in sorted(names):
                if nm.endswith(SOURCE_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, nm), root)
                    files.append(rel.replace(os.sep, "/"))
    # Headers first so out-of-line definitions attach to the real class.
    files.sort(key=lambda p: (not p.endswith(".h"), p))
    return files


def parser_version():
    """Hash of the parser sources: any change invalidates the cache."""
    h = hashlib.sha256()
    here = os.path.dirname(os.path.abspath(__file__))
    for name in ("cpp_lexer.py", "ast_lite.py", "model.py"):
        with open(os.path.join(here, name), "rb") as f:
            h.update(f.read())
    return h.hexdigest()[:16]


def _cache_dir(root):
    env = os.environ.get("IGS_PARSE_CACHE", "")
    if env.lower() in ("off", "0", "no"):
        return None
    if env:
        return env
    build = os.path.join(root, "build")
    if os.path.isdir(build):
        return os.path.join(build, ".igs-parse-cache")
    return None


def _parse_fragment(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8",
              errors="replace") as f:
        text = f.read()
    frag = Model(root)
    ast_lite.parse_file(frag, rel, text)
    return frag


def _parse_one(args):
    """Pool worker: (fragment_or_None, rel, pickled?) — parses and
    caches one file.  Cache misses return the pickled fragment so the
    parent process deserializes exactly what a later cache hit would."""
    root, rel, version, cache = args
    blob = None
    key = None
    if cache:
        with open(os.path.join(root, rel), "rb") as f:
            digest = hashlib.sha256(
                version.encode() + rel.encode() + b"\0" + f.read())
        key = os.path.join(cache, digest.hexdigest() + ".pickle")
        try:
            with open(key, "rb") as f:
                return rel, f.read(), True
        except OSError:
            pass
    frag = _parse_fragment(root, rel)
    blob = pickle.dumps(frag, protocol=pickle.HIGHEST_PROTOCOL)
    if key is not None:
        tmp = f"{key}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as f:
                f.write(blob)
            os.replace(tmp, key)
        except OSError:
            pass
    return rel, blob, False


def _merge(model, frag):
    """Fold a single-file fragment into the whole-program model, grafting
    synthetic classes onto previously-parsed real definitions."""
    for rel, fm in frag.files.items():
        model.files[rel] = fm
    remap = {}
    for name, cis in frag.classes.items():
        for ci in cis:
            if ci.synthetic:
                real = model.find_class(name)
                if real is not None and not real.synthetic:
                    remap[id(ci)] = real
                    for fname, ftype in ci.fields.items():
                        real.fields.setdefault(fname, ftype)
                    continue
            model.add_class(ci)
    for fn in frag.functions:
        real = remap.get(id(fn.cls))
        if real is not None:
            fn.cls = real
            real.add_member(fn)
        model.add_function(fn)
    model.instantiations.extend(frag.instantiations)
    model.aliases.update(frag.aliases)


def build_model(root, config, frontend="auto", compile_commands=None,
                jobs=None):
    """The whole-program Model for `root` under `config` (layers.toml).
    Mirrors the serial per-file parse loop exactly; see module doc for
    the parallel/cached fast path."""
    sem = config.get("semantic", {})
    scan_dirs = sem.get("scan", ["src"])
    model = Model(root)
    model.backend_names = set(sem.get("backends", {}))
    files = discover_sources(root, scan_dirs)

    t0 = time.monotonic()
    cache = _cache_dir(root)
    if cache:
        try:
            os.makedirs(cache, exist_ok=True)
        except OSError:
            cache = None
    if jobs is None:
        jobs = int(os.environ.get("IGS_PARSE_JOBS",
                                  os.cpu_count() or 1))
    hits = 0
    use_pool = (jobs > 1 and len(files) >= _PARALLEL_MIN_FILES and
                hasattr(os, "fork"))
    if use_pool:
        import multiprocessing
        version = parser_version()
        work = [(root, rel, version, cache) for rel in files]
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(jobs, len(files))) as pool:
            results = pool.map(_parse_one, work, chunksize=4)
        by_rel = {}
        for rel, blob, hit in results:
            by_rel[rel] = pickle.loads(blob)
            hits += hit
        for rel in files:           # headers-first merge order
            _merge(model, by_rel[rel])
    else:
        version = parser_version() if cache else ""
        for rel in files:
            if cache:
                rel2, blob, hit = _parse_one((root, rel, version, cache))
                hits += hit
                _merge(model, pickle.loads(blob))
            else:
                _merge(model, _parse_fragment(root, rel))
    model.parse_stats = {
        "files": len(files),
        "seconds": round(time.monotonic() - t0, 3),
        "jobs": min(jobs, len(files)) if use_pool else 1,
        "cache_hits": hits,
        "cache": bool(cache),
    }
    if frontend in ("auto", "clang") and compile_commands and \
            os.path.exists(compile_commands):
        from . import frontend_clang
        parsed = frontend_clang.validate(model, compile_commands)
        if frontend == "clang" and parsed == 0:
            raise SystemExit("parse front end: --frontend clang "
                             "requested but libclang is unavailable")
    return model
